/**
 * @file
 * Fig. 12: vNPU allocation results — for each EU budget from 2 to 16,
 * every (nm, nv) split's modeled throughput, with the allocator's
 * selection marked. Workloads: BERT/ResNet/EfficientNet at batch 32,
 * ShapeMask at batch 8 (the paper's four panels).
 */

#include <cstdio>

#include "bench_util.hh"
#include "compiler/profile.hh"
#include "models/zoo.hh"
#include "vnpu/allocator.hh"

using namespace neu10;

namespace
{

constexpr double kHbmBpc = 1.2e12 / 1.05e9;

void
panel(ModelId id, unsigned batch)
{
    const auto prof =
        profileWorkload(buildModel(id, batch), 8, 8, kHbmBpc);
    std::printf("\n(%s, batch %u): m=%.3f v=%.3f k*=%.2f\n",
                modelAbbrev(id).c_str(), batch, prof.m, prof.v,
                allocOptimalRatio(prof.m, prof.v));
    std::printf("%4s %14s %12s %14s\n", "EUs", "selected(m,v)",
                "speedup", "best alt / speedup");
    bench::rule();

    const auto points = allocSweep(prof.m, prof.v, 16);
    for (unsigned total = 2; total <= 16; ++total) {
        const AllocPoint *sel = nullptr;
        const AllocPoint *alt = nullptr;
        for (const auto &p : points) {
            if (p.nm + p.nv != total)
                continue;
            if (p.selected)
                sel = &p;
            else if (!alt || p.speedup > alt->speedup)
                alt = &p;
        }
        if (!sel)
            continue;
        std::printf("%4u %9s(%u,%u) %12.3f", total, "", sel->nm,
                    sel->nv, sel->speedup);
        if (alt)
            std::printf("      (%u,%u) / %.3f", alt->nm, alt->nv,
                        alt->speedup);
        std::printf("%s\n",
                    alt && alt->speedup > sel->speedup + 1e-9
                        ? "  (sub-optimal pick)"
                        : "");
    }
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 12", "vNPU allocation: selected vs other "
                               "configs as EUs scale 2..16");
    panel(ModelId::Bert, 32);
    panel(ModelId::ResNet, 32);
    panel(ModelId::EfficientNet, 32);
    panel(ModelId::ShapeMask, 8);

    std::printf("\nShape check: BERT/ResNet/ShapeMask pick ME-heavy "
                "splits ((8,3)-style ladders); EfficientNet walks the "
                "diagonal ((4,4), (5,5), ...) exactly as in Fig. 12; "
                "selections track the best alternative closely.\n");
    return 0;
}
