/**
 * @file
 * Fig. 26: Neu10 throughput improvement over V10 while sweeping HBM
 * bandwidth (900 GB/s, 1.2 TB/s, 2 TB/s, 3 TB/s). Includes the two
 * memory-intensive pairs (DLRM+NCF, NCF+TFMR) and the LLaMA
 * collocations alongside the standard nine.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/serving.hh"

using namespace neu10;

namespace
{

struct SweepPair
{
    const char *label;
    ModelId w1;
    ModelId w2;
    unsigned b1;
    unsigned b2;
    unsigned minRequests;
};

double
totalThroughput(const SweepPair &pair, PolicyKind policy, double bw)
{
    ServingConfig cfg;
    cfg.core.hbmBytesPerSec = bw;
    cfg.policy = policy;
    cfg.tenants = {
        {pair.w1, pair.b1, 2, 2, 1.0, 1},
        {pair.w2, pair.b2, 2, 2, 1.0, 1},
    };
    cfg.minRequests = pair.minRequests;
    cfg.maxCycles = 4e9;
    return runServing(cfg).totalThroughput();
}

} // anonymous namespace

int
main()
{
    const double bws[] = {0.9e12, 1.2e12, 2e12, 3e12};
    const std::vector<SweepPair> all_pairs = {
        {"DLRM+NCF", ModelId::Dlrm, ModelId::Ncf, 32, 32, 10},
        {"NCF+TFMR", ModelId::Ncf, ModelId::Transformer, 32, 32, 8},
        {"DLRM+SMask", ModelId::Dlrm, ModelId::ShapeMask, 32, 8, 6},
        {"DLRM+RtNt", ModelId::Dlrm, ModelId::RetinaNet, 32, 32, 5},
        {"NCF+RsNt", ModelId::Ncf, ModelId::ResNet, 32, 32, 8},
        {"ENet+SMask", ModelId::EfficientNet, ModelId::ShapeMask, 32,
         8, 6},
        {"BERT+ENet", ModelId::Bert, ModelId::EfficientNet, 32, 32, 6},
        {"ENet+MRCN", ModelId::EfficientNet, ModelId::MaskRcnn, 32, 8,
         6},
        {"ENet+TFMR", ModelId::EfficientNet, ModelId::Transformer, 32,
         32, 8},
        {"MNIST+RtNt", ModelId::Mnist, ModelId::RetinaNet, 32, 32, 5},
        {"RNRS+RtNt", ModelId::ResNetRs, ModelId::RetinaNet, 32, 32,
         5},
        {"LLaMA+BERT", ModelId::Llama, ModelId::Bert, 8, 32, 1},
        {"LLaMA+RsNt", ModelId::Llama, ModelId::ResNet, 8, 32, 1},
        {"LLaMA+RtNt", ModelId::Llama, ModelId::RetinaNet, 8, 32, 1},
    };
    const auto pairs = bench::smokeTrim(all_pairs);

    bench::header("Figure 26", "Neu10 total throughput normalized to "
                               "V10, across HBM bandwidths");
    std::printf("%-12s %10s %10s %10s %10s\n", "Pair", "900 GB/s",
                "1.2 TB/s", "2 TB/s", "3 TB/s");
    bench::rule();
    for (const auto &pair : pairs) {
        std::printf("%-12s", pair.label);
        for (double bw : bws) {
            const double v10 =
                totalThroughput(pair, PolicyKind::V10, bw);
            const double neu =
                totalThroughput(pair, PolicyKind::Neu10, bw);
            std::printf(" %10.2f", neu / v10);
        }
        std::printf("\n");
    }
    std::printf("\nShape check: Neu10 >= V10 across bandwidths; for "
                "memory-intensive pairs (DLRM+NCF, NCF+TFMR, LLaMA "
                "collocations) the benefit grows with bandwidth as "
                "memory contention eases (SV-F).\n");
    return 0;
}
