/**
 * @file
 * Engine performance harness: event-driven fast-forward vs the
 * per-cycle reference (sim/engine.hh), timed on canonical scenarios
 * and recorded machine-readably.
 *
 * Three scenarios run under both engines on one host thread:
 *
 *  - fleet_4board   the canonical 4-board x 4-core fleet (16 cores,
 *                   24 mixed tenants, Poisson, 4 elastic epochs) —
 *                   the acceptance scenario: the fast-forward engine
 *                   must simulate cycles >= 5x faster than the
 *                   per-cycle reference here.
 *  - open_loop_core one core, four open-loop tenants at moderate
 *                   load — long idle/stall spans, the fast-forward
 *                   sweet spot.
 *  - closed_loop    one core, two closed-loop tenants (§V-A style) —
 *                   event-dense, the fast-forward worst case.
 *
 * Every row cross-checks that both engines produced bit-identical
 * summaries (the exhaustive check lives in tests/test_perf_engine).
 * Results go to stdout and to BENCH_PERF.json (schema documented in
 * docs/BENCHMARKS.md; override the path with --json=FILE or
 * NEU10_BENCH_JSON). tools/bench_compare.py diffs two such files,
 * and CI uploads the smoke-mode JSON as the per-commit perf record.
 *
 * Usage: bench_perf_engine [--json=FILE]
 * NEU10_SEED=<n> reseeds the traffic; NEU10_SMOKE=1 shrinks horizons.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cluster/fleet.hh"
#include "common/threadpool.hh"
#include "sim/engine.hh"
#include "vnpu/allocator.hh"

using namespace neu10;

// Provenance fields for the schema-v2 JSON record. The build defines
// both (bench/CMakeLists.txt); the fallbacks keep stray builds
// honest rather than broken.
#ifndef NEU10_GIT_SHA
#define NEU10_GIT_SHA "unknown"
#endif
#ifndef NEU10_BUILD_TYPE
#define NEU10_BUILD_TYPE "unknown"
#endif

namespace
{

const char *
compilerString()
{
#if defined(__clang__)
    return "clang " __clang_version__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

/** Traced-on A/B on the canonical fleet: wall cost and the proof
 * that tracing changed no simulation result. */
struct TracedAb
{
    double wallSeconds = 0.0;
    std::uint64_t events = 0;
    bool sameResults = false;
};

/** One engine's measurement on one scenario. */
struct EngineRun
{
    double wallSeconds = 0.0;
    double cyclesSimulated = 0.0; ///< sum of per-core windows
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    double p99 = 0.0;
    double makespan = 0.0;
    double latencySum = 0.0;
    std::uint64_t latencyCount = 0;

    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0.0 ? cyclesSimulated / wallSeconds
                                 : 0.0;
    }
};

/** One scenario's A/B outcome. */
struct ScenarioResult
{
    std::string name;
    EngineRun fast; ///< SimEngine::EventDriven
    EngineRun ref;  ///< SimEngine::PerCycle
    bool bitIdentical = false;

    double
    speedup() const
    {
        return fast.wallSeconds > 0.0
                   ? ref.wallSeconds / fast.wallSeconds
                   : 0.0;
    }
};

ClusterTenantSpec
makeTenant(unsigned k, double rho, std::uint64_t seed,
           const NpuCoreConfig &core)
{
    // Same mixed-service flavor as bench_fleet_scaling: two ME-heavy
    // and two VE-heavy models.
    static const ModelId kModels[4] = {ModelId::Mnist, ModelId::Ncf,
                                       ModelId::Dlrm, ModelId::ResNet};
    static const unsigned kBatches[4] = {32, 32, 32, 8};
    static const unsigned kEus[4] = {2, 4, 4, 6};
    const unsigned m = k % 4;
    const Cycles service =
        sizeVnpuForModel(kModels[m], kBatches[m], kEus[m], core)
            .serviceEstimate();
    ClusterTenantSpec t;
    t.model = kModels[m];
    t.batch = kBatches[m];
    t.eus = kEus[m];
    t.traffic.ratePerSec = rho * core.freqHz / service;
    t.traffic.seed = seed;
    t.sloCycles = 5.0 * service;
    t.maxQueueDepth = 32;
    return t;
}

template <typename Fn>
double
wallSeconds(Fn &&fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Fold a fleet outcome into the comparable summary fields of an
 * EngineRun (everything but the wall clock). */
void
summarizeFleet(const FleetResult &r, EngineRun &run)
{
    run.cyclesSimulated = 0.0;
    for (const FleetCoreReport &c : r.cores)
        run.cyclesSimulated += c.makespan;
    run.completed = r.completed;
    run.rejected = r.rejected;
    run.p99 = r.p99();
    run.makespan = r.makespan;
    run.latencySum = r.latencyCycles.sum();
    run.latencyCount = r.latencyCycles.count();
}

EngineRun
measureFleet(FleetConfig cfg, SimEngine engine, unsigned reps)
{
    cfg.engine = engine;
    EngineRun run;
    run.wallSeconds = 1e300;
    FleetResult r;
    for (unsigned i = 0; i < reps; ++i)
        run.wallSeconds = std::min(
            run.wallSeconds, wallSeconds([&] { r = runFleet(cfg); }));
    summarizeFleet(r, run);
    return run;
}

EngineRun
measureServing(ServingConfig cfg, SimEngine engine, unsigned reps)
{
    cfg.engine = engine;
    EngineRun run;
    run.wallSeconds = 1e300;
    ServingResult r;
    for (unsigned i = 0; i < reps; ++i)
        run.wallSeconds = std::min(
            run.wallSeconds,
            wallSeconds([&] { r = runServing(cfg); }));
    run.cyclesSimulated = r.makespan;
    for (const TenantResult &t : r.tenants) {
        run.completed += t.completed;
        run.rejected += t.rejected;
        run.latencySum += t.latencyCycles.sum();
        run.latencyCount += t.latencyCycles.count();
        run.p99 = std::max(run.p99, t.p99());
    }
    run.makespan = r.makespan;
    return run;
}

bool
sameResults(const EngineRun &a, const EngineRun &b)
{
    return a.completed == b.completed && a.rejected == b.rejected &&
           a.p99 == b.p99 && a.makespan == b.makespan &&
           a.latencySum == b.latencySum &&
           a.latencyCount == b.latencyCount &&
           a.cyclesSimulated == b.cyclesSimulated;
}

/** The acceptance scenario: 4 boards x 4 cores, 24 mixed tenants,
 * moderate Poisson load, 4 elastic epochs. */
FleetConfig
canonicalFleet(Cycles horizon, std::uint64_t seed)
{
    FleetConfig cfg;
    cfg.numBoards = 4; // x (2 chips x 2 cores) = 16 cores
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;
    cfg.threads = 1; // one host thread: a fair single-engine timing
    cfg.elastic.epochs = 4;
    for (unsigned i = 0; i < 24; ++i)
        cfg.tenants.push_back(
            makeTenant(i, 0.35, seed + i, cfg.board.core));
    return cfg;
}

ServingConfig
openLoopCore(Cycles horizon, std::uint64_t seed)
{
    ServingConfig cfg;
    cfg.mode = ServingMode::OpenLoop;
    cfg.policy = PolicyKind::Neu10;
    for (unsigned i = 0; i < 4; ++i) {
        const ClusterTenantSpec ct =
            makeTenant(i, 0.2, seed + 100 + i, cfg.core);
        const VnpuSizing sizing = sizeVnpuForModel(
            ct.model, ct.batch, ct.eus, cfg.core);
        TenantSpec ts;
        ts.model = ct.model;
        ts.batch = ct.batch;
        ts.nMes = std::max(1u, sizing.config.numMesPerCore / 2);
        ts.nVes = std::max(1u, sizing.config.numVesPerCore / 2);
        ts.arrivals = generateArrivals(ct.traffic, horizon,
                                       cfg.core.freqHz);
        ts.maxQueueDepth = 32;
        ts.sloCycles = ct.sloCycles;
        cfg.tenants.push_back(ts);
    }
    return cfg;
}

ServingConfig
closedLoopCore(unsigned min_requests)
{
    ServingConfig cfg;
    cfg.policy = PolicyKind::Neu10;
    cfg.minRequests = min_requests;
    cfg.tenants = {TenantSpec{ModelId::Bert, 32, 2, 2},
                   TenantSpec{ModelId::EfficientNet, 32, 2, 2}};
    return cfg;
}

void
writeJson(const char *path, const std::vector<ScenarioResult> &rows,
          std::uint64_t seed, bool smoke, double min_speedup,
          const TracedAb &traced)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", path);
        std::exit(2);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_perf_engine\",\n");
    std::fprintf(f, "  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", NEU10_GIT_SHA);
    std::fprintf(f, "  \"compiler\": \"%s\",\n", compilerString());
    std::fprintf(f, "  \"build_type\": \"%s\",\n", NEU10_BUILD_TYPE);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"host_threads\": %u,\n",
                 ThreadPool::defaultThreads());
    std::fprintf(f, "  \"min_speedup_required\": %.1f,\n",
                 min_speedup);
    std::fprintf(f,
                 "  \"tracing\": {\"wall_seconds\": %.6f, "
                 "\"events\": %llu, \"same_results\": %s},\n",
                 traced.wallSeconds,
                 static_cast<unsigned long long>(traced.events),
                 traced.sameResults ? "true" : "false");
    std::fprintf(f, "  \"scenarios\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const ScenarioResult &s = rows[i];
        auto engine = [&](const char *name, const EngineRun &e,
                          const char *tail) {
            std::fprintf(
                f,
                "      \"%s\": {\"wall_seconds\": %.6f, "
                "\"cycles_simulated\": %.0f, "
                "\"cycles_per_second\": %.0f, "
                "\"completed\": %llu}%s\n",
                name, e.wallSeconds, e.cyclesSimulated,
                e.cyclesPerSecond(),
                static_cast<unsigned long long>(e.completed), tail);
        };
        std::fprintf(f, "    {\"name\": \"%s\",\n",
                     s.name.c_str());
        std::fprintf(f, "     \"engines\": {\n");
        engine("event_driven", s.fast, ",");
        engine("per_cycle", s.ref, "");
        std::fprintf(f, "     },\n");
        std::fprintf(f, "     \"speedup\": %.3f,\n", s.speedup());
        std::fprintf(f, "     \"bit_identical\": %s}%s\n",
                     s.bitIdentical ? "true" : "false",
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_PERF.json";
    if (const char *env = std::getenv("NEU10_BENCH_JSON");
        env != nullptr && env[0] != '\0') {
        json_path = env;
    }
    for (int a = 1; a < argc; ++a) {
        if (std::strncmp(argv[a], "--json=", 7) == 0) {
            json_path = argv[a] + 7;
        } else {
            std::fprintf(stderr,
                         "usage: bench_perf_engine [--json=FILE]\n");
            return 2;
        }
    }

    const bool smoke = bench::smokeMode();
    const std::uint64_t seed = bench::benchSeed(42);
    const double min_speedup = 5.0;
    // The per-cycle reference walks every simulated cycle, so the
    // horizons here bound its wall time, not the fast engine's.
    const Cycles fleet_horizon = smoke ? 4e6 : 1.6e7;
    const Cycles core_horizon = smoke ? 4e6 : 3.2e7;
    const unsigned fast_reps = smoke ? 2 : 3;

    bench::header(
        "Engine perf",
        csprintf("event-driven fast-forward vs per-cycle reference "
                 "(seed %llu)",
                 static_cast<unsigned long long>(seed)));

    std::vector<ScenarioResult> rows;
    TracedAb traced;
    {
        ScenarioResult s;
        s.name = "fleet_4board";
        const FleetConfig cfg = canonicalFleet(fleet_horizon, seed);
        s.fast = measureFleet(cfg, SimEngine::EventDriven, fast_reps);
        s.ref = measureFleet(cfg, SimEngine::PerCycle, 1);
        s.bitIdentical = sameResults(s.fast, s.ref);
        rows.push_back(s);

        // Tracing-on A/B on the same scenario: the simulation
        // results must not move, and the JSON records what enabling
        // the recorder costs (the ≤2% overhead contract is about
        // tracing *off* — bench_compare.py gates that against the
        // baseline record; this documents the *on* price).
        FleetConfig tcfg = cfg;
        tcfg.trace.enabled = true;
        tcfg.trace.metrics = true;
        tcfg.engine = SimEngine::EventDriven;
        EngineRun trun;
        trun.wallSeconds = 1e300;
        FleetResult tr;
        for (unsigned i = 0; i < fast_reps; ++i)
            trun.wallSeconds =
                std::min(trun.wallSeconds,
                         wallSeconds([&] { tr = runFleet(tcfg); }));
        summarizeFleet(tr, trun);
        traced.wallSeconds = trun.wallSeconds;
        traced.events = tr.trace.totalEvents();
        traced.sameResults = sameResults(trun, s.fast);
    }
    {
        ScenarioResult s;
        s.name = "open_loop_core";
        const ServingConfig cfg = openLoopCore(core_horizon, seed);
        s.fast =
            measureServing(cfg, SimEngine::EventDriven, fast_reps);
        s.ref = measureServing(cfg, SimEngine::PerCycle, 1);
        s.bitIdentical = sameResults(s.fast, s.ref);
        rows.push_back(s);
    }
    {
        ScenarioResult s;
        s.name = "closed_loop";
        const ServingConfig cfg = closedLoopCore(smoke ? 8 : 20);
        s.fast =
            measureServing(cfg, SimEngine::EventDriven, fast_reps);
        s.ref = measureServing(cfg, SimEngine::PerCycle, 1);
        s.bitIdentical = sameResults(s.fast, s.ref);
        rows.push_back(s);
    }

    std::printf("%-16s %12s %12s %14s %14s %8s %8s\n", "scenario",
                "ff wall (s)", "ref wall (s)", "ff Mcyc/s",
                "ref Mcyc/s", "speedup", "match");
    bench::rule();
    for (const ScenarioResult &s : rows)
        std::printf("%-16s %12.4f %12.4f %14.1f %14.1f %7.1fx %8s\n",
                    s.name.c_str(), s.fast.wallSeconds,
                    s.ref.wallSeconds,
                    s.fast.cyclesPerSecond() / 1e6,
                    s.ref.cyclesPerSecond() / 1e6, s.speedup(),
                    s.bitIdentical ? "bit-eq" : "MISMATCH");

    std::printf("\ntracing on (fleet_4board, event-driven): %.4f s "
                "wall, %llu events, results %s\n",
                traced.wallSeconds,
                static_cast<unsigned long long>(traced.events),
                traced.sameResults ? "unchanged" : "CHANGED");

    writeJson(json_path.c_str(), rows, seed, smoke, min_speedup,
              traced);
    std::printf("\nwrote %s\n", json_path.c_str());

    const ScenarioResult &canon = rows.front();
    const bool pass = canon.speedup() >= min_speedup &&
                      canon.bitIdentical && traced.sameResults;
    std::printf("\nShape check: the event-driven engine simulates "
                "%.1f Mcycles/s vs the per-cycle reference's %.1f "
                "Mcycles/s on the canonical 4-board fleet — %.1fx "
                "speedup (>= %.0fx required), results %s: %s.\n",
                canon.fast.cyclesPerSecond() / 1e6,
                canon.ref.cyclesPerSecond() / 1e6, canon.speedup(),
                min_speedup,
                canon.bitIdentical ? "bit-identical" : "DIVERGED",
                pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
