/**
 * @file
 * Fig. 16: performance overhead of NeuISA over the traditional
 * VLIW-style ISA, measured by running each workload solo on the full
 * 4ME/4VE core with both binaries. The overhead concentrates in
 * reduction-partitioned matmuls (their summation serializes into a
 * separate VE uTOp) and shrinks with batch size.
 */

#include <cstdio>

#include "bench_util.hh"
#include "models/zoo.hh"
#include "npu/core_sim.hh"
#include "runtime/serving.hh"
#include "sched/policy.hh"

using namespace neu10;

namespace
{

/** Solo latency of one request under the given compiled program. */
Cycles
soloLatency(const CompiledModel &prog, const NpuCoreConfig &cfg)
{
    EventQueue queue;
    std::vector<VnpuSlot> slots(1);
    slots[0].nMes = cfg.numMes;
    slots[0].nVes = cfg.numVes;
    NpuCoreSim core(
        queue, cfg,
        makePolicy(prog.neuIsa ? PolicyKind::Neu10 : PolicyKind::V10),
        slots);
    Cycles latency = 0.0;
    core.submit(0, &prog,
                [&](const RequestResult &r) { latency = r.latency(); });
    queue.runUntil();
    return latency;
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 16", "NeuISA overhead vs classic VLIW "
                               "(solo, 4ME/4VE core)");
    const unsigned batches[] = {1, 8, 32, 256};
    std::printf("%-13s", "Model");
    for (unsigned b : batches)
        std::printf(" %9u", b);
    std::printf("\n");
    bench::rule();

    const NpuCoreConfig cfg;
    double worst = 0.0, sum = 0.0;
    unsigned count = 0;
    for (ModelId id : tableOneModels()) {
        std::printf("%-13s", modelAbbrev(id).c_str());
        for (unsigned b : batches) {
            if (b > maxBatch(id)) {
                std::printf(" %9s", "-");
                continue;
            }
            const DnnGraph g = buildModel(id, b);
            const Cycles neu = soloLatency(
                lowerToNeuIsa(g, cfg.numMes, cfg.numVes,
                              cfg.machine()),
                cfg);
            const Cycles vliw = soloLatency(
                lowerToVliw(g, cfg.numMes, cfg.numVes, cfg.machine()),
                cfg);
            const double overhead = (neu - vliw) / vliw * 100.0;
            std::printf(" %8.2f%%", overhead);
            worst = std::max(worst, overhead);
            sum += overhead;
            ++count;
        }
        std::printf("\n");
    }
    std::printf("\nMean overhead %.2f%%, worst case %.2f%% "
                "(paper: <1%% average, ~6%% worst; overhead shrinks "
                "with batch as non-reduction dimensions grow).\n",
                sum / count, worst);
    return 0;
}
