/**
 * @file
 * Fig. 23 + Table III: benefit breakdown of ME/VE harvesting — the
 * per-operator speedup of Neu10 over Neu10-NH across each pair, and
 * the blocked-time overhead each workload pays for being harvested.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "runtime/serving.hh"

using namespace neu10;

namespace
{

/** Mean duration per op index over all captured requests. */
std::map<std::uint32_t, double>
meanOpDurations(const TenantResult &t)
{
    std::map<std::uint32_t, double> sum;
    std::map<std::uint32_t, unsigned> count;
    for (const auto &req : t.opTimings) {
        for (const auto &op : req) {
            if (op.end <= op.start)
                continue;
            sum[op.opIndex] += op.end - op.start;
            ++count[op.opIndex];
        }
    }
    for (auto &[idx, s] : sum)
        s /= count[idx];
    return sum;
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 23 + Table III",
                  "per-operator speedup of Neu10 over Neu10-NH and "
                  "harvesting overhead");
    std::printf("%-12s %-6s %7s %7s %7s %7s %10s\n", "Pair", "W",
                "p10", "median", "p90", ">=1.5x", "blocked");
    bench::rule();

    for (const auto &pair : bench::smokeTrim(evaluationPairs())) {
        ServingResult res[2];
        for (int p = 0; p < 2; ++p) {
            ServingConfig cfg;
            cfg.policy =
                p == 0 ? PolicyKind::Neu10NH : PolicyKind::Neu10;
            cfg.tenants = {
                {pair.w1, pair.batch1, 2, 2, 1.0, 1},
                {pair.w2, pair.batch2, 2, 2, 1.0, 1},
            };
            cfg.minRequests = 8;
            cfg.maxCycles = 2.5e9;
            cfg.captureOpTimings = true;
            res[p] = runServing(cfg);
        }

        for (int w = 0; w < 2; ++w) {
            const auto nh = meanOpDurations(res[0].tenants[w]);
            const auto neu = meanOpDurations(res[1].tenants[w]);
            std::vector<double> speedups;
            for (const auto &[idx, nh_dur] : nh) {
                auto it = neu.find(idx);
                if (it != neu.end() && it->second > 0.0)
                    speedups.push_back(nh_dur / it->second);
            }
            std::sort(speedups.begin(), speedups.end());
            auto pct = [&](double q) {
                if (speedups.empty())
                    return 0.0;
                const size_t i = static_cast<size_t>(
                    q * (speedups.size() - 1));
                return speedups[i];
            };
            const double frac_fast =
                speedups.empty()
                    ? 0.0
                    : static_cast<double>(std::count_if(
                          speedups.begin(), speedups.end(),
                          [](double s) { return s >= 1.5; })) /
                          speedups.size();
            std::printf("%-12s W%u     %7.2f %7.2f %7.2f %6.0f%% "
                        "%9.2f%%\n",
                        pair.label, w + 1, pct(0.10), pct(0.50),
                        pct(0.90), 100.0 * frac_fast,
                        100.0 * res[1].tenants[w].blockedFrac);
        }
    }
    std::printf("\nShape check (Fig. 23 / Table III): low-contention "
                "pairs see most operators speed up (>=1.5x for the "
                "harvest-heavy side); a minority of operators slow "
                "down slightly from interference; blocked-time "
                "overhead stays in the sub-10%% band and is "
                "outweighed by the gains.\n");
    return 0;
}
