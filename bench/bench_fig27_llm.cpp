/**
 * @file
 * Fig. 27: collocating a memory-bandwidth-bound LLM (LLaMA2-13B,
 * batch 8, 512-token prompts) with compute-intensive workloads. Under
 * V10 the LLM's bandwidth-stalled operators occupy every ME, so the
 * partner starves; Neu10's spatial sharing lets the partner keep its
 * engines and harvest the LLM's idle ones.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/serving.hh"

using namespace neu10;

namespace
{

ServingResult
runLlmPair(ModelId partner, unsigned batch, PolicyKind policy)
{
    ServingConfig cfg;
    cfg.policy = policy;
    cfg.tenants = {
        {ModelId::Llama, 8, 2, 2, 1.0, 1},
        {partner, batch, 2, 2, 1.0, 1},
    };
    cfg.minRequests = 1;   // one full LLaMA inference per design
    cfg.maxCycles = 6e9;
    return runServing(cfg);
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 27", "LLM + compute-intensive collocation "
                               "(throughput normalized to V10; core "
                               "utilizations)");
    std::printf("%-12s %10s %10s %9s %9s %9s %9s\n", "Pair",
                "W1 Neu/V10", "W2 Neu/V10", "V10 ME", "Neu10 ME",
                "V10 VE", "Neu10 VE");
    bench::rule();

    const std::pair<ModelId, const char *> partners[] = {
        {ModelId::Bert, "LLaMA+BERT"},
        {ModelId::ResNet, "LLaMA+RsNt"},
        {ModelId::RetinaNet, "LLaMA+RtNt"},
    };
    for (const auto &[partner, label] : partners) {
        const auto v10 = runLlmPair(partner, 32, PolicyKind::V10);
        const auto neu = runLlmPair(partner, 32, PolicyKind::Neu10);
        std::printf("%-12s %10.2f %10.2f %8.1f%% %8.1f%% %8.1f%% "
                    "%8.1f%%\n",
                    label,
                    neu.tenants[0].throughput /
                        std::max(1e-9, v10.tenants[0].throughput),
                    neu.tenants[1].throughput /
                        std::max(1e-9, v10.tenants[1].throughput),
                    100.0 * v10.meUsefulUtil,
                    100.0 * neu.meUsefulUtil, 100.0 * v10.veUtil,
                    100.0 * neu.veUtil);
    }
    std::printf("\nShape check (SV-F): the compute partner gains "
                "substantially under Neu10 (paper: up to 1.6x) while "
                "LLaMA pays a negligible penalty — its decode GEMVs "
                "are bandwidth-bound, so fewer MEs cost it almost "
                "nothing; useful ME utilization rises because the "
                "partner's real compute replaces the LLM's stalled "
                "occupancy.\n");
    return 0;
}
