/**
 * @file
 * Figs. 2 and 3: the number of MEs and VEs demanded by DNN inference
 * workloads over time. Fig. 2 uses batch 8 for six representative
 * models; Fig. 3 repeats BERT and DLRM at batch 32.
 */

#include <cstdio>

#include "bench_util.hh"
#include "compiler/profile.hh"
#include "models/zoo.hh"
#include "stats/timeseries.hh"

using namespace neu10;

namespace
{

constexpr double kHbmBpc = 1.2e12 / 1.05e9;
constexpr size_t kBins = 48;

void
demandRow(ModelId id, unsigned batch)
{
    const auto prof =
        profileWorkload(buildModel(id, batch), 4, 4, kHbmBpc);

    TimeSeries me, ve;
    for (const auto &op : prof.timeline) {
        me.record(op.start, op.demandMe);
        ve.record(op.start, op.demandVe);
    }
    const auto me_bins = me.rebin(0.0, prof.demandTime, kBins);
    const auto ve_bins = ve.rebin(0.0, prof.demandTime, kBins);

    const double span_ms = bench::toMs(prof.demandTime);
    std::printf("%-13s b=%-4u span=%9.3f ms\n", modelAbbrev(id).c_str(),
                batch, span_ms);
    std::printf("  MEs |%s| peak %u\n",
                bench::sparkline(me_bins, 4.0).c_str(),
                static_cast<unsigned>(me.peak()));
    std::printf("  VEs |%s| peak %u\n",
                bench::sparkline(ve_bins, 4.0).c_str(),
                static_cast<unsigned>(ve.peak()));
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 2", "MEs and VEs demanded over time "
                              "(batch size 8)");
    for (ModelId id : {ModelId::Bert, ModelId::Transformer,
                       ModelId::Dlrm, ModelId::Ncf, ModelId::ResNet,
                       ModelId::MaskRcnn}) {
        demandRow(id, 8);
    }

    std::printf("\n");
    bench::header("Figure 3", "demand with a larger batch size "
                              "(batch 32)");
    demandRow(ModelId::Bert, 32);
    demandRow(ModelId::Dlrm, 32);

    std::printf("\nShape check: demands alternate between ME- and "
                "VE-heavy phases; DLRM/NCF demand VEs with sparse ME "
                "bursts, BERT/ResNet the reverse (SII-B).\n");
    return 0;
}
