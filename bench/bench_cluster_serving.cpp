/**
 * @file
 * Cluster-scale open-loop serving: a multi-board fleet under Poisson
 * and bursty (MMPP-2) traffic, swept over placement policies.
 *
 * This is the capacity-planning view the paper's single-core §V
 * evaluation feeds into: 16 tenants rent allocator-sized vNPUs on a
 * 4-board x 4-core fleet; each tenant's request rate is calibrated to
 * a target utilization of its own vNPU (rho), so the fleet-level
 * outcome isolates what placement and traffic shape do to tails,
 * goodput and rejection rate.
 *
 * The fleet itself is declarative: this binary is a thin wrapper over
 * the scenario library (src/scenario, docs/SCENARIOS.md). The
 * canonical configuration lives in scenarios/cluster_first_fit.scn
 * and the sweep only varies placement, traffic shape and core policy
 * on top of the loaded file; tests/test_scenario_parity.cpp pins the
 * scenario files to the historical hand-wired configs field-by-field.
 *
 * Usage: bench_cluster_serving [placement] [core-policy]
 *   placement    first-fit | best-fit | load-balanced (default: all)
 *   core-policy  neu10 | neu10-nh | v10 | pmt   (default: neu10)
 * NEU10_SEED=<n> reseeds the traffic generators; NEU10_SMOKE=1
 * shrinks the horizon for CI (both via scenario applyEnvOverrides).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "cluster/fleet.hh"
#include "scenario/runner.hh"

using namespace neu10;

namespace
{

/** The canonical fleet (tenant mix, rates, SLOs, horizon): one
 * committed scenario file, shared with tools/neu10_run and the
 * parity/golden test suites. */
const char *const kBaseScenario =
    NEU10_SCENARIO_DIR "/cluster_first_fit.scn";

/** One sweep point: the loaded scenario with placement, core policy
 * and traffic shape overridden. */
FleetConfig
sweepPoint(const Scenario &base, PlacementPolicy placement,
           PolicyKind core_policy, TrafficShape shape, bool traced)
{
    Scenario s = base;
    s.placement = placement;
    s.corePolicy = core_policy;
    for (ScenarioTenantGroup &g : s.groups)
        g.traffic.shape = shape;
    s.trace.enabled = traced;
    s.trace.metrics = traced;
    return toFleetConfig(s);
}

void
printFleetRow(const char *shape, const FleetResult &r)
{
    std::printf("%-14s %-8s %7llu %7llu %6.1f%% %8.0f %8.3f %8.3f "
                "%8.3f %6.1f%% %6.3f\n",
                r.placement.c_str(), shape,
                static_cast<unsigned long long>(r.submitted),
                static_cast<unsigned long long>(r.completed),
                100.0 * r.rejectionRate(), r.goodput,
                bench::toMs(r.p50()), bench::toMs(r.p95()),
                bench::toMs(r.p99()),
                100.0 * r.coreEuUtil.mean(),
                r.coreEuUtil.stddev());
}

void
printCoreMap(const FleetResult &r)
{
    std::vector<double> util;
    for (const auto &c : r.cores)
        util.push_back(c.euUtil);
    std::printf("  %-14s cores [%s]  (%u occupied, EU util "
                "sparkline)\n",
                r.placement.c_str(),
                bench::sparkline(util, 1.0).c_str(),
                [&] {
                    unsigned n = 0;
                    for (const auto &c : r.cores)
                        n += c.tenants > 0;
                    return n;
                }());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<PlacementPolicy> placements = {
        PlacementPolicy::FirstFit, PlacementPolicy::BestFit,
        PlacementPolicy::LoadBalanced};
    PolicyKind core_policy = PolicyKind::Neu10;
    Scenario base;
    try {
        base = loadScenarioFile(kBaseScenario);
        applyEnvOverrides(base);
        if (argc > 1)
            placements = {placementFromName(argv[1])};
        if (argc > 2)
            core_policy = policyFromName(argv[2]);
    } catch (const FatalError &err) {
        bench::usageError(err);
    }

    bench::header(
        "Cluster serving",
        csprintf("%u boards x 4 cores, %u tenants, open-loop "
                 "traffic, %s on-core scheduling (seed %llu)",
                 base.boards, base.totalTenants(),
                 policyName(core_policy).c_str(),
                 static_cast<unsigned long long>(base.seed)));

    std::printf("%-14s %-8s %7s %7s %7s %8s %8s %8s %8s %7s %6s\n",
                "placement", "shape", "arrive", "served", "reject",
                "goodput", "p50ms", "p95ms", "p99ms", "EU-avg",
                "EUsd");
    bench::rule();

    const TrafficShape shapes[] = {TrafficShape::Poisson,
                                   TrafficShape::Bursty};
    std::vector<FleetResult> poisson_runs;
    for (PlacementPolicy placement : placements) {
        for (TrafficShape shape : shapes) {
            // NEU10_TRACE=on (applied to the scenario by
            // applyEnvOverrides): record the first (canonical) run's
            // sim-time trace and epoch metrics.
            const bool traced = base.trace.enabled &&
                                placement == placements.front() &&
                                shape == TrafficShape::Poisson;
            const FleetResult r = runFleet(sweepPoint(
                base, placement, core_policy, shape, traced));
            if (traced) {
                const std::string path =
                    base.traceOut.empty()
                        ? "bench_cluster_serving.trace.json"
                        : base.traceOut;
                r.trace.writeChromeJson(path);
                r.metrics.writeJson(path + ".metrics.json",
                                    base.board.core.freqHz);
                std::printf("[trace: %llu events -> %s]\n",
                            static_cast<unsigned long long>(
                                r.trace.totalEvents()),
                            path.c_str());
            }
            printFleetRow(trafficShapeName(shape).c_str(), r);
            if (shape == TrafficShape::Poisson)
                poisson_runs.push_back(r);
        }
    }

    std::printf("\nPer-core packing under Poisson traffic:\n");
    for (const FleetResult &r : poisson_runs)
        printCoreMap(r);

    if (poisson_runs.size() > 1) {
        const FleetResult &ff = poisson_runs.front();
        const FleetResult &lb = poisson_runs.back();
        std::printf("\nShape check: first-fit concentrates load "
                    "(per-core EU-util stddev %.3f) while "
                    "load-balanced spreads it (stddev %.3f) and "
                    "keeps the fleet p99 lowest; bursty arrivals "
                    "inflate p99 and rejections at equal mean "
                    "rate.\n",
                    ff.coreEuUtil.stddev(), lb.coreEuUtil.stddev());
    }
    return 0;
}
