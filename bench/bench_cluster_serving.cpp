/**
 * @file
 * Cluster-scale open-loop serving: a multi-board fleet under Poisson
 * and bursty (MMPP-2) traffic, swept over placement policies.
 *
 * This is the capacity-planning view the paper's single-core §V
 * evaluation feeds into: 16 tenants rent allocator-sized vNPUs on a
 * 4-board x 4-core fleet; each tenant's request rate is calibrated to
 * a target utilization of its own vNPU (rho), so the fleet-level
 * outcome isolates what placement and traffic shape do to tails,
 * goodput and rejection rate.
 *
 * Usage: bench_cluster_serving [placement] [core-policy]
 *   placement    first-fit | best-fit | load-balanced (default: all)
 *   core-policy  neu10 | neu10-nh | v10 | pmt   (default: neu10)
 * NEU10_SEED=<n> reseeds the traffic generators; NEU10_SMOKE=1
 * shrinks the horizon for CI.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hh"
#include "cluster/fleet.hh"
#include "vnpu/allocator.hh"

using namespace neu10;

namespace
{

/** Per-tenant vNPU target utilization (offered load / capacity). */
const double kRhos[4] = {0.35, 0.55, 0.45, 0.6};

/** Tenant model mix: two ME-heavy (MNIST, ResNet) and two VE-heavy
 * (NCF, DLRM) services with sub-ms requests, so every tenant sees
 * hundreds of arrivals within the horizon and both engine types
 * matter; DLRM's 21 GiB embedding tables pressure HBM packing. */
const ModelId kModels[4] = {ModelId::Mnist, ModelId::Ncf,
                            ModelId::Dlrm, ModelId::ResNet};
const unsigned kBatches[4] = {32, 32, 32, 8};
// Mixed EU budgets (2/4/4/6) fragment the bins, so first-fit and
// best-fit genuinely diverge.
const unsigned kEus[4] = {2, 4, 4, 6};

FleetConfig
makeFleet(PlacementPolicy placement, PolicyKind core_policy,
          TrafficShape shape, unsigned tenants, Cycles horizon,
          std::uint64_t seed)
{
    FleetConfig cfg;
    cfg.numBoards = 4;             // x (2 chips x 2 cores) = 16 cores
    cfg.placement = placement;
    cfg.corePolicy = core_policy;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;

    // Size the four unique (model, batch, eus) tuples once; the
    // tenants cycle through them.
    Cycles service[4];
    for (unsigned k = 0; k < 4; ++k)
        service[k] = sizeVnpuForModel(kModels[k], kBatches[k],
                                      kEus[k], cfg.board.core)
                         .serviceEstimate();

    for (unsigned i = 0; i < tenants; ++i) {
        const unsigned k = i % 4;
        ClusterTenantSpec t;
        t.model = kModels[k];
        t.batch = kBatches[k];
        t.eus = kEus[k];

        // Rate: rho x the allocator's service-time estimate for this
        // tenant's own vNPU.
        t.traffic.shape = shape;
        t.traffic.ratePerSec =
            kRhos[k] * cfg.board.core.freqHz / service[k];
        t.traffic.seed = seed + i;
        t.sloCycles = 5.0 * service[k];
        t.maxQueueDepth = 32;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

void
printFleetRow(const char *shape, const FleetResult &r)
{
    std::printf("%-14s %-8s %7llu %7llu %6.1f%% %8.0f %8.3f %8.3f "
                "%8.3f %6.1f%% %6.3f\n",
                r.placement.c_str(), shape,
                static_cast<unsigned long long>(r.submitted),
                static_cast<unsigned long long>(r.completed),
                100.0 * r.rejectionRate(), r.goodput,
                bench::toMs(r.p50()), bench::toMs(r.p95()),
                bench::toMs(r.p99()),
                100.0 * r.coreEuUtil.mean(),
                r.coreEuUtil.stddev());
}

void
printCoreMap(const FleetResult &r)
{
    std::vector<double> util;
    for (const auto &c : r.cores)
        util.push_back(c.euUtil);
    std::printf("  %-14s cores [%s]  (%u occupied, EU util "
                "sparkline)\n",
                r.placement.c_str(),
                bench::sparkline(util, 1.0).c_str(),
                [&] {
                    unsigned n = 0;
                    for (const auto &c : r.cores)
                        n += c.tenants > 0;
                    return n;
                }());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<PlacementPolicy> placements = {
        PlacementPolicy::FirstFit, PlacementPolicy::BestFit,
        PlacementPolicy::LoadBalanced};
    PolicyKind core_policy = PolicyKind::Neu10;
    if (argc > 1)
        placements = {placementFromName(argv[1])};
    if (argc > 2)
        core_policy = policyFromName(argv[2]);

    const unsigned tenants = 16;
    const Cycles horizon = bench::smokeMode() ? 1e7 : 1e8;
    const std::uint64_t seed = bench::benchSeed(42);

    bench::header(
        "Cluster serving",
        csprintf("4 boards x 4 cores, %u tenants, open-loop "
                 "traffic, %s on-core scheduling (seed %llu)",
                 tenants, policyName(core_policy).c_str(),
                 static_cast<unsigned long long>(seed)));

    std::printf("%-14s %-8s %7s %7s %7s %8s %8s %8s %8s %7s %6s\n",
                "placement", "shape", "arrive", "served", "reject",
                "goodput", "p50ms", "p95ms", "p99ms", "EU-avg",
                "EUsd");
    bench::rule();

    const TrafficShape shapes[] = {TrafficShape::Poisson,
                                   TrafficShape::Bursty};
    std::vector<FleetResult> poisson_runs;
    for (PlacementPolicy placement : placements) {
        for (TrafficShape shape : shapes) {
            FleetConfig cfg =
                makeFleet(placement, core_policy, shape, tenants,
                          horizon, seed);
            // NEU10_TRACE=on: record the first (canonical) run's
            // sim-time trace and epoch metrics.
            const bool traced = bench::traceMode() &&
                                placement == placements.front() &&
                                shape == TrafficShape::Poisson;
            if (traced) {
                cfg.trace.enabled = true;
                cfg.trace.metrics = true;
            }
            const FleetResult r = runFleet(cfg);
            if (traced) {
                const std::string path = bench::traceOutPath(
                    "bench_cluster_serving.trace.json");
                r.trace.writeChromeJson(path);
                r.metrics.writeJson(path + ".metrics.json",
                                    cfg.board.core.freqHz);
                std::printf("[trace: %llu events -> %s]\n",
                            static_cast<unsigned long long>(
                                r.trace.totalEvents()),
                            path.c_str());
            }
            printFleetRow(trafficShapeName(shape).c_str(), r);
            if (shape == TrafficShape::Poisson)
                poisson_runs.push_back(r);
        }
    }

    std::printf("\nPer-core packing under Poisson traffic:\n");
    for (const FleetResult &r : poisson_runs)
        printCoreMap(r);

    if (poisson_runs.size() > 1) {
        const FleetResult &ff = poisson_runs.front();
        const FleetResult &lb = poisson_runs.back();
        std::printf("\nShape check: first-fit concentrates load "
                    "(per-core EU-util stddev %.3f) while "
                    "load-balanced spreads it (stddev %.3f) and "
                    "keeps the fleet p99 lowest; bursty arrivals "
                    "inflate p99 and rejections at equal mean "
                    "rate.\n",
                    ff.coreEuUtil.stddev(), lb.coreEuUtil.stddev());
    }
    return 0;
}
