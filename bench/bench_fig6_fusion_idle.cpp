/**
 * @file
 * Fig. 6: VE underutilization inside an ME-intensive fused operator
 * (tiled MatMul + ReLU). Each ME pop takes 8 cycles to produce an
 * 8x128 vector; the ReLU post-processing takes 1 cycle, so under
 * lockstep VLIW issue the VEs idle ~7/8 of the time.
 */

#include <cstdio>

#include "bench_util.hh"
#include "isa/builders.hh"

using namespace neu10;

int
main()
{
    bench::header("Figure 6", "VE idleness in a fused MatMul+ReLU "
                              "operator under the classic VLIW ISA");

    // The exact Fig. 6 shape: 2 MEs, 2 VEs.
    std::printf("Instruction timeline (2 MEs, 2 VEs, 4 pops):\n");
    const VliwProgram small = makeVliwMatmulRelu(2, 2, 4);
    double t = 0.0;
    for (size_t pc = 0; pc < small.code.size(); ++pc) {
        const auto &inst = small.code[pc];
        std::printf("  t=%5.0f..%-5.0f I%zu: %s\n", t,
                    t + inst.latency(), pc, inst.toString().c_str());
        t += inst.latency();
    }

    std::printf("\n%-10s %12s %12s %12s %10s\n", "pops/tile",
                "total cyc", "ME busy/ME", "VE busy/VE", "VE util");
    bench::rule();
    for (unsigned pops : {4u, 16u, 64u, 256u, 1024u}) {
        const VliwProgram prog = makeVliwMatmulRelu(2, 2, pops);
        const double total = prog.totalLatency();
        const double me_per = prog.totalMeBusy() / 2.0;
        const double ve_per = prog.totalVeBusy() / 2.0;
        std::printf("%-10u %12.0f %12.0f %12.0f %9.1f%%\n", pops,
                    total, me_per, ve_per, 100.0 * ve_per / total);
    }

    std::printf("\nShape check: VE utilization settles near 1/8 = "
                "12.5%% — each 8-cycle pop is chased by a 1-cycle "
                "ReLU, exactly Fig. 6's idle pattern.\n");
    return 0;
}
