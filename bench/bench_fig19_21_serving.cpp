/**
 * @file
 * Figs. 19, 20, 21: tail latency, average latency, and throughput of
 * the nine collocated workload pairs under PMT, V10, Neu10-NH and
 * Neu10 — the paper's headline evaluation. Values are normalized to
 * PMT, as in the figures.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/serving.hh"

using namespace neu10;

namespace
{

struct Row
{
    ServingResult res[4];
};

const PolicyKind kPolicies[4] = {PolicyKind::Pmt, PolicyKind::V10,
                                 PolicyKind::Neu10NH, PolicyKind::Neu10};

Row
runPair(const WorkloadPair &pair)
{
    Row row;
    for (int p = 0; p < 4; ++p) {
        ServingConfig cfg;
        cfg.policy = kPolicies[p];
        cfg.tenants = {
            {pair.w1, pair.batch1, 2, 2, 1.0, 1},
            {pair.w2, pair.batch2, 2, 2, 1.0, 1},
        };
        cfg.minRequests = 10;
        cfg.maxCycles = 3e9;
        row.res[p] = runServing(cfg);
    }
    return row;
}

} // anonymous namespace

int
main()
{
    const auto pairs = bench::smokeTrim(evaluationPairs());
    std::vector<Row> rows;
    for (const auto &pair : pairs)
        rows.push_back(runPair(pair));

    bench::header("Figure 19", "95th-percentile latency, normalized "
                               "to PMT (lower is better)");
    std::printf("%-12s %-5s %8s %8s %8s %8s\n", "Pair", "W", "PMT",
                "V10", "NH", "Neu10");
    bench::rule();
    double worst_ratio = 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
        for (int w = 0; w < 2; ++w) {
            const double pmt = rows[i].res[0].tenants[w].p95();
            std::printf("%-12s W%-4d %8.2f %8.2f %8.2f %8.2f\n",
                        pairs[i].label, w + 1, 1.0,
                        rows[i].res[1].tenants[w].p95() / pmt,
                        rows[i].res[2].tenants[w].p95() / pmt,
                        rows[i].res[3].tenants[w].p95() / pmt);
            worst_ratio = std::max(
                worst_ratio, rows[i].res[1].tenants[w].p95() /
                                 rows[i].res[3].tenants[w].p95());
        }
    }
    std::printf("Max V10/Neu10 tail-latency ratio: %.2fx (paper: up "
                "to 4.6x)\n\n", worst_ratio);

    bench::header("Figure 19 (suppl.)", "latency percentiles under "
                                        "Neu10, milliseconds");
    std::printf("%-12s %-5s %10s %10s %10s\n", "Pair", "W", "p50",
                "p95", "p99");
    bench::rule();
    for (size_t i = 0; i < rows.size(); ++i) {
        for (int w = 0; w < 2; ++w) {
            const auto &t = rows[i].res[3].tenants[w];
            std::printf("%-12s W%-4d %10.3f %10.3f %10.3f\n",
                        pairs[i].label, w + 1, bench::toMs(t.p50()),
                        bench::toMs(t.p95()), bench::toMs(t.p99()));
        }
    }
    std::printf("\n");

    bench::header("Figure 20", "average request latency, normalized "
                               "to PMT (lower is better)");
    std::printf("%-12s %-5s %8s %8s %8s %8s\n", "Pair", "W", "PMT",
                "V10", "NH", "Neu10");
    bench::rule();
    double v10_gain = 0.0, pmt_gain = 0.0;
    int n = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        for (int w = 0; w < 2; ++w) {
            const double pmt =
                rows[i].res[0].tenants[w].latencyCycles.mean();
            const double v10 =
                rows[i].res[1].tenants[w].latencyCycles.mean();
            const double nh =
                rows[i].res[2].tenants[w].latencyCycles.mean();
            const double neu =
                rows[i].res[3].tenants[w].latencyCycles.mean();
            std::printf("%-12s W%-4d %8.2f %8.2f %8.2f %8.2f\n",
                        pairs[i].label, w + 1, 1.0,
                        v10 / pmt, nh / pmt, neu / pmt);
            v10_gain += v10 / neu;
            pmt_gain += pmt / neu;
            ++n;
        }
    }
    std::printf("Average latency gain of Neu10: %.2fx over PMT, "
                "%.2fx over V10 (paper: 1.33x / 1.12x)\n\n",
                pmt_gain / n, v10_gain / n);

    bench::header("Figure 21", "throughput, normalized to PMT "
                               "(higher is better)");
    std::printf("%-12s %-5s %8s %8s %8s %8s\n", "Pair", "W", "PMT",
                "V10", "NH", "Neu10");
    bench::rule();
    for (size_t i = 0; i < rows.size(); ++i) {
        for (int w = 0; w < 2; ++w) {
            const double pmt = rows[i].res[0].tenants[w].throughput;
            std::printf("%-12s W%-4d %8.2f %8.2f %8.2f %8.2f\n",
                        pairs[i].label, w + 1, 1.0,
                        rows[i].res[1].tenants[w].throughput / pmt,
                        rows[i].res[2].tenants[w].throughput / pmt,
                        rows[i].res[3].tenants[w].throughput / pmt);
        }
    }
    std::printf("\nShape check: V10 and Neu10 sit well above PMT on "
                "low-contention pairs (paper: 1.58x/1.62x average); "
                "Neu10 keeps tails at or below PMT while V10's blow "
                "up on high-contention pairs.\n");
    return 0;
}
