/**
 * @file
 * Fig. 4: ME:VE intensity ratio across batch sizes 1..1024 for every
 * Table I model (quantified by ME vs VE execution time; models that
 * do not fit in HBM at a batch size are omitted, as in the paper).
 */

#include <cstdio>

#include "bench_util.hh"
#include "compiler/profile.hh"
#include "models/zoo.hh"

using namespace neu10;

int
main()
{
    bench::header("Figure 4", "ME/VE intensity ratio vs batch size");
    const unsigned batches[] = {1, 8, 32, 64, 128, 256, 512, 1024};

    std::printf("%-13s", "Model");
    for (unsigned b : batches)
        std::printf(" %8u", b);
    std::printf("\n");
    bench::rule();

    constexpr double bpc = 1.2e12 / 1.05e9;
    for (ModelId id : tableOneModels()) {
        std::printf("%-13s", modelAbbrev(id).c_str());
        for (unsigned b : batches) {
            if (b > maxBatch(id)) {
                std::printf(" %8s", "-");
                continue;
            }
            const auto prof =
                profileWorkload(buildModel(id, b), 4, 4, bpc);
            std::printf(" %8.3f", prof.intensityRatio());
        }
        std::printf("\n");
    }

    std::printf("\nShape check: DLRM/NCF sit orders of magnitude "
                "below 1 (VE-dominated); ResNet-family and RetinaNet "
                "sit far above 1 (ME-dominated); EfficientNet is "
                "near 1 (SII-B / Fig. 4).\n");
    return 0;
}
