/**
 * @file
 * Resilience under hardware faults: failover-aware fleet serving vs.
 * the fail-and-forget baseline.
 *
 * Part 1 — the acceptance scenario: a 4-board x 4-core fleet serves
 * 16 load-balanced tenants when board 1 drops off the fabric at 30%
 * of the horizon and never returns. The same seeded traffic and the
 * same fault trace run twice: with the failover controller off (dead
 * tenants are abandoned; every later request of theirs is lost) and
 * on (their admitted work is checkpointed, their vNPUs re-created on
 * surviving cores through the destroy + pinned-create hypercall
 * path, arrivals held through the outage delivered late). The table
 * compares served/lost/recovered counts, goodput, p99 and
 * availability; the shape check asserts the failover run recovers
 * >= 90% of the requests the baseline lost — deterministically for
 * the given seed.
 *
 * Part 2 — fault-rate sweep: a seeded stochastic fault trace
 * (transient MMIO/DMA retries, core stalls, board losses with
 * repair) at increasing intensity, failover always on. Shows
 * goodput, p99, MTTR and availability degrading gracefully as MTBF
 * shrinks — the capacity-planning view of "how much hardware
 * unreliability can this fleet absorb".
 *
 * The fleet, tenant mix and fault trace are declarative: this binary
 * is a thin wrapper over the scenario library (src/scenario,
 * docs/SCENARIOS.md) loading scenarios/resilience_board_loss.scn;
 * part 1 flips its failover flag, part 2 swaps its fault line for
 * generated traces. tests/test_scenario_parity.cpp pins the file to
 * the historical hand-wired config field-by-field.
 *
 * Usage: bench_resilience [epochs]
 *   epochs  serving epochs (failover granularity; default 10)
 * NEU10_SEED=<n> reseeds traffic and the part-2 fault traces;
 * NEU10_SMOKE=1 shrinks the horizon for CI (both via scenario
 * applyEnvOverrides).
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "cluster/fleet.hh"
#include "resilience/faults.hh"
#include "scenario/runner.hh"

using namespace neu10;

namespace
{

/** The acceptance fleet + board-loss fault trace, as a committed
 * scenario file shared with tools/neu10_run and the parity/golden
 * test suites. */
const char *const kBaseScenario =
    NEU10_SCENARIO_DIR "/resilience_board_loss.scn";

void
row(const char *name, const FleetResult &r)
{
    std::printf("%-12s %8llu %8llu %7llu %7llu %9llu %10.0f %9.3f "
                "%7.1f%% %8.2f\n",
                name,
                static_cast<unsigned long long>(r.submitted),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.lostRequests),
                static_cast<unsigned long long>(r.recoveredRequests),
                static_cast<unsigned long long>(r.sloMet),
                r.goodput, bench::toMs(r.p99()),
                100.0 * r.availability, bench::toMs(r.mttrCycles));
}

void
partBoardLoss(const Scenario &scn)
{
    auto variant = [&](bool failover) {
        Scenario s = scn;
        s.failover = failover;
        // NEU10_TRACE=on: record the failover run — board loss,
        // quarantine, checkpoint/restore and the hypercall churn are
        // all reconstructable from the trace alone.
        const bool traced = failover && scn.trace.enabled;
        s.trace.enabled = traced;
        s.trace.metrics = traced;
        return runFleet(toFleetConfig(s));
    };
    const FleetResult base = variant(false);
    const FleetResult fo = variant(true);
    if (scn.trace.enabled) {
        const std::string path =
            scn.traceOut.empty() ? "bench_resilience.trace.json"
                                 : scn.traceOut;
        fo.trace.writeChromeJson(path);
        fo.metrics.writeJson(path + ".metrics.json",
                             scn.board.core.freqHz);
        std::printf("[trace: %llu events -> %s]\n",
                    static_cast<unsigned long long>(
                        fo.trace.totalEvents()),
                    path.c_str());
    }

    std::printf("Part 1: board 1 lost at 30%% of the horizon, never "
                "repaired — %u cores, %u tenants, %u epochs\n",
                scn.totalCores(), scn.totalTenants(),
                scn.elastic.epochs);
    std::printf("%-12s %8s %8s %7s %7s %9s %10s %9s %8s %8s\n",
                "engine", "arrived", "served", "lost", "recov",
                "SLO-met", "goodput", "p99 (ms)", "avail",
                "MTTR(ms)");
    bench::rule();
    row("no-failover", base);
    row("failover", fo);

    std::printf("\nFailover epoch log (failures detected / vNPUs "
                "restored / migrations):\n");
    for (const FleetEpochReport &er : fo.epochReports)
        if (er.failures || er.restores || er.migrations)
            std::printf("  epoch %u: %u failed  %u restored  %u "
                        "migrations\n",
                        er.epoch, er.failures, er.restores,
                        er.migrations);

    const double lost_base = static_cast<double>(base.lostRequests);
    const double recovered =
        lost_base > 0
            ? 1.0 - static_cast<double>(fo.lostRequests) / lost_base
            : 0.0;
    const bool ok = recovered >= 0.9;
    std::printf("\nShape check: the no-failover fleet lost %llu "
                "requests to the dead board; failover lost %llu — "
                "it %s %.1f%% of them (acceptance: >= 90%%) and "
                "served %.2fx the baseline's completions under "
                "identical faults. The outage surfaces as tail "
                "latency (p99 %.3f -> %.3f ms), not dropped "
                "traffic; availability %.1f%%, MTTR %.2f ms.\n",
                static_cast<unsigned long long>(base.lostRequests),
                static_cast<unsigned long long>(fo.lostRequests),
                ok ? "recovered" : "FAILED TO RECOVER",
                100.0 * recovered,
                base.completed > 0
                    ? static_cast<double>(fo.completed) /
                          static_cast<double>(base.completed)
                    : 0.0,
                bench::toMs(base.p99()), bench::toMs(fo.p99()),
                100.0 * fo.availability,
                bench::toMs(fo.mttrCycles));
}

void
partFaultSweep(const Scenario &scn)
{
    // Part 2 reuses the scenario's fleet and traffic without the
    // board-loss line or tracing; each sweep point injects its own
    // generated fault trace instead.
    Scenario clean = scn;
    clean.faults.clear();
    clean.trace = TraceConfig{};
    const FleetConfig proto = toFleetConfig(clean);
    const FleetTopology topo{proto.numBoards,
                             proto.board.totalCores()};
    const Cycles horizon = clean.effectiveHorizon();
    const double horizon_sec = horizon / proto.board.core.freqHz;
    const std::uint64_t seed = scn.seed;

    // Fault intensity: MTBFs expressed as fractions of the horizon
    // so the sweep is horizon-independent. "1x" means roughly one
    // core stall per core and one board loss somewhere per run.
    std::vector<double> intensities = {0.0, 0.5, 1.0, 2.0, 4.0};
    if (scn.smoke && intensities.size() > 3)
        intensities.resize(3);

    std::printf("\nPart 2: stochastic fault sweep (failover on) — "
                "transients + core stalls + board losses w/ repair\n");
    std::printf("%-10s %7s %7s %7s %8s %10s %9s %8s %8s\n",
                "intensity", "faults", "failov", "lost", "served",
                "goodput", "p99 (ms)", "avail", "MTTR(ms)");
    bench::rule();
    for (double x : intensities) {
        FleetConfig cfg = proto;
        if (x > 0.0) {
            FaultSpec spec;
            spec.seed = seed * 31 + 7;
            spec.transientMmioMtbfSec = horizon_sec / (2.0 * x);
            spec.transientDmaMtbfSec = horizon_sec / (2.0 * x);
            spec.transientCostSec = 2e-5;
            spec.coreStallMtbfSec = horizon_sec / x;
            spec.coreStallMeanSec = 0.05 * horizon_sec;
            spec.boardLossMtbfSec =
                horizon_sec * topo.totalCores() /
                (x * topo.numBoards);
            spec.boardRepairMeanSec = 0.2 * horizon_sec;
            cfg.resilience.faults = generateFaultTrace(
                spec, topo, horizon, proto.board.core.freqHz);
        }
        const FleetResult r = runFleet(cfg);
        std::printf("%-9.1fx %7u %7u %7llu %8llu %10.0f %9.3f "
                    "%7.1f%% %8.2f\n",
                    x, r.faultsInjected, r.failovers,
                    static_cast<unsigned long long>(r.lostRequests),
                    static_cast<unsigned long long>(r.completed),
                    r.goodput, bench::toMs(r.p99()),
                    100.0 * r.availability,
                    bench::toMs(r.mttrCycles));
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Scenario base;
    try {
        base = loadScenarioFile(kBaseScenario);
        applyEnvOverrides(base);
    } catch (const FatalError &err) {
        bench::usageError(err);
    }
    if (argc > 1)
        base.elastic.epochs = static_cast<unsigned>(
            std::strtoul(argv[1], nullptr, 10));
    if (base.elastic.epochs < 2) {
        std::fprintf(stderr, "failover needs >= 2 epochs; using 2\n");
        base.elastic.epochs = 2;
    }

    bench::header(
        "Resilience",
        csprintf("fault injection + vNPU failover (seed %llu)",
                 static_cast<unsigned long long>(base.seed)));

    partBoardLoss(base);
    partFaultSweep(base);
    return 0;
}
