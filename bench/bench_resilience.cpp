/**
 * @file
 * Resilience under hardware faults: failover-aware fleet serving vs.
 * the fail-and-forget baseline.
 *
 * Part 1 — the acceptance scenario: a 4-board x 4-core fleet serves
 * 16 load-balanced tenants when board 1 drops off the fabric at 30%
 * of the horizon and never returns. The same seeded traffic and the
 * same fault trace run twice: with the failover controller off (dead
 * tenants are abandoned; every later request of theirs is lost) and
 * on (their admitted work is checkpointed, their vNPUs re-created on
 * surviving cores through the destroy + pinned-create hypercall
 * path, arrivals held through the outage delivered late). The table
 * compares served/lost/recovered counts, goodput, p99 and
 * availability; the shape check asserts the failover run recovers
 * >= 90% of the requests the baseline lost — deterministically for
 * the given seed.
 *
 * Part 2 — fault-rate sweep: a seeded stochastic fault trace
 * (transient MMIO/DMA retries, core stalls, board losses with
 * repair) at increasing intensity, failover always on. Shows
 * goodput, p99, MTTR and availability degrading gracefully as MTBF
 * shrinks — the capacity-planning view of "how much hardware
 * unreliability can this fleet absorb".
 *
 * Usage: bench_resilience [epochs]
 *   epochs  serving epochs (failover granularity; default 10)
 * NEU10_SEED=<n> reseeds traffic and the part-2 fault traces;
 * NEU10_SMOKE=1 shrinks the horizon for CI.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "cluster/fleet.hh"
#include "resilience/faults.hh"
#include "vnpu/allocator.hh"

using namespace neu10;

namespace
{

/** 16 mixed tenants load-balanced over 4 boards x 4 cores. */
FleetConfig
baseFleet(Cycles horizon, std::uint64_t seed, unsigned epochs)
{
    FleetConfig cfg;
    cfg.numBoards = 4; // x (2 chips x 2 cores) = 16 cores
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;
    cfg.elastic.epochs = epochs;
    // Rebalancing stays armed (threshold 0.1 default) — failover and
    // elasticity are designed to coexist.
    cfg.resilience.recoveryStallCycles = 2e5;
    // Results are bit-identical at any width; use the host.
    cfg.threads = 0;

    const ModelId models[4] = {ModelId::Mnist, ModelId::Ncf,
                               ModelId::Dlrm, ModelId::ResNet};
    const unsigned batches[4] = {32, 32, 32, 8};
    const unsigned eus[4] = {2, 4, 4, 6};
    for (unsigned i = 0; i < 16; ++i) {
        const unsigned k = i % 4;
        const Cycles service =
            sizeVnpuForModel(models[k], batches[k], eus[k],
                             cfg.board.core)
                .serviceEstimate();
        ClusterTenantSpec t;
        t.model = models[k];
        t.batch = batches[k];
        t.eus = eus[k];
        t.traffic.ratePerSec =
            0.4 * cfg.board.core.freqHz / service;
        t.traffic.seed = seed + i;
        t.sloCycles = 8.0 * service;
        t.maxQueueDepth = 64;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

void
row(const char *name, const FleetResult &r)
{
    std::printf("%-12s %8llu %8llu %7llu %7llu %9llu %10.0f %9.3f "
                "%7.1f%% %8.2f\n",
                name,
                static_cast<unsigned long long>(r.submitted),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.lostRequests),
                static_cast<unsigned long long>(r.recoveredRequests),
                static_cast<unsigned long long>(r.sloMet),
                r.goodput, bench::toMs(r.p99()),
                100.0 * r.availability, bench::toMs(r.mttrCycles));
}

void
partBoardLoss(Cycles horizon, std::uint64_t seed, unsigned epochs)
{
    FaultEvent loss;
    loss.at = 0.3 * horizon;
    loss.kind = FaultKind::BoardLoss;
    loss.board = 1;
    loss.durationCycles = kCyclesInf;

    auto scenario = [&](bool failover) {
        FleetConfig cfg = baseFleet(horizon, seed, epochs);
        cfg.resilience.faults = {loss};
        cfg.resilience.failover = failover;
        // NEU10_TRACE=on: record the failover run — board loss,
        // quarantine, checkpoint/restore and the hypercall churn are
        // all reconstructable from the trace alone.
        if (failover && bench::traceMode()) {
            cfg.trace.enabled = true;
            cfg.trace.metrics = true;
        }
        return runFleet(cfg);
    };
    const FleetResult base = scenario(false);
    const FleetResult fo = scenario(true);
    if (bench::traceMode()) {
        const std::string path =
            bench::traceOutPath("bench_resilience.trace.json");
        fo.trace.writeChromeJson(path);
        fo.metrics.writeJson(path + ".metrics.json",
                             baseFleet(horizon, seed, epochs)
                                 .board.core.freqHz);
        std::printf("[trace: %llu events -> %s]\n",
                    static_cast<unsigned long long>(
                        fo.trace.totalEvents()),
                    path.c_str());
    }

    std::printf("Part 1: board 1 lost at 30%% of the horizon, never "
                "repaired — 16 cores, 16 tenants, %u epochs\n",
                epochs);
    std::printf("%-12s %8s %8s %7s %7s %9s %10s %9s %8s %8s\n",
                "engine", "arrived", "served", "lost", "recov",
                "SLO-met", "goodput", "p99 (ms)", "avail",
                "MTTR(ms)");
    bench::rule();
    row("no-failover", base);
    row("failover", fo);

    std::printf("\nFailover epoch log (failures detected / vNPUs "
                "restored / migrations):\n");
    for (const FleetEpochReport &er : fo.epochReports)
        if (er.failures || er.restores || er.migrations)
            std::printf("  epoch %u: %u failed  %u restored  %u "
                        "migrations\n",
                        er.epoch, er.failures, er.restores,
                        er.migrations);

    const double lost_base = static_cast<double>(base.lostRequests);
    const double recovered =
        lost_base > 0
            ? 1.0 - static_cast<double>(fo.lostRequests) / lost_base
            : 0.0;
    const bool ok = recovered >= 0.9;
    std::printf("\nShape check: the no-failover fleet lost %llu "
                "requests to the dead board; failover lost %llu — "
                "it %s %.1f%% of them (acceptance: >= 90%%) and "
                "served %.2fx the baseline's completions under "
                "identical faults. The outage surfaces as tail "
                "latency (p99 %.3f -> %.3f ms), not dropped "
                "traffic; availability %.1f%%, MTTR %.2f ms.\n",
                static_cast<unsigned long long>(base.lostRequests),
                static_cast<unsigned long long>(fo.lostRequests),
                ok ? "recovered" : "FAILED TO RECOVER",
                100.0 * recovered,
                base.completed > 0
                    ? static_cast<double>(fo.completed) /
                          static_cast<double>(base.completed)
                    : 0.0,
                bench::toMs(base.p99()), bench::toMs(fo.p99()),
                100.0 * fo.availability,
                bench::toMs(fo.mttrCycles));
}

void
partFaultSweep(Cycles horizon, std::uint64_t seed, unsigned epochs)
{
    const FleetConfig proto = baseFleet(horizon, seed, epochs);
    const FleetTopology topo{proto.numBoards,
                             proto.board.totalCores()};
    const double horizon_sec = horizon / proto.board.core.freqHz;

    // Fault intensity: MTBFs expressed as fractions of the horizon
    // so the sweep is horizon-independent. "1x" means roughly one
    // core stall per core and one board loss somewhere per run.
    std::vector<double> intensities = {0.0, 0.5, 1.0, 2.0, 4.0};
    intensities = bench::smokeTrim(std::move(intensities), 3);

    std::printf("\nPart 2: stochastic fault sweep (failover on) — "
                "transients + core stalls + board losses w/ repair\n");
    std::printf("%-10s %7s %7s %7s %8s %10s %9s %8s %8s\n",
                "intensity", "faults", "failov", "lost", "served",
                "goodput", "p99 (ms)", "avail", "MTTR(ms)");
    bench::rule();
    for (double x : intensities) {
        FleetConfig cfg = proto;
        if (x > 0.0) {
            FaultSpec spec;
            spec.seed = seed * 31 + 7;
            spec.transientMmioMtbfSec = horizon_sec / (2.0 * x);
            spec.transientDmaMtbfSec = horizon_sec / (2.0 * x);
            spec.transientCostSec = 2e-5;
            spec.coreStallMtbfSec = horizon_sec / x;
            spec.coreStallMeanSec = 0.05 * horizon_sec;
            spec.boardLossMtbfSec =
                horizon_sec * topo.totalCores() /
                (x * topo.numBoards);
            spec.boardRepairMeanSec = 0.2 * horizon_sec;
            cfg.resilience.faults = generateFaultTrace(
                spec, topo, horizon, proto.board.core.freqHz);
        }
        const FleetResult r = runFleet(cfg);
        std::printf("%-9.1fx %7u %7u %7llu %8llu %10.0f %9.3f "
                    "%7.1f%% %8.2f\n",
                    x, r.faultsInjected, r.failovers,
                    static_cast<unsigned long long>(r.lostRequests),
                    static_cast<unsigned long long>(r.completed),
                    r.goodput, bench::toMs(r.p99()),
                    100.0 * r.availability,
                    bench::toMs(r.mttrCycles));
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    unsigned epochs = 10;
    if (argc > 1)
        epochs = static_cast<unsigned>(
            std::strtoul(argv[1], nullptr, 10));
    if (epochs < 2) {
        std::fprintf(stderr, "failover needs >= 2 epochs; using 2\n");
        epochs = 2;
    }

    const Cycles horizon = bench::smokeMode() ? 8e6 : 4e7;
    const std::uint64_t seed = bench::benchSeed(42);

    bench::header(
        "Resilience",
        csprintf("fault injection + vNPU failover (seed %llu)",
                 static_cast<unsigned long long>(seed)));

    partBoardLoss(horizon, seed, epochs);
    partFaultSweep(horizon, seed, epochs);
    return 0;
}
