/**
 * @file
 * Token-level LLM serving: continuous batching vs the naive
 * static-batch baseline at equal HBM.
 *
 * Loads the committed scenario pair (scenarios/llm_continuous.scn
 * and scenarios/llm_static_batch.scn — identical fleet, traffic,
 * seed and KV budget; only the scheduler differs) and reports the
 * headline pair the ISSUE acceptance gates: the tokens/s speedup and
 * the p99 time-to-first-token ratio continuous batching buys. Each
 * scenario also runs on both simulation engines and the key results
 * are compared exactly — LLM serving must stay bit-identical across
 * engines like every other subsystem.
 *
 * Usage: bench_llm_serving [--json=FILE]
 *   --json=FILE  write the bench_llm_serving schema-1 record
 *                (default: no record). tools/bench_compare.py
 *                self-checks the record and gates the speedup; the
 *                committed BENCH_PERF.json carries the full-run
 *                numbers in its "llm_serving" block.
 * NEU10_SEED / NEU10_SMOKE apply via scenario applyEnvOverrides.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cluster/fleet.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "stats/distribution.hh"

using namespace neu10;

namespace
{

/** Fleet-level LLM summary of one run. */
struct LlmSummary
{
    std::string name;
    std::string scheduler;
    std::uint64_t tokens = 0;
    std::uint64_t prefills = 0;
    std::uint64_t decodeIterations = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t completed = 0;
    std::uint32_t kvPages = 0;
    std::uint32_t kvHighWater = 0;
    Cycles makespan = 0.0;
    double tokensPerSec = 0.0;
    Cycles ttftP50 = 0.0;
    Cycles ttftP99 = 0.0;
    double wallSeconds = 0.0;
    bool bitIdentical = false;
};

LlmSummary
summarize(const Scenario &s, const FleetResult &r)
{
    LlmSummary out;
    out.name = s.name;
    out.scheduler = s.llm.scheduler == LlmScheduler::Continuous
                        ? "continuous"
                        : "static-batch";
    Distribution ttft;
    for (const TenantResult &t : r.tenants) {
        out.tokens += t.llm.tokensGenerated;
        out.prefills += t.llm.prefills;
        out.decodeIterations += t.llm.decodeIterations;
        out.preemptions += t.llm.preemptions;
        out.kvPages += t.llm.kvPages;
        out.kvHighWater += t.llm.kvPageHighWater;
        ttft.merge(t.llm.ttftCycles);
    }
    out.completed = r.completed;
    out.makespan = r.makespan;
    const double secs =
        Clock(s.board.core.freqHz).toSeconds(
            std::max(1.0, r.makespan));
    out.tokensPerSec = static_cast<double>(out.tokens) / secs;
    out.ttftP50 = ttft.percentile(0.50);
    out.ttftP99 = ttft.percentile(0.99);
    return out;
}

/** Exact equality of everything the LLM serving path computes —
 * engines that drift in any counter or sample fail the record. */
bool
sameResults(const FleetResult &a, const FleetResult &b)
{
    if (a.submitted != b.submitted || a.completed != b.completed ||
        a.rejected != b.rejected || a.makespan != b.makespan ||
        a.latencyCycles.count() != b.latencyCycles.count() ||
        a.latencyCycles.sum() != b.latencyCycles.sum())
        return false;
    if (a.tenants.size() != b.tenants.size())
        return false;
    for (size_t i = 0; i < a.tenants.size(); ++i) {
        const LlmEndpointStats &x = a.tenants[i].llm;
        const LlmEndpointStats &y = b.tenants[i].llm;
        if (x.tokensGenerated != y.tokensGenerated ||
            x.prefills != y.prefills ||
            x.decodeIterations != y.decodeIterations ||
            x.preemptions != y.preemptions ||
            x.kvPageHighWater != y.kvPageHighWater ||
            x.kvAllocOps != y.kvAllocOps ||
            x.kvFreeOps != y.kvFreeOps ||
            x.kvFailedAllocs != y.kvFailedAllocs ||
            x.kvOccupancyMean != y.kvOccupancyMean ||
            x.ttftCycles.count() != y.ttftCycles.count() ||
            x.ttftCycles.sum() != y.ttftCycles.sum())
            return false;
    }
    return true;
}

LlmSummary
runScenarioBothEngines(const char *path)
{
    Scenario s = loadScenarioFile(path);
    applyEnvOverrides(s);
    FleetConfig cfg = toFleetConfig(s);

    const auto t0 = std::chrono::steady_clock::now();
    const FleetResult fast = runFleet(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    cfg.engine = SimEngine::PerCycle;
    const FleetResult ref = runFleet(cfg);

    LlmSummary out = summarize(s, fast);
    out.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.bitIdentical = sameResults(fast, ref);
    return out;
}

void
printRow(const LlmSummary &s)
{
    std::printf("%-16s %-13s %8llu %8.0f %9.3f %9.3f %6llu %6u "
                "%10.3f %5s\n",
                s.name.c_str(), s.scheduler.c_str(),
                static_cast<unsigned long long>(s.tokens),
                s.tokensPerSec, bench::toMs(s.ttftP50),
                bench::toMs(s.ttftP99),
                static_cast<unsigned long long>(s.preemptions),
                s.kvHighWater, bench::toMs(s.makespan),
                s.bitIdentical ? "yes" : "NO");
}

void
writeJson(const char *path, const std::vector<LlmSummary> &rows,
          double tokens_speedup, double ttft_ratio,
          double min_speedup, std::uint64_t seed, bool smoke)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", path);
        std::exit(2);
    }
    bool identical = true;
    for (const LlmSummary &s : rows)
        identical = identical && s.bitIdentical;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_llm_serving\",\n");
    std::fprintf(f, "  \"schema_version\": 1,\n");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"min_tokens_speedup_required\": %.2f,\n",
                 min_speedup);
    std::fprintf(f, "  \"tokens_speedup\": %.3f,\n", tokens_speedup);
    std::fprintf(f, "  \"ttft_p99_ratio\": %.3f,\n", ttft_ratio);
    std::fprintf(f, "  \"bit_identical_engines\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"scenarios\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const LlmSummary &s = rows[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"scheduler\": \"%s\", "
            "\"tokens\": %llu, \"tokens_per_sec\": %.3f, "
            "\"ttft_p50_ms\": %.3f, \"ttft_p99_ms\": %.3f, "
            "\"prefills\": %llu, \"decode_iterations\": %llu, "
            "\"preemptions\": %llu, \"completed\": %llu, "
            "\"kv_pages\": %u, \"kv_page_high_water\": %u, "
            "\"makespan_ms\": %.3f, \"wall_seconds\": %.6f, "
            "\"bit_identical\": %s}%s\n",
            s.name.c_str(), s.scheduler.c_str(),
            static_cast<unsigned long long>(s.tokens),
            s.tokensPerSec, bench::toMs(s.ttftP50),
            bench::toMs(s.ttftP99),
            static_cast<unsigned long long>(s.prefills),
            static_cast<unsigned long long>(s.decodeIterations),
            static_cast<unsigned long long>(s.preemptions),
            static_cast<unsigned long long>(s.completed),
            s.kvPages, s.kvHighWater, bench::toMs(s.makespan),
            s.wallSeconds, s.bitIdentical ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int a = 1; a < argc; ++a) {
        if (std::strncmp(argv[a], "--json=", 7) == 0) {
            json_path = argv[a] + 7;
        } else {
            std::fprintf(stderr,
                         "usage: bench_llm_serving [--json=FILE]\n");
            return 2;
        }
    }

    const bool smoke = bench::smokeMode();
    const std::uint64_t seed = bench::benchSeed();

    bench::header(
        "LLM continuous batching",
        csprintf("paged KV pool, 4 LLaMA2-13B endpoints, continuous "
                 "vs static-batch at equal HBM (seed %llu%s)",
                 static_cast<unsigned long long>(seed),
                 smoke ? ", smoke" : ""));

    std::vector<LlmSummary> rows;
    try {
        rows.push_back(runScenarioBothEngines(
            NEU10_SCENARIO_DIR "/llm_continuous.scn"));
        rows.push_back(runScenarioBothEngines(
            NEU10_SCENARIO_DIR "/llm_static_batch.scn"));
    } catch (const FatalError &err) {
        bench::usageError(err);
    }

    std::printf("%-16s %-13s %8s %8s %9s %9s %6s %6s %10s %5s\n",
                "scenario", "scheduler", "tokens", "tok/s",
                "ttft-p50", "ttft-p99", "evict", "hiwat",
                "makespan", "same");
    bench::rule();
    for (const LlmSummary &s : rows)
        printRow(s);
    bench::rule();

    const LlmSummary &cont = rows[0];
    const LlmSummary &stat = rows[1];
    const double tokens_speedup =
        stat.tokensPerSec > 0.0 ? cont.tokensPerSec / stat.tokensPerSec
                                : 0.0;
    const double ttft_ratio =
        stat.ttftP99 > 0.0 ? cont.ttftP99 / stat.ttftP99 : 0.0;
    // The acceptance gate: continuous batching must both raise
    // tokens/s and cut the p99 TTFT at equal HBM. 1.05x leaves smoke
    // runs headroom; the full run clears it by much more.
    const double min_speedup = 1.05;

    std::printf("continuous vs static-batch: %.2fx tokens/s, "
                "%.2fx p99 TTFT, engines %s\n",
                tokens_speedup, ttft_ratio,
                cont.bitIdentical && stat.bitIdentical
                    ? "bit-identical"
                    : "DIVERGED");

    if (!json_path.empty()) {
        writeJson(json_path.c_str(), rows, tokens_speedup,
                  ttft_ratio, min_speedup, seed, smoke);
        std::printf("wrote %s\n", json_path.c_str());
    }

    const bool ok = cont.bitIdentical && stat.bitIdentical &&
                    tokens_speedup >= min_speedup &&
                    ttft_ratio <= 1.0;
    return ok ? 0 : 1;
}
