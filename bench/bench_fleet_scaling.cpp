/**
 * @file
 * Parallel elastic fleet engine: host-thread scaling and the
 * static-vs-elastic rebalancing comparison.
 *
 * Part 1 — thread scaling: one 4-board x 8-core fleet (32 cores, 48
 * tenants) is simulated with 1/2/4/8 host threads. Per-core
 * simulations are independent, so results must be bit-identical at
 * every width (checked) while wall-clock time drops; the speedup
 * column is the payoff of the common/threadpool runner. Wall-clock
 * numbers are host-dependent — on a single-CPU machine the speedup
 * is ~1x by construction (hardware threads are printed).
 *
 * Part 2 — elastic rebalancing: 8 tenants land on a 2-board fleet by
 * first-fit, which piles them onto the first cores while the tail of
 * the fleet idles; the traffic is bursty (MMPP-2). A static run
 * (epochs=1) keeps that placement for the whole horizon; the elastic
 * run splits the horizon into epochs and migrates vNPUs off the hot
 * cores between epochs (charging every move a migration cost through
 * the hypervisor's destroy/create hypercalls). The table shows the
 * tail-latency and goodput effect; the per-epoch log shows the
 * rebalancer converging.
 *
 * Usage: bench_fleet_scaling [threads...]
 *   threads   thread widths for part 1 (default: 1 2 4 8)
 * NEU10_SEED=<n> reseeds the traffic; NEU10_SMOKE=1 shrinks the
 * horizon and the sweep for CI.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "cluster/fleet.hh"
#include "common/threadpool.hh"
#include "vnpu/allocator.hh"

using namespace neu10;

namespace
{

/** Tenant mix shared by both parts (same flavor as
 * bench_cluster_serving): two ME-heavy and two VE-heavy services. */
const ModelId kModels[4] = {ModelId::Mnist, ModelId::Ncf,
                            ModelId::Dlrm, ModelId::ResNet};
const unsigned kBatches[4] = {32, 32, 32, 8};
const unsigned kEus[4] = {2, 4, 4, 6};

ClusterTenantSpec
makeTenant(unsigned k, double rho, TrafficShape shape,
           std::uint64_t seed, const NpuCoreConfig &core)
{
    const Cycles service =
        sizeVnpuForModel(kModels[k], kBatches[k], kEus[k], core)
            .serviceEstimate();
    ClusterTenantSpec t;
    t.model = kModels[k];
    t.batch = kBatches[k];
    t.eus = kEus[k];
    t.traffic.shape = shape;
    t.traffic.ratePerSec = rho * core.freqHz / service;
    t.traffic.seed = seed;
    t.sloCycles = 5.0 * service;
    t.maxQueueDepth = 32;
    return t;
}

double
wallSeconds(const FleetConfig &cfg, FleetResult &out)
{
    const auto t0 = std::chrono::steady_clock::now();
    out = runFleet(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

void
partThreadScaling(Cycles horizon, std::uint64_t seed,
                  std::vector<unsigned> widths)
{
    FleetConfig cfg;
    cfg.numBoards = 4;
    cfg.board.coresPerChip = 4; // 2 chips x 4 = 8 cores per board
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;
    for (unsigned i = 0; i < 48; ++i)
        cfg.tenants.push_back(makeTenant(i % 4, 0.5,
                                         TrafficShape::Poisson,
                                         seed + i, cfg.board.core));

    std::printf("Part 1: thread scaling — %u cores, %zu tenants, "
                "%u hardware threads on this host\n",
                cfg.totalCores(), cfg.tenants.size(),
                ThreadPool::defaultThreads());
    std::printf("%-8s %10s %8s %10s %12s %8s\n", "threads",
                "wall (s)", "speedup", "served", "p99 (ms)",
                "match");
    bench::rule();

    double t_serial = 0.0;
    FleetResult ref;
    for (unsigned w : widths) {
        cfg.threads = w;
        FleetResult r;
        const double secs = wallSeconds(cfg, r);
        if (w == widths.front()) {
            t_serial = secs;
            ref = r;
        }
        const bool match = r.completed == ref.completed &&
                           r.rejected == ref.rejected &&
                           r.p99() == ref.p99() &&
                           r.makespan == ref.makespan;
        std::printf("%-8u %10.3f %7.2fx %10llu %12.3f %8s\n", w,
                    secs, t_serial / secs,
                    static_cast<unsigned long long>(r.completed),
                    bench::toMs(r.p99()),
                    match ? "bit-eq" : "MISMATCH");
    }
}

void
partElastic(Cycles horizon, std::uint64_t seed)
{
    auto base = [&](unsigned epochs) {
        FleetConfig cfg;
        cfg.numBoards = 2; // x 4 cores
        cfg.placement = PlacementPolicy::FirstFit;
        cfg.horizon = horizon;
        cfg.maxCycles = 50.0 * horizon;
        cfg.threads = 1;
        cfg.elastic.epochs = epochs;
        cfg.elastic.imbalanceThreshold = 0.05;
        cfg.elastic.maxMigrationsPerEpoch = 4;
        // 8 small (2-EU) tenants, each offered 1.2x its own vNPU's
        // capacity: first-fit stacks four per core on the first two
        // cores while the other six idle, so the realized load is
        // maximally lopsided and the hot cores are saturated. Only
        // migrating vNPUs out — and growing them into the idle
        // cores' EUs — adds real capacity.
        for (unsigned i = 0; i < 8; ++i)
            cfg.tenants.push_back(
                makeTenant(0, 1.2, TrafficShape::Bursty, seed + i,
                           cfg.board.core));
        return cfg;
    };

    const FleetResult stat = runFleet(base(1));
    const FleetResult elas = runFleet(base(8));

    std::printf("\nPart 2: static vs elastic under an imbalanced "
                "bursty (MMPP-2) trace — first-fit, 8 cores\n");
    std::printf("%-10s %8s %8s %8s %10s %10s %10s %6s\n", "engine",
                "served", "reject", "SLO-met", "goodput",
                "p99 (ms)", "EU-sd", "moves");
    bench::rule();
    auto row = [](const char *name, const FleetResult &r) {
        std::printf("%-10s %8llu %7.1f%% %8llu %10.0f %10.3f "
                    "%10.3f %6u\n",
                    name,
                    static_cast<unsigned long long>(r.completed),
                    100.0 * r.rejectionRate(),
                    static_cast<unsigned long long>(r.sloMet),
                    r.goodput, bench::toMs(r.p99()),
                    r.coreEuUtil.stddev(), r.migrations);
    };
    row("static", stat);
    row("elastic", elas);

    std::printf("\nElastic epoch log (completions, carried backlog, "
                "migrations, cross-core pressure stddev):\n");
    for (const FleetEpochReport &er : elas.epochReports)
        std::printf("  epoch %u: %7llu done %6llu carried  %u "
                    "moves  imbalance %.3f\n",
                    er.epoch,
                    static_cast<unsigned long long>(er.completed),
                    static_cast<unsigned long long>(er.backlog),
                    er.migrations, er.pressureStddev);

    const double p99_gain =
        elas.p99() > 0 ? stat.p99() / elas.p99() : 0.0;
    const double goodput_gain =
        stat.goodput > 0 ? elas.goodput / stat.goodput : 0.0;
    const bool improved = p99_gain > 1.0 || goodput_gain > 1.0;
    std::printf("\nShape check: elastic rebalancing moved %u vNPUs "
                "off the first-fit hot cores and %s the static "
                "fleet — goodput %.2fx (%.0f -> %.0f req/s), p99 "
                "%.2fx (%.3f -> %.3f ms), rejections %.1f%% -> "
                "%.1f%%.\n",
                elas.migrations,
                improved ? "beats" : "DOES NOT BEAT",
                goodput_gain, stat.goodput, elas.goodput, p99_gain,
                bench::toMs(stat.p99()), bench::toMs(elas.p99()),
                100.0 * stat.rejectionRate(),
                100.0 * elas.rejectionRate());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<unsigned> widths = {1, 2, 4, 8};
    if (argc > 1) {
        widths.clear();
        for (int a = 1; a < argc; ++a)
            widths.push_back(
                static_cast<unsigned>(std::strtoul(argv[a], nullptr,
                                                   10)));
    }
    if (bench::smokeMode() && argc <= 1)
        widths = {1, 2};

    const Cycles horizon = bench::smokeMode() ? 6e6 : 4e7;
    const std::uint64_t seed = bench::benchSeed(42);

    bench::header(
        "Fleet scaling",
        csprintf("parallel elastic fleet engine (seed %llu)",
                 static_cast<unsigned long long>(seed)));

    partThreadScaling(horizon, seed, widths);
    partElastic(horizon, seed);
    return 0;
}
