/**
 * @file
 * Table I (model zoo + HBM footprints) and Table II (simulator
 * configuration) reproduction.
 */

#include <cstdio>

#include "bench_util.hh"
#include "compiler/profile.hh"
#include "models/zoo.hh"
#include "npu/config.hh"

using namespace neu10;

int
main()
{
    bench::header("Table I", "DNN models used as ML services "
                             "(HBM footprint at batch size 8)");
    std::printf("%-14s %-7s %12s %14s %10s\n", "Model", "Abbrev",
                "Footprint", "Total MACs", "Operators");
    bench::rule();
    for (ModelId id : tableOneModels()) {
        const DnnGraph g = buildModel(id, 8);
        std::printf("%-14s %-7s %12s %13.2fG %9zu\n",
                    modelName(id).c_str(), modelAbbrev(id).c_str(),
                    formatBytes(g.hbmFootprint).c_str(),
                    g.totalMacs() / 1e9, g.ops.size());
    }
    const DnnGraph llama = buildModel(ModelId::Llama, 8);
    std::printf("%-14s %-7s %12s %13.2fG %9zu   (SV-F LLM case "
                "study)\n",
                "LLaMA2-13B", "LLaMA",
                formatBytes(llama.hbmFootprint).c_str(),
                llama.totalMacs() / 1e9, llama.ops.size());

    std::printf("\n");
    bench::header("Table II", "NPU simulator configuration");
    const NpuCoreConfig cfg;
    std::printf("  # of MEs/VEs            : %u MEs & %u VEs\n",
                cfg.numMes, cfg.numVes);
    std::printf("  ME dimension            : 128 x 128 systolic "
                "array\n");
    std::printf("  VE ALU dimension        : 128 x 8 FP32 ops/cycle\n");
    std::printf("  Frequency               : %.0f MHz\n",
                cfg.freqHz / 1e6);
    std::printf("  On-chip SRAM            : %s\n",
                formatBytes(cfg.sramBytes).c_str());
    std::printf("  HBM capacity & bandwidth: %s, %s\n",
                formatBytes(cfg.hbmBytes).c_str(),
                formatBandwidth(cfg.hbmBytesPerSec).c_str());
    std::printf("  ME preemption penalty   : %.0f cycles (128 pop "
                "partial sums + 128 pop weights)\n",
                cfg.mePreemptCycles);
    std::printf("  Isolation segments      : %s SRAM / %s HBM\n",
                formatBytes(cfg.sramSegment).c_str(),
                formatBytes(cfg.hbmSegment).c_str());
    return 0;
}
