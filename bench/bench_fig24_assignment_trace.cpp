/**
 * @file
 * Fig. 24: number of MEs and VEs assigned to each collocated workload
 * over time under Neu10's dynamic scheduling, for three pairs. The
 * ME-hungry side repeatedly harvests past its 2-engine allocation
 * whenever the partner's engines idle.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/serving.hh"

using namespace neu10;

namespace
{

constexpr size_t kBins = 56;

void
tracePair(ModelId w1, unsigned b1, ModelId w2, unsigned b2,
          const char *label)
{
    ServingConfig cfg;
    cfg.policy = PolicyKind::Neu10;
    cfg.tenants = {
        {w1, b1, 2, 2, 1.0, 1},
        {w2, b2, 2, 2, 1.0, 1},
    };
    cfg.minRequests = 6;
    cfg.maxCycles = 2.5e9;
    cfg.captureAssignment = true;
    const auto res = runServing(cfg);

    std::printf("\n%s (window %.1f ms)\n", label,
                bench::toMs(res.makespan));
    for (int w = 0; w < 2; ++w) {
        const auto &t = res.tenants[w];
        const auto mes = t.assignedMes.rebin(0.0, res.makespan, kBins);
        const auto ves = t.assignedVes.rebin(0.0, res.makespan, kBins);
        std::printf("  %-6s MEs |%s| peak %.0f (owns 2)\n",
                    t.model.c_str(),
                    bench::sparkline(mes, 4.0).c_str(),
                    t.assignedMes.peak());
        std::printf("  %-6s VEs |%s| peak %.1f (owns 2)\n",
                    t.model.c_str(),
                    bench::sparkline(ves, 4.0).c_str(),
                    t.assignedVes.peak());
    }
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 24", "assigned MEs/VEs per workload over "
                               "time (Neu10, 2ME+2VE vNPUs on a "
                               "4ME/4VE core)");
    tracePair(ModelId::Dlrm, 32, ModelId::RetinaNet, 32, "DLRM+RtNt");
    tracePair(ModelId::EfficientNet, 32, ModelId::ShapeMask, 8,
              "ENet+SMask");
    tracePair(ModelId::ResNetRs, 32, ModelId::RetinaNet, 32,
              "RNRS+RtNt");

    std::printf("\nShape check: the ME-intensive side (RetinaNet / "
                "ShapeMask) repeatedly harvests up to all 4 MEs when "
                "the partner idles, and drops back to its own 2 on "
                "reclaim — the Fig. 24 sawtooth.\n");
    return 0;
}
