/**
 * @file
 * Fig. 7: HBM bandwidth utilization over time for BERT and DLRM at
 * batch sizes 8 and 32. Peak approaches the 1.2 TB/s hardware limit;
 * the average sits far below it, and BERT's average *drops* with
 * batch size while DLRM's stays flat.
 */

#include <cstdio>

#include "bench_util.hh"
#include "compiler/profile.hh"
#include "models/zoo.hh"
#include "stats/timeseries.hh"

using namespace neu10;

namespace
{

constexpr double kHbmBpc = 1.2e12 / 1.05e9;
constexpr size_t kBins = 48;

void
bandwidthRow(ModelId id, unsigned batch)
{
    const auto prof =
        profileWorkload(buildModel(id, batch), 4, 4, kHbmBpc);

    TimeSeries bw; // bytes per cycle over time
    for (const auto &op : prof.timeline) {
        const double rate =
            static_cast<double>(op.bytes) /
            std::max(1.0, op.end - op.start);
        bw.record(op.start, std::min(rate, kHbmBpc));
    }
    const auto bins = bw.rebin(0.0, prof.demandTime, kBins);

    const Clock clock;
    const double avg_gbs =
        clock.toBytesPerSec(prof.averageBandwidth()) / 1e9;
    const double peak_gbs = clock.toBytesPerSec(bw.peak()) / 1e9;
    std::printf("%-6s b=%-4u avg %7.2f GB/s  peak %7.2f GB/s  span "
                "%9.3f ms\n",
                modelAbbrev(id).c_str(), batch, avg_gbs, peak_gbs,
                bench::toMs(prof.demandTime));
    std::printf("  BW |%s| (full scale = 1.2 TB/s)\n",
                bench::sparkline(bins, kHbmBpc).c_str());
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 7", "HBM bandwidth utilization over time");
    bandwidthRow(ModelId::Bert, 8);
    bandwidthRow(ModelId::Bert, 32);
    bandwidthRow(ModelId::Dlrm, 8);
    bandwidthRow(ModelId::Dlrm, 32);

    std::printf("\nShape check (paper: BERT 347->176 GB/s avg from "
                "batch 8 to 32; DLRM ~498->494 GB/s): BERT's average "
                "falls with batch while DLRM's stays flat near its "
                "embedding-bound ceiling; peaks approach the 1.2 TB/s "
                "limit.\n");
    return 0;
}
