/**
 * @file
 * google-benchmark microbenchmarks of the framework's hot components:
 * NeuISA encode/decode, the interpreter, max-min allocation, segment
 * translation, IOMMU lookup, event-queue operations, the allocator's
 * EU sweep, and a full scheduler round on a loaded core.
 */

#include <benchmark/benchmark.h>

#include "isa/builders.hh"
#include "isa/encoding.hh"
#include "isa/interpreter.hh"
#include "npu/bandwidth.hh"
#include "npu/core_sim.hh"
#include "sched/policy.hh"
#include "sim/event_queue.hh"
#include "virt/iommu.hh"
#include "virt/memory.hh"
#include "vnpu/allocator.hh"

namespace neu10
{
namespace
{

void
BM_NeuIsaEncode(benchmark::State &state)
{
    const NeuIsaProgram prog = makeNeuIsaMatmulRelu(
        4, 4, static_cast<unsigned>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(encode(prog));
}
BENCHMARK(BM_NeuIsaEncode)->Arg(8)->Arg(64)->Arg(512);

void
BM_NeuIsaDecode(benchmark::State &state)
{
    const auto image = encode(makeNeuIsaMatmulRelu(
        4, 4, static_cast<unsigned>(state.range(0))));
    for (auto _ : state)
        benchmark::DoNotOptimize(decode(image));
}
BENCHMARK(BM_NeuIsaDecode)->Arg(8)->Arg(64)->Arg(512);

void
BM_InterpreterLoop(benchmark::State &state)
{
    const NeuIsaProgram prog = makeNeuIsaLoop(
        static_cast<unsigned>(state.range(0)), 4);
    for (auto _ : state) {
        Interpreter interp;
        benchmark::DoNotOptimize(interp.runProgram(prog));
    }
}
BENCHMARK(BM_InterpreterLoop)->Arg(4)->Arg(64);

void
BM_MaxMinAllocate(benchmark::State &state)
{
    std::vector<double> demands;
    for (int i = 0; i < state.range(0); ++i)
        demands.push_back(1.0 + (i % 7));
    for (auto _ : state)
        benchmark::DoNotOptimize(maxMinAllocate(demands, 10.0));
}
BENCHMARK(BM_MaxMinAllocate)->Arg(4)->Arg(16)->Arg(64);

void
BM_SegmentTranslate(benchmark::State &state)
{
    SegmentPool pool(64_GiB, 1_GiB);
    AddressSpace as(1_GiB, pool.allocate(16_GiB));
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            as.translate(addr % as.size()));
        addr += 4097;
    }
}
BENCHMARK(BM_SegmentTranslate);

void
BM_IommuTranslate(benchmark::State &state)
{
    Iommu iommu;
    iommu.attach(1);
    for (int i = 0; i < 16; ++i)
        iommu.map(1, i * 0x10000ull, i * 0x100000ull, 0x10000);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            iommu.translate(1, addr % (16 * 0x10000ull)));
        addr += 4099;
    }
}
BENCHMARK(BM_IommuTranslate);

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        for (int i = 0; i < state.range(0); ++i)
            q.schedule(static_cast<Cycles>((i * 7919) % 100000),
                       [](Cycles) {});
        q.runUntil();
        benchmark::DoNotOptimize(q.executed());
    }
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(10000);

void
BM_AllocatorSweep(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(allocSweep(0.93, 0.2, 16));
}
BENCHMARK(BM_AllocatorSweep);

void
BM_SchedulerRound(benchmark::State &state)
{
    // One full simulated inference of a synthetic 64-group model on a
    // loaded 2-tenant core: measures end-to-end simulator throughput.
    CompiledModel m;
    m.model = "synthetic";
    m.batch = 1;
    m.nx = 4;
    m.ny = 4;
    m.neuIsa = true;
    CompiledOp op;
    op.name = "op";
    op.kind = OpKind::MatMul;
    for (int g = 0; g < 64; ++g) {
        WorkGroup grp;
        for (int t = 0; t < 4; ++t) {
            WorkUnit u;
            u.kind = UTopKind::Me;
            u.meTime = 4096.0;
            u.veTime = 1024.0;
            u.bytes = 1 << 20;
            grp.units.push_back(u);
        }
        op.groups.push_back(grp);
    }
    m.ops.push_back(op);
    m.validate();

    for (auto _ : state) {
        EventQueue queue;
        std::vector<VnpuSlot> slots(2);
        for (auto &s : slots) {
            s.nMes = 2;
            s.nVes = 2;
        }
        NpuCoreSim core(queue, NpuCoreConfig{},
                        makePolicy(PolicyKind::Neu10), slots);
        core.submit(0, &m, nullptr);
        core.submit(1, &m, nullptr);
        queue.runUntil();
        benchmark::DoNotOptimize(queue.executed());
    }
}
BENCHMARK(BM_SchedulerRound);

} // anonymous namespace
} // namespace neu10

BENCHMARK_MAIN();
