/**
 * @file
 * Fig. 25: throughput improvement of Neu10 as the core's engine
 * counts scale (2ME-2VE up to 8ME-8VE, evenly split between the two
 * vNPUs), normalized to V10 on the 2ME-2VE core. More engines mean
 * more slack for uTOp-level scheduling, so the gap widens.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/serving.hh"

using namespace neu10;

namespace
{

struct CoreShape
{
    const char *label;
    unsigned mes;
    unsigned ves;
};

const CoreShape kShapes[] = {
    {"2ME-2VE", 2, 2}, {"4ME-2VE", 4, 2}, {"4ME-4VE", 4, 4},
    {"8ME-4VE", 8, 4}, {"8ME-8VE", 8, 8},
};

double
pairThroughput(const WorkloadPair &pair, PolicyKind policy,
               unsigned mes, unsigned ves)
{
    ServingConfig cfg;
    cfg.core.numMes = mes;
    cfg.core.numVes = ves;
    cfg.policy = policy;
    cfg.tenants = {
        {pair.w1, pair.batch1, std::max(1u, mes / 2),
         std::max(1u, ves / 2), 1.0, 1},
        {pair.w2, pair.batch2, std::max(1u, mes / 2),
         std::max(1u, ves / 2), 1.0, 1},
    };
    cfg.minRequests = 6;
    cfg.maxCycles = 2.5e9;
    return runServing(cfg).totalThroughput();
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 25", "Neu10 throughput with varying engine "
                               "counts, normalized to V10@2ME-2VE");
    std::printf("%-12s", "Pair");
    for (const auto &s : kShapes)
        std::printf(" %9s", s.label);
    std::printf(" %9s\n", "V10@2-2");
    bench::rule();

    for (const auto &pair : bench::smokeTrim(evaluationPairs())) {
        const double base =
            pairThroughput(pair, PolicyKind::V10, 2, 2);
        std::printf("%-12s", pair.label);
        for (const auto &s : kShapes) {
            const double thr =
                pairThroughput(pair, PolicyKind::Neu10, s.mes, s.ves);
            std::printf(" %9.2f", thr / base);
        }
        std::printf(" %9.2f\n", 1.0);
    }

    std::printf("\nShape check: normalized throughput grows "
                "monotonically with engine count, and the growth is "
                "super-proportional for contended pairs — more "
                "engines give the uTOp scheduler more slack to "
                "harvest (SV-E).\n");
    return 0;
}
