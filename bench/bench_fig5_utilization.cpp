/**
 * @file
 * Fig. 5: ME and VE utilization over the course of one inference
 * request for representative models, measured by running each model
 * solo on the 4ME/4VE Table II core in the event-driven simulator.
 */

#include <cstdio>

#include "bench_util.hh"
#include "models/zoo.hh"
#include "npu/core_sim.hh"
#include "runtime/serving.hh"
#include "sched/policy.hh"

using namespace neu10;

namespace
{

constexpr size_t kBins = 48;

void
soloUtilization(ModelId id, unsigned batch)
{
    const NpuCoreConfig cfg;
    const CompiledModel prog =
        lowerToNeuIsa(buildModel(id, batch), cfg.numMes, cfg.numVes,
                      cfg.machine());

    EventQueue queue;
    std::vector<VnpuSlot> slots(1);
    slots[0].nMes = cfg.numMes;
    slots[0].nVes = cfg.numVes;
    NpuCoreSim core(queue, cfg, makePolicy(PolicyKind::Neu10), slots);

    Cycles finish = 0.0;
    core.submit(0, &prog,
                [&](const RequestResult &r) { finish = r.finishTime; });
    queue.runUntil();

    const auto me =
        core.meUseful().series().rebin(0.0, finish, kBins);
    const auto ve = core.veBusy().series().rebin(0.0, finish, kBins);

    std::printf("%-13s b=%-3u request=%9.3f ms  avg ME %.0f%%  avg VE "
                "%.0f%%\n",
                modelAbbrev(id).c_str(), batch, bench::toMs(finish),
                100.0 * core.meUseful().utilization(0.0, finish),
                100.0 * core.veBusy().utilization(0.0, finish));
    std::printf("  ME%% |%s|\n",
                bench::sparkline(me, cfg.numMes).c_str());
    std::printf("  VE%% |%s|\n",
                bench::sparkline(ve, cfg.numVes).c_str());
}

} // anonymous namespace

int
main()
{
    bench::header("Figure 5", "ME/VE utilization of one inference "
                              "request (solo, 4ME/4VE core)");
    for (ModelId id : {ModelId::Bert, ModelId::Transformer,
                       ModelId::Dlrm, ModelId::Ncf, ModelId::ResNet,
                       ModelId::MaskRcnn}) {
        soloUtilization(id, 8);
    }
    std::printf("\nShape check: neither engine type stays busy for a "
                "whole request — the idle troughs are the sharing "
                "opportunity Neu10 harvests (SII-B).\n");
    return 0;
}
