/**
 * @file
 * Ablation (DESIGN.md): which half of harvesting matters where, and
 * how sensitive reclaim is to the ME context-switch cost.
 *
 *  (a) ME-only vs VE-only vs full harvesting, per pair class.
 *  (b) Reclaim-penalty sweep: 0 / 256 (paper) / 1024 / 4096 cycles.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/serving.hh"
#include "sched/neu10_policy.hh"

using namespace neu10;

namespace
{

ServingResult
runWith(const WorkloadPair &pair, bool harvest_me, bool harvest_ve,
        Cycles preempt_cycles)
{
    // Build the experiment by hand so we can toggle the policy knobs.
    ServingConfig cfg;
    cfg.policy = PolicyKind::Neu10;
    cfg.core.mePreemptCycles = preempt_cycles;
    cfg.tenants = {
        {pair.w1, pair.batch1, 2, 2, 1.0, 1},
        {pair.w2, pair.batch2, 2, 2, 1.0, 1},
    };
    cfg.minRequests = 6;
    cfg.maxCycles = 2.5e9;

    // runServing instantiates the stock policy; reproduce its loop
    // with a customized one.
    std::vector<CompiledModel> programs;
    for (const auto &spec : cfg.tenants)
        programs.push_back(compileFor(spec, cfg.policy, cfg.core));
    std::vector<VnpuSlot> slots(2);
    for (int i = 0; i < 2; ++i) {
        slots[i].nMes = cfg.tenants[i].nMes;
        slots[i].nVes = cfg.tenants[i].nVes;
    }
    EventQueue queue;
    auto policy = std::make_unique<Neu10Policy>(/*harvest=*/true);
    policy->setHarvestMes(harvest_me);
    policy->setHarvestVes(harvest_ve);
    NpuCoreSim core(queue, cfg.core, std::move(policy), slots);

    ServingResult result;
    result.tenants.resize(2);
    bool stopped = false;
    std::function<void(std::uint32_t)> pump = [&](std::uint32_t s) {
        core.submit(s, &programs[s], [&, s](const RequestResult &r) {
            if (stopped)
                return;
            ++result.tenants[s].completed;
            result.tenants[s].latencyCycles.add(r.latency());
            if (result.tenants[0].completed >= cfg.minRequests &&
                result.tenants[1].completed >= cfg.minRequests) {
                stopped = true;
                return;
            }
            pump(s);
        });
    };
    pump(0);
    pump(1);
    while (!stopped && !queue.empty() && queue.now() < cfg.maxCycles)
        queue.step();
    const Cycles window = std::max(1.0, queue.now());
    const Clock clock(cfg.core.freqHz);
    for (int i = 0; i < 2; ++i)
        result.tenants[i].throughput =
            result.tenants[i].completed / clock.toSeconds(window);
    result.meUsefulUtil = core.meUseful().utilization(0.0, window);
    return result;
}

} // anonymous namespace

int
main()
{
    bench::header("Ablation A", "ME-only vs VE-only vs full "
                                "harvesting (total throughput "
                                "normalized to no-harvest)");
    std::printf("%-12s %10s %10s %10s\n", "Pair", "ME-only",
                "VE-only", "full");
    bench::rule();
    for (const auto &pair : bench::smokeTrim(evaluationPairs())) {
        const double none =
            runWith(pair, false, false, 256.0).totalThroughput();
        const double me =
            runWith(pair, true, false, 256.0).totalThroughput();
        const double ve =
            runWith(pair, false, true, 256.0).totalThroughput();
        const double full =
            runWith(pair, true, true, 256.0).totalThroughput();
        std::printf("%-12s %10.2f %10.2f %10.2f\n", pair.label,
                    me / none, ve / none, full / none);
    }

    std::printf("\n");
    bench::header("Ablation B", "reclaim context-switch cost sweep "
                                "(total throughput normalized to the "
                                "paper's 256 cycles)");
    std::printf("%-12s %10s %10s %10s %10s\n", "Pair", "0cy",
                "256cy", "1024cy", "4096cy");
    bench::rule();
    const std::vector<WorkloadPair> sweep_pairs = {
        evaluationPairs()[0], evaluationPairs()[4],
        evaluationPairs()[8]};
    for (const auto &pair : bench::smokeTrim(sweep_pairs, 1)) {
        const double base =
            runWith(pair, true, true, 256.0).totalThroughput();
        std::printf("%-12s", pair.label);
        for (double pen : {0.0, 256.0, 1024.0, 4096.0}) {
            const double thr =
                runWith(pair, true, true, pen).totalThroughput();
            std::printf(" %10.3f", thr / base);
        }
        std::printf("\n");
    }
    std::printf("\nShape check: ME harvesting dominates for ME-"
                "contended pairs, VE harvesting for recommender "
                "pairs; throughput is nearly insensitive to the "
                "reclaim cost at the paper's 256 cycles (SIII-G's "
                "'negligible overhead' claim).\n");
    return 0;
}
