/**
 * @file
 * Fig. 22: total ME and VE utilization of the NPU core for the nine
 * workload pairs under the four designs.
 */

#include <cstdio>

#include "bench_util.hh"
#include "runtime/serving.hh"

using namespace neu10;

int
main()
{
    const PolicyKind policies[4] = {PolicyKind::Pmt, PolicyKind::V10,
                                    PolicyKind::Neu10NH,
                                    PolicyKind::Neu10};

    const auto pairs = bench::smokeTrim(evaluationPairs());
    std::vector<std::array<ServingResult, 4>> rows;
    for (const auto &pair : pairs) {
        std::array<ServingResult, 4> row;
        for (int p = 0; p < 4; ++p) {
            ServingConfig cfg;
            cfg.policy = policies[p];
            cfg.tenants = {
                {pair.w1, pair.batch1, 2, 2, 1.0, 1},
                {pair.w2, pair.batch2, 2, 2, 1.0, 1},
            };
            cfg.minRequests = 8;
            cfg.maxCycles = 2.5e9;
            row[p] = runServing(cfg);
        }
        rows.push_back(row);
    }

    bench::header("Figure 22a", "total ME utilization (%)");
    std::printf("%-12s %8s %8s %8s %8s\n", "Pair", "PMT", "V10", "NH",
                "Neu10");
    bench::rule();
    double pmt_sum = 0.0, neu_sum = 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
        std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                    pairs[i].label,
                    100.0 * rows[i][0].meUsefulUtil,
                    100.0 * rows[i][1].meUsefulUtil,
                    100.0 * rows[i][2].meUsefulUtil,
                    100.0 * rows[i][3].meUsefulUtil);
        pmt_sum += rows[i][0].meUsefulUtil;
        neu_sum += rows[i][3].meUsefulUtil;
    }
    std::printf("Average ME utilization gain Neu10/PMT: %.2fx "
                "(paper: 1.26x)\n\n", neu_sum / pmt_sum);

    bench::header("Figure 22b", "total VE utilization (%)");
    std::printf("%-12s %8s %8s %8s %8s\n", "Pair", "PMT", "V10", "NH",
                "Neu10");
    bench::rule();
    pmt_sum = neu_sum = 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
        std::printf("%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                    pairs[i].label,
                    100.0 * rows[i][0].veUtil,
                    100.0 * rows[i][1].veUtil,
                    100.0 * rows[i][2].veUtil,
                    100.0 * rows[i][3].veUtil);
        pmt_sum += rows[i][0].veUtil;
        neu_sum += rows[i][3].veUtil;
    }
    std::printf("Average VE utilization gain Neu10/PMT: %.2fx "
                "(paper: 1.2x)\n", neu_sum / pmt_sum);
    return 0;
}
