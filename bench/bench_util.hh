/**
 * @file
 * Shared formatting helpers for the figure-reproduction binaries.
 *
 * Every bench prints: a header naming the paper artifact it
 * regenerates, the fixed-width data table(s), and a short "shape"
 * summary line the EXPERIMENTS.md comparison quotes.
 */

#ifndef NEU10_BENCH_BENCH_UTIL_HH
#define NEU10_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.hh"
#include "sim/clock.hh"

namespace neu10
{
namespace bench
{

/**
 * True when NEU10_SMOKE is set to anything but "0": CI smoke runs
 * (the `smoke` CTest label) shrink the sweeps so every bench binary
 * finishes in a couple of seconds while still exercising the full
 * code path at least once.
 */
inline bool
smokeMode()
{
    const char *v = std::getenv("NEU10_SMOKE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

/** In smoke mode keep only the first @p keep entries of a sweep. */
template <typename T>
inline std::vector<T>
smokeTrim(std::vector<T> v, std::size_t keep = 2)
{
    if (smokeMode() && v.size() > keep)
        v.resize(keep);
    return v;
}

/**
 * Rng seed for stochastic benches: NEU10_SEED=<n> overrides the
 * compiled-in default so bench and smoke runs are reproducible (or
 * deliberately varied) without recompiling. Parsed as base-10/0x...;
 * an unparsable value falls back to @p fallback.
 */
inline std::uint64_t
benchSeed(std::uint64_t fallback = 42)
{
    const char *v = std::getenv("NEU10_SEED");
    if (v == nullptr || v[0] == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 0);
    if (end == v || *end != '\0') {
        std::fprintf(stderr, "NEU10_SEED='%s' is not a number; using "
                             "%llu\n",
                     v, static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return parsed;
}

/** Print the bench banner. */
inline void
header(const std::string &artifact, const std::string &what)
{
    std::printf("================================================"
                "====================\n");
    std::printf("%s — %s\n", artifact.c_str(), what.c_str());
    std::printf("================================================"
                "====================\n");
}

/** Print a rule between table sections. */
inline void
rule()
{
    std::printf("----------------------------------------------------"
                "----------------\n");
}

/** Render a series of bin values as a compact sparkline row. */
inline std::string
sparkline(const std::vector<double> &bins, double max_value)
{
    static const char *marks[] = {" ", ".", ":", "-", "=", "+",
                                  "*", "#", "@"};
    std::string out;
    for (double b : bins) {
        const double frac = max_value > 0 ? b / max_value : 0.0;
        const int idx =
            std::min(8, static_cast<int>(frac * 8.0 + 0.5));
        out += marks[idx];
    }
    return out;
}

/** Cycles -> milliseconds on the Table II clock. */
inline double
toMs(double cycles)
{
    return Clock().toSeconds(cycles) * 1e3;
}

/** Cycles -> microseconds on the Table II clock. */
inline double
toUs(double cycles)
{
    return Clock().toSeconds(cycles) * 1e6;
}

} // namespace bench
} // namespace neu10

#endif // NEU10_BENCH_BENCH_UTIL_HH
