/**
 * @file
 * Shared formatting helpers for the figure-reproduction binaries.
 *
 * Every bench prints: a header naming the paper artifact it
 * regenerates, the fixed-width data table(s), and a short "shape"
 * summary line the EXPERIMENTS.md comparison quotes.
 */

#ifndef NEU10_BENCH_BENCH_UTIL_HH
#define NEU10_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "sim/clock.hh"

namespace neu10
{
namespace bench
{

/** Exit(2) on a user-level env/CLI error — bench binaries have no
 * one above them to catch FatalError usefully. fatal() already
 * printed the message at the default log level; repeat it only when
 * logging was silenced so the reason is never lost. */
[[noreturn]] inline void
usageError(const FatalError &err)
{
    if (logLevel() < LogLevel::Warn)
        std::fprintf(stderr, "error: %s\n", err.what());
    std::exit(2);
}

/**
 * True when NEU10_SMOKE is set truthy (common/env grammar): CI smoke
 * runs (the `smoke` CTest label) shrink the sweeps so every bench
 * binary finishes in a couple of seconds while still exercising the
 * full code path at least once. A malformed value exits with a clear
 * error instead of silently running the multi-minute full sweep.
 */
inline bool
smokeMode()
{
    try {
        return envFlag("NEU10_SMOKE", false);
    } catch (const FatalError &err) {
        usageError(err);
    }
}

/** In smoke mode keep only the first @p keep entries of a sweep. */
template <typename T>
inline std::vector<T>
smokeTrim(std::vector<T> v, std::size_t keep = 2)
{
    if (smokeMode() && v.size() > keep)
        v.resize(keep);
    return v;
}

/**
 * Rng seed for stochastic benches: NEU10_SEED=<n> overrides the
 * compiled-in default so bench and smoke runs are reproducible (or
 * deliberately varied) without recompiling. Parsed as base-10/0x...
 * by common/env; a non-numeric, signed, or overflowing value exits
 * with a clear error — a silently defaulted seed would record an
 * irreproducible experiment.
 */
inline std::uint64_t
benchSeed(std::uint64_t fallback = 42)
{
    try {
        return envUint64("NEU10_SEED", fallback);
    } catch (const FatalError &err) {
        usageError(err);
    }
}

/**
 * True when NEU10_TRACE is set truthy (common/env grammar: on/1/
 * true/yes): trace-capable benches (bench_cluster_serving,
 * bench_resilience) then run with sim-time tracing enabled and write
 * a Chrome trace-event JSON file — plus a metrics JSON next to it —
 * after the run. Off by default: the overhead contract
 * (docs/OBSERVABILITY.md) is measured with tracing compiled in but
 * disabled.
 */
inline bool
traceMode()
{
    try {
        return envFlag("NEU10_TRACE", false);
    } catch (const FatalError &err) {
        usageError(err);
    }
}

/**
 * Trace output path: NEU10_TRACE_OUT when set, @p fallback
 * otherwise. The metrics JSON lands at "<path>.metrics.json".
 * Scenario-backed benches get this via applyEnvOverrides instead
 * (scenario/scenario.hh), which uses the same envString grammar.
 */
inline std::string
traceOutPath(const char *fallback)
{
    return envString("NEU10_TRACE_OUT", fallback);
}

/** Print the bench banner. */
inline void
header(const std::string &artifact, const std::string &what)
{
    std::printf("================================================"
                "====================\n");
    std::printf("%s — %s\n", artifact.c_str(), what.c_str());
    std::printf("================================================"
                "====================\n");
}

/** Print a rule between table sections. */
inline void
rule()
{
    std::printf("----------------------------------------------------"
                "----------------\n");
}

/** Render a series of bin values as a compact sparkline row. */
inline std::string
sparkline(const std::vector<double> &bins, double max_value)
{
    static const char *marks[] = {" ", ".", ":", "-", "=", "+",
                                  "*", "#", "@"};
    std::string out;
    for (double b : bins) {
        const double frac = max_value > 0 ? b / max_value : 0.0;
        const int idx =
            std::min(8, static_cast<int>(frac * 8.0 + 0.5));
        out += marks[idx];
    }
    return out;
}

/** Cycles -> milliseconds on the Table II clock. */
inline double
toMs(double cycles)
{
    return Clock().toSeconds(cycles) * 1e3;
}

/** Cycles -> microseconds on the Table II clock. */
inline double
toUs(double cycles)
{
    return Clock().toSeconds(cycles) * 1e6;
}

} // namespace bench
} // namespace neu10

#endif // NEU10_BENCH_BENCH_UTIL_HH
