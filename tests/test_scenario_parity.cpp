/**
 * @file
 * Differential parity suite (CTest label `scenario`): every committed
 * scenario file that mirrors a hand-wired bench config must expand to
 * the same experiment — same config, field by field, and then the
 * same results, bit for bit (tests/result_eq.hh, no tolerances).
 *
 * The hand-wired recipes below are copied verbatim from the benches
 * as they stood before the scenario conversion (bench_cluster_serving
 * and bench_resilience are thin wrappers now; bench_fleet_scaling,
 * bench_perf_engine and bench_fig19_21_serving still carry theirs).
 * That duplication is the point: the scenario file, the bench and
 * this test must all agree, so none of the three can drift silently.
 *
 * Runs use the scenarios' smoke horizons — parity at the short
 * horizon implies parity at the full one (identical configs modulo
 * the horizon value, which the config comparison pins separately).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "cluster/fleet.hh"
#include "resilience/faults.hh"
#include "result_eq.hh"
#include "runtime/serving.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "vnpu/allocator.hh"

namespace neu10
{
namespace
{

/** Load a committed scenario in smoke mode (deliberately without
 * applyEnvOverrides: parity is between file and bench recipe; the
 * env plumbing has its own tests in test_scenario.cpp). */
Scenario
loadSmoke(const std::string &name)
{
    Scenario s = loadScenarioFile(std::string(NEU10_SCENARIO_DIR) +
                                  "/" + name + ".scn");
    s.smoke = true;
    return s;
}

void
expectTrafficEq(const TrafficSpec &a, const TrafficSpec &b)
{
    EXPECT_EQ(a.shape, b.shape);
    EXPECT_EQ(a.ratePerSec, b.ratePerSec);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.burstMultiplier, b.burstMultiplier);
    EXPECT_EQ(a.burstFraction, b.burstFraction);
    EXPECT_EQ(a.burstDwellSec, b.burstDwellSec);
    EXPECT_EQ(a.diurnalDepth, b.diurnalDepth);
    EXPECT_EQ(a.diurnalPeriodSec, b.diurnalPeriodSec);
    EXPECT_EQ(a.diurnalPhase, b.diurnalPhase);
}

/** Field-by-field FleetConfig comparison — run before the actual
 * simulations so a drift names the exact knob, not just "results
 * differ". */
void
expectFleetConfigEq(const FleetConfig &bench, const FleetConfig &scn)
{
    EXPECT_EQ(bench.numBoards, scn.numBoards);
    EXPECT_EQ(bench.board.numChips, scn.board.numChips);
    EXPECT_EQ(bench.board.coresPerChip, scn.board.coresPerChip);
    EXPECT_EQ(bench.board.core.freqHz, scn.board.core.freqHz);
    EXPECT_EQ(bench.placement, scn.placement);
    EXPECT_EQ(bench.corePolicy, scn.corePolicy);
    EXPECT_EQ(bench.engine, scn.engine);
    EXPECT_EQ(bench.threads, scn.threads);
    EXPECT_EQ(bench.horizon, scn.horizon);
    EXPECT_EQ(bench.maxCycles, scn.maxCycles);
    EXPECT_EQ(bench.elastic.epochs, scn.elastic.epochs);
    EXPECT_EQ(bench.elastic.imbalanceThreshold,
              scn.elastic.imbalanceThreshold);
    EXPECT_EQ(bench.elastic.maxMigrationsPerEpoch,
              scn.elastic.maxMigrationsPerEpoch);
    EXPECT_EQ(bench.elastic.migrationCostCycles,
              scn.elastic.migrationCostCycles);
    EXPECT_EQ(bench.elastic.resizeOnMigrate,
              scn.elastic.resizeOnMigrate);
    EXPECT_EQ(bench.elastic.growFactor, scn.elastic.growFactor);
    EXPECT_EQ(bench.resilience.failover, scn.resilience.failover);
    EXPECT_EQ(bench.resilience.recoveryStallCycles,
              scn.resilience.recoveryStallCycles);
    ASSERT_EQ(bench.resilience.faults.size(),
              scn.resilience.faults.size());
    for (size_t i = 0; i < bench.resilience.faults.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "fault " << i);
        EXPECT_EQ(bench.resilience.faults[i].at,
                  scn.resilience.faults[i].at);
        EXPECT_EQ(bench.resilience.faults[i].kind,
                  scn.resilience.faults[i].kind);
        EXPECT_EQ(bench.resilience.faults[i].board,
                  scn.resilience.faults[i].board);
        EXPECT_EQ(bench.resilience.faults[i].durationCycles,
                  scn.resilience.faults[i].durationCycles);
    }
    ASSERT_EQ(bench.tenants.size(), scn.tenants.size());
    for (size_t i = 0; i < bench.tenants.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "tenant " << i);
        EXPECT_EQ(bench.tenants[i].model, scn.tenants[i].model);
        EXPECT_EQ(bench.tenants[i].batch, scn.tenants[i].batch);
        EXPECT_EQ(bench.tenants[i].eus, scn.tenants[i].eus);
        EXPECT_EQ(bench.tenants[i].sloCycles,
                  scn.tenants[i].sloCycles);
        EXPECT_EQ(bench.tenants[i].maxQueueDepth,
                  scn.tenants[i].maxQueueDepth);
        EXPECT_EQ(bench.tenants[i].priority,
                  scn.tenants[i].priority);
        expectTrafficEq(bench.tenants[i].traffic,
                        scn.tenants[i].traffic);
    }
}

/** Config parity first (sharp diagnostics), then result parity (the
 * actual acceptance criterion). */
void
expectFleetParity(const FleetConfig &bench, const FleetConfig &scn)
{
    expectFleetConfigEq(bench, scn);
    if (::testing::Test::HasFailure())
        return; // configs differ; running them adds only noise
    expectFleetEq(runFleet(bench), runFleet(scn));
}

// ------------------------------------------- bench recipes (frozen)

/** bench_cluster_serving's makeFleet, pre-conversion, verbatim. */
FleetConfig
clusterFleet(PlacementPolicy placement, TrafficShape shape,
             Cycles horizon, std::uint64_t seed)
{
    const ModelId kModels[4] = {ModelId::Mnist, ModelId::Ncf,
                                ModelId::Dlrm, ModelId::ResNet};
    const unsigned kBatches[4] = {32, 32, 32, 8};
    const unsigned kEus[4] = {2, 4, 4, 6};
    const double kRhos[4] = {0.35, 0.55, 0.45, 0.6};

    FleetConfig cfg;
    cfg.numBoards = 4;
    cfg.placement = placement;
    cfg.corePolicy = PolicyKind::Neu10;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;

    Cycles service[4];
    for (unsigned k = 0; k < 4; ++k)
        service[k] = sizeVnpuForModel(kModels[k], kBatches[k],
                                      kEus[k], cfg.board.core)
                         .serviceEstimate();
    for (unsigned i = 0; i < 16; ++i) {
        const unsigned k = i % 4;
        ClusterTenantSpec t;
        t.model = kModels[k];
        t.batch = kBatches[k];
        t.eus = kEus[k];
        t.traffic.shape = shape;
        t.traffic.ratePerSec =
            kRhos[k] * cfg.board.core.freqHz / service[k];
        t.traffic.seed = seed + i;
        t.sloCycles = 5.0 * service[k];
        t.maxQueueDepth = 32;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

/** bench_resilience's baseFleet + board-loss fault, verbatim. */
FleetConfig
resilienceFleet(bool failover, Cycles horizon, std::uint64_t seed)
{
    FleetConfig cfg;
    cfg.numBoards = 4;
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;
    cfg.elastic.epochs = 10;
    cfg.resilience.recoveryStallCycles = 2e5;
    cfg.threads = 0;

    const ModelId models[4] = {ModelId::Mnist, ModelId::Ncf,
                               ModelId::Dlrm, ModelId::ResNet};
    const unsigned batches[4] = {32, 32, 32, 8};
    const unsigned eus[4] = {2, 4, 4, 6};
    for (unsigned i = 0; i < 16; ++i) {
        const unsigned k = i % 4;
        const Cycles service =
            sizeVnpuForModel(models[k], batches[k], eus[k],
                             cfg.board.core)
                .serviceEstimate();
        ClusterTenantSpec t;
        t.model = models[k];
        t.batch = batches[k];
        t.eus = eus[k];
        t.traffic.ratePerSec =
            0.4 * cfg.board.core.freqHz / service;
        t.traffic.seed = seed + i;
        t.sloCycles = 8.0 * service;
        t.maxQueueDepth = 64;
        cfg.tenants.push_back(t);
    }

    FaultEvent loss;
    loss.at = 0.3 * horizon;
    loss.kind = FaultKind::BoardLoss;
    loss.board = 1;
    loss.durationCycles = kCyclesInf;
    cfg.resilience.faults = {loss};
    cfg.resilience.failover = failover;
    return cfg;
}

/** bench_fleet_scaling's partElastic base(), verbatim. */
FleetConfig
scalingFleet(unsigned epochs, Cycles horizon, std::uint64_t seed)
{
    FleetConfig cfg;
    cfg.numBoards = 2;
    cfg.placement = PlacementPolicy::FirstFit;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;
    cfg.threads = 1;
    cfg.elastic.epochs = epochs;
    cfg.elastic.imbalanceThreshold = 0.05;
    cfg.elastic.maxMigrationsPerEpoch = 4;

    const Cycles service =
        sizeVnpuForModel(ModelId::Mnist, 32, 2, cfg.board.core)
            .serviceEstimate();
    for (unsigned i = 0; i < 8; ++i) {
        ClusterTenantSpec t;
        t.model = ModelId::Mnist;
        t.batch = 32;
        t.eus = 2;
        t.traffic.shape = TrafficShape::Bursty;
        t.traffic.ratePerSec =
            1.2 * cfg.board.core.freqHz / service;
        t.traffic.seed = seed + i;
        t.sloCycles = 5.0 * service;
        t.maxQueueDepth = 32;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

/** bench_perf_engine's canonicalFleet, verbatim. */
FleetConfig
perfFleet(Cycles horizon, std::uint64_t seed)
{
    static const ModelId kModels[4] = {ModelId::Mnist, ModelId::Ncf,
                                       ModelId::Dlrm,
                                       ModelId::ResNet};
    static const unsigned kBatches[4] = {32, 32, 32, 8};
    static const unsigned kEus[4] = {2, 4, 4, 6};

    FleetConfig cfg;
    cfg.numBoards = 4;
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;
    cfg.threads = 1;
    cfg.elastic.epochs = 4;
    for (unsigned i = 0; i < 24; ++i) {
        const unsigned m = i % 4;
        const Cycles service =
            sizeVnpuForModel(kModels[m], kBatches[m], kEus[m],
                             cfg.board.core)
                .serviceEstimate();
        ClusterTenantSpec t;
        t.model = kModels[m];
        t.batch = kBatches[m];
        t.eus = kEus[m];
        t.traffic.ratePerSec =
            0.35 * cfg.board.core.freqHz / service;
        t.traffic.seed = seed + i;
        t.sloCycles = 5.0 * service;
        t.maxQueueDepth = 32;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

// ---------------------------------------------------------- parity

TEST(ScenarioParity, ClusterFirstFit)
{
    expectFleetParity(clusterFleet(PlacementPolicy::FirstFit,
                                   TrafficShape::Poisson, 1e7, 42),
                      toFleetConfig(loadSmoke("cluster_first_fit")));
}

TEST(ScenarioParity, ClusterBestFit)
{
    expectFleetParity(clusterFleet(PlacementPolicy::BestFit,
                                   TrafficShape::Poisson, 1e7, 42),
                      toFleetConfig(loadSmoke("cluster_best_fit")));
}

TEST(ScenarioParity, ClusterLoadBalanced)
{
    expectFleetParity(
        clusterFleet(PlacementPolicy::LoadBalanced,
                     TrafficShape::Poisson, 1e7, 42),
        toFleetConfig(loadSmoke("cluster_load_balanced")));
}

TEST(ScenarioParity, ClusterBursty)
{
    expectFleetParity(clusterFleet(PlacementPolicy::FirstFit,
                                   TrafficShape::Bursty, 1e7, 42),
                      toFleetConfig(loadSmoke("cluster_bursty")));
}

TEST(ScenarioParity, ResilienceBoardLossFailover)
{
    expectFleetParity(
        resilienceFleet(true, 8e6, 42),
        toFleetConfig(loadSmoke("resilience_board_loss")));
}

TEST(ScenarioParity, ResilienceBoardLossNoFailover)
{
    expectFleetParity(
        resilienceFleet(false, 8e6, 42),
        toFleetConfig(loadSmoke("resilience_no_failover")));
}

TEST(ScenarioParity, FleetStatic)
{
    expectFleetParity(scalingFleet(1, 6e6, 42),
                      toFleetConfig(loadSmoke("fleet_static")));
}

TEST(ScenarioParity, FleetElastic)
{
    expectFleetParity(scalingFleet(8, 6e6, 42),
                      toFleetConfig(loadSmoke("fleet_elastic")));
}

TEST(ScenarioParity, PerfFleet4Board)
{
    expectFleetParity(perfFleet(4e6, 42),
                      toFleetConfig(loadSmoke("perf_fleet_4board")));
}

TEST(ScenarioParity, PaperClosedLoopBertEnet)
{
    // bench_fig19_21_serving's runPair, Neu10 cell, BERT+ENet pair.
    ServingConfig bench;
    bench.policy = PolicyKind::Neu10;
    bench.tenants = {
        TenantSpec{ModelId::Bert, 32, 2, 2, 1.0, 1},
        TenantSpec{ModelId::EfficientNet, 32, 2, 2, 1.0, 1},
    };
    bench.minRequests = 10;
    bench.maxCycles = 3e9;

    const ServingConfig scn =
        toServingConfig(loadSmoke("paper_closed_loop_bert_enet"));
    EXPECT_EQ(bench.policy, scn.policy);
    EXPECT_EQ(bench.minRequests, scn.minRequests);
    EXPECT_EQ(bench.maxCycles, scn.maxCycles);
    ASSERT_EQ(bench.tenants.size(), scn.tenants.size());
    for (size_t i = 0; i < bench.tenants.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "tenant " << i);
        EXPECT_EQ(bench.tenants[i].model, scn.tenants[i].model);
        EXPECT_EQ(bench.tenants[i].batch, scn.tenants[i].batch);
        EXPECT_EQ(bench.tenants[i].nMes, scn.tenants[i].nMes);
        EXPECT_EQ(bench.tenants[i].nVes, scn.tenants[i].nVes);
        EXPECT_EQ(bench.tenants[i].priority,
                  scn.tenants[i].priority);
        EXPECT_EQ(bench.tenants[i].outstanding,
                  scn.tenants[i].outstanding);
    }
    if (::testing::Test::HasFailure())
        return;
    expectServingEq(runServing(bench), runServing(scn));
}

} // anonymous namespace
} // namespace neu10
