/**
 * @file
 * Unit tests for the ISA library: slot timing, VLIW structural rules,
 * NeuISA validation, control-flow interpretation (incl. the Fig. 15
 * loop and the divergent-nextGroup exception), and the binary codec.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/builders.hh"
#include "isa/encoding.hh"
#include "isa/interpreter.hh"
#include "isa/neuisa.hh"
#include "isa/ops.hh"
#include "isa/vliw.hh"

namespace neu10
{
namespace
{

// ---------------------------------------------------------------- ops

TEST(Ops, MeTimingMatchesPaper)
{
    // Fig. 6: a pop takes 8 cycles, a VE op takes 1.
    EXPECT_DOUBLE_EQ(meOpCycles(MeOpcode::Pop), 8.0);
    EXPECT_DOUBLE_EQ(meOpCycles(MeOpcode::Push), 1.0);
    EXPECT_DOUBLE_EQ(meOpCycles(MeOpcode::Nop), 0.0);
    EXPECT_DOUBLE_EQ(veOpCycles(VeOpcode::Relu), 1.0);
    EXPECT_DOUBLE_EQ(veOpCycles(VeOpcode::Nop), 0.0);
}

TEST(Ops, MnemonicsAreStable)
{
    EXPECT_EQ(toString(MeOpcode::Pop), "pop");
    EXPECT_EQ(toString(VeOpcode::Relu), "relu");
    EXPECT_EQ(toString(MiscOpcode::UTopNextGroup), "uTop.nextGroup");
    EXPECT_EQ(toString(MiscOpcode::UTopFinish), "uTop.finish");
}

// --------------------------------------------------------------- vliw

TEST(Vliw, BundleLatencyIsSlowestSlot)
{
    VliwInstruction inst;
    inst.me = {{MeOpcode::Pop, 0}};
    inst.ve = {{VeOpcode::Relu, 0, 0, 0}};
    EXPECT_DOUBLE_EQ(inst.latency(), 8.0);
    inst.me[0].op = MeOpcode::Nop;
    EXPECT_DOUBLE_EQ(inst.latency(), 1.0);
}

TEST(Vliw, ProgramValidatesSlotWidths)
{
    setLogLevel(LogLevel::Silent);
    VliwProgram prog;
    prog.numMeSlots = 2;
    prog.numVeSlots = 2;
    VliwInstruction bad;
    bad.me.resize(1); // wrong width
    bad.ve.resize(2);
    prog.code.push_back(bad);
    EXPECT_THROW(prog.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Vliw, ProgramRejectsControlOps)
{
    setLogLevel(LogLevel::Silent);
    VliwProgram prog;
    prog.numMeSlots = 1;
    prog.numVeSlots = 1;
    VliwInstruction inst;
    inst.me.resize(1);
    inst.ve.resize(1);
    inst.misc.op = MiscOpcode::UTopFinish;
    prog.code.push_back(inst);
    EXPECT_THROW(prog.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Vliw, MatmulReluBuilderShapes)
{
    VliwProgram prog = makeVliwMatmulRelu(2, 2, 4);
    EXPECT_EQ(prog.numMeSlots, 2u);
    // push + 4 x (pop, relu)
    EXPECT_EQ(prog.code.size(), 9u);
    // Every ME pop contributes 8 busy cycles: 2 MEs x 4 pops x 8
    // + 2 pushes.
    EXPECT_DOUBLE_EQ(prog.totalMeBusy(), 2 * 4 * 8.0 + 2.0);
    EXPECT_DOUBLE_EQ(prog.totalVeBusy(), 2 * 4 * 1.0);
}

TEST(Vliw, MatmulReluVeMostlyIdle)
{
    // The paper's Fig. 6 point: in the fused ME-intensive operator the
    // VEs idle for most of the runtime under lockstep VLIW issue.
    VliwProgram prog = makeVliwMatmulRelu(2, 2, 8);
    const double ve_busy = prog.totalVeBusy() / 2.0; // per VE
    const double total = prog.totalLatency();
    EXPECT_LT(ve_busy / total, 0.15);
}

// ------------------------------------------------------------- neuisa

TEST(NeuIsa, MatmulReluBuilderValidates)
{
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(4, 2, 8);
    EXPECT_EQ(prog.table.size(), 1u);
    EXPECT_EQ(prog.table[0].meUTops.size(), 4u);
    EXPECT_EQ(prog.snippets.size(), 1u); // shared snippet, no inflation
    EXPECT_NO_THROW(prog.validate());
}

TEST(NeuIsa, GroupWidthEnforced)
{
    setLogLevel(LogLevel::Silent);
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(2, 2, 1);
    prog.table[0].meUTops.push_back(0); // 3 > nx = 2
    EXPECT_THROW(prog.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(NeuIsa, MeUTopMustHaveOneMeSlot)
{
    setLogLevel(LogLevel::Silent);
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(1, 2, 1);
    prog.snippets[0].code[0].me.clear(); // strip the ME slot
    EXPECT_THROW(prog.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(NeuIsa, SnippetMustEndInFinish)
{
    setLogLevel(LogLevel::Silent);
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(1, 2, 1);
    prog.snippets[0].code.pop_back(); // drop uTop.finish
    EXPECT_THROW(prog.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(NeuIsa, KindMismatchInTableRejected)
{
    setLogLevel(LogLevel::Silent);
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(1, 2, 1);
    UTopGroup g;
    g.veUTop = 0; // snippet 0 is an ME uTOp
    prog.table.push_back(g);
    EXPECT_THROW(prog.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(NeuIsa, VeUTopWithMeCostRejected)
{
    setLogLevel(LogLevel::Silent);
    NeuIsaProgram prog = makeNeuIsaLoop(1, 2);
    prog.snippets[2].cost.meCycles = 5.0; // VE uTOp with ME cost
    EXPECT_THROW(prog.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(NeuIsa, StaticCostCountsSharedSnippetsPerAppearance)
{
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(4, 2, 8);
    const UTopCost c = prog.staticCost();
    EXPECT_DOUBLE_EQ(c.meCycles, 4 * 8 * 8.0);
    EXPECT_DOUBLE_EQ(c.veCycles, 4 * 8 * 1.0);
}

TEST(NeuIsa, DisassemblyMentionsStructure)
{
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(2, 2, 1);
    const std::string s = prog.toString();
    EXPECT_NE(s.find("group 0"), std::string::npos);
    EXPECT_NE(s.find("ME[0]"), std::string::npos);
}

// -------------------------------------------------------- interpreter

TEST(Interpreter, StraightLineProgramRunsAllGroups)
{
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(3, 2, 2);
    Interpreter interp;
    const auto res = interp.runProgram(prog);
    EXPECT_EQ(res.groupsExecuted, 1u);
    EXPECT_EQ(res.uTopsExecuted, 3u);
    EXPECT_EQ(res.groupTrace, (std::vector<std::uint32_t>{0}));
}

TEST(Interpreter, Fig15LoopIteratesExactly)
{
    for (unsigned iters : {1u, 2u, 7u}) {
        NeuIsaProgram prog = makeNeuIsaLoop(iters, 2);
        Interpreter interp;
        const auto res = interp.runProgram(prog);
        // Each iteration runs groups 0,1,2.
        EXPECT_EQ(res.groupsExecuted, 3u * iters) << iters;
        EXPECT_EQ(interp.scratch(0),
                  static_cast<std::int64_t>(iters)) << iters;
        EXPECT_EQ(res.groupTrace.front(), 0u);
        EXPECT_EQ(res.groupTrace.back(), 2u);
    }
}

TEST(Interpreter, ScratchPersistsAcrossGroups)
{
    NeuIsaProgram prog = makeNeuIsaLoop(3, 1, 5);
    Interpreter interp;
    interp.setScratch(5, 1); // pre-charge the counter: one fewer lap
    const auto res = interp.runProgram(prog);
    EXPECT_EQ(res.groupsExecuted, 3u * 2);
    EXPECT_EQ(interp.scratch(5), 3);
}

TEST(Interpreter, DivergentNextGroupRaisesException)
{
    setLogLevel(LogLevel::Silent);
    // Two ME uTOps in one group requesting different targets.
    NeuIsaProgram prog;
    prog.maxMeUTopsPerGroup = 2;
    prog.numVeSlots = 1;

    auto make_jumper = [&](std::int64_t target) {
        UTop u;
        u.kind = UTopKind::Me;
        VliwInstruction set;
        set.me.resize(1);
        set.ve.resize(1);
        set.misc = {MiscOpcode::SLoadImm, 1, 0, 0, target};
        u.code.push_back(set);
        VliwInstruction jmp;
        jmp.me.resize(1);
        jmp.ve.resize(1);
        jmp.misc = {MiscOpcode::UTopNextGroup, 0, 1, 0, 0};
        u.code.push_back(jmp);
        VliwInstruction fin;
        fin.me.resize(1);
        fin.ve.resize(1);
        fin.misc.op = MiscOpcode::UTopFinish;
        u.code.push_back(fin);
        return u;
    };
    prog.snippets.push_back(make_jumper(0));
    prog.snippets.push_back(make_jumper(1));
    UTopGroup g;
    g.meUTops = {0, 1};
    prog.table.push_back(g);
    // Also a second group so target 1 is in range.
    UTopGroup g1;
    g1.meUTops = {0};
    prog.table.push_back(g1);

    Interpreter interp;
    interp.setInstLimit(1000);
    EXPECT_THROW(interp.runProgram(prog), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Interpreter, AgreeingNextGroupIsAllowed)
{
    // Mirror of the divergence test but with matching targets: legal.
    NeuIsaProgram prog;
    prog.maxMeUTopsPerGroup = 2;
    prog.numVeSlots = 1;
    auto make_jumper = [&]() {
        UTop u;
        u.kind = UTopKind::Me;
        VliwInstruction set;
        set.me.resize(1);
        set.ve.resize(1);
        set.misc = {MiscOpcode::SLoadImm, 1, 0, 0, 2};
        u.code.push_back(set);
        VliwInstruction jmp;
        jmp.me.resize(1);
        jmp.ve.resize(1);
        jmp.misc = {MiscOpcode::UTopNextGroup, 0, 1, 0, 0};
        u.code.push_back(jmp);
        VliwInstruction fin;
        fin.me.resize(1);
        fin.ve.resize(1);
        fin.misc.op = MiscOpcode::UTopFinish;
        u.code.push_back(fin);
        return u;
    };
    prog.snippets.push_back(make_jumper());
    UTop plain;
    plain.kind = UTopKind::Me;
    VliwInstruction fin;
    fin.me.resize(1);
    fin.ve.resize(1);
    fin.misc.op = MiscOpcode::UTopFinish;
    plain.code.push_back(fin);
    prog.snippets.push_back(plain);

    UTopGroup g0;
    g0.meUTops = {0, 0}; // both jump to group 2
    UTopGroup g1;
    g1.meUTops = {1};
    UTopGroup g2;
    g2.meUTops = {1};
    prog.table = {g0, g1, g2};

    Interpreter interp;
    const auto res = interp.runProgram(prog);
    // Group 1 skipped: trace is 0, 2.
    EXPECT_EQ(res.groupTrace, (std::vector<std::uint32_t>{0, 2}));
}

TEST(Interpreter, OutOfRangeNextGroupRejected)
{
    setLogLevel(LogLevel::Silent);
    NeuIsaProgram prog;
    prog.maxMeUTopsPerGroup = 1;
    prog.numVeSlots = 1;
    UTop u;
    u.kind = UTopKind::Me;
    VliwInstruction set;
    set.me.resize(1);
    set.ve.resize(1);
    set.misc = {MiscOpcode::SLoadImm, 1, 0, 0, 42};
    u.code.push_back(set);
    VliwInstruction jmp;
    jmp.me.resize(1);
    jmp.ve.resize(1);
    jmp.misc = {MiscOpcode::UTopNextGroup, 0, 1, 0, 0};
    u.code.push_back(jmp);
    VliwInstruction fin;
    fin.me.resize(1);
    fin.ve.resize(1);
    fin.misc.op = MiscOpcode::UTopFinish;
    u.code.push_back(fin);
    prog.snippets.push_back(u);
    UTopGroup g;
    g.meUTops = {0};
    prog.table.push_back(g);

    Interpreter interp;
    EXPECT_THROW(interp.runProgram(prog), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Interpreter, RegisterZeroIsHardwired)
{
    NeuIsaProgram prog = makeNeuIsaLoop(1, 1);
    // Writing to %r0 must not stick: craft a uTOp that tries.
    UTop u;
    u.kind = UTopKind::Ve;
    VliwInstruction w0;
    w0.ve.resize(1);
    w0.misc = {MiscOpcode::SLoadImm, 0, 0, 0, 99}; // write %r0
    u.code.push_back(w0);
    VliwInstruction st;
    st.ve.resize(1);
    st.misc = {MiscOpcode::SStore, 0, 0, 0, 7}; // scratch[7] = %r0
    u.code.push_back(st);
    VliwInstruction fin;
    fin.ve.resize(1);
    fin.misc.op = MiscOpcode::UTopFinish;
    u.code.push_back(fin);

    Interpreter interp;
    auto res = interp.runUTop(u, 0, 0);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(interp.scratch(7), 0);
}

TEST(Interpreter, GroupAndIndexControlOps)
{
    UTop u;
    u.kind = UTopKind::Ve;
    VliwInstruction g;
    g.ve.resize(1);
    g.misc = {MiscOpcode::UTopGroup, 1, 0, 0, 0};
    u.code.push_back(g);
    VliwInstruction i;
    i.ve.resize(1);
    i.misc = {MiscOpcode::UTopIndex, 2, 0, 0, 0};
    u.code.push_back(i);
    VliwInstruction s1;
    s1.ve.resize(1);
    s1.misc = {MiscOpcode::SStore, 0, 1, 0, 0};
    u.code.push_back(s1);
    VliwInstruction s2;
    s2.ve.resize(1);
    s2.misc = {MiscOpcode::SStore, 0, 2, 0, 1};
    u.code.push_back(s2);
    VliwInstruction fin;
    fin.ve.resize(1);
    fin.misc.op = MiscOpcode::UTopFinish;
    u.code.push_back(fin);

    Interpreter interp;
    interp.runUTop(u, 5, 3);
    EXPECT_EQ(interp.scratch(0), 5);
    EXPECT_EQ(interp.scratch(1), 3);
}

TEST(Interpreter, MissingFinishPanics)
{
    setLogLevel(LogLevel::Silent);
    UTop u;
    u.kind = UTopKind::Ve;
    VliwInstruction nop;
    nop.ve.resize(1);
    u.code.push_back(nop);
    Interpreter interp;
    EXPECT_THROW(interp.runUTop(u, 0, 0), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(Interpreter, RunawayLoopGuard)
{
    setLogLevel(LogLevel::Silent);
    UTop u;
    u.kind = UTopKind::Ve;
    VliwInstruction spin;
    spin.ve.resize(1);
    spin.misc = {MiscOpcode::BranchGe, 0, 0, 0, 0}; // 0 >= 0: loop to 0
    u.code.push_back(spin);
    VliwInstruction fin;
    fin.ve.resize(1);
    fin.misc.op = MiscOpcode::UTopFinish;
    u.code.push_back(fin);
    Interpreter interp;
    interp.setInstLimit(100);
    EXPECT_THROW(interp.runUTop(u, 0, 0), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(Interpreter, TraceModeUTopFinishesImmediately)
{
    UTop u;
    u.kind = UTopKind::Me;
    u.cost.meCycles = 100.0; // no code: trace mode
    Interpreter interp;
    const auto res = interp.runUTop(u, 0, 0);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.instsExecuted, 0u);
}

// ------------------------------------------------------------ codec

TEST(Encoding, RoundTripMatmulRelu)
{
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(4, 4, 8);
    const auto image = encode(prog);
    const NeuIsaProgram back = decode(image);
    EXPECT_EQ(back.maxMeUTopsPerGroup, prog.maxMeUTopsPerGroup);
    EXPECT_EQ(back.numVeSlots, prog.numVeSlots);
    EXPECT_EQ(back.snippets, prog.snippets);
    EXPECT_EQ(back.table, prog.table);
}

TEST(Encoding, RoundTripLoopProgram)
{
    NeuIsaProgram prog = makeNeuIsaLoop(5, 2, 3);
    const NeuIsaProgram back = decode(encode(prog));
    EXPECT_EQ(back.snippets, prog.snippets);
    EXPECT_EQ(back.table, prog.table);
    // Behavioural equivalence, not just structural.
    Interpreter a, b;
    const auto ra = a.runProgram(prog);
    const auto rb = b.runProgram(back);
    EXPECT_EQ(ra.groupTrace, rb.groupTrace);
    EXPECT_EQ(a.scratch(3), b.scratch(3));
}

TEST(Encoding, BadMagicRejected)
{
    setLogLevel(LogLevel::Silent);
    auto image = encode(makeNeuIsaMatmulRelu(1, 1, 1));
    image[0] ^= 0xff;
    EXPECT_THROW(decode(image), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Encoding, TruncationRejected)
{
    setLogLevel(LogLevel::Silent);
    auto image = encode(makeNeuIsaMatmulRelu(2, 2, 4));
    image.resize(image.size() / 2);
    EXPECT_THROW(decode(image), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Encoding, TrailingBytesRejected)
{
    setLogLevel(LogLevel::Silent);
    auto image = encode(makeNeuIsaMatmulRelu(2, 2, 4));
    image.push_back(0);
    EXPECT_THROW(decode(image), FatalError);
    setLogLevel(LogLevel::Warn);
}

// Property sweep: round-trip across program shapes.
class EncodingSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(EncodingSweep, RoundTripIsIdentity)
{
    const auto [tiles, ves, pops] = GetParam();
    NeuIsaProgram prog = makeNeuIsaMatmulRelu(tiles, ves, pops);
    const NeuIsaProgram back = decode(encode(prog));
    EXPECT_EQ(back.snippets, prog.snippets);
    EXPECT_EQ(back.table, prog.table);
    EXPECT_EQ(encode(back), encode(prog)); // stable bytes
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncodingSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1, 8, 32)));

} // anonymous namespace
} // namespace neu10
