/**
 * @file
 * Model-zoo tests: every model builds and validates at multiple batch
 * sizes, footprints match Table I at batch 8, and the workload
 * characterization reproduces the paper's §II-B taxonomy — which
 * models are ME-heavy vs VE-heavy vs balanced vs bandwidth-bound.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "compiler/lower.hh"
#include "compiler/profile.hh"
#include "models/zoo.hh"

namespace neu10
{
namespace
{

constexpr double kHbmBpc = 1.2e12 / 1.05e9; // Table II: 1.2 TB/s

WorkloadProfile
prof(ModelId id, unsigned batch)
{
    return profileWorkload(buildModel(id, batch), 4, 4, kHbmBpc);
}

// ------------------------------------------------------ construction

class AllModelsBuild
    : public ::testing::TestWithParam<std::tuple<ModelId, unsigned>>
{};

TEST_P(AllModelsBuild, ValidatesAndLowers)
{
    const auto [id, batch] = GetParam();
    if (batch > maxBatch(id))
        GTEST_SKIP() << modelAbbrev(id) << " capped below " << batch;
    DnnGraph g = buildModel(id, batch);
    EXPECT_NO_THROW(g.validate());
    EXPECT_GT(g.totalVeElems() + g.totalMacs(), 0.0);
    CompiledModel neu = lowerToNeuIsa(g, 4, 4);
    CompiledModel vliw = lowerToVliw(g, 4, 4);
    EXPECT_NO_THROW(neu.validate());
    EXPECT_NO_THROW(vliw.validate());
    // The two backends agree on total useful work.
    EXPECT_NEAR(neu.totalMeBusy(), vliw.totalMeBusy(),
                1e-6 * std::max(1.0, vliw.totalMeBusy()));
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, AllModelsBuild,
    ::testing::Combine(
        ::testing::ValuesIn(allModels()),
        ::testing::Values(1u, 8u, 32u, 256u)),
    [](const auto &info) {
        return modelAbbrev(std::get<0>(info.param)) + "_b" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Zoo, TableOneHasElevenModels)
{
    EXPECT_EQ(tableOneModels().size(), 11u);
    EXPECT_EQ(allModels().size(), 12u);
}

TEST(Zoo, AbbrevRoundTrip)
{
    for (auto id : allModels())
        EXPECT_EQ(modelFromAbbrev(modelAbbrev(id)), id);
    EXPECT_EQ(modelFromAbbrev("mrcnn"), ModelId::MaskRcnn);
}

TEST(Zoo, UnknownAbbrevRejected)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(modelFromAbbrev("nope"), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Zoo, BatchCapConsistentWithBuilders)
{
    // The cap is the single source of truth for what builds: every
    // batch at or below maxBatch() builds, validates, and lowers;
    // every batch above it is rejected up front with FatalError —
    // never a mid-build failure. (AllModelsBuild's skips rely on
    // this: a skipped parameterization means "capped", not "broken".)
    setLogLevel(LogLevel::Silent);
    for (auto id : allModels()) {
        const unsigned cap = maxBatch(id);
        for (unsigned b : {1u, 8u, 32u, 256u}) {
            if (b <= cap) {
                DnnGraph g = buildModel(id, b);
                EXPECT_NO_THROW(g.validate())
                    << modelAbbrev(id) << " b" << b;
                EXPECT_NO_THROW(lowerToNeuIsa(g, 4, 4).validate())
                    << modelAbbrev(id) << " b" << b;
            } else {
                EXPECT_THROW(buildModel(id, b), FatalError)
                    << modelAbbrev(id) << " b" << b;
            }
        }
        EXPECT_NO_THROW(buildModel(id, cap)) << modelAbbrev(id);
        EXPECT_THROW(buildModel(id, cap + 1), FatalError)
            << modelAbbrev(id);
    }
    setLogLevel(LogLevel::Warn);
}

TEST(Zoo, OnlyDocumentedModelsCappedBelow256)
{
    // Exactly the three parameterizations AllModelsBuild skips at
    // b256 — LLaMA, Mask-RCNN, ShapeMask — sit below batch 256.
    std::set<ModelId> capped;
    for (auto id : allModels())
        if (maxBatch(id) < 256)
            capped.insert(id);
    const std::set<ModelId> documented = {
        ModelId::MaskRcnn, ModelId::ShapeMask, ModelId::Llama};
    EXPECT_EQ(capped, documented);
}

TEST(Zoo, OverLargeBatchRejected)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(buildModel(ModelId::MaskRcnn, 1024), FatalError);
    EXPECT_THROW(buildModel(ModelId::Bert, 0), FatalError);
    setLogLevel(LogLevel::Warn);
}

// ------------------------------------------------- Table I footprints

struct FootprintCase
{
    ModelId id;
    double gb; // Table I HBM footprint at batch 8
};

class TableIFootprints : public ::testing::TestWithParam<FootprintCase>
{};

TEST_P(TableIFootprints, MatchesWithinTolerance)
{
    const auto [id, gb] = GetParam();
    const DnnGraph g = buildModel(id, 8);
    const double got = static_cast<double>(g.hbmFootprint) / 1e9;
    EXPECT_NEAR(got, gb, gb * 0.06) << modelAbbrev(id);
}

INSTANTIATE_TEST_SUITE_P(
    TableI, TableIFootprints,
    ::testing::Values(FootprintCase{ModelId::Bert, 1.27},
                      FootprintCase{ModelId::Transformer, 1.54},
                      FootprintCase{ModelId::Dlrm, 22.38},
                      FootprintCase{ModelId::Ncf, 11.10},
                      FootprintCase{ModelId::MaskRcnn, 3.21},
                      FootprintCase{ModelId::RetinaNet, 0.86051},
                      FootprintCase{ModelId::ShapeMask, 6.04},
                      FootprintCase{ModelId::Mnist, 0.01059},
                      FootprintCase{ModelId::ResNet, 0.21602},
                      FootprintCase{ModelId::ResNetRs, 0.45817},
                      FootprintCase{ModelId::EfficientNet, 0.09906}),
    [](const auto &info) { return modelAbbrev(info.param.id); });

// -------------------------------------------- §II-B characterization

TEST(Characterization, RecommendersAreVeHeavy)
{
    // Fig. 4: DLRM and NCF sit at the bottom of the intensity scale.
    EXPECT_LT(prof(ModelId::Dlrm, 8).intensityRatio(), 0.1);
    EXPECT_LT(prof(ModelId::Ncf, 8).intensityRatio(), 0.1);
}

TEST(Characterization, ConvNetsAreMeHeavy)
{
    EXPECT_GT(prof(ModelId::ResNet, 8).intensityRatio(), 2.0);
    EXPECT_GT(prof(ModelId::ResNetRs, 8).intensityRatio(), 2.0);
    EXPECT_GT(prof(ModelId::RetinaNet, 8).intensityRatio(), 5.0);
}

TEST(Characterization, EfficientNetIsBalanced)
{
    const auto p = prof(ModelId::EfficientNet, 8);
    EXPECT_GT(p.intensityRatio(), 0.2);
    EXPECT_LT(p.intensityRatio(), 2.0);
    // Balanced active ratios drive Fig. 12c's diagonal configs.
    EXPECT_NEAR(p.m, p.v, 0.35);
}

TEST(Characterization, BertMoreMeIntenseThanDlrmByOrders)
{
    const double bert = prof(ModelId::Bert, 8).intensityRatio();
    const double dlrm = prof(ModelId::Dlrm, 8).intensityRatio();
    EXPECT_GT(bert / dlrm, 100.0);
}

TEST(Characterization, AtLeastOneEngineActive)
{
    // §III-B assumes m + v >= 1 for the compute-bound models the
    // allocator targets (bandwidth-bound recommenders are the
    // documented exception).
    for (auto id : {ModelId::Bert, ModelId::ResNet, ModelId::RetinaNet,
                    ModelId::EfficientNet, ModelId::MaskRcnn}) {
        const auto p = prof(id, 8);
        EXPECT_GE(p.m + p.v, 0.95) << modelAbbrev(id);
    }
}

TEST(Characterization, MemoryIntensiveWorkloadsSaturateHbm)
{
    // Fig. 26 collocates DLRM+NCF and NCF+TFMR as memory-intensive
    // pairs; their solo average bandwidth must be a large fraction of
    // the 1.2 TB/s budget, unlike ENet.
    EXPECT_GT(prof(ModelId::Dlrm, 8).averageBandwidth(),
              0.5 * kHbmBpc);
    EXPECT_GT(prof(ModelId::Ncf, 8).averageBandwidth(), 0.5 * kHbmBpc);
    EXPECT_GT(prof(ModelId::Transformer, 8).averageBandwidth(),
              0.4 * kHbmBpc);
    EXPECT_LT(prof(ModelId::EfficientNet, 8).averageBandwidth(),
              0.2 * kHbmBpc);
}

TEST(Characterization, LlamaHoldsMesWhileBandwidthBound)
{
    // §V-F: LLaMA decode occupies the MEs (m near 1) yet its useful
    // compute per occupancy-cycle is low — the harvest opportunity.
    // Prefill runs at full array fill, so the whole-inference ratio is
    // ~2x; the decode-dominated tail is where the 16x waste lives.
    const auto p = prof(ModelId::Llama, 8);
    EXPECT_GT(p.m, 0.9);
    EXPECT_GT(p.meBusy, 2.0 * p.meUseful);
    EXPECT_GT(p.averageBandwidth(), 0.3 * kHbmBpc);

    // Decode GEMVs specifically: occupancy >> useful compute.
    const DnnGraph g = buildModel(ModelId::Llama, 8);
    const MachineModel machine;
    double dec_busy = 0.0, dec_useful = 0.0;
    for (const auto &op : g.ops) {
        if (op.name.find("gemv") == std::string::npos)
            continue;
        dec_busy += machine.meCyclesFor(op.macs, op.meEfficiency);
        dec_useful += machine.meCyclesFor(op.macs);
    }
    EXPECT_GT(dec_busy, 10.0 * dec_useful);
}

TEST(Characterization, BertBandwidthDropsWithBatch)
{
    // Fig. 7: BERT's average HBM bandwidth falls from batch 8 to 32
    // (ME operators get more compute-intense); DLRM's stays flat.
    const double b8 = prof(ModelId::Bert, 8).averageBandwidth();
    const double b32 = prof(ModelId::Bert, 32).averageBandwidth();
    EXPECT_LT(b32, b8);

    const double d8 = prof(ModelId::Dlrm, 8).averageBandwidth();
    const double d32 = prof(ModelId::Dlrm, 32).averageBandwidth();
    EXPECT_NEAR(d32 / d8, 1.0, 0.15);
}

TEST(Characterization, OccupancyPerMacFallsWithBatch)
{
    // Larger batches fill the systolic array: the ME occupancy paid
    // per useful MAC falls for GEMV-dominated models (DLRM's MLPs).
    const auto p8 = prof(ModelId::Dlrm, 8);
    const auto p256 = prof(ModelId::Dlrm, 256);
    EXPECT_LT(p256.meBusy / p256.meUseful, p8.meBusy / p8.meUseful);
}

TEST(Characterization, IntensityOrderingStableAcrossBatch)
{
    // Fig. 4's cross-model ordering holds at every batch size even
    // where per-model ratios move.
    for (unsigned b : {1u, 8u, 64u}) {
        const double dlrm = prof(ModelId::Dlrm, b).intensityRatio();
        const double enet =
            prof(ModelId::EfficientNet, b).intensityRatio();
        const double bert = prof(ModelId::Bert, b).intensityRatio();
        const double rtnt = prof(ModelId::RetinaNet, b).intensityRatio();
        EXPECT_LT(dlrm, enet) << b;
        EXPECT_LT(enet, bert) << b;
        EXPECT_LT(bert, rtnt * 10.0) << b; // both strongly ME-side
    }
}

TEST(Characterization, DemandsVaryOverTime)
{
    // Fig. 2: workloads alternate between ME- and VE-demand phases.
    const auto p = prof(ModelId::Bert, 8);
    bool some_me_phase = false, some_ve_phase = false;
    for (const auto &op : p.timeline) {
        if (op.demandMe >= 2)
            some_me_phase = true;
        if (op.demandMe == 0 && op.demandVe >= 1)
            some_ve_phase = true;
    }
    EXPECT_TRUE(some_me_phase);
    EXPECT_TRUE(some_ve_phase);
}

TEST(Characterization, MnistTriggersReductionPartitioning)
{
    // MNIST's small-batch FC GEMV cannot fill 4 MEs from its
    // non-reduction dims: Fig. 16's largest NeuISA overhead.
    CompiledModel cm = lowerToNeuIsa(buildModel(ModelId::Mnist, 1), 4, 4);
    bool found_summation = false;
    for (const auto &op : cm.ops) {
        if (op.groups.size() >= 2 &&
            op.groups.back().units.size() == 1 &&
            op.groups.back().units[0].kind == UTopKind::Ve &&
            op.usesMe()) {
            found_summation = true;
        }
    }
    EXPECT_TRUE(found_summation);
}

} // anonymous namespace
} // namespace neu10
