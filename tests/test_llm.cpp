/**
 * @file
 * LLM-subsystem tests (src/llm/): the paged KV pool (allocation,
 * all-or-nothing grow, conservation under preemption-style churn,
 * snapshot/restore, audit), the §III-B pool sizing math, the
 * buildLlama parity digest (the zoo graph must stay digit-identical
 * to the pre-phase-model generation), and end-to-end token-level
 * serving through the fleet: continuous batching must beat the
 * static-batch baseline at equal HBM, preemption and fault-injected
 * board loss must conserve both requests and pages, and everything
 * must be bit-identical across engines and host thread widths.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "cluster/fleet.hh"
#include "common/logging.hh"
#include "llm/kv_pool.hh"
#include "llm/llm_serving.hh"
#include "llm/phase_model.hh"
#include "models/zoo.hh"
#include "resilience/faults.hh"
#include "vnpu/allocator.hh"

#include "result_eq.hh"

namespace neu10
{
namespace
{

using llm::KvPool;

// ------------------------------------------------------ KV pool

TEST(KvPool, AllocGrowReleaseRoundTrip)
{
    KvPool pool(8, 16);
    EXPECT_EQ(pool.totalPages(), 8u);
    EXPECT_EQ(pool.freePages(), 8u);
    EXPECT_EQ(pool.pagesFor(0), 0u);
    EXPECT_EQ(pool.pagesFor(1), 1u);
    EXPECT_EQ(pool.pagesFor(16), 1u);
    EXPECT_EQ(pool.pagesFor(17), 2u);

    EXPECT_EQ(pool.ensureTokens(7, 16), 1u);
    EXPECT_FALSE(pool.lastGrowFailed());
    EXPECT_EQ(pool.pagesHeld(7), 1u);
    EXPECT_EQ(pool.tokensHeld(7), 16u);
    // Growing within the last page allocates nothing.
    EXPECT_EQ(pool.ensureTokens(7, 16), 0u);
    EXPECT_EQ(pool.ensureTokens(7, 17), 1u);
    EXPECT_EQ(pool.pagesHeld(7), 2u);
    EXPECT_EQ(pool.usedPages(), 2u);
    pool.audit();

    EXPECT_EQ(pool.release(7), 2u);
    EXPECT_EQ(pool.usedPages(), 0u);
    EXPECT_EQ(pool.pagesHeld(7), 0u);
    EXPECT_EQ(pool.stats().allocOps, 2u);
    EXPECT_EQ(pool.stats().freeOps, 2u);
    pool.audit();
}

TEST(KvPool, FirstAllocTakesPageZero)
{
    // The free list is stacked so allocation order is 0, 1, 2, ... —
    // page identity is deterministic, not an artifact of stack setup.
    KvPool pool(4, 16);
    pool.ensureTokens(1, 16);
    pool.ensureTokens(2, 32);
    const auto *p1 = pool.pages(1);
    const auto *p2 = pool.pages(2);
    ASSERT_NE(p1, nullptr);
    ASSERT_NE(p2, nullptr);
    ASSERT_EQ(p1->size(), 1u);
    ASSERT_EQ(p2->size(), 2u);
    EXPECT_EQ((*p1)[0], 0u);
    EXPECT_EQ((*p2)[0], 1u);
    EXPECT_EQ((*p2)[1], 2u);
    EXPECT_EQ(pool.pages(99), nullptr);
}

TEST(KvPool, LifoReuse)
{
    KvPool pool(4, 16);
    pool.ensureTokens(1, 16); // page 0
    pool.ensureTokens(2, 16); // page 1
    pool.release(1);          // page 0 back on top of the stack
    pool.ensureTokens(3, 16);
    const auto *p3 = pool.pages(3);
    ASSERT_NE(p3, nullptr);
    EXPECT_EQ((*p3)[0], 0u); // most recently freed page reused first
}

TEST(KvPool, AllOrNothingGrow)
{
    KvPool pool(4, 16);
    EXPECT_EQ(pool.ensureTokens(1, 48), 3u);
    // Needs 2 pages with only 1 free: nothing must change.
    EXPECT_EQ(pool.ensureTokens(2, 32), 0u);
    EXPECT_TRUE(pool.lastGrowFailed());
    EXPECT_EQ(pool.pagesHeld(2), 0u);
    EXPECT_EQ(pool.tokensHeld(2), 0u);
    EXPECT_EQ(pool.usedPages(), 3u);
    EXPECT_EQ(pool.stats().failedAllocs, 1u);
    pool.audit();
    // A fitting request still succeeds afterwards.
    EXPECT_EQ(pool.ensureTokens(2, 16), 1u);
    EXPECT_FALSE(pool.lastGrowFailed());
    pool.audit();
}

TEST(KvPool, HighWaterAndFragmentation)
{
    KvPool pool(8, 16);
    pool.ensureTokens(1, 33); // 3 pages for 33 tokens
    EXPECT_EQ(pool.stats().highWaterPages, 3u);
    // 48 tokens of page capacity hold 33 live tokens.
    EXPECT_DOUBLE_EQ(pool.stats().fragmentationFrac(16),
                     1.0 - 33.0 / 48.0);
    pool.release(1);
    EXPECT_EQ(pool.stats().highWaterPages, 3u); // sticky
    EXPECT_DOUBLE_EQ(pool.stats().fragmentationFrac(16), 0.0);
    EXPECT_EQ(pool.release(1), 0u); // unknown/empty release is a no-op
}

TEST(KvPool, ConservationUnderPreemptionChurn)
{
    // Deterministic admit/grow/preempt churn: pages must be conserved
    // at every step and fully recovered at the end.
    KvPool pool(13, 16);
    llm::SeqId next = 0;
    std::vector<llm::SeqId> live;
    for (unsigned step = 0; step < 200; ++step) {
        const llm::SeqId s = next++;
        if (pool.ensureTokens(s, 16 + (step % 5) * 16) > 0)
            live.push_back(s);
        // Grow everything by a token; preempt the youngest on refusal
        // exactly like the scheduler does.
        for (std::size_t i = 0; i < live.size();) {
            pool.ensureTokens(live[i],
                              pool.tokensHeld(live[i]) + 1);
            if (pool.lastGrowFailed()) {
                pool.release(live.back());
                live.pop_back();
            } else {
                ++i;
            }
        }
        pool.audit();
        EXPECT_EQ(pool.usedPages() + pool.freePages(),
                  pool.totalPages());
        EXPECT_EQ(pool.stats().allocOps - pool.stats().freeOps,
                  pool.usedPages());
    }
    EXPECT_GT(pool.stats().failedAllocs, 0u);
    for (llm::SeqId s : pool.holders())
        pool.release(s);
    EXPECT_EQ(pool.usedPages(), 0u);
    EXPECT_EQ(pool.stats().allocOps, pool.stats().freeOps);
    pool.audit();
}

TEST(KvPool, SnapshotRestoreConservesPages)
{
    KvPool a(16, 16);
    a.ensureTokens(3, 40);
    a.ensureTokens(1, 16);
    a.ensureTokens(9, 100);
    const KvPool::Snapshot snap = a.snapshot();
    ASSERT_EQ(snap.seqTokens.size(), 3u);
    EXPECT_EQ(snap.seqTokens[0].first, 1u); // ascending SeqId
    EXPECT_EQ(snap.seqTokens[1].first, 3u);
    EXPECT_EQ(snap.seqTokens[2].first, 9u);

    KvPool b(16, 16);
    b.restore(snap);
    b.audit();
    EXPECT_EQ(b.usedPages(), a.usedPages());
    EXPECT_EQ(b.tokensHeld(3), 40u);
    EXPECT_EQ(b.tokensHeld(9), 100u);
    EXPECT_EQ(b.pagesHeld(9), 7u);
    // No double-free: releasing every holder empties the pool exactly.
    for (llm::SeqId s : b.holders())
        b.release(s);
    EXPECT_EQ(b.usedPages(), 0u);
    b.audit();
}

TEST(KvPool, RestoreRefusalsAreFatal)
{
    KvPool a(16, 16);
    a.ensureTokens(1, 64);
    const KvPool::Snapshot snap = a.snapshot();

    KvPool occupied(16, 16);
    occupied.ensureTokens(2, 16);
    EXPECT_THROW(occupied.restore(snap), FatalError);

    KvPool small(2, 16); // 4 pages short
    EXPECT_THROW(small.restore(snap), FatalError);

    KvPool wrong_page(16, 32);
    EXPECT_THROW(wrong_page.restore(snap), FatalError);
}

// ------------------------------------------------- §III-B sizing

TEST(KvSizing, PoolPagesMatchResidencyMath)
{
    const llm::LlmModelSpec &spec = llm::llamaSpec();
    const NpuCoreConfig core;
    // Batch-32 sizing reserves 40 GiB; weights + 32 activation sets
    // leave 1072 pages of 16 tokens.
    const Bytes hbm32 =
        sizeVnpuForModel(ModelId::Llama, 32, 8, core)
            .config.memSizePerCore;
    EXPECT_EQ(llm::kvPoolPages(spec, hbm32, 32, 16), 1072u);
    // Batch-8 sizing reserves 30 GiB -> 307 pages (the preemption
    // scenario's starved pool).
    const Bytes hbm8 =
        sizeVnpuForModel(ModelId::Llama, 8, 8, core)
            .config.memSizePerCore;
    EXPECT_EQ(llm::kvPoolPages(spec, hbm8, 8, 16), 307u);
    // Exact formula, not just the two constants.
    const Bytes reserve =
        spec.weightBytes + 32 * spec.actPerSample;
    const Bytes page_bytes = 16 * spec.kvBytesPerToken();
    EXPECT_EQ(llm::kvPoolPages(spec, hbm32, 32, 16),
              (hbm32 - reserve) / page_bytes);
    // An HBM budget the weights alone exceed cannot host a pool.
    EXPECT_THROW(llm::kvPoolPages(spec, spec.weightBytes, 1, 16),
                 FatalError);
}

// ------------------------------------- buildLlama parity digest

struct GraphDigest
{
    std::size_t ops = 0;
    double macs = 0.0;
    double ve = 0.0;
    Bytes bytes = 0;
};

GraphDigest
digestOf(const DnnGraph &g)
{
    GraphDigest d;
    d.ops = g.ops.size();
    for (const TensorOp &op : g.ops) {
        d.macs += op.macs;
        d.ve += op.veElems;
        d.bytes += op.bytes;
    }
    return d;
}

// The digests below were captured from the hand-rolled generator
// before models/llm.cc was rebuilt on llm/phase_model.hh. They pin
// digit-identical emission: any drift in the shared constants or the
// emission order is a parity break, not a tolerance question.
TEST(LlamaParity, AggregateDigestsPinned)
{
    const struct
    {
        unsigned batch;
        double macs, ve;
        Bytes bytes, footprint;
    } pins[] = {
        {1, 7158838067200.0, 1146634240.0, 1264937074688u,
         28366077952u},
        {8, 57270704537600.0, 9173073920.0, 1415539851264u,
         31507611648u},
        {32, 229082818150400.0, 36692295680.0, 1931892228096u,
         42278584320u},
    };
    for (const auto &pin : pins) {
        SCOPED_TRACE(::testing::Message() << "batch " << pin.batch);
        const DnnGraph g = buildModel(ModelId::Llama, pin.batch);
        g.validate();
        const GraphDigest d = digestOf(g);
        EXPECT_EQ(d.ops, 217u);
        EXPECT_EQ(d.macs, pin.macs);
        EXPECT_EQ(d.ve, pin.ve);
        EXPECT_EQ(d.bytes, pin.bytes);
        EXPECT_EQ(g.hbmFootprint, pin.footprint);
        EXPECT_EQ(g.hbmFootprint,
                  llm::llamaSpec().footprint(pin.batch));
    }
}

TEST(LlamaParity, SpotOpsPinned)
{
    const DnnGraph g = buildModel(ModelId::Llama, 8);
    ASSERT_EQ(g.ops.size(), 217u);

    EXPECT_EQ(g.ops[0].name, "embed");
    EXPECT_EQ(g.ops[0].kind, OpKind::Embedding);
    EXPECT_EQ(g.ops[0].veElems, 41943040.0);
    EXPECT_EQ(g.ops[0].bytes, 83886080u);

    EXPECT_EQ(g.ops[1].name, "prefill0.proj");
    EXPECT_EQ(g.ops[1].kind, OpKind::MatMul);
    EXPECT_EQ(g.ops[1].macs, 6496138035200.0);
    EXPECT_EQ(g.ops[1].bytes, 3429892096u);
    EXPECT_EQ(g.ops[1].parallelTiles, 1280u);

    EXPECT_EQ(g.ops[2].name, "prefill0.attn");
    EXPECT_EQ(g.ops[2].macs, 53687091200.0);
    EXPECT_EQ(g.ops[2].bytes, 109576192u);
    EXPECT_EQ(g.ops[2].parallelTiles, 128u);

    EXPECT_EQ(g.ops[3].name, "prefill0.softmax_norm");
    EXPECT_EQ(g.ops[3].veElems, 838860800.0);

    EXPECT_EQ(g.ops[25].name, "dec0.gemv_a");
    EXPECT_EQ(g.ops[25].kind, OpKind::Gemv);
    EXPECT_EQ(g.ops[25].macs, 50751078400.0);
    EXPECT_EQ(g.ops[25].bytes, 12687769600u);
    EXPECT_EQ(g.ops[25].meEfficiency, 0.0625);
    EXPECT_EQ(g.ops[25].parallelTiles, 40u);

    EXPECT_EQ(g.ops[27].name, "dec0.kv_attn");
    EXPECT_EQ(g.ops[27].kind, OpKind::Vector);
    EXPECT_EQ(g.ops[27].veElems, 41943040.0);
    EXPECT_EQ(g.ops[27].bytes, 3523215360u);

    EXPECT_EQ(g.ops[28].name, "dec0.norm_sample");
    EXPECT_EQ(g.ops[28].veElems, 6553600.0);

    // The KV read grows linearly with decode position: step 47 reads
    // 47 more tokens of context than step 0.
    EXPECT_EQ(g.ops[215].name, "dec47.kv_attn");
    EXPECT_EQ(g.ops[215].veElems, 45793280.0);
    EXPECT_EQ(g.ops[215].veElems - g.ops[27].veElems, 47 * 81920.0);
}

// ------------------------------------------------- phase model

TEST(PhaseModel, RooflineShape)
{
    const llm::LlmModelSpec &spec = llm::llamaSpec();
    const NpuCoreConfig core;
    EXPECT_EQ(llm::prefillBytes(spec, 512),
              spec.weightBytes + 512 * spec.kvBytesPerToken());
    EXPECT_EQ(llm::decodeStepBytes(spec, 1000),
              spec.weightBytes + 1000 * spec.kvBytesPerToken());

    // Decode is bandwidth-bound at small batch: the full-bandwidth
    // step cost is the weight stream plus overhead.
    const Cycles step =
        llm::decodeStepCycles(spec, 4, 4 * 512, core, 4, 1.0);
    const double stream =
        static_cast<double>(llm::decodeStepBytes(spec, 4 * 512)) /
        core.hbmBytesPerCycle();
    EXPECT_EQ(step, stream + 4096.0);

    // Costs are monotone in context and prompt length.
    EXPECT_GT(llm::decodeStepCycles(spec, 4, 8192, core, 4, 1.0),
              llm::decodeStepCycles(spec, 4, 2048, core, 4, 1.0));
    EXPECT_GT(llm::prefillCycles(spec, 1024, core, 4, 1.0),
              llm::prefillCycles(spec, 256, core, 4, 1.0));
    // Prefill is compute-bound at full bandwidth — shrinking the
    // share to half changes nothing — but a starved share pushes it
    // past the roofline knee onto the weight-stream floor.
    EXPECT_EQ(llm::prefillCycles(spec, 512, core, 4, 0.5),
              llm::prefillCycles(spec, 512, core, 4, 1.0));
    EXPECT_GT(llm::prefillCycles(spec, 512, core, 4, 0.1),
              llm::prefillCycles(spec, 512, core, 4, 1.0));
}

// ------------------------------------------- fleet integration

FleetConfig
llmFleet(LlmScheduler sched, unsigned tenants = 4,
         unsigned batch = 32, unsigned max_batch = 32,
         double rate = 12.0, std::uint64_t seed = 42)
{
    FleetConfig cfg;
    cfg.numBoards = 1;
    cfg.servingMode = ServingMode::LlmContinuous;
    cfg.llm.scheduler = sched;
    cfg.llm.pageTokens = 16;
    cfg.llm.maxBatch = max_batch;
    cfg.llm.promptTokens = 384;
    cfg.llm.promptTokensMax = 640;
    cfg.llm.outputTokens = 32;
    cfg.llm.outputTokensMax = 96;
    cfg.horizon = 2e9;
    cfg.maxCycles = 50.0 * cfg.horizon;
    for (unsigned i = 0; i < tenants; ++i) {
        ClusterTenantSpec t;
        t.model = ModelId::Llama;
        t.batch = batch;
        t.eus = 8;
        t.traffic.ratePerSec = rate;
        t.traffic.seed = seed + i;
        t.sloCycles = 3e9;
        t.maxQueueDepth = 64;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

TEST(LlmServing, ContinuousBeatsStaticBatch)
{
    const auto cont = runFleet(llmFleet(LlmScheduler::Continuous));
    const auto stat = runFleet(llmFleet(LlmScheduler::StaticBatch));

    std::uint64_t cont_tokens = 0, stat_tokens = 0;
    Distribution cont_ttft, stat_ttft;
    for (const TenantResult &tr : cont.tenants) {
        cont_tokens += tr.llm.tokensGenerated;
        cont_ttft.merge(tr.llm.ttftCycles);
    }
    for (const TenantResult &tr : stat.tenants) {
        stat_tokens += tr.llm.tokensGenerated;
        stat_ttft.merge(tr.llm.ttftCycles);
    }
    // Same traffic and seeds: every admitted sequence decodes to its
    // drawn length under both schedulers.
    EXPECT_EQ(cont_tokens, stat_tokens);
    EXPECT_EQ(cont.completed, stat.completed);
    // Continuous batching drains the same tokens sooner (higher
    // tokens/s) and starts sequences sooner (lower p99 TTFT) — the
    // ISSUE acceptance shape, gated for real in bench_llm_serving.
    EXPECT_LT(cont.makespan, stat.makespan);
    EXPECT_LT(cont_ttft.percentile(0.99), stat_ttft.percentile(0.99));
    for (const TenantResult &tr : cont.tenants)
        EXPECT_GT(tr.llm.tokensPerSecond, 0.0);
}

TEST(LlmServing, EngineAndThreadInvariance)
{
    auto cfg = llmFleet(LlmScheduler::Continuous);
    const auto a = runFleet(cfg);
    cfg.engine = SimEngine::PerCycle;
    const auto b = runFleet(cfg);
    cfg.engine = SimEngine::EventDriven;
    cfg.threads = 4;
    const auto c = runFleet(cfg);
    cfg.threads = 3;
    const auto d = runFleet(cfg);
    expectFleetEq(a, b);
    expectFleetEq(a, c);
    expectFleetEq(a, d);
}

TEST(LlmServing, PreemptionConservesPagesAndRequests)
{
    // Batch-8 sizing (307 pages) under 16-deep continuous batching:
    // page pressure must trigger evictions, and every evicted page
    // must come back.
    auto cfg = llmFleet(LlmScheduler::Continuous, /*tenants=*/2,
                        /*batch=*/8, /*max_batch=*/16,
                        /*rate=*/20.0, /*seed=*/7);
    cfg.llm.outputTokens = 64;
    cfg.llm.outputTokensMax = 128;
    cfg.horizon = 1.5e9;
    cfg.maxCycles = 50.0 * cfg.horizon;
    for (auto &t : cfg.tenants)
        t.sloCycles = 6e9;
    const auto r = runFleet(cfg);

    std::uint64_t preempt = 0;
    for (const TenantResult &tr : r.tenants) {
        preempt += tr.llm.preemptions;
        EXPECT_GT(tr.llm.kvFailedAllocs, 0u);
        // Page conservation: the drained endpoint returned every
        // page it ever allocated (the in-run audit() enforces the
        // stronger per-step invariant).
        EXPECT_EQ(tr.llm.kvAllocOps, tr.llm.kvFreeOps);
        EXPECT_EQ(tr.llm.kvPages, 307u);
        EXPECT_LE(tr.llm.kvPageHighWater, tr.llm.kvPages);
    }
    EXPECT_GT(preempt, 0u);
    // Preempted sequences are re-prefilled, so prefills exceed
    // admitted sequences.
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_EQ(r.rejected, 0u);
}

TEST(LlmServing, BoardLossConservesPagesAndRequests)
{
    auto cfg = llmFleet(LlmScheduler::Continuous);
    FaultEvent loss;
    loss.at = 8e8;
    loss.kind = FaultKind::BoardLoss;
    loss.board = 0;
    loss.durationCycles = kCyclesInf;
    cfg.resilience.faults = {loss};
    const auto r = runFleet(cfg);

    EXPECT_EQ(r.faultsInjected, 1u);
    EXPECT_EQ(r.coreFailures, 4u);
    // Single-epoch LLM serving cannot restore (no later epoch to run
    // the checkpoint), so the half-decoded backlog is abandoned —
    // but request conservation must survive the loss.
    EXPECT_GT(r.lostRequests, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_GE(r.rejected, r.lostRequests);
    for (const TenantResult &tr : r.tenants) {
        // The fault-stopped endpoint still released every page: a
        // leak would have tripped the teardown audit (FatalError).
        EXPECT_EQ(tr.llm.kvAllocOps, tr.llm.kvFreeOps);
        EXPECT_GT(tr.llm.kvAllocOps, 0u);
    }
    // Fault runs are as deterministic as clean ones.
    const auto again = runFleet(cfg);
    expectFleetEq(r, again);
}

TEST(LlmServing, NonLlamaTenantIsFatal)
{
    auto cfg = llmFleet(LlmScheduler::Continuous, /*tenants=*/1);
    cfg.tenants[0].model = ModelId::Bert;
    EXPECT_THROW(runFleet(cfg), FatalError);
}

} // namespace
} // namespace neu10
