/**
 * @file
 * Engine-invariance suite (CTest label `perf`): the event-driven
 * fast-forward engine and the per-cycle reference engine
 * (sim/engine.hh) must produce bit-identical results on every
 * scenario class the simulator supports — closed loop, open loop
 * with epoch stops and carried backlog, elastic fleets that migrate
 * vNPUs, and fault/failover fleets. Any divergence is a fast-forward
 * bug: the reference executes the same schedule, it just pays for
 * every intervening cycle.
 *
 * "Bit-identical" here is literal: the comparators (tests/
 * result_eq.hh, shared with the scenario parity suite) check every
 * counter, stamp, latency sample and derived double with exact
 * equality, no tolerances.
 */

#include <gtest/gtest.h>

#include "cluster/fleet.hh"
#include "cluster/traffic.hh"
#include "common/logging.hh"
#include "resilience/faults.hh"
#include "result_eq.hh"
#include "runtime/serving.hh"
#include "sim/engine.hh"
#include "vnpu/allocator.hh"

namespace neu10
{
namespace
{

/** Run @p cfg under both engines and require bit-identical results.
 * @return the event-driven result for scenario-shape assertions. */
ServingResult
bothServingEngines(ServingConfig cfg)
{
    cfg.engine = SimEngine::EventDriven;
    const ServingResult fast = runServing(cfg);
    cfg.engine = SimEngine::PerCycle;
    const ServingResult ref = runServing(cfg);
    expectServingEq(fast, ref);
    return fast;
}

FleetResult
bothFleetEngines(FleetConfig cfg)
{
    cfg.engine = SimEngine::EventDriven;
    const FleetResult fast = runFleet(cfg);
    cfg.engine = SimEngine::PerCycle;
    const FleetResult ref = runFleet(cfg);
    expectFleetEq(fast, ref);
    return fast;
}

// ----------------------------------------------------- scenarios

TEST(EngineInvariance, ClosedLoopPairEveryPolicy)
{
    for (auto policy : {PolicyKind::Neu10, PolicyKind::Neu10NH,
                        PolicyKind::V10, PolicyKind::Pmt}) {
        SCOPED_TRACE(policyName(policy));
        ServingConfig cfg;
        cfg.policy = policy;
        cfg.minRequests = 6;
        cfg.tenants = {TenantSpec{ModelId::Mnist, 8, 2, 2},
                       TenantSpec{ModelId::Ncf, 32, 2, 2}};
        const ServingResult r = bothServingEngines(cfg);
        for (const auto &t : r.tenants)
            EXPECT_GE(t.completed, 6u);
    }
}

TEST(EngineInvariance, OpenLoopWithEpochStopAndCarry)
{
    const VnpuSizing sizing =
        sizeVnpuForModel(ModelId::Mnist, 8, 4, NpuCoreConfig{});
    const Cycles service = sizing.serviceEstimate();

    TrafficSpec traffic;
    traffic.shape = TrafficShape::Bursty;
    traffic.ratePerSec = 3.0 * 1.05e9 / service; // heavily overloaded
    traffic.seed = 11;

    ServingConfig cfg;
    cfg.mode = ServingMode::OpenLoop;
    cfg.policy = PolicyKind::Neu10;
    TenantSpec ts;
    ts.model = ModelId::Mnist;
    ts.batch = 8;
    ts.nMes = sizing.config.numMesPerCore;
    ts.nVes = sizing.config.numVesPerCore;
    ts.arrivals = generateArrivals(traffic, 4e6, 1.05e9);
    ts.maxQueueDepth = 64;
    ts.sloCycles = 8.0 * service;
    ts.startOffsetCycles = 2e5; // migration-stall hold
    cfg.tenants = {ts};
    cfg.stopAtCycles = 2e6;     // epoch boundary mid-stream

    const ServingResult first = bothServingEngines(cfg);
    const auto &t = first.tenants[0];
    ASSERT_GT(t.backlog.size(), 0u); // the stop really carried work
    EXPECT_EQ(t.completed + t.rejected + t.backlog.size(),
              t.submitted);

    // Second epoch resumes from the carried backlog — the resumable
    // path must be engine-invariant too.
    ServingConfig next = cfg;
    next.stopAtCycles = kCyclesInf;
    next.tenants[0].arrivals.clear();
    next.tenants[0].startOffsetCycles = 0.0;
    next.tenants[0].backlog.clear();
    for (Cycles stamp : t.backlog)
        next.tenants[0].backlog.push_back(stamp - 2e6);
    const ServingResult second = bothServingEngines(next);
    EXPECT_EQ(second.tenants[0].completed, t.backlog.size());
}

TEST(EngineInvariance, ElasticFleetWithMigrations)
{
    FleetConfig cfg;
    cfg.numBoards = 2;
    cfg.placement = PlacementPolicy::FirstFit;
    cfg.horizon = 6e6;
    cfg.maxCycles = 2e9;
    cfg.elastic.epochs = 4;
    cfg.elastic.imbalanceThreshold = 0.05;
    cfg.elastic.maxMigrationsPerEpoch = 4;

    const Cycles service =
        sizeVnpuForModel(ModelId::Mnist, 8, 2, cfg.board.core)
            .serviceEstimate();
    for (unsigned i = 0; i < 8; ++i) {
        ClusterTenantSpec t;
        t.model = ModelId::Mnist;
        t.batch = 8;
        t.eus = 2;
        t.traffic.shape = TrafficShape::Bursty;
        t.traffic.ratePerSec =
            1.2 * cfg.board.core.freqHz / service;
        t.traffic.seed = 60 + i;
        t.sloCycles = 5.0 * service;
        t.maxQueueDepth = 32;
        cfg.tenants.push_back(t);
    }

    const FleetResult r = bothFleetEngines(cfg);
    // First-fit stacks the small tenants onto the first cores, so
    // the rebalancer must actually move vNPUs for this scenario to
    // cover the migration path.
    EXPECT_GT(r.migrations, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
}

TEST(EngineInvariance, FaultedFleetWithFailover)
{
    FleetConfig cfg;
    cfg.numBoards = 2;
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = 6e6;
    cfg.maxCycles = 2e9;
    cfg.elastic.epochs = 4;
    cfg.elastic.imbalanceThreshold = 1e18; // isolate failover
    cfg.resilience.failover = true;
    cfg.resilience.recoveryStallCycles = 1e5;
    FaultEvent loss;
    loss.at = 2.4e6;
    loss.kind = FaultKind::BoardLoss;
    loss.board = 0;
    loss.durationCycles = kCyclesInf;
    cfg.resilience.faults = {loss};

    const Cycles service =
        sizeVnpuForModel(ModelId::Mnist, 8, 4, cfg.board.core)
            .serviceEstimate();
    for (unsigned i = 0; i < 8; ++i) {
        ClusterTenantSpec t;
        t.model = ModelId::Mnist;
        t.batch = 8;
        t.eus = 4;
        t.traffic.ratePerSec =
            0.35 * cfg.board.core.freqHz / service;
        t.traffic.seed = 100 + i;
        t.sloCycles = 10.0 * service;
        t.maxQueueDepth = 64;
        cfg.tenants.push_back(t);
    }

    const FleetResult r = bothFleetEngines(cfg);
    EXPECT_EQ(r.failovers, 4u); // the fault path really ran
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
}

TEST(EngineInvariance, PerCycleReferenceActuallySteps)
{
    // The reference engine must visit (roughly) every cycle of the
    // simulated span — if it stepped nothing, the perf comparison in
    // bench_perf_engine would be measuring two copies of the same
    // engine.
    EventQueue queue;
    std::vector<VnpuSlot> slots(1);
    slots[0].nMes = 2;
    slots[0].nVes = 2;
    NpuCoreSim core(queue, NpuCoreConfig{},
                    makePolicy(PolicyKind::Neu10), std::move(slots));
    core.setEngine(SimEngine::PerCycle);
    EXPECT_EQ(core.engine(), SimEngine::PerCycle);

    const CompiledModel model = compileFor(
        TenantSpec{ModelId::Mnist, 8, 2, 2}, PolicyKind::Neu10,
        NpuCoreConfig{});
    bool done = false;
    core.submit(0, &model, [&](const RequestResult &) {
        done = true;
    });
    while (!queue.empty())
        queue.step();
    ASSERT_TRUE(done);
    // One full request takes thousands of cycles; the walk must have
    // visited almost all of them (every span between two events,
    // minus the fractional remainders).
    EXPECT_GT(core.cyclesStepped(),
              static_cast<std::uint64_t>(0.5 * queue.now()));
    EXPECT_LE(core.cyclesStepped(),
              static_cast<std::uint64_t>(queue.now()) + 1);
}

TEST(EngineInvariance, EngineNamesRoundTrip)
{
    for (auto e : {SimEngine::EventDriven, SimEngine::PerCycle})
        EXPECT_EQ(engineFromName(engineName(e)), e);
    EXPECT_EQ(engineFromName("FF"), SimEngine::EventDriven);
    EXPECT_EQ(engineFromName("reference"), SimEngine::PerCycle);
    EXPECT_THROW(engineFromName("warp-speed"), FatalError);
}

} // anonymous namespace
} // namespace neu10
