// Clean fixture: a runFleet entry whose call chains only reach
// sanctioned boundaries (common/random, common/env, common/logging)
// plus name-collision look-alikes — `clk.now()`, `gen.rand()`,
// `frame.time()` — that must not read as banned sources.
#include <string>

namespace neu10
{

unsigned long long seedFrom(unsigned long long user_seed);
std::string envOr(const char *name, const char *fallback);
void logLine(const char *msg);

struct SimClock
{
    double ticks = 0.0;
    double now() const { return ticks; } // sim time, not wall time
};

struct Frame
{
    double at = 0.0;
    double time() const { return at; } // member, not ::time()
};

struct LaneGen
{
    unsigned state = 1;
    unsigned rand() { return state *= 48271u; } // member, not ::rand()
};

double
runFleet()
{
    SimClock clk;
    Frame frame;
    LaneGen gen;
    const auto seed = seedFrom(0);
    const auto mode = envOr("NEU10_MODE", "batch");
    logLine(mode.c_str());
    return clk.now() + frame.time() +
           static_cast<double>(gen.rand() ^ seed);
}

} // namespace neu10
