// Clean fixture: common/random is the one place allowed to touch
// entropy sources — here they seed the deterministic generator that
// the rest of the tree consumes.
#include <cstdlib>
#include <random>

namespace neu10
{

unsigned long long
seedFrom(unsigned long long user_seed)
{
    if (user_seed != 0)
        return user_seed;
    std::random_device rd; // exempt: lives under common/random
    return (static_cast<unsigned long long>(rd()) << 32) ^ rd();
}

void
reseedLegacy(unsigned seed)
{
    srand(seed); // exempt: lives under common/random
}

} // namespace neu10
