// Clean fixture: every shared-state shape the mutable-global audit
// must accept — const/constexpr, atomics, thread-locals, sync
// primitives, and mutex-guarded data carrying the annotation.
#include <atomic>
#include <mutex>

#ifndef NEU10_GUARDED_BY
#define NEU10_GUARDED_BY(x)
#endif

namespace neu10
{

constexpr unsigned kMaxLanes = 8;            // exempt: constexpr
const double kDefaultScale = 1.0;            // exempt: const
static std::atomic<unsigned> g_hits{0};      // exempt: atomic
thread_local unsigned t_depth = 0;           // exempt: thread_local
static std::mutex g_mu;                      // exempt: sync primitive
static long g_balance NEU10_GUARDED_BY(g_mu) = 0; // exempt: guarded

void
charge(long amount)
{
    g_hits.fetch_add(1, std::memory_order_relaxed);
    ++t_depth;
    std::lock_guard<std::mutex> lock(g_mu);
    g_balance += amount;
    --t_depth;
}

} // namespace neu10
