// Clean fixture: common/env is the sanctioned environment-variable
// boundary; getenv here must not trip the environment category.
#include <cstdlib>
#include <string>

namespace neu10
{

std::string
envOr(const char *name, const char *fallback)
{
    const char *v = std::getenv(name); // exempt: under common/env
    return v ? v : fallback;
}

} // namespace neu10
