// Clean fixture: common/logging is the sanctioned stream boundary;
// stdout/stderr writes here must not trip the stream-io category.
#include <cstdio>
#include <iostream>

namespace neu10
{

void
logLine(const char *msg)
{
    std::fprintf(stderr, "%s\n", msg); // exempt: under common/logging
}

void
logBanner(const char *msg)
{
    std::cout << msg << '\n'; // exempt: under common/logging
    printf("%s\n", msg);      // exempt: under common/logging
}

} // namespace neu10
