// Clean fixture: unordered-iter / pointer-key-iter look-alikes that
// must stay silent —
//   * unordered iteration whose output is sorted before it reaches
//     the Result, behind the documented allow() escape;
//   * unordered iteration in a function with no *Result/JSON flow
//     (erasure bookkeeping — order-insensitive);
//   * ordered iteration over an int-keyed std::map (deterministic).
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace neu10
{

struct ServeResult
{
    std::vector<double> lat_ms;
    double total_ms = 0.0;
};

class LaneBook
{
  public:
    ServeResult snapshot() const;
    void retire(unsigned below);
    double orderedSum() const;

  private:
    std::unordered_map<unsigned, double> open_;
    std::map<unsigned, double> done_;
};

ServeResult
LaneBook::snapshot() const
{
    ServeResult r;
    // neu10-lint: allow(unordered-iter): collected then sorted below
    for (const auto &[lane, ms] : open_)
        r.lat_ms.push_back(ms);
    std::sort(r.lat_ms.begin(), r.lat_ms.end());
    for (double ms : r.lat_ms)
        r.total_ms += ms;
    return r;
}

void
LaneBook::retire(unsigned below)
{
    // Order-insensitive: no *Result/JSON flow in this function, so
    // the type-based rule must not fire on this walk.
    for (auto it = open_.begin(); it != open_.end();) {
        if (it->first < below)
            it = open_.erase(it);
        else
            ++it;
    }
}

double
LaneBook::orderedSum() const
{
    double sum = 0.0;
    for (const auto &[lane, ms] : done_) // int-keyed: deterministic
        sum += ms;
    return sum;
}

} // namespace neu10
