// Fixture: type-based result-determinism violations. No *Result
// token in the file path and no hand-listed scope — the rule must
// fire purely because unordered iteration happens in functions that
// produce ShardResult data or export JSON.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace neu10
{

struct ShardResult
{
    std::vector<double> loads;
    double total = 0.0;
};

class ShardBook
{
  public:
    ShardResult collect() const;
    std::string shardsJson() const;

  private:
    std::unordered_map<unsigned, double> load_;
    std::unordered_set<unsigned> hot_;
};

ShardResult
ShardBook::collect() const
{
    ShardResult r;
    for (const auto &[shard, load] : load_) { // line 34
        r.loads.push_back(load);
        r.total += load;
    }
    for (auto it = hot_.begin(); it != hot_.end(); ++it) // line 38
        r.total += 1.0;
    return r;
}

std::string
ShardBook::shardsJson() const
{
    std::string out = "[";
    for (const auto &[shard, load] : load_) // line 47
        out += std::to_string(shard) + ",";
    out += "]";
    return out;
}

} // namespace neu10
