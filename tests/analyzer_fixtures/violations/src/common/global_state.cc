// Fixture: shared-state audit violations. Every variable here has
// static storage duration and is neither const, constexpr, atomic,
// thread_local nor NEU10_GUARDED_BY-annotated.

namespace neu10
{

int g_epoch = 0; // line 8

static double g_scale = 1.0; // line 10

namespace
{
unsigned g_calls; // line 14
} // namespace

void
bump()
{
    static unsigned counter = 0; // line 20
    ++counter;
}

} // namespace neu10
