// Fixture: unseeded randomness and stdout writes reachable from the
// runServing entry point — rand()/std::random_device are banned
// outside common/random, printf outside common/logging.
#include <cstdio>
#include <cstdlib>
#include <random>

namespace neu10
{

namespace
{

double
jitter()
{
    std::random_device rd; // line 17
    return static_cast<double>(rd()) + rand() * 1e-9; // line 18
}

void
logProgress(unsigned n)
{
    printf("served %u\n", n); // line 24
}

} // namespace

double
runServing()
{
    logProgress(1);
    return jitter();
}

} // namespace neu10
