// Fixture: pointer-keyed ordering violations. std::map/std::set
// keyed by raw pointers iterate in allocator order, not program
// order — both walks below must be flagged.
#include <map>
#include <set>

namespace neu10
{

struct Tenant
{
    unsigned id = 0;
};

double
walkQueues()
{
    std::map<Tenant *, double> shares;
    double sum = 0.0;
    for (const auto &[tenant, share] : shares) // line 20
        sum += share;
    std::set<const Tenant *> seen;
    for (auto it = seen.begin(); it != seen.end(); ++it) // line 23
        sum += 1.0;
    return sum;
}

} // namespace neu10
