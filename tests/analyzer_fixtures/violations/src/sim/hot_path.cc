// Fixture: purity-reachability violations. runFleet is a default
// analyzer entry point; both helpers below make the chain two hops
// deep so the finding must carry every hop with file:line.
#include <chrono>
#include <thread>
#include <functional>

namespace neu10
{

struct CoreResult
{
    double cycles = 0.0;
};

namespace
{

double
stampNow()
{
    const auto t = std::chrono::steady_clock::now(); // line 22
    return static_cast<double>(t.time_since_epoch().count());
}

unsigned
laneOfThread()
{
    return static_cast<unsigned>(std::hash<std::thread::id>{}(
        std::this_thread::get_id())); // line 30
}

} // namespace

CoreResult
runFleet()
{
    CoreResult r;
    r.cycles = stampNow() + laneOfThread();
    return r;
}

} // namespace neu10
