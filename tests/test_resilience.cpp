/**
 * @file
 * Resilience-subsystem tests: fault-trace generation (determinism,
 * rates, sorting), the FaultTimeline fold (board loss, repair,
 * interval merging, transient filtering), vNPU checkpoint capture
 * and restore (re-split against the destination residency, capacity
 * bookkeeping), placer quarantine, and end-to-end failover-aware
 * fleet serving: a board loss under failover must conserve requests,
 * recover the checkpointed work, and beat the no-failover baseline,
 * all bit-deterministically.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "cluster/fleet.hh"
#include "common/logging.hh"
#include "resilience/checkpoint.hh"
#include "resilience/faults.hh"
#include "sim/clock.hh"
#include "virt/hypervisor.hh"
#include "vnpu/allocator.hh"

namespace neu10
{
namespace
{

FaultEvent
boardLoss(unsigned board, Cycles at, Cycles dur = kCyclesInf)
{
    FaultEvent ev;
    ev.at = at;
    ev.kind = FaultKind::BoardLoss;
    ev.board = board;
    ev.durationCycles = dur;
    return ev;
}

FaultEvent
coreStall(CoreId core, Cycles at, Cycles dur)
{
    FaultEvent ev;
    ev.at = at;
    ev.kind = FaultKind::CoreStall;
    ev.core = core;
    ev.durationCycles = dur;
    return ev;
}

FaultEvent
transientFault(CoreId core, Cycles at, Cycles cost,
               FaultKind kind = FaultKind::TransientMmio)
{
    FaultEvent ev;
    ev.at = at;
    ev.kind = kind;
    ev.core = core;
    ev.durationCycles = cost;
    return ev;
}

FaultEvent
boardRepair(unsigned board, Cycles at)
{
    FaultEvent ev;
    ev.at = at;
    ev.kind = FaultKind::Repair;
    ev.board = board;
    return ev;
}

// ------------------------------------------------- fault injector

TEST(FaultTrace, DeterministicForSeed)
{
    FaultSpec spec;
    spec.seed = 9;
    spec.transientMmioMtbfSec = 1e-3;
    spec.transientDmaMtbfSec = 2e-3;
    spec.coreStallMtbfSec = 5e-3;
    spec.boardLossMtbfSec = 8e-3;
    spec.boardRepairMeanSec = 2e-3;
    const FleetTopology topo{2, 4};
    const auto a = generateFaultTrace(spec, topo, 2e7, 1.05e9);
    const auto b = generateFaultTrace(spec, topo, 2e7, 1.05e9);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].core, b[i].core);
        EXPECT_EQ(a[i].board, b[i].board);
        EXPECT_DOUBLE_EQ(a[i].durationCycles, b[i].durationCycles);
    }
}

TEST(FaultTrace, SeedChangesTrace)
{
    FaultSpec spec;
    spec.transientMmioMtbfSec = 1e-3;
    spec.seed = 1;
    const FleetTopology topo{1, 4};
    const auto a = generateFaultTrace(spec, topo, 2e7, 1.05e9);
    spec.seed = 2;
    const auto b = generateFaultTrace(spec, topo, 2e7, 1.05e9);
    ASSERT_FALSE(a.empty());
    bool differs = a.size() != b.size();
    for (size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].at != b[i].at;
    EXPECT_TRUE(differs);
}

TEST(FaultTrace, SortedAndInHorizonAndInTopology)
{
    FaultSpec spec;
    spec.transientMmioMtbfSec = 1e-3;
    spec.coreStallMtbfSec = 2e-3;
    spec.boardLossMtbfSec = 4e-3;
    spec.boardRepairMeanSec = 1e-3;
    const FleetTopology topo{2, 2};
    const Cycles horizon = 3e7;
    const auto trace = generateFaultTrace(spec, topo, horizon, 1.05e9);
    ASSERT_FALSE(trace.empty());
    for (size_t i = 1; i < trace.size(); ++i)
        EXPECT_LE(trace[i - 1].at, trace[i].at);
    for (const FaultEvent &ev : trace) {
        EXPECT_GE(ev.at, 0.0);
        EXPECT_LT(ev.at, horizon);
        if (ev.kind == FaultKind::BoardLoss)
            EXPECT_LT(ev.board, topo.numBoards);
        else
            EXPECT_LT(ev.core, topo.totalCores());
    }
}

TEST(FaultTrace, MtbfScalesEventCount)
{
    FaultSpec often;
    often.transientMmioMtbfSec = 5e-4;
    FaultSpec rare = often;
    rare.transientMmioMtbfSec = 5e-3;
    const FleetTopology topo{1, 8};
    const auto a = generateFaultTrace(often, topo, 4e7, 1.05e9);
    const auto b = generateFaultTrace(rare, topo, 4e7, 1.05e9);
    // 10x the MTBF, ~1/10th the events; allow generous slack.
    EXPECT_GT(a.size(), 3 * b.size());
}

TEST(FaultTrace, KindNamesAndFatality)
{
    EXPECT_EQ(faultKindName(FaultKind::TransientMmio),
              "transient-mmio");
    EXPECT_EQ(faultKindName(FaultKind::BoardLoss), "board-loss");
    EXPECT_EQ(faultKindName(FaultKind::Repair), "repair");
    EXPECT_FALSE(faultIsFatal(FaultKind::TransientMmio));
    EXPECT_FALSE(faultIsFatal(FaultKind::TransientDma));
    EXPECT_TRUE(faultIsFatal(FaultKind::CoreStall));
    EXPECT_TRUE(faultIsFatal(FaultKind::BoardLoss));
}

// ------------------------------------------------- fault timeline

TEST(Timeline, BoardLossTakesWholeBoardDown)
{
    const FleetTopology topo{2, 2};
    const FaultTimeline tl({boardLoss(0, 100.0, 50.0)}, topo);
    for (CoreId c : {0u, 1u}) {
        EXPECT_FALSE(tl.downAt(c, 99.0));
        EXPECT_TRUE(tl.downAt(c, 100.0));
        EXPECT_TRUE(tl.downAt(c, 149.0));
        EXPECT_FALSE(tl.downAt(c, 150.0));
    }
    for (CoreId c : {2u, 3u}) {
        EXPECT_FALSE(tl.downAt(c, 120.0));
        EXPECT_DOUBLE_EQ(tl.downCycles(c, 0.0, 200.0), 0.0);
    }
    EXPECT_DOUBLE_EQ(tl.downCycles(0, 0.0, 200.0), 50.0);
    EXPECT_DOUBLE_EQ(tl.downCycles(0, 120.0, 200.0), 30.0);
}

TEST(Timeline, RepairEndsOpenEndedLoss)
{
    const FleetTopology topo{2, 2};
    const FaultTimeline tl({boardLoss(1, 100.0), boardRepair(1, 180.0)},
                           topo);
    EXPECT_TRUE(tl.downAt(2, 179.0));
    EXPECT_FALSE(tl.downAt(2, 180.0));
    EXPECT_DOUBLE_EQ(tl.upAgainAt(2, 120.0), 180.0);
    EXPECT_DOUBLE_EQ(tl.downCycles(3, 0.0, 1000.0), 80.0);
    // Without the repair, the outage never ends.
    const FaultTimeline forever({boardLoss(1, 100.0)}, topo);
    EXPECT_TRUE(forever.downAt(2, 1e18));
    EXPECT_EQ(forever.upAgainAt(2, 120.0), kCyclesInf);
}

TEST(Timeline, CoreStallMergesWithBoardLoss)
{
    const FleetTopology topo{1, 2};
    // Core 0 stalls [50, 120); its board is lost [100, 200): one
    // merged outage [50, 200) with a single onset at 50.
    const FaultTimeline tl(
        {coreStall(0, 50.0, 70.0), boardLoss(0, 100.0, 100.0)}, topo);
    EXPECT_DOUBLE_EQ(tl.downCycles(0, 0.0, 300.0), 150.0);
    EXPECT_DOUBLE_EQ(tl.fatalOnset(0, 0.0, 300.0), 50.0);
    EXPECT_EQ(tl.fatalOnset(0, 60.0, 300.0), kCyclesInf);
    // Core 1 only sees the board loss.
    EXPECT_DOUBLE_EQ(tl.fatalOnset(1, 0.0, 300.0), 100.0);
    EXPECT_DOUBLE_EQ(tl.downCycles(1, 0.0, 300.0), 100.0);
}

TEST(Timeline, TransientsDroppedWhileDown)
{
    const FleetTopology topo{1, 1};
    const FaultTimeline tl(
        {transientFault(0, 10.0, 5.0), coreStall(0, 50.0, 50.0),
         transientFault(0, 60.0, 5.0, FaultKind::TransientDma),
         transientFault(0, 120.0, 7.0)},
        topo);
    // The t=60 transient hits a stalled core: discarded.
    EXPECT_EQ(tl.transientCount(0, 0.0, 200.0), 2u);
    EXPECT_DOUBLE_EQ(tl.transientStall(0, 0.0, 200.0), 12.0);
    EXPECT_DOUBLE_EQ(tl.transientStall(0, 0.0, 100.0), 5.0);
}

TEST(Timeline, FatalOnsetOnlyCountsOnsets)
{
    const FleetTopology topo{1, 1};
    const FaultTimeline tl({coreStall(0, 100.0, 1000.0)}, topo);
    EXPECT_DOUBLE_EQ(tl.fatalOnset(0, 0.0, 200.0), 100.0);
    // The core is already down over [200, 300): no new onset.
    EXPECT_EQ(tl.fatalOnset(0, 200.0, 300.0), kCyclesInf);
    EXPECT_DOUBLE_EQ(tl.upAgainAt(0, 200.0), 1100.0);
}

TEST(Timeline, RejectsOutOfTopologyEvents)
{
    setLogLevel(LogLevel::Silent);
    const FleetTopology topo{1, 2};
    EXPECT_THROW(FaultTimeline({boardLoss(3, 10.0)}, topo),
                 FatalError);
    EXPECT_THROW(FaultTimeline({coreStall(7, 10.0, 5.0)}, topo),
                 FatalError);
    setLogLevel(LogLevel::Warn);
}

// --------------------------------------------- checkpoint/restore

TEST(Checkpoint, CaptureRestampsAndSorts)
{
    const VnpuSizing sizing =
        sizeVnpuForModel(ModelId::Mnist, 8, 4, NpuCoreConfig{});
    const std::vector<Cycles> rel = {1e5, -2e4, 3e5};
    const VnpuCheckpoint ckpt = captureCheckpoint(
        /*tenant=*/3, /*owner=*/3, /*failed_core=*/1,
        /*fault_at=*/4e6, /*paid_eus=*/4, sizing, nullptr,
        /*load=*/0.4, rel, /*epoch_start=*/2e6);
    EXPECT_EQ(ckpt.tenant, 3u);
    EXPECT_DOUBLE_EQ(ckpt.faultAt, 4e6);
    ASSERT_EQ(ckpt.backlog.size(), 3u);
    // Absolute stamps, sorted: 2e6 + {-2e4, 1e5, 3e5}.
    EXPECT_DOUBLE_EQ(ckpt.backlog[0], 1.98e6);
    EXPECT_DOUBLE_EQ(ckpt.backlog[1], 2.1e6);
    EXPECT_DOUBLE_EQ(ckpt.backlog[2], 2.3e6);
}

TEST(Checkpoint, RestorePlacesOnSurvivingCore)
{
    const NpuCoreConfig core_cfg;
    FleetPlacer placer(2, core_cfg);
    Hypervisor hv(NpuBoardConfig{});
    placer.setQuarantined(0, true);

    VnpuCheckpoint ckpt = captureCheckpoint(
        0, 0, 0, 1e6, 4,
        sizeVnpuForModel(ModelId::Mnist, 8, 4, core_cfg), nullptr,
        0.3, {0.0}, 0.0);
    const RestoreOutcome out = restoreCheckpoint(
        ckpt, placer, hv, PlacementPolicy::FirstFit, core_cfg);
    ASSERT_TRUE(out.restored());
    EXPECT_EQ(out.core, 1u); // core 0 is quarantined
    EXPECT_EQ(out.nMes + out.nVes, 4u);
    EXPECT_EQ(placer.cores()[1].residents, 1u);
    EXPECT_EQ(placer.cores()[1].freeEus(), 4u);
    EXPECT_NE(out.vnpu, kInvalidVnpu);
    EXPECT_EQ(hv.manager().get(out.vnpu).core, 1u);
}

TEST(Checkpoint, RestoreResplitsForDestinationResidency)
{
    const NpuCoreConfig core_cfg; // 4 ME + 4 VE
    FleetPlacer placer(1, core_cfg);
    Hypervisor hv(NpuBoardConfig{});
    // Pre-load the only core with a 3ME+1VE resident: whatever the
    // checkpointed split was, the restore must fit (<=1 ME, <=3 VE)
    // while keeping the paid 4 EUs.
    PlacementRequest res;
    res.nMes = 3;
    res.nVes = 1;
    res.hbmBytes = 1_GiB;
    ASSERT_TRUE(placer.commit(0, res));

    VnpuCheckpoint ckpt = captureCheckpoint(
        0, 0, 5, 1e6, 4,
        sizeVnpuForModel(ModelId::Mnist, 8, 4, core_cfg), nullptr,
        0.3, {}, 0.0);
    const RestoreOutcome out = restoreCheckpoint(
        ckpt, placer, hv, PlacementPolicy::FirstFit, core_cfg);
    ASSERT_TRUE(out.restored());
    EXPECT_EQ(out.nMes, 1u);
    EXPECT_EQ(out.nVes, 3u);
    EXPECT_EQ(ckpt.sizing.config.numMesPerCore, 1u);
    EXPECT_EQ(placer.cores()[0].freeEus(), 0u);
}

TEST(Checkpoint, RestoreFailsCleanlyWithoutCapacity)
{
    const NpuCoreConfig core_cfg;
    FleetPlacer placer(2, core_cfg);
    Hypervisor hv(NpuBoardConfig{});
    placer.setQuarantined(0, true);
    placer.setQuarantined(1, true);

    VnpuCheckpoint ckpt = captureCheckpoint(
        0, 0, 0, 1e6, 4,
        sizeVnpuForModel(ModelId::Mnist, 8, 4, core_cfg), nullptr,
        0.3, {0.0, 1.0}, 0.0);
    const VnpuCheckpoint before = ckpt;
    const RestoreOutcome out = restoreCheckpoint(
        ckpt, placer, hv, PlacementPolicy::LoadBalanced, core_cfg);
    EXPECT_FALSE(out.restored());
    EXPECT_EQ(out.vnpu, kInvalidVnpu);
    // Nothing committed, nothing created, checkpoint intact.
    EXPECT_EQ(placer.cores()[0].residents, 0u);
    EXPECT_EQ(placer.cores()[1].residents, 0u);
    EXPECT_EQ(hv.manager().liveCount(), 0u);
    EXPECT_EQ(ckpt.backlog, before.backlog);
    EXPECT_EQ(ckpt.sizing.config.numMesPerCore,
              before.sizing.config.numMesPerCore);
}

// ------------------------------------------------ end-to-end fleet

/** 8 equal tenants load-balanced one-per-core onto 2 boards x 4
 * cores; rebalancing disabled so failover effects are isolated. */
FleetConfig
resilientFleet(bool failover, unsigned epochs = 6)
{
    FleetConfig cfg;
    cfg.numBoards = 2;
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = 1.2e7;
    cfg.maxCycles = 2e9;
    cfg.elastic.epochs = epochs;
    cfg.elastic.imbalanceThreshold = 1e18;
    cfg.resilience.failover = failover;
    cfg.resilience.recoveryStallCycles = 1e5;

    const Cycles service =
        sizeVnpuForModel(ModelId::Mnist, 8, 4, cfg.board.core)
            .serviceEstimate();
    for (unsigned i = 0; i < 8; ++i) {
        ClusterTenantSpec t;
        t.model = ModelId::Mnist;
        t.batch = 8;
        t.eus = 4;
        t.traffic.ratePerSec =
            0.35 * cfg.board.core.freqHz / service;
        t.traffic.seed = 100 + i;
        t.sloCycles = 10.0 * service;
        t.maxQueueDepth = 64;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

TEST(Failover, BoardLossRecoversEveryTenant)
{
    auto cfg = resilientFleet(/*failover=*/true);
    cfg.resilience.faults = {boardLoss(0, 4.8e6)};
    const auto r = runFleet(cfg);

    // Four tenants lived on board 0; all four fail over.
    EXPECT_EQ(r.coreFailures, 4u);
    EXPECT_EQ(r.failovers, 4u);
    EXPECT_EQ(r.lostRequests, 0u);
    EXPECT_GT(r.recoveredRequests, 0u);
    // Conservation survives the failure.
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_EQ(r.latencyCycles.count(), r.completed);
    // Every tenant keeps serving: the restored four on board 1.
    for (const auto &tr : r.tenants)
        EXPECT_GT(tr.completed, 0u);
    unsigned displaced = 0;
    for (const auto &pl : r.placements) {
        ASSERT_TRUE(pl.placed());
        if (pl.core >= 4)
            ++displaced;
    }
    EXPECT_EQ(displaced, 8u); // all final placements on board 1
    // The epoch log shows the failure and the restores.
    ASSERT_EQ(r.epochReports.size(), 6u);
    EXPECT_EQ(r.epochReports[2].failures, 4u);
    EXPECT_EQ(r.epochReports[2].restores, 4u);
}

TEST(Failover, AvailabilityDowntimeAndMttrAccounting)
{
    auto cfg = resilientFleet(/*failover=*/true);
    cfg.resilience.faults = {boardLoss(0, 4.8e6)};
    const auto r = runFleet(cfg);

    // Board 0's four cores are down from 4.8e6 to the 1.2e7 horizon.
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(r.cores[c].downCycles, 7.2e6);
    for (CoreId c = 4; c < 8; ++c)
        EXPECT_DOUBLE_EQ(r.cores[c].downCycles, 0.0);
    EXPECT_NEAR(r.availability, 0.7, 1e-12);
    // Fault at 4.8e6, detected at the 6e6 boundary, plus the 1e5
    // recovery stall: MTTR is exactly 1.3e6 for each of the four.
    EXPECT_NEAR(r.mttrCycles, 1.3e6, 1e-3);
    EXPECT_NEAR(r.downtimeCycles, 4 * 1.3e6, 1e-3);
    EXPECT_EQ(r.faultsInjected, 1u);
}

TEST(Failover, RecoversRequestsTheBaselineLoses)
{
    auto with = resilientFleet(/*failover=*/true);
    auto without = resilientFleet(/*failover=*/false);
    with.resilience.faults = {boardLoss(0, 4.8e6)};
    without.resilience.faults = {boardLoss(0, 4.8e6)};
    const auto fo = runFleet(with);
    const auto base = runFleet(without);

    // The baseline abandons board 0's tenants: it loses work, the
    // failover run loses none — >= 90% recovery by a wide margin
    // (the bench_resilience acceptance shape).
    EXPECT_GT(base.lostRequests, 0u);
    EXPECT_EQ(base.failovers, 0u);
    EXPECT_EQ(fo.lostRequests, 0u);
    const double recovered =
        1.0 - static_cast<double>(fo.lostRequests) /
                  static_cast<double>(base.lostRequests);
    EXPECT_GE(recovered, 0.9);
    EXPECT_GT(fo.completed, base.completed);
    EXPECT_GT(fo.goodput, base.goodput);
    // Baseline conservation: lost requests are also rejected.
    EXPECT_EQ(base.completed + base.rejected, base.submitted);
    EXPECT_GE(base.rejected, base.lostRequests);
    // Hardware availability is trace-derived: identical either way.
    EXPECT_DOUBLE_EQ(fo.availability, base.availability);
}

TEST(Failover, DeterministicAndThreadInvariant)
{
    auto cfg = resilientFleet(/*failover=*/true);
    cfg.resilience.faults = {boardLoss(0, 4.8e6),
                             coreStall(6, 7.1e6, 1e6)};
    const auto a = runFleet(cfg);
    const auto b = runFleet(cfg);
    cfg.threads = 4;
    const auto c = runFleet(cfg);
    for (const auto *r : {&b, &c}) {
        EXPECT_EQ(a.completed, r->completed);
        EXPECT_EQ(a.rejected, r->rejected);
        EXPECT_EQ(a.lostRequests, r->lostRequests);
        EXPECT_EQ(a.recoveredRequests, r->recoveredRequests);
        EXPECT_EQ(a.failovers, r->failovers);
        EXPECT_EQ(a.p99(), r->p99());
        EXPECT_EQ(a.goodput, r->goodput);
        EXPECT_DOUBLE_EQ(a.mttrCycles, r->mttrCycles);
        EXPECT_DOUBLE_EQ(a.availability, r->availability);
        for (size_t i = 0; i < a.placements.size(); ++i) {
            EXPECT_EQ(a.placements[i].core, r->placements[i].core);
            EXPECT_EQ(a.placements[i].nMes, r->placements[i].nMes);
        }
    }
}

TEST(Failover, NoFaultsMatchesFailureFreeEngineExactly)
{
    // An empty fault trace must leave the engine bit-identical to
    // the failure-free path, with the failover switch in either
    // position.
    auto on = resilientFleet(/*failover=*/true);
    auto off = resilientFleet(/*failover=*/false);
    const auto a = runFleet(on);
    const auto b = runFleet(off);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.p99(), b.p99());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.goodput, b.goodput);
    EXPECT_EQ(a.faultsInjected, 0u);
    EXPECT_EQ(a.coreFailures, 0u);
    EXPECT_EQ(a.failovers, 0u);
    EXPECT_EQ(a.lostRequests, 0u);
    EXPECT_DOUBLE_EQ(a.availability, 1.0);
    EXPECT_DOUBLE_EQ(a.mttrCycles, 0.0);
    EXPECT_DOUBLE_EQ(a.downtimeCycles, 0.0);
}

TEST(Failover, TransientFaultsStallButLoseNothing)
{
    auto cfg = resilientFleet(/*failover=*/true);
    cfg.resilience.faults = {
        transientFault(0, 1e6, 2e4),
        transientFault(0, 3e6, 2e4, FaultKind::TransientDma),
        transientFault(5, 5e6, 2e4),
    };
    const auto r = runFleet(cfg);
    EXPECT_EQ(r.transientFaults, 3u);
    EXPECT_EQ(r.coreFailures, 0u);
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_EQ(r.lostRequests, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_DOUBLE_EQ(r.availability, 1.0);

    // The retry stalls show up as latency, never as loss: compare
    // with the fault-free run.
    const auto clean = runFleet(resilientFleet(true));
    EXPECT_EQ(r.submitted, clean.submitted);
    EXPECT_GE(r.p99(), clean.p99());
}

TEST(Failover, RepairedBoardRegainsCapacity)
{
    auto cfg = resilientFleet(/*failover=*/true);
    // Board 0 down [3e6, 6e6): detected at the 4e6 boundary,
    // repaired before the 6e6 one.
    cfg.resilience.faults = {boardLoss(0, 3e6, 3e6)};
    const auto r = runFleet(cfg);
    EXPECT_EQ(r.failovers, 4u);
    EXPECT_EQ(r.lostRequests, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_NEAR(r.availability, 1.0 - (4 * 3e6) / (8 * 1.2e7),
                1e-12);
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(r.cores[c].downCycles, 3e6);
}

TEST(Failover, FinalEpochFaultLosesWorkAccountably)
{
    setLogLevel(LogLevel::Silent);
    auto cfg = resilientFleet(/*failover=*/true);
    // Onset inside the last epoch ([1e7, 1.2e7)): no boundary left
    // to restore at — the work is lost, but never mis-counted.
    cfg.resilience.faults = {boardLoss(0, 1.05e7)};
    const auto r = runFleet(cfg);
    EXPECT_EQ(r.coreFailures, 4u);
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_GT(r.lostRequests, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_EQ(r.latencyCycles.count(), r.completed);
    setLogLevel(LogLevel::Warn);
}

TEST(Failover, SingleEpochFaultStillConserves)
{
    setLogLevel(LogLevel::Silent);
    auto cfg = resilientFleet(/*failover=*/true, /*epochs=*/1);
    cfg.resilience.faults = {coreStall(2, 5e6, kCyclesInf)};
    const auto r = runFleet(cfg);
    EXPECT_EQ(r.coreFailures, 1u);
    EXPECT_EQ(r.failovers, 0u); // no boundary: nothing restorable
    EXPECT_GT(r.lostRequests, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    setLogLevel(LogLevel::Warn);
}

TEST(Failover, SurvivesFaultStormWithRebalancingArmed)
{
    // Regression: with rebalancing and failover active together, a
    // restored vNPU can be migrated again at the same boundary as
    // other movers. The migration loop once destroyed/re-created
    // movers one at a time while the placer held the post-rebalance
    // books, so a grant grown into EUs a later mover was about to
    // vacate exceeded the destination's *current* occupancy and the
    // pinned create threw. This is the exact storm that exposed it
    // (bench_resilience part 2, intensity 1.0, seed 1).
    setLogLevel(LogLevel::Silent);
    FleetConfig cfg;
    cfg.numBoards = 4;
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = 4e7;
    cfg.maxCycles = 50.0 * cfg.horizon;
    cfg.elastic.epochs = 10;
    cfg.resilience.recoveryStallCycles = 2e5;
    const ModelId models[4] = {ModelId::Mnist, ModelId::Ncf,
                               ModelId::Dlrm, ModelId::ResNet};
    const unsigned batches[4] = {32, 32, 32, 8};
    const unsigned eus[4] = {2, 4, 4, 6};
    for (unsigned i = 0; i < 16; ++i) {
        const unsigned k = i % 4;
        const Cycles service =
            sizeVnpuForModel(models[k], batches[k], eus[k],
                             cfg.board.core)
                .serviceEstimate();
        ClusterTenantSpec t;
        t.model = models[k];
        t.batch = batches[k];
        t.eus = eus[k];
        t.traffic.ratePerSec =
            0.4 * cfg.board.core.freqHz / service;
        t.traffic.seed = 1 + i;
        t.sloCycles = 8.0 * service;
        t.maxQueueDepth = 64;
        cfg.tenants.push_back(t);
    }
    const FleetTopology topo{cfg.numBoards, cfg.board.totalCores()};
    const double hsec = cfg.horizon / cfg.board.core.freqHz;
    FaultSpec spec;
    spec.seed = 38;
    spec.transientMmioMtbfSec = hsec / 2.0;
    spec.transientDmaMtbfSec = hsec / 2.0;
    spec.transientCostSec = 2e-5;
    spec.coreStallMtbfSec = hsec;
    spec.coreStallMeanSec = 0.05 * hsec;
    spec.boardLossMtbfSec = hsec * topo.totalCores() / topo.numBoards;
    spec.boardRepairMeanSec = 0.2 * hsec;
    cfg.resilience.faults = generateFaultTrace(
        spec, topo, cfg.horizon, cfg.board.core.freqHz);

    const auto r = runFleet(cfg);
    // The storm must actually churn both subsystems...
    EXPECT_GT(r.coreFailures, 0u);
    EXPECT_GT(r.failovers, 0u);
    EXPECT_GT(r.migrations, 0u);
    // ...and accounting survives it.
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_EQ(r.latencyCycles.count(), r.completed);
    setLogLevel(LogLevel::Warn);
}

TEST(Failover, BoundaryCoincidentFaultOnsetConserves)
{
    // Regression: an onset landing exactly on an epoch boundary
    // (fault time == k * window) once produced a zero-length serving
    // run whose t=0 backlog events never fired, silently dropping
    // the carried work from every counter. Such a core must skip the
    // epoch entirely and checkpoint its carry-in directly.
    for (bool failover : {true, false}) {
        auto cfg = resilientFleet(failover);
        // Overload slightly so boards carry backlog at boundaries.
        for (auto &t : cfg.tenants)
            t.traffic.ratePerSec *= 3.0;
        // Exactly the epoch-2 boundary (window = 1.2e7 / 6 = 2e6).
        cfg.resilience.faults = {boardLoss(0, 4e6)};
        setLogLevel(LogLevel::Silent);
        const auto r = runFleet(cfg);
        setLogLevel(LogLevel::Warn);
        EXPECT_EQ(r.coreFailures, 4u) << "failover=" << failover;
        EXPECT_EQ(r.completed + r.rejected, r.submitted)
            << "failover=" << failover;
        EXPECT_EQ(r.latencyCycles.count(), r.completed)
            << "failover=" << failover;
        if (failover) {
            EXPECT_EQ(r.failovers, 4u);
            EXPECT_EQ(r.lostRequests, 0u);
        } else {
            EXPECT_GT(r.lostRequests, 0u);
        }
    }
}

TEST(Failover, CoreStallEvictsOnlyThatCore)
{
    auto cfg = resilientFleet(/*failover=*/true);
    cfg.resilience.faults = {coreStall(3, 4.5e6, kCyclesInf)};
    const auto r = runFleet(cfg);
    EXPECT_EQ(r.coreFailures, 1u);
    EXPECT_EQ(r.failovers, 1u);
    EXPECT_EQ(r.lostRequests, 0u);
    unsigned on_core3 = 0;
    for (const auto &pl : r.placements) {
        ASSERT_TRUE(pl.placed());
        on_core3 += pl.core == 3;
    }
    EXPECT_EQ(on_core3, 0u);
    unsigned failovers = 0;
    for (const auto &tr : r.tenants)
        failovers += tr.failovers;
    EXPECT_EQ(failovers, 1u);
}

} // anonymous namespace
} // namespace neu10
