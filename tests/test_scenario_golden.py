#!/usr/bin/env python3
"""Golden-output regression check for the scenario runner.

Runs ``neu10_run <scenario> --smoke --json=<tmp>`` and byte-compares
the JSON record against the checked-in golden
(``scenarios/goldens/<name>.json``). The record is deterministic by
contract (stable key order, shortest round-trip doubles, no
wall-clock/host/path fields), so an exact byte diff is the right
comparison: any difference is either a real behavior change or a
broken determinism contract, and both must be looked at.

Usage:
    test_scenario_golden.py RUNNER SCENARIO GOLDEN [--regen]

With ``--regen`` the golden is rewritten instead of compared — run
after an intentional behavior change, then commit the diff:

    for s in scenarios/*.scn; do
        python3 tests/test_scenario_golden.py build/tools/neu10_run \\
            "$s" "scenarios/goldens/$(basename "$s" .scn).json" --regen
    done

Exit codes: 0 match (or regenerated), 1 mismatch, 2 usage/run error.
"""

import difflib
import os
import pathlib
import subprocess
import sys
import tempfile

# Harness env knobs would change the record under the caller's feet
# (a stray NEU10_SEED would fail every golden); the comparison always
# runs the scenario exactly as committed.
HARNESS_VARS = ("NEU10_SEED", "NEU10_SMOKE", "NEU10_TRACE",
                "NEU10_TRACE_OUT")


def main(argv):
    args = [a for a in argv[1:] if a != "--regen"]
    regen = "--regen" in argv[1:]
    if len(args) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    runner, scenario, golden = map(pathlib.Path, args)

    env = {k: v for k, v in os.environ.items()
           if k not in HARNESS_VARS}

    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "result.json"
        cmd = [str(runner), str(scenario), "--smoke",
               f"--json={out}"]
        proc = subprocess.run(cmd, env=env, capture_output=True,
                              text=True)
        if proc.returncode != 0:
            print(f"error: {' '.join(cmd)} exited "
                  f"{proc.returncode}\n{proc.stderr}",
                  file=sys.stderr)
            return 2
        got = out.read_bytes()

    if regen:
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_bytes(got)
        print(f"regenerated {golden}")
        return 0

    if not golden.exists():
        print(f"error: golden {golden} does not exist; generate it "
              f"with --regen and commit it", file=sys.stderr)
        return 1
    want = golden.read_bytes()
    if got == want:
        print(f"ok: {scenario.name} matches {golden.name} "
              f"({len(got)} bytes)")
        return 0

    diff = difflib.unified_diff(
        want.decode(errors="replace").splitlines(keepends=True),
        got.decode(errors="replace").splitlines(keepends=True),
        fromfile=str(golden), tofile="neu10_run output")
    sys.stderr.writelines(diff)
    print(f"\nerror: {scenario.name} diverged from its golden. If "
          f"the change is intentional, regenerate with:\n  python3 "
          f"tests/test_scenario_golden.py {runner} {scenario} "
          f"{golden} --regen\nand commit the updated golden.",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
