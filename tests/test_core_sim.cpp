/**
 * @file
 * Core-simulator and scheduler tests: fluid execution timing, tiling
 * speedup, VE/HBM rate caps, bandwidth fairness, ME/VE harvesting and
 * reclaim (Neu10), static partitioning (Neu10-NH), operator-level false
 * contention (V10), whole-core exclusivity (PMT), and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "npu/bandwidth.hh"
#include "npu/core_sim.hh"
#include "sched/policy.hh"
#include "sim/event_queue.hh"

namespace neu10
{
namespace
{

/** Build a single-op model: one group of @p tiles ME uTOps. */
CompiledModel
meModel(unsigned tiles, Cycles me_per_tile, Cycles ve_per_tile = 0.0,
        Bytes bytes_per_tile = 0, unsigned groups = 1)
{
    CompiledModel m;
    m.model = "synthetic-me";
    m.batch = 1;
    m.nx = 4;
    m.ny = 4;
    m.neuIsa = true;
    CompiledOp op;
    op.name = "mm";
    op.kind = OpKind::MatMul;
    for (unsigned g = 0; g < groups; ++g) {
        WorkGroup grp;
        for (unsigned t = 0; t < tiles; ++t) {
            WorkUnit u;
            u.kind = UTopKind::Me;
            u.gang = 1;
            u.meTime = me_per_tile;
            u.veTime = ve_per_tile;
            u.bytes = bytes_per_tile;
            grp.units.push_back(u);
        }
        op.groups.push_back(grp);
    }
    m.ops.push_back(op);
    m.validate();
    return m;
}

/** Single VE-only op model. */
CompiledModel
veModel(Cycles ve_cycles, Bytes bytes = 0)
{
    CompiledModel m;
    m.model = "synthetic-ve";
    m.batch = 1;
    m.nx = 4;
    m.ny = 4;
    m.neuIsa = true;
    CompiledOp op;
    op.name = "vec";
    op.kind = OpKind::Vector;
    WorkGroup grp;
    WorkUnit u;
    u.kind = UTopKind::Ve;
    u.gang = 0;
    u.veTime = ve_cycles;
    u.bytes = bytes;
    grp.units.push_back(u);
    op.groups.push_back(grp);
    m.ops.push_back(op);
    m.validate();
    return m;
}

/** VLIW-style model: one gang operator occupying all MEs. */
CompiledModel
gangModel(unsigned gang, Cycles occupancy, double eff,
          Cycles ve_cycles = 0.0)
{
    CompiledModel m;
    m.model = "synthetic-vliw";
    m.batch = 1;
    m.nx = gang;
    m.ny = 4;
    m.neuIsa = false;
    CompiledOp op;
    op.name = "vliw-op";
    op.kind = OpKind::MatMul;
    WorkGroup grp;
    WorkUnit u;
    u.kind = UTopKind::Me;
    u.gang = gang;
    u.meTime = occupancy;
    u.meEff = eff;
    u.veTime = ve_cycles;
    grp.units.push_back(u);
    op.groups.push_back(grp);
    m.ops.push_back(op);
    m.validate();
    return m;
}

std::vector<VnpuSlot>
twoSlots(unsigned mes = 2, unsigned ves = 2)
{
    VnpuSlot a;
    a.nMes = mes;
    a.nVes = ves;
    VnpuSlot b = a;
    return {a, b};
}

struct Harness
{
    EventQueue queue;
    NpuCoreConfig cfg;
    std::unique_ptr<NpuCoreSim> core;

    explicit Harness(PolicyKind kind,
                     std::vector<VnpuSlot> slots = twoSlots(),
                     NpuCoreConfig c = {})
        : cfg(c)
    {
        core = std::make_unique<NpuCoreSim>(queue, cfg,
                                            makePolicy(kind),
                                            std::move(slots));
    }

    /** Run one request to completion; return its latency. */
    Cycles
    runOne(std::uint32_t slot, const CompiledModel &m)
    {
        Cycles latency = -1.0;
        core->submit(slot, &m, [&](const RequestResult &r) {
            latency = r.latency();
        });
        queue.runUntil();
        EXPECT_GE(latency, 0.0) << "request did not complete";
        return latency;
    }
};

// ----------------------------------------------------- basic timing

TEST(CoreSim, SingleUTopTakesItsMeTime)
{
    Harness h(PolicyKind::Neu10);
    const Cycles lat = h.runOne(0, meModel(1, 10000.0));
    EXPECT_NEAR(lat, 10000.0, 1.0);
}

TEST(CoreSim, FourTilesOnOwnTwoMesTakeTwoRounds)
{
    // Slot 0 owns 2 MEs; 4 tiles with nobody to harvest from... the
    // other slot is idle, so harvesting grabs its 2 MEs: one round.
    Harness h(PolicyKind::Neu10);
    const Cycles lat = h.runOne(0, meModel(4, 10000.0));
    EXPECT_NEAR(lat, 10000.0, 1.0);
}

TEST(CoreSim, NoHarvestLimitsToOwnBudget)
{
    Harness h(PolicyKind::Neu10NH);
    const Cycles lat = h.runOne(0, meModel(4, 10000.0));
    // 4 tiles on 2 owned MEs: two sequential waves.
    EXPECT_NEAR(lat, 20000.0, 1.0);
}

TEST(CoreSim, GroupsExecuteSequentially)
{
    Harness h(PolicyKind::Neu10);
    const Cycles lat = h.runOne(0, meModel(2, 5000.0, 0.0, 0, 3));
    EXPECT_NEAR(lat, 15000.0, 1.0);
}

TEST(CoreSim, VeUTopRunsOnAllocatedVes)
{
    Harness h(PolicyKind::Neu10);
    // 8000 VE-cycles on a slot with 2 VEs, spare 2 VEs harvested from
    // the idle neighbour: 8000/4.
    const Cycles lat = h.runOne(0, veModel(8000.0));
    EXPECT_NEAR(lat, 2000.0, 1.0);
}

TEST(CoreSim, VeUTopWithoutHarvestUsesOwnVes)
{
    Harness h(PolicyKind::Neu10NH);
    const Cycles lat = h.runOne(0, veModel(8000.0));
    EXPECT_NEAR(lat, 4000.0, 1.0);
}

TEST(CoreSim, MeUTopStallsOnVeStarvation)
{
    // veTime == 2 x meTime: the uTOp cannot retire faster than its VE
    // post-processing. With 4 VEs harvested: rate = 4/20000.
    Harness h(PolicyKind::Neu10);
    const Cycles lat = h.runOne(0, meModel(1, 10000.0, 80000.0));
    EXPECT_NEAR(lat, 20000.0, 2.0);
}

TEST(CoreSim, HbmBoundUTop)
{
    Harness h(PolicyKind::Neu10);
    const double bpc = h.cfg.hbmBytesPerCycle(); // ~1143 B/cy
    const Bytes bytes = static_cast<Bytes>(bpc * 50000.0);
    const Cycles lat = h.runOne(0, meModel(1, 10000.0, 0.0, bytes));
    EXPECT_NEAR(lat, 50000.0, 50.0);
}

TEST(CoreSim, RequestLatencyAccountsQueueing)
{
    Harness h(PolicyKind::Neu10);
    const CompiledModel m = meModel(2, 10000.0);
    std::vector<Cycles> latencies;
    for (int i = 0; i < 3; ++i) {
        h.core->submit(0, &m, [&](const RequestResult &r) {
            latencies.push_back(r.latency());
        });
    }
    h.queue.runUntil();
    ASSERT_EQ(latencies.size(), 3u);
    // 3 requests x 2 uTOps on 4 MEs (2 own + 2 harvested): the first
    // two requests run together, the third queues behind them.
    EXPECT_GT(latencies[2], latencies[0]);
}

TEST(CoreSim, OpTimingsCaptured)
{
    Harness h(PolicyKind::Neu10);
    h.core->setCaptureOpTimings(true);
    const CompiledModel m = meModel(2, 5000.0, 0.0, 0, 2);
    RequestResult res;
    h.core->submit(0, &m, [&](const RequestResult &r) { res = r; });
    h.queue.runUntil();
    ASSERT_EQ(res.opTimings.size(), 1u);
    EXPECT_NEAR(res.opTimings[0].start, 0.0, 1e-9);
    EXPECT_NEAR(res.opTimings[0].end, 10000.0, 1.0);
}

// ------------------------------------------------------- harvesting

TEST(Harvest, SpeedupOverStaticPartitioning)
{
    // ME-heavy tenant + idle neighbour: Neu10 harvests, NH cannot.
    const CompiledModel m = meModel(4, 20000.0, 0.0, 0, 4);
    Harness h1(PolicyKind::Neu10);
    Harness h2(PolicyKind::Neu10NH);
    const Cycles with = h1.runOne(0, m);
    const Cycles without = h2.runOne(0, m);
    EXPECT_NEAR(without / with, 2.0, 0.05);
}

TEST(Harvest, ReclaimPreemptsHarvesters)
{
    // Tenant 0 saturates all 4 MEs by harvesting; tenant 1 arrives
    // late and must get its 2 MEs back via preemption.
    Harness h(PolicyKind::Neu10);
    const CompiledModel big = meModel(4, 100000.0, 0.0, 0, 4);
    const CompiledModel small = meModel(2, 10000.0);

    Cycles small_lat = -1.0;
    h.core->submit(0, &big, nullptr);
    h.queue.runUntil(50000.0);
    h.core->submit(1, &small, [&](const RequestResult &r) {
        small_lat = r.latency();
    });
    h.queue.runUntil();

    ASSERT_GE(small_lat, 0.0);
    // Reclaim cost is one 256-cycle context switch, not a wait for
    // the harvester's 100k-cycle uTOp to finish.
    EXPECT_LT(small_lat, 10000.0 + 4 * h.cfg.mePreemptCycles + 100.0);
    EXPECT_GT(h.core->slots()[1].reclaimPreemptions, 0u);
}

TEST(Harvest, PreemptedUTopKeepsProgress)
{
    Harness h(PolicyKind::Neu10);
    const CompiledModel big = meModel(4, 100000.0);
    const CompiledModel small = meModel(2, 10000.0);

    Cycles big_lat = -1.0;
    h.core->submit(0, &big, [&](const RequestResult &r) {
        big_lat = r.latency();
    });
    h.queue.runUntil(50000.0);
    h.core->submit(1, &small, nullptr);
    h.queue.runUntil();

    ASSERT_GE(big_lat, 0.0);
    // The two preempted tiles resume on the own budget after ~50k of
    // progress; without keeping progress the latency would exceed
    // 150k. With progress kept: preempted at 50k with x=0.5, the two
    // own-budget tiles finish at 100k, the preempted pair resumes and
    // finishes by ~150k + small change.
    EXPECT_LT(big_lat, 155000.0);
    EXPECT_GT(big_lat, 99000.0);
}

TEST(Harvest, BlockedTimeTrackedForTableIII)
{
    Harness h(PolicyKind::Neu10);
    const CompiledModel big = meModel(4, 50000.0, 0.0, 0, 4);
    h.core->submit(0, &big, nullptr);
    h.core->submit(1, &big, nullptr);
    h.queue.runUntil();
    // With both tenants saturating, some blocked-on-harvest time is
    // plausible but reclaim keeps it bounded; the counter must at
    // least be consistent (non-negative, <= total runtime).
    for (const auto &s : h.core->slots()) {
        EXPECT_GE(s.blockedByHarvest, 0.0);
        EXPECT_LE(s.blockedByHarvest, h.queue.now());
    }
}

TEST(Harvest, VeSurplusSharedAcrossTenants)
{
    // Tenant 0 runs a VE-heavy op; tenant 1 idle: with harvesting the
    // op gets all 4 VEs instead of its 2.
    Harness hv(PolicyKind::Neu10);
    Harness hn(PolicyKind::Neu10NH);
    const CompiledModel m = veModel(40000.0);
    const Cycles with = hv.runOne(0, m);
    const Cycles without = hn.runOne(0, m);
    EXPECT_NEAR(without / with, 2.0, 0.05);
}

// ------------------------------------------------------------- V10

TEST(V10, FalseContentionBlocksSecondTenant)
{
    // Two gang operators cannot overlap even though each only fills
    // half the array (meEff 0.5): serialization doubles makespan.
    Harness h(PolicyKind::V10);
    const CompiledModel m = gangModel(4, 50000.0, 0.5);
    Cycles done0 = -1, done1 = -1;
    h.core->submit(0, &m, [&](const RequestResult &r) {
        done0 = r.finishTime;
    });
    h.core->submit(1, &m, [&](const RequestResult &r) {
        done1 = r.finishTime;
    });
    h.queue.runUntil();
    const Cycles makespan = std::max(done0, done1);
    EXPECT_GT(makespan, 95000.0); // serialized, not parallel
}

TEST(V10, VeOnlyOperatorOverlapsWithMeOperator)
{
    Harness h(PolicyKind::V10);
    const CompiledModel me_op = gangModel(4, 50000.0, 1.0);
    const CompiledModel ve_op = veModel(20000.0);
    Cycles ve_done = -1;
    h.core->submit(0, &me_op, nullptr);
    h.core->submit(1, &ve_op, [&](const RequestResult &r) {
        ve_done = r.finishTime;
    });
    h.queue.runUntil();
    ASSERT_GE(ve_done, 0.0);
    // The VE op need not wait for the 50k-cycle ME operator.
    EXPECT_LT(ve_done, 30000.0);
}

TEST(V10, FairnessPreemptsLongOperator)
{
    Harness h(PolicyKind::V10);
    const CompiledModel longop = gangModel(4, 1000000.0, 1.0);
    const CompiledModel shortop = gangModel(4, 20000.0, 1.0);
    Cycles short_done = -1;
    h.core->submit(0, &longop, nullptr);
    h.queue.runUntil(1000.0);
    h.core->submit(1, &shortop, [&](const RequestResult &r) {
        short_done = r.finishTime;
    });
    h.queue.runUntil();
    ASSERT_GE(short_done, 0.0);
    // Preemption bounds the wait to roughly the fairness window, far
    // below the 1M-cycle operator length.
    EXPECT_LT(short_done, 300000.0);
}

// ------------------------------------------------------------- PMT

TEST(Pmt, NoOverlapEvenForVeOnlyWork)
{
    Harness h(PolicyKind::Pmt);
    const CompiledModel me_op = gangModel(4, 50000.0, 1.0);
    const CompiledModel ve_op = veModel(20000.0);
    Cycles ve_done = -1;
    h.core->submit(0, &me_op, nullptr);
    h.queue.runUntil(1.0);
    h.core->submit(1, &ve_op, [&](const RequestResult &r) {
        ve_done = r.finishTime;
    });
    h.queue.runUntil();
    ASSERT_GE(ve_done, 0.0);
    // PMT serializes whole tenants: the VE op waits for a quantum
    // switch at least (vs ~5k under V10 overlap).
    EXPECT_GT(ve_done, 30000.0);
}

TEST(Pmt, FairSharingOverLongRun)
{
    Harness h(PolicyKind::Pmt);
    const CompiledModel m = gangModel(4, 20000.0, 1.0);

    // Closed loop: each tenant resubmits on completion.
    std::function<void(std::uint32_t)> pump = [&](std::uint32_t slot) {
        h.core->submit(slot, &m, [&, slot](const RequestResult &) {
            pump(slot);
        });
    };
    pump(0);
    pump(1);
    h.queue.runUntil(2000000.0);
    const auto &slots = h.core->slots();
    const double a = slots[0].requestsCompleted;
    const double b = slots[1].requestsCompleted;
    EXPECT_GT(a, 0.0);
    EXPECT_GT(b, 0.0);
    EXPECT_NEAR(a / b, 1.0, 0.25);
    h.core->drainSlot(0);
    h.core->drainSlot(1);
}

TEST(Pmt, SwitchCostReducesThroughputVsV10)
{
    // Same closed-loop load under PMT vs V10; V10 overlaps VE-only
    // ops and switches cheaper, so it completes at least as many.
    const CompiledModel me_op = gangModel(4, 30000.0, 1.0, 10000.0);
    auto run = [&](PolicyKind kind) {
        Harness h(kind);
        std::function<void(std::uint32_t)> pump =
            [&](std::uint32_t slot) {
                h.core->submit(slot, &me_op,
                               [&, slot](const RequestResult &) {
                                   pump(slot);
                               });
            };
        pump(0);
        pump(1);
        h.queue.runUntil(3000000.0);
        const double done = h.core->slots()[0].requestsCompleted +
                            h.core->slots()[1].requestsCompleted;
        h.core->drainSlot(0);
        h.core->drainSlot(1);
        return done;
    };
    EXPECT_GE(run(PolicyKind::V10), run(PolicyKind::Pmt));
}

// ------------------------------------------------- stats & fairness

TEST(Stats, UtilizationTrackersConsistent)
{
    Harness h(PolicyKind::Neu10);
    h.runOne(0, meModel(4, 10000.0, 20000.0));
    const Cycles end = h.queue.now();
    const double me_u = h.core->meUseful().utilization(0.0, end);
    const double me_h = h.core->meHeld().utilization(0.0, end);
    const double ve_u = h.core->veBusy().utilization(0.0, end);
    EXPECT_GT(me_u, 0.0);
    EXPECT_LE(me_u, me_h + 1e-9);
    EXPECT_LE(me_h, 1.0 + 1e-9);
    EXPECT_GT(ve_u, 0.0);
    EXPECT_LE(ve_u, 1.0 + 1e-9);
}

TEST(Stats, HbmBytesAccumulated)
{
    Harness h(PolicyKind::Neu10);
    const Bytes bytes = 1000000;
    h.runOne(0, meModel(2, 10000.0, 0.0, bytes));
    EXPECT_NEAR(h.core->hbmBytesTransferred(), 2.0 * bytes,
                2.0 * bytes * 1e-6);
}

TEST(Stats, AssignmentSeriesCaptured)
{
    Harness h(PolicyKind::Neu10);
    h.core->setCaptureAssignment(true);
    h.runOne(0, meModel(4, 10000.0));
    const auto &series = h.core->slots()[0].assignedMes;
    EXPECT_FALSE(series.empty());
    EXPECT_NEAR(series.peak(), 4.0, 1e-9);
}

TEST(Hbm, FairSharingBetweenTenants)
{
    // Two bandwidth-bound uTOps from different tenants: each gets
    // half the bandwidth, so both take twice their solo time.
    Harness h(PolicyKind::Neu10);
    const double bpc = h.cfg.hbmBytesPerCycle();
    const Bytes bytes = static_cast<Bytes>(bpc * 20000.0);
    const CompiledModel m = meModel(1, 1000.0, 0.0, bytes);
    Cycles l0 = -1, l1 = -1;
    h.core->submit(0, &m, [&](const RequestResult &r) {
        l0 = r.latency();
    });
    h.core->submit(1, &m, [&](const RequestResult &r) {
        l1 = r.latency();
    });
    h.queue.runUntil();
    EXPECT_NEAR(l0, 40000.0, 100.0);
    EXPECT_NEAR(l1, 40000.0, 100.0);
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults)
{
    auto run = [] {
        Harness h(PolicyKind::Neu10);
        const CompiledModel a = meModel(4, 12345.0, 6789.0, 1000);
        const CompiledModel b = veModel(23456.0, 2000);
        std::vector<double> latencies;
        for (int i = 0; i < 5; ++i) {
            h.core->submit(0, &a, [&](const RequestResult &r) {
                latencies.push_back(r.latency());
            });
            h.core->submit(1, &b, [&](const RequestResult &r) {
                latencies.push_back(r.latency());
            });
        }
        h.queue.runUntil();
        return latencies;
    };
    EXPECT_EQ(run(), run());
}

TEST(Bandwidth, MaxMinBasics)
{
    const auto g = maxMinAllocate({10.0, 10.0}, 10.0);
    EXPECT_DOUBLE_EQ(g[0], 5.0);
    EXPECT_DOUBLE_EQ(g[1], 5.0);

    const auto g2 = maxMinAllocate({2.0, 100.0}, 10.0);
    EXPECT_DOUBLE_EQ(g2[0], 2.0);
    EXPECT_DOUBLE_EQ(g2[1], 8.0);

    const auto g3 = maxMinAllocate({1.0, 1.0, 1.0}, 30.0);
    EXPECT_DOUBLE_EQ(g3[0] + g3[1] + g3[2], 3.0);
}

TEST(Bandwidth, WeightedAllocation)
{
    const auto g = maxMinAllocate({100.0, 100.0}, 30.0, {2.0, 1.0});
    EXPECT_DOUBLE_EQ(g[0], 20.0);
    EXPECT_DOUBLE_EQ(g[1], 10.0);
}

TEST(Bandwidth, ZeroCapacityAndEmpty)
{
    EXPECT_TRUE(maxMinAllocate({}, 10.0).empty());
    const auto g = maxMinAllocate({5.0}, 0.0);
    EXPECT_DOUBLE_EQ(g[0], 0.0);
}

TEST(Bandwidth, NeverExceedsDemandOrCapacity)
{
    const std::vector<double> demands = {3.0, 7.0, 0.0, 11.0, 2.0};
    for (double cap : {1.0, 5.0, 20.0, 100.0}) {
        const auto g = maxMinAllocate(demands, cap);
        double total = 0.0;
        for (size_t i = 0; i < g.size(); ++i) {
            EXPECT_LE(g[i], demands[i] + 1e-12);
            total += g[i];
        }
        EXPECT_LE(total, cap + 1e-9);
    }
}

} // anonymous namespace
} // namespace neu10
