#!/usr/bin/env python3
"""End-to-end trace artifact test (CTest: trace_artifact).

Runs bench_cluster_serving in smoke mode with NEU10_TRACE=on, then
validates the emitted Chrome trace and metrics JSON with
tools/check_trace.py — the exact pipeline CI's traced smoke-run job
uses, so a bench or exporter regression fails here first.

Usage: test_trace_artifact.py REPO_ROOT BENCH_BINARY
"""

import os
import pathlib
import subprocess
import sys
import tempfile


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd))
    proc = subprocess.run(cmd, **kwargs)
    if proc.returncode != 0:
        sys.exit(f"FAIL: {' '.join(str(c) for c in cmd)} exited "
                 f"{proc.returncode}")


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} REPO_ROOT BENCH_BINARY")
    root = pathlib.Path(sys.argv[1])
    bench = pathlib.Path(sys.argv[2])
    check = root / "tools" / "check_trace.py"
    if not bench.exists():
        sys.exit(f"FAIL: bench binary {bench} not found")

    with tempfile.TemporaryDirectory() as tmp:
        trace = pathlib.Path(tmp) / "fleet.trace.json"
        env = dict(os.environ,
                   NEU10_SMOKE="1",
                   NEU10_TRACE="on",
                   NEU10_TRACE_OUT=str(trace))
        run([bench], env=env, stdout=subprocess.DEVNULL)
        if not trace.exists():
            sys.exit("FAIL: bench did not write the trace file")
        run([sys.executable, check, trace,
             "--metrics", f"{trace}.metrics.json",
             # The canonical fleet run must show the full request
             # lifecycle plus fleet-level bookkeeping.
             "--require-event", "admit",
             "--require-event", "queue",
             "--require-event", "execute",
             "--require-event", "complete",
             "--require-event", "place",
             "--require-event", "epoch"])
    print("ok: traced smoke run produced a valid trace + metrics")


if __name__ == "__main__":
    main()
