/**
 * @file
 * End-to-end serving integration tests: the §V evaluation claims as
 * executable assertions. Each test runs collocated tenants under the
 * four designs and checks the paper's qualitative results — who wins,
 * in which direction, on which pair class — with safe margins.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "runtime/serving.hh"

namespace neu10
{
namespace
{

ServingConfig
pairConfig(ModelId w1, unsigned b1, ModelId w2, unsigned b2,
           PolicyKind policy, unsigned min_requests = 8)
{
    ServingConfig cfg;
    cfg.policy = policy;
    cfg.tenants = {
        {w1, b1, 2, 2, 1.0, 1},
        {w2, b2, 2, 2, 1.0, 1},
    };
    cfg.minRequests = min_requests;
    cfg.maxCycles = 2e9;
    return cfg;
}

TEST(Serving, CompletesRequestsUnderEveryPolicy)
{
    for (auto pol : {PolicyKind::Pmt, PolicyKind::V10,
                     PolicyKind::Neu10NH, PolicyKind::Neu10}) {
        const auto r = runServing(pairConfig(
            ModelId::Dlrm, 32, ModelId::EfficientNet, 32, pol));
        EXPECT_GE(r.tenants[0].completed, 8u) << policyName(pol);
        EXPECT_GE(r.tenants[1].completed, 8u) << policyName(pol);
        EXPECT_GT(r.makespan, 0.0);
    }
}

TEST(Serving, DeterministicAcrossRuns)
{
    const auto cfg = pairConfig(ModelId::Ncf, 32, ModelId::ResNet, 32,
                                PolicyKind::Neu10);
    const auto a = runServing(cfg);
    const auto b = runServing(cfg);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.tenants[0].completed, b.tenants[0].completed);
    EXPECT_EQ(a.tenants[0].p95(), b.tenants[0].p95());
    EXPECT_EQ(a.meUsefulUtil, b.meUsefulUtil);
}

TEST(Serving, Fig21LowContentionSharingBeatsPmt)
{
    // §V-B: with complementary demands, V10 and Neu10 overlap ME- and
    // VE-intensive phases; PMT cannot. Paper: 1.58x / 1.62x average.
    const auto pmt = runServing(pairConfig(
        ModelId::Ncf, 32, ModelId::ResNet, 32, PolicyKind::Pmt));
    const auto v10 = runServing(pairConfig(
        ModelId::Ncf, 32, ModelId::ResNet, 32, PolicyKind::V10));
    const auto neu = runServing(pairConfig(
        ModelId::Ncf, 32, ModelId::ResNet, 32, PolicyKind::Neu10));
    for (int i : {0, 1}) {
        EXPECT_GT(v10.tenants[i].throughput,
                  1.3 * pmt.tenants[i].throughput) << i;
        EXPECT_GT(neu.tenants[i].throughput,
                  1.3 * pmt.tenants[i].throughput) << i;
    }
}

TEST(Serving, Fig19TailLatencyIsolationOnHighContention)
{
    // §V-B headline: Neu10 cuts p95 tail latency vs V10 by up to
    // 4.6x; the biggest gap is the high-contention small+large pair
    // (MNIST+RetinaNet), where V10's operator interference starves
    // the light tenant.
    const auto v10 = runServing(pairConfig(
        ModelId::Mnist, 32, ModelId::RetinaNet, 32, PolicyKind::V10,
        /*min_requests=*/4));
    const auto neu = runServing(pairConfig(
        ModelId::Mnist, 32, ModelId::RetinaNet, 32, PolicyKind::Neu10,
        /*min_requests=*/4));
    EXPECT_GT(v10.tenants[0].p95(), 2.0 * neu.tenants[0].p95());
}

TEST(Serving, Fig19PmtQuantumBoundsTailsButCostsThroughput)
{
    const auto pmt = runServing(pairConfig(
        ModelId::Mnist, 32, ModelId::RetinaNet, 32, PolicyKind::Pmt,
        4));
    const auto neu = runServing(pairConfig(
        ModelId::Mnist, 32, ModelId::RetinaNet, 32, PolicyKind::Neu10,
        4));
    // Neu10's spatial isolation gives the light tenant both better
    // tails and better throughput than whole-core time sharing.
    EXPECT_LT(neu.tenants[0].p95(), pmt.tenants[0].p95());
    EXPECT_GT(neu.tenants[0].throughput, pmt.tenants[0].throughput);
}

TEST(Serving, Fig21HarvestingBeatsStaticPartitioning)
{
    // Neu10 vs Neu10-NH (MIG-like): harvesting lifts the ME-heavy
    // tenant collocated with a VE-heavy one (low-contention pairs).
    const auto nh = runServing(pairConfig(
        ModelId::Dlrm, 32, ModelId::ShapeMask, 8, PolicyKind::Neu10NH));
    const auto neu = runServing(pairConfig(
        ModelId::Dlrm, 32, ModelId::ShapeMask, 8, PolicyKind::Neu10));
    EXPECT_GT(neu.tenants[1].throughput,
              1.4 * nh.tenants[1].throughput);
    // The harvested (VE-heavy) tenant keeps its throughput.
    EXPECT_GT(neu.tenants[0].throughput,
              0.9 * nh.tenants[0].throughput);
}

TEST(Serving, Fig22UtilizationOrdering)
{
    // §V-C: dynamic sharing (V10 / Neu10) keeps engines busier than
    // static partitioning (NH), which beats whole-core time sharing.
    const auto pmt = runServing(pairConfig(
        ModelId::Dlrm, 32, ModelId::ShapeMask, 8, PolicyKind::Pmt));
    const auto nh = runServing(pairConfig(
        ModelId::Dlrm, 32, ModelId::ShapeMask, 8, PolicyKind::Neu10NH));
    const auto neu = runServing(pairConfig(
        ModelId::Dlrm, 32, ModelId::ShapeMask, 8, PolicyKind::Neu10));
    EXPECT_GT(neu.meUsefulUtil, 1.1 * pmt.meUsefulUtil);
    EXPECT_GT(neu.meUsefulUtil, 1.1 * nh.meUsefulUtil);
    EXPECT_LE(neu.meUsefulUtil, 1.0 + 1e-9);
}

TEST(Serving, TableIIIHarvestOverheadSmallAndBounded)
{
    // Blocked-by-harvest time exists but stays far below the benefit
    // (paper: 0.01% - 10.6%, always outweighed).
    const auto neu = runServing(pairConfig(
        ModelId::Dlrm, 32, ModelId::ShapeMask, 8, PolicyKind::Neu10));
    for (const auto &t : neu.tenants) {
        EXPECT_GE(t.blockedFrac, 0.0);
        EXPECT_LT(t.blockedFrac, 0.15);
    }
    // NH never harvests, so it never blocks anyone on reclaim.
    const auto nh = runServing(pairConfig(
        ModelId::Dlrm, 32, ModelId::ShapeMask, 8, PolicyKind::Neu10NH));
    for (const auto &t : nh.tenants)
        EXPECT_DOUBLE_EQ(t.blockedFrac, 0.0);
}

TEST(Serving, OpTimingsCapturedPerRequest)
{
    auto cfg = pairConfig(ModelId::Mnist, 8, ModelId::EfficientNet, 8,
                          PolicyKind::Neu10, 4);
    cfg.captureOpTimings = true;
    const auto r = runServing(cfg);
    ASSERT_FALSE(r.tenants[0].opTimings.empty());
    const auto &ops = r.tenants[0].opTimings.front();
    ASSERT_FALSE(ops.empty());
    for (const auto &op : ops) {
        EXPECT_LE(op.start, op.end);
        EXPECT_GE(op.end, 0.0);
    }
}

TEST(Serving, AssignmentTraceCaptured)
{
    auto cfg = pairConfig(ModelId::Dlrm, 32, ModelId::RetinaNet, 32,
                          PolicyKind::Neu10, 4);
    cfg.captureAssignment = true;
    const auto r = runServing(cfg);
    // The ME-heavy tenant harvests beyond its 2 own engines at least
    // once (Fig. 24's dynamic assignment behaviour).
    EXPECT_GT(r.tenants[1].assignedMes.peak(), 2.0);
    EXPECT_LE(r.tenants[1].assignedMes.peak(), 4.0 + 1e-9);
}

TEST(Serving, PriorityWeightsShiftService)
{
    // Double-priority tenant completes more work under V10's
    // priority-based fairness than at equal priority.
    auto base = pairConfig(ModelId::ResNet, 32, ModelId::ResNetRs, 32,
                           PolicyKind::V10, 6);
    const auto equal = runServing(base);
    base.tenants[0].priority = 4.0;
    const auto boosted = runServing(base);
    EXPECT_GT(boosted.tenants[0].throughput /
                  boosted.tenants[1].throughput,
              equal.tenants[0].throughput /
                  equal.tenants[1].throughput);
}

TEST(Serving, TimeCapStopsRunaways)
{
    setLogLevel(LogLevel::Silent);
    auto cfg = pairConfig(ModelId::MaskRcnn, 8, ModelId::ShapeMask, 8,
                          PolicyKind::Pmt, 1000000);
    cfg.maxCycles = 5e7;
    const auto r = runServing(cfg);
    // The cap is exclusive: no event at or past it runs, so the
    // measured window cannot overshoot (it used to, by up to one
    // arbitrarily late event).
    EXPECT_LE(r.makespan, cfg.maxCycles);
    setLogLevel(LogLevel::Warn);
}

TEST(Serving, TimeCapYieldsWellFormedPartialResult)
{
    // A capped run must report a fully formed partial TenantResult:
    // finite (non-NaN) percentiles and rates even for a tenant that
    // completed nothing inside the cap.
    setLogLevel(LogLevel::Silent);
    auto cfg = pairConfig(ModelId::MaskRcnn, 8, ModelId::ShapeMask, 8,
                          PolicyKind::Pmt, 1000000);
    cfg.maxCycles = 1e6; // far too short for either model
    const auto r = runServing(cfg);
    EXPECT_LE(r.makespan, cfg.maxCycles);
    EXPECT_TRUE(std::isfinite(r.meUsefulUtil));
    EXPECT_TRUE(std::isfinite(r.veUtil));
    for (const auto &t : r.tenants) {
        EXPECT_TRUE(std::isfinite(t.p50())) << t.model;
        EXPECT_TRUE(std::isfinite(t.p95())) << t.model;
        EXPECT_TRUE(std::isfinite(t.p99())) << t.model;
        EXPECT_TRUE(std::isfinite(t.throughput)) << t.model;
        EXPECT_TRUE(std::isfinite(t.blockedFrac)) << t.model;
        EXPECT_EQ(t.latencyCycles.count(), t.completed) << t.model;
    }
    setLogLevel(LogLevel::Warn);
}

TEST(Serving, CompileForMatchesPolicyIsa)
{
    const TenantSpec spec{ModelId::ResNet, 8, 2, 2, 1.0, 1};
    const NpuCoreConfig core;
    EXPECT_TRUE(compileFor(spec, PolicyKind::Neu10, core).neuIsa);
    EXPECT_TRUE(compileFor(spec, PolicyKind::Neu10NH, core).neuIsa);
    EXPECT_FALSE(compileFor(spec, PolicyKind::V10, core).neuIsa);
    EXPECT_FALSE(compileFor(spec, PolicyKind::Pmt, core).neuIsa);
}

TEST(Serving, EvaluationPairListMatchesPaper)
{
    const auto &pairs = evaluationPairs();
    ASSERT_EQ(pairs.size(), 9u);
    EXPECT_STREQ(pairs[0].label, "DLRM+SMask");
    EXPECT_STREQ(pairs[8].label, "RNRS+RtNt");
    int low = 0, medium = 0, high = 0;
    for (const auto &p : pairs) {
        if (std::string(p.contention) == "low")
            ++low;
        else if (std::string(p.contention) == "medium")
            ++medium;
        else
            ++high;
        // MRCNN and SMask run at batch 8, everything else 32 (§V-A).
        for (auto [m, b] : {std::pair{p.w1, p.batch1},
                            std::pair{p.w2, p.batch2}}) {
            if (m == ModelId::MaskRcnn || m == ModelId::ShapeMask)
                EXPECT_EQ(b, 8u);
            else
                EXPECT_EQ(b, 32u);
        }
    }
    EXPECT_EQ(low, 3);
    EXPECT_EQ(medium, 3);
    EXPECT_EQ(high, 3);
}

} // anonymous namespace
} // namespace neu10
