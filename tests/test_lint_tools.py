#!/usr/bin/env python3
"""CTest entry proving the correctness-tooling actually fires.

Runs tools/lint_determinism.py and tools/check_headers.py against the
fixture trees under tests/lint_fixtures/:

  violations/  every rule must flag its known line(s), and the broken
               header must fail the self-containment compile;
  clean/       idiomatic look-alikes (seeded Rng, sorted-after-
               iteration behind allow(), sentinel equality, name
               collisions like `Clock clock(...)`) must pass silently;

and finally against the real tree, mirroring the CI gate: zero
findings on src/.

Usage: python3 tests/test_lint_tools.py [repo-root]
Exit status: 0 when every expectation holds.
"""

import pathlib
import subprocess
import sys

FAILURES = []


def run(tool, *argv):
    cmd = [sys.executable, str(tool), *map(str, argv)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def expect(cond, what):
    print(("ok      " if cond else "FAILED  ") + what)
    if not cond:
        FAILURES.append(what)


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    root = root.resolve()
    tools = root / "tools"
    fixtures = root / "tests" / "lint_fixtures"
    lint = tools / "lint_determinism.py"
    headers = tools / "check_headers.py"

    # ---- determinism lint: every rule fires on the bad tree -------
    rc, out = run(lint, "--root", fixtures / "violations")
    expect(rc == 1, "violations tree exits nonzero")
    for expected in [
        # (file, rule, minimum number of findings)
        ("models/bad_rng.cc", "banned-random", 5),
        ("cluster/bad_unordered.cc", "unordered-iter", 2),
        # obs/ is a deterministic-export scope: the rule must fire
        # there on the path alone (the fixture names no *Result).
        ("obs/bad_trace_export.cc", "unordered-iter", 2),
        ("vnpu/bad_float_eq.cc", "float-eq", 2),
        # llm/ is both a deterministic-export scope (KV-page books
        # feed the byte-exact goldens) and an accounting scope: the
        # same fixture must trip unordered-iter on the path alone
        # and float-eq on the occupancy comparison.
        ("llm/bad_kv_accounting.cc", "unordered-iter", 2),
        ("llm/bad_kv_accounting.cc", "float-eq", 2),
        ("runtime/bad_naked_new.cc", "naked-new", 4),
        # the dead directive is flagged at its own line; the live
        # one right next to it must not be.
        ("runtime/stale_allow.cc", "stale-allow", 1),
    ]:
        path, rule, minimum = expected
        hits = [line for line in out.splitlines()
                if path in line and f" {rule}: " in line]
        expect(len(hits) >= minimum,
               f"{rule} fires >= {minimum}x on {path} "
               f"(got {len(hits)})")

    # stale-allow precision: exactly the dead allow(naked-new) at its
    # directive line — the still-consumed allow(banned-random) and
    # the analyzer-owned allow(impure-path) stay unflagged (and the
    # latter must not be rejected as an unknown rule either).
    stale = [l for l in out.splitlines() if " stale-allow: " in l]
    expect(len(stale) == 1 and
           stale[0].startswith("src/runtime/stale_allow.cc:22:"),
           "stale-allow flags only the dead directive, at its line")
    expect("allow(naked-new)" in stale[0],
           "stale-allow names the rotted rule")

    # ---- determinism lint: the clean tree passes ------------------
    rc, out = run(lint, "--root", fixtures / "clean")
    expect(rc == 0, "clean tree passes: " + out.strip().splitlines()[-1])

    # ---- determinism lint: unknown rule in allow() is an error ----
    rc, _ = run(lint, "--list-rules")
    expect(rc == 0, "--list-rules works")

    # ---- header self-containment: fixture proof both ways ---------
    rc, out = run(headers, "--root", fixtures / "violations")
    expect(rc == 1 and "bad_header.hh" in out,
           "broken header flagged as not self-contained")
    rc, _ = run(headers, "--root", fixtures / "clean")
    expect(rc == 0, "self-contained header passes")

    # ---- the real tree is clean (mirror of the CI gates) ----------
    rc, out = run(lint, "--root", root)
    expect(rc == 0, "repo src/ passes determinism lint: "
           + out.strip().splitlines()[-1])
    rc, out = run(headers, "--root", root)
    expect(rc == 0, "repo src/ headers self-contained: "
           + out.strip().splitlines()[-1])

    if FAILURES:
        print(f"\n{len(FAILURES)} expectation(s) failed")
        return 1
    print("\nall lint-tool expectations hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
