/**
 * @file
 * Virtualization-layer tests: segment pools and address translation
 * (page faults), IOMMU DMA/interrupt remapping (DMA faults), vNPU
 * manager placement policies (HW/SW isolation, EU/memory balancing,
 * oversubscription caps), hypervisor ownership enforcement, and the
 * guest driver command path end-to-end on a simulated core.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "common/logging.hh"
#include "models/zoo.hh"
#include "npu/core_sim.hh"
#include "runtime/executor.hh"
#include "runtime/serving.hh"
#include "sched/policy.hh"
#include "virt/driver.hh"
#include "virt/hypervisor.hh"
#include "virt/iommu.hh"
#include "virt/manager.hh"
#include "virt/memory.hh"

namespace neu10
{
namespace
{

// --------------------------------------------------------- memory

TEST(Segments, PoolAllocatesAndReleases)
{
    SegmentPool pool(10_MiB, 1_MiB);
    EXPECT_EQ(pool.totalSegments(), 10u);
    auto a = pool.allocate(3_MiB);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(pool.freeSegments(), 7u);
    pool.release(a);
    EXPECT_EQ(pool.freeSegments(), 10u);
}

TEST(Segments, PartialSegmentRoundsUp)
{
    SegmentPool pool(10_MiB, 1_MiB);
    EXPECT_EQ(pool.segmentsFor(1), 1u);
    EXPECT_EQ(pool.segmentsFor(1_MiB), 1u);
    EXPECT_EQ(pool.segmentsFor(1_MiB + 1), 2u);
    EXPECT_EQ(pool.segmentsFor(0), 0u);
}

TEST(Segments, ExhaustionFails)
{
    setLogLevel(LogLevel::Silent);
    SegmentPool pool(4_MiB, 1_MiB);
    pool.allocate(3_MiB);
    EXPECT_THROW(pool.allocate(2_MiB), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Segments, DoubleFreePanics)
{
    setLogLevel(LogLevel::Silent);
    SegmentPool pool(4_MiB, 1_MiB);
    auto a = pool.allocate(1_MiB);
    pool.release(a);
    EXPECT_THROW(pool.release(a), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(AddressSpace, TranslationIsBasePlusOffset)
{
    // Segments 5 and 2 of 1 MiB: vaddr 0 -> seg5 base, vaddr 1MiB+10
    // -> seg2 base + 10.
    AddressSpace as(1_MiB, {5, 2});
    EXPECT_EQ(as.size(), 2_MiB);
    EXPECT_EQ(as.translate(0), 5 * 1_MiB);
    EXPECT_EQ(as.translate(1_MiB + 10), 2 * 1_MiB + 10);
}

TEST(AddressSpace, OutOfRangeFaults)
{
    AddressSpace as(1_MiB, {0});
    EXPECT_THROW(as.translate(1_MiB), PageFaultError);
    EXPECT_THROW(as.translateRange(1_MiB - 10, 20), PageFaultError);
    EXPECT_NO_THROW(as.translateRange(1_MiB - 10, 10));
}

TEST(AddressSpace, EmptySpaceAlwaysFaults)
{
    AddressSpace as;
    EXPECT_THROW(as.translate(0), PageFaultError);
}

// ---------------------------------------------------------- iommu

TEST(IommuTest, MapTranslateUnmap)
{
    Iommu iommu;
    iommu.attach(1);
    iommu.map(1, 0x1000, 0x9000, 0x100);
    EXPECT_EQ(iommu.translate(1, 0x1000), 0x9000u);
    EXPECT_EQ(iommu.translate(1, 0x10ff), 0x90ffu);
    iommu.unmap(1, 0x1000);
    EXPECT_THROW(iommu.translate(1, 0x1000), DmaFaultError);
}

TEST(IommuTest, UnattachedDeviceFaults)
{
    Iommu iommu;
    EXPECT_THROW(iommu.translate(7, 0x0), DmaFaultError);
}

TEST(IommuTest, CrossWindowAccessFaults)
{
    Iommu iommu;
    iommu.attach(1);
    iommu.map(1, 0x1000, 0x9000, 0x100);
    EXPECT_THROW(iommu.translate(1, 0x10f0, 0x20), DmaFaultError);
}

TEST(IommuTest, OverlappingWindowsRejected)
{
    setLogLevel(LogLevel::Silent);
    Iommu iommu;
    iommu.attach(1);
    iommu.map(1, 0x1000, 0x9000, 0x100);
    EXPECT_THROW(iommu.map(1, 0x1080, 0xa000, 0x100), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(IommuTest, IsolationBetweenDevices)
{
    Iommu iommu;
    iommu.attach(1);
    iommu.attach(2);
    iommu.map(1, 0x1000, 0x9000, 0x100);
    // Device 2 cannot reach device 1's window.
    EXPECT_THROW(iommu.translate(2, 0x1000), DmaFaultError);
}

TEST(IommuTest, InterruptRemapping)
{
    Iommu iommu;
    iommu.attach(1);
    int fired = 0;
    iommu.bindInterrupt(1, 3, [&](std::uint32_t v) {
        EXPECT_EQ(v, 3u);
        ++fired;
    });
    iommu.raiseInterrupt(1, 3);
    iommu.raiseInterrupt(1, 4); // unbound vector drops
    iommu.raiseInterrupt(9, 3); // unknown device drops
    EXPECT_EQ(fired, 1);
}

TEST(IommuTest, DetachClearsState)
{
    Iommu iommu;
    iommu.attach(1);
    iommu.map(1, 0, 0, 0x100);
    iommu.detach(1);
    EXPECT_FALSE(iommu.attached(1));
    EXPECT_THROW(iommu.translate(1, 0), DmaFaultError);
}

// -------------------------------------------------------- manager

VnpuConfig
smallVnpu(unsigned mes = 2, unsigned ves = 2, Bytes hbm = 8_GiB)
{
    VnpuConfig cfg;
    cfg.numMesPerCore = mes;
    cfg.numVesPerCore = ves;
    cfg.sramSizePerCore = 32_MiB;
    cfg.memSizePerCore = hbm;
    return cfg;
}

TEST(Manager, HardwareIsolatedPlacementRespectsEngines)
{
    NpuBoardConfig board; // 2 chips x 2 cores, 4ME/4VE each
    VnpuManager mgr(board);
    // Two 2ME+2VE vNPUs fit one core; a fifth 4ME one must go
    // elsewhere until engines run out.
    std::vector<VnpuId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(mgr.create(1, smallVnpu()));
    EXPECT_EQ(mgr.liveCount(), 8u);
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(mgr.create(1, smallVnpu()), FatalError);
    setLogLevel(LogLevel::Warn);
    for (auto id : ids)
        mgr.destroy(id);
    EXPECT_EQ(mgr.liveCount(), 0u);
}

TEST(Manager, DestroyFreesResourcesForReuse)
{
    NpuBoardConfig board;
    board.numChips = 1;
    board.coresPerChip = 1;
    VnpuManager mgr(board);
    const VnpuId a = mgr.create(1, smallVnpu(4, 4, 32_GiB));
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(mgr.create(1, smallVnpu(1, 1)), FatalError);
    setLogLevel(LogLevel::Warn);
    mgr.destroy(a);
    EXPECT_NO_THROW(mgr.create(1, smallVnpu(4, 4, 32_GiB)));
}

TEST(Manager, MemoryBoundPlacement)
{
    NpuBoardConfig board;
    board.numChips = 1;
    board.coresPerChip = 2;
    VnpuManager mgr(board);
    // 48 GiB on a 64 GiB core: two such vNPUs cannot share a core
    // even though engines would fit.
    const VnpuId a = mgr.create(1, smallVnpu(1, 1, 48_GiB));
    const VnpuId b = mgr.create(2, smallVnpu(1, 1, 48_GiB));
    EXPECT_NE(mgr.get(a).core, mgr.get(b).core);
}

TEST(Manager, EuMemoryBalancePairsOppositeProfiles)
{
    // §III-C: an EU-hungry/memory-light vNPU prefers the core already
    // loaded with a memory-hungry/EU-light one.
    NpuBoardConfig board;
    board.numChips = 1;
    board.coresPerChip = 2;
    VnpuManager mgr(board);
    const VnpuId mem_hog = mgr.create(1, smallVnpu(1, 1, 56_GiB));
    const VnpuId eu_hog = mgr.create(2, smallVnpu(3, 3, 2_GiB));
    EXPECT_EQ(mgr.get(mem_hog).core, mgr.get(eu_hog).core);
}

TEST(Manager, SoftwareIsolationAllowsOversubscription)
{
    NpuBoardConfig board;
    board.numChips = 1;
    board.coresPerChip = 1;
    VnpuManager mgr(board);
    // 3 x (4ME+4VE) on a 4ME/4VE core: legal software-isolated.
    for (int i = 0; i < 3; ++i)
        EXPECT_NO_THROW(mgr.create(1, smallVnpu(4, 4, 4_GiB),
                                   IsolationMode::Software));
    // The oversubscription cap (4x) still binds.
    mgr.create(1, smallVnpu(4, 4, 4_GiB), IsolationMode::Software);
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(mgr.create(1, smallVnpu(4, 4, 4_GiB),
                            IsolationMode::Software),
                 FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Manager, ReconfigureGrowsAndShrinks)
{
    NpuBoardConfig board;
    board.numChips = 1;
    board.coresPerChip = 1;
    VnpuManager mgr(board);
    const VnpuId id = mgr.create(1, smallVnpu(2, 2, 8_GiB));
    mgr.reconfigure(id, smallVnpu(4, 4, 16_GiB));
    EXPECT_EQ(mgr.get(id).config.numMesPerCore, 4u);
    mgr.reconfigure(id, smallVnpu(1, 1, 2_GiB));
    EXPECT_EQ(mgr.get(id).config.memSizePerCore, 2_GiB);
    // Freed engines are available again.
    EXPECT_NO_THROW(mgr.create(2, smallVnpu(3, 3, 8_GiB)));
}

TEST(Manager, SegmentsAssignedOnMapping)
{
    NpuBoardConfig board;
    VnpuManager mgr(board);
    const VnpuId id = mgr.create(1, smallVnpu(2, 2, 3_GiB));
    const Vnpu &v = mgr.get(id);
    EXPECT_EQ(v.state, VnpuState::Mapped);
    EXPECT_EQ(v.hbmSegments.size(), 3u);  // 3 x 1 GiB
    EXPECT_EQ(v.sramSegments.size(), 16u); // 32 MiB / 2 MiB
}

// ----------------------------------------------------- hypervisor

TEST(HypervisorTest, OwnershipEnforced)
{
    setLogLevel(LogLevel::Silent);
    Hypervisor hv(NpuBoardConfig{});
    const VnpuId id = hv.hcCreateVnpu(1, smallVnpu());
    EXPECT_THROW(hv.hcDestroyVnpu(2, id), FatalError);
    EXPECT_THROW(hv.hcConfigureVnpu(2, id, smallVnpu(1, 1)),
                 FatalError);
    EXPECT_NO_THROW(hv.hcDestroyVnpu(1, id));
    setLogLevel(LogLevel::Warn);
}

TEST(HypervisorTest, MmioWindowsAreDisjoint)
{
    Hypervisor hv(NpuBoardConfig{});
    const VnpuId a = hv.hcCreateVnpu(1, smallVnpu());
    const VnpuId b = hv.hcCreateVnpu(2, smallVnpu());
    const MmioRegion ra = hv.mmioRegion(a);
    const MmioRegion rb = hv.mmioRegion(b);
    EXPECT_TRUE(ra.base + ra.size <= rb.base ||
                rb.base + rb.size <= ra.base);
}

TEST(HypervisorTest, ConcurrentMmioWindowsNeverOverlap)
{
    // Carve windows for as many concurrently live vNPUs as the board
    // admits and check pairwise disjointness, including across an
    // interleaved destroy/create that recycles windows.
    Hypervisor hv(NpuBoardConfig{});
    std::vector<VnpuId> live;
    for (TenantId t = 1; t <= 8; ++t)
        live.push_back(hv.hcCreateVnpu(t, smallVnpu(1, 1, 2_GiB)));
    hv.hcDestroyVnpu(3, live[2]);
    live[2] = hv.hcCreateVnpu(3, smallVnpu(1, 1, 2_GiB));

    for (size_t i = 0; i < live.size(); ++i) {
        for (size_t j = i + 1; j < live.size(); ++j) {
            const MmioRegion a = hv.mmioRegion(live[i]);
            const MmioRegion b = hv.mmioRegion(live[j]);
            EXPECT_TRUE(a.base + a.size <= b.base ||
                        b.base + b.size <= a.base)
                << "windows " << i << " and " << j << " overlap";
        }
    }
}

TEST(HypervisorTest, MmioWindowReclaimedAndReused)
{
    Hypervisor hv(NpuBoardConfig{});
    const VnpuId a = hv.hcCreateVnpu(1, smallVnpu());
    const MmioRegion ra = hv.mmioRegion(a);
    hv.hcDestroyVnpu(1, a);
    // The destroyed vNPU's window is gone...
    EXPECT_THROW(hv.mmioRegion(a), FatalError);
    // ...and the next create gets the recycled aperture.
    const VnpuId b = hv.hcCreateVnpu(2, smallVnpu());
    EXPECT_EQ(hv.mmioRegion(b).base, ra.base);
    EXPECT_EQ(hv.mmioRegion(b).size, ra.size);
}

TEST(HypervisorTest, MmioApertureBoundedUnderChurn)
{
    // A long create/destroy churn must not leak BAR space: with at
    // most one live vNPU, every generation reuses one window.
    Hypervisor hv(NpuBoardConfig{});
    std::uint64_t first_base = 0;
    for (int gen = 0; gen < 100; ++gen) {
        const VnpuId id = hv.hcCreateVnpu(7, smallVnpu());
        const MmioRegion r = hv.mmioRegion(id);
        if (gen == 0)
            first_base = r.base;
        else
            EXPECT_EQ(r.base, first_base) << "generation " << gen;
        hv.hcDestroyVnpu(7, id);
    }
}

TEST(HypervisorTest, RevokeCoreTearsDownEveryResidentOnce)
{
    // The failover path: a board fault kills core 1, the host
    // revokes all of its vNPUs in bulk — regardless of owner, with
    // every MMIO window recycled exactly once.
    Hypervisor hv(NpuBoardConfig{});
    std::vector<VnpuId> on_core1;
    for (TenantId t = 1; t <= 3; ++t)
        on_core1.push_back(hv.hcCreateVnpu(
            t, smallVnpu(1, 1, 2_GiB), IsolationMode::Hardware, 1));
    const VnpuId elsewhere = hv.hcCreateVnpu(
        9, smallVnpu(1, 1, 2_GiB), IsolationMode::Hardware, 0);

    const auto revoked = hv.hcRevokeCore(1);
    ASSERT_EQ(revoked.size(), 3u);
    for (size_t k = 0; k < revoked.size(); ++k) {
        EXPECT_EQ(revoked[k].id, on_core1[k]);
        EXPECT_EQ(revoked[k].tenant, static_cast<TenantId>(k + 1));
        EXPECT_FALSE(hv.iommu().attached(on_core1[k]));
    }
    // Only the bystander on core 0 survives.
    EXPECT_EQ(hv.manager().liveCount(), 1u);
    EXPECT_TRUE(hv.iommu().attached(elsewhere));

    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(hv.mmioRegion(on_core1[0]), FatalError);
    // A destroy of an already-revoked vNPU fails loudly instead of
    // recycling its window a second time.
    EXPECT_THROW(hv.hcDestroyVnpu(1, on_core1[0]), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(HypervisorTest, RevokeCoreIsIdempotent)
{
    Hypervisor hv(NpuBoardConfig{});
    hv.hcCreateVnpu(1, smallVnpu(), IsolationMode::Hardware, 2);
    EXPECT_EQ(hv.hcRevokeCore(2).size(), 1u);
    // The second revocation finds nothing: no double teardown, no
    // double window recycling.
    EXPECT_TRUE(hv.hcRevokeCore(2).empty());
    EXPECT_EQ(hv.manager().liveCount(), 0u);
}

TEST(HypervisorTest, BulkRevokeNeverDoubleRecyclesWindows)
{
    // Regression for the failover teardown path: after a bulk
    // revocation, re-creating the same population must reuse each
    // recycled window exactly once — pairwise-disjoint BARs and a
    // bounded aperture prove no window sat on the free list twice.
    Hypervisor hv(NpuBoardConfig{});
    std::vector<MmioRegion> before;
    std::vector<VnpuId> ids;
    for (TenantId t = 1; t <= 4; ++t)
        ids.push_back(hv.hcCreateVnpu(
            t, smallVnpu(1, 1, 2_GiB), IsolationMode::Hardware, 3));
    for (VnpuId id : ids)
        before.push_back(hv.mmioRegion(id));

    for (int round = 0; round < 5; ++round) {
        ASSERT_EQ(hv.hcRevokeCore(3).size(), 4u);
        ids.clear();
        for (TenantId t = 1; t <= 4; ++t)
            ids.push_back(
                hv.hcCreateVnpu(t, smallVnpu(1, 1, 2_GiB),
                                IsolationMode::Hardware, 3));
        std::uint64_t max_base = 0;
        for (size_t i = 0; i < ids.size(); ++i) {
            const MmioRegion a = hv.mmioRegion(ids[i]);
            max_base = std::max(max_base, a.base);
            for (size_t j = i + 1; j < ids.size(); ++j) {
                const MmioRegion b = hv.mmioRegion(ids[j]);
                EXPECT_TRUE(a.base + a.size <= b.base ||
                            b.base + b.size <= a.base)
                    << "round " << round << ": windows " << i
                    << " and " << j << " overlap";
            }
        }
        // Aperture bounded: every window comes from the original
        // four, never freshly carved.
        std::uint64_t max_before = 0;
        for (const MmioRegion &r : before)
            max_before = std::max(max_before, r.base);
        EXPECT_LE(max_base, max_before) << "round " << round;
    }
}

TEST(HypervisorTest, CreateAttachesIommu)
{
    Hypervisor hv(NpuBoardConfig{});
    const VnpuId id = hv.hcCreateVnpu(1, smallVnpu());
    EXPECT_TRUE(hv.iommu().attached(id));
    hv.hcDestroyVnpu(1, id);
    EXPECT_FALSE(hv.iommu().attached(id));
}

// ----------------------------------------------- driver end-to-end

TEST(Driver, Fig11FlowRunsInference)
{
    Hypervisor hv(NpuBoardConfig{});
    EventQueue queue;

    // Physical core hosting two slots; the driver's vNPU is slot 0.
    std::vector<VnpuSlot> slots(2);
    slots[0].nMes = 2;
    slots[0].nVes = 2;
    slots[1].nMes = 2;
    slots[1].nVes = 2;
    NpuCoreSim core(queue, NpuCoreConfig{},
                    makePolicy(PolicyKind::Neu10), slots);
    SimCommandExecutor executor(queue, core);

    VnpuDriver driver(hv, /*tenant=*/1, smallVnpu());
    driver.bindExecutor(&executor);
    executor.bindSlot(driver.id(), 0);
    driver.registerDmaBuffer(0x1000, 4_MiB);

    const NpuCoreConfig cc;
    const CompiledModel prog = lowerToNeuIsa(
        buildModel(ModelId::Mnist, 8), cc.numMes, cc.numVes,
        cc.machine());

    // Fig. 11: copy input, launch, copy result; poll for completion.
    const auto h2d = driver.memcpyToDevice(0x1000, 1_MiB);
    const auto launch = driver.launch(&prog);
    queue.runUntil();
    EXPECT_TRUE(driver.poll(h2d));
    EXPECT_TRUE(driver.poll(launch));
    const auto d2h = driver.memcpyToHost(0x1000, 1_MiB);
    queue.runUntil();
    EXPECT_TRUE(driver.poll(d2h));
    EXPECT_EQ(driver.inFlight(), 0u);
}

TEST(Driver, CompletionInterruptDelivered)
{
    Hypervisor hv(NpuBoardConfig{});
    EventQueue queue;
    std::vector<VnpuSlot> slots(1);
    slots[0].nMes = 2;
    slots[0].nVes = 2;
    NpuCoreSim core(queue, NpuCoreConfig{},
                    makePolicy(PolicyKind::Neu10), slots);
    SimCommandExecutor executor(queue, core);

    VnpuDriver driver(hv, 1, smallVnpu());
    driver.bindExecutor(&executor);
    executor.bindSlot(driver.id(), 0);
    driver.registerDmaBuffer(0, 1_MiB);

    std::vector<std::uint64_t> interrupts;
    driver.setInterruptHandler([&](std::uint64_t cid) {
        interrupts.push_back(cid);
    });
    const auto cmd = driver.memcpyToDevice(0, 64_KiB);
    queue.runUntil();
    ASSERT_EQ(interrupts.size(), 1u);
    EXPECT_EQ(interrupts[0], cmd);
}

TEST(Driver, UnregisteredDmaFaults)
{
    Hypervisor hv(NpuBoardConfig{});
    EventQueue queue;
    std::vector<VnpuSlot> slots(1);
    slots[0].nMes = 1;
    slots[0].nVes = 1;
    NpuCoreSim core(queue, NpuCoreConfig{},
                    makePolicy(PolicyKind::Neu10), slots);
    SimCommandExecutor executor(queue, core);
    VnpuDriver driver(hv, 1, smallVnpu());
    driver.bindExecutor(&executor);
    executor.bindSlot(driver.id(), 0);
    // No registerDmaBuffer: the device-side fetch faults.
    EXPECT_THROW(driver.memcpyToDevice(0x5000, 1_KiB), DmaFaultError);
}

TEST(Driver, QueryConfigReflectsHierarchy)
{
    Hypervisor hv(NpuBoardConfig{});
    VnpuDriver driver(hv, 1, smallVnpu(2, 2, 8_GiB));
    const VnpuConfig &cfg = driver.queryConfig();
    EXPECT_EQ(cfg.numMesPerCore, 2u);
    EXPECT_EQ(cfg.memSizePerCore, 8_GiB);
}

// ------------------------------------------------- pinned creation

TEST(Manager, PinnedCreateUsesRequestedCore)
{
    NpuBoardConfig board; // 4 cores
    VnpuManager mgr(board);
    // The manager's own policy would balance these; pinning
    // overrides it.
    const VnpuId a = mgr.create(1, smallVnpu(), IsolationMode::Hardware,
                                /*pinned_core=*/3);
    const VnpuId b = mgr.create(1, smallVnpu(), IsolationMode::Hardware,
                                /*pinned_core=*/3);
    EXPECT_EQ(mgr.get(a).core, 3u);
    EXPECT_EQ(mgr.get(b).core, 3u);
    EXPECT_EQ(mgr.residentsOf(3).size(), 2u);
}

TEST(Manager, PinnedCreateRejectsOverCommit)
{
    NpuBoardConfig board;
    VnpuManager mgr(board);
    mgr.create(1, smallVnpu(), IsolationMode::Hardware, 0);
    mgr.create(1, smallVnpu(), IsolationMode::Hardware, 0);
    setLogLevel(LogLevel::Silent);
    // Core 0's engines are full; pinning there must fail even though
    // three other cores are empty.
    EXPECT_THROW(
        mgr.create(1, smallVnpu(), IsolationMode::Hardware, 0),
        FatalError);
    // A core the board does not have fails too.
    EXPECT_THROW(
        mgr.create(1, smallVnpu(), IsolationMode::Hardware, 99),
        FatalError);
    setLogLevel(LogLevel::Warn);
    EXPECT_NO_THROW(
        mgr.create(1, smallVnpu(), IsolationMode::Hardware, 1));
}

TEST(HypervisorTest, PinnedCreateRecyclesMmioAcrossCores)
{
    // The elastic fleet's migration pattern: destroy on one core,
    // re-create pinned on another. The MMIO window must be recycled,
    // not leaked from a growing aperture.
    NpuBoardConfig board;
    Hypervisor hv(board);
    const VnpuId a =
        hv.hcCreateVnpu(7, smallVnpu(), IsolationMode::Hardware, 0);
    const MmioRegion first = hv.mmioRegion(a);
    hv.hcDestroyVnpu(7, a);
    const VnpuId b =
        hv.hcCreateVnpu(7, smallVnpu(), IsolationMode::Hardware, 2);
    EXPECT_EQ(hv.mmioRegion(b).base, first.base);
    EXPECT_EQ(hv.manager().get(b).core, 2u);
}

} // anonymous namespace
} // namespace neu10
