/**
 * @file
 * Unit tests for src/stats: distributions and exact percentiles,
 * piecewise-constant time series, utilization integrators.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "stats/distribution.hh"
#include "stats/timeseries.hh"
#include "stats/utilization.hh"

namespace neu10
{
namespace
{

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.percentile(0.95), 0.0);
    EXPECT_EQ(d.stddev(), 0.0);
}

TEST(Distribution, BasicMoments)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_DOUBLE_EQ(d.sum(), 10.0);
}

TEST(Distribution, PercentilesInterpolate)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
    // p50 over 1..100 with linear interpolation: 50.5.
    EXPECT_NEAR(d.percentile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(d.percentile(0.95), 95.05, 1e-9);
}

TEST(Distribution, PercentileSingleSample)
{
    Distribution d;
    d.add(7.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.99), 7.0);
}

TEST(Distribution, PercentileRejectsBadQuantile)
{
    setLogLevel(LogLevel::Silent);
    Distribution d;
    d.add(1.0);
    EXPECT_THROW(d.percentile(-0.1), PanicError);
    EXPECT_THROW(d.percentile(1.1), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(Distribution, AddAfterQueryResorts)
{
    Distribution d;
    d.add(10.0);
    EXPECT_DOUBLE_EQ(d.max(), 10.0);
    d.add(20.0);
    EXPECT_DOUBLE_EQ(d.max(), 20.0);
    d.add(5.0);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
}

TEST(Distribution, StddevKnownValue)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.add(v);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-12);
}

TEST(Distribution, ResetClearsEverything)
{
    Distribution d;
    d.add(1.0);
    d.reset();
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.sum(), 0.0);
}

TEST(Distribution, MergeAbsorbsOtherSamples)
{
    Distribution a, b;
    for (double v : {1.0, 3.0})
        a.add(v);
    for (double v : {2.0, 4.0, 6.0})
        b.add(v);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_DOUBLE_EQ(a.sum(), 16.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), 3.0);
    // The source is untouched; merging an empty set is a no-op.
    EXPECT_EQ(b.count(), 3u);
    a.merge(Distribution{});
    EXPECT_EQ(a.count(), 5u);
}

TEST(Distribution, MergeEmptyIntoEmpty)
{
    Distribution a, b;
    a.merge(b);
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.sum(), 0.0);
    EXPECT_EQ(a.percentile(0.99), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Distribution, MergeSingleSampleEdges)
{
    // empty <- single: the merged set IS the single sample.
    Distribution single;
    single.add(7.0);
    Distribution into;
    into.merge(single);
    EXPECT_EQ(into.count(), 1u);
    EXPECT_DOUBLE_EQ(into.mean(), 7.0);
    EXPECT_DOUBLE_EQ(into.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(into.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(into.percentile(1.0), 7.0);
    EXPECT_DOUBLE_EQ(into.stddev(), 0.0);

    // single <- empty leaves it alone.
    into.merge(Distribution{});
    EXPECT_EQ(into.count(), 1u);

    // single <- single interpolates percentiles over both.
    Distribution other;
    other.add(9.0);
    into.merge(other);
    EXPECT_EQ(into.count(), 2u);
    EXPECT_DOUBLE_EQ(into.min(), 7.0);
    EXPECT_DOUBLE_EQ(into.max(), 9.0);
    EXPECT_DOUBLE_EQ(into.percentile(0.5), 8.0);
}

TEST(Distribution, MergeSelfDoublesSamples)
{
    // d.merge(d) used to append a range aliasing the reallocating
    // destination (undefined behavior / out-of-range reads). It must
    // simply double every sample.
    Distribution d;
    for (double v : {1.0, 2.0, 3.0})
        d.add(v);
    d.merge(d);
    EXPECT_EQ(d.count(), 6u);
    EXPECT_DOUBLE_EQ(d.sum(), 12.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 2.0);
}

TEST(Distribution, MergeEmptyRhsKeepsEverything)
{
    // Merging an empty distribution is a complete no-op: count, sum
    // and every order statistic are untouched (fleet aggregation
    // merges hundreds of empty per-epoch distributions).
    Distribution d;
    for (double v : {4.0, 1.0, 9.0})
        d.add(v);
    const double p50_before = d.percentile(0.5);
    Distribution empty;
    d.merge(empty);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.sum(), 14.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), p50_before);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(Distribution, MergeInvalidatesSortedCache)
{
    // Query first (populating the lazy sorted cache), then merge:
    // order statistics must reflect the merged samples.
    Distribution a;
    a.add(5.0);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), 5.0);
    Distribution b;
    b.add(1.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), 3.0);
}

TEST(TimeSeries, AverageOfPiecewiseConstant)
{
    TimeSeries ts;
    ts.record(0.0, 2.0);   // 2 on [0, 10)
    ts.record(10.0, 4.0);  // 4 on [10, 20)
    EXPECT_DOUBLE_EQ(ts.average(0.0, 20.0), 3.0);
    EXPECT_DOUBLE_EQ(ts.average(0.0, 10.0), 2.0);
    EXPECT_DOUBLE_EQ(ts.average(5.0, 15.0), 3.0);
}

TEST(TimeSeries, ValueBeforeFirstPointIsZero)
{
    TimeSeries ts;
    ts.record(10.0, 6.0);
    EXPECT_DOUBLE_EQ(ts.average(0.0, 20.0), 3.0);
}

TEST(TimeSeries, LastValueExtendsToQueryEnd)
{
    TimeSeries ts;
    ts.record(0.0, 5.0);
    EXPECT_DOUBLE_EQ(ts.average(0.0, 100.0), 5.0);
}

TEST(TimeSeries, DuplicateValueCollapsed)
{
    TimeSeries ts;
    ts.record(0.0, 1.0);
    ts.record(5.0, 1.0);
    ts.record(10.0, 2.0);
    EXPECT_EQ(ts.size(), 2u);
}

TEST(TimeSeries, OutOfOrderRecordPanics)
{
    setLogLevel(LogLevel::Silent);
    TimeSeries ts;
    ts.record(10.0, 1.0);
    EXPECT_THROW(ts.record(5.0, 2.0), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(TimeSeries, RebinAverages)
{
    TimeSeries ts;
    ts.record(0.0, 0.0);
    ts.record(10.0, 10.0);
    auto bins = ts.rebin(0.0, 20.0, 2);
    ASSERT_EQ(bins.size(), 2u);
    EXPECT_DOUBLE_EQ(bins[0], 0.0);
    EXPECT_DOUBLE_EQ(bins[1], 10.0);
}

TEST(TimeSeries, PeakTracksMax)
{
    TimeSeries ts;
    ts.record(0.0, 1.0);
    ts.record(1.0, 9.0);
    ts.record(2.0, 3.0);
    EXPECT_DOUBLE_EQ(ts.peak(), 9.0);
}

TEST(Utilization, FullBusyIsOne)
{
    UtilizationTracker u(4.0);
    u.setBusy(0.0, 4.0);
    u.setBusy(100.0, 0.0);
    EXPECT_DOUBLE_EQ(u.utilization(0.0, 100.0), 1.0);
}

TEST(Utilization, HalfBusyIsHalf)
{
    UtilizationTracker u(4.0);
    u.setBusy(0.0, 2.0);
    u.setBusy(50.0, 2.0);
    EXPECT_DOUBLE_EQ(u.utilization(0.0, 100.0), 0.5);
}

TEST(Utilization, WindowedQuery)
{
    UtilizationTracker u(2.0);
    u.setBusy(0.0, 0.0);
    u.setBusy(10.0, 2.0);
    u.setBusy(20.0, 0.0);
    EXPECT_DOUBLE_EQ(u.utilization(0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(u.utilization(10.0, 20.0), 1.0);
    EXPECT_DOUBLE_EQ(u.utilization(0.0, 40.0), 0.25);
}

TEST(Utilization, BusyIntegralExtendsOpenInterval)
{
    UtilizationTracker u(1.0);
    u.setBusy(0.0, 1.0);
    EXPECT_DOUBLE_EQ(u.busyIntegral(10.0), 10.0);
}

TEST(Utilization, CapacityMustBePositive)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(UtilizationTracker(-1.0), PanicError);
    EXPECT_THROW(UtilizationTracker(0.0), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(Utilization, OutOfOrderUpdatePanics)
{
    setLogLevel(LogLevel::Silent);
    UtilizationTracker u(1.0);
    u.setBusy(10.0, 1.0);
    EXPECT_THROW(u.setBusy(5.0, 0.0), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(Utilization, ResetRestartsIntegration)
{
    UtilizationTracker u(1.0);
    u.setBusy(0.0, 1.0);
    u.setBusy(10.0, 0.0);
    u.reset();
    EXPECT_DOUBLE_EQ(u.utilization(0.0, 10.0), 0.0);
}

} // anonymous namespace
} // namespace neu10
