/**
 * @file
 * Cross-module edge cases and failure injection: degenerate cores,
 * single-engine vNPUs, zero-work operators, oversubscribed temporal
 * scheduling, preemption storms, memory exhaustion mid-lifecycle, and
 * codec robustness against corrupted images.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "compiler/lower.hh"
#include "isa/encoding.hh"
#include "models/zoo.hh"
#include "npu/core_sim.hh"
#include "runtime/serving.hh"
#include "sched/neu10_policy.hh"
#include "sched/policy.hh"
#include "virt/manager.hh"

namespace neu10
{
namespace
{

CompiledModel
tinyMe(unsigned tiles, Cycles me, unsigned nx = 4)
{
    CompiledModel m;
    m.model = "edge";
    m.batch = 1;
    m.nx = nx;
    m.ny = 4;
    m.neuIsa = true;
    CompiledOp op;
    op.name = "op";
    op.kind = OpKind::MatMul;
    WorkGroup g;
    for (unsigned t = 0; t < tiles; ++t) {
        WorkUnit u;
        u.kind = UTopKind::Me;
        u.meTime = me;
        g.units.push_back(u);
    }
    op.groups.push_back(g);
    m.ops.push_back(op);
    m.validate();
    return m;
}

TEST(EdgeCase, SingleEngineCoreStillServesTwoTenants)
{
    NpuCoreConfig cfg;
    cfg.numMes = 1;
    cfg.numVes = 1;
    EventQueue queue;
    std::vector<VnpuSlot> slots(2);
    for (auto &s : slots) {
        s.nMes = 1; // oversubscribed on a 1-ME core
        s.nVes = 1;
    }
    // Spatial budgets sum to 2 > 1 physical: Neu10's temporal mode.
    auto policy = std::make_unique<Neu10Policy>(true, /*temporal=*/true);
    NpuCoreSim core(queue, cfg, std::move(policy), slots);

    const CompiledModel m = tinyMe(1, 10000.0, 1);
    int done = 0;
    for (int i = 0; i < 4; ++i) {
        core.submit(i % 2, &m,
                    [&](const RequestResult &) { ++done; });
    }
    queue.runUntil();
    EXPECT_EQ(done, 4);
}

TEST(EdgeCase, TemporalModeBalancesOversubscribedTenants)
{
    NpuCoreConfig cfg;
    EventQueue queue;
    std::vector<VnpuSlot> slots(3);
    for (auto &s : slots) {
        s.nMes = 4; // 3 x 4 committed on 4 physical
        s.nVes = 2;
    }
    auto policy = std::make_unique<Neu10Policy>(true, true);
    NpuCoreSim core(queue, cfg, std::move(policy), slots);

    const CompiledModel m = tinyMe(4, 20000.0);
    std::vector<int> done(3, 0);
    std::function<void(std::uint32_t)> pump = [&](std::uint32_t s) {
        core.submit(s, &m, [&, s](const RequestResult &) {
            ++done[s];
            pump(s);
        });
    };
    for (std::uint32_t s = 0; s < 3; ++s)
        pump(s);
    queue.runUntil(5e7);
    for (int i = 0; i < 3; ++i) {
        core.drainSlot(i);
        EXPECT_GT(done[i], 0) << i;
    }
    // Equal priorities: within 40% of each other.
    const double max_d = std::max({done[0], done[1], done[2]});
    const double min_d = std::min({done[0], done[1], done[2]});
    EXPECT_LT(max_d / min_d, 1.4);
}

TEST(EdgeCase, PreemptionStormStillConvergesAndConserves)
{
    // Two tenants with many tiny uTOps force constant reclaim; both
    // finish and the utilization integrals stay within capacity.
    NpuCoreConfig cfg;
    EventQueue queue;
    std::vector<VnpuSlot> slots(2);
    for (auto &s : slots) {
        s.nMes = 2;
        s.nVes = 2;
    }
    NpuCoreSim core(queue, cfg, makePolicy(PolicyKind::Neu10), slots);

    CompiledModel m;
    m.model = "storm";
    m.batch = 1;
    m.nx = 4;
    m.ny = 4;
    m.neuIsa = true;
    CompiledOp op;
    op.name = "bursts";
    op.kind = OpKind::MatMul;
    for (int g = 0; g < 50; ++g) {
        WorkGroup grp;
        for (int t = 0; t < 4; ++t) {
            WorkUnit u;
            u.kind = UTopKind::Me;
            u.meTime = 500.0;
            grp.units.push_back(u);
        }
        op.groups.push_back(grp);
    }
    m.ops.push_back(op);
    m.validate();

    int done = 0;
    core.submit(0, &m, [&](const RequestResult &) { ++done; });
    core.submit(1, &m, [&](const RequestResult &) { ++done; });
    queue.runUntil();
    EXPECT_EQ(done, 2);
    const Cycles end = queue.now();
    EXPECT_LE(core.meHeld().utilization(0.0, end), 1.0 + 1e-9);
    EXPECT_LE(core.meUseful().utilization(0.0, end), 1.0 + 1e-9);
}

TEST(EdgeCase, ZeroVeWorkModelRuns)
{
    const CompiledModel m = tinyMe(4, 1000.0);
    EventQueue queue;
    std::vector<VnpuSlot> slots(1);
    slots[0].nMes = 4;
    slots[0].nVes = 4;
    NpuCoreSim core(queue, NpuCoreConfig{},
                    makePolicy(PolicyKind::Neu10), slots);
    Cycles latency = -1;
    core.submit(0, &m,
                [&](const RequestResult &r) { latency = r.latency(); });
    queue.runUntil();
    EXPECT_NEAR(latency, 1000.0, 1.0);
}

TEST(EdgeCase, ManagerSurvivesChurn)
{
    // Randomized create/destroy churn never corrupts accounting.
    NpuBoardConfig board;
    VnpuManager mgr(board);
    Rng rng(2024);
    std::vector<VnpuId> live;
    setLogLevel(LogLevel::Silent);
    for (int step = 0; step < 400; ++step) {
        if (live.empty() || rng.uniform() < 0.6) {
            VnpuConfig cfg;
            cfg.numMesPerCore = 1 + rng.below(2);
            cfg.numVesPerCore = 1 + rng.below(2);
            cfg.sramSizePerCore = (1 + rng.below(8)) * 2_MiB;
            cfg.memSizePerCore = (1 + rng.below(8)) * 1_GiB;
            try {
                live.push_back(mgr.create(1, cfg));
            } catch (const FatalError &) {
                // Full board: acceptable, try destroying instead.
            }
        } else {
            const size_t pick = rng.below(live.size());
            mgr.destroy(live[pick]);
            live.erase(live.begin() + static_cast<long>(pick));
        }
    }
    setLogLevel(LogLevel::Warn);
    for (auto id : live)
        mgr.destroy(id);
    EXPECT_EQ(mgr.liveCount(), 0u);
    for (const auto &core : mgr.cores()) {
        EXPECT_EQ(core.dedicatedMes, 0u);
        EXPECT_EQ(core.dedicatedVes, 0u);
        EXPECT_EQ(core.hbm->freeSegments(), core.hbm->totalSegments());
        EXPECT_EQ(core.sram->freeSegments(),
                  core.sram->totalSegments());
    }
}

TEST(EdgeCase, CodecSurvivesRandomCorruption)
{
    // Any single-byte corruption either decodes to a valid program or
    // throws FatalError — never crashes or loops.
    setLogLevel(LogLevel::Silent);
    const DnnGraph g = buildModel(ModelId::Mnist, 1);
    const auto image = encode(emitNeuIsaProgram(g, 2, 2));
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        auto copy = image;
        copy[rng.below(copy.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
        try {
            const NeuIsaProgram p = decode(copy);
            p.validate();
        } catch (const FatalError &) {
            // expected for most corruptions
        }
    }
    setLogLevel(LogLevel::Warn);
    SUCCEED();
}

TEST(EdgeCase, SoloTenantUsesWholeCoreUnderEveryPolicy)
{
    // A single tenant should achieve identical solo latency under
    // Neu10 and NH (nothing to harvest from), and PMT adds no
    // switches when alone.
    const CompiledModel m = tinyMe(4, 50000.0);
    auto run = [&](PolicyKind kind) {
        EventQueue queue;
        std::vector<VnpuSlot> slots(1);
        slots[0].nMes = 4;
        slots[0].nVes = 4;
        NpuCoreSim core(queue, NpuCoreConfig{}, makePolicy(kind),
                        slots);
        Cycles latency = -1;
        core.submit(0, &m, [&](const RequestResult &r) {
            latency = r.latency();
        });
        queue.runUntil();
        return latency;
    };
    const Cycles neu = run(PolicyKind::Neu10);
    const Cycles nh = run(PolicyKind::Neu10NH);
    EXPECT_NEAR(neu, nh, 1.0);
    EXPECT_NEAR(neu, 50000.0, 1.0);
}

TEST(EdgeCase, ThreeTenantCollocation)
{
    // The paper evaluates pairs; the framework itself supports more.
    ServingConfig cfg;
    cfg.policy = PolicyKind::Neu10;
    cfg.core.numMes = 6;
    cfg.core.numVes = 6;
    cfg.tenants = {
        {ModelId::Dlrm, 32, 2, 2, 1.0, 1},
        {ModelId::ResNet, 32, 2, 2, 1.0, 1},
        {ModelId::EfficientNet, 32, 2, 2, 1.0, 1},
    };
    cfg.minRequests = 4;
    cfg.maxCycles = 2e9;
    const auto r = runServing(cfg);
    for (const auto &t : r.tenants)
        EXPECT_GE(t.completed, 4u) << t.model;
}

TEST(EdgeCase, HighPriorityTenantGetsMoreUnderTemporalNeu10)
{
    NpuCoreConfig cfg;
    EventQueue queue;
    std::vector<VnpuSlot> slots(2);
    for (auto &s : slots) {
        s.nMes = 4;
        s.nVes = 4;
    }
    slots[0].priority = 3.0;
    auto policy = std::make_unique<Neu10Policy>(true, true);
    NpuCoreSim core(queue, cfg, std::move(policy), slots);

    const CompiledModel m = tinyMe(4, 20000.0);
    std::vector<int> done(2, 0);
    std::function<void(std::uint32_t)> pump = [&](std::uint32_t s) {
        core.submit(s, &m, [&, s](const RequestResult &) {
            ++done[s];
            pump(s);
        });
    };
    pump(0);
    pump(1);
    queue.runUntil(3e7);
    core.drainSlot(0);
    core.drainSlot(1);
    EXPECT_GT(done[0], done[1]);
}

} // anonymous namespace
} // namespace neu10
