/**
 * @file
 * Concurrency stress suite for the host-parallel layers, written to
 * run under ThreadSanitizer (the `tsan` CI cell builds everything
 * with -fsanitize=thread and runs these alongside the fast, perf and
 * cluster labels with NEU10_FLEET_THREADS forcing real width).
 *
 * The tests are meaningful without TSan too — they assert the
 * determinism contract (bit-identical results at any thread width)
 * while deliberately hammering every shared structure: the
 * ThreadPool job dispenser, the fleet epoch collector, the logging
 * level knob, and compiled programs shared read-only across worker
 * threads. Under TSan any unsynchronized access on those paths
 * becomes a hard failure instead of a latent heisenbug.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/fleet.hh"
#include "common/logging.hh"
#include "common/threadpool.hh"
#include "resilience/faults.hh"
#include "runtime/serving.hh"
#include "vnpu/allocator.hh"

namespace neu10
{
namespace
{

constexpr unsigned kWidth = 8; ///< forced pool width (> any CI core cap)

TEST(RaceStress, ParallelForDisjointSlotsAndSharedCounter)
{
    ThreadPool pool(kWidth);
    for (int round = 0; round < 50; ++round) {
        const std::size_t n = 256;
        std::vector<std::uint64_t> slot(n, 0);
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(n, [&](std::size_t i) {
            slot[i] = i * i + round;
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        ASSERT_EQ(sum.load(), n * (n - 1) / 2);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(slot[i], i * i + round);
    }
}

TEST(RaceStress, ExceptionsUnderContentionLeavePoolUsable)
{
    ThreadPool pool(kWidth);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> ran{0};
        EXPECT_THROW(
            pool.parallelFor(128,
                             [&](std::size_t i) {
                                 ran.fetch_add(1,
                                               std::memory_order_relaxed);
                                 if (i % 3 == 0)
                                     throw std::runtime_error("boom");
                             }),
            std::runtime_error);
        // Every index was drained even though a third of them threw.
        EXPECT_EQ(ran.load(), 128);
        // The pool survives for the next job.
        std::atomic<int> ok{0};
        pool.parallelFor(kWidth, [&](std::size_t) {
            ok.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(ok.load(), static_cast<int>(kWidth));
    }
}

TEST(RaceStress, BackToBackJobsReuseOnePool)
{
    // Tiny jobs back to back exercise the publish/claim/clear
    // hand-off of the job state far more than one big job does.
    ThreadPool pool(kWidth);
    for (int job = 0; job < 200; ++job) {
        std::atomic<int> count{0};
        pool.parallelFor(16, [&](std::size_t) {
            count.fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_EQ(count.load(), 16);
    }
}

TEST(RaceStress, PoolConstructionTeardownChurn)
{
    for (int round = 0; round < 30; ++round) {
        ThreadPool pool(4);
        std::atomic<int> count{0};
        pool.parallelFor(64, [&](std::size_t) {
            count.fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_EQ(count.load(), 64);
        // Destructor races the stop flag against sleeping workers.
    }
}

TEST(RaceStress, LogLevelToggledWhileWorkersLog)
{
    // inform() is suppressed at both toggled levels, so the test is
    // silent — but every call still reads the level knob while the
    // toggler writes it, which is exactly the torn-access surface
    // the atomic in common/logging.cc exists for.
    const LogLevel before = logLevel();
    std::atomic<bool> stop{false};
    std::thread toggler([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            setLogLevel(LogLevel::Silent);
            setLogLevel(LogLevel::Warn);
        }
    });
    ThreadPool pool(kWidth);
    pool.parallelFor(5000, [&](std::size_t i) {
        inform("race stress message %zu", i);
        (void)logLevel();
    });
    stop.store(true, std::memory_order_relaxed);
    toggler.join();
    setLogLevel(before);
}

TEST(RaceStress, ConcurrentServingRunsShareOneCompiledProgram)
{
    // Per-core epoch runs in a fleet share read-only compiled
    // programs across worker threads; model that directly with one
    // program driven by eight concurrent runServing calls.
    const NpuCoreConfig core;
    TenantSpec ts;
    ts.model = ModelId::Mnist;
    ts.batch = 8;
    ts.nMes = 2;
    ts.nVes = 2;
    const CompiledModel program =
        compileFor(ts, PolicyKind::Neu10, core);
    ts.program = &program;

    auto makeConfig = [&] {
        ServingConfig cfg;
        cfg.core = core;
        cfg.policy = PolicyKind::Neu10;
        cfg.minRequests = 8;
        cfg.tenants = {ts, ts};
        return cfg;
    };
    const ServingResult reference = runServing(makeConfig());

    ThreadPool pool(kWidth);
    std::vector<ServingResult> results(kWidth);
    pool.parallelFor(kWidth, [&](std::size_t k) {
        results[k] = runServing(makeConfig());
    });
    for (const ServingResult &r : results) {
        ASSERT_EQ(r.tenants.size(), reference.tenants.size());
        EXPECT_EQ(r.makespan, reference.makespan);
        for (size_t i = 0; i < r.tenants.size(); ++i) {
            EXPECT_EQ(r.tenants[i].completed,
                      reference.tenants[i].completed);
            EXPECT_EQ(r.tenants[i].latencyCycles.sum(),
                      reference.tenants[i].latencyCycles.sum());
        }
    }
}

/** Faulted + elastic fleet: every concurrent subsystem at once. */
FleetConfig
stressFleetConfig()
{
    FleetConfig cfg;
    cfg.numBoards = 2;
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = 4e6;
    cfg.elastic.epochs = 4;
    cfg.elastic.imbalanceThreshold = 0.05;
    cfg.elastic.maxMigrationsPerEpoch = 4;
    cfg.resilience.failover = true;
    cfg.resilience.recoveryStallCycles = 1e5;
    FaultEvent loss;
    loss.at = 1.6e6;
    loss.kind = FaultKind::BoardLoss;
    loss.board = 0;
    loss.durationCycles = kCyclesInf;
    cfg.resilience.faults = {loss};

    const Cycles service =
        sizeVnpuForModel(ModelId::Mnist, 8, 2, cfg.board.core)
            .serviceEstimate();
    for (unsigned i = 0; i < 8; ++i) {
        ClusterTenantSpec t;
        t.model = ModelId::Mnist;
        t.batch = 8;
        t.eus = 2;
        t.traffic.shape = TrafficShape::Bursty;
        t.traffic.ratePerSec = 0.5 * cfg.board.core.freqHz / service;
        t.traffic.seed = 300 + i;
        t.sloCycles = 10.0 * service;
        t.maxQueueDepth = 64;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

void
expectFleetAggregatesEq(const FleetResult &a, const FleetResult &b)
{
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.sloMet, b.sloMet);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.lostRequests, b.lostRequests);
    EXPECT_EQ(a.recoveredRequests, b.recoveredRequests);
    EXPECT_EQ(a.downtimeCycles, b.downtimeCycles);
    EXPECT_EQ(a.availability, b.availability);
    EXPECT_EQ(a.mttrCycles, b.mttrCycles);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.latencyCycles.count(), b.latencyCycles.count());
    EXPECT_EQ(a.latencyCycles.sum(), b.latencyCycles.sum());
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].completed, b.cores[c].completed) << c;
        EXPECT_EQ(a.cores[c].downCycles, b.cores[c].downCycles) << c;
    }
}

TEST(RaceStress, FaultedElasticFleetBitIdenticalAtMaxWidth)
{
    FleetConfig cfg = stressFleetConfig();
    cfg.threads = 1;
    const FleetResult serial = runFleet(cfg);
    cfg.threads = kWidth;
    const FleetResult wide = runFleet(cfg);
    expectFleetAggregatesEq(serial, wide);
    EXPECT_GT(wide.failovers, 0u);
    EXPECT_EQ(wide.completed + wide.rejected, wide.submitted);
}

TEST(RaceStress, FleetThreadsEnvOverrideForcesWidth)
{
    FleetConfig cfg = stressFleetConfig();
    cfg.threads = 1;
    const FleetResult baseline = runFleet(cfg);

    // The override reroutes the nominally serial run through the
    // pool; results must not move.
    ASSERT_EQ(setenv("NEU10_FLEET_THREADS", "5", 1), 0);
    const FleetResult forced = runFleet(cfg);
    expectFleetAggregatesEq(baseline, forced);

    // Hardened env parsing applies to the override too.
    ASSERT_EQ(setenv("NEU10_FLEET_THREADS", "many", 1), 0);
    EXPECT_THROW(runFleet(cfg), FatalError);
    ASSERT_EQ(unsetenv("NEU10_FLEET_THREADS"), 0);
}

} // anonymous namespace
} // namespace neu10
