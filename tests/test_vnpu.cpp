/**
 * @file
 * vNPU abstraction and allocator tests: Eq. (1)-(4) properties, the
 * EU-sweep selection (Fig. 12), memory sizing, presets, lifecycle
 * types.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "compiler/profile.hh"
#include "models/zoo.hh"
#include "vnpu/allocator.hh"
#include "vnpu/config.hh"
#include "vnpu/instance.hh"

namespace neu10
{
namespace
{

constexpr double kHbmBpc = 1.2e12 / 1.05e9;

// ---------------------------------------------------------- config

TEST(VnpuConfig, ValidationRequiresEngines)
{
    setLogLevel(LogLevel::Silent);
    VnpuConfig cfg;
    cfg.numMesPerCore = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.numMesPerCore = 1;
    cfg.numVesPerCore = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.numChips = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(VnpuConfig, PresetsAreOrdered)
{
    const auto s = presetConfig(VnpuPreset::Small);
    const auto m = presetConfig(VnpuPreset::Medium);
    const auto l = presetConfig(VnpuPreset::Large);
    EXPECT_LT(s.eusPerCore(), m.eusPerCore());
    EXPECT_LT(m.eusPerCore(), l.eusPerCore());
    EXPECT_LT(s.memSizePerCore, l.memSizePerCore);
    EXPECT_NO_THROW(s.validate());
    EXPECT_NO_THROW(l.validate());
}

TEST(VnpuConfig, ToStringMentionsShape)
{
    const auto cfg = presetConfig(VnpuPreset::Medium);
    const std::string s = cfg.toString();
    EXPECT_NE(s.find("2ME+2VE"), std::string::npos);
}

TEST(VnpuInstance, StateNames)
{
    EXPECT_EQ(toString(VnpuState::Created), "created");
    EXPECT_EQ(toString(VnpuState::Mapped), "mapped");
    EXPECT_EQ(toString(VnpuState::Active), "active");
    EXPECT_EQ(toString(VnpuState::Destroyed), "destroyed");
}

// ------------------------------------------------- Eq. (1)-(4) math

TEST(AllocMath, NormalizedTimeMatchesHandComputation)
{
    // m = 0.8, v = 0.4: T = (1-0.4)/nm + (1-0.8)/nv + 0.2/min.
    const double t = allocNormalizedTime(0.8, 0.4, 2, 1);
    EXPECT_NEAR(t, 0.6 / 2 + 0.2 / 1 + 0.2 / 1, 1e-12);
}

TEST(AllocMath, SingleEnginePairIsBaseline)
{
    // On (1,1) the normalized time is exactly 1 when m + v = 1... and
    // in general (1-v) + (1-m) + (m+v-1) = 1.
    for (double m : {0.5, 0.7, 0.9})
        for (double v : {0.3, 0.5}) {
            if (m + v < 1.0)
                continue;
            EXPECT_NEAR(allocNormalizedTime(m, v, 1, 1), 1.0, 1e-12);
        }
}

TEST(AllocMath, UtilizationBoundedByOne)
{
    for (double m : {0.2, 0.5, 0.8, 0.95})
        for (double v : {0.1, 0.5, 0.9})
            for (unsigned nm : {1u, 2u, 4u})
                for (unsigned nv : {1u, 2u, 4u}) {
                    const double u = allocUtilization(m, v, nm, nv);
                    EXPECT_GT(u, 0.0);
                    EXPECT_LE(u, 1.0 + 1e-9);
                }
}

TEST(AllocMath, OptimalRatioMatchesEquationFour)
{
    // m < 0.5: k = sqrt(m / (1-m)).
    EXPECT_NEAR(allocOptimalRatio(0.2, 0.9), std::sqrt(0.2 / 0.8),
                1e-12);
    // v < 0.5: k = sqrt((1-v) / v).
    EXPECT_NEAR(allocOptimalRatio(0.9, 0.2), std::sqrt(0.8 / 0.2),
                1e-12);
    // Both >= 0.5: k = 1.
    EXPECT_DOUBLE_EQ(allocOptimalRatio(0.6, 0.7), 1.0);
}

TEST(AllocMath, RatioDirectionFollowsWorkloadLeaning)
{
    // ME-heavy (v small) => more MEs than VEs; VE-heavy the reverse.
    EXPECT_GT(allocOptimalRatio(0.95, 0.1), 1.0);
    EXPECT_LT(allocOptimalRatio(0.1, 0.95), 1.0);
}

TEST(AllocMath, KStarMaximizesUtilizationNumerically)
{
    // Eq. (4) is the analytic argmax of Eq. (3); check numerically on
    // a fine grid of real-valued splits for several workloads.
    for (double m : {0.15, 0.3, 0.45})
        for (double v_base : {0.9, 0.95}) {
            const double v = v_base;
            const double k_star = allocOptimalRatio(m, v);
            auto u_of = [&](double k) {
                // Eq. (3) form with nv = 1, nm = k (k <= 1 branch).
                return (m + v) * k /
                       ((1.0 - m) * k * k + k + m);
            };
            const double u_star = u_of(k_star);
            for (double k = 0.05; k <= 1.0; k += 0.01)
                EXPECT_LE(u_of(k), u_star + 1e-9)
                    << "m=" << m << " k=" << k;
        }
}

// --------------------------------------------------- integer split

TEST(AllocSplit, AlwaysAtLeastOneOfEach)
{
    for (unsigned total : {2u, 3u, 5u, 8u, 16u}) {
        const auto [nm, nv] = allocSplitEus(0.99, 0.01, total);
        EXPECT_GE(nm, 1u);
        EXPECT_GE(nv, 1u);
        EXPECT_EQ(nm + nv, total);
    }
}

TEST(AllocSplit, BalancedWorkloadGetsDiagonal)
{
    // Fig. 12c: EfficientNet-like m ~ v picks near-equal splits.
    const auto [nm, nv] = allocSplitEus(0.6, 0.55, 8);
    EXPECT_NEAR(static_cast<double>(nm) / nv, 1.0, 0.5);
}

TEST(AllocSplit, MeHeavyWorkloadGetsMoreMes)
{
    // Fig. 12a: BERT-like picks ~3:1.
    const auto [nm, nv] = allocSplitEus(0.95, 0.09, 12);
    EXPECT_GT(nm, nv);
    EXPECT_GE(nm, 8u);
}

TEST(AllocSplit, SelectionBeatsOrTiesEveryAlternative)
{
    // The allocator's pick maximizes modeled utilization per EU count.
    for (double m : {0.2, 0.6, 0.95})
        for (double v : {0.1, 0.5, 0.9})
            for (unsigned total : {4u, 8u, 12u}) {
                const auto [nm, nv] = allocSplitEus(m, v, total);
                const double picked = allocUtilization(m, v, nm, nv);
                for (unsigned a = 1; a < total; ++a) {
                    EXPECT_GE(picked + 1e-9,
                              allocUtilization(m, v, a, total - a))
                        << m << " " << v << " " << total << " " << a;
                }
            }
}

TEST(AllocSweep, MarksExactlyOneSelectionPerEuCount)
{
    const auto points = allocSweep(0.9, 0.3, 10);
    std::map<unsigned, unsigned> selected;
    for (const auto &p : points)
        if (p.selected)
            ++selected[p.nm + p.nv];
    for (unsigned total = 2; total <= 10; ++total)
        EXPECT_EQ(selected[total], 1u) << total;
}

TEST(AllocSweep, SpeedupMonotoneForSelectedConfigs)
{
    // Fig. 12: the selected-config curve rises with the EU budget.
    const auto points = allocSweep(0.93, 0.2, 16);
    double prev = 0.0;
    for (const auto &p : points) {
        if (!p.selected)
            continue;
        EXPECT_GE(p.speedup + 1e-9, prev);
        prev = p.speedup;
    }
}

// ---------------------------------------------- end-to-end sizing

TEST(Allocate, MemoryRoundedToSegments)
{
    const auto prof =
        profileWorkload(buildModel(ModelId::ResNet, 8), 4, 4, kHbmBpc);
    const NpuCoreConfig core;
    const VnpuConfig cfg = allocateVnpu(prof, 4, 216020000, core);
    EXPECT_EQ(cfg.memSizePerCore % core.hbmSegment, 0u);
    EXPECT_GE(cfg.memSizePerCore, 216020000u);
    EXPECT_EQ(cfg.sramSizePerCore % core.sramSegment, 0u);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Allocate, SramProportionalToMes)
{
    const auto prof_me =
        profileWorkload(buildModel(ModelId::RetinaNet, 8), 4, 4,
                        kHbmBpc);
    const auto prof_ve =
        profileWorkload(buildModel(ModelId::Ncf, 8), 4, 4, kHbmBpc);
    const NpuCoreConfig core;
    const VnpuConfig me_cfg = allocateVnpu(prof_me, 4, 1_GiB, core);
    const VnpuConfig ve_cfg = allocateVnpu(prof_ve, 4, 1_GiB, core);
    EXPECT_GT(me_cfg.numMesPerCore, ve_cfg.numMesPerCore);
    EXPECT_GE(me_cfg.sramSizePerCore, ve_cfg.sramSizePerCore);
}

TEST(Allocate, RealModelDirections)
{
    // DLRM leans VE, RetinaNet leans ME, per §II-B.
    const NpuCoreConfig core;
    const auto dlrm =
        profileWorkload(buildModel(ModelId::Dlrm, 32), 4, 4, kHbmBpc);
    const auto rtnt =
        profileWorkload(buildModel(ModelId::RetinaNet, 32), 4, 4,
                        kHbmBpc);
    const auto d = allocateVnpu(dlrm, 8, 23_GiB, core);
    const auto r = allocateVnpu(rtnt, 8, 1_GiB, core);
    EXPECT_GE(d.numVesPerCore, d.numMesPerCore);
    EXPECT_GT(r.numMesPerCore, r.numVesPerCore);
}

} // anonymous namespace
} // namespace neu10
