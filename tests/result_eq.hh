/**
 * @file
 * Exact-equality comparators for simulation results, shared by the
 * engine-invariance suite (test_perf_engine) and the scenario parity
 * suite (test_scenario_parity).
 *
 * "Equal" here is literal: every counter, every stamp, every latency
 * sample and every derived double is compared with exact equality,
 * no tolerances. Two configs that are supposed to describe the same
 * experiment must produce bit-identical results; anything less means
 * the two paths have silently drifted apart.
 */

#ifndef NEU10_TESTS_RESULT_EQ_HH
#define NEU10_TESTS_RESULT_EQ_HH

#include <gtest/gtest.h>

#include <cstddef>

#include "cluster/fleet.hh"
#include "runtime/serving.hh"

namespace neu10
{

inline void
expectSamplesEq(const Distribution &a, const Distribution &b,
                const char *what)
{
    ASSERT_EQ(a.count(), b.count()) << what;
    for (size_t i = 0; i < a.samples().size(); ++i)
        ASSERT_EQ(a.samples()[i], b.samples()[i]) << what
            << " sample " << i;
    EXPECT_EQ(a.sum(), b.sum()) << what;
}

inline void
expectLlmEq(const LlmEndpointStats &a, const LlmEndpointStats &b)
{
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.prefills, b.prefills);
    EXPECT_EQ(a.decodeIterations, b.decodeIterations);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.kvPages, b.kvPages);
    EXPECT_EQ(a.kvPageHighWater, b.kvPageHighWater);
    EXPECT_EQ(a.kvAllocOps, b.kvAllocOps);
    EXPECT_EQ(a.kvFreeOps, b.kvFreeOps);
    EXPECT_EQ(a.kvFailedAllocs, b.kvFailedAllocs);
    EXPECT_EQ(a.kvOccupancyMean, b.kvOccupancyMean);
    EXPECT_EQ(a.kvFragMean, b.kvFragMean);
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    expectSamplesEq(a.ttftCycles, b.ttftCycles, "ttft");
}

inline void
expectTenantEq(const TenantResult &a, const TenantResult &b,
               size_t idx)
{
    SCOPED_TRACE(::testing::Message() << "tenant " << idx);
    expectLlmEq(a.llm, b.llm);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.sloMet, b.sloMet);
    EXPECT_EQ(a.reclaims, b.reclaims);
    EXPECT_EQ(a.lostRequests, b.lostRequests);
    EXPECT_EQ(a.recoveredRequests, b.recoveredRequests);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.downtimeCycles, b.downtimeCycles);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.goodput, b.goodput);
    EXPECT_EQ(a.blockedFrac, b.blockedFrac);
    expectSamplesEq(a.latencyCycles, b.latencyCycles, "latency");
    ASSERT_EQ(a.backlog.size(), b.backlog.size());
    for (size_t i = 0; i < a.backlog.size(); ++i)
        ASSERT_EQ(a.backlog[i], b.backlog[i]) << "backlog " << i;
}

inline void
expectServingEq(const ServingResult &a, const ServingResult &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.meUsefulUtil, b.meUsefulUtil);
    EXPECT_EQ(a.meHeldUtil, b.meHeldUtil);
    EXPECT_EQ(a.veUtil, b.veUtil);
    EXPECT_EQ(a.avgHbmBytesPerCycle, b.avgHbmBytesPerCycle);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (size_t i = 0; i < a.tenants.size(); ++i)
        expectTenantEq(a.tenants[i], b.tenants[i], i);
}

inline void
expectFleetEq(const FleetResult &a, const FleetResult &b)
{
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.placement, b.placement);
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.sloMet, b.sloMet);
    EXPECT_EQ(a.unplacedTenants, b.unplacedTenants);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.transientFaults, b.transientFaults);
    EXPECT_EQ(a.coreFailures, b.coreFailures);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.lostRequests, b.lostRequests);
    EXPECT_EQ(a.recoveredRequests, b.recoveredRequests);
    EXPECT_EQ(a.downtimeCycles, b.downtimeCycles);
    EXPECT_EQ(a.availability, b.availability);
    EXPECT_EQ(a.mttrCycles, b.mttrCycles);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.goodput, b.goodput);
    expectSamplesEq(a.latencyCycles, b.latencyCycles, "fleet latency");
    expectSamplesEq(a.coreMeUtil, b.coreMeUtil, "core ME util");
    expectSamplesEq(a.coreEuUtil, b.coreEuUtil, "core EU util");

    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (size_t i = 0; i < a.placements.size(); ++i) {
        EXPECT_EQ(a.placements[i].core, b.placements[i].core) << i;
        EXPECT_EQ(a.placements[i].nMes, b.placements[i].nMes) << i;
        EXPECT_EQ(a.placements[i].nVes, b.placements[i].nVes) << i;
        EXPECT_EQ(a.placements[i].migrations,
                  b.placements[i].migrations) << i;
    }
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].completed, b.cores[c].completed) << c;
        EXPECT_EQ(a.cores[c].makespan, b.cores[c].makespan) << c;
        EXPECT_EQ(a.cores[c].meUsefulUtil, b.cores[c].meUsefulUtil)
            << c;
        EXPECT_EQ(a.cores[c].veUtil, b.cores[c].veUtil) << c;
        EXPECT_EQ(a.cores[c].euUtil, b.cores[c].euUtil) << c;
        EXPECT_EQ(a.cores[c].downCycles, b.cores[c].downCycles) << c;
    }
    ASSERT_EQ(a.epochReports.size(), b.epochReports.size());
    for (size_t e = 0; e < a.epochReports.size(); ++e) {
        EXPECT_EQ(a.epochReports[e].completed,
                  b.epochReports[e].completed) << e;
        EXPECT_EQ(a.epochReports[e].backlog,
                  b.epochReports[e].backlog) << e;
        EXPECT_EQ(a.epochReports[e].migrations,
                  b.epochReports[e].migrations) << e;
        EXPECT_EQ(a.epochReports[e].failures,
                  b.epochReports[e].failures) << e;
        EXPECT_EQ(a.epochReports[e].restores,
                  b.epochReports[e].restores) << e;
        EXPECT_EQ(a.epochReports[e].pressureStddev,
                  b.epochReports[e].pressureStddev) << e;
    }
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (size_t i = 0; i < a.tenants.size(); ++i)
        expectTenantEq(a.tenants[i], b.tenants[i], i);
}

} // namespace neu10

#endif // NEU10_TESTS_RESULT_EQ_HH
