/**
 * @file
 * Unit tests for the compiler: graph validation, cost model, NeuISA and
 * VLIW lowering (tiling, fusion, reduction partitioning, chunking),
 * instruction emission, and the m/v profiler.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "compiler/graph.hh"
#include "compiler/lower.hh"
#include "compiler/machine.hh"
#include "compiler/profile.hh"
#include "isa/interpreter.hh"

namespace neu10
{
namespace
{

DnnGraph
tinyGraph()
{
    DnnGraph g;
    g.model = "tiny";
    g.batch = 8;
    TensorOp mm;
    mm.name = "mm";
    mm.kind = OpKind::MatMul;
    mm.macs = 256.0 * 256 * 256;
    mm.meEfficiency = 1.0;
    mm.parallelTiles = 4;
    mm.bytes = 1_MiB;
    g.ops.push_back(mm);

    TensorOp relu;
    relu.name = "relu";
    relu.kind = OpKind::Vector;
    relu.veElems = 256.0 * 256;
    relu.fuseWithPrev = true;
    relu.deps = {0};
    g.ops.push_back(relu);

    TensorOp softmax;
    softmax.name = "softmax";
    softmax.kind = OpKind::Vector;
    softmax.veElems = 50000.0;
    softmax.deps = {0};
    g.ops.push_back(softmax);
    g.hbmFootprint = 100_MiB;
    return g;
}

// ------------------------------------------------------------- graph

TEST(Graph, ValidGraphPasses)
{
    EXPECT_NO_THROW(tinyGraph().validate());
}

TEST(Graph, ForwardDepRejected)
{
    setLogLevel(LogLevel::Silent);
    DnnGraph g = tinyGraph();
    g.ops[0].deps = {2};
    EXPECT_THROW(g.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Graph, VectorOpWithMacsRejected)
{
    setLogLevel(LogLevel::Silent);
    DnnGraph g = tinyGraph();
    g.ops[2].macs = 100.0;
    EXPECT_THROW(g.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Graph, FusedOpNeedsSingleVectorProducer)
{
    setLogLevel(LogLevel::Silent);
    DnnGraph g = tinyGraph();
    g.ops[1].deps = {};
    EXPECT_THROW(g.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Graph, EfficiencyRangeEnforced)
{
    setLogLevel(LogLevel::Silent);
    DnnGraph g = tinyGraph();
    g.ops[0].meEfficiency = 1.5;
    EXPECT_THROW(g.validate(), FatalError);
    g.ops[0].meEfficiency = 0.0;
    EXPECT_THROW(g.validate(), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Graph, Totals)
{
    DnnGraph g = tinyGraph();
    EXPECT_DOUBLE_EQ(g.totalMacs(), 256.0 * 256 * 256);
    EXPECT_DOUBLE_EQ(g.totalVeElems(), 256.0 * 256 + 50000.0);
    EXPECT_EQ(g.totalBytes(), 1_MiB);
}

// ----------------------------------------------------------- machine

TEST(Machine, TableIIThroughputs)
{
    MachineModel m;
    EXPECT_DOUBLE_EQ(m.meMacsPerCycle(), 128.0 * 128);
    EXPECT_DOUBLE_EQ(m.veElemsPerCycle(), 128.0 * 8);
    EXPECT_DOUBLE_EQ(m.freqHz, 1.05e9);
}

TEST(Machine, CycleConversions)
{
    MachineModel m;
    EXPECT_DOUBLE_EQ(m.meCyclesFor(16384.0), 1.0);
    EXPECT_DOUBLE_EQ(m.meCyclesFor(16384.0, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(m.veCyclesFor(1024.0), 1.0);
}

// ------------------------------------------------------ neuisa lower

TEST(LowerNeuIsa, FusionFoldsIntoProducer)
{
    CompiledModel cm = lowerToNeuIsa(tinyGraph(), 4, 4);
    // mm + fused relu collapse into one compiled op; softmax separate.
    ASSERT_EQ(cm.ops.size(), 2u);
    EXPECT_EQ(cm.ops[0].name, "mm");
    EXPECT_GT(cm.ops[0].totalVeTime(), 0.0); // carries the fused ReLU
    EXPECT_EQ(cm.ops[1].name, "softmax");
    EXPECT_EQ(cm.ops[1].deps, (std::vector<std::uint32_t>{0}));
}

TEST(LowerNeuIsa, TilesBoundedByNxAndParallelism)
{
    DnnGraph g = tinyGraph();
    CompiledModel cm = lowerToNeuIsa(g, 4, 4);
    EXPECT_EQ(cm.ops[0].groups[0].units.size(), 4u);

    g.ops[0].parallelTiles = 2; // fewer independent tiles than MEs
    // Small op (1024 ME cycles < reduction threshold): no reduction,
    // just 2 uTOps.
    g.ops[0].macs = 1024.0 * 16384;
    CompiledModel cm2 = lowerToNeuIsa(g, 4, 4);
    EXPECT_EQ(cm2.ops[0].groups[0].units.size(), 2u);
}

TEST(LowerNeuIsa, WorkConservedAcrossTiling)
{
    const DnnGraph g = tinyGraph();
    const MachineModel m;
    for (unsigned nx : {1u, 2u, 4u, 8u}) {
        CompiledModel cm = lowerToNeuIsa(g, nx, 4);
        EXPECT_NEAR(cm.totalMeBusy(),
                    m.meCyclesFor(g.ops[0].macs), 1e-6)
            << "nx=" << nx;
        EXPECT_NEAR(cm.totalVeBusy(),
                    m.veCyclesFor(g.totalVeElems()), 1e-6);
        EXPECT_NEAR(static_cast<double>(cm.totalBytes()),
                    static_cast<double>(g.totalBytes()), 2.0);
    }
}

TEST(LowerNeuIsa, ReductionPartitionAddsSummationGroup)
{
    DnnGraph g = tinyGraph();
    g.ops[0].parallelTiles = 1;       // only reduction-dim available
    g.ops[0].macs = 4096.0 * 16384;   // big enough to warrant it
    g.ops[1].veElems = 65536.0;       // fused work to serialize
    CompiledModel cm = lowerToNeuIsa(g, 4, 4);

    const CompiledOp &op = cm.ops[0];
    // Chunked ME groups first, then exactly one summation VE group.
    ASSERT_GE(op.groups.size(), 2u);
    const WorkGroup &last = op.groups.back();
    ASSERT_EQ(last.units.size(), 1u);
    EXPECT_EQ(last.units[0].kind, UTopKind::Ve);
    // ME uTOps must carry no pipelined VE work (the NeuISA overhead).
    for (size_t i = 0; i + 1 < op.groups.size(); ++i)
        for (const auto &u : op.groups[i].units)
            EXPECT_DOUBLE_EQ(u.veTime, 0.0);
    // Summation includes partial-sum adds beyond the fused work.
    const MachineModel m;
    EXPECT_GT(last.units[0].veTime, m.veCyclesFor(65536.0));
}

TEST(LowerNeuIsa, LargeOpsChunkIntoBoundedGroups)
{
    DnnGraph g = tinyGraph();
    g.ops[0].macs = 1e12; // enormous operator
    CompiledModel cm = lowerToNeuIsa(g, 4, 4);
    EXPECT_GT(cm.ops[0].groups.size(), 1u);
    EXPECT_LE(cm.ops[0].groups.size(), 16u);
    // Work still conserved.
    const MachineModel m;
    EXPECT_NEAR(cm.totalMeBusy(), m.meCyclesFor(1e12), 1e-3);
}

TEST(LowerNeuIsa, VeOnlyOpsChunkToo)
{
    DnnGraph g = tinyGraph();
    g.ops[2].veElems = 1e9; // ~1M VE cycles
    CompiledModel cm = lowerToNeuIsa(g, 4, 4);
    const CompiledOp &sm = cm.ops[1];
    EXPECT_GT(sm.groups.size(), 1u);
    EXPECT_LE(sm.groups.size(), 16u);
    for (const auto &grp : sm.groups) {
        ASSERT_EQ(grp.units.size(), 1u);
        EXPECT_EQ(grp.units[0].kind, UTopKind::Ve);
    }
}

// -------------------------------------------------------- vliw lower

TEST(LowerVliw, OperatorsGangAllMes)
{
    CompiledModel cm = lowerToVliw(tinyGraph(), 4, 4);
    ASSERT_EQ(cm.ops.size(), 2u);
    const WorkUnit &u = cm.ops[0].groups[0].units[0];
    EXPECT_EQ(u.kind, UTopKind::Me);
    EXPECT_EQ(u.gang, 4u);
    EXPECT_DOUBLE_EQ(u.meEff, 1.0); // 4 tiles fill 4 MEs
}

TEST(LowerVliw, FalseCouplingWastesEngines)
{
    DnnGraph g = tinyGraph();
    g.ops[0].parallelTiles = 2;
    g.ops[0].macs = 1024.0 * 16384; // small: no reduction partition
    CompiledModel cm = lowerToVliw(g, 4, 4);
    const WorkUnit &u = cm.ops[0].groups[0].units[0];
    EXPECT_EQ(u.gang, 4u);                 // occupies all 4 MEs...
    EXPECT_DOUBLE_EQ(u.meEff, 0.5);        // ...but only 2 do work
}

TEST(LowerVliw, ReductionPartitionPipelinesWithoutPenalty)
{
    DnnGraph g = tinyGraph();
    g.ops[0].parallelTiles = 1;
    g.ops[0].macs = 4096.0 * 16384;
    CompiledModel cm = lowerToVliw(g, 4, 4);
    const CompiledOp &op = cm.ops[0];
    // One group, full efficiency: VLIW pipelines the partial sums.
    EXPECT_EQ(op.groups.size(), 1u);
    EXPECT_DOUBLE_EQ(op.groups[0].units[0].meEff, 1.0);
    EXPECT_GT(op.groups[0].units[0].veTime, 0.0);
}

TEST(LowerVliw, NeuIsaVsVliwLatencyGapIsTheFig16Overhead)
{
    // For a reduction-partitioned op, NeuISA serializes the summation;
    // VLIW pipelines it. NeuISA total VE >= VLIW VE (extra adds).
    DnnGraph g = tinyGraph();
    g.ops[0].parallelTiles = 1;
    g.ops[0].macs = 4096.0 * 16384;
    CompiledModel neu = lowerToNeuIsa(g, 4, 4);
    CompiledModel vliw = lowerToVliw(g, 4, 4);
    EXPECT_GT(neu.totalVeBusy(), vliw.totalVeBusy());
    EXPECT_NEAR(neu.totalMeBusy(), vliw.totalMeBusy(), 1e-6);
}

// ------------------------------------------------------ program emit

TEST(EmitProgram, ListingValidatesAndRuns)
{
    DnnGraph g = tinyGraph();
    g.ops[0].macs = 64.0 * 16384; // keep the listing small
    g.ops[2].veElems = 1024.0;
    NeuIsaProgram prog = emitNeuIsaProgram(g, 4, 4);
    EXPECT_NO_THROW(prog.validate());

    Interpreter interp;
    const auto res = interp.runProgram(prog);
    EXPECT_EQ(res.groupsExecuted, prog.table.size());
    EXPECT_GT(res.instsExecuted, 0u);
}

TEST(EmitProgram, SharedSnippetsLimitCodeInflation)
{
    DnnGraph g = tinyGraph();
    // Big enough that the op splits into 4 identical tile uTOps.
    g.ops[0].macs = 4096.0 * 16384;
    NeuIsaProgram prog = emitNeuIsaProgram(g, 4, 4);
    // Four identical tiles share one snippet.
    size_t entries = 0;
    for (const auto &grp : prog.table)
        entries += grp.size();
    EXPECT_LT(prog.snippets.size(), entries);
}

TEST(EmitProgram, HugeModelsRefused)
{
    setLogLevel(LogLevel::Silent);
    DnnGraph g = tinyGraph();
    g.ops[0].macs = 1e13;
    EXPECT_THROW(emitNeuIsaProgram(g, 4, 4), FatalError);
    setLogLevel(LogLevel::Warn);
}

// ----------------------------------------------------------- profile

TEST(Profile, ActiveRatiosInRange)
{
    const auto p = profileWorkload(tinyGraph(), 4, 4, 1143.0);
    EXPECT_GT(p.m, 0.0);
    EXPECT_LE(p.m, 1.0);
    EXPECT_GT(p.v, 0.0);
    EXPECT_LE(p.v, 1.0);
}

TEST(Profile, TimelineCoversAllUnfusedOps)
{
    const auto p = profileWorkload(tinyGraph(), 4, 4, 1143.0);
    ASSERT_EQ(p.timeline.size(), 2u); // mm(+fused relu), softmax
    EXPECT_DOUBLE_EQ(p.timeline[0].start, 0.0);
    EXPECT_DOUBLE_EQ(p.timeline[1].start, p.timeline[0].end);
    EXPECT_DOUBLE_EQ(p.demandTime, p.timeline[1].end);
}

TEST(Profile, DemandsRespectCoreSize)
{
    const auto p = profileWorkload(tinyGraph(), 4, 2, 1143.0);
    for (const auto &op : p.timeline) {
        EXPECT_LE(op.demandMe, 4u);
        EXPECT_LE(op.demandVe, 2u);
    }
    EXPECT_EQ(p.timeline[1].demandMe, 0u); // softmax needs no ME
}

TEST(Profile, MeIntensiveOpDemandsMoreMes)
{
    const auto p = profileWorkload(tinyGraph(), 4, 4, 1143.0);
    EXPECT_GE(p.timeline[0].demandMe, 2u);
}

TEST(Profile, UsefulMeExcludesOccupancyWaste)
{
    DnnGraph g = tinyGraph();
    g.ops[0].meEfficiency = 0.1; // low array fill
    const auto p = profileWorkload(g, 4, 4, 1143.0);
    EXPECT_GT(p.meBusy, p.meUseful * 5.0);
}

// Property sweep: work conservation under every lowering shape.
class LowerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(LowerSweep, MeWorkIndependentOfCoreShape)
{
    const auto [nx, ny] = GetParam();
    const DnnGraph g = tinyGraph();
    const MachineModel m;
    CompiledModel cm = lowerToNeuIsa(g, nx, ny);
    EXPECT_NEAR(cm.totalMeBusy(), m.meCyclesFor(g.ops[0].macs), 1e-6);
    CompiledModel cv = lowerToVliw(g, nx, ny);
    EXPECT_NEAR(cv.totalMeBusy(), m.meCyclesFor(g.ops[0].macs), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    CoreShapes, LowerSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 2, 4, 8)));

} // anonymous namespace
} // namespace neu10
