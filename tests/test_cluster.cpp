/**
 * @file
 * Cluster-layer tests: traffic generation (determinism, rate, shape),
 * fleet placement (capacity respected, policies differ), open-loop
 * serving (admission control, SLO accounting) and whole-fleet runs.
 */

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "cluster/fleet.hh"
#include "cluster/placement.hh"
#include "cluster/traffic.hh"
#include "common/logging.hh"
#include "runtime/serving.hh"
#include "sim/clock.hh"
#include "vnpu/allocator.hh"

namespace neu10
{
namespace
{

// ------------------------------------------------------- traffic

TEST(Traffic, FixedSeedYieldsIdenticalSchedule)
{
    for (auto shape : {TrafficShape::Poisson, TrafficShape::Bursty,
                       TrafficShape::Diurnal}) {
        TrafficSpec spec;
        spec.shape = shape;
        spec.ratePerSec = 20000.0;
        spec.seed = 7;
        const auto a = generateArrivals(spec, 5e6, 1.05e9);
        const auto b = generateArrivals(spec, 5e6, 1.05e9);
        ASSERT_EQ(a.size(), b.size())
            << trafficShapeName(shape);
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_DOUBLE_EQ(a[i], b[i]) << trafficShapeName(shape);
        ASSERT_FALSE(a.empty()) << trafficShapeName(shape);
    }
}

TEST(Traffic, SeedChangesSchedule)
{
    TrafficSpec spec;
    spec.ratePerSec = 20000.0;
    spec.seed = 7;
    const auto a = generateArrivals(spec, 5e6, 1.05e9);
    spec.seed = 8;
    const auto b = generateArrivals(spec, 5e6, 1.05e9);
    EXPECT_TRUE(a != b);
}

TEST(Traffic, ArrivalsSortedAndInHorizon)
{
    for (auto shape : {TrafficShape::Poisson, TrafficShape::Bursty,
                       TrafficShape::Diurnal}) {
        TrafficSpec spec;
        spec.shape = shape;
        spec.ratePerSec = 50000.0;
        const Cycles horizon = 2e6;
        const auto arr = generateArrivals(spec, horizon, 1.05e9);
        EXPECT_TRUE(std::is_sorted(arr.begin(), arr.end()));
        for (Cycles t : arr) {
            EXPECT_GE(t, 0.0);
            EXPECT_LT(t, horizon);
        }
    }
}

TEST(Traffic, MeanRateIsPreserved)
{
    // Every shape advertises ratePerSec as its long-run mean; check
    // within +/- 20% over a long window.
    const double freq = 1.05e9;
    const double rate = 100000.0;
    const Cycles horizon = 0.02 * freq; // 20 ms -> ~2000 arrivals
    for (auto shape : {TrafficShape::Poisson, TrafficShape::Bursty,
                       TrafficShape::Diurnal}) {
        TrafficSpec spec;
        spec.shape = shape;
        spec.ratePerSec = rate;
        spec.seed = 11;
        // Many burst cycles / whole diurnal periods must fit in the
        // window or the long-run mean cannot show.
        spec.burstDwellSec = 2e-4;
        spec.diurnalPeriodSec = 5e-3;
        const auto arr = generateArrivals(spec, horizon, freq);
        const double expected = rate * horizon / freq;
        EXPECT_GT(arr.size(), 0.8 * expected)
            << trafficShapeName(shape);
        EXPECT_LT(arr.size(), 1.2 * expected)
            << trafficShapeName(shape);
    }
}

TEST(Traffic, BurstyIsOverdispersed)
{
    // The MMPP's index of dispersion (variance/mean of per-window
    // counts) must sit clearly above the Poisson baseline of 1.
    const double freq = 1.05e9;
    auto dispersion = [&](TrafficShape shape) {
        TrafficSpec spec;
        spec.shape = shape;
        spec.ratePerSec = 200000.0;
        spec.seed = 3;
        const Cycles horizon = 0.02 * freq;
        const auto arr = generateArrivals(spec, horizon, freq);
        const int bins = 200;
        std::vector<double> counts(bins, 0.0);
        for (Cycles t : arr)
            counts[std::min<int>(bins - 1,
                                 static_cast<int>(t / horizon *
                                                  bins))] += 1.0;
        double mean = 0.0;
        for (double c : counts)
            mean += c;
        mean /= bins;
        double var = 0.0;
        for (double c : counts)
            var += (c - mean) * (c - mean);
        var /= bins;
        return var / mean;
    };
    EXPECT_LT(dispersion(TrafficShape::Poisson), 2.0);
    EXPECT_GT(dispersion(TrafficShape::Bursty), 2.5);
}

TEST(Traffic, DiurnalPeakBeatsTrough)
{
    // Phase 0: the sinusoid is above the mean over the first half of
    // each period and below it over the second half.
    const double freq = 1.05e9;
    TrafficSpec spec;
    spec.shape = TrafficShape::Diurnal;
    spec.ratePerSec = 200000.0;
    spec.diurnalDepth = 0.9;
    spec.diurnalPeriodSec = 0.02;
    const Cycles period = spec.diurnalPeriodSec * freq;
    const auto arr = generateArrivals(spec, period, freq);
    std::uint64_t first_half = 0, second_half = 0;
    for (Cycles t : arr)
        (t < period / 2 ? first_half : second_half) += 1;
    EXPECT_GT(first_half, 1.5 * second_half);
}

TEST(Traffic, TraceReplaysVerbatim)
{
    TrafficSpec spec;
    spec.shape = TrafficShape::Trace;
    spec.trace = {5.0, 1.0, 3.0, 1e12, -2.0};
    const auto arr = generateArrivals(spec, 10.0, 1.05e9);
    ASSERT_EQ(arr.size(), 3u); // out-of-horizon and negative dropped
    EXPECT_DOUBLE_EQ(arr[0], 1.0);
    EXPECT_DOUBLE_EQ(arr[1], 3.0);
    EXPECT_DOUBLE_EQ(arr[2], 5.0);
}

TEST(Traffic, NamesRoundTrip)
{
    for (auto shape : {TrafficShape::Poisson, TrafficShape::Bursty,
                       TrafficShape::Diurnal, TrafficShape::Trace})
        EXPECT_EQ(trafficShapeFromName(trafficShapeName(shape)),
                  shape);
    EXPECT_THROW(trafficShapeFromName("square-wave"), FatalError);
}

// ----------------------------------------------------- placement

PlacementRequest
req(unsigned mes, unsigned ves, Bytes hbm = 1_GiB, double load = 0.1)
{
    PlacementRequest r;
    r.nMes = mes;
    r.nVes = ves;
    r.hbmBytes = hbm;
    r.load = load;
    return r;
}

TEST(Placement, FirstFitPacksInIndexOrder)
{
    FleetPlacer placer(4, NpuCoreConfig{});
    EXPECT_EQ(placer.place(req(2, 2), PlacementPolicy::FirstFit), 0u);
    EXPECT_EQ(placer.place(req(2, 2), PlacementPolicy::FirstFit), 0u);
    EXPECT_EQ(placer.place(req(2, 2), PlacementPolicy::FirstFit), 1u);
}

TEST(Placement, LoadBalancedSpreads)
{
    FleetPlacer placer(4, NpuCoreConfig{});
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              0u);
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              1u);
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              2u);
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              3u);
    // All equally loaded again: wraps back to the emptiest.
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              0u);
}

TEST(Placement, BestFitPrefersTightestCore)
{
    FleetPlacer placer(3, NpuCoreConfig{});
    // Pre-load core 1 so it has the least EU headroom.
    ASSERT_EQ(placer.place(req(2, 2), PlacementPolicy::FirstFit), 0u);
    ASSERT_EQ(placer.place(req(3, 3), PlacementPolicy::LoadBalanced),
              1u);
    // Best fit tucks a 1+1 vNPU into core 1's 2-EU hole, not the
    // half-empty core 0 or the empty core 2.
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::BestFit), 1u);
}

TEST(Placement, EngineCapacityRespected)
{
    setLogLevel(LogLevel::Silent);
    FleetPlacer placer(2, NpuCoreConfig{});
    for (auto policy :
         {PlacementPolicy::FirstFit, PlacementPolicy::BestFit,
          PlacementPolicy::LoadBalanced}) {
        // 4ME/4VE per core: two 2+2 vNPUs fill one core.
        FleetPlacer p(2, NpuCoreConfig{});
        EXPECT_NE(p.place(req(2, 2), policy), kInvalidCore);
        EXPECT_NE(p.place(req(2, 2), policy), kInvalidCore);
        EXPECT_NE(p.place(req(2, 2), policy), kInvalidCore);
        EXPECT_NE(p.place(req(2, 2), policy), kInvalidCore);
        // Fleet is full now.
        EXPECT_EQ(p.place(req(1, 1), policy), kInvalidCore);
    }
    // A request larger than any single core never fits.
    EXPECT_EQ(placer.place(req(5, 1), PlacementPolicy::FirstFit),
              kInvalidCore);
    setLogLevel(LogLevel::Warn);
}

TEST(Placement, HbmCapacityRespected)
{
    NpuCoreConfig core; // 64 GiB HBM
    FleetPlacer placer(2, core);
    EXPECT_EQ(placer.place(req(1, 1, 40_GiB),
                           PlacementPolicy::FirstFit), 0u);
    // 40 GiB more does not fit core 0's remaining 24 GiB.
    EXPECT_EQ(placer.place(req(1, 1, 40_GiB),
                           PlacementPolicy::FirstFit), 1u);
    EXPECT_EQ(placer.place(req(1, 1, 40_GiB),
                           PlacementPolicy::FirstFit), kInvalidCore);
}

TEST(Placement, NamesRoundTrip)
{
    for (auto p : {PlacementPolicy::FirstFit, PlacementPolicy::BestFit,
                   PlacementPolicy::LoadBalanced})
        EXPECT_EQ(placementFromName(placementName(p)), p);
    EXPECT_THROW(placementFromName("worst-fit"), FatalError);
}

TEST(PolicyNames, RoundTripAliasesAndDescriptiveError)
{
    for (auto k : {PolicyKind::Neu10, PolicyKind::Neu10NH,
                   PolicyKind::V10, PolicyKind::Pmt})
        EXPECT_EQ(policyFromName(policyName(k)), k);
    EXPECT_EQ(policyFromName("NEU10"), PolicyKind::Neu10);
    EXPECT_EQ(policyFromName("neu10nh"), PolicyKind::Neu10NH);
    EXPECT_EQ(policyFromName("nh"), PolicyKind::Neu10NH);
    // An unknown policy string must fail loudly with the accepted
    // vocabulary, never silently fall back to a default design.
    try {
        policyFromName("round-robin");
        FAIL() << "unknown policy name was accepted";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("round-robin"), std::string::npos);
        for (const char *want : {"neu10", "neu10-nh", "v10", "pmt"})
            EXPECT_NE(msg.find(want), std::string::npos)
                << "error message does not list '" << want << "'";
    }
}

TEST(Placement, CommitReleaseRoundTrip)
{
    FleetPlacer placer(2, NpuCoreConfig{});
    const PlacementRequest r = req(3, 2, 4_GiB, 0.4);
    EXPECT_TRUE(placer.canHost(1, r));
    EXPECT_TRUE(placer.commit(1, r));
    EXPECT_EQ(placer.cores()[1].freeMes, 1u);
    EXPECT_EQ(placer.cores()[1].freeVes, 2u);
    EXPECT_EQ(placer.cores()[1].residents, 1u);
    // A second identical commit exceeds the MEs and must not change
    // anything.
    EXPECT_FALSE(placer.commit(1, r));
    EXPECT_EQ(placer.cores()[1].residents, 1u);
    placer.release(1, r);
    EXPECT_EQ(placer.cores()[1].freeMes, 4u);
    EXPECT_EQ(placer.cores()[1].residents, 0u);
    EXPECT_DOUBLE_EQ(placer.cores()[1].load, 0.0);
}

TEST(Placement, QuarantineBlocksPlacementUntilRepaired)
{
    FleetPlacer placer(2, NpuCoreConfig{});
    const PlacementRequest r = req(2, 2, 4_GiB, 0.4);
    placer.setQuarantined(0, true);
    EXPECT_TRUE(placer.quarantined(0));
    EXPECT_FALSE(placer.canHost(0, r));
    EXPECT_FALSE(placer.commit(0, r));
    // Every policy routes around the quarantined core.
    for (auto policy :
         {PlacementPolicy::FirstFit, PlacementPolicy::BestFit,
          PlacementPolicy::LoadBalanced}) {
        FleetPlacer p(2, NpuCoreConfig{});
        p.setQuarantined(0, true);
        EXPECT_EQ(p.place(r, policy), 1u) << placementName(policy);
    }
    // Repair restores full placement eligibility.
    placer.setQuarantined(0, false);
    EXPECT_TRUE(placer.canHost(0, r));
    EXPECT_EQ(placer.place(r, PlacementPolicy::FirstFit), 0u);
}

TEST(Placement, ReleaseAfterFailureRoundTripsCapacity)
{
    // The failover eviction order: quarantine the dead core first,
    // then release each resident. The books must round-trip to full
    // capacity so a repaired core hosts exactly what it could before.
    FleetPlacer placer(2, NpuCoreConfig{});
    const PlacementRequest a = req(2, 2, 8_GiB, 0.5);
    const PlacementRequest b = req(2, 1, 4_GiB, 0.3);
    ASSERT_TRUE(placer.commit(0, a));
    ASSERT_TRUE(placer.commit(0, b));
    placer.setQuarantined(0, true);
    placer.release(0, a);
    placer.release(0, b);
    EXPECT_EQ(placer.cores()[0].residents, 0u);
    EXPECT_EQ(placer.cores()[0].freeMes, 4u);
    EXPECT_EQ(placer.cores()[0].freeVes, 4u);
    // Load is advisory (sums in release order): FP-dust tolerance.
    EXPECT_NEAR(placer.cores()[0].load, 0.0, 1e-12);
    // Still unplaceable while down...
    EXPECT_FALSE(placer.canHost(0, a));
    // ...and a full-core request fits again after the repair.
    placer.setQuarantined(0, false);
    EXPECT_TRUE(placer.canHost(0, req(4, 4, 32_GiB)));
    EXPECT_TRUE(placer.commit(0, req(4, 4, 32_GiB)));
}

// ----------------------------------------------------- rebalance

TEST(Rebalance, SpreadsStackedCoresOntoIdleOnes)
{
    FleetPlacer placer(8, NpuCoreConfig{});
    // First-fit packs eight 1M1V tenants onto cores 0 and 1.
    std::vector<CoreId> where;
    std::vector<PlacementRequest> demands(8);
    for (size_t t = 0; t < 8; ++t) {
        demands[t] = req(1, 1, 1_GiB, 1.0 + 0.01 * t);
        where.push_back(
            placer.place(demands[t], PlacementPolicy::FirstFit));
    }
    ASSERT_EQ(where[3], 0u);
    ASSERT_EQ(where[7], 1u);

    std::vector<double> pressure(8, 0.0);
    for (size_t t = 0; t < 8; ++t)
        pressure[where[t]] += demands[t].load;

    RebalanceOptions opts;
    opts.imbalanceThreshold = 0.05;
    opts.maxMigrations = 4;
    const auto moves =
        placer.rebalance(pressure, where, demands, opts);
    EXPECT_EQ(moves.size(), 4u);
    for (const Migration &mv : moves) {
        EXPECT_TRUE(mv.from == 0 || mv.from == 1);
        EXPECT_GE(mv.to, 2u); // always to a previously idle core
    }
    // The placer's books reflect the moves.
    EXPECT_EQ(placer.cores()[0].residents +
                  placer.cores()[1].residents,
              4u);
}

TEST(Rebalance, ThresholdAndBudgetRespected)
{
    FleetPlacer placer(4, NpuCoreConfig{});
    std::vector<CoreId> where;
    std::vector<PlacementRequest> demands(4);
    for (size_t t = 0; t < 4; ++t) {
        demands[t] = req(1, 1, 1_GiB, 0.5);
        where.push_back(
            placer.place(demands[t], PlacementPolicy::FirstFit));
    }
    std::vector<double> pressure = {2.0, 0.0, 0.0, 0.0};

    // A gap under the threshold: no moves at all.
    RebalanceOptions lax;
    lax.imbalanceThreshold = 5.0;
    EXPECT_TRUE(
        placer.rebalance(pressure, where, demands, lax).empty());

    // A budget of one: exactly one move even though more would help.
    RebalanceOptions tight;
    tight.imbalanceThreshold = 0.05;
    tight.maxMigrations = 1;
    EXPECT_EQ(
        placer.rebalance(pressure, where, demands, tight).size(), 1u);
}

TEST(Rebalance, UnfixableHotCoreDoesNotStallOthers)
{
    FleetPlacer placer(4, NpuCoreConfig{});
    // Tenant 0: one huge-backlog vNPU alone filling core 0. Moving
    // it would just relocate the hot spot (its load equals the whole
    // gap), so the rebalancer must freeze core 0 and still fix the
    // *second*-hottest core behind it.
    std::vector<PlacementRequest> demands = {
        req(4, 4, 1_GiB, 10.0),
        req(1, 1, 1_GiB, 3.0),
        req(1, 1, 1_GiB, 3.0),
    };
    std::vector<CoreId> where;
    for (const auto &d : demands)
        where.push_back(placer.place(d, PlacementPolicy::FirstFit));
    ASSERT_EQ(where[0], 0u);
    ASSERT_EQ(where[1], 1u);
    ASSERT_EQ(where[2], 1u);

    std::vector<double> pressure = {10.0, 6.0, 0.0, 0.0};
    RebalanceOptions opts;
    opts.imbalanceThreshold = 0.05;
    opts.maxMigrations = 4;
    const auto moves =
        placer.rebalance(pressure, where, demands, opts);
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_NE(moves[0].tenant, 0u);
    EXPECT_EQ(moves[0].from, 1u);
    EXPECT_GE(moves[0].to, 2u);
}

TEST(Rebalance, QuarantinedCoresNeitherSourceNorTarget)
{
    FleetPlacer placer(4, NpuCoreConfig{});
    // Four tenants stacked on core 0; cores 2 and 3 are down.
    std::vector<PlacementRequest> demands(4);
    std::vector<CoreId> where;
    for (size_t t = 0; t < 4; ++t) {
        demands[t] = req(1, 1, 1_GiB, 1.0);
        where.push_back(
            placer.place(demands[t], PlacementPolicy::FirstFit));
        ASSERT_EQ(where[t], 0u);
    }
    placer.setQuarantined(2, true);
    placer.setQuarantined(3, true);

    std::vector<double> pressure = {4.0, 0.0, 0.0, 0.0};
    RebalanceOptions opts;
    opts.imbalanceThreshold = 0.05;
    opts.maxMigrations = 4;
    const auto moves =
        placer.rebalance(pressure, where, demands, opts);
    ASSERT_FALSE(moves.empty());
    for (const Migration &mv : moves) {
        EXPECT_EQ(mv.from, 0u);
        EXPECT_EQ(mv.to, 1u); // never the quarantined idle cores
    }
    EXPECT_EQ(placer.cores()[2].residents, 0u);
    EXPECT_EQ(placer.cores()[3].residents, 0u);
}

TEST(Rebalance, AllAlternativesQuarantinedMakesNoMoves)
{
    FleetPlacer placer(3, NpuCoreConfig{});
    std::vector<PlacementRequest> demands = {req(1, 1, 1_GiB, 2.0),
                                             req(1, 1, 1_GiB, 2.0)};
    std::vector<CoreId> where;
    for (const auto &d : demands)
        where.push_back(placer.place(d, PlacementPolicy::FirstFit));
    placer.setQuarantined(1, true);
    placer.setQuarantined(2, true);

    std::vector<double> pressure = {4.0, 0.0, 0.0};
    RebalanceOptions opts;
    opts.imbalanceThreshold = 0.05;
    opts.maxMigrations = 4;
    // The only non-quarantined core is the hot one itself: the gap
    // is zero by construction and nothing may move.
    EXPECT_TRUE(
        placer.rebalance(pressure, where, demands, opts).empty());
}

TEST(Rebalance, FrozenHotCoreFallsBackPastQuarantine)
{
    // Variant of the frozen-core fallback with a quarantined core in
    // the mix: core 0 is hot but unfixable (its single huge tenant
    // cannot move without inverting the gap), core 1 is second-
    // hottest and fixable, core 2 is down, core 3 is the only legal
    // destination.
    FleetPlacer placer(4, NpuCoreConfig{});
    std::vector<PlacementRequest> demands = {
        req(4, 4, 1_GiB, 10.0),
        req(1, 1, 1_GiB, 3.0),
        req(1, 1, 1_GiB, 3.0),
    };
    std::vector<CoreId> where;
    for (const auto &d : demands)
        where.push_back(placer.place(d, PlacementPolicy::FirstFit));
    ASSERT_EQ(where[0], 0u);
    ASSERT_EQ(where[1], 1u);
    ASSERT_EQ(where[2], 1u);
    placer.setQuarantined(2, true);

    std::vector<double> pressure = {10.0, 6.0, 0.0, 0.0};
    RebalanceOptions opts;
    opts.imbalanceThreshold = 0.05;
    opts.maxMigrations = 4;
    const auto moves =
        placer.rebalance(pressure, where, demands, opts);
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_NE(moves[0].tenant, 0u);
    EXPECT_EQ(moves[0].from, 1u);
    EXPECT_EQ(moves[0].to, 3u);
}

// ---------------------------------------------- open-loop serving

/** Open-loop single-tenant config calibrated against the allocator's
 * service-time estimate: rho = offered load / capacity. */
ServingConfig
openLoopConfig(double rho, unsigned depth, Cycles horizon = 3e7)
{
    const VnpuSizing sizing =
        sizeVnpuForModel(ModelId::Mnist, 8, 4, NpuCoreConfig{});
    const Cycles service = sizing.serviceEstimate();

    TrafficSpec traffic;
    traffic.ratePerSec = rho * 1.05e9 / service;
    traffic.seed = 5;

    ServingConfig cfg;
    cfg.mode = ServingMode::OpenLoop;
    cfg.policy = PolicyKind::Neu10;
    TenantSpec ts;
    ts.model = ModelId::Mnist;
    ts.batch = 8;
    ts.nMes = sizing.config.numMesPerCore;
    ts.nVes = sizing.config.numVesPerCore;
    ts.arrivals = generateArrivals(traffic, horizon, 1.05e9);
    ts.maxQueueDepth = depth;
    ts.sloCycles = 10.0 * service;
    cfg.tenants = {ts};
    cfg.maxCycles = 2e9;
    return cfg;
}

TEST(OpenLoop, LightLoadAdmitsEverything)
{
    const auto cfg = openLoopConfig(/*rho=*/0.3, /*depth=*/64);
    const auto r = runServing(cfg);
    const auto &t = r.tenants[0];
    EXPECT_EQ(t.submitted, cfg.tenants[0].arrivals.size());
    EXPECT_EQ(t.rejected, 0u);
    EXPECT_EQ(t.completed, t.submitted);
    EXPECT_GT(t.completed, 20u);
    // Light load: latencies comfortably inside the 10x-service SLO.
    EXPECT_EQ(t.sloMet, t.completed);
    EXPECT_GT(t.goodput, 0.0);
    EXPECT_LE(t.p50(), t.p95());
    EXPECT_LE(t.p95(), t.p99());
}

TEST(OpenLoop, SaturationRejectsBeyondQueueDepth)
{
    setLogLevel(LogLevel::Silent);
    // 3x overload with a shallow queue: admission control must shed.
    const auto cfg = openLoopConfig(/*rho=*/3.0, /*depth=*/4);
    const auto r = runServing(cfg);
    const auto &t = r.tenants[0];
    EXPECT_EQ(t.submitted, cfg.tenants[0].arrivals.size());
    EXPECT_GT(t.rejected, 0u);
    // Everything admitted eventually drains.
    EXPECT_EQ(t.completed + t.rejected, t.submitted);
    // Rejections should be roughly the overload excess (~2/3), not a
    // trickle and not everything.
    const double frac = static_cast<double>(t.rejected) /
                        static_cast<double>(t.submitted);
    EXPECT_GT(frac, 0.3);
    EXPECT_LT(frac, 0.9);
    setLogLevel(LogLevel::Warn);
}

TEST(OpenLoop, DeeperQueueTradesRejectionsForLatency)
{
    setLogLevel(LogLevel::Silent);
    const auto shallow =
        runServing(openLoopConfig(/*rho=*/2.0, /*depth=*/2));
    const auto deep =
        runServing(openLoopConfig(/*rho=*/2.0, /*depth=*/32));
    EXPECT_GT(shallow.tenants[0].rejected,
              deep.tenants[0].rejected);
    EXPECT_GT(deep.tenants[0].p95(), shallow.tenants[0].p95());
    setLogLevel(LogLevel::Warn);
}

TEST(OpenLoop, DeterministicAcrossRuns)
{
    const auto cfg = openLoopConfig(/*rho=*/0.8, /*depth=*/16);
    const auto a = runServing(cfg);
    const auto b = runServing(cfg);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.tenants[0].completed, b.tenants[0].completed);
    EXPECT_EQ(a.tenants[0].rejected, b.tenants[0].rejected);
    EXPECT_EQ(a.tenants[0].p99(), b.tenants[0].p99());
}

TEST(OpenLoop, EpochBoundaryStopConservesRequests)
{
    // An overloaded tenant stopped mid-run: every arrival that fired
    // is completed, rejected, or reported as carriable backlog, and
    // the run is measured over the epoch window.
    setLogLevel(LogLevel::Silent);
    auto cfg = openLoopConfig(/*rho=*/2.0, /*depth=*/16);
    cfg.stopAtCycles = 1e7;
    const auto r = runServing(cfg);
    const auto &t = r.tenants[0];
    EXPECT_GT(t.backlog.size(), 0u);
    EXPECT_EQ(t.completed + t.rejected + t.backlog.size(),
              t.submitted);
    EXPECT_TRUE(std::is_sorted(t.backlog.begin(), t.backlog.end()));
    for (Cycles stamp : t.backlog) {
        EXPECT_GE(stamp, 0.0);
        EXPECT_LT(stamp, cfg.stopAtCycles);
    }
    EXPECT_EQ(r.makespan, cfg.stopAtCycles);
    setLogLevel(LogLevel::Warn);
}

TEST(OpenLoop, CycleCapConservesRequests)
{
    // The runaway cap truncates the run mid-stream: every arrival of
    // the offered stream must still be accounted — completed,
    // rejected (including the tail the cap cut off before its
    // delivery event fired), or carriable backlog. Nothing leaks.
    setLogLevel(LogLevel::Silent);
    auto cfg = openLoopConfig(/*rho=*/2.0, /*depth=*/16);
    const std::uint64_t offered = cfg.tenants[0].arrivals.size();
    cfg.maxCycles = 1e6; // well inside the 3e7-cycle stream
    const auto r = runServing(cfg);
    const auto &t = r.tenants[0];
    EXPECT_EQ(t.submitted, offered);
    EXPECT_EQ(t.completed + t.rejected + t.backlog.size(),
              t.submitted);
    EXPECT_GT(t.rejected, 0u);
    EXPECT_LE(r.makespan, cfg.maxCycles);
    setLogLevel(LogLevel::Warn);
}

TEST(OpenLoop, BoundaryArrivalsAreExclusiveAndConsistent)
{
    // An arrival stamped exactly at stopAtCycles belongs to the next
    // epoch (exclusive boundary); one stamped exactly at maxCycles is
    // likewise outside the window, but — since the cap is a terminal
    // stop, not a hand-off — it is shed as submitted + rejected
    // rather than silently dropped.
    setLogLevel(LogLevel::Silent);
    auto base = openLoopConfig(/*rho=*/0.3, /*depth=*/16,
                               /*horizon=*/1e6);
    base.tenants[0].arrivals = {1e5, 5e5, 1e6}; // last on the line

    auto boundary = base;
    boundary.stopAtCycles = 1e6;
    const auto rb = runServing(boundary);
    // The boundary arrival was neither delivered nor counted: the
    // next epoch's slice will offer it (runFleet slices streams with
    // the same strict comparison).
    EXPECT_EQ(rb.tenants[0].submitted, 2u);
    EXPECT_EQ(rb.tenants[0].completed +
                  rb.tenants[0].rejected +
                  rb.tenants[0].backlog.size(),
              rb.tenants[0].submitted);

    auto capped = base;
    capped.maxCycles = 1e6;
    const auto rc = runServing(capped);
    // The capped run owns its whole stream: the on-the-line arrival
    // counts as offered and shed.
    EXPECT_EQ(rc.tenants[0].submitted, 3u);
    EXPECT_EQ(rc.tenants[0].rejected, 1u);
    EXPECT_EQ(rc.tenants[0].completed +
                  rc.tenants[0].rejected +
                  rc.tenants[0].backlog.size(),
              rc.tenants[0].submitted);
    setLogLevel(LogLevel::Warn);
}

TEST(OpenLoop, CapBelowEpochBoundaryIsACapStop)
{
    // When the runaway cap lies inside the epoch window, the cap —
    // not the boundary — ends the run: the window must not report
    // the unreached boundary, and the undelivered arrival tail is
    // shed as submitted + rejected like any capped run.
    setLogLevel(LogLevel::Silent);
    auto cfg = openLoopConfig(/*rho=*/0.3, /*depth=*/16,
                              /*horizon=*/1e6);
    cfg.tenants[0].arrivals = {1e5, 2.5e6};
    cfg.stopAtCycles = 2e6;
    cfg.maxCycles = 1e6;
    const auto r = runServing(cfg);
    EXPECT_LE(r.makespan, cfg.maxCycles);
    const auto &t = r.tenants[0];
    EXPECT_EQ(t.submitted, 2u);
    EXPECT_EQ(t.rejected, 1u); // the 2.5e6 arrival the cap cut off
    EXPECT_EQ(t.completed + t.rejected + t.backlog.size(),
              t.submitted);
    setLogLevel(LogLevel::Warn);
}

TEST(OpenLoop, CarriedBacklogIsServedNextEpoch)
{
    setLogLevel(LogLevel::Silent);
    auto first = openLoopConfig(/*rho=*/2.0, /*depth=*/16,
                                /*horizon=*/1e7);
    first.stopAtCycles = 1e7;
    const auto a = runServing(first);
    const std::vector<Cycles> carried = a.tenants[0].backlog;
    ASSERT_GT(carried.size(), 0u);

    // Second epoch: only the carried work, restamped relative to the
    // new origin. It bypasses admission and fully drains; waiting
    // across the boundary shows up in the latency tail.
    auto second = first;
    second.stopAtCycles = kCyclesInf;
    second.tenants[0].arrivals.clear();
    second.tenants[0].backlog.clear();
    for (Cycles stamp : carried)
        second.tenants[0].backlog.push_back(stamp - 1e7);
    const auto b = runServing(second);
    const auto &t = b.tenants[0];
    EXPECT_EQ(t.submitted, 0u); // carried work is not re-counted
    EXPECT_EQ(t.rejected, 0u);
    EXPECT_EQ(t.completed, carried.size());
    EXPECT_TRUE(t.backlog.empty());
    // Every carried request waited at least one full epoch.
    EXPECT_GE(t.latencyCycles.min(), 0.0);
    setLogLevel(LogLevel::Warn);
}

TEST(OpenLoop, StartOffsetHoldsSubmissionsAndCountsInLatency)
{
    auto cfg = openLoopConfig(/*rho=*/0.3, /*depth=*/64,
                              /*horizon=*/1e6);
    cfg.tenants[0].startOffsetCycles = 5e6;
    const auto r = runServing(cfg);
    const auto &t = r.tenants[0];
    EXPECT_EQ(t.completed, t.submitted);
    // Every request arrived before 1e6 but could only start at 5e6:
    // the hold is part of its latency.
    EXPECT_GE(t.latencyCycles.min(), 4e6);
}

// --------------------------------------------------------- fleet

FleetConfig
smallFleet(PlacementPolicy placement, unsigned tenants = 8,
           TrafficShape shape = TrafficShape::Poisson)
{
    FleetConfig cfg;
    cfg.numBoards = 2;          // 2 boards x 4 cores = 8 cores
    cfg.placement = placement;
    cfg.horizon = 2e7;
    cfg.maxCycles = 2e9;

    const ModelId models[] = {ModelId::Mnist, ModelId::Ncf};
    for (unsigned i = 0; i < tenants; ++i) {
        ClusterTenantSpec t;
        t.model = models[i % 2];
        t.batch = 8;
        t.eus = 4;
        t.traffic.shape = shape;
        t.traffic.ratePerSec = 4000.0;
        t.traffic.seed = 100 + i;
        t.sloCycles = 2e6;
        t.maxQueueDepth = 16;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

TEST(Fleet, EndToEndServesAndAccounts)
{
    const auto r = runFleet(smallFleet(PlacementPolicy::LoadBalanced));
    EXPECT_EQ(r.unplacedTenants, 0u);
    EXPECT_GT(r.submitted, 0u);
    EXPECT_GT(r.completed, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_GT(r.goodput, 0.0);
    EXPECT_LE(r.p50(), r.p95());
    EXPECT_LE(r.p95(), r.p99());
    EXPECT_EQ(r.latencyCycles.count(), r.completed);
    EXPECT_EQ(r.cores.size(), 8u);
    EXPECT_EQ(r.coreMeUtil.count(), 8u);

    // Per-core completion counts add up to the fleet total.
    std::uint64_t core_sum = 0;
    for (const auto &c : r.cores)
        core_sum += c.completed;
    EXPECT_EQ(core_sum, r.completed);
}

TEST(Fleet, DeterministicAcrossRuns)
{
    const auto cfg = smallFleet(PlacementPolicy::BestFit);
    const auto a = runFleet(cfg);
    const auto b = runFleet(cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.p99(), b.p99());
    for (size_t i = 0; i < a.placements.size(); ++i)
        EXPECT_EQ(a.placements[i].core, b.placements[i].core);
}

TEST(Fleet, PlacementRespectsCoreCapacity)
{
    for (auto policy :
         {PlacementPolicy::FirstFit, PlacementPolicy::BestFit,
          PlacementPolicy::LoadBalanced}) {
        const auto cfg = smallFleet(policy, /*tenants=*/12);
        const auto r = runFleet(cfg);
        const NpuCoreConfig core;
        std::vector<unsigned> mes(cfg.totalCores(), 0);
        std::vector<unsigned> ves(cfg.totalCores(), 0);
        std::vector<Bytes> hbm(cfg.totalCores(), 0);
        for (const auto &pl : r.placements) {
            if (!pl.placed())
                continue;
            ASSERT_LT(pl.core, cfg.totalCores());
            EXPECT_GE(pl.nMes, 1u);
            EXPECT_GE(pl.nVes, 1u);
            mes[pl.core] += pl.nMes;
            ves[pl.core] += pl.nVes;
            hbm[pl.core] += pl.hbmBytes;
        }
        for (CoreId c = 0; c < cfg.totalCores(); ++c) {
            EXPECT_LE(mes[c], core.numMes) << placementName(policy);
            EXPECT_LE(ves[c], core.numVes) << placementName(policy);
            EXPECT_LE(hbm[c], core.hbmBytes) << placementName(policy);
        }
    }
}

TEST(Fleet, OversizedTenantIsRejectedWholesale)
{
    auto cfg = smallFleet(PlacementPolicy::FirstFit, /*tenants=*/2);
    cfg.tenants[1].eus = 12; // cannot fit a 4ME/4VE core
    const auto r = runFleet(cfg);
    EXPECT_EQ(r.unplacedTenants, 1u);
    EXPECT_FALSE(r.placements[1].placed());
    EXPECT_GT(r.tenants[1].submitted, 0u);
    EXPECT_EQ(r.tenants[1].rejected, r.tenants[1].submitted);
    EXPECT_EQ(r.tenants[1].completed, 0u);
    // Tenant 0 is unaffected.
    EXPECT_GT(r.tenants[0].completed, 0u);
}

TEST(Fleet, PoliciesProduceDifferentPackings)
{
    // 4 light tenants on 8 cores: first-fit doubles them up on the
    // first cores, load-balanced spreads them out.
    const auto ff =
        runFleet(smallFleet(PlacementPolicy::FirstFit, 4));
    const auto lb =
        runFleet(smallFleet(PlacementPolicy::LoadBalanced, 4));
    auto occupied = [](const FleetResult &r) {
        unsigned n = 0;
        for (const auto &c : r.cores)
            n += c.tenants > 0;
        return n;
    };
    EXPECT_LT(occupied(ff), occupied(lb));

    // Imbalance shows in the per-core utilization spread.
    EXPECT_GT(ff.coreMeUtil.stddev(), lb.coreMeUtil.stddev());
}

TEST(Fleet, ThreadCountDoesNotChangeResults)
{
    // The tentpole determinism contract: per-core simulations run on
    // a host thread pool, and the outcome is bit-identical whether
    // one thread or many execute them.
    auto cfg = smallFleet(PlacementPolicy::LoadBalanced);
    cfg.threads = 1;
    const auto serial = runFleet(cfg);
    for (unsigned threads : {4u, 8u}) {
        cfg.threads = threads;
        const auto parallel = runFleet(cfg);
        EXPECT_EQ(serial.completed, parallel.completed);
        EXPECT_EQ(serial.submitted, parallel.submitted);
        EXPECT_EQ(serial.rejected, parallel.rejected);
        EXPECT_EQ(serial.sloMet, parallel.sloMet);
        EXPECT_EQ(serial.makespan, parallel.makespan);
        EXPECT_EQ(serial.p50(), parallel.p50());
        EXPECT_EQ(serial.p99(), parallel.p99());
        EXPECT_EQ(serial.goodput, parallel.goodput);
        ASSERT_EQ(serial.tenants.size(), parallel.tenants.size());
        for (size_t i = 0; i < serial.tenants.size(); ++i) {
            EXPECT_EQ(serial.tenants[i].completed,
                      parallel.tenants[i].completed);
            EXPECT_EQ(serial.tenants[i].p99(),
                      parallel.tenants[i].p99());
            EXPECT_EQ(serial.placements[i].core,
                      parallel.placements[i].core);
        }
        for (size_t c = 0; c < serial.cores.size(); ++c) {
            EXPECT_EQ(serial.cores[c].completed,
                      parallel.cores[c].completed);
            EXPECT_EQ(serial.cores[c].euUtil,
                      parallel.cores[c].euUtil);
        }
    }
}

/** The bench_fleet_scaling part-2 scenario, shrunk: 8 overloaded
 * 2-EU tenants first-fit-stacked onto 2 of 8 cores, bursty traffic. */
FleetConfig
imbalancedFleet(unsigned epochs, unsigned threads = 1)
{
    FleetConfig cfg;
    cfg.numBoards = 2;
    cfg.placement = PlacementPolicy::FirstFit;
    cfg.horizon = 6e6;
    cfg.maxCycles = 50.0 * cfg.horizon;
    cfg.threads = threads;
    cfg.elastic.epochs = epochs;
    cfg.elastic.imbalanceThreshold = 0.05;
    const Cycles service =
        sizeVnpuForModel(ModelId::Mnist, 32, 2, cfg.board.core)
            .serviceEstimate();
    for (unsigned i = 0; i < 8; ++i) {
        ClusterTenantSpec t;
        t.model = ModelId::Mnist;
        t.batch = 32;
        t.eus = 2;
        t.traffic.shape = TrafficShape::Bursty;
        t.traffic.ratePerSec =
            1.2 * cfg.board.core.freqHz / service;
        t.traffic.seed = 42 + i;
        t.sloCycles = 5.0 * service;
        t.maxQueueDepth = 32;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

TEST(Fleet, ElasticRebalancingBeatsStaticUnderImbalance)
{
    // The ISSUE-3 acceptance scenario: under an imbalanced bursty
    // trace, epoch-based rebalancing must demonstrably improve the
    // fleet over the static placement — directionally on both tail
    // latency and goodput here, since the hot cores are saturated
    // while most of the fleet idles.
    const auto stat = runFleet(imbalancedFleet(/*epochs=*/1));
    const auto elas = runFleet(imbalancedFleet(/*epochs=*/8));
    EXPECT_GT(elas.migrations, 0u);
    EXPECT_LT(elas.p99(), stat.p99());
    EXPECT_GT(elas.goodput, stat.goodput);
    EXPECT_GT(elas.completed, stat.completed);
    // Spreading shows as a tighter cross-core utilization spread.
    EXPECT_LT(elas.coreEuUtil.stddev(), stat.coreEuUtil.stddev());
    // Migrated vNPUs actually moved and the books know it.
    unsigned moved = 0;
    for (const auto &pl : elas.placements)
        moved += pl.migrations;
    EXPECT_EQ(moved, elas.migrations);
    EXPECT_EQ(elas.epochReports.size(), 8u);
}

TEST(Fleet, ElasticRunIsDeterministicAndThreadInvariant)
{
    const auto a = runFleet(imbalancedFleet(/*epochs=*/6));
    const auto b = runFleet(imbalancedFleet(/*epochs=*/6));
    const auto c =
        runFleet(imbalancedFleet(/*epochs=*/6, /*threads=*/4));
    for (const auto *r : {&b, &c}) {
        EXPECT_EQ(a.completed, r->completed);
        EXPECT_EQ(a.rejected, r->rejected);
        EXPECT_EQ(a.migrations, r->migrations);
        EXPECT_EQ(a.p99(), r->p99());
        for (size_t i = 0; i < a.placements.size(); ++i) {
            EXPECT_EQ(a.placements[i].core, r->placements[i].core);
            EXPECT_EQ(a.placements[i].nMes, r->placements[i].nMes);
        }
    }
}

TEST(Fleet, MigrationStallLongerThanEpochConserves)
{
    // A migration stall exceeding the epoch window: the stalled
    // tenant's carried work and arrivals must survive in the host
    // queue across boundaries, not vanish into never-fired events.
    auto cfg = imbalancedFleet(/*epochs=*/8);
    cfg.elastic.migrationCostCycles = 2.0 * cfg.horizon / 8;
    const auto r = runFleet(cfg);
    EXPECT_GT(r.migrations, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_EQ(r.latencyCycles.count(), r.completed);
}

TEST(Fleet, EpochsAloneKeepAccountingConsistent)
{
    // Epoch splitting with rebalancing disabled (huge threshold):
    // request conservation and the per-epoch reports must hold.
    auto cfg = imbalancedFleet(/*epochs=*/4);
    cfg.elastic.imbalanceThreshold = 1e18;
    const auto r = runFleet(cfg);
    EXPECT_EQ(r.migrations, 0u);
    ASSERT_EQ(r.epochReports.size(), 4u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_EQ(r.latencyCycles.count(), r.completed);
    std::uint64_t epoch_sum = 0;
    for (const auto &er : r.epochReports) {
        epoch_sum += er.completed;
        EXPECT_EQ(er.migrations, 0u);
    }
    EXPECT_EQ(epoch_sum, r.completed);
    // The final (draining) epoch carries nothing out.
    EXPECT_EQ(r.epochReports.back().backlog, 0u);
}

TEST(Fleet, BoundaryArrivalIsDeliveredExactlyOnce)
{
    // A trace arrival landing exactly on an epoch boundary must be
    // handled once, by the *next* epoch (the exclusive-boundary
    // contract between runFleet's stream slicing and the serving
    // loop's stop): conservation holds and the offered-request count
    // matches the trace whether the horizon is split or not.
    auto make = [](unsigned epochs) {
        FleetConfig cfg;
        cfg.numBoards = 1;
        cfg.placement = PlacementPolicy::FirstFit;
        cfg.horizon = 8e6;
        cfg.maxCycles = 2e9;
        cfg.elastic.epochs = epochs;
        cfg.elastic.imbalanceThreshold = 1e18;

        ClusterTenantSpec t;
        t.model = ModelId::Mnist;
        t.batch = 8;
        t.eus = 4;
        t.traffic.shape = TrafficShape::Trace;
        // One arrival exactly at the 2-epoch boundary (4e6), plus
        // neighbors on both sides.
        t.traffic.trace = {1e6, 3.999e6, 4e6, 4.001e6, 6e6};
        t.sloCycles = kCyclesInf;
        t.maxQueueDepth = 16;
        cfg.tenants.push_back(t);
        return cfg;
    };

    const auto whole = runFleet(make(1));
    const auto split = runFleet(make(2));
    EXPECT_EQ(whole.submitted, 5u);
    EXPECT_EQ(split.submitted, 5u);
    EXPECT_EQ(whole.completed + whole.rejected, whole.submitted);
    EXPECT_EQ(split.completed + split.rejected, split.submitted);
    // Light load: nothing is shed either way, so the boundary
    // arrival demonstrably reached service in the split run too.
    EXPECT_EQ(whole.completed, 5u);
    EXPECT_EQ(split.completed, 5u);
}

TEST(Fleet, BurstyTrafficHurtsTails)
{
    // Same mean rate, burstier stream: the fleet's p99 should be no
    // better, and queue rejections should not decrease.
    auto poisson_cfg =
        smallFleet(PlacementPolicy::LoadBalanced, 8,
                   TrafficShape::Poisson);
    auto bursty_cfg =
        smallFleet(PlacementPolicy::LoadBalanced, 8,
                   TrafficShape::Bursty);
    for (auto *cfg : {&poisson_cfg, &bursty_cfg})
        for (auto &t : cfg->tenants) {
            t.traffic.ratePerSec = 12000.0;
            t.maxQueueDepth = 8;
        }
    const auto poisson = runFleet(poisson_cfg);
    const auto bursty = runFleet(bursty_cfg);
    EXPECT_GE(bursty.p99(), poisson.p99());
}

} // anonymous namespace
} // namespace neu10
