/**
 * @file
 * Cluster-layer tests: traffic generation (determinism, rate, shape),
 * fleet placement (capacity respected, policies differ), open-loop
 * serving (admission control, SLO accounting) and whole-fleet runs.
 */

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "cluster/fleet.hh"
#include "cluster/placement.hh"
#include "cluster/traffic.hh"
#include "common/logging.hh"
#include "runtime/serving.hh"
#include "sim/clock.hh"
#include "vnpu/allocator.hh"

namespace neu10
{
namespace
{

// ------------------------------------------------------- traffic

TEST(Traffic, FixedSeedYieldsIdenticalSchedule)
{
    for (auto shape : {TrafficShape::Poisson, TrafficShape::Bursty,
                       TrafficShape::Diurnal}) {
        TrafficSpec spec;
        spec.shape = shape;
        spec.ratePerSec = 20000.0;
        spec.seed = 7;
        const auto a = generateArrivals(spec, 5e6, 1.05e9);
        const auto b = generateArrivals(spec, 5e6, 1.05e9);
        ASSERT_EQ(a.size(), b.size())
            << trafficShapeName(shape);
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_DOUBLE_EQ(a[i], b[i]) << trafficShapeName(shape);
        ASSERT_FALSE(a.empty()) << trafficShapeName(shape);
    }
}

TEST(Traffic, SeedChangesSchedule)
{
    TrafficSpec spec;
    spec.ratePerSec = 20000.0;
    spec.seed = 7;
    const auto a = generateArrivals(spec, 5e6, 1.05e9);
    spec.seed = 8;
    const auto b = generateArrivals(spec, 5e6, 1.05e9);
    EXPECT_TRUE(a != b);
}

TEST(Traffic, ArrivalsSortedAndInHorizon)
{
    for (auto shape : {TrafficShape::Poisson, TrafficShape::Bursty,
                       TrafficShape::Diurnal}) {
        TrafficSpec spec;
        spec.shape = shape;
        spec.ratePerSec = 50000.0;
        const Cycles horizon = 2e6;
        const auto arr = generateArrivals(spec, horizon, 1.05e9);
        EXPECT_TRUE(std::is_sorted(arr.begin(), arr.end()));
        for (Cycles t : arr) {
            EXPECT_GE(t, 0.0);
            EXPECT_LT(t, horizon);
        }
    }
}

TEST(Traffic, MeanRateIsPreserved)
{
    // Every shape advertises ratePerSec as its long-run mean; check
    // within +/- 20% over a long window.
    const double freq = 1.05e9;
    const double rate = 100000.0;
    const Cycles horizon = 0.02 * freq; // 20 ms -> ~2000 arrivals
    for (auto shape : {TrafficShape::Poisson, TrafficShape::Bursty,
                       TrafficShape::Diurnal}) {
        TrafficSpec spec;
        spec.shape = shape;
        spec.ratePerSec = rate;
        spec.seed = 11;
        // Many burst cycles / whole diurnal periods must fit in the
        // window or the long-run mean cannot show.
        spec.burstDwellSec = 2e-4;
        spec.diurnalPeriodSec = 5e-3;
        const auto arr = generateArrivals(spec, horizon, freq);
        const double expected = rate * horizon / freq;
        EXPECT_GT(arr.size(), 0.8 * expected)
            << trafficShapeName(shape);
        EXPECT_LT(arr.size(), 1.2 * expected)
            << trafficShapeName(shape);
    }
}

TEST(Traffic, BurstyIsOverdispersed)
{
    // The MMPP's index of dispersion (variance/mean of per-window
    // counts) must sit clearly above the Poisson baseline of 1.
    const double freq = 1.05e9;
    auto dispersion = [&](TrafficShape shape) {
        TrafficSpec spec;
        spec.shape = shape;
        spec.ratePerSec = 200000.0;
        spec.seed = 3;
        const Cycles horizon = 0.02 * freq;
        const auto arr = generateArrivals(spec, horizon, freq);
        const int bins = 200;
        std::vector<double> counts(bins, 0.0);
        for (Cycles t : arr)
            counts[std::min<int>(bins - 1,
                                 static_cast<int>(t / horizon *
                                                  bins))] += 1.0;
        double mean = 0.0;
        for (double c : counts)
            mean += c;
        mean /= bins;
        double var = 0.0;
        for (double c : counts)
            var += (c - mean) * (c - mean);
        var /= bins;
        return var / mean;
    };
    EXPECT_LT(dispersion(TrafficShape::Poisson), 2.0);
    EXPECT_GT(dispersion(TrafficShape::Bursty), 2.5);
}

TEST(Traffic, DiurnalPeakBeatsTrough)
{
    // Phase 0: the sinusoid is above the mean over the first half of
    // each period and below it over the second half.
    const double freq = 1.05e9;
    TrafficSpec spec;
    spec.shape = TrafficShape::Diurnal;
    spec.ratePerSec = 200000.0;
    spec.diurnalDepth = 0.9;
    spec.diurnalPeriodSec = 0.02;
    const Cycles period = spec.diurnalPeriodSec * freq;
    const auto arr = generateArrivals(spec, period, freq);
    std::uint64_t first_half = 0, second_half = 0;
    for (Cycles t : arr)
        (t < period / 2 ? first_half : second_half) += 1;
    EXPECT_GT(first_half, 1.5 * second_half);
}

TEST(Traffic, TraceReplaysVerbatim)
{
    TrafficSpec spec;
    spec.shape = TrafficShape::Trace;
    spec.trace = {5.0, 1.0, 3.0, 1e12, -2.0};
    const auto arr = generateArrivals(spec, 10.0, 1.05e9);
    ASSERT_EQ(arr.size(), 3u); // out-of-horizon and negative dropped
    EXPECT_DOUBLE_EQ(arr[0], 1.0);
    EXPECT_DOUBLE_EQ(arr[1], 3.0);
    EXPECT_DOUBLE_EQ(arr[2], 5.0);
}

TEST(Traffic, NamesRoundTrip)
{
    for (auto shape : {TrafficShape::Poisson, TrafficShape::Bursty,
                       TrafficShape::Diurnal, TrafficShape::Trace})
        EXPECT_EQ(trafficShapeFromName(trafficShapeName(shape)),
                  shape);
    EXPECT_THROW(trafficShapeFromName("square-wave"), FatalError);
}

// ----------------------------------------------------- placement

PlacementRequest
req(unsigned mes, unsigned ves, Bytes hbm = 1_GiB, double load = 0.1)
{
    PlacementRequest r;
    r.nMes = mes;
    r.nVes = ves;
    r.hbmBytes = hbm;
    r.load = load;
    return r;
}

TEST(Placement, FirstFitPacksInIndexOrder)
{
    FleetPlacer placer(4, NpuCoreConfig{});
    EXPECT_EQ(placer.place(req(2, 2), PlacementPolicy::FirstFit), 0u);
    EXPECT_EQ(placer.place(req(2, 2), PlacementPolicy::FirstFit), 0u);
    EXPECT_EQ(placer.place(req(2, 2), PlacementPolicy::FirstFit), 1u);
}

TEST(Placement, LoadBalancedSpreads)
{
    FleetPlacer placer(4, NpuCoreConfig{});
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              0u);
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              1u);
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              2u);
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              3u);
    // All equally loaded again: wraps back to the emptiest.
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::LoadBalanced),
              0u);
}

TEST(Placement, BestFitPrefersTightestCore)
{
    FleetPlacer placer(3, NpuCoreConfig{});
    // Pre-load core 1 so it has the least EU headroom.
    ASSERT_EQ(placer.place(req(2, 2), PlacementPolicy::FirstFit), 0u);
    ASSERT_EQ(placer.place(req(3, 3), PlacementPolicy::LoadBalanced),
              1u);
    // Best fit tucks a 1+1 vNPU into core 1's 2-EU hole, not the
    // half-empty core 0 or the empty core 2.
    EXPECT_EQ(placer.place(req(1, 1), PlacementPolicy::BestFit), 1u);
}

TEST(Placement, EngineCapacityRespected)
{
    setLogLevel(LogLevel::Silent);
    FleetPlacer placer(2, NpuCoreConfig{});
    for (auto policy :
         {PlacementPolicy::FirstFit, PlacementPolicy::BestFit,
          PlacementPolicy::LoadBalanced}) {
        // 4ME/4VE per core: two 2+2 vNPUs fill one core.
        FleetPlacer p(2, NpuCoreConfig{});
        EXPECT_NE(p.place(req(2, 2), policy), kInvalidCore);
        EXPECT_NE(p.place(req(2, 2), policy), kInvalidCore);
        EXPECT_NE(p.place(req(2, 2), policy), kInvalidCore);
        EXPECT_NE(p.place(req(2, 2), policy), kInvalidCore);
        // Fleet is full now.
        EXPECT_EQ(p.place(req(1, 1), policy), kInvalidCore);
    }
    // A request larger than any single core never fits.
    EXPECT_EQ(placer.place(req(5, 1), PlacementPolicy::FirstFit),
              kInvalidCore);
    setLogLevel(LogLevel::Warn);
}

TEST(Placement, HbmCapacityRespected)
{
    NpuCoreConfig core; // 64 GiB HBM
    FleetPlacer placer(2, core);
    EXPECT_EQ(placer.place(req(1, 1, 40_GiB),
                           PlacementPolicy::FirstFit), 0u);
    // 40 GiB more does not fit core 0's remaining 24 GiB.
    EXPECT_EQ(placer.place(req(1, 1, 40_GiB),
                           PlacementPolicy::FirstFit), 1u);
    EXPECT_EQ(placer.place(req(1, 1, 40_GiB),
                           PlacementPolicy::FirstFit), kInvalidCore);
}

TEST(Placement, NamesRoundTrip)
{
    for (auto p : {PlacementPolicy::FirstFit, PlacementPolicy::BestFit,
                   PlacementPolicy::LoadBalanced})
        EXPECT_EQ(placementFromName(placementName(p)), p);
    EXPECT_THROW(placementFromName("worst-fit"), FatalError);
}

// ---------------------------------------------- open-loop serving

/** Open-loop single-tenant config calibrated against the allocator's
 * service-time estimate: rho = offered load / capacity. */
ServingConfig
openLoopConfig(double rho, unsigned depth, Cycles horizon = 3e7)
{
    const VnpuSizing sizing =
        sizeVnpuForModel(ModelId::Mnist, 8, 4, NpuCoreConfig{});
    const Cycles service = sizing.serviceEstimate();

    TrafficSpec traffic;
    traffic.ratePerSec = rho * 1.05e9 / service;
    traffic.seed = 5;

    ServingConfig cfg;
    cfg.mode = ServingMode::OpenLoop;
    cfg.policy = PolicyKind::Neu10;
    TenantSpec ts;
    ts.model = ModelId::Mnist;
    ts.batch = 8;
    ts.nMes = sizing.config.numMesPerCore;
    ts.nVes = sizing.config.numVesPerCore;
    ts.arrivals = generateArrivals(traffic, horizon, 1.05e9);
    ts.maxQueueDepth = depth;
    ts.sloCycles = 10.0 * service;
    cfg.tenants = {ts};
    cfg.maxCycles = 2e9;
    return cfg;
}

TEST(OpenLoop, LightLoadAdmitsEverything)
{
    const auto cfg = openLoopConfig(/*rho=*/0.3, /*depth=*/64);
    const auto r = runServing(cfg);
    const auto &t = r.tenants[0];
    EXPECT_EQ(t.submitted, cfg.tenants[0].arrivals.size());
    EXPECT_EQ(t.rejected, 0u);
    EXPECT_EQ(t.completed, t.submitted);
    EXPECT_GT(t.completed, 20u);
    // Light load: latencies comfortably inside the 10x-service SLO.
    EXPECT_EQ(t.sloMet, t.completed);
    EXPECT_GT(t.goodput, 0.0);
    EXPECT_LE(t.p50(), t.p95());
    EXPECT_LE(t.p95(), t.p99());
}

TEST(OpenLoop, SaturationRejectsBeyondQueueDepth)
{
    setLogLevel(LogLevel::Silent);
    // 3x overload with a shallow queue: admission control must shed.
    const auto cfg = openLoopConfig(/*rho=*/3.0, /*depth=*/4);
    const auto r = runServing(cfg);
    const auto &t = r.tenants[0];
    EXPECT_EQ(t.submitted, cfg.tenants[0].arrivals.size());
    EXPECT_GT(t.rejected, 0u);
    // Everything admitted eventually drains.
    EXPECT_EQ(t.completed + t.rejected, t.submitted);
    // Rejections should be roughly the overload excess (~2/3), not a
    // trickle and not everything.
    const double frac = static_cast<double>(t.rejected) /
                        static_cast<double>(t.submitted);
    EXPECT_GT(frac, 0.3);
    EXPECT_LT(frac, 0.9);
    setLogLevel(LogLevel::Warn);
}

TEST(OpenLoop, DeeperQueueTradesRejectionsForLatency)
{
    setLogLevel(LogLevel::Silent);
    const auto shallow =
        runServing(openLoopConfig(/*rho=*/2.0, /*depth=*/2));
    const auto deep =
        runServing(openLoopConfig(/*rho=*/2.0, /*depth=*/32));
    EXPECT_GT(shallow.tenants[0].rejected,
              deep.tenants[0].rejected);
    EXPECT_GT(deep.tenants[0].p95(), shallow.tenants[0].p95());
    setLogLevel(LogLevel::Warn);
}

TEST(OpenLoop, DeterministicAcrossRuns)
{
    const auto cfg = openLoopConfig(/*rho=*/0.8, /*depth=*/16);
    const auto a = runServing(cfg);
    const auto b = runServing(cfg);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.tenants[0].completed, b.tenants[0].completed);
    EXPECT_EQ(a.tenants[0].rejected, b.tenants[0].rejected);
    EXPECT_EQ(a.tenants[0].p99(), b.tenants[0].p99());
}

// --------------------------------------------------------- fleet

FleetConfig
smallFleet(PlacementPolicy placement, unsigned tenants = 8,
           TrafficShape shape = TrafficShape::Poisson)
{
    FleetConfig cfg;
    cfg.numBoards = 2;          // 2 boards x 4 cores = 8 cores
    cfg.placement = placement;
    cfg.horizon = 2e7;
    cfg.maxCycles = 2e9;

    const ModelId models[] = {ModelId::Mnist, ModelId::Ncf};
    for (unsigned i = 0; i < tenants; ++i) {
        ClusterTenantSpec t;
        t.model = models[i % 2];
        t.batch = 8;
        t.eus = 4;
        t.traffic.shape = shape;
        t.traffic.ratePerSec = 4000.0;
        t.traffic.seed = 100 + i;
        t.sloCycles = 2e6;
        t.maxQueueDepth = 16;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

TEST(Fleet, EndToEndServesAndAccounts)
{
    const auto r = runFleet(smallFleet(PlacementPolicy::LoadBalanced));
    EXPECT_EQ(r.unplacedTenants, 0u);
    EXPECT_GT(r.submitted, 0u);
    EXPECT_GT(r.completed, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_GT(r.goodput, 0.0);
    EXPECT_LE(r.p50(), r.p95());
    EXPECT_LE(r.p95(), r.p99());
    EXPECT_EQ(r.latencyCycles.count(), r.completed);
    EXPECT_EQ(r.cores.size(), 8u);
    EXPECT_EQ(r.coreMeUtil.count(), 8u);

    // Per-core completion counts add up to the fleet total.
    std::uint64_t core_sum = 0;
    for (const auto &c : r.cores)
        core_sum += c.completed;
    EXPECT_EQ(core_sum, r.completed);
}

TEST(Fleet, DeterministicAcrossRuns)
{
    const auto cfg = smallFleet(PlacementPolicy::BestFit);
    const auto a = runFleet(cfg);
    const auto b = runFleet(cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.p99(), b.p99());
    for (size_t i = 0; i < a.placements.size(); ++i)
        EXPECT_EQ(a.placements[i].core, b.placements[i].core);
}

TEST(Fleet, PlacementRespectsCoreCapacity)
{
    for (auto policy :
         {PlacementPolicy::FirstFit, PlacementPolicy::BestFit,
          PlacementPolicy::LoadBalanced}) {
        const auto cfg = smallFleet(policy, /*tenants=*/12);
        const auto r = runFleet(cfg);
        const NpuCoreConfig core;
        std::vector<unsigned> mes(cfg.totalCores(), 0);
        std::vector<unsigned> ves(cfg.totalCores(), 0);
        std::vector<Bytes> hbm(cfg.totalCores(), 0);
        for (const auto &pl : r.placements) {
            if (!pl.placed())
                continue;
            ASSERT_LT(pl.core, cfg.totalCores());
            EXPECT_GE(pl.nMes, 1u);
            EXPECT_GE(pl.nVes, 1u);
            mes[pl.core] += pl.nMes;
            ves[pl.core] += pl.nVes;
            hbm[pl.core] += pl.hbmBytes;
        }
        for (CoreId c = 0; c < cfg.totalCores(); ++c) {
            EXPECT_LE(mes[c], core.numMes) << placementName(policy);
            EXPECT_LE(ves[c], core.numVes) << placementName(policy);
            EXPECT_LE(hbm[c], core.hbmBytes) << placementName(policy);
        }
    }
}

TEST(Fleet, OversizedTenantIsRejectedWholesale)
{
    auto cfg = smallFleet(PlacementPolicy::FirstFit, /*tenants=*/2);
    cfg.tenants[1].eus = 12; // cannot fit a 4ME/4VE core
    const auto r = runFleet(cfg);
    EXPECT_EQ(r.unplacedTenants, 1u);
    EXPECT_FALSE(r.placements[1].placed());
    EXPECT_GT(r.tenants[1].submitted, 0u);
    EXPECT_EQ(r.tenants[1].rejected, r.tenants[1].submitted);
    EXPECT_EQ(r.tenants[1].completed, 0u);
    // Tenant 0 is unaffected.
    EXPECT_GT(r.tenants[0].completed, 0u);
}

TEST(Fleet, PoliciesProduceDifferentPackings)
{
    // 4 light tenants on 8 cores: first-fit doubles them up on the
    // first cores, load-balanced spreads them out.
    const auto ff =
        runFleet(smallFleet(PlacementPolicy::FirstFit, 4));
    const auto lb =
        runFleet(smallFleet(PlacementPolicy::LoadBalanced, 4));
    auto occupied = [](const FleetResult &r) {
        unsigned n = 0;
        for (const auto &c : r.cores)
            n += c.tenants > 0;
        return n;
    };
    EXPECT_LT(occupied(ff), occupied(lb));

    // Imbalance shows in the per-core utilization spread.
    EXPECT_GT(ff.coreMeUtil.stddev(), lb.coreMeUtil.stddev());
}

TEST(Fleet, BurstyTrafficHurtsTails)
{
    // Same mean rate, burstier stream: the fleet's p99 should be no
    // better, and queue rejections should not decrease.
    auto poisson_cfg =
        smallFleet(PlacementPolicy::LoadBalanced, 8,
                   TrafficShape::Poisson);
    auto bursty_cfg =
        smallFleet(PlacementPolicy::LoadBalanced, 8,
                   TrafficShape::Bursty);
    for (auto *cfg : {&poisson_cfg, &bursty_cfg})
        for (auto &t : cfg->tenants) {
            t.traffic.ratePerSec = 12000.0;
            t.maxQueueDepth = 8;
        }
    const auto poisson = runFleet(poisson_cfg);
    const auto bursty = runFleet(bursty_cfg);
    EXPECT_GE(bursty.p99(), poisson.p99());
}

} // anonymous namespace
} // namespace neu10
