/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * cancellation, time limits, clock conversions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "sim/clock.hh"
#include "sim/event_queue.hh"

namespace neu10
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30.0, [&](Cycles) { order.push_back(3); });
    q.schedule(10.0, [&](Cycles) { order.push_back(1); });
    q.schedule(20.0, [&](Cycles) { order.push_back(2); });
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, TieBrokenByPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5.0, [&](Cycles) { order.push_back(2); },
               EventPriority::Schedule);
    q.schedule(5.0, [&](Cycles) { order.push_back(0); },
               EventPriority::Completion);
    q.schedule(5.0, [&](Cycles) { order.push_back(3); },
               EventPriority::Schedule);
    q.schedule(5.0, [&](Cycles) { order.push_back(1); },
               EventPriority::Arrival);
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10.0, [&](Cycles) { ran = true; });
    q.deschedule(id);
    q.runUntil();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DescheduleTwiceIsNoop)
{
    EventQueue q;
    EventId id = q.schedule(1.0, [](Cycles) {});
    q.deschedule(id);
    EXPECT_NO_THROW(q.deschedule(id));
    q.runUntil();
}

TEST(EventQueue, EventsScheduleEvents)
{
    EventQueue q;
    std::vector<Cycles> times;
    q.schedule(1.0, [&](Cycles now) {
        times.push_back(now);
        q.schedule(now + 4.0, [&](Cycles t2) { times.push_back(t2); });
    });
    q.runUntil();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10.0, [&](Cycles) { ++fired; });
    q.schedule(20.0, [&](Cycles) { ++fired; });
    q.runUntil(15.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 15.0);
    q.runUntil(20.0); // inclusive limit: event at exactly 20 runs
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    setLogLevel(LogLevel::Silent);
    EventQueue q;
    q.schedule(10.0, [](Cycles) {});
    q.runUntil();
    EXPECT_THROW(q.schedule(5.0, [](Cycles) {}), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(EventQueue, NextEventTimeSkipsCancelled)
{
    EventQueue q;
    EventId a = q.schedule(5.0, [](Cycles) {});
    q.schedule(9.0, [](Cycles) {});
    q.deschedule(a);
    EXPECT_DOUBLE_EQ(q.nextEventTime(), 9.0);
}

TEST(EventQueue, NextEventTimeEmptyIsInf)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventTime(), kCyclesInf);
}

TEST(EventQueue, StepRunsExactlyOne)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&](Cycles) { ++fired; });
    q.schedule(2.0, [&](Cycles) { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, PendingAndExecutedCounts)
{
    EventQueue q;
    q.schedule(1.0, [](Cycles) {});
    q.schedule(2.0, [](Cycles) {});
    EXPECT_EQ(q.pending(), 2u);
    q.runUntil();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, ZeroDelaySelfEventAdvances)
{
    EventQueue q;
    int count = 0;
    std::function<void(Cycles)> chain = [&](Cycles now) {
        if (++count < 5)
            q.schedule(now, chain);
    };
    q.schedule(0.0, chain);
    q.runUntil(100.0);
    EXPECT_EQ(count, 5);
}

TEST(Clock, DefaultMatchesTableII)
{
    Clock c;
    EXPECT_DOUBLE_EQ(c.freqHz(), 1.05e9);
}

TEST(Clock, RoundTripConversions)
{
    Clock c(1.0e9);
    EXPECT_DOUBLE_EQ(c.toSeconds(1e9), 1.0);
    EXPECT_DOUBLE_EQ(c.toCycles(2.0), 2e9);
    EXPECT_DOUBLE_EQ(c.toCycles(c.toSeconds(12345.0)), 12345.0);
}

TEST(Clock, BandwidthConversions)
{
    Clock c(1.2e9);
    // 1 byte/cycle at 1.2 GHz = 1.2 GB/s.
    EXPECT_DOUBLE_EQ(c.toBytesPerSec(1.0), 1.2e9);
    EXPECT_DOUBLE_EQ(c.toBytesPerCycle(1.2e9), 1.0);
}

} // anonymous namespace
} // namespace neu10
