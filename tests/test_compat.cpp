/**
 * @file
 * The paper's central ISA claim (§III-D, §IV, Fig. 9) as tests:
 *
 *  - a NeuISA binary compiled ONCE runs on any engine allocation and
 *    speeds up as engines are added — no recompilation;
 *  - the same binary runs unchanged on a bigger next-generation core
 *    (inter-generational compatibility);
 *  - a classic VLIW binary is pinned to its compiled width: extra
 *    engines buy nothing (Fig. 9 right), which is exactly what NeuISA
 *    removes.
 *
 * Plus §IV's multi-chip data parallelism via DataParallelRunner.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "models/zoo.hh"
#include "npu/core_sim.hh"
#include "runtime/parallel.hh"
#include "sched/policy.hh"

namespace neu10
{
namespace
{

Cycles
soloRun(const CompiledModel &prog, const NpuCoreConfig &cfg,
        unsigned slot_mes, unsigned slot_ves, PolicyKind kind)
{
    EventQueue queue;
    std::vector<VnpuSlot> slots(1);
    slots[0].nMes = slot_mes;
    slots[0].nVes = slot_ves;
    NpuCoreSim core(queue, cfg, makePolicy(kind), slots);
    Cycles latency = -1.0;
    core.submit(0, &prog,
                [&](const RequestResult &r) { latency = r.latency(); });
    queue.runUntil();
    EXPECT_GE(latency, 0.0);
    return latency;
}

TEST(Compat, NeuIsaBinaryScalesWithoutRecompilation)
{
    // Compile once against the 4ME/4VE core; run on 1, 2, then 4
    // allocated MEs. Fig. 9's VLIW problem ("cannot scale") is gone.
    const NpuCoreConfig cfg;
    const CompiledModel prog = lowerToNeuIsa(
        buildModel(ModelId::ResNet, 8), cfg.numMes, cfg.numVes,
        cfg.machine());

    const Cycles l1 = soloRun(prog, cfg, 1, 4, PolicyKind::Neu10NH);
    const Cycles l2 = soloRun(prog, cfg, 2, 4, PolicyKind::Neu10NH);
    const Cycles l4 = soloRun(prog, cfg, 4, 4, PolicyKind::Neu10NH);
    EXPECT_GT(l1, 1.5 * l2);
    EXPECT_GT(l2, 1.2 * l4);
}

TEST(Compat, SameBinaryRunsOnNextGenerationCore)
{
    // §IV: "a DNN program runs on different numbers of MEs/VEs
    // without recompilation... compatibility across generations".
    const NpuCoreConfig gen1;
    const CompiledModel prog = lowerToNeuIsa(
        buildModel(ModelId::EfficientNet, 8), gen1.numMes, gen1.numVes,
        gen1.machine());

    NpuCoreConfig gen2 = gen1;    // next gen: twice the engines
    gen2.numMes = 8;
    gen2.numVes = 8;
    gen2.hbmBytesPerSec = 2.4e12;

    const Cycles old_core =
        soloRun(prog, gen1, 4, 4, PolicyKind::Neu10);
    const Cycles new_core =
        soloRun(prog, gen2, 8, 8, PolicyKind::Neu10);
    EXPECT_LT(new_core, old_core);
}

TEST(Compat, VliwBinaryCannotUseExtraEngines)
{
    // Fig. 9 (right): the classic binary is compiled for 4 MEs; on an
    // 8-ME core its gang still occupies exactly 4 and latency does
    // not improve.
    const NpuCoreConfig gen1;
    const CompiledModel prog = lowerToVliw(
        buildModel(ModelId::ResNet, 8), gen1.numMes, gen1.numVes,
        gen1.machine());

    NpuCoreConfig gen2 = gen1;
    gen2.numMes = 8;
    gen2.numVes = 8;

    const Cycles on4 = soloRun(prog, gen1, 4, 4, PolicyKind::V10);
    const Cycles on8 = soloRun(prog, gen2, 8, 8, PolicyKind::V10);
    EXPECT_NEAR(on8, on4, on4 * 0.02);

    // The NeuISA build of the same model *does* exploit the bigger
    // core (compiled against it, as a new deployment would).
    const CompiledModel neu8 = lowerToNeuIsa(
        buildModel(ModelId::ResNet, 8), 8, 8, gen2.machine());
    const Cycles neu_on8 =
        soloRun(neu8, gen2, 8, 8, PolicyKind::Neu10);
    EXPECT_LT(neu_on8, 0.7 * on8);
}

TEST(Compat, SplitBatchConservesSamples)
{
    const auto shards = splitBatch(ModelId::ResNet, 32, 3);
    ASSERT_EQ(shards.size(), 3u);
    unsigned total = 0;
    for (const auto &g : shards) {
        EXPECT_GE(g.batch, 1u);
        total += g.batch;
    }
    EXPECT_EQ(total, 32u);
}

TEST(Compat, SplitBatchRejectsImpossibleSplit)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(splitBatch(ModelId::ResNet, 2, 3), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(Compat, DataParallelismAcrossTwoCores)
{
    // §IV: multi-chip inference with data parallelism — a batch-32
    // request split over two cores beats the single-core run.
    const NpuCoreConfig cfg;
    EventQueue queue;

    std::vector<VnpuSlot> slot_template(1);
    slot_template[0].nMes = 4;
    slot_template[0].nVes = 4;
    NpuCoreSim core_a(queue, cfg, makePolicy(PolicyKind::Neu10),
                      slot_template);
    NpuCoreSim core_b(queue, cfg, makePolicy(PolicyKind::Neu10),
                      slot_template);

    const auto graphs = splitBatch(ModelId::ResNet, 32, 2);
    std::vector<CompiledModel> progs;
    for (const auto &g : graphs)
        progs.push_back(
            lowerToNeuIsa(g, cfg.numMes, cfg.numVes, cfg.machine()));

    DataParallelRunner runner(
        {{&core_a, 0, &progs[0]}, {&core_b, 0, &progs[1]}});
    Cycles dp_finish = -1.0;
    runner.submit([&](Cycles t) { dp_finish = t; });
    queue.runUntil();
    ASSERT_GT(dp_finish, 0.0);

    // Single-core reference with the full batch.
    const CompiledModel full = lowerToNeuIsa(
        buildModel(ModelId::ResNet, 32), cfg.numMes, cfg.numVes,
        cfg.machine());
    const Cycles solo = soloRun(full, cfg, 4, 4, PolicyKind::Neu10);
    EXPECT_LT(dp_finish, 0.7 * solo);
}

TEST(Compat, DataParallelCompletionWaitsForSlowestShard)
{
    const NpuCoreConfig cfg;
    EventQueue queue;
    std::vector<VnpuSlot> slots(1);
    slots[0].nMes = 4;
    slots[0].nVes = 4;
    NpuCoreSim fast(queue, cfg, makePolicy(PolicyKind::Neu10), slots);
    std::vector<VnpuSlot> small(1);
    small[0].nMes = 1;
    small[0].nVes = 1;
    NpuCoreSim slow(queue, cfg, makePolicy(PolicyKind::Neu10NH), small);

    const CompiledModel prog = lowerToNeuIsa(
        buildModel(ModelId::Mnist, 8), cfg.numMes, cfg.numVes,
        cfg.machine());
    DataParallelRunner runner({{&fast, 0, &prog}, {&slow, 0, &prog}});

    Cycles dp_finish = -1.0;
    runner.submit([&](Cycles t) { dp_finish = t; });
    queue.runUntil();

    const Cycles slow_alone =
        soloRun(prog, cfg, 1, 1, PolicyKind::Neu10NH);
    EXPECT_NEAR(dp_finish, slow_alone, slow_alone * 0.05);
}

} // anonymous namespace
} // namespace neu10
