/**
 * @file
 * Scenario-file parser suite (CTest label `scenario`): the
 * declarative scenario format (src/scenario, docs/SCENARIOS.md) must
 * accept every documented construct, reject every malformed one with
 * a file:line diagnostic whose wording names the offending text and
 * the accepted vocabulary, and expand into engine configs with the
 * exact expressions the hand-wired benches use.
 *
 * The negative-path cases pin the diagnostic wording on purpose: a
 * scenario author's only debugging tool is the error message, so a
 * regression from "test.scn:5: unknown key 'bogus' in section
 * [fleet]; valid keys: ..." to a bare "parse error" is a real bug.
 *
 * Env-override precedence (NEU10_SEED / NEU10_SMOKE / NEU10_TRACE /
 * NEU10_TRACE_OUT beat file values) is covered here too — this is
 * the regression net for the bench_util dedupe onto
 * applyEnvOverrides.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/logging.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "vnpu/allocator.hh"

namespace neu10
{
namespace
{

Scenario
parse(const std::string &text)
{
    return parseScenario(text, "test.scn");
}

/** Parse must fail, and the diagnostic must contain @p needle (which
 * includes the "test.scn:<line>:" prefix where the test pins it). */
void
expectError(const std::string &text, const std::string &needle)
{
    try {
        parseScenario(text, "test.scn");
        ADD_FAILURE() << "expected FatalError, parsed OK:\n" << text;
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find(needle),
                  std::string::npos)
            << "diagnostic \"" << err.what()
            << "\" does not mention \"" << needle << "\"";
    }
}

/** A minimal valid open-loop scenario to splice test lines into. */
const char *const kMinimal =
    "[scenario]\n"
    "name = t\n"
    "[fleet]\n"
    "horizon = 1e6\n"
    "[tenant.a]\n"
    "model = MNIST\n"
    "eus = 2\n"
    "rho = 0.5\n";

/** Set (or with nullptr: unset) an environment variable for one
 * test, restoring the previous state on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    std::string name_;
    std::string old_;
    bool had_ = false;
};

// ------------------------------------------------------- positives

TEST(ScenarioParse, MinimalOpenLoopDefaults)
{
    const Scenario s = parse(kMinimal);
    EXPECT_EQ(s.name, "t");
    EXPECT_EQ(s.file, "test.scn");
    EXPECT_EQ(s.mode, ScenarioMode::OpenLoop);
    EXPECT_EQ(s.boards, 4u);
    EXPECT_EQ(s.placement, PlacementPolicy::FirstFit);
    EXPECT_EQ(s.corePolicy, PolicyKind::Neu10);
    EXPECT_EQ(s.engine, SimEngine::EventDriven);
    EXPECT_EQ(s.threads, 1u);
    EXPECT_EQ(s.horizon, 1e6);
    EXPECT_EQ(s.smokeHorizon, 0.0);
    EXPECT_EQ(s.maxCycles, 0.0);
    EXPECT_EQ(s.maxCyclesFactor, 50.0);
    EXPECT_EQ(s.seed, 1u);
    EXPECT_TRUE(s.roundRobin);
    EXPECT_TRUE(s.failover);
    EXPECT_TRUE(s.faults.empty());
    EXPECT_FALSE(s.trace.enabled);
    EXPECT_FALSE(s.smoke);
    ASSERT_EQ(s.groups.size(), 1u);
    const ScenarioTenantGroup &g = s.groups[0];
    EXPECT_EQ(g.name, "a");
    EXPECT_EQ(g.model, ModelId::Mnist);
    EXPECT_EQ(g.batch, 32u);
    EXPECT_EQ(g.count, 1u);
    EXPECT_EQ(g.eus, 2u);
    EXPECT_EQ(g.rho, 0.5);
    EXPECT_LT(g.ratePerSec, 0.0);
    EXPECT_EQ(g.traffic.shape, TrafficShape::Poisson);
    EXPECT_EQ(g.maxQueueDepth, 64u);
    EXPECT_EQ(g.priority, 1.0);
    EXPECT_FALSE(g.hasSeed);
    EXPECT_EQ(s.totalTenants(), 1u);
}

TEST(ScenarioParse, FullFleetKnobs)
{
    const Scenario s = parse(
        "[scenario]\n"
        "name = full\n"
        "description = every fleet knob\n"
        "[fleet]\n"
        "mode = open-loop\n"
        "boards = 2\n"
        "chips-per-board = 3\n"
        "cores-per-chip = 4\n"
        "placement = load-balanced\n"
        "core-policy = pmt\n"
        "engine = per-cycle\n"
        "threads = 0\n"
        "horizon = 2e6\n"
        "smoke-horizon = 1e5\n"
        "max-cycles = 8e7\n"
        "max-cycles-factor = 10\n"
        "seed = 99\n"
        "tenant-order = grouped\n"
        "[elastic]\n"
        "epochs = 6\n"
        "imbalance-threshold = 0.25\n"
        "max-migrations-per-epoch = 2\n"
        "migration-cost = 1e5\n"
        "resize-on-migrate = off\n"
        "grow-factor = 1.5\n"
        "[resilience]\n"
        "failover = off\n"
        "recovery-stall = 3e5\n"
        "[trace]\n"
        "enabled = on\n"
        "engine-events = on\n"
        "metrics = on\n"
        "out = my.trace.json\n"
        "[tenant.a]\n"
        "model = NCF\n"
        "eus = 4\n"
        "rate-per-sec = 1000\n");
    EXPECT_EQ(s.description, "every fleet knob");
    EXPECT_EQ(s.boards, 2u);
    EXPECT_EQ(s.board.numChips, 3u);
    EXPECT_EQ(s.board.coresPerChip, 4u);
    EXPECT_EQ(s.totalCores(), 2u * 3u * 4u);
    EXPECT_EQ(s.placement, PlacementPolicy::LoadBalanced);
    EXPECT_EQ(s.corePolicy, PolicyKind::Pmt);
    EXPECT_EQ(s.engine, SimEngine::PerCycle);
    EXPECT_EQ(s.threads, 0u);
    EXPECT_EQ(s.horizon, 2e6);
    EXPECT_EQ(s.smokeHorizon, 1e5);
    EXPECT_EQ(s.maxCycles, 8e7);
    EXPECT_EQ(s.maxCyclesFactor, 10.0);
    EXPECT_EQ(s.seed, 99u);
    EXPECT_FALSE(s.roundRobin);
    EXPECT_EQ(s.elastic.epochs, 6u);
    EXPECT_EQ(s.elastic.imbalanceThreshold, 0.25);
    EXPECT_EQ(s.elastic.maxMigrationsPerEpoch, 2u);
    EXPECT_EQ(s.elastic.migrationCostCycles, 1e5);
    EXPECT_FALSE(s.elastic.resizeOnMigrate);
    EXPECT_EQ(s.elastic.growFactor, 1.5);
    EXPECT_FALSE(s.failover);
    EXPECT_EQ(s.recoveryStallCycles, 3e5);
    EXPECT_TRUE(s.trace.enabled);
    EXPECT_TRUE(s.trace.engineEvents);
    EXPECT_TRUE(s.trace.metrics);
    EXPECT_EQ(s.traceOut, "my.trace.json");
    ASSERT_EQ(s.groups.size(), 1u);
    EXPECT_EQ(s.groups[0].ratePerSec, 1000.0);
    EXPECT_LT(s.groups[0].rho, 0.0);
}

TEST(ScenarioParse, CommentsAndWhitespace)
{
    const Scenario s = parse(
        "# full-line comment\n"
        "\n"
        "  [scenario]   # trailing comment\n"
        "  name   =   spaced out   \n"
        "[fleet]\n"
        "horizon = 1e6  # cycles\n"
        "[tenant.a]\n"
        "model = mnist\n"   // abbrev matching is case-insensitive
        "eus = 2\n"
        "rho = 0.5\n");
    EXPECT_EQ(s.name, "spaced out");
    EXPECT_EQ(s.groups[0].model, ModelId::Mnist);
}

TEST(ScenarioParse, TenantTrafficAndSloKnobs)
{
    const Scenario s = parse(
        "[scenario]\n"
        "name = knobs\n"
        "[fleet]\n"
        "horizon = 1e6\n"
        "[tenant.burst]\n"
        "model = DLRM\n"
        "batch = 16\n"
        "count = 3\n"
        "eus = 4\n"
        "rho = 0.7\n"
        "shape = bursty\n"
        "burst-multiplier = 6\n"
        "burst-fraction = 0.2\n"
        "burst-dwell-sec = 0.005\n"
        "slo-cycles = 123456\n"
        "max-queue-depth = 16\n"
        "priority = 2.5\n"
        "seed = 1000\n"
        "[tenant.day]\n"
        "model = RsNt\n"
        "batch = 8\n"
        "eus = 6\n"
        "rate-per-sec = 50\n"
        "shape = diurnal\n"
        "diurnal-depth = 0.9\n"
        "diurnal-period-sec = 0.5\n"
        "diurnal-phase = 0.25\n"
        "slo-factor = 7\n");
    ASSERT_EQ(s.groups.size(), 2u);
    const ScenarioTenantGroup &b = s.groups[0];
    EXPECT_EQ(b.model, ModelId::Dlrm);
    EXPECT_EQ(b.batch, 16u);
    EXPECT_EQ(b.count, 3u);
    EXPECT_EQ(b.traffic.shape, TrafficShape::Bursty);
    EXPECT_EQ(b.traffic.burstMultiplier, 6.0);
    EXPECT_EQ(b.traffic.burstFraction, 0.2);
    EXPECT_EQ(b.traffic.burstDwellSec, 0.005);
    EXPECT_TRUE(b.hasSloCycles);
    EXPECT_EQ(b.sloCycles, 123456.0);
    EXPECT_EQ(b.maxQueueDepth, 16u);
    EXPECT_EQ(b.priority, 2.5);
    EXPECT_TRUE(b.hasSeed);
    EXPECT_EQ(b.seed, 1000u);
    const ScenarioTenantGroup &d = s.groups[1];
    EXPECT_EQ(d.model, ModelId::ResNet);
    EXPECT_EQ(d.traffic.shape, TrafficShape::Diurnal);
    EXPECT_EQ(d.traffic.diurnalDepth, 0.9);
    EXPECT_EQ(d.traffic.diurnalPeriodSec, 0.5);
    EXPECT_EQ(d.traffic.diurnalPhase, 0.25);
    EXPECT_EQ(d.sloFactor, 7.0);
    EXPECT_EQ(s.totalTenants(), 4u);
}

TEST(ScenarioParse, FaultLines)
{
    const Scenario s = parse(
        "[scenario]\n"
        "name = faults\n"
        "[fleet]\n"
        "horizon = 1e6\n"
        "[faults]\n"
        "fault = board-loss at-frac=0.3 board=1 duration=inf\n"
        "fault = core-stall at=5e5 core=7 duration=1e4\n"
        "fault = transient-mmio at=1e5 core=0\n"
        "fault = repair at=9e5 board=1\n"
        "[tenant.a]\n"
        "model = MNIST\n"
        "eus = 2\n"
        "rho = 0.5\n");
    ASSERT_EQ(s.faults.size(), 4u);
    EXPECT_EQ(s.faults[0].kind, FaultKind::BoardLoss);
    EXPECT_EQ(s.faults[0].atFrac, 0.3);
    EXPECT_LT(s.faults[0].at, 0.0);
    EXPECT_TRUE(s.faults[0].hasBoard);
    EXPECT_EQ(s.faults[0].board, 1u);
    EXPECT_TRUE(std::isinf(s.faults[0].durationCycles));
    EXPECT_EQ(s.faults[1].kind, FaultKind::CoreStall);
    EXPECT_EQ(s.faults[1].at, 5e5);
    EXPECT_EQ(s.faults[1].core, 7u);
    EXPECT_EQ(s.faults[1].durationCycles, 1e4);
    EXPECT_EQ(s.faults[2].kind, FaultKind::TransientMmio);
    EXPECT_EQ(s.faults[3].kind, FaultKind::Repair);
}

TEST(ScenarioParse, ClosedLoop)
{
    const Scenario s = parse(
        "[scenario]\n"
        "name = pair\n"
        "[fleet]\n"
        "mode = closed-loop\n"
        "core-policy = v10\n"
        "min-requests = 10\n"
        "smoke-min-requests = 3\n"
        "max-cycles = 3e9\n"
        "[tenant.bert]\n"
        "model = BERT\n"
        "batch = 32\n"
        "mes = 2\n"
        "ves = 2\n"
        "outstanding = 2\n"
        "priority = 2\n"
        "[tenant.enet]\n"
        "model = ENet\n"
        "mes = 2\n"
        "ves = 2\n");
    EXPECT_EQ(s.mode, ScenarioMode::ClosedLoop);
    EXPECT_EQ(s.corePolicy, PolicyKind::V10);
    EXPECT_EQ(s.minRequests, 10u);
    EXPECT_EQ(s.smokeMinRequests, 3u);
    EXPECT_EQ(s.maxCycles, 3e9);
    ASSERT_EQ(s.groups.size(), 2u);
    EXPECT_EQ(s.groups[0].model, ModelId::Bert);
    EXPECT_EQ(s.groups[0].nMes, 2u);
    EXPECT_EQ(s.groups[0].nVes, 2u);
    EXPECT_EQ(s.groups[0].outstanding, 2u);
    EXPECT_EQ(s.groups[0].priority, 2.0);
    EXPECT_EQ(s.groups[1].model, ModelId::EfficientNet);
}

TEST(ScenarioParse, SmokeSwap)
{
    Scenario s = parse(
        "[scenario]\n"
        "name = t\n"
        "[fleet]\n"
        "horizon = 1e8\n"
        "smoke-horizon = 1e6\n"
        "[tenant.a]\n"
        "model = MNIST\n"
        "eus = 2\n"
        "rho = 0.5\n");
    EXPECT_EQ(s.effectiveHorizon(), 1e8);
    s.smoke = true;
    EXPECT_EQ(s.effectiveHorizon(), 1e6);

    // Without a smoke-horizon the full horizon stands even in smoke
    // mode — a scenario opts into shrinking explicitly.
    Scenario noswap = parse(kMinimal);
    noswap.smoke = true;
    EXPECT_EQ(noswap.effectiveHorizon(), 1e6);

    Scenario closed = parse(
        "[scenario]\n"
        "name = t\n"
        "[fleet]\n"
        "mode = closed-loop\n"
        "min-requests = 20\n"
        "[tenant.a]\n"
        "model = MNIST\n"
        "mes = 2\n"
        "ves = 2\n");
    EXPECT_EQ(closed.effectiveMinRequests(), 20u);
    closed.smoke = true;
    EXPECT_EQ(closed.effectiveMinRequests(), 20u); // no smoke knob
    closed.smokeMinRequests = 5;
    EXPECT_EQ(closed.effectiveMinRequests(), 5u);
}

TEST(ScenarioParse, ModeNames)
{
    EXPECT_EQ(scenarioModeName(ScenarioMode::OpenLoop), "open-loop");
    EXPECT_EQ(scenarioModeName(ScenarioMode::ClosedLoop),
              "closed-loop");
}

// ------------------------------------------- syntax negative paths

TEST(ScenarioErrors, MalformedSectionHeader)
{
    expectError("[fleet\nhorizon = 1\n",
                "test.scn:1: malformed section header '[fleet'");
}

TEST(ScenarioErrors, EmptySectionName)
{
    expectError("[]\n", "test.scn:1: empty section name '[]'");
}

TEST(ScenarioErrors, DuplicateSection)
{
    expectError("[fleet]\nhorizon = 1e6\n[fleet]\n",
                "test.scn:3: duplicate section [fleet]");
}

TEST(ScenarioErrors, MissingEquals)
{
    expectError("[fleet]\nhorizon 1e6\n",
                "test.scn:2: expected 'key = value' or '[section]', "
                "got 'horizon 1e6'");
}

TEST(ScenarioErrors, MissingKey)
{
    expectError("[fleet]\n= 5\n",
                "test.scn:2: missing key before '='");
}

TEST(ScenarioErrors, EmptyValue)
{
    expectError("[fleet]\nhorizon =\n",
                "test.scn:2: key 'horizon' has an empty value");
}

TEST(ScenarioErrors, KeyBeforeSection)
{
    expectError("horizon = 1e6\n",
                "test.scn:1: key 'horizon' appears before any "
                "[section] header");
}

TEST(ScenarioErrors, DuplicateKey)
{
    expectError("[fleet]\nhorizon = 1e6\nhorizon = 2e6\n",
                "test.scn:3: duplicate key 'horizon' in section "
                "[fleet]");
}

TEST(ScenarioErrors, UnknownSection)
{
    expectError("[scenario]\nname = t\n[turbo]\n",
                "test.scn:3: unknown section [turbo]; valid "
                "sections: [scenario], [fleet], [elastic], "
                "[resilience], [faults], [llm], [trace], "
                "[tenant.<name>]");
}

// --------------------------------------- vocabulary negative paths

TEST(ScenarioErrors, UnknownFleetKey)
{
    expectError("[scenario]\nname = t\n[fleet]\nbogus = 1\n",
                "test.scn:4: unknown key 'bogus' in section [fleet]; "
                "valid keys: mode, boards,");
}

TEST(ScenarioErrors, UnknownMode)
{
    expectError("[fleet]\nmode = sideways\n",
                "test.scn:2: unknown mode 'sideways'; valid modes "
                "are 'open-loop' and 'closed-loop'");
}

TEST(ScenarioErrors, UnknownTenantOrder)
{
    expectError("[fleet]\ntenant-order = shuffled\n",
                "test.scn:2: unknown tenant-order 'shuffled'");
}

TEST(ScenarioErrors, UnknownPlacementCarriesFileLine)
{
    // Vocabulary parsers (placementFromName & co.) are re-raised
    // with the file:line prefix so the author lands on the line.
    expectError("[fleet]\nplacement = pile-up\n", "test.scn:2: ");
    expectError("[fleet]\nplacement = pile-up\n", "pile-up");
}

TEST(ScenarioErrors, UnknownModel)
{
    expectError("[scenario]\nname = t\n[tenant.a]\nmodel = GPT9\n",
                "test.scn:4: ");
}

TEST(ScenarioErrors, UnknownTenantKey)
{
    expectError("[scenario]\nname = t\n[tenant.a]\nwarp = 9\n",
                "test.scn:4: unknown key 'warp' in section "
                "[tenant.a]; valid keys: model, batch,");
}

TEST(ScenarioErrors, UnknownFaultKind)
{
    expectError("[faults]\nfault = gamma-ray at=1 core=0\n",
                "test.scn:2: ");
}

// ------------------------------------------- [llm] section paths

/** A minimal valid LLM-serving scenario to splice test lines into. */
const char *const kMinimalLlm =
    "[scenario]\n"
    "name = t\n"
    "[fleet]\n"
    "horizon = 1e6\n"
    "[llm]\n"
    "scheduler = continuous\n"
    "[tenant.a]\n"
    "model = LLaMA\n"
    "eus = 8\n"
    "rate-per-sec = 5\n";

TEST(ScenarioParse, LlmSectionParses)
{
    const Scenario s = parse(
        "[scenario]\n"
        "name = t\n"
        "[fleet]\n"
        "horizon = 1e6\n"
        "[llm]\n"
        "scheduler = static-batch\n"
        "page-tokens = 32\n"
        "max-batch = 24\n"
        "prompt-tokens = 256\n"
        "prompt-tokens-max = 512\n"
        "output-tokens = 16\n"
        "output-tokens-max = 64\n"
        "[tenant.a]\n"
        "model = LLaMA\n"
        "eus = 8\n"
        "rate-per-sec = 5\n");
    EXPECT_TRUE(s.hasLlm);
    EXPECT_EQ(s.llm.scheduler, LlmScheduler::StaticBatch);
    EXPECT_EQ(s.llm.pageTokens, 32u);
    EXPECT_EQ(s.llm.maxBatch, 24u);
    EXPECT_EQ(s.llm.promptTokens, 256u);
    EXPECT_EQ(s.llm.promptTokensMax, 512u);
    EXPECT_EQ(s.llm.outputTokens, 16u);
    EXPECT_EQ(s.llm.outputTokensMax, 64u);

    const Scenario min = parse(kMinimalLlm);
    EXPECT_TRUE(min.hasLlm);
    EXPECT_EQ(min.llm.scheduler, LlmScheduler::Continuous);
    EXPECT_EQ(min.llm.pageTokens, 16u);
    EXPECT_EQ(min.llm.maxBatch, 0u); // 0 = the tenant's batch
}

TEST(ScenarioErrors, UnknownLlmKey)
{
    expectError("[scenario]\nname = t\n[llm]\nbogus = 1\n",
                "test.scn:4: unknown key 'bogus' in section [llm]; "
                "valid keys: scheduler, page-tokens, max-batch, "
                "prompt-tokens, prompt-tokens-max, output-tokens, "
                "output-tokens-max");
}

TEST(ScenarioErrors, UnknownLlmScheduler)
{
    expectError("[scenario]\nname = t\n[llm]\nscheduler = greedy\n",
                "test.scn:4: unknown scheduler 'greedy'; valid "
                "schedulers are 'continuous' and 'static-batch'");
}

TEST(ScenarioErrors, LlmPromptMaxBelowMin)
{
    expectError("[scenario]\nname = t\n[llm]\n"
                "prompt-tokens = 384\nprompt-tokens-max = 128\n",
                "test.scn:3: prompt-tokens-max=128 is below "
                "prompt-tokens=384");
}

TEST(ScenarioErrors, LlmOutputMaxBelowMin)
{
    expectError("[scenario]\nname = t\n[llm]\n"
                "output-tokens = 32\noutput-tokens-max = 8\n",
                "test.scn:3: output-tokens-max=8 is below "
                "output-tokens=32");
}

TEST(ScenarioErrors, LlmIsOpenLoopOnly)
{
    expectError("[scenario]\nname = t\n[fleet]\n"
                "mode = closed-loop\n[llm]\n[tenant.a]\n"
                "model = LLaMA\nmes = 2\nves = 2\n",
                "test.scn:5: [llm] is open-loop only; token-level "
                "serving runs on the fleet engine");
}

TEST(ScenarioErrors, LlmRequiresSingleEpoch)
{
    expectError(std::string(kMinimalLlm) + "[elastic]\nepochs = 4\n",
                "test.scn:5: [llm] requires [elastic] epochs = 1 "
                "(got 4): half-decoded sequences cannot carry "
                "across epoch boundaries");
}

TEST(ScenarioErrors, LlmRequiresLlamaModel)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
                "[llm]\n[tenant.a]\n"
                "model = MNIST\neus = 2\nrate-per-sec = 5\n",
                "test.scn:6: [tenant.a]: LLM serving requires "
                "model = LLaMA (got MNIST)");
}

// -------------------------------------- range/overflow negatives

TEST(ScenarioErrors, JunkInteger)
{
    expectError("[fleet]\nseed = 12abc\n", "test.scn:2: ");
}

TEST(ScenarioErrors, NegativeInteger)
{
    expectError("[fleet]\nboards = -3\n", "test.scn:2: ");
}

TEST(ScenarioErrors, Overflow32BitCount)
{
    expectError("[fleet]\nboards = 4294967296\n",
                "test.scn:2: boards=4294967296 overflows a 32-bit "
                "count");
}

TEST(ScenarioErrors, ZeroWherePositiveRequired)
{
    expectError("[fleet]\nboards = 0\n",
                "test.scn:2: boards must be >= 1");
}

TEST(ScenarioErrors, JunkReal)
{
    expectError("[fleet]\nmax-cycles-factor = fast\n",
                "test.scn:2: max-cycles-factor='fast' is not a "
                "number");
}

TEST(ScenarioErrors, SignedRealRejected)
{
    expectError("[fleet]\nmax-cycles-factor = +5\n",
                "must be a bare number; no sign prefix");
}

TEST(ScenarioErrors, InfiniteHorizon)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = inf\n"
                "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n",
                "horizon must be finite");
}

TEST(ScenarioErrors, NegativeCycles)
{
    expectError("[fleet]\nmax-cycles = -5\n",
                "test.scn:2: max-cycles=-5 must be >= 0 cycles (or "
                "'inf')");
}

TEST(ScenarioErrors, BurstMultiplierTooSmall)
{
    expectError("[scenario]\nname = t\n[tenant.a]\nmodel = MNIST\n"
                "burst-multiplier = 1\n",
                "test.scn:5: burst-multiplier must be > 1");
}

TEST(ScenarioErrors, BurstFractionOutOfRange)
{
    expectError("[tenant.a]\nmodel = MNIST\nburst-fraction = 1.5\n",
                "test.scn:3: burst-fraction=1.5 must be within "
                "(0, 1)");
}

TEST(ScenarioErrors, DiurnalDepthOutOfRange)
{
    expectError("[tenant.a]\nmodel = MNIST\ndiurnal-depth = 2\n",
                "test.scn:3: diurnal-depth=2 must be within [0, 1]");
}

TEST(ScenarioErrors, DiurnalPhaseExcludesOne)
{
    expectError("[tenant.a]\nmodel = MNIST\ndiurnal-phase = 1\n",
                "test.scn:3: diurnal-phase=1 must be within [0, 1)");
}

TEST(ScenarioErrors, BatchBeyondModelMax)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
                "[tenant.a]\nmodel = MNIST\nbatch = 100000\n"
                "eus = 2\nrho = 0.5\n",
                "test.scn:5: [tenant.a]: batch 100000 exceeds");
}

// ----------------------------------- structural/semantic negatives

TEST(ScenarioErrors, MissingScenarioName)
{
    expectError("[fleet]\nhorizon = 1e6\n"
                "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n",
                "missing [scenario] section with a 'name' key");
}

TEST(ScenarioErrors, NoTenants)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n",
                "scenario declares no [tenant.<name>] sections");
}

TEST(ScenarioErrors, EmptyTenantName)
{
    expectError("[scenario]\nname = t\n[tenant.]\nmodel = MNIST\n",
                "test.scn:3: empty tenant name; want "
                "[tenant.<name>]");
}

TEST(ScenarioErrors, MissingModel)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
                "[tenant.a]\neus = 2\nrho = 0.5\n",
                "test.scn:5: [tenant.a] is missing the required "
                "'model' key");
}

TEST(ScenarioErrors, BothSloFactorAndSloCycles)
{
    expectError("[scenario]\nname = t\n[tenant.a]\nmodel = MNIST\n"
                "slo-factor = 5\nslo-cycles = 100\n",
                "test.scn:3: [tenant.a] sets both slo-factor and "
                "slo-cycles; give at most one");
}

TEST(ScenarioErrors, BothRhoAndRate)
{
    expectError("[scenario]\nname = t\n[tenant.a]\nmodel = MNIST\n"
                "rho = 0.5\nrate-per-sec = 100\n",
                "test.scn:3: [tenant.a] sets both rho and "
                "rate-per-sec; give exactly one");
}

TEST(ScenarioErrors, TraceShapeRejected)
{
    expectError("[tenant.a]\nmodel = MNIST\nshape = trace\n",
                "test.scn:3: shape=trace needs an explicit arrival "
                "vector");
}

TEST(ScenarioErrors, OpenLoopNeedsHorizon)
{
    expectError("[scenario]\nname = t\n"
                "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n",
                "open-loop scenarios require a positive [fleet] "
                "horizon");
}

TEST(ScenarioErrors, OpenLoopNeedsEus)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
                "[tenant.a]\nmodel = MNIST\nrho = 0.5\n",
                "test.scn:5: [tenant.a] is missing the required "
                "'eus' key");
}

TEST(ScenarioErrors, OpenLoopNeedsLoad)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
                "[tenant.a]\nmodel = MNIST\neus = 2\n",
                "test.scn:5: [tenant.a] needs exactly one of 'rho' "
                "and 'rate-per-sec'");
}

TEST(ScenarioErrors, OpenLoopRejectsClosedLoopKeys)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
                "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n"
                "mes = 2\n",
                "test.scn:9: key 'mes' is closed-loop only");
}

TEST(ScenarioErrors, ClosedLoopRejectsOpenLoopSections)
{
    expectError("[scenario]\nname = t\n[fleet]\nmode = closed-loop\n"
                "[elastic]\nepochs = 4\n"
                "[tenant.a]\nmodel = MNIST\nmes = 2\nves = 2\n",
                "test.scn:5: section [elastic] is open-loop only");
}

TEST(ScenarioErrors, ClosedLoopRejectsOpenLoopFleetKeys)
{
    expectError("[scenario]\nname = t\n[fleet]\nmode = closed-loop\n"
                "horizon = 1e6\n"
                "[tenant.a]\nmodel = MNIST\nmes = 2\nves = 2\n",
                "test.scn:5: key 'horizon' is open-loop only");
}

TEST(ScenarioErrors, ClosedLoopRejectsOpenLoopTenantKeys)
{
    expectError("[scenario]\nname = t\n[fleet]\nmode = closed-loop\n"
                "[tenant.a]\nmodel = MNIST\nmes = 2\nves = 2\n"
                "rho = 0.5\n",
                "test.scn:5: [tenant.a]: key 'rho' is open-loop "
                "only");
}

TEST(ScenarioErrors, ClosedLoopNeedsEngineSplit)
{
    expectError("[scenario]\nname = t\n[fleet]\nmode = closed-loop\n"
                "[tenant.a]\nmodel = MNIST\nmes = 2\n",
                "test.scn:5: [tenant.a] needs explicit 'mes' and "
                "'ves'");
}

// --------------------------------------------- fault-line negatives

TEST(ScenarioErrors, FaultMalformedAttribute)
{
    expectError("[faults]\nfault = board-loss at-frac=0.5 board\n",
                "test.scn:2: malformed fault attribute 'board'; "
                "want 'at=', 'at-frac=', 'board=', 'core=' or "
                "'duration='");
}

TEST(ScenarioErrors, FaultUnknownAttribute)
{
    expectError("[faults]\nfault = board-loss at=1 board=0 blast=9\n",
                "test.scn:2: unknown fault attribute 'blast='; "
                "valid attributes: at, at-frac, board, core, "
                "duration");
}

TEST(ScenarioErrors, FaultNeedsExactlyOneOnset)
{
    const char *needle = "fault needs exactly one of 'at=<cycles>' "
                         "and 'at-frac=<0..1>'";
    expectError("[faults]\nfault = board-loss board=0\n", needle);
    expectError("[faults]\nfault = board-loss at=1 at-frac=0.5 "
                "board=0\n", needle);
}

TEST(ScenarioErrors, FaultAtFracOutOfRange)
{
    expectError("[faults]\nfault = board-loss at-frac=1.5 board=0\n",
                "test.scn:2: fault at-frac=1.5 must be within "
                "[0, 1] of the horizon");
}

TEST(ScenarioErrors, BoardScopedFaultNeedsBoard)
{
    expectError("[faults]\nfault = board-loss at=1 core=0\n",
                "board-loss faults are board-scoped; give 'board=' "
                "and no 'core='");
}

TEST(ScenarioErrors, CoreScopedFaultNeedsCore)
{
    expectError("[faults]\nfault = core-stall at=1 board=0\n",
                "core-stall faults are core-scoped; give 'core=' "
                "and no 'board='");
}

TEST(ScenarioErrors, RepairTakesNoDuration)
{
    expectError("[faults]\nfault = repair at=1 board=0 "
                "duration=5\n",
                "test.scn:2: repair faults take no 'duration='");
}

// ------------------------------------- dangling-reference negatives

TEST(ScenarioErrors, FaultBoardOutOfRange)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
                "boards = 2\n"
                "[faults]\nfault = board-loss at=1 board=2\n"
                "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n",
                "test.scn:7: fault board 2 is out of range; the "
                "fleet has boards 0..1");
}

TEST(ScenarioErrors, FaultCoreOutOfRange)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
                "boards = 2\n"
                "[faults]\nfault = core-stall at=1 core=8 "
                "duration=10\n"
                "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n",
                "test.scn:7: fault core 8 is out of range; the "
                "fleet has cores 0..7");
}

TEST(ScenarioErrors, FaultOnsetPastHorizon)
{
    expectError("[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
                "[faults]\nfault = core-stall at=2e6 core=0 "
                "duration=10\n"
                "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n",
                "test.scn:6: fault onset at=2e+06 is past the "
                "horizon 1e+06");
}

// ------------------------------------------ file loading negatives

TEST(ScenarioErrors, MissingFile)
{
    try {
        loadScenarioFile("/nonexistent/nowhere.scn");
        ADD_FAILURE() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find(
                      "cannot open scenario file "
                      "'/nonexistent/nowhere.scn'"),
                  std::string::npos) << err.what();
    }
}

// ------------------------------------------- env-override plumbing

TEST(ScenarioEnv, SeedOverrideBeatsFileValue)
{
    // The regression net for the bench_util dedupe: the file says
    // seed = 42, the environment must win.
    const ScopedEnv seed("NEU10_SEED", "777");
    Scenario s = parse(
        "[scenario]\nname = t\n[fleet]\nhorizon = 1e6\nseed = 42\n"
        "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n");
    EXPECT_EQ(s.seed, 42u);
    applyEnvOverrides(s);
    EXPECT_EQ(s.seed, 777u);
}

TEST(ScenarioEnv, SmokeOverrideSetsSmoke)
{
    const ScopedEnv smoke("NEU10_SMOKE", "1");
    Scenario s = parse(
        "[scenario]\nname = t\n[fleet]\nhorizon = 1e8\n"
        "smoke-horizon = 1e6\n"
        "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n");
    applyEnvOverrides(s);
    EXPECT_TRUE(s.smoke);
    EXPECT_EQ(s.effectiveHorizon(), 1e6);
}

TEST(ScenarioEnv, TraceOverrideEnablesOpenLoopTracing)
{
    const ScopedEnv trace("NEU10_TRACE", "on");
    const ScopedEnv out("NEU10_TRACE_OUT", "env.trace.json");
    Scenario s = parse(kMinimal);
    applyEnvOverrides(s);
    EXPECT_TRUE(s.trace.enabled);
    EXPECT_TRUE(s.trace.metrics);
    EXPECT_EQ(s.traceOut, "env.trace.json");

    // Closed loop has no fleet trace pipeline: NEU10_TRACE must not
    // flip the knob there.
    Scenario closed = parse(
        "[scenario]\nname = t\n[fleet]\nmode = closed-loop\n"
        "[tenant.a]\nmodel = MNIST\nmes = 2\nves = 2\n");
    applyEnvOverrides(closed);
    EXPECT_FALSE(closed.trace.enabled);
}

TEST(ScenarioEnv, UnsetEnvironmentKeepsFileValues)
{
    const ScopedEnv a("NEU10_SEED", nullptr);
    const ScopedEnv b("NEU10_SMOKE", nullptr);
    const ScopedEnv c("NEU10_TRACE", nullptr);
    const ScopedEnv d("NEU10_TRACE_OUT", nullptr);
    Scenario s = parse(
        "[scenario]\nname = t\n[fleet]\nhorizon = 1e6\nseed = 42\n"
        "[trace]\nenabled = on\nout = file.trace.json\n"
        "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n");
    applyEnvOverrides(s);
    EXPECT_EQ(s.seed, 42u);
    EXPECT_FALSE(s.smoke);
    EXPECT_TRUE(s.trace.enabled);
    EXPECT_EQ(s.traceOut, "file.trace.json");
}

TEST(ScenarioEnv, MalformedSeedFailsLoudly)
{
    const ScopedEnv seed("NEU10_SEED", "not-a-seed");
    Scenario s = parse(kMinimal);
    EXPECT_THROW(applyEnvOverrides(s), FatalError);
}

// ------------------------------------------------------- expansion

TEST(ScenarioExpand, RoundRobinInterleavesGroups)
{
    const char *text =
        "[scenario]\nname = t\n[fleet]\nhorizon = 1e6\nboards = 2\n"
        "[tenant.a]\nmodel = MNIST\ncount = 2\neus = 2\nrho = 0.5\n"
        "[tenant.b]\nmodel = NCF\ncount = 2\neus = 4\nrho = 0.5\n";
    const Scenario s = parse(text);
    const FleetConfig rr = toFleetConfig(s);
    ASSERT_EQ(rr.tenants.size(), 4u);
    EXPECT_EQ(rr.tenants[0].model, ModelId::Mnist);
    EXPECT_EQ(rr.tenants[1].model, ModelId::Ncf);
    EXPECT_EQ(rr.tenants[2].model, ModelId::Mnist);
    EXPECT_EQ(rr.tenants[3].model, ModelId::Ncf);

    Scenario grouped = s;
    grouped.roundRobin = false;
    const FleetConfig gr = toFleetConfig(grouped);
    EXPECT_EQ(gr.tenants[0].model, ModelId::Mnist);
    EXPECT_EQ(gr.tenants[1].model, ModelId::Mnist);
    EXPECT_EQ(gr.tenants[2].model, ModelId::Ncf);
    EXPECT_EQ(gr.tenants[3].model, ModelId::Ncf);
}

TEST(ScenarioExpand, SeedsAddGlobalIndex)
{
    const Scenario s = parse(
        "[scenario]\nname = t\n[fleet]\nhorizon = 1e6\nseed = 100\n"
        "[tenant.a]\nmodel = MNIST\ncount = 2\neus = 2\nrho = 0.5\n"
        "[tenant.b]\nmodel = NCF\ncount = 2\neus = 4\nrho = 0.5\n"
        "seed = 500\n");
    const FleetConfig cfg = toFleetConfig(s);
    ASSERT_EQ(cfg.tenants.size(), 4u);
    // Expansion order (round-robin): a0 b0 a1 b1 with global indices
    // 0..3; group b overrides the seed base, group a inherits.
    EXPECT_EQ(cfg.tenants[0].traffic.seed, 100u + 0u);
    EXPECT_EQ(cfg.tenants[1].traffic.seed, 500u + 1u);
    EXPECT_EQ(cfg.tenants[2].traffic.seed, 100u + 2u);
    EXPECT_EQ(cfg.tenants[3].traffic.seed, 500u + 3u);
}

TEST(ScenarioExpand, RhoAndSloFactorUseAllocatorServiceEstimate)
{
    const Scenario s = parse(
        "[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
        "[tenant.a]\nmodel = MNIST\nbatch = 8\neus = 2\n"
        "rho = 0.35\nslo-factor = 5\n");
    const FleetConfig cfg = toFleetConfig(s);
    const Cycles service =
        sizeVnpuForModel(ModelId::Mnist, 8, 2, cfg.board.core)
            .serviceEstimate();
    ASSERT_EQ(cfg.tenants.size(), 1u);
    EXPECT_EQ(cfg.tenants[0].traffic.ratePerSec,
              0.35 * cfg.board.core.freqHz / service);
    EXPECT_EQ(cfg.tenants[0].sloCycles, 5.0 * service);
}

TEST(ScenarioExpand, MaxCyclesFactorAndAbsolute)
{
    Scenario s = parse(kMinimal);
    EXPECT_EQ(toFleetConfig(s).maxCycles, 50.0 * 1e6);
    s.maxCycles = 7e7;
    EXPECT_EQ(toFleetConfig(s).maxCycles, 7e7);
}

TEST(ScenarioExpand, FaultAtFracResolvesAgainstEffectiveHorizon)
{
    Scenario s = parse(
        "[scenario]\nname = t\n[fleet]\nhorizon = 1e6\n"
        "smoke-horizon = 1e5\n"
        "[faults]\nfault = board-loss at-frac=0.3 board=1 "
        "duration=inf\n"
        "[tenant.a]\nmodel = MNIST\neus = 2\nrho = 0.5\n");
    ASSERT_EQ(toFleetConfig(s).resilience.faults.size(), 1u);
    EXPECT_EQ(toFleetConfig(s).resilience.faults[0].at, 0.3 * 1e6);
    s.smoke = true;
    EXPECT_EQ(toFleetConfig(s).resilience.faults[0].at, 0.3 * 1e5);
}

TEST(ScenarioExpand, ServingConfigFields)
{
    Scenario s = parse(
        "[scenario]\nname = t\n[fleet]\nmode = closed-loop\n"
        "core-policy = pmt\nmin-requests = 10\n"
        "smoke-min-requests = 3\nmax-cycles = 3e9\n"
        "[tenant.bert]\nmodel = BERT\nmes = 2\nves = 2\n"
        "outstanding = 2\npriority = 2\n"
        "[tenant.enet]\nmodel = ENet\nmes = 3\nves = 1\n");
    const ServingConfig cfg = toServingConfig(s);
    EXPECT_EQ(cfg.policy, PolicyKind::Pmt);
    EXPECT_EQ(cfg.minRequests, 10u);
    EXPECT_EQ(cfg.maxCycles, 3e9);
    ASSERT_EQ(cfg.tenants.size(), 2u);
    EXPECT_EQ(cfg.tenants[0].model, ModelId::Bert);
    EXPECT_EQ(cfg.tenants[0].nMes, 2u);
    EXPECT_EQ(cfg.tenants[0].nVes, 2u);
    EXPECT_EQ(cfg.tenants[0].outstanding, 2u);
    EXPECT_EQ(cfg.tenants[0].priority, 2.0);
    EXPECT_EQ(cfg.tenants[1].nMes, 3u);
    EXPECT_EQ(cfg.tenants[1].nVes, 1u);

    s.smoke = true;
    EXPECT_EQ(toServingConfig(s).minRequests, 3u);
}

TEST(ScenarioExpand, WrongModeIsAnInternalError)
{
    const Scenario open = parse(kMinimal);
    EXPECT_THROW(toServingConfig(open), PanicError);
    const Scenario closed = parse(
        "[scenario]\nname = t\n[fleet]\nmode = closed-loop\n"
        "[tenant.a]\nmodel = MNIST\nmes = 2\nves = 2\n");
    EXPECT_THROW(toFleetConfig(closed), PanicError);
}

// ------------------------------------------- committed library

TEST(ScenarioLibrary, EveryCommittedScenarioParses)
{
    namespace fs = std::filesystem;
    unsigned n = 0;
    for (const auto &entry : fs::directory_iterator(
             NEU10_SCENARIO_DIR)) {
        if (entry.path().extension() != ".scn")
            continue;
        SCOPED_TRACE(entry.path().string());
        const Scenario s = loadScenarioFile(entry.path().string());
        EXPECT_FALSE(s.name.empty());
        EXPECT_FALSE(s.description.empty());
        EXPECT_GT(s.totalTenants(), 0u);
        // Committed scenarios must carry their own name so the
        // derived artifact paths (goldens, traces) stay stable.
        EXPECT_EQ(s.name, entry.path().stem().string());
        ++n;
    }
    EXPECT_GE(n, 8u) << "the committed scenario library shrank";
}

} // anonymous namespace
} // namespace neu10
