/**
 * @file
 * Observability-subsystem tests: TraceBuffer recording semantics,
 * Trace merging/export (Chrome trace-event JSON shape, metadata,
 * async-id salting, non-finite arg sanitization), MetricsRegistry
 * bookkeeping, and the determinism contract end-to-end: a traced
 * fleet run must produce byte-identical trace files at any
 * FleetConfig::threads width, across engines, and under a board-loss
 * fault — and tracing must not perturb the simulation results.
 */

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "cluster/fleet.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "resilience/faults.hh"

namespace neu10
{
namespace
{

// ---------------------------------------------------- TraceBuffer

TEST(TraceBuffer, DisabledDropsEverything)
{
    TraceBuffer buf;
    EXPECT_FALSE(buf.enabled());
    buf.instant(10.0, "request", "admit", "tenant", 1.0);
    buf.span(0.0, 5.0, "engine", "advance");
    buf.asyncSpan(7, 0.0, 5.0, "request", "execute");
    EXPECT_TRUE(buf.empty());
}

TEST(TraceBuffer, RecordsPhasesAndArgs)
{
    TraceBuffer buf(true);
    buf.instant(10.0, "request", "admit", "tenant", 3.0, "depth",
                2.0);
    buf.span(20.0, 50.0, "engine", "advance", "units", 4.0);
    buf.asyncSpan(42, 30.0, 90.0, "request", "execute", "tenant",
                  1.0);
    ASSERT_EQ(buf.size(), 3u);

    const TraceEvent &i = buf.events()[0];
    EXPECT_EQ(i.phase, 'i');
    EXPECT_DOUBLE_EQ(i.at, 10.0);
    EXPECT_EQ(i.nargs, 2);
    EXPECT_STREQ(i.args[0].key, "tenant");
    EXPECT_DOUBLE_EQ(i.args[0].value, 3.0);

    const TraceEvent &x = buf.events()[1];
    EXPECT_EQ(x.phase, 'X');
    EXPECT_DOUBLE_EQ(x.dur, 30.0);

    const TraceEvent &b = buf.events()[2];
    EXPECT_EQ(b.phase, 'b');
    EXPECT_EQ(b.id, 42u);
    EXPECT_DOUBLE_EQ(b.dur, 60.0);
}

// ---------------------------------------------------------- Trace

TEST(Trace, ExportShapeMetadataAndOrdering)
{
    Trace trace;
    trace.setTopology(/*coresPerBoard=*/2, /*numBoards=*/1);
    trace.setFreqHz(1e6); // 1 cycle == 1 us: readable timestamps

    TraceBuffer core0(true);
    core0.instant(5.0, "request", "complete", "latency", 7.0);
    TraceBuffer ctl(true);
    ctl.span(0.0, 10.0, "fleet", "epoch");

    trace.append(0, core0, /*offset=*/0.0, /*idSalt=*/0);
    trace.append(Trace::kControllerTrack, ctl, 0.0, 0);
    EXPECT_EQ(trace.totalEvents(), 2u);

    const std::string json = trace.chromeJson();
    // Controller pseudo-process after the board pids.
    EXPECT_NE(json.find("\"controller\""), std::string::npos);
    EXPECT_NE(json.find("\"board 0\""), std::string::npos);
    EXPECT_NE(json.find("\"core 0\""), std::string::npos);
    // The instant, converted at 1 MHz (5 cycles -> 5 us).
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":5"), std::string::npos);
    EXPECT_NE(json.find("\"latency\":7"), std::string::npos);
    // The controller span.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":10"), std::string::npos);
}

TEST(Trace, AppendShiftsTimesAndSaltsIds)
{
    Trace trace;
    trace.setTopology(1, 1);

    TraceBuffer epoch1(true);
    epoch1.asyncSpan(3, 1.0, 2.0, "request", "execute");
    trace.append(0, epoch1, /*offset=*/100.0,
                 /*idSalt=*/std::uint64_t{2} << 56);

    const auto &events = trace.tracks().at(0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_DOUBLE_EQ(events[0].at, 101.0);
    EXPECT_EQ(events[0].id, (std::uint64_t{2} << 56) + 3u);
}

TEST(Trace, AsyncSpanExpandsToBalancedBeginEnd)
{
    Trace trace;
    trace.setTopology(1, 1);
    TraceBuffer buf(true);
    buf.asyncSpan(9, 0.0, 4.0, "request", "queue");
    trace.append(0, buf, 0.0, 0);

    const std::string json = trace.chromeJson();
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":\"0x9\""), std::string::npos);
}

TEST(Trace, NonFiniteArgsExportAsMinusOne)
{
    // kCyclesInf fault durations (a board lost for good) must not
    // leak "inf" into the JSON — there is no such literal.
    Trace trace;
    trace.setTopology(1, 1);
    TraceBuffer buf(true);
    buf.instant(0.0, "fault", "fault-onset", "duration",
                std::numeric_limits<double>::infinity());
    trace.append(0, buf, 0.0, 0);

    const std::string json = trace.chromeJson();
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_NE(json.find("\"duration\":-1"), std::string::npos);
}

TEST(Trace, CarriedBacklogNegativeStampsClampToZero)
{
    // Requests carried across an epoch boundary re-anchor with
    // negative buffer-relative stamps; the export clamps to 0
    // rather than emitting negative timestamps Perfetto rejects.
    Trace trace;
    trace.setTopology(1, 1);
    TraceBuffer buf(true);
    buf.instant(-5.0, "request", "complete");
    trace.append(0, buf, 0.0, 0);

    EXPECT_NE(trace.chromeJson().find("\"ts\":0"),
              std::string::npos);
    EXPECT_EQ(trace.chromeJson().find("\"ts\":-"),
              std::string::npos);
}

// -------------------------------------------------------- metrics

TEST(Metrics, RegistryRoundTrip)
{
    MetricsRegistry mx(true);
    const MetricId c = mx.counter("fleet.completed");
    const MetricId g = mx.gauge("fleet.backlog");
    const MetricId h = mx.histogram("fleet.epoch_completed");

    mx.add(c, 5.0);
    mx.add(c, 3.0);
    mx.set(g, 7.0);
    mx.observe(h, 10.0);
    mx.observe(h, 20.0);
    mx.sample(100.0);
    mx.set(g, 2.0);
    mx.sample(200.0);

    EXPECT_DOUBLE_EQ(mx.value(c), 8.0);
    EXPECT_DOUBLE_EQ(mx.value(g), 2.0);
    ASSERT_NE(mx.find("fleet.backlog"), nullptr);

    const std::string json = mx.json(1e6);
    EXPECT_NE(json.find("\"neu10-metrics-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"fleet.completed\""), std::string::npos);
    EXPECT_NE(json.find("\"histogram\""), std::string::npos);
}

TEST(Metrics, DuplicateRegistrationReturnsSameId)
{
    MetricsRegistry mx(true);
    EXPECT_EQ(mx.counter("a"), mx.counter("a"));
}

TEST(Metrics, DisabledRegistryIsInert)
{
    MetricsRegistry mx; // disabled
    const MetricId c = mx.counter("fleet.completed");
    mx.add(c, 5.0);
    mx.sample(100.0);
    EXPECT_DOUBLE_EQ(mx.value(c), 0.0);
    ASSERT_NE(mx.find("fleet.completed"), nullptr);
    EXPECT_TRUE(mx.find("fleet.completed")->series.empty());
}

// --------------------------------------- end-to-end determinism

/** 8 tenants on 2 boards x 4 cores, a few epochs, engine events on
 * — small enough that the string compares stay cheap, busy enough
 * that every event category fires. */
FleetConfig
tracedFleet(unsigned threads, SimEngine engine,
            bool board_loss = false)
{
    FleetConfig cfg;
    cfg.numBoards = 2; // x (2 chips x 2 cores) = 8 cores
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = 2e6;
    cfg.maxCycles = 2e8;
    cfg.elastic.epochs = 3;
    cfg.threads = threads;
    cfg.engine = engine;
    cfg.trace.enabled = true;
    cfg.trace.engineEvents = true;
    cfg.trace.metrics = true;

    if (board_loss) {
        FaultEvent ev;
        ev.at = 0.4 * cfg.horizon;
        ev.kind = FaultKind::BoardLoss;
        ev.board = 1;
        ev.durationCycles = kCyclesInf;
        cfg.resilience.faults = {ev};
        cfg.resilience.failover = true;
        cfg.resilience.recoveryStallCycles = 1e5;
    }

    const ModelId models[] = {ModelId::Mnist, ModelId::Ncf};
    for (unsigned i = 0; i < 8; ++i) {
        ClusterTenantSpec t;
        t.model = models[i % 2];
        t.batch = 8;
        t.eus = 4;
        t.traffic.ratePerSec = 8000.0;
        t.traffic.seed = 100 + i;
        t.sloCycles = 2e5;
        t.maxQueueDepth = 16;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

TEST(TraceDeterminism, ByteIdenticalAcrossThreadWidths)
{
    const auto serial = runFleet(tracedFleet(1, SimEngine::EventDriven));
    const auto wide = runFleet(tracedFleet(8, SimEngine::EventDriven));
    EXPECT_GT(serial.trace.totalEvents(), 0u);
    EXPECT_EQ(serial.trace.chromeJson(), wide.trace.chromeJson());
    EXPECT_EQ(serial.metrics.json(1e9), wide.metrics.json(1e9));
}

TEST(TraceDeterminism, ByteIdenticalAcrossEngines)
{
    const auto fast = runFleet(tracedFleet(2, SimEngine::EventDriven));
    const auto ref = runFleet(tracedFleet(2, SimEngine::PerCycle));
    EXPECT_GT(fast.trace.totalEvents(), 0u);
    EXPECT_EQ(fast.trace.chromeJson(), ref.trace.chromeJson());
}

TEST(TraceDeterminism, ByteIdenticalUnderBoardLossFailover)
{
    const auto a = runFleet(
        tracedFleet(1, SimEngine::EventDriven, /*board_loss=*/true));
    const auto b = runFleet(
        tracedFleet(4, SimEngine::EventDriven, /*board_loss=*/true));
    EXPECT_GT(a.failovers, 0u);
    const std::string ja = a.trace.chromeJson();
    EXPECT_EQ(ja, b.trace.chromeJson());
    // The failover story is reconstructable from the trace alone.
    EXPECT_NE(ja.find("fault-onset"), std::string::npos);
    EXPECT_NE(ja.find("quarantine"), std::string::npos);
    EXPECT_NE(ja.find("checkpoint"), std::string::npos);
    EXPECT_NE(ja.find("restore"), std::string::npos);
    EXPECT_NE(ja.find("hc-create-vnpu"), std::string::npos);
}

TEST(TraceDeterminism, TracingDoesNotPerturbResults)
{
    FleetConfig traced = tracedFleet(2, SimEngine::EventDriven);
    FleetConfig off = traced;
    off.trace = TraceConfig{};

    const auto rt = runFleet(traced);
    const auto ro = runFleet(off);
    EXPECT_EQ(ro.trace.totalEvents(), 0u);
    EXPECT_EQ(rt.submitted, ro.submitted);
    EXPECT_EQ(rt.completed, ro.completed);
    EXPECT_EQ(rt.rejected, ro.rejected);
    EXPECT_DOUBLE_EQ(rt.makespan, ro.makespan);
    EXPECT_DOUBLE_EQ(rt.p99(), ro.p99());
}

} // anonymous namespace
} // namespace neu10
