#!/usr/bin/env python3
"""CTest entry proving the whole-program determinism certifier fires.

Runs tools/neu10_analyze.py against the fixture trees under
tests/analyzer_fixtures/:

  violations/  every rule must flag its known file:line anchors —
               impure-path with the full multi-hop call chain,
               unordered-iter purely from declared types (no path
               heuristic), mutable-global on each un-annotated
               global/static, pointer-key-iter on both walk shapes;
  clean/       idiomatic look-alikes must pass silently: sanctioned
               boundaries (common/random, common/env, common/logging),
               `clk.now()` / `frame.time()` / `gen.rand()` name
               collisions, sorted-after-iteration behind allow(),
               order-insensitive erasure walks, int-keyed maps, and
               exempt globals (const/atomic/thread_local/mutex/
               NEU10_GUARDED_BY);

then checks the JSON report contract (schema-versioned, emitted even
on a clean run) and finally certifies the real tree: zero findings
on src/, mirroring the CI gate.

The exact-anchor assertions pin the textual frontend (the one
guaranteed everywhere); a second pass with --frontend auto asserts
only the exit code, so runners with libclang exercise that path too.

Usage: python3 tests/test_analyzer_tools.py [repo-root]
Exit status: 0 when every expectation holds.
"""

import json
import pathlib
import subprocess
import sys
import tempfile

FAILURES = []


def run(tool, *argv):
    cmd = [sys.executable, str(tool), *map(str, argv)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def expect(cond, what):
    print(("ok      " if cond else "FAILED  ") + what)
    if not cond:
        FAILURES.append(what)


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    root = root.resolve()
    tool = root / "tools" / "neu10_analyze.py"
    fixtures = root / "tests" / "analyzer_fixtures"

    # ---- violations tree: every rule fires on its exact anchor ----
    rc, out = run(tool, "--root", fixtures / "violations",
                  "--frontend", "textual")
    expect(rc == 1, "violations tree exits 1")
    for path, line, rule in [
        # impure-path: chrono clock + thread id, two hops deep
        ("src/sim/hot_path.cc", 22, "impure-path"),
        ("src/sim/hot_path.cc", 30, "impure-path"),
        # impure-path: random_device, rand(), printf outside the
        # sanctioned common/ boundaries
        ("src/models/seeded_badly.cc", 17, "impure-path"),
        ("src/models/seeded_badly.cc", 18, "impure-path"),
        ("src/models/seeded_badly.cc", 24, "impure-path"),
        # unordered-iter: member-typed, result-flow by type/name only
        ("src/cluster/unordered_result.cc", 34, "unordered-iter"),
        ("src/cluster/unordered_result.cc", 38, "unordered-iter"),
        ("src/cluster/unordered_result.cc", 47, "unordered-iter"),
        # mutable-global: plain, static, anon-namespace, fn-local
        ("src/common/global_state.cc", 8, "mutable-global"),
        ("src/common/global_state.cc", 10, "mutable-global"),
        ("src/common/global_state.cc", 14, "mutable-global"),
        ("src/common/global_state.cc", 20, "mutable-global"),
        # pointer-key-iter: range-for and begin() walk
        ("src/sched/ptr_key.cc", 20, "pointer-key-iter"),
        ("src/sched/ptr_key.cc", 23, "pointer-key-iter"),
    ]:
        anchor = f"{path}:{line}: {rule}:"
        expect(any(l.startswith(anchor) for l in out.splitlines()),
               f"{rule} fires at {path}:{line}")

    # impure-path findings must carry the full chain, one hop per
    # line, each with a file:line anchor.
    expect("runFleet -> neu10::(anon)::stampNow" in out,
           "impure-path reports the call chain")
    expect("    via src/sim/hot_path.cc:" in out,
           "every chain hop carries file:line")

    # ---- clean tree: look-alikes stay silent ----------------------
    rc, out = run(tool, "--root", fixtures / "clean",
                  "--frontend", "textual")
    expect(rc == 0,
           "clean tree passes: " + out.strip().splitlines()[-1])
    expect("1 allowed" in out,
           "allow(unordered-iter) escape is honoured and counted")

    # ---- JSON report: schema-versioned, present even when clean ---
    with tempfile.TemporaryDirectory() as td:
        report = pathlib.Path(td) / "findings.json"
        rc, _ = run(tool, "--root", fixtures / "clean",
                    "--frontend", "textual", "--json", report)
        expect(rc == 0 and report.exists(),
               "clean run still writes the JSON report")
        doc = json.loads(report.read_text())
        expect(doc.get("schema") == "neu10-analyze-v1",
               "report is schema-versioned")
        expect(doc.get("findings") == [],
               "clean report has an empty findings list")
        for key in ("frontend", "rules", "entry_points",
                    "files_analyzed", "call_edges"):
            expect(key in doc, f"report carries '{key}'")

        report2 = pathlib.Path(td) / "violations.json"
        rc, _ = run(tool, "--root", fixtures / "violations",
                    "--frontend", "textual", "--json", report2)
        doc2 = json.loads(report2.read_text())
        expect(rc == 1 and len(doc2["findings"]) == 14,
               f"violations report lists all 14 findings "
               f"(got {len(doc2['findings'])})")
        chains = [f for f in doc2["findings"]
                  if f["rule"] == "impure-path"]
        expect(all(f.get("chain") for f in chains),
               "JSON impure-path findings embed the machine-readable "
               "chain")

    # ---- cache: second run must reuse every parse -----------------
    with tempfile.TemporaryDirectory() as td:
        cache = pathlib.Path(td) / "cache"
        run(tool, "--root", fixtures / "clean",
            "--frontend", "textual", "--cache-dir", cache)
        rc, out = run(tool, "--root", fixtures / "clean",
                      "--frontend", "textual", "--cache-dir", cache)
        expect(rc == 0 and "(6 from cache)" in out,
               "warm cache reuses all parsed IR")

    # ---- explicit unavailable frontend is a setup error (rc 2) ----
    if not _has_libclang():
        rc, out = run(tool, "--root", fixtures / "clean",
                      "--frontend", "libclang")
        expect(rc == 2 and "python3-clang" in out,
               "explicit libclang without bindings exits 2 with hint")

    # ---- auto frontend: verdicts agree on any runner --------------
    rc, _ = run(tool, "--root", fixtures / "violations",
                "--frontend", "auto")
    expect(rc == 1, "auto frontend still flags the violations tree")

    # ---- the real tree is certified clean (CI gate mirror) --------
    rc, out = run(tool, "--root", root, "--frontend", "auto")
    expect(rc == 0, "repo src/ is certified deterministic: "
           + out.strip().splitlines()[-1])

    if FAILURES:
        print(f"\n{len(FAILURES)} expectation(s) failed")
        return 1
    print("\nall analyzer expectations hold")
    return 0


def _has_libclang():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


if __name__ == "__main__":
    sys.exit(main())
