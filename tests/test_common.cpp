/**
 * @file
 * Unit tests for src/common: logging, RNG determinism and statistics,
 * string/unit formatting, hardened env parsing, and the host thread
 * pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/strings.hh"
#include "common/threadpool.hh"
#include "common/types.hh"

namespace neu10
{
namespace
{

TEST(Logging, PanicThrowsPanicError)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(panic("boom %d", 42), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(Logging, FatalThrowsFatalError)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_THROW(fatal("user error %s", "bad config"), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Logging, PanicMessageFormatted)
{
    setLogLevel(LogLevel::Silent);
    try {
        panic("value=%d name=%s", 7, "me0");
        FAIL() << "expected PanicError";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=me0");
    }
    setLogLevel(LogLevel::Warn);
}

TEST(Logging, AssertMacroPassesAndFails)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_NO_THROW(NEU10_ASSERT(1 + 1 == 2, "math works"));
    EXPECT_THROW(NEU10_ASSERT(false, "always fails"), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(Logging, WarnInformDoNotThrow)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_NO_THROW(warn("w"));
    EXPECT_NO_THROW(inform("i"));
    setLogLevel(LogLevel::Warn);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformBoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(3.0, 5.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
    for (auto v : seen)
        EXPECT_LT(v, 7u);
}

TEST(Rng, BelowRejectsZeroBound)
{
    setLogLevel(LogLevel::Silent);
    Rng rng(1);
    EXPECT_THROW(rng.below(0), PanicError);
    setLogLevel(LogLevel::Warn);
}

TEST(Rng, ExponentialMeanConverges)
{
    Rng rng(42);
    double acc = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        acc += rng.exponential(3.0);
    EXPECT_NEAR(acc / n, 3.0, 0.05);
}

TEST(Rng, GaussianMomentsConverge)
{
    Rng rng(42);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian(10.0, 2.0);
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Strings, Csprintf)
{
    EXPECT_EQ(csprintf("%d-%s", 3, "x"), "3-x");
    EXPECT_EQ(csprintf("empty"), "empty");
}

TEST(Strings, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(10590000), "10.59MB");
    EXPECT_EQ(formatBytes(1270000000), "1.27GB");
}

TEST(Strings, FormatBandwidth)
{
    EXPECT_EQ(formatBandwidth(1.2e12), "1.20 TB/s");
    EXPECT_EQ(formatBandwidth(347.59e9), "347.59 GB/s");
}

TEST(Strings, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(2.5), "2.500s");
    EXPECT_EQ(formatSeconds(0.0035), "3.500ms");
    EXPECT_EQ(formatSeconds(42e-6), "42.0us");
}

TEST(Strings, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Types, ByteLiterals)
{
    EXPECT_EQ(1_KiB, 1024ull);
    EXPECT_EQ(2_MiB, 2ull << 20);
    EXPECT_EQ(64_GiB, 64ull << 30);
}

// ----------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    bool all_inline = true;
    pool.parallelFor(64, [&](size_t) {
        if (std::this_thread::get_id() != caller)
            all_inline = false;
    });
    EXPECT_TRUE(all_inline);
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, MoreTasksThanThreads)
{
    // Indices far beyond the worker count drain correctly and the
    // pool is reusable across calls.
    ThreadPool pool(3);
    for (int round = 0; round < 3; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(257, [&](size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 257ull * 256ull / 2ull);
    }
}

TEST(ThreadPoolTest, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](size_t i) {
                             ++ran;
                             if (i == 37)
                                 throw FatalError("boom");
                         }),
        FatalError);
    // The remaining indices were still drained (nothing deadlocks
    // and the pool stays usable).
    EXPECT_EQ(ran.load(), 100);
    std::atomic<int> again{0};
    pool.parallelFor(10, [&](size_t) { ++again; });
    EXPECT_EQ(again.load(), 10);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ThreadPool pool(0); // 0 = hardware concurrency
    EXPECT_GE(pool.size(), 1u);
}

// ------------------------------------------------------------- env

TEST(Env, ParseUint64AcceptsDecimalAndHex)
{
    EXPECT_EQ(parseUint64("0", "X"), 0u);
    EXPECT_EQ(parseUint64("42", "X"), 42u);
    EXPECT_EQ(parseUint64("0x2a", "X"), 42u);
    EXPECT_EQ(parseUint64("0X2A", "X"), 42u);
    EXPECT_EQ(parseUint64("18446744073709551615", "X"),
              ~std::uint64_t{0});
    // Leading zeros are decimal, never octal: an operator writing
    // 010 means ten.
    EXPECT_EQ(parseUint64("010", "X"), 10u);
    EXPECT_EQ(parseUint64("0777", "X"), 777u);
}

TEST(Env, ParseUint64RejectsGarbage)
{
    setLogLevel(LogLevel::Silent);
    // A bad seed must fail loudly, never silently seed something
    // else (the old bench parser fell back to a default, and
    // accepted overflow/negatives as wrapped huge values).
    EXPECT_THROW(parseUint64("", "X"), FatalError);
    EXPECT_THROW(parseUint64("banana", "X"), FatalError);
    EXPECT_THROW(parseUint64("12abc", "X"), FatalError);
    EXPECT_THROW(parseUint64("-5", "X"), FatalError);
    EXPECT_THROW(parseUint64("+5", "X"), FatalError);
    EXPECT_THROW(parseUint64(" 5", "X"), FatalError);
    EXPECT_THROW(parseUint64("18446744073709551616", "X"),
                 FatalError); // 2^64 overflows
    EXPECT_THROW(parseUint64("0x10000000000000000", "X"),
                 FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Env, ParseFlagGrammar)
{
    setLogLevel(LogLevel::Silent);
    for (const char *t : {"1", "true", "TRUE", "on", "yes"})
        EXPECT_TRUE(parseFlag(t, "X")) << t;
    for (const char *f : {"0", "false", "False", "off", "no"})
        EXPECT_FALSE(parseFlag(f, "X")) << f;
    EXPECT_THROW(parseFlag("2", "X"), FatalError);
    EXPECT_THROW(parseFlag("smoke", "X"), FatalError);
    setLogLevel(LogLevel::Warn);
}

TEST(Env, EnvWrappersUseFallbackWhenUnset)
{
    ::unsetenv("NEU10_TEST_ENV");
    EXPECT_EQ(envUint64("NEU10_TEST_ENV", 7), 7u);
    EXPECT_TRUE(envFlag("NEU10_TEST_ENV", true));
    ::setenv("NEU10_TEST_ENV", "", 1); // empty = unset
    EXPECT_EQ(envUint64("NEU10_TEST_ENV", 7), 7u);
    ::setenv("NEU10_TEST_ENV", "0x10", 1);
    EXPECT_EQ(envUint64("NEU10_TEST_ENV", 7), 16u);
    setLogLevel(LogLevel::Silent);
    ::setenv("NEU10_TEST_ENV", "nope", 1);
    EXPECT_THROW(envUint64("NEU10_TEST_ENV", 7), FatalError);
    EXPECT_THROW(envFlag("NEU10_TEST_ENV", false), FatalError);
    setLogLevel(LogLevel::Warn);
    ::unsetenv("NEU10_TEST_ENV");
}

} // anonymous namespace
} // namespace neu10
