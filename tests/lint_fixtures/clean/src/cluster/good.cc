// Lint fixture: idioms the determinism lint must NOT flag — the
// seeded Rng, sorted-after-iteration behind an allow(), sentinel
// equality behind an allow(), deleted special members, and variables
// that merely *name-collide* with banned calls (Clock clock(...)).
#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

using Cycles = double;
constexpr Cycles kInf = std::numeric_limits<double>::infinity();

struct Clock
{
    explicit Clock(double hz) : hz_(hz) {}
    double hz_;
};

struct TallyResult
{
    std::vector<Cycles> stamps;
};

class Tally
{
  public:
    Tally(const Tally &) = delete;            // not a naked delete
    Tally &operator=(const Tally &) = delete; // not a naked delete
    Tally() = default;

    TallyResult
    drain(const std::unordered_map<int, Cycles> &open, double freq)
    {
        const Clock clock(freq); // declaration, not ::clock()
        TallyResult result;
        // neu10-lint: allow(unordered-iter): sorted immediately
        // below, so hash order never reaches the result.
        for (const auto &[id, stamp] : open)
            result.stamps.push_back(stamp);
        std::sort(result.stamps.begin(), result.stamps.end());
        for (Cycles s : result.stamps) {
            // neu10-lint: allow(float-eq): kInf is an exact
            // sentinel, never computed.
            if (s == kInf)
                break;
        }
        return result;
    }

  private:
    std::unique_ptr<int> owned_ = std::make_unique<int>(0);
};
