// Lint fixture: the deterministic obs/ export idiom — an ordered map
// keyed by track index, so iteration order is the export order by
// construction. The unordered staging map is only ever *indexed*,
// never iterated; the lint must stay silent.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

std::string
exportTracks(const std::map<int, std::vector<double>> &tracks,
             const std::unordered_map<int, std::string> &names)
{
    std::string json = "[";
    for (const auto &[track, stamps] : tracks) { // ordered: fine
        const auto it = names.find(track); // lookup, not iteration
        if (it != names.end())
            json += it->second;
        for (double s : stamps)
            json += std::to_string(s);
    }
    return json + "]";
}
