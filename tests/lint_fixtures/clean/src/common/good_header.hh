// check_headers fixture: fully self-contained header.
#ifndef NEU10_LINT_FIXTURE_GOOD_HEADER_HH
#define NEU10_LINT_FIXTURE_GOOD_HEADER_HH

#include <cstdint>
#include <vector>

struct SelfContained
{
    std::vector<std::uint32_t> values;
};

#endif
