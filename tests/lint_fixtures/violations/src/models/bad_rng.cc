// Lint fixture: every banned randomness source in one file. Never
// compiled — tests/test_lint_tools.py asserts each line is flagged.
#include <cstdlib>
#include <ctime>
#include <random>
#include <chrono>

int
unseededDraw()
{
    srand(time(nullptr));                       // two violations
    return rand();                              // one violation
}

unsigned
hardwareEntropy()
{
    std::random_device rd;                      // one violation
    return rd();
}

long
wallClockStamp()
{
    const auto now = std::chrono::system_clock::now(); // one violation
    return now.time_since_epoch().count() + clock();   // one violation
}
