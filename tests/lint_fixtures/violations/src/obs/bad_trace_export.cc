// Lint fixture: hash-order iteration on an obs/ export path. No
// *Result type appears anywhere in this file — the rule must fire on
// the path scope alone, because the exported byte stream is what the
// trace determinism tests compare. Never compiled —
// test_lint_tools.py asserts the flags.
#include <string>
#include <unordered_map>
#include <vector>

std::string
exportTracks(const std::unordered_map<int, std::vector<double>> &tracks)
{
    std::string json = "[";
    for (const auto &[track, stamps] : tracks) { // violation: range-for
        json += std::to_string(track);
        for (double s : stamps)
            json += "," + std::to_string(s);
    }
    std::unordered_map<std::string, double> totals;
    totals["events"] = 1.0;
    for (auto it = totals.begin(); it != totals.end(); ++it) // violation
        json += it->first;
    return json + "]";
}
