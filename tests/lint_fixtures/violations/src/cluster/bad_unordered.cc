// Lint fixture: hash-order iteration feeding a *Result in the same
// file. Never compiled — test_lint_tools.py asserts the flags.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct ScanResult
{
    std::vector<std::uint64_t> ids;
    double total = 0.0;
};

ScanResult
collect(const std::unordered_map<std::uint64_t, double> &table)
{
    std::unordered_set<std::uint64_t> seen;
    ScanResult result;
    for (const auto &[id, value] : table) { // violation: range-for
        result.ids.push_back(id);
        result.total += value;
        seen.insert(id);
    }
    for (auto it = seen.begin(); it != seen.end(); ++it) // violation
        result.total += 1.0;
    return result;
}
