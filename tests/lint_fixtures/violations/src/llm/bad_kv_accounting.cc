// Lint fixture: the two determinism bugs the llm/ scope exists to
// catch — exact FP equality in KV-page accounting and hash-order
// iteration over per-sequence page books (llm/ is a deterministic-
// export scope, so the rule fires on the path alone, no *Result
// type needed). Never compiled — test_lint_tools.py asserts the
// flags.
#include <cstdint>
#include <unordered_map>
#include <vector>

using Cycles = double;

bool
poolIsFull(double occupancy, Cycles lastFreeAt, Cycles now)
{
    if (occupancy == 1.0)      // violation: literal comparison
        return true;
    return lastFreeAt != now;  // violation: Cycles vs Cycles
}

std::vector<std::uint32_t>
sweepHolders()
{
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> books;
    std::vector<std::uint32_t> freed;
    for (const auto &[seq, pages] : books) { // violation: range-for
        freed.insert(freed.end(), pages.begin(), pages.end());
        static_cast<void>(seq);
    }
    for (auto it = books.begin(); it != books.end(); ++it) // violation
        freed.push_back(static_cast<std::uint32_t>(it->second.size()));
    return freed;
}
