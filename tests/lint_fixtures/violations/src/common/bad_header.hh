// check_headers fixture: relies on a transitive include for
// std::vector, so compiling it as its own TU must fail.
#ifndef NEU10_LINT_FIXTURE_BAD_HEADER_HH
#define NEU10_LINT_FIXTURE_BAD_HEADER_HH

#include <cstdint>

struct HiddenDependency
{
    std::vector<std::uint32_t> values; // <vector> never included
};

#endif
