// Lint fixture: naked new/delete ownership. Never compiled —
// test_lint_tools.py asserts the flags.
struct Buffer
{
    int *data = nullptr;
};

Buffer *
makeBuffer()
{
    Buffer *b = new Buffer;   // violation: naked new
    b->data = new int[16];    // violation: naked new
    return b;
}

void
freeBuffer(Buffer *b)
{
    delete[] b->data;         // violation: naked delete
    delete b;                 // violation: naked delete
}
