// Fixture: stale-allow. The first directive excuses nothing — the
// naked new it once covered became a unique_ptr — and must itself be
// flagged at its own line. The second still suppresses a live
// banned-random finding, so it must NOT be reported. The third names
// an analyzer-only rule; that vocabulary belongs to
// tools/neu10_analyze.py, so the lint must neither reject nor
// stale-flag it.
#include <cstdlib>
#include <memory>

namespace neu10
{

struct Widget
{
    int v = 0;
};

std::unique_ptr<Widget>
makeWidget()
{
    // neu10-lint: allow(naked-new): wraps the legacy pool // line 22
    return std::make_unique<Widget>();
}

int
legacyDraw()
{
    // neu10-lint: allow(banned-random): seeding the legacy shim once
    return rand();
}

// neu10-lint: allow(impure-path): analyzer-owned vocabulary
int g_shim_calls = 0;

} // namespace neu10
