// Lint fixture: exact floating-point equality in allocator-scope
// code. Never compiled — test_lint_tools.py asserts the flags.
#include <vector>

using Cycles = double;

bool
booksBalance(double charged, const std::vector<Cycles> &stalls)
{
    double remaining = charged;
    for (Cycles s : stalls)
        remaining -= s;
    if (remaining == 0.0)        // violation: literal comparison
        return true;
    return remaining != charged; // violation: double vs double
}
