/**
 * @file
 * Quickstart: the Fig. 11 end-to-end flow in ~80 lines.
 *
 * 1. Boot a hypervisor over one NPU board.
 * 2. Create a vNPU via hypercall (pay-as-you-go: 2 MEs + 2 VEs).
 * 3. Attach the guest driver, register a DMA buffer.
 * 4. Compile a model to NeuISA and launch an inference through the
 *    command buffer; poll for completion.
 *
 * Build: cmake --build build --target quickstart
 * Run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "models/zoo.hh"
#include "npu/core_sim.hh"
#include "runtime/executor.hh"
#include "sched/policy.hh"
#include "sim/clock.hh"
#include "virt/driver.hh"
#include "virt/hypervisor.hh"

using namespace neu10;

int
main()
{
    // --- Host side: hypervisor over a 2-chip x 2-core board. -------
    NpuBoardConfig board;
    Hypervisor hv(board);

    // --- Simulated physical core 0 with two tenant slots. ----------
    EventQueue queue;
    std::vector<VnpuSlot> slots(2);
    for (auto &s : slots) {
        s.nMes = 2;
        s.nVes = 2;
    }
    NpuCoreSim core(queue, board.core, makePolicy(PolicyKind::Neu10),
                    slots);
    SimCommandExecutor executor(queue, core);

    // --- Guest side: create a 2ME+2VE vNPU and attach the driver. --
    VnpuConfig cfg;
    cfg.numMesPerCore = 2;
    cfg.numVesPerCore = 2;
    cfg.sramSizePerCore = 64_MiB;
    cfg.memSizePerCore = 2_GiB;

    VnpuDriver driver(hv, /*tenant=*/1, cfg);
    driver.bindExecutor(&executor);
    executor.bindSlot(driver.id(), /*slot=*/0);
    driver.registerDmaBuffer(/*guest_base=*/0x10000, /*size=*/16_MiB);

    std::printf("created vNPU %u: %s\n", driver.id(),
                driver.queryConfig().toString().c_str());

    // --- Compile ResNet-50 (batch 8) to NeuISA. ---------------------
    const DnnGraph graph = buildModel(ModelId::ResNet, 8);
    const CompiledModel program = lowerToNeuIsa(
        graph, board.core.numMes, board.core.numVes,
        board.core.machine());
    std::printf("compiled %s: %zu operators, %.2f GMACs\n",
                graph.model.c_str(), program.ops.size(),
                graph.totalMacs() / 1e9);

    // --- Fig. 11: memcpy input -> launch -> memcpy output. ---------
    const auto h2d = driver.memcpyToDevice(0x10000, 4_MiB);
    const auto launch = driver.launch(&program);
    queue.runUntil();
    const auto d2h = driver.memcpyToHost(0x10000, 1_MiB);
    queue.runUntil();

    const Clock clock(board.core.freqHz);
    std::printf("h2d done=%d  launch done=%d  d2h done=%d\n",
                driver.poll(h2d), driver.poll(launch),
                driver.poll(d2h));
    std::printf("inference finished at t=%.3f ms simulated\n",
                clock.toSeconds(queue.now()) * 1e3);
    std::printf("ME utilization %.1f%%, VE utilization %.1f%%\n",
                100.0 * core.meUseful().utilization(0.0, queue.now()),
                100.0 * core.veBusy().utilization(0.0, queue.now()));
    return 0;
}
