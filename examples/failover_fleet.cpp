/**
 * @file
 * Failover scenario: a provider's fleet loses a whole board mid-day.
 *
 * Eight tenants are load-balanced one-per-core across a 2-board
 * fleet. At 40% of the horizon, board 0 trips off the fabric — four
 * cores gone, four vNPUs' device state with them. The failover
 * controller notices at the next epoch boundary: it quarantines the
 * dead cores in the placer, revokes their vNPUs through the
 * hypervisor's bulk host-side teardown (MMIO windows and IOMMU
 * attachments recycled), checkpoints each tenant's
 * admitted-but-unserved backlog, and restores the four vNPUs on the
 * surviving board — re-running the §III-B split against each
 * destination's residency and charging a recovery stall. Requests
 * that arrived during the outage are delivered late and priced
 * against the SLO; nothing is silently dropped. The printout follows
 * the controller epoch by epoch and compares the outcome with the
 * same fleet running without failover.
 *
 * Run: ./build/examples/failover_fleet
 */

#include <cstdio>
#include <cstdlib>

#include "cluster/fleet.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "sim/clock.hh"
#include "vnpu/allocator.hh"

using namespace neu10;

namespace
{

FleetConfig
scenario(bool failover, Cycles horizon)
{
    FleetConfig cfg;
    cfg.numBoards = 2; // x 4 cores
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;
    cfg.elastic.epochs = 6;
    cfg.elastic.imbalanceThreshold = 1e18; // isolate the failover
    cfg.resilience.failover = failover;
    cfg.resilience.recoveryStallCycles = 1e5;

    FaultEvent loss;
    loss.at = 0.4 * horizon;
    loss.kind = FaultKind::BoardLoss;
    loss.board = 0;
    loss.durationCycles = kCyclesInf;
    cfg.resilience.faults = {loss};

    const VnpuSizing sizing =
        sizeVnpuForModel(ModelId::Mnist, 8, 4, cfg.board.core);
    for (unsigned i = 0; i < 8; ++i) {
        ClusterTenantSpec t;
        t.model = ModelId::Mnist;
        t.batch = 8;
        t.eus = 4;
        t.traffic.ratePerSec = 0.35 * cfg.board.core.freqHz /
                               sizing.serviceEstimate();
        t.traffic.seed = 42 + i;
        t.sloCycles = 10.0 * sizing.serviceEstimate();
        t.maxQueueDepth = 64;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

} // anonymous namespace

int
main()
{
    const Clock clock;
    bool smoke = false;
    try {
        smoke = envFlag("NEU10_SMOKE", false);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the reason
    }
    const Cycles horizon = smoke ? 6e6 : 1.8e7;

    const FleetResult off = runFleet(scenario(false, horizon));
    const FleetResult on = runFleet(scenario(true, horizon));

    std::printf("Failover fleet: 8 tenants on 2 boards; board 0 "
                "(cores 0-3) dies at 40%% of the run\n\n");

    std::printf("The failover controller, epoch by epoch:\n");
    for (const FleetEpochReport &er : on.epochReports)
        std::printf("  epoch %u: %5llu served  %3llu queued  %u "
                    "core failures, %u vNPUs restored\n",
                    er.epoch,
                    static_cast<unsigned long long>(er.completed),
                    static_cast<unsigned long long>(er.backlog),
                    er.failures, er.restores);

    std::printf("\nWhere the evicted tenants landed:\n");
    for (size_t i = 0; i < on.tenants.size(); ++i) {
        const TenantResult &tr = on.tenants[i];
        if (tr.failovers == 0)
            continue;
        std::printf("  tenant %zu: restored on core %u as %uM%uV, "
                    "%llu requests carried through, %.2f ms down\n",
                    i, on.placements[i].core, on.placements[i].nMes,
                    on.placements[i].nVes,
                    static_cast<unsigned long long>(
                        tr.recoveredRequests),
                    clock.toSeconds(tr.downtimeCycles) * 1e3);
    }

    auto report = [&](const char *name, const FleetResult &r) {
        std::printf("  %-12s %6llu served  %5llu lost  goodput "
                    "%6.0f req/s  p99 %7.3f ms  availability "
                    "%.1f%%\n",
                    name,
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.lostRequests),
                    r.goodput, clock.toSeconds(r.p99()) * 1e3,
                    100.0 * r.availability);
    };
    std::printf("\nFinal score (same traffic, same fault):\n");
    report("no-failover", off);
    report("failover", on);

    std::printf("\nReading: half the fleet's hardware is gone either "
                "way — availability is %.1f%% in both rows. Without "
                "failover that costs every post-fault request of "
                "four tenants (%llu lost). With it, the controller "
                "pays four recovery stalls (MTTR %.2f ms), packs the "
                "survivors' spare engines with the restored vNPUs, "
                "and the same hardware loses nothing — the outage "
                "shows up as tail latency instead of dropped "
                "traffic.\n",
                100.0 * on.availability,
                static_cast<unsigned long long>(off.lostRequests),
                clock.toSeconds(on.mttrCycles) * 1e3);
    return 0;
}
