/**
 * @file
 * Elastic scenario: a provider's capacity planner made a bad bet.
 * Eight small OCR tenants were first-fit-packed onto the first two
 * cores of an 8-core fleet; their traffic turns out bursty and ~20%
 * above each vNPU's solo capacity, so the two hot cores drown in
 * backlog while six cores idle. The elastic engine notices at the
 * first epoch boundary: it migrates vNPUs to the idle cores through
 * the hypervisor's destroy/create hypercalls (each move pays a
 * migration stall), re-runs the §III-B split against the destination
 * residency so the migrants grow into the idle EUs, and the serving
 * loop resumes with the carried backlogs. The printout follows the
 * rebalancer epoch by epoch and compares the final SLO report with
 * the static run.
 *
 * Run: ./build/examples/elastic_fleet
 */

#include <cstdio>
#include <cstdlib>

#include "cluster/fleet.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "sim/clock.hh"
#include "vnpu/allocator.hh"

using namespace neu10;

namespace
{

FleetConfig
scenario(unsigned epochs, Cycles horizon)
{
    FleetConfig cfg;
    cfg.numBoards = 2; // x 4 cores
    cfg.placement = PlacementPolicy::FirstFit;
    cfg.horizon = horizon;
    cfg.maxCycles = 50.0 * horizon;
    cfg.elastic.epochs = epochs;
    cfg.elastic.imbalanceThreshold = 0.05;

    const VnpuSizing sizing =
        sizeVnpuForModel(ModelId::Mnist, 32, 2, cfg.board.core);
    for (unsigned i = 0; i < 8; ++i) {
        ClusterTenantSpec t;
        t.model = ModelId::Mnist;
        t.batch = 32;
        t.eus = 2;
        t.traffic.shape = TrafficShape::Bursty;
        // 1.2x each vNPU's solo service rate: persistently overloaded
        // until the fleet grants more engines.
        t.traffic.ratePerSec = 1.2 * cfg.board.core.freqHz /
                               sizing.serviceEstimate();
        t.traffic.seed = 42 + i;
        t.sloCycles = 5.0 * sizing.serviceEstimate();
        t.maxQueueDepth = 32;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

} // anonymous namespace

int
main()
{
    const Clock clock;
    bool smoke = false;
    try {
        smoke = envFlag("NEU10_SMOKE", false);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the reason
    }
    const Cycles horizon = smoke ? 6e6 : 3e7;

    const FleetResult stat = runFleet(scenario(1, horizon));
    const FleetResult elas = runFleet(scenario(8, horizon));

    std::printf("Elastic fleet: 8 overloaded 2-EU tenants, first-fit "
                "onto 2 of 8 cores, bursty traffic\n\n");

    std::printf("The rebalancer, epoch by epoch:\n");
    for (const FleetEpochReport &er : elas.epochReports)
        std::printf("  epoch %u: %4llu served, %3llu carried over, "
                    "%u migrations, imbalance %.2f\n",
                    er.epoch,
                    static_cast<unsigned long long>(er.completed),
                    static_cast<unsigned long long>(er.backlog),
                    er.migrations, er.pressureStddev);

    std::printf("\nWhere everyone ended up (vs. cores 0-1 at the "
                "start):\n");
    for (size_t i = 0; i < elas.placements.size(); ++i) {
        const TenantPlacement &pl = elas.placements[i];
        std::printf("  tenant %zu: core %u, %uM%uV%s\n", i, pl.core,
                    pl.nMes, pl.nVes,
                    pl.migrations > 0 ? "  (migrated, grew into "
                                        "idle EUs)"
                                      : "");
    }

    auto report = [&](const char *name, const FleetResult &r) {
        std::printf("  %-8s %5llu served  %5.1f%% rejected  goodput "
                    "%6.0f req/s  p99 %.3f ms\n",
                    name,
                    static_cast<unsigned long long>(r.completed),
                    100.0 * r.rejectionRate(), r.goodput,
                    clock.toSeconds(r.p99()) * 1e3);
    };
    std::printf("\nFinal score:\n");
    report("static", stat);
    report("elastic", elas);

    std::printf("\nReading: the static fleet keeps shedding load on "
                "two saturated cores all run long. The elastic "
                "engine pays %u migration stalls once, spreads the "
                "vNPUs across the idle cores, and the re-run "
                "allocator split grows each migrant's engine grant — "
                "so the same hardware serves more requests at a "
                "fraction of the tail latency.\n",
                elas.migrations);
    return 0;
}
