/**
 * @file
 * Cloud serving scenario: a recommendation service (DLRM) and an
 * object-detection service (RetinaNet) share one physical NPU core.
 * The operator compares all four sharing designs and prints an
 * SLO-style report — p95 latency against a target, throughput, and
 * how often harvesting blocked each tenant.
 *
 * Run: ./build/examples/multi_tenant_serving
 */

#include <cstdio>

#include "runtime/serving.hh"
#include "sim/clock.hh"

using namespace neu10;

int
main()
{
    const Clock clock;

    // SLO targets per service (p95, milliseconds).
    const double slo_ms[2] = {0.5, 400.0};

    std::printf("Scenario: DLRM (recsys, batch 32) + RetinaNet "
                "(detection, batch 32)\n");
    std::printf("Each service rents a 2ME+2VE vNPU on one 4ME/4VE "
                "core.\n\n");
    std::printf("%-10s %-7s %12s %12s %10s %8s %6s\n", "design",
                "tenant", "p95 (ms)", "mean (ms)", "req/s",
                "blocked", "SLO?");
    std::printf("-------------------------------------------------"
                "-----------------------\n");

    for (PolicyKind pol : {PolicyKind::Pmt, PolicyKind::V10,
                           PolicyKind::Neu10NH, PolicyKind::Neu10}) {
        ServingConfig cfg;
        cfg.policy = pol;
        cfg.tenants = {
            {ModelId::Dlrm, 32, 2, 2, 1.0, 1},
            {ModelId::RetinaNet, 32, 2, 2, 1.0, 1},
        };
        cfg.minRequests = 8;
        cfg.maxCycles = 3e9;
        const ServingResult res = runServing(cfg);

        for (int w = 0; w < 2; ++w) {
            const auto &t = res.tenants[w];
            const double p95_ms =
                clock.toSeconds(t.p95()) * 1e3;
            const double mean_ms =
                clock.toSeconds(t.latencyCycles.mean()) * 1e3;
            std::printf("%-10s %-7s %12.3f %12.3f %10.1f %7.2f%% "
                        "%6s\n",
                        res.policy.c_str(), t.model.c_str(), p95_ms,
                        mean_ms, t.throughput,
                        100.0 * t.blockedFrac,
                        p95_ms <= slo_ms[w] ? "ok" : "MISS");
        }
        std::printf("%-10s core: ME %.0f%%  VE %.0f%%  HBM %.0f "
                    "GB/s avg\n\n",
                    "", 100.0 * res.meUsefulUtil, 100.0 * res.veUtil,
                    clock.toBytesPerSec(res.avgHbmBytesPerCycle) /
                        1e9);
    }

    std::printf("Reading: whole-core time sharing (PMT) wastes the "
                "complementary demand; V10 shares but lets RetinaNet's "
                "long operators spike DLRM's tail; Neu10 holds both "
                "SLOs while keeping the core busiest.\n");
    return 0;
}
