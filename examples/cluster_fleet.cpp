/**
 * @file
 * Cluster scenario: a provider runs a 2-board fleet (8 cores) serving
 * eight tenants with different models, EU budgets and traffic shapes
 * — steady Poisson services, a bursty ad-ranking tenant, and two
 * diurnal consumer apps peaking at opposite times of day. The fleet
 * places every vNPU with the load-balanced policy, then prints where
 * each tenant landed and whether its latency SLO held.
 *
 * Run: ./build/examples/cluster_fleet
 */

#include <cstdio>

#include "cluster/fleet.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "sim/clock.hh"
#include "vnpu/allocator.hh"

using namespace neu10;

int
main()
{
    const Clock clock;
    bool smoke = false;
    try {
        smoke = envFlag("NEU10_SMOKE", false);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the reason
    }

    FleetConfig cfg;
    cfg.numBoards = 2; // x 4 cores per board
    cfg.placement = PlacementPolicy::LoadBalanced;
    cfg.corePolicy = PolicyKind::Neu10;
    cfg.horizon = smoke ? 1e7 : 5e7;
    cfg.maxCycles = 2e9;

    struct App
    {
        const char *name;
        ModelId model;
        unsigned batch;
        unsigned eus;
        TrafficShape shape;
        double rho;           ///< target utilization of its own vNPU
        double phase;         ///< diurnal phase offset
    };
    const App apps[] = {
        {"vision-1", ModelId::ResNet, 8, 6, TrafficShape::Poisson,
         0.4, 0.0},
        {"vision-2", ModelId::ResNet, 8, 6, TrafficShape::Poisson,
         0.4, 0.0},
        {"recsys-1", ModelId::Dlrm, 32, 4, TrafficShape::Poisson,
         0.5, 0.0},
        {"recsys-2", ModelId::Ncf, 32, 4, TrafficShape::Poisson,
         0.4, 0.0},
        {"ads-rank", ModelId::Dlrm, 32, 4, TrafficShape::Bursty,
         0.6, 0.0},
        {"ocr-edge", ModelId::Mnist, 8, 2, TrafficShape::Bursty,
         0.6, 0.0},
        {"app-east", ModelId::Mnist, 8, 2, TrafficShape::Diurnal,
         0.35, 0.0},
        {"app-west", ModelId::Ncf, 32, 4, TrafficShape::Diurnal,
         0.35, 0.5},
    };

    for (size_t i = 0; i < std::size(apps); ++i) {
        const App &app = apps[i];
        const VnpuSizing sizing = sizeVnpuForModel(
            app.model, app.batch, app.eus, cfg.board.core);
        ClusterTenantSpec t;
        t.model = app.model;
        t.batch = app.batch;
        t.eus = app.eus;
        t.traffic.shape = app.shape;
        t.traffic.ratePerSec = app.rho * cfg.board.core.freqHz /
                               sizing.serviceEstimate();
        t.traffic.seed = 1000 + i;
        t.traffic.diurnalPhase = app.phase;
        t.traffic.diurnalPeriodSec =
            clock.toSeconds(cfg.horizon) / 2.0;
        // Latency SLO: 10x the solo service estimate leaves
        // room for open-loop queueing at moderate load.
        t.sloCycles = 10.0 * sizing.serviceEstimate();
        // Bursty tenants keep a shallow queue: shedding the burst at
        // admission protects the latency of what is served.
        t.maxQueueDepth =
            app.shape == TrafficShape::Bursty ? 8 : 24;
        cfg.tenants.push_back(t);
    }

    const FleetResult fleet = runFleet(cfg);

    std::printf("Fleet: %u boards x %u cores, %s placement, %s "
                "on-core scheduling\n\n",
                cfg.numBoards, cfg.board.totalCores(),
                fleet.placement.c_str(), fleet.policy.c_str());

    std::printf("%-10s %-6s %5s %10s %7s %7s %10s %10s %6s\n",
                "tenant", "model", "vNPU", "core", "served",
                "reject", "p95 (ms)", "p99 (ms)", "SLO?");
    std::printf("--------------------------------------------------"
                "--------------------------\n");
    for (size_t i = 0; i < cfg.tenants.size(); ++i) {
        const App &app = apps[i];
        const TenantPlacement &pl = fleet.placements[i];
        const TenantResult &tr = fleet.tenants[i];
        const double slo_ms =
            clock.toSeconds(cfg.tenants[i].sloCycles) * 1e3;
        const double p95_ms = clock.toSeconds(tr.p95()) * 1e3;
        std::printf("%-10s %-6s %2uM%uV %6s %2u %7llu %6.1f%% "
                    "%10.3f %10.3f %6s\n",
                    app.name, tr.model.c_str(), pl.nMes, pl.nVes,
                    "core", pl.core,
                    static_cast<unsigned long long>(tr.completed),
                    tr.submitted > 0
                        ? 100.0 * tr.rejected / tr.submitted
                        : 0.0,
                    p95_ms, clock.toSeconds(tr.p99()) * 1e3,
                    p95_ms <= slo_ms ? "ok" : "MISS");
    }

    std::printf("\nFleet totals: %llu served / %llu arrived "
                "(%.1f%% rejected), goodput %.0f req/s, p99 %.3f "
                "ms\n",
                static_cast<unsigned long long>(fleet.completed),
                static_cast<unsigned long long>(fleet.submitted),
                100.0 * fleet.rejectionRate(), fleet.goodput,
                clock.toSeconds(fleet.p99()) * 1e3);
    std::printf("Core EU utilization: mean %.1f%%, stddev %.3f "
                "across %zu cores\n",
                100.0 * fleet.coreEuUtil.mean(),
                fleet.coreEuUtil.stddev(), fleet.cores.size());
    std::printf("\nReading: the load-balanced placer spreads the two "
                "ResNet vNPUs onto different cores; the bursty ad "
                "ranker sheds excess load through admission control "
                "instead of blowing up its neighbors' tails; the two "
                "diurnal apps peak half a day apart, so their shared "
                "fleet absorbs both waves.\n");
    return 0;
}
