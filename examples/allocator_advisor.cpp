/**
 * @file
 * Pay-as-you-go sizing advisor (§III-B): given a model and an EU
 * budget, profile it, apply the Eq. (4) allocator, and print the
 * recommended vNPU configuration with the modeled speedup ladder —
 * what a cloud console's "right-size my accelerator" button would
 * show.
 *
 * Run: ./build/examples/allocator_advisor [model-abbrev] [batch]
 *      e.g. ./build/examples/allocator_advisor DLRM 32
 */

#include <cstdio>
#include <cstdlib>

#include "common/strings.hh"
#include "compiler/profile.hh"
#include "models/zoo.hh"
#include "npu/config.hh"
#include "vnpu/allocator.hh"

using namespace neu10;

int
main(int argc, char **argv)
{
    const ModelId id =
        argc > 1 ? modelFromAbbrev(argv[1]) : ModelId::Bert;
    const unsigned batch =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 32;

    const NpuCoreConfig core;
    const DnnGraph graph = buildModel(id, batch);
    const auto prof = profileWorkload(graph, core.numMes, core.numVes,
                                      core.hbmBytesPerCycle(),
                                      core.machine());

    std::printf("Workload: %s, batch %u\n", modelName(id).c_str(),
                batch);
    std::printf("  profiled ME active ratio m = %.3f\n", prof.m);
    std::printf("  profiled VE active ratio v = %.3f\n", prof.v);
    std::printf("  optimal ME:VE ratio k* = %.2f  (Eq. 4)\n\n",
                allocOptimalRatio(prof.m, prof.v));

    std::printf("%4s %10s %14s %12s %14s\n", "EUs", "split",
                "utilization", "speedup", "$/perf (rel)");
    for (unsigned total = 2; total <= 16; ++total) {
        const auto [nm, nv] = allocSplitEus(prof.m, prof.v, total);
        const double util =
            allocUtilization(prof.m, prof.v, nm, nv);
        const double speedup =
            allocNormalizedTime(prof.m, prof.v, 1, 1) /
            allocNormalizedTime(prof.m, prof.v, nm, nv);
        std::printf("%4u %6uME+%uVE %13.1f%% %12.2fx %14.2f\n",
                    total, nm, nv, 100.0 * util, speedup,
                    total / speedup / 2.0);
    }

    const VnpuConfig cfg =
        allocateVnpu(prof, 8, graph.hbmFootprint, core);
    std::printf("\nRecommended 8-EU instance: %s\n",
                cfg.toString().c_str());
    std::printf("(memory rounded to %s HBM segments; SRAM scaled "
                "with the ME share, SIII-B)\n",
                formatBytes(core.hbmSegment).c_str());
    return 0;
}
