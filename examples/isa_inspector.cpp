/**
 * @file
 * NeuISA toolchain walkthrough: compile a small model end-to-end to a
 * real NeuISA binary, dump the uTOp execution table and snippets,
 * round-trip it through the binary codec, and execute its control
 * flow functionally with the interpreter — including a Fig. 15-style
 * loop program.
 *
 * Run: ./build/examples/isa_inspector
 */

#include <cstdio>

#include "compiler/lower.hh"
#include "isa/builders.hh"
#include "isa/encoding.hh"
#include "isa/interpreter.hh"
#include "models/builder.hh"

using namespace neu10;

int
main()
{
    // --- A small two-layer model built with the public builder. ----
    GraphBuilder g("inspector-demo", /*batch=*/8);
    g.matmul("fc1", 8 * 64, 256, 512);
    g.fused("relu1", 8 * 64 * 256, 1.0);
    g.vector("softmax", 8.0 * 256, 5.0);
    const DnnGraph graph = g.take(64_MiB);

    // --- Compile to an instruction-listed NeuISA binary. -----------
    const NeuIsaProgram prog = emitNeuIsaProgram(graph, 4, 4);
    std::printf("=== NeuISA binary for '%s' ===\n",
                graph.model.c_str());
    std::printf("%s\n", prog.toString().c_str());

    // --- Serialize / deserialize. ----------------------------------
    const auto image = encode(prog);
    const NeuIsaProgram back = decode(image);
    std::printf("binary image: %zu bytes, round-trip %s\n\n",
                image.size(),
                back.table == prog.table ? "identical" : "DIFFERS");

    // --- Execute functionally. --------------------------------------
    Interpreter interp;
    const auto run = interp.runProgram(back);
    std::printf("functional run: %llu groups, %llu uTOps, %llu "
                "instructions\n\n",
                static_cast<unsigned long long>(run.groupsExecuted),
                static_cast<unsigned long long>(run.uTopsExecuted),
                static_cast<unsigned long long>(run.instsExecuted));

    // --- The Fig. 15 loop: cross-group control flow. ----------------
    std::printf("=== Fig. 15 loop structure (3 iterations) ===\n");
    const NeuIsaProgram loop = makeNeuIsaLoop(3, 2);
    Interpreter loop_interp;
    const auto loop_run = loop_interp.runProgram(loop);
    std::printf("group trace:");
    for (auto gi : loop_run.groupTrace)
        std::printf(" %u", gi);
    std::printf("\nloop counter in scratch SRAM: %lld\n",
                static_cast<long long>(loop_interp.scratch(0)));
    std::printf("(uTop.nextGroup %%r0 looped groups 0-2 three times, "
                "then fell through — the Fig. 15 semantics.)\n");
    return 0;
}
