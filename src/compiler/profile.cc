#include "compiler/profile.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace neu10
{

namespace
{

/** Fused consumers' VE work folded into the producer for profiling. */
struct Folded
{
    double veElems = 0.0;
    Bytes bytes = 0;
};

} // anonymous namespace

WorkloadProfile
profileWorkload(const DnnGraph &graph, unsigned max_me, unsigned max_ve,
                double hbm_bpc, const MachineModel &machine)
{
    NEU10_ASSERT(max_me > 0 && max_ve > 0, "need engines to profile for");
    NEU10_ASSERT(hbm_bpc > 0.0, "need HBM bandwidth");
    graph.validate();

    WorkloadProfile prof;
    prof.model = graph.model;
    prof.batch = graph.batch;

    std::vector<Folded> fold(graph.ops.size());
    for (const auto &op : graph.ops) {
        if (op.fuseWithPrev) {
            fold[op.deps[0]].veElems += op.veElems;
            fold[op.deps[0]].bytes += op.bytes;
        }
    }

    Cycles ref_time = 0.0;   // 1 ME / 1 VE pipelined run
    Cycles me_active = 0.0;
    Cycles me_useful = 0.0;
    Cycles ve_active = 0.0;
    Cycles clock = 0.0;      // demand-allocation timeline

    for (std::uint32_t gi = 0; gi < graph.ops.size(); ++gi) {
        const TensorOp &op = graph.ops[gi];
        if (op.fuseWithPrev)
            continue;

        const Cycles me = usesMe(op.kind) && op.macs > 0
                              ? machine.meCyclesFor(op.macs,
                                                    op.meEfficiency)
                              : 0.0;
        const Cycles ve = machine.veCyclesFor(op.veElems +
                                              fold[gi].veElems);
        const Bytes bytes = op.bytes + fold[gi].bytes;
        const Cycles dma = static_cast<double>(bytes) / hbm_bpc;

        // Reference run: engines pipeline within an operator, so its
        // duration is the max of the three streams (§III-B's model).
        ref_time += std::max({me, ve, dma, 1.0});
        me_active += me;
        me_useful += usesMe(op.kind) ? machine.meCyclesFor(op.macs) : 0.0;
        ve_active += ve;

        // Demand analysis: the compiler picks engine counts that keep
        // the engines efficient for this operator's shape (§II-B).
        OpProfile p;
        p.name = op.name;
        p.kind = op.kind;
        p.meBusy = me;
        p.veBusy = ve;
        p.bytes = bytes;

        if (me > 0.0) {
            p.demandMe = std::min<unsigned>(max_me, op.parallelTiles);
            // Engine-seconds of VE work per ME-second determines how
            // many VEs keep pace with the popped output stream.
            const double ve_per_me =
                me > 0.0 ? ve / (me / p.demandMe) : 0.0;
            p.demandVe = std::min<unsigned>(
                max_ve,
                std::max<unsigned>(ve > 0.0 ? 1 : 0,
                                   static_cast<unsigned>(
                                       std::ceil(ve_per_me))));
        } else {
            p.demandMe = 0;
            const unsigned want = static_cast<unsigned>(
                std::ceil(ve / std::max(1.0, dma)));
            p.demandVe = std::min<unsigned>(
                max_ve, std::max<unsigned>(1, want));
        }

        const Cycles me_part =
            p.demandMe > 0 ? me / p.demandMe : 0.0;
        const Cycles ve_part =
            p.demandVe > 0 ? ve / p.demandVe : 0.0;
        const Cycles dur = std::max({me_part, ve_part, dma, 1.0});

        p.start = clock;
        p.end = clock + dur;
        clock = p.end;
        prof.timeline.push_back(std::move(p));
    }

    prof.referenceTime = ref_time;
    prof.demandTime = clock;
    prof.meBusy = me_active;
    prof.meUseful = me_useful;
    prof.veBusy = ve_active;
    prof.bytes = graph.totalBytes();
    prof.m = ref_time > 0.0 ? me_active / ref_time : 0.0;
    prof.v = ref_time > 0.0 ? ve_active / ref_time : 0.0;
    prof.m = std::min(prof.m, 1.0);
    prof.v = std::min(prof.v, 1.0);
    return prof;
}

} // namespace neu10
