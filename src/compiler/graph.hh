/**
 * @file
 * DNN dataflow graphs: the compiler's input representation.
 *
 * An ML framework frontend (PyTorch / TensorFlow in the paper, §III-F)
 * produces a device-agnostic graph of tensor operators. Here an operator
 * carries the *work quantities* the backend cost model needs — MACs for
 * the matrix engines, element-operations for the vector engines, HBM
 * traffic — plus the structural facts lowering depends on: how many
 * independent (non-reduction) tiles it splits into, its systolic-array
 * efficiency, and whether it is an elementwise op fusable into its
 * producer (§II-B operator fusion).
 */

#ifndef NEU10_COMPILER_GRAPH_HH
#define NEU10_COMPILER_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace neu10
{

/** Operator classes relevant to ME/VE cost attribution. */
enum class OpKind : std::uint8_t
{
    MatMul = 0,  ///< dense matrix multiplication (ME)
    Conv,        ///< convolution lowered to systolic matmul (ME)
    Gemv,        ///< skinny matmul / matrix-vector (ME, low occupancy)
    Embedding,   ///< table gather: HBM + VE, no ME work
    Vector,      ///< generic elementwise / softmax / norm / pooling (VE)
    Reduce,      ///< horizontal reductions (VE)
};

/** True for kinds that execute on the matrix engines. */
bool usesMe(OpKind kind);

/** One tensor operator with its cost quantities. */
struct TensorOp
{
    std::string name;
    OpKind kind = OpKind::Vector;

    /** Multiply-accumulate count (matrix-engine work). */
    double macs = 0.0;

    /** Vector-lane element operations (vector-engine work). */
    double veElems = 0.0;

    /** HBM traffic in bytes (weights + spilled activations). */
    Bytes bytes = 0;

    /**
     * Fraction of peak systolic throughput this operator achieves
     * (shape-dependent: small channel counts, skinny matrices and
     * depthwise patterns underfill the 128x128 array).
     */
    double meEfficiency = 1.0;

    /**
     * Independent output tiles available from non-reduction dimensions
     * (batch / rows / columns). If fewer than the MEs to fill, the
     * compiler must partition the reduction dimension, which costs a
     * separate summation uTOp under NeuISA (§III-D overhead).
     */
    unsigned parallelTiles = 1;

    /** Elementwise operator fused into its (single) producer. */
    bool fuseWithPrev = false;

    /** Indices of producer operators within the graph. */
    std::vector<std::uint32_t> deps;
};

/** A whole model at a concrete batch size. */
struct DnnGraph
{
    std::string model;
    unsigned batch = 1;
    std::vector<TensorOp> ops;

    /** HBM footprint of weights + activations (Table I). */
    Bytes hbmFootprint = 0;

    /**
     * Structural checks: deps in range and acyclic (indices must point
     * backwards — builders emit topological order), fusion targets
     * exist, quantities non-negative.
     * @throws FatalError on the first violation.
     */
    void validate() const;

    /** Sum of MAC work over all operators. */
    double totalMacs() const;

    /** Sum of VE element work over all operators. */
    double totalVeElems() const;

    /** Sum of HBM traffic over all operators. */
    Bytes totalBytes() const;
};

} // namespace neu10

#endif // NEU10_COMPILER_GRAPH_HH
