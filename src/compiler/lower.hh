/**
 * @file
 * Lowering DNN graphs to executable workloads.
 *
 * Two backends mirror the paper's compared systems:
 *
 *  - lowerToNeuIsa(): the NeuISA path (§III-D). Every ME-involving
 *    operator is partitioned into up to nx ME uTOps (one per tile) so
 *    the hardware can grant it any number of engines at runtime; fused
 *    vector work rides in the uTOps' VE slots; operators whose
 *    non-reduction tiling cannot fill the engines are partitioned on
 *    the reduction dimension, paying a separate summation VE uTOp —
 *    the NeuISA overhead measured in Fig. 16.
 *
 *  - lowerToVliw(): the classic statically-scheduled path the PMT and
 *    V10 baselines execute. The compiler fixes the ME count k; at
 *    runtime the operator occupies all k MEs for its whole duration
 *    regardless of how many it fills (Fig. 9's false coupling).
 *
 * Both emit the same simulator-facing structure (WorkUnit groups), so
 * the event-driven core executes either honestly.
 */

#ifndef NEU10_COMPILER_LOWER_HH
#define NEU10_COMPILER_LOWER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "compiler/graph.hh"
#include "compiler/machine.hh"
#include "isa/neuisa.hh"

namespace neu10
{

/**
 * One schedulable unit of work — a uTOp under NeuISA, or a whole
 * gang-coupled VLIW operator under the classic ISA.
 */
struct WorkUnit
{
    UTopKind kind = UTopKind::Me;

    /**
     * MEs this unit must hold *simultaneously* while executing.
     * NeuISA ME uTOps: 1. Classic VLIW operators: the compiled ME
     * width k (the false coupling). VE units: 0.
     */
    unsigned gang = 1;

    /** Occupancy time of each held ME at full progress rate. */
    Cycles meTime = 0.0;

    /**
     * Fraction of held ME-cycles doing useful work; < 1 when a VLIW
     * operator cannot fill all k MEs. Used for utilization accounting
     * (Fig. 22 reports useful busy time).
     */
    double meEff = 1.0;

    /** Total VE work (VE-cycles) pipelined with this unit. */
    Cycles veTime = 0.0;

    /** HBM traffic attributed to this unit. */
    Bytes bytes = 0;
};

/** Units that may run concurrently; groups execute in sequence. */
struct WorkGroup
{
    std::vector<WorkUnit> units;
};

/** A lowered tensor operator: its group sequence plus bookkeeping. */
struct CompiledOp
{
    std::string name;
    OpKind kind = OpKind::Vector;
    std::uint32_t sourceIndex = 0;     ///< index in the DnnGraph
    std::vector<WorkGroup> groups;
    std::vector<std::uint32_t> deps;   ///< producer CompiledOp indices

    /** True if any group contains an ME unit. */
    bool usesMe() const;

    /** Aggregate ME occupancy cycles across groups (per held ME). */
    Cycles totalMeTime() const;

    /** Aggregate VE cycles across groups. */
    Cycles totalVeTime() const;

    /** Aggregate HBM bytes across groups. */
    Bytes totalBytes() const;
};

/** A fully lowered model ready for the simulator. */
struct CompiledModel
{
    std::string model;
    unsigned batch = 1;
    unsigned nx = 0;               ///< ME width the binary was built for
    unsigned ny = 0;               ///< VE slot width
    bool neuIsa = false;           ///< NeuISA or classic VLIW
    Bytes hbmFootprint = 0;
    std::vector<CompiledOp> ops;

    /** Structural checks mirroring NeuIsaProgram::validate(). */
    void validate() const;

    /** Total useful ME busy cycles of one inference. */
    Cycles totalMeBusy() const;

    /** Total VE busy cycles of one inference. */
    Cycles totalVeBusy() const;

    /** Total HBM traffic of one inference. */
    Bytes totalBytes() const;
};

/**
 * NeuISA backend.
 *
 * @param graph  validated DNN graph.
 * @param nx     physical-core ME count to partition for (binaries run
 *               on any allocation at runtime; nx bounds group width).
 * @param ny     VE count (VE-slot width of uTOps).
 */
CompiledModel lowerToNeuIsa(const DnnGraph &graph, unsigned nx,
                            unsigned ny,
                            const MachineModel &machine = {});

/**
 * Classic VLIW backend: statically scheduled for exactly @p k_mes MEs
 * and @p k_ves VEs; operators gang-occupy all k MEs.
 */
CompiledModel lowerToVliw(const DnnGraph &graph, unsigned k_mes,
                          unsigned k_ves,
                          const MachineModel &machine = {});

/**
 * Emit an instruction-listed NeuIsaProgram for a (small) graph — the
 * artifact a real toolchain would hand the driver. Costs match
 * lowerToNeuIsa(); listings are per-uTOp push/pop/VE streams. Intended
 * for inspection, tests and the isa_inspector example; O(cycles)
 * output makes it unsuitable for full models.
 */
NeuIsaProgram emitNeuIsaProgram(const DnnGraph &graph, unsigned nx,
                                unsigned ny,
                                const MachineModel &machine = {});

} // namespace neu10

#endif // NEU10_COMPILER_LOWER_HH
