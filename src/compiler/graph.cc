#include "compiler/graph.hh"

#include "common/logging.hh"

namespace neu10
{

bool
usesMe(OpKind kind)
{
    switch (kind) {
      case OpKind::MatMul:
      case OpKind::Conv:
      case OpKind::Gemv:
        return true;
      case OpKind::Embedding:
      case OpKind::Vector:
      case OpKind::Reduce:
        return false;
    }
    panic("unknown OpKind %d", static_cast<int>(kind));
}

void
DnnGraph::validate() const
{
    if (ops.empty())
        fatal("model '%s' has no operators", model.c_str());
    if (batch == 0)
        fatal("model '%s' has batch size 0", model.c_str());
    for (size_t i = 0; i < ops.size(); ++i) {
        const TensorOp &op = ops[i];
        if (op.macs < 0 || op.veElems < 0)
            fatal("op '%s' has negative work", op.name.c_str());
        if (op.macs > 0 && !usesMe(op.kind))
            fatal("op '%s' carries MACs but kind does not use the ME",
                  op.name.c_str());
        if (op.meEfficiency <= 0.0 || op.meEfficiency > 1.0)
            fatal("op '%s' has efficiency %.3f outside (0, 1]",
                  op.name.c_str(), op.meEfficiency);
        if (op.parallelTiles == 0)
            fatal("op '%s' reports zero parallel tiles", op.name.c_str());
        for (auto d : op.deps) {
            if (d >= i)
                fatal("op '%s' (index %zu) depends on op %u: graphs "
                      "must be emitted in topological order",
                      op.name.c_str(), i, d);
        }
        if (op.fuseWithPrev) {
            if (op.deps.size() != 1)
                fatal("fused op '%s' must have exactly one producer",
                      op.name.c_str());
            if (usesMe(op.kind))
                fatal("fused op '%s' must be a vector operator",
                      op.name.c_str());
        }
    }
}

double
DnnGraph::totalMacs() const
{
    double total = 0.0;
    for (const auto &op : ops)
        total += op.macs;
    return total;
}

double
DnnGraph::totalVeElems() const
{
    double total = 0.0;
    for (const auto &op : ops)
        total += op.veElems;
    return total;
}

Bytes
DnnGraph::totalBytes() const
{
    Bytes total = 0;
    for (const auto &op : ops)
        total += op.bytes;
    return total;
}

} // namespace neu10
