/**
 * @file
 * The compiler's machine model: per-engine throughputs of the target
 * NPU core (Table II of the paper).
 *
 * One matrix engine is a 128x128 systolic array retiring 16384 MACs per
 * cycle at full occupancy; one vector engine retires 128x8 FP32 lane
 * operations per cycle. The compiler uses these to convert operator
 * work quantities into busy cycles; the same numbers parameterize the
 * hardware model in src/npu so compiled costs and simulated hardware
 * agree by construction.
 */

#ifndef NEU10_COMPILER_MACHINE_HH
#define NEU10_COMPILER_MACHINE_HH

#include "common/types.hh"

namespace neu10
{

/** Engine throughput description (defaults = Table II). */
struct MachineModel
{
    unsigned meRows = 128;     ///< systolic array rows
    unsigned meCols = 128;     ///< systolic array columns
    unsigned veLanes = 128;    ///< vector lanes
    unsigned veWidth = 8;      ///< ops per lane per cycle
    double freqHz = 1.05e9;    ///< core clock (1050 MHz)

    /** MACs one ME retires per cycle at full occupancy. */
    double
    meMacsPerCycle() const
    {
        return static_cast<double>(meRows) * meCols;
    }

    /** Element-ops one VE retires per cycle. */
    double
    veElemsPerCycle() const
    {
        return static_cast<double>(veLanes) * veWidth;
    }

    /** Busy cycles on one ME for @p macs at @p efficiency. */
    Cycles
    meCyclesFor(double macs, double efficiency = 1.0) const
    {
        return macs / (meMacsPerCycle() * efficiency);
    }

    /** Busy cycles on one VE for @p elems element operations. */
    Cycles
    veCyclesFor(double elems) const
    {
        return elems / veElemsPerCycle();
    }
};

} // namespace neu10

#endif // NEU10_COMPILER_MACHINE_HH
