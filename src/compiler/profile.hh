/**
 * @file
 * Compile-time workload profiling (§II-B and §III-B).
 *
 * The vNPU allocator needs the ME/VE active-time ratios m and v, defined
 * on a 1-ME/1-VE reference execution ("The ME/VE demands of a ML workload
 * can be reflected by how it runs on one ME and one VE"). The same
 * analysis yields the characterization figures: per-operator ME/VE
 * demand over time (Figs. 2-3), the aggregate ME:VE intensity ratio
 * (Fig. 4), engine utilization over time (Fig. 5) and the HBM bandwidth
 * profile (Fig. 7).
 */

#ifndef NEU10_COMPILER_PROFILE_HH
#define NEU10_COMPILER_PROFILE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "compiler/graph.hh"
#include "compiler/machine.hh"

namespace neu10
{

/** One operator's slice of the solo-execution timeline. */
struct OpProfile
{
    std::string name;
    OpKind kind;
    Cycles start = 0.0;       ///< solo start time (demand allocation)
    Cycles end = 0.0;         ///< solo end time
    unsigned demandMe = 0;    ///< MEs the compiler would assign
    unsigned demandVe = 0;    ///< VEs the compiler would assign
    Cycles meBusy = 0.0;      ///< total ME busy cycles of the op
    Cycles veBusy = 0.0;      ///< total VE busy cycles of the op
    Bytes bytes = 0;          ///< HBM traffic of the op
};

/** Whole-workload profile used by the allocator and the figures. */
struct WorkloadProfile
{
    std::string model;
    unsigned batch = 1;

    /** ME active ratio m on the 1-ME/1-VE reference run (§III-B). */
    double m = 0.0;

    /** VE active ratio v on the 1-ME/1-VE reference run. */
    double v = 0.0;

    /** Reference (1 ME / 1 VE) solo runtime in cycles. */
    Cycles referenceTime = 0.0;

    /** Solo runtime at the demanded allocation (timeline end). */
    Cycles demandTime = 0.0;

    /** Total ME / VE busy cycles and HBM traffic per inference. */
    Cycles meBusy = 0.0;
    Cycles veBusy = 0.0;
    Bytes bytes = 0;

    /**
     * ME cycles at *peak* array throughput (macs / peak rate): the
     * performance-counter view of ME compute, excluding occupancy lost
     * to array underfill. Fig. 4's intensity ratio uses this, so a
     * low-efficiency GEMV does not masquerade as ME-heavy.
     */
    Cycles meUseful = 0.0;

    /** Per-operator timeline at the demanded allocation. */
    std::vector<OpProfile> timeline;

    /** ME:VE intensity ratio (Fig. 4): useful-busy-time quotient. */
    double
    intensityRatio() const
    {
        return veBusy > 0.0 ? meUseful / veBusy : kCyclesInf;
    }

    /** Average HBM bandwidth in bytes/cycle over the solo run. */
    double
    averageBandwidth() const
    {
        return demandTime > 0.0
                   ? static_cast<double>(bytes) / demandTime
                   : 0.0;
    }
};

/**
 * Profile a workload against a machine model.
 *
 * @param graph       validated DNN graph.
 * @param max_me      MEs available to the demand analysis (core size).
 * @param max_ve      VEs available to the demand analysis.
 * @param hbm_bpc     HBM bandwidth in bytes per cycle (caps op rates).
 * @param machine     engine throughput model.
 */
WorkloadProfile profileWorkload(const DnnGraph &graph, unsigned max_me,
                                unsigned max_ve, double hbm_bpc,
                                const MachineModel &machine = {});

} // namespace neu10

#endif // NEU10_COMPILER_PROFILE_HH
