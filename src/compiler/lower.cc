#include "compiler/lower.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

namespace
{

/** Below this many ME cycles an operator is not worth splitting. */
constexpr Cycles kMinUTopMeCycles = 256.0;

/** Reduction partitioning pays off only for substantial operators. */
constexpr Cycles kReductionThreshold = 2048.0;

/**
 * Target uTOp size. Real compilers emit tile-granular uTOps; chunking
 * large operators into successive groups bounds the occupancy of any
 * single uTOp, which is what makes fine-grained scheduling (and cheap
 * harvest reclaim) possible.
 */
constexpr Cycles kUTopTargetCycles = 16384.0;

/** Cap on chunk groups per operator (bounds simulator event counts). */
constexpr unsigned kMaxChunksPerOp = 16;

/** Number of successive chunk groups for a given per-stream size. */
unsigned
chunkCount(Cycles per_chunk_stream)
{
    const auto chunks = static_cast<unsigned>(
        std::ceil(per_chunk_stream / kUTopTargetCycles));
    return std::clamp(chunks, 1u, kMaxChunksPerOp);
}

/** Per-op fusion bookkeeping gathered in a pre-pass. */
struct FusedExtra
{
    double veElems = 0.0;
    Bytes bytes = 0;
    double outElems = 0.0;
};

std::vector<FusedExtra>
gatherFusion(const DnnGraph &graph)
{
    std::vector<FusedExtra> extra(graph.ops.size());
    for (const auto &op : graph.ops) {
        if (!op.fuseWithPrev)
            continue;
        const std::uint32_t producer = op.deps[0];
        extra[producer].veElems += op.veElems;
        extra[producer].bytes += op.bytes;
    }
    return extra;
}

/** Pick the uTOp count for an ME operator on an nx-wide core. */
unsigned
pickTiles(const TensorOp &op, Cycles me_cycles, unsigned nx)
{
    unsigned t = std::min(nx, op.parallelTiles);
    // Do not shatter small operators into sub-kMinUTopMeCycles shards:
    // dispatch would dominate and the real compiler would not either.
    while (t > 1 && me_cycles / t < kMinUTopMeCycles)
        --t;
    return std::max(1u, t);
}

} // anonymous namespace

bool
CompiledOp::usesMe() const
{
    for (const auto &g : groups)
        for (const auto &u : g.units)
            if (u.kind == UTopKind::Me)
                return true;
    return false;
}

Cycles
CompiledOp::totalMeTime() const
{
    Cycles total = 0.0;
    for (const auto &g : groups)
        for (const auto &u : g.units)
            total += u.meTime;
    return total;
}

Cycles
CompiledOp::totalVeTime() const
{
    Cycles total = 0.0;
    for (const auto &g : groups)
        for (const auto &u : g.units)
            total += u.veTime;
    return total;
}

Bytes
CompiledOp::totalBytes() const
{
    Bytes total = 0;
    for (const auto &g : groups)
        for (const auto &u : g.units)
            total += u.bytes;
    return total;
}

void
CompiledModel::validate() const
{
    if (ops.empty())
        fatal("compiled model '%s' is empty", model.c_str());
    if (nx == 0 || ny == 0)
        fatal("compiled model '%s' has zero engine widths",
              model.c_str());
    for (size_t i = 0; i < ops.size(); ++i) {
        const CompiledOp &op = ops[i];
        if (op.groups.empty())
            fatal("compiled op '%s' has no work", op.name.c_str());
        for (const auto &g : op.groups) {
            unsigned me_units = 0, ve_units = 0;
            for (const auto &u : g.units) {
                if (u.kind == UTopKind::Me) {
                    ++me_units;
                    if (u.gang == 0)
                        fatal("op '%s': ME unit with gang 0",
                              op.name.c_str());
                    if (neuIsa && u.gang != 1)
                        fatal("op '%s': NeuISA ME uTOp with gang %u",
                              op.name.c_str(), u.gang);
                    if (!neuIsa && u.gang != nx)
                        fatal("op '%s': VLIW operator ganged to %u of "
                              "%u MEs", op.name.c_str(), u.gang, nx);
                    if (u.meTime <= 0.0)
                        fatal("op '%s': ME unit with no ME time",
                              op.name.c_str());
                } else {
                    ++ve_units;
                    if (u.gang != 0)
                        fatal("op '%s': VE unit holding MEs",
                              op.name.c_str());
                    if (u.meTime != 0.0)
                        fatal("op '%s': VE unit with ME time",
                              op.name.c_str());
                }
                if (u.meEff <= 0.0 || u.meEff > 1.0)
                    fatal("op '%s': unit efficiency %.3f out of range",
                          op.name.c_str(), u.meEff);
            }
            if (neuIsa && me_units > nx)
                fatal("op '%s': group has %u ME uTOps, nx=%u",
                      op.name.c_str(), me_units, nx);
            if (neuIsa && ve_units > 1)
                fatal("op '%s': group has %u VE uTOps, max is 1",
                      op.name.c_str(), ve_units);
        }
        for (auto d : op.deps)
            if (d >= i)
                fatal("compiled op '%s' has forward dep %u",
                      op.name.c_str(), d);
    }
}

Cycles
CompiledModel::totalMeBusy() const
{
    Cycles total = 0.0;
    for (const auto &op : ops)
        for (const auto &g : op.groups)
            for (const auto &u : g.units)
                total += u.meTime * u.gang * u.meEff;
    return total;
}

Cycles
CompiledModel::totalVeBusy() const
{
    Cycles total = 0.0;
    for (const auto &op : ops)
        total += op.totalVeTime();
    return total;
}

Bytes
CompiledModel::totalBytes() const
{
    Bytes total = 0;
    for (const auto &op : ops)
        total += op.totalBytes();
    return total;
}

CompiledModel
lowerToNeuIsa(const DnnGraph &graph, unsigned nx, unsigned ny,
              const MachineModel &machine)
{
    NEU10_ASSERT(nx > 0 && ny > 0, "need engines to lower for");
    graph.validate();

    CompiledModel out;
    out.model = graph.model;
    out.batch = graph.batch;
    out.nx = nx;
    out.ny = ny;
    out.neuIsa = true;
    out.hbmFootprint = graph.hbmFootprint;

    const auto fused = gatherFusion(graph);
    // graph index -> compiled index (fused ops map to their producer).
    std::vector<std::uint32_t> where(graph.ops.size());

    for (std::uint32_t gi = 0; gi < graph.ops.size(); ++gi) {
        const TensorOp &op = graph.ops[gi];
        if (op.fuseWithPrev) {
            where[gi] = where[op.deps[0]];
            continue;
        }

        CompiledOp cop;
        cop.name = op.name;
        cop.kind = op.kind;
        cop.sourceIndex = gi;
        for (auto d : op.deps) {
            const std::uint32_t cd = where[d];
            if (std::find(cop.deps.begin(), cop.deps.end(), cd) ==
                cop.deps.end()) {
                cop.deps.push_back(cd);
            }
        }

        const Cycles me_cycles =
            usesMe(op.kind) && op.macs > 0
                ? machine.meCyclesFor(op.macs, op.meEfficiency)
                : 0.0;
        const Cycles ve_own = machine.veCyclesFor(op.veElems);
        const Cycles ve_fused = machine.veCyclesFor(fused[gi].veElems);
        const Bytes bytes = op.bytes + fused[gi].bytes;

        if (me_cycles > 0.0) {
            const bool reduction =
                op.parallelTiles < nx && me_cycles >= kReductionThreshold;
            const unsigned tiles =
                reduction ? nx : pickTiles(op, me_cycles, nx);
            const unsigned chunks = chunkCount(me_cycles / tiles);

            const Cycles me_per = me_cycles / (tiles * chunks);
            const Cycles ve_per =
                reduction ? 0.0 : (ve_own + ve_fused) / (tiles * chunks);
            const Bytes bytes_per = bytes / (tiles * chunks);

            for (unsigned c = 0; c < chunks; ++c) {
                WorkGroup g;
                for (unsigned t = 0; t < tiles; ++t) {
                    WorkUnit u;
                    u.kind = UTopKind::Me;
                    u.gang = 1;
                    u.meTime = me_per;
                    // Occupancy time already includes the array-fill
                    // loss; meEff reports the useful fraction so
                    // perf-counter-style utilization sees through it.
                    u.meEff = op.meEfficiency;
                    // Reduction partitioning separates the summation
                    // into a VE uTOp (no ME/VE pipelining): §III-D.
                    u.veTime = ve_per;
                    u.bytes = bytes_per;
                    g.units.push_back(u);
                }
                if (c == 0) {
                    g.units[0].bytes +=
                        bytes - bytes_per * tiles * chunks;
                }
                cop.groups.push_back(std::move(g));
            }

            if (reduction) {
                // Partial-sum accumulation: (tiles - 1) adds per output
                // element, plus the operator's own vector work, all in
                // one serialized VE uTOp group.
                const double out_elems =
                    op.veElems > 0 ? op.veElems
                                   : machine.veElemsPerCycle();
                WorkGroup sum;
                WorkUnit u;
                u.kind = UTopKind::Ve;
                u.gang = 0;
                u.veTime = ve_own + ve_fused +
                           machine.veCyclesFor(out_elems * (tiles - 1));
                sum.units.push_back(u);
                cop.groups.push_back(std::move(sum));
            }
        } else {
            const Cycles ve_total = ve_own + ve_fused;
            const unsigned chunks = chunkCount(ve_total);
            for (unsigned c = 0; c < chunks; ++c) {
                WorkGroup g;
                WorkUnit u;
                u.kind = UTopKind::Ve;
                u.gang = 0;
                u.veTime = ve_total / chunks;
                u.bytes = bytes / chunks;
                g.units.push_back(u);
                if (c == 0)
                    g.units[0].bytes += bytes - (bytes / chunks) * chunks;
                cop.groups.push_back(std::move(g));
            }
        }

        where[gi] = static_cast<std::uint32_t>(out.ops.size());
        out.ops.push_back(std::move(cop));
    }

    out.validate();
    return out;
}

CompiledModel
lowerToVliw(const DnnGraph &graph, unsigned k_mes, unsigned k_ves,
            const MachineModel &machine)
{
    NEU10_ASSERT(k_mes > 0 && k_ves > 0, "need engines to lower for");
    graph.validate();

    CompiledModel out;
    out.model = graph.model;
    out.batch = graph.batch;
    out.nx = k_mes;
    out.ny = k_ves;
    out.neuIsa = false;
    out.hbmFootprint = graph.hbmFootprint;

    const auto fused = gatherFusion(graph);
    std::vector<std::uint32_t> where(graph.ops.size());

    for (std::uint32_t gi = 0; gi < graph.ops.size(); ++gi) {
        const TensorOp &op = graph.ops[gi];
        if (op.fuseWithPrev) {
            where[gi] = where[op.deps[0]];
            continue;
        }

        CompiledOp cop;
        cop.name = op.name;
        cop.kind = op.kind;
        cop.sourceIndex = gi;
        for (auto d : op.deps) {
            const std::uint32_t cd = where[d];
            if (std::find(cop.deps.begin(), cop.deps.end(), cd) ==
                cop.deps.end()) {
                cop.deps.push_back(cd);
            }
        }

        const Cycles me_cycles =
            usesMe(op.kind) && op.macs > 0
                ? machine.meCyclesFor(op.macs, op.meEfficiency)
                : 0.0;
        const Cycles ve_own = machine.veCyclesFor(op.veElems);
        const Cycles ve_fused = machine.veCyclesFor(fused[gi].veElems);
        const Bytes bytes = op.bytes + fused[gi].bytes;

        WorkGroup g;
        WorkUnit u;
        if (me_cycles > 0.0) {
            // Classic VLIW: either enough independent tiles exist to
            // fill all k MEs, or the compiler partitions the reduction
            // dimension (pipelining the partial-sum adds into the VE
            // slots — no serialization penalty, unlike NeuISA), or the
            // operator genuinely cannot fill the machine and the spare
            // MEs idle while still being occupied (Fig. 9).
            unsigned eff = std::min(k_mes, op.parallelTiles);
            if (eff < k_mes && me_cycles >= kReductionThreshold)
                eff = k_mes;
            u.kind = UTopKind::Me;
            u.gang = k_mes;
            u.meTime = me_cycles / eff;
            // Tile-packing waste x array-fill waste: the useful
            // fraction of the held engine-cycles.
            u.meEff = static_cast<double>(eff) / k_mes *
                      op.meEfficiency;
            u.veTime = ve_own + ve_fused;
            u.bytes = bytes;
        } else {
            u.kind = UTopKind::Ve;
            u.gang = 0;
            u.veTime = ve_own + ve_fused;
            u.bytes = bytes;
        }
        g.units.push_back(u);
        cop.groups.push_back(std::move(g));

        where[gi] = static_cast<std::uint32_t>(out.ops.size());
        out.ops.push_back(std::move(cop));
    }

    out.validate();
    return out;
}

NeuIsaProgram
emitNeuIsaProgram(const DnnGraph &graph, unsigned nx, unsigned ny,
                  const MachineModel &machine)
{
    const CompiledModel cm = lowerToNeuIsa(graph, nx, ny, machine);

    NeuIsaProgram prog;
    prog.maxMeUTopsPerGroup = nx;
    prog.numVeSlots = ny;

    double total_insts = 0.0;
    for (const auto &op : cm.ops)
        for (const auto &g : op.groups)
            for (const auto &u : g.units)
                total_insts += u.meTime / kMePopCycles + u.veTime + 2;
    if (total_insts > 2e6)
        fatal("model '%s' is too large for full instruction listing "
              "(%.0f instructions); use lowerToNeuIsa() for simulation",
              graph.model.c_str(), total_insts);

    // Cache shared snippets: uTOps with identical costs reuse one
    // snippet, mirroring NeuISA's code-inflation mitigation.
    std::unordered_map<std::string, std::uint32_t> cache;

    auto snippet_for = [&](const WorkUnit &u) -> std::uint32_t {
        const std::string key = csprintf(
            "%d|%.6f|%.6f|%llu", static_cast<int>(u.kind), u.meTime,
            u.veTime, static_cast<unsigned long long>(u.bytes));
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;

        UTop utop;
        utop.kind = u.kind;
        utop.cost.meCycles = u.meTime;
        utop.cost.veCycles = u.veTime;
        utop.cost.hbmBytes = u.bytes;

        const unsigned me_slots = u.kind == UTopKind::Me ? 1 : 0;
        if (u.kind == UTopKind::Me) {
            const auto pops = static_cast<unsigned>(
                std::ceil(u.meTime / kMePopCycles));
            const auto ve_per_pop = pops == 0 ? 0.0 : u.veTime / pops;
            double ve_debt = 0.0;
            for (unsigned p = 0; p < pops; ++p) {
                VliwInstruction inst;
                inst.me.resize(1);
                inst.ve.resize(ny);
                inst.me[0] = {MeOpcode::Pop,
                              static_cast<std::uint8_t>(p % 256)};
                ve_debt += ve_per_pop;
                for (unsigned v = 0; v < ny && ve_debt >= 1.0; ++v) {
                    inst.ve[v] = {VeOpcode::Relu,
                                  static_cast<std::uint8_t>(v),
                                  static_cast<std::uint8_t>(v), 0};
                    ve_debt -= 1.0;
                }
                utop.code.push_back(inst);
            }
        } else {
            const auto ve_insts = static_cast<unsigned>(
                std::ceil(u.veTime / std::max(1u, ny)));
            for (unsigned i = 0; i < ve_insts; ++i) {
                VliwInstruction inst;
                inst.ve.resize(ny);
                for (unsigned v = 0; v < ny; ++v)
                    inst.ve[v] = {VeOpcode::Add,
                                  static_cast<std::uint8_t>(v),
                                  static_cast<std::uint8_t>(v), 0};
                utop.code.push_back(inst);
            }
        }
        VliwInstruction fin;
        fin.me.resize(me_slots);
        fin.ve.resize(ny);
        fin.misc.op = MiscOpcode::UTopFinish;
        utop.code.push_back(fin);

        const auto idx = static_cast<std::uint32_t>(prog.snippets.size());
        prog.snippets.push_back(std::move(utop));
        cache.emplace(key, idx);
        return idx;
    };

    for (const auto &op : cm.ops) {
        for (const auto &g : op.groups) {
            UTopGroup grp;
            for (const auto &u : g.units) {
                const std::uint32_t snip = snippet_for(u);
                if (u.kind == UTopKind::Me)
                    grp.meUTops.push_back(snip);
                else
                    grp.veUTop = snip;
            }
            prog.table.push_back(std::move(grp));
        }
    }

    prog.validate();
    return prog;
}

} // namespace neu10
