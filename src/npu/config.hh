/**
 * @file
 * Physical NPU configuration (Table II of the paper).
 *
 * One NPU core: 4 matrix engines (128x128 systolic arrays), 4 vector
 * engines (128x8 FP32 lanes), 1050 MHz, 128 MB on-chip SRAM, 64 GB HBM
 * at 1.2 TB/s. The ME preemption penalty is 256 cycles — 128 to pop the
 * partial sums plus 128 to pop the weights of the preempted uTOp
 * (§III-G). Memory isolation uses fixed 2 MB SRAM / 1 GB HBM segments
 * (§III-C).
 */

#ifndef NEU10_NPU_CONFIG_HH
#define NEU10_NPU_CONFIG_HH

#include "common/types.hh"
#include "compiler/machine.hh"

namespace neu10
{

/** Configuration of one physical NPU core (defaults = Table II). */
struct NpuCoreConfig
{
    unsigned numMes = 4;
    unsigned numVes = 4;
    double freqHz = 1.05e9;
    Bytes sramBytes = 128_MiB;
    Bytes hbmBytes = 64_GiB;
    double hbmBytesPerSec = 1.2e12;

    /** ME context-switch penalty when a uTOp is preempted (§III-G). */
    Cycles mePreemptCycles = 256.0;

    /** Fixed segment sizes for memory isolation (§III-C). */
    Bytes sramSegment = 2_MiB;
    Bytes hbmSegment = 1_GiB;

    /** HBM bandwidth in bytes per core cycle. */
    double
    hbmBytesPerCycle() const
    {
        return hbmBytesPerSec / freqHz;
    }

    /** The compiler-facing machine model for this core. */
    MachineModel
    machine() const
    {
        MachineModel m;
        m.freqHz = freqHz;
        return m;
    }
};

/** A board: chips x cores per chip, all of the same core config. */
struct NpuBoardConfig
{
    unsigned numChips = 2;
    unsigned coresPerChip = 2;
    NpuCoreConfig core;

    unsigned
    totalCores() const
    {
        return numChips * coresPerChip;
    }
};

} // namespace neu10

#endif // NEU10_NPU_CONFIG_HH
