/**
 * @file
 * Max-min fair bandwidth allocation.
 *
 * Neu10 shares HBM bandwidth fairly between collocated vNPUs by default
 * (§III-B "memory allocation"): each vNPU with outstanding traffic gets
 * an equal share, shares a vNPU cannot use spill to the others, and the
 * same discipline applies within a vNPU across its uTOps. This is the
 * classic max-min water-filling problem, solved exactly here (no
 * iteration-to-convergence), and reused for VE-harvest distribution.
 */

#ifndef NEU10_NPU_BANDWIDTH_HH
#define NEU10_NPU_BANDWIDTH_HH

#include <vector>

namespace neu10
{

/**
 * Max-min fair allocation: given per-consumer demands and a total
 * capacity, return per-consumer grants such that (a) no grant exceeds
 * its demand, (b) the total never exceeds capacity, (c) capacity a
 * consumer declines is redistributed to the still-hungry ones evenly.
 *
 * @param demands  non-negative demands.
 * @param capacity total capacity (>= 0).
 * @param weights  optional per-consumer weights (default: equal).
 */
std::vector<double> maxMinAllocate(const std::vector<double> &demands,
                                   double capacity,
                                   const std::vector<double> &weights = {});

} // namespace neu10

#endif // NEU10_NPU_BANDWIDTH_HH
