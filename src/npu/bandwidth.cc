#include "npu/bandwidth.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace neu10
{

std::vector<double>
maxMinAllocate(const std::vector<double> &demands, double capacity,
               const std::vector<double> &weights)
{
    // Capacities arrive from chains of grant subtractions, so allow
    // (and flatten) floating-point dust below zero.
    NEU10_ASSERT(capacity >= -1e-6, "negative capacity");
    NEU10_ASSERT(weights.empty() || weights.size() == demands.size(),
                 "weights size mismatch");

    const size_t n = demands.size();
    std::vector<double> grant(n, 0.0);
    if (n == 0 || capacity <= 0.0)
        return grant;

    std::vector<double> w(n, 1.0);
    if (!weights.empty())
        w = weights;
    for (double x : w)
        NEU10_ASSERT(x >= 0.0, "negative weight");

    // Water-fill exactly: sort by demand/weight; at each level either
    // everyone remaining is satisfied or the capacity splits by weight.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const double da = w[a] > 0 ? demands[a] / w[a] : 0.0;
        const double db = w[b] > 0 ? demands[b] / w[b] : 0.0;
        return da < db;
    });

    double cap = capacity;
    double wsum = 0.0;
    for (size_t i : order)
        wsum += demands[i] > 0 ? w[i] : 0.0;

    for (size_t idx = 0; idx < n; ++idx) {
        const size_t i = order[idx];
        if (demands[i] <= 0.0 || w[i] <= 0.0)
            continue;
        const double fair = cap * w[i] / wsum;
        const double got = std::min(demands[i], fair);
        grant[i] = got;
        cap -= got;
        wsum -= w[i];
        if (cap <= 0.0 || wsum <= 0.0)
            break;
    }
    return grant;
}

} // namespace neu10
