/**
 * @file
 * Event-driven simulator of one physical NPU core shared by multiple
 * vNPUs (§III-E, §III-G).
 *
 * The core executes *work units* — NeuISA uTOps or gang-coupled VLIW
 * operators (see compiler/lower.hh) — under a pluggable scheduling
 * policy. Execution follows a fluid model: a running unit progresses at
 *
 *     rate = min( ME supply / meTime,
 *                 VE share  / veTime,
 *                 HBM share / dmaTime )
 *
 * and rates only change at scheduling events (dispatch, completion,
 * preemption, policy quantum), so completion times between events are
 * computed exactly — the same trace-replay-on-an-event-driven-backend
 * strategy as the paper's production simulator.
 *
 * The scheduling policy decides ME bindings (including harvesting and
 * reclaim preemption), per-unit VE shares, and may request wake-ups for
 * time-quantum decisions. HBM bandwidth is split max-min fairly between
 * vNPUs and then between units (§III-B).
 *
 * Two execution engines drive the same schedule (sim/engine.hh): the
 * default fast-forward engine jumps the clock straight to the next
 * computed state change, while the per-cycle reference walks every
 * intervening cycle re-probing the running set. Results are
 * bit-identical either way; bench_perf_engine records the speed gap.
 */

#ifndef NEU10_NPU_CORE_SIM_HH
#define NEU10_NPU_CORE_SIM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "compiler/lower.hh"
#include "npu/config.hh"
#include "obs/trace.hh"
#include "sim/engine.hh"
#include "sim/event_queue.hh"
#include "stats/timeseries.hh"
#include "stats/utilization.hh"

namespace neu10
{

class SchedulerPolicy;

/** Sentinel slot index. */
inline constexpr std::uint32_t kNoSlot = 0xffffffffu;

/** Start/end of one operator within one request (Fig. 23 breakdown). */
struct OpTiming
{
    std::uint32_t opIndex = 0;
    Cycles start = kCyclesInf;
    Cycles end = 0.0;
};

/** Completion record for one inference request. */
struct RequestResult
{
    std::uint64_t id = 0;
    std::uint32_t slot = 0;
    Cycles submitTime = 0.0;
    Cycles finishTime = 0.0;
    std::vector<OpTiming> opTimings; ///< filled if timing capture is on

    Cycles
    latency() const
    {
        return finishTime - submitTime;
    }
};

using RequestCallback = std::function<void(const RequestResult &)>;

/** One schedulable work unit in flight (a uTOp / VLIW operator). */
struct UnitRun
{
    std::uint64_t id = 0;
    std::uint32_t slot = kNoSlot;     ///< owning vNPU slot
    UTopKind kind = UTopKind::Me;
    unsigned gang = 1;                ///< MEs held simultaneously
    Cycles meTime = 0.0;
    double meEff = 1.0;
    Cycles veTime = 0.0;
    Bytes bytes = 0;

    double x = 0.0;                   ///< progress in [0, 1]
    bool running = false;
    std::uint32_t budgetSlot = kNoSlot; ///< whose ME budget it consumes
    Cycles penalty = 0.0;             ///< context-switch cycles left
    double veShare = 0.0;             ///< VE-cycles/cycle granted
    double hbmShare = 0.0;            ///< bytes/cycle granted
    double rate = 0.0;                ///< progress per cycle
    Cycles readyAt = 0.0;             ///< for FIFO ordering
    unsigned preemptions = 0;

    // Identity for op/request bookkeeping.
    std::uint64_t request = 0;
    std::uint32_t opIdx = 0;

    /** True when this unit still needs ME binding to progress. */
    bool
    needsMe() const
    {
        return kind == UTopKind::Me;
    }

    /** VE-cycles per cycle needed to avoid stalling the ME stream. */
    double
    veDemandRate() const
    {
        if (kind == UTopKind::Ve)
            return 1e18; // consumes whatever it is given
        return meTime > 0.0 ? veTime / meTime : 0.0;
    }
};

/** Per-vNPU context on the core (§III-E "vNPU contexts"). */
struct VnpuSlot
{
    unsigned nMes = 0;            ///< allocated matrix engines
    unsigned nVes = 0;            ///< allocated vector engines
    double priority = 1.0;        ///< temporal-sharing weight

    std::deque<UnitRun *> readyMe;
    std::deque<UnitRun *> readyVe;

    // --- statistics -----------------------------------------------
    Cycles meServiceCycles = 0.0;     ///< attained ME occupancy
    Cycles meUsefulCycles = 0.0;      ///< attained *useful* ME busy
    Cycles blockedByHarvest = 0.0;    ///< Table III numerator
    Cycles activeSince = 0.0;
    unsigned reclaimPreemptions = 0;
    std::uint64_t requestsCompleted = 0;
    TimeSeries assignedMes;           ///< Fig. 24 (optional capture)
    TimeSeries assignedVes;

    /** Ready ME uTOps waiting for an engine. */
    bool
    hasMeBacklog() const
    {
        return !readyMe.empty();
    }
};

/**
 * The core simulator. Drive it by submitting requests; it schedules
 * itself on the shared EventQueue.
 */
class NpuCoreSim
{
  public:
    /**
     * @param queue   shared event queue (owned by the caller).
     * @param cfg     physical core configuration.
     * @param policy  scheduling policy (ownership transferred).
     * @param slots   per-vNPU engine allocations.
     */
    NpuCoreSim(EventQueue &queue, const NpuCoreConfig &cfg,
               std::unique_ptr<SchedulerPolicy> policy,
               std::vector<VnpuSlot> slots);
    ~NpuCoreSim();

    NpuCoreSim(const NpuCoreSim &) = delete;
    NpuCoreSim &operator=(const NpuCoreSim &) = delete;

    /**
     * Submit one inference request for @p slot. Ops execute in
     * dependency order; @p cb fires on completion.
     * @return the request id.
     */
    std::uint64_t submit(std::uint32_t slot, const CompiledModel *model,
                         RequestCallback cb = nullptr);

    /** Abort all in-flight work of a slot (vNPU teardown). */
    void drainSlot(std::uint32_t slot);

    /** Record per-operator timings in RequestResult (Fig. 23). */
    void setCaptureOpTimings(bool on) { captureOpTimings_ = on; }

    /** Record per-slot assigned-engine time series (Fig. 24). */
    void setCaptureAssignment(bool on) { captureAssignment_ = on; }

    /**
     * Select the execution engine (sim/engine.hh). The default
     * fast-forward engine jumps the clock between state changes; the
     * per-cycle reference walks every intervening cycle, probing the
     * running set at each one. Results are bit-identical either way
     * (the walk only reads state) — the engines differ in host cost,
     * which bench_perf_engine measures.
     */
    void setEngine(SimEngine e) { engine_ = e; }
    SimEngine engine() const { return engine_; }

    /**
     * Attach a sim-time trace buffer (obs/trace.hh). When
     * @p engine_events is set, every fast-forward jump of the clock is
     * recorded as an "engine"/"advance" span — useful for seeing how
     * the engine batches work, but high-volume. The buffer is not
     * owned; pass nullptr to detach. Hot paths guard on the cached
     * pointer, so a detached core pays one predicted branch per site.
     */
    void
    setTrace(TraceBuffer *trace, bool engine_events)
    {
        trace_ = trace;
        traceEngineEvents_ = engine_events && trace != nullptr;
    }

    /** Integer cycle boundaries the per-cycle reference visited
     * (0 under the fast-forward engine). */
    std::uint64_t cyclesStepped() const { return cyclesStepped_; }

    // --- accessors used by policies and stats consumers ------------
    const NpuCoreConfig &config() const { return cfg_; }
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }
    std::vector<VnpuSlot> &slots() { return slots_; }
    const std::vector<VnpuSlot> &slots() const { return slots_; }
    std::vector<UnitRun *> &running() { return running_; }
    const std::vector<UnitRun *> &running() const { return running_; }

    /** Useful ME busy integral (engines x cycles doing real work). */
    const UtilizationTracker &meUseful() const { return meUseful_; }
    /** ME occupancy integral (engines held, incl. stalls/penalty). */
    const UtilizationTracker &meHeld() const { return meHeld_; }
    /** VE busy integral. */
    const UtilizationTracker &veBusy() const { return veBusy_; }
    /** Total HBM bytes transferred. */
    double hbmBytesTransferred() const { return hbmBytes_; }
    /** In-flight + queued requests across all slots. */
    size_t outstandingRequests() const { return requests_.size(); }

    // --- policy-facing mutators ------------------------------------
    /**
     * Bind an ME unit to an engine charged to @p budget_slot's budget.
     * @param with_penalty  charge the reclaim context-switch cost.
     */
    void bindMe(UnitRun *u, std::uint32_t budget_slot, bool with_penalty);

    /** Preempt a running ME unit back to the front of its ready queue
     * (progress retained; it pays the penalty when re-bound). */
    void preemptMe(UnitRun *u);

    /** Start a ready VE unit. */
    void startVe(UnitRun *u);

    /** Preempt a running VE unit (whole-core switches, e.g. PMT). */
    void preemptVe(UnitRun *u);

    /** MEs of @p slot's budget currently consumed. */
    unsigned budgetUsed(std::uint32_t slot) const;

    /** Running harvester units charged to @p slot's budget but owned
     * by other slots (candidates for reclaim). */
    std::vector<UnitRun *> harvestersOn(std::uint32_t slot);

    /** Number of running VE units (capped at ny queues). */
    unsigned runningVeUnits() const;

  private:
    struct RequestExec;

    void onEvent(Cycles now);
    void advanceTo(Cycles now);
    void stepCycles(Cycles from, Cycles to);
    void computeShares();
    void scheduleNext();
    void completeUnit(UnitRun *u, Cycles now);
    void opFinished(RequestExec &req, std::uint32_t op_idx, Cycles now);
    void enqueueReadyUnits(RequestExec &req, std::uint32_t op_idx,
                           Cycles now);
    void updateStats(Cycles now);
    void removeFromReady(UnitRun *u);

    EventQueue &queue_;
    NpuCoreConfig cfg_;
    std::unique_ptr<SchedulerPolicy> policy_;
    std::vector<VnpuSlot> slots_;

    std::vector<UnitRun *> running_;
    std::unordered_map<std::uint64_t, std::unique_ptr<RequestExec>>
        requests_;

    UtilizationTracker meUseful_;
    UtilizationTracker meHeld_;
    UtilizationTracker veBusy_;

    // Running ME gangs charged to each slot's budget, maintained
    // incrementally by bindMe/preemptMe/completeUnit/drainSlot so the
    // policies' per-decision budgetUsed() probes are O(1) instead of
    // a scan over the running set (a hot path: Neu10's fill/reclaim
    // loops probe once per candidate binding).
    std::vector<unsigned> budgetUsed_;

    double hbmBytes_ = 0.0;
    Cycles lastAdvance_ = 0.0;

    // Scratch buffers reused across events so the per-event
    // advance/share/stat passes allocate nothing in steady state.
    std::vector<double> scratchOccupancy_;
    std::vector<double> scratchUseful_;
    std::vector<double> scratchDemand_;
    std::vector<std::vector<UnitRun *>> scratchSlotUnits_;

    TraceBuffer *trace_ = nullptr;
    bool traceEngineEvents_ = false;

    SimEngine engine_ = SimEngine::EventDriven;
    std::uint64_t cyclesStepped_ = 0;
    /** Sink for the per-cycle probe results; volatile so the walk
     * cannot be collapsed into a single analytic step — that is the
     * fast-forward engine's job, not the reference's. */
    volatile bool probeSink_ = false;

    EventId pendingEvent_ = kInvalidEvent;
    std::uint64_t nextRequestId_ = 1;
    std::uint64_t nextUnitId_ = 1;
    bool inEvent_ = false;
    bool captureOpTimings_ = false;
    bool captureAssignment_ = false;
};

} // namespace neu10

#endif // NEU10_NPU_CORE_SIM_HH
