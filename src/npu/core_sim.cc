#include "npu/core_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "npu/bandwidth.hh"
#include "sched/policy.hh"

namespace neu10
{

namespace
{

/** Progress this close to 1 counts as complete (fp guard). */
constexpr double kDoneEps = 1e-7;

} // anonymous namespace

/** Execution state of one inference request. */
struct NpuCoreSim::RequestExec
{
    std::uint64_t id = 0;
    std::uint32_t slot = 0;
    const CompiledModel *model = nullptr;
    RequestCallback cb;
    Cycles submit = 0.0;

    std::vector<unsigned> depsLeft;    // per op
    std::vector<std::uint32_t> groupPos;
    std::vector<unsigned> unitsLeft;   // in the current group
    std::vector<OpTiming> timings;
    size_t opsDone = 0;
    std::vector<std::unique_ptr<UnitRun>> units;
};

NpuCoreSim::NpuCoreSim(EventQueue &queue, const NpuCoreConfig &cfg,
                       std::unique_ptr<SchedulerPolicy> policy,
                       std::vector<VnpuSlot> slots)
    : queue_(queue), cfg_(cfg), policy_(std::move(policy)),
      slots_(std::move(slots)),
      meUseful_(std::max(1u, cfg.numMes)),
      meHeld_(std::max(1u, cfg.numMes)),
      veBusy_(std::max(1u, cfg.numVes)),
      budgetUsed_(slots_.size(), 0),
      lastAdvance_(queue.now())
{
    NEU10_ASSERT(policy_ != nullptr, "core needs a scheduling policy");
    NEU10_ASSERT(!slots_.empty(), "core needs at least one vNPU slot");
    for (const auto &s : slots_) {
        NEU10_ASSERT(s.nVes > 0, "every vNPU needs at least one VE");
        NEU10_ASSERT(s.nMes > 0, "every vNPU needs at least one ME");
    }
}

NpuCoreSim::~NpuCoreSim()
{
    if (pendingEvent_ != kInvalidEvent)
        queue_.deschedule(pendingEvent_);
}

std::uint64_t
NpuCoreSim::submit(std::uint32_t slot, const CompiledModel *model,
                   RequestCallback cb)
{
    NEU10_ASSERT(slot < slots_.size(), "bad slot %u", slot);
    NEU10_ASSERT(model != nullptr, "null model");

    auto req = std::make_unique<RequestExec>();
    req->id = nextRequestId_++;
    req->slot = slot;
    req->model = model;
    req->cb = std::move(cb);
    req->submit = queue_.now();

    const size_t nops = model->ops.size();
    req->depsLeft.resize(nops);
    req->groupPos.assign(nops, 0);
    req->unitsLeft.assign(nops, 0);
    if (captureOpTimings_) {
        req->timings.resize(nops);
        for (size_t i = 0; i < nops; ++i)
            req->timings[i].opIndex = static_cast<std::uint32_t>(i);
    }

    RequestExec &r = *req;
    const std::uint64_t id = r.id;
    requests_.emplace(id, std::move(req));

    for (size_t i = 0; i < nops; ++i)
        r.depsLeft[i] =
            static_cast<unsigned>(model->ops[i].deps.size());
    for (size_t i = 0; i < nops; ++i) {
        if (r.depsLeft[i] == 0)
            enqueueReadyUnits(r, static_cast<std::uint32_t>(i),
                              queue_.now());
    }

    if (!inEvent_) {
        // Kick a scheduling round right away.
        if (pendingEvent_ != kInvalidEvent)
            queue_.deschedule(pendingEvent_);
        pendingEvent_ = queue_.schedule(
            queue_.now(), [this](Cycles t) { onEvent(t); },
            EventPriority::Schedule);
    }
    return id;
}

void
NpuCoreSim::enqueueReadyUnits(RequestExec &req, std::uint32_t op_idx,
                              Cycles now)
{
    const CompiledOp &op = req.model->ops[op_idx];
    const WorkGroup &grp = op.groups[req.groupPos[op_idx]];
    req.unitsLeft[op_idx] = static_cast<unsigned>(grp.units.size());

    for (const WorkUnit &w : grp.units) {
        auto unit = std::make_unique<UnitRun>();
        unit->id = nextUnitId_++;
        unit->slot = req.slot;
        unit->kind = w.kind;
        unit->gang = w.gang;
        unit->meTime = w.meTime;
        unit->meEff = w.meEff;
        unit->veTime = w.veTime;
        unit->bytes = w.bytes;
        unit->request = req.id;
        unit->opIdx = op_idx;
        unit->readyAt = now;

        UnitRun *raw = unit.get();
        req.units.push_back(std::move(unit));
        if (raw->kind == UTopKind::Me)
            slots_[req.slot].readyMe.push_back(raw);
        else
            slots_[req.slot].readyVe.push_back(raw);
    }
}

void
NpuCoreSim::stepCycles(Cycles from, Cycles to)
{
    // Per-cycle reference engine (SimEngine::PerCycle): visit every
    // integer cycle boundary in (from, to) and re-derive from the
    // running set whether any unit completes or unstalls there. None
    // ever does — the event at `to` is the first state change, which
    // is exactly what the fast-forward engine computed once in
    // scheduleNext() — but the reference pays the per-cycle scan to
    // find that out. The walk only reads simulator state, so results
    // stay bit-identical across engines; the volatile sink keeps the
    // optimizer from fast-forwarding the reference for us.
    bool change = false;
    for (Cycles c = std::floor(from) + 1.0; c < to; c += 1.0) {
        for (const UnitRun *u : running_) {
            if (u->penalty > 0.0) {
                change = change || (from + u->penalty < c);
            } else if (u->rate > 0.0) {
                change = change || (u->x + u->rate * (c - from) >=
                                    1.0 - kDoneEps);
            }
        }
        probeSink_ = probeSink_ || change;
        ++cyclesStepped_;
    }
}

void
NpuCoreSim::advanceTo(Cycles now)
{
    const Cycles dt = now - lastAdvance_;
    if (dt <= 0.0) {
        lastAdvance_ = now;
        return;
    }
    if (trace_ != nullptr && traceEngineEvents_) {
        // The advance sequence is identical under both engines (the
        // per-cycle walk only reads state), so these spans are too.
        trace_->span(lastAdvance_, now, "engine", "advance", "units",
                     static_cast<double>(running_.size()));
    }
    if (engine_ == SimEngine::PerCycle)
        stepCycles(lastAdvance_, now);

    double hbm_rate = 0.0;
    scratchOccupancy_.assign(slots_.size(), 0.0);
    scratchUseful_.assign(slots_.size(), 0.0);
    std::vector<double> &me_occ = scratchOccupancy_;
    std::vector<double> &me_useful = scratchUseful_;

    for (UnitRun *u : running_) {
        const bool stalled = u->penalty > 0.0;
        if (stalled) {
            u->penalty = std::max(0.0, u->penalty - dt);
        } else {
            u->x = std::min(1.0, u->x + u->rate * dt);
        }
        hbm_rate += u->rate * static_cast<double>(u->bytes);
        if (u->kind == UTopKind::Me) {
            me_occ[u->slot] += u->gang;
            if (!stalled && u->meTime > 0.0) {
                // Useful service: what a performance counter sees —
                // occupancy discounted by array fill and stalls.
                me_useful[u->slot] +=
                    u->gang * u->meEff *
                    std::min(1.0, u->rate * u->meTime);
            }
        }
    }
    hbmBytes_ += hbm_rate * dt;

    for (std::uint32_t s = 0; s < slots_.size(); ++s) {
        slots_[s].meServiceCycles += me_occ[s] * dt;
        slots_[s].meUsefulCycles += me_useful[s] * dt;
        // Blocked-by-harvest (Table III): ready backlog while the own
        // budget is (partly) consumed by other vNPUs' harvesters.
        if (slots_[s].hasMeBacklog() && budgetUsed(s) >= slots_[s].nMes) {
            for (UnitRun *u : running_) {
                if (u->kind == UTopKind::Me && u->budgetSlot == s &&
                    u->slot != s) {
                    slots_[s].blockedByHarvest += dt;
                    break;
                }
            }
        }
    }
    lastAdvance_ = now;
}

void
NpuCoreSim::removeFromReady(UnitRun *u)
{
    auto &q = u->kind == UTopKind::Me ? slots_[u->slot].readyMe
                                      : slots_[u->slot].readyVe;
    auto it = std::find(q.begin(), q.end(), u);
    NEU10_ASSERT(it != q.end(), "unit %llu not in ready queue",
                 static_cast<unsigned long long>(u->id));
    q.erase(it);
}

void
NpuCoreSim::bindMe(UnitRun *u, std::uint32_t budget_slot,
                   bool with_penalty)
{
    NEU10_ASSERT(u->kind == UTopKind::Me, "bindMe on a VE unit");
    NEU10_ASSERT(!u->running, "unit already running");
    NEU10_ASSERT(budget_slot < slots_.size(), "bad budget slot");
    removeFromReady(u);
    u->running = true;
    u->budgetSlot = budget_slot;
    u->penalty = with_penalty ? cfg_.mePreemptCycles : 0.0;
    budgetUsed_[budget_slot] += u->gang;
    running_.push_back(u);

    if (captureOpTimings_) {
        auto it = requests_.find(u->request);
        if (it != requests_.end()) {
            OpTiming &t = it->second->timings[u->opIdx];
            t.start = std::min(t.start, queue_.now());
        }
    }
}

void
NpuCoreSim::preemptMe(UnitRun *u)
{
    NEU10_ASSERT(u->running && u->kind == UTopKind::Me,
                 "preempting a non-running ME unit");
    NEU10_ASSERT(budgetUsed_[u->budgetSlot] >= u->gang,
                 "budget accounting underflow on preempt");
    budgetUsed_[u->budgetSlot] -= u->gang;
    u->running = false;
    u->budgetSlot = kNoSlot;
    u->penalty = 0.0;
    u->rate = 0.0;
    u->readyAt = queue_.now(); // its wait clock restarts on requeue
    ++u->preemptions;
    running_.erase(std::find(running_.begin(), running_.end(), u));
    slots_[u->slot].readyMe.push_front(u);
}

void
NpuCoreSim::startVe(UnitRun *u)
{
    NEU10_ASSERT(u->kind == UTopKind::Ve, "startVe on an ME unit");
    NEU10_ASSERT(!u->running, "unit already running");
    NEU10_ASSERT(runningVeUnits() < cfg_.numVes,
                 "VE instruction queues exhausted");
    removeFromReady(u);
    u->running = true;
    running_.push_back(u);

    if (captureOpTimings_) {
        auto it = requests_.find(u->request);
        if (it != requests_.end()) {
            OpTiming &t = it->second->timings[u->opIdx];
            t.start = std::min(t.start, queue_.now());
        }
    }
}

void
NpuCoreSim::preemptVe(UnitRun *u)
{
    NEU10_ASSERT(u->running && u->kind == UTopKind::Ve,
                 "preempting a non-running VE unit");
    u->running = false;
    u->rate = 0.0;
    u->veShare = 0.0;
    ++u->preemptions;
    running_.erase(std::find(running_.begin(), running_.end(), u));
    slots_[u->slot].readyVe.push_front(u);
}

unsigned
NpuCoreSim::budgetUsed(std::uint32_t slot) const
{
    // Maintained incrementally (bindMe / preemptMe / completeUnit /
    // drainSlot): the policies probe this once per candidate binding,
    // which made the former running-set scan an O(n^2) hot spot.
    return budgetUsed_[slot];
}

std::vector<UnitRun *>
NpuCoreSim::harvestersOn(std::uint32_t slot)
{
    std::vector<UnitRun *> out;
    out.reserve(running_.size());
    for (UnitRun *u : running_)
        if (u->kind == UTopKind::Me && u->budgetSlot == slot &&
            u->slot != slot) {
            out.push_back(u);
        }
    return out;
}

unsigned
NpuCoreSim::runningVeUnits() const
{
    unsigned n = 0;
    for (const UnitRun *u : running_)
        if (u->kind == UTopKind::Ve)
            ++n;
    return n;
}

void
NpuCoreSim::computeShares()
{
    // HBM: two-level max-min — equal split between vNPUs with traffic,
    // then between each vNPU's units (§III-B fair sharing by default).
    const double bpc = cfg_.hbmBytesPerCycle();

    // Unconstrained rate (ME + VE constraints only).
    auto base_rate = [](const UnitRun *u) {
        if (u->penalty > 0.0)
            return 0.0;
        double r = 1e18;
        if (u->kind == UTopKind::Me && u->meTime > 0.0)
            r = std::min(r, 1.0 / u->meTime);
        if (u->veTime > 0.0)
            r = std::min(r, u->veShare / u->veTime);
        if (r >= 1e18)
            r = 1.0; // degenerate unit: all streams empty
        return r;
    };

    // One pass buckets the traffic-bearing units by slot (preserving
    // running-set order within each slot, which the per-unit max-min
    // split below depends on) while summing per-slot demand.
    scratchDemand_.assign(slots_.size(), 0.0);
    if (scratchSlotUnits_.size() != slots_.size())
        scratchSlotUnits_.resize(slots_.size());
    for (auto &bucket : scratchSlotUnits_)
        bucket.clear();
    for (UnitRun *u : running_) {
        const double d = base_rate(u) * static_cast<double>(u->bytes);
        scratchDemand_[u->slot] += d;
        if (u->bytes != 0)
            scratchSlotUnits_[u->slot].push_back(u);
    }
    const std::vector<double> slot_grant =
        maxMinAllocate(scratchDemand_, bpc);

    std::vector<double> demands;
    for (std::uint32_t s = 0; s < slots_.size(); ++s) {
        const auto &mine = scratchSlotUnits_[s];
        demands.clear();
        for (UnitRun *u : mine)
            demands.push_back(base_rate(u) *
                              static_cast<double>(u->bytes));
        const auto grants = maxMinAllocate(demands, slot_grant[s]);
        for (size_t i = 0; i < mine.size(); ++i)
            mine[i]->hbmShare = grants[i];
    }

    // Final per-unit rates.
    for (UnitRun *u : running_) {
        if (u->penalty > 0.0) {
            u->rate = 0.0;
            continue;
        }
        double r = base_rate(u);
        if (u->bytes > 0)
            r = std::min(r, u->hbmShare / static_cast<double>(u->bytes));
        u->rate = r;
    }
}

void
NpuCoreSim::updateStats(Cycles now)
{
    double useful = 0.0, held = 0.0, ve = 0.0;
    scratchOccupancy_.assign(slots_.size(), 0.0);
    scratchUseful_.assign(slots_.size(), 0.0);
    std::vector<double> &slot_mes = scratchOccupancy_;
    std::vector<double> &slot_ves = scratchUseful_;

    for (const UnitRun *u : running_) {
        if (u->kind == UTopKind::Me) {
            held += u->gang;
            slot_mes[u->slot] += u->gang;
            if (u->penalty <= 0.0 && u->meTime > 0.0) {
                useful += u->gang * u->meEff *
                          std::min(1.0, u->rate * u->meTime);
            }
        }
        const double ve_rate =
            u->penalty > 0.0 ? 0.0 : u->rate * u->veTime;
        ve += ve_rate;
        slot_ves[u->slot] += ve_rate;
    }
    meUseful_.setBusy(now, useful);
    meHeld_.setBusy(now, held);
    veBusy_.setBusy(now, ve);

    if (captureAssignment_) {
        for (std::uint32_t s = 0; s < slots_.size(); ++s) {
            slots_[s].assignedMes.record(now, slot_mes[s]);
            slots_[s].assignedVes.record(now, slot_ves[s]);
        }
    }
}

void
NpuCoreSim::completeUnit(UnitRun *u, Cycles now)
{
    if (u->kind == UTopKind::Me && u->budgetSlot != kNoSlot) {
        NEU10_ASSERT(budgetUsed_[u->budgetSlot] >= u->gang,
                     "budget accounting underflow on completion");
        budgetUsed_[u->budgetSlot] -= u->gang;
        u->budgetSlot = kNoSlot;
    }
    u->running = false;
    u->rate = 0.0;

    auto it = requests_.find(u->request);
    NEU10_ASSERT(it != requests_.end(), "completion for dead request");
    RequestExec &req = *it->second;

    NEU10_ASSERT(req.unitsLeft[u->opIdx] > 0, "unit count underflow");
    if (--req.unitsLeft[u->opIdx] == 0) {
        const CompiledOp &op = req.model->ops[u->opIdx];
        if (++req.groupPos[u->opIdx] <
            static_cast<std::uint32_t>(op.groups.size())) {
            enqueueReadyUnits(req, u->opIdx, now);
        } else {
            opFinished(req, u->opIdx, now);
        }
    }
}

void
NpuCoreSim::opFinished(RequestExec &req, std::uint32_t op_idx,
                       Cycles now)
{
    if (captureOpTimings_)
        req.timings[op_idx].end = now;
    ++req.opsDone;

    // Wake dependents.
    const auto nops = static_cast<std::uint32_t>(req.model->ops.size());
    for (std::uint32_t j = op_idx + 1; j < nops; ++j) {
        const auto &deps = req.model->ops[j].deps;
        if (std::find(deps.begin(), deps.end(), op_idx) != deps.end()) {
            NEU10_ASSERT(req.depsLeft[j] > 0, "dep count underflow");
            if (--req.depsLeft[j] == 0)
                enqueueReadyUnits(req, j, now);
        }
    }

    if (req.opsDone == req.model->ops.size()) {
        RequestResult res;
        res.id = req.id;
        res.slot = req.slot;
        res.submitTime = req.submit;
        res.finishTime = now;
        res.opTimings = std::move(req.timings);
        ++slots_[req.slot].requestsCompleted;
        RequestCallback cb = std::move(req.cb);
        requests_.erase(req.id);
        if (cb)
            cb(res);
    }
}

void
NpuCoreSim::onEvent(Cycles now)
{
    pendingEvent_ = kInvalidEvent;
    inEvent_ = true;

    advanceTo(now);

    // Drain completions (completions may cascade: an op's last unit
    // enqueues the next group; a request callback may submit more).
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (size_t i = 0; i < running_.size();) {
            UnitRun *u = running_[i];
            if (u->penalty <= 0.0 && u->x >= 1.0 - kDoneEps) {
                running_.erase(running_.begin() +
                               static_cast<long>(i));
                completeUnit(u, now);
                progressed = true;
            } else {
                ++i;
            }
        }
    }

    policy_->scheduleMes(*this, now);
    policy_->scheduleVes(*this, now);
    computeShares();
    updateStats(now);

    inEvent_ = false;
    scheduleNext();
}

void
NpuCoreSim::scheduleNext()
{
    Cycles next = kCyclesInf;
    for (const UnitRun *u : running_) {
        if (u->penalty > 0.0) {
            next = std::min(next, queue_.now() + u->penalty);
        } else if (u->rate > 0.0) {
            next = std::min(next,
                            queue_.now() + (1.0 - u->x) / u->rate);
        }
        // rate == 0 without penalty is a legal transient stall (e.g. a
        // VE operator starved while a gang operator consumes the VE
        // pool); some other unit's completion must eventually unstall
        // it, which the deadlock check below enforces.
    }
    next = std::min(next, policy_->nextWakeup(*this, queue_.now()));

    bool backlog = !running_.empty();
    for (const auto &s : slots_)
        if (!s.readyMe.empty() || !s.readyVe.empty())
            backlog = true;
    if (backlog && next >= kCyclesInf)
        panic("scheduler deadlock: work exists but no event pending");

    if (next < kCyclesInf) {
        // Clamp to strictly-future: a wakeup computed a rounding-error
        // past `now` must not re-fire at the same instant forever.
        next = std::max(next, queue_.now() + 1e-6);
        pendingEvent_ = queue_.schedule(
            next, [this](Cycles t) { onEvent(t); },
            EventPriority::Schedule);
    }
}

void
NpuCoreSim::drainSlot(std::uint32_t slot)
{
    NEU10_ASSERT(slot < slots_.size(), "bad slot");
    for (auto it = requests_.begin(); it != requests_.end();) {
        if (it->second->slot != slot) {
            ++it;
            continue;
        }
        for (auto &u : it->second->units) {
            if (u->running) {
                if (u->kind == UTopKind::Me &&
                    u->budgetSlot != kNoSlot) {
                    // A drained unit may be a harvester charged to a
                    // *different* slot's budget: release that budget,
                    // not the drained slot's.
                    NEU10_ASSERT(budgetUsed_[u->budgetSlot] >= u->gang,
                                 "budget accounting underflow on "
                                 "drain");
                    budgetUsed_[u->budgetSlot] -= u->gang;
                }
                running_.erase(std::find(running_.begin(),
                                         running_.end(), u.get()));
            }
        }
        it = requests_.erase(it);
    }
    slots_[slot].readyMe.clear();
    slots_[slot].readyVe.clear();
}

} // namespace neu10
