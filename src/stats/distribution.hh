/**
 * @file
 * Sample distribution with exact quantiles.
 *
 * Latency studies in the paper report 95th-percentile tail latency
 * (Fig. 19); with closed-loop request streams the sample counts are small
 * enough (thousands) that exact order statistics are affordable, so no
 * sketching is used. Samples are stored and sorted lazily.
 */

#ifndef NEU10_STATS_DISTRIBUTION_HH
#define NEU10_STATS_DISTRIBUTION_HH

#include <cstddef>
#include <vector>

namespace neu10
{

/** A set of scalar samples with mean/min/max/percentile queries. */
class Distribution
{
  public:
    /** Record one sample. */
    void add(double value);

    /** Number of recorded samples. */
    size_t count() const { return samples_.size(); }

    /** True if no samples were recorded. */
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest sample; 0 when empty. */
    double min() const;

    /** Largest sample; 0 when empty. */
    double max() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /**
     * Exact p-quantile by linear interpolation between order statistics.
     * Defined on every distribution: 0 when empty, the sample itself
     * when only one was recorded (no out-of-range reads either way).
     * @param p quantile in [0, 1], e.g. 0.95 for the p95 tail.
     */
    double percentile(double p) const;

    /** Standard deviation (population); 0 when fewer than 2 samples. */
    double stddev() const;

    /**
     * Absorb every sample of @p other (fleet-wide aggregation: merge
     * per-core latency distributions into one cluster distribution).
     * Merging an empty distribution is a no-op (the cached sort
     * survives); self-merge doubles every sample.
     */
    void merge(const Distribution &other);

    /** Drop all samples. */
    void reset();

    /** Read-only access to raw samples (unsorted insertion order). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = false;
    double sum_ = 0.0;
};

} // namespace neu10

#endif // NEU10_STATS_DISTRIBUTION_HH
