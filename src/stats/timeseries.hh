/**
 * @file
 * Time-series sampling for the paper's "X over time" figures.
 *
 * Figures 2, 3, 5, 7 and 24 plot instantaneous quantities (engine demand,
 * utilization, HBM bandwidth, assigned engines) against time. A TimeSeries
 * records (time, value) points and can re-bin them into fixed-width
 * windows for printing, averaging values weighted by the time each value
 * was held (piecewise-constant interpretation).
 */

#ifndef NEU10_STATS_TIMESERIES_HH
#define NEU10_STATS_TIMESERIES_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace neu10
{

/** One observation: the series holds @c value from @c time onwards. */
struct TimePoint
{
    Cycles time;
    double value;
};

/** Piecewise-constant time series with windowed re-binning. */
class TimeSeries
{
  public:
    /**
     * Record that the observed quantity changed to @p value at @p time.
     * Times must be non-decreasing.
     */
    void record(Cycles time, double value);

    /** Raw points in recording order. */
    const std::vector<TimePoint> &points() const { return points_; }

    /** Number of recorded points. */
    size_t size() const { return points_.size(); }

    bool empty() const { return points_.empty(); }

    /**
     * Time-weighted average of the series over [t0, t1], treating the
     * series as constant between points. Returns 0 for an empty series.
     */
    double average(Cycles t0, Cycles t1) const;

    /**
     * Re-bin into @p bins equal windows over [t0, t1]; each bin holds the
     * time-weighted mean of the series in that window.
     */
    std::vector<double> rebin(Cycles t0, Cycles t1, size_t bins) const;

    /** Largest recorded value (0 when empty). */
    double peak() const;

    void reset() { points_.clear(); }

  private:
    std::vector<TimePoint> points_;
};

} // namespace neu10

#endif // NEU10_STATS_TIMESERIES_HH
