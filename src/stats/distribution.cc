#include "stats/distribution.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace neu10
{

void
Distribution::add(double value)
{
    samples_.push_back(value);
    sum_ += value;
    dirty_ = true;
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

double
Distribution::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.front();
}

double
Distribution::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.back();
}

double
Distribution::percentile(double p) const
{
    NEU10_ASSERT(p >= 0.0 && p <= 1.0, "quantile must be in [0,1]");
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_[0];
    const double pos = p * static_cast<double>(sorted_.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double
Distribution::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

void
Distribution::merge(const Distribution &other)
{
    // An empty rhs is a true no-op: in particular it must not mark
    // the cached sort dirty (fleet aggregation merges hundreds of
    // empty per-epoch distributions between percentile queries).
    if (other.samples_.empty())
        return;
    if (&other == this) {
        // Self-merge doubles every sample. Appending a range that
        // aliases the destination while it reallocates is undefined,
        // so stage a copy first.
        const std::vector<double> copy = samples_;
        samples_.insert(samples_.end(), copy.begin(), copy.end());
        sum_ += sum_;
        dirty_ = true;
        return;
    }
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    dirty_ = true;
}

void
Distribution::reset()
{
    samples_.clear();
    sorted_.clear();
    dirty_ = false;
    sum_ = 0.0;
}

void
Distribution::ensureSorted() const
{
    if (dirty_ || sorted_.size() != samples_.size()) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

} // namespace neu10
