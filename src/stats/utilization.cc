#include "stats/utilization.hh"

#include "common/logging.hh"

namespace neu10
{

UtilizationTracker::UtilizationTracker(double capacity)
    : capacity_(capacity)
{
    NEU10_ASSERT(capacity > 0.0, "capacity must be positive");
}

void
UtilizationTracker::setCapacity(double capacity)
{
    NEU10_ASSERT(capacity > 0.0, "capacity must be positive");
    capacity_ = capacity;
}

void
UtilizationTracker::setBusy(Cycles time, double busy)
{
    NEU10_ASSERT(time >= lastTime_, "utilization updates must be ordered");
    NEU10_ASSERT(busy >= -1e-9, "busy count cannot be negative");
    integral_ += busy_ * (time - lastTime_);
    lastTime_ = time;
    busy_ = busy < 0.0 ? 0.0 : busy;
    series_.record(time, busy_);
}

double
UtilizationTracker::busyIntegral(Cycles time) const
{
    double integral = integral_;
    if (time > lastTime_)
        integral += busy_ * (time - lastTime_);
    return integral;
}

double
UtilizationTracker::utilization(Cycles t0, Cycles t1) const
{
    if (t1 <= t0)
        return 0.0;
    // The series holds the full busy-count history, so windows that start
    // before the last update are handled exactly; the busy count before
    // the first record is implicitly zero.
    return series_.average(t0, t1) / capacity_;
}

void
UtilizationTracker::reset()
{
    busy_ = 0.0;
    lastTime_ = 0.0;
    integral_ = 0.0;
    series_.reset();
}

} // namespace neu10
