/**
 * @file
 * Time-weighted busy-resource integrators.
 *
 * The paper quantifies ME/VE utilization as the fraction of core cycles
 * the engines are busy (Figs. 5, 22, 27). A UtilizationTracker integrates
 * "busy units x time" for a pool of @c capacity units whose busy count
 * changes at scheduling events, yielding exact utilization over any
 * window without per-cycle sampling.
 */

#ifndef NEU10_STATS_UTILIZATION_HH
#define NEU10_STATS_UTILIZATION_HH

#include "common/types.hh"
#include "stats/timeseries.hh"

namespace neu10
{

/** Integrates busy-unit-cycles for a pool of identical resources. */
class UtilizationTracker
{
  public:
    /**
     * @param capacity total number of units in the pool (e.g. 4 MEs).
     */
    explicit UtilizationTracker(double capacity = 1.0);

    /** Change the pool capacity (partitions a pool between vNPUs). */
    void setCapacity(double capacity);

    double capacity() const { return capacity_; }

    /**
     * Report that from @p time onwards @p busy units are in use.
     * Times must be non-decreasing.
     */
    void setBusy(Cycles time, double busy);

    /** Busy units currently in use. */
    double busy() const { return busy_; }

    /** Integrated busy-unit-cycles in [0, time]. */
    double busyIntegral(Cycles time) const;

    /**
     * Utilization over [t0, t1]: integral of busy units divided by
     * capacity x window. Returns 0 for an empty window.
     */
    double utilization(Cycles t0, Cycles t1) const;

    /** The raw busy-count series (for "over time" figures). */
    const TimeSeries &series() const { return series_; }

    void reset();

  private:
    double capacity_;
    double busy_ = 0.0;
    Cycles lastTime_ = 0.0;
    double integral_ = 0.0;
    TimeSeries series_;
};

} // namespace neu10

#endif // NEU10_STATS_UTILIZATION_HH
