#include "stats/timeseries.hh"

#include <algorithm>

#include "common/logging.hh"

namespace neu10
{

void
TimeSeries::record(Cycles time, double value)
{
    NEU10_ASSERT(points_.empty() || time >= points_.back().time,
                 "time series must be recorded in order");
    // Collapse repeated identical values to bound memory.
    if (!points_.empty() && points_.back().value == value)
        return;
    points_.push_back({time, value});
}

double
TimeSeries::average(Cycles t0, Cycles t1) const
{
    if (points_.empty() || t1 <= t0)
        return 0.0;
    double weighted = 0.0;
    for (size_t i = 0; i < points_.size(); ++i) {
        const Cycles start = std::max(points_[i].time, t0);
        const Cycles end = std::min(
            i + 1 < points_.size() ? points_[i + 1].time : t1, t1);
        if (end > start)
            weighted += points_[i].value * (end - start);
    }
    return weighted / (t1 - t0);
}

std::vector<double>
TimeSeries::rebin(Cycles t0, Cycles t1, size_t bins) const
{
    NEU10_ASSERT(bins > 0, "need at least one bin");
    std::vector<double> out(bins, 0.0);
    if (t1 <= t0)
        return out;
    const Cycles width = (t1 - t0) / static_cast<double>(bins);
    for (size_t b = 0; b < bins; ++b) {
        const Cycles lo = t0 + width * static_cast<double>(b);
        out[b] = average(lo, lo + width);
    }
    return out;
}

double
TimeSeries::peak() const
{
    double p = 0.0;
    for (const auto &pt : points_)
        p = std::max(p, pt.value);
    return p;
}

} // namespace neu10
