#include "llm/kv_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace neu10
{
namespace llm
{

double
KvPoolStats::fragmentationFrac(std::uint32_t pageTokens) const
{
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(usedPages) * pageTokens;
    if (capacity == 0)
        return 0.0;
    return 1.0 - static_cast<double>(usedTokens) /
                     static_cast<double>(capacity);
}

KvPool::KvPool(std::uint32_t numPages, std::uint32_t pageTokens)
    : pageTokens_(pageTokens)
{
    if (pageTokens == 0)
        fatal("KvPool: pageTokens must be >= 1");
    stats_.totalPages = numPages;
    // Stack the ids so the first allocation takes page 0 (pop_back
    // of a descending stack): page handout order is then a pure
    // function of the call sequence.
    freeList_.reserve(numPages);
    for (std::uint32_t i = numPages; i > 0; --i)
        freeList_.push_back(i - 1);
}

std::uint32_t
KvPool::pagesFor(std::uint64_t tokens) const
{
    return static_cast<std::uint32_t>(
        (tokens + pageTokens_ - 1) / pageTokens_);
}

std::uint32_t
KvPool::ensureTokens(SeqId seq, std::uint64_t tokens)
{
    lastGrowFailed_ = false;
    const std::uint32_t want = pagesFor(tokens);
    const auto it = held_.find(seq);
    const std::uint32_t have =
        it == held_.end()
            ? 0
            : static_cast<std::uint32_t>(it->second.size());
    if (want > have) {
        const std::uint32_t need = want - have;
        if (need > freeList_.size()) {
            ++stats_.failedAllocs;
            lastGrowFailed_ = true;
            return 0;
        }
        auto &list = (it == held_.end()) ? held_[seq] : it->second;
        for (std::uint32_t i = 0; i < need; ++i) {
            list.push_back(freeList_.back());
            freeList_.pop_back();
        }
        stats_.usedPages += need;
        stats_.allocOps += need;
        stats_.highWaterPages =
            std::max(stats_.highWaterPages, stats_.usedPages);
        auto &rec = tokens_[seq];
        stats_.usedTokens += tokens - rec;
        rec = tokens;
        return need;
    }
    // Already covered: only the live-token count moves.
    if (tokens > 0 || it != held_.end()) {
        auto &rec = tokens_[seq];
        if (tokens > rec) {
            stats_.usedTokens += tokens - rec;
            rec = tokens;
        }
    }
    return 0;
}

std::uint32_t
KvPool::release(SeqId seq)
{
    const auto it = held_.find(seq);
    if (it == held_.end())
        return 0;
    const std::uint32_t freed =
        static_cast<std::uint32_t>(it->second.size());
    // Return pages in reverse allocation order so the LIFO free list
    // hands them back in the order they were taken.
    for (auto rit = it->second.rbegin(); rit != it->second.rend();
         ++rit)
        freeList_.push_back(*rit);
    held_.erase(it);
    const auto tit = tokens_.find(seq);
    if (tit != tokens_.end()) {
        stats_.usedTokens -= tit->second;
        tokens_.erase(tit);
    }
    stats_.usedPages -= freed;
    stats_.freeOps += freed;
    return freed;
}

std::uint32_t
KvPool::pagesHeld(SeqId seq) const
{
    const auto it = held_.find(seq);
    return it == held_.end()
               ? 0
               : static_cast<std::uint32_t>(it->second.size());
}

std::uint64_t
KvPool::tokensHeld(SeqId seq) const
{
    const auto it = tokens_.find(seq);
    return it == tokens_.end() ? 0 : it->second;
}

const std::vector<KvPageId> *
KvPool::pages(SeqId seq) const
{
    const auto it = held_.find(seq);
    return it == held_.end() ? nullptr : &it->second;
}

std::vector<SeqId>
KvPool::holders() const
{
    std::vector<SeqId> out;
    out.reserve(held_.size());
    for (const auto &[seq, list] : held_)
        out.push_back(seq);
    return out;
}

KvPool::Snapshot
KvPool::snapshot() const
{
    Snapshot snap;
    snap.pageTokens = pageTokens_;
    snap.seqTokens.reserve(tokens_.size());
    for (const auto &[seq, toks] : tokens_)
        snap.seqTokens.emplace_back(seq, toks);
    return snap;
}

void
KvPool::restore(const Snapshot &snap)
{
    if (stats_.usedPages != 0 || !held_.empty())
        fatal("KvPool::restore: target pool is not empty "
              "(%u pages in use)", stats_.usedPages);
    if (snap.pageTokens != pageTokens_)
        fatal("KvPool::restore: page size mismatch (%u vs %u tokens)",
              snap.pageTokens, pageTokens_);
    for (const auto &[seq, toks] : snap.seqTokens) {
        ensureTokens(seq, toks);
        if (lastGrowFailed_)
            fatal("KvPool::restore: pool of %u pages cannot cover "
                  "the checkpoint image", stats_.totalPages);
    }
    audit();
}

void
KvPool::audit() const
{
    std::uint64_t held = 0;
    for (const auto &[seq, list] : held_)
        held += list.size();
    if (held != stats_.usedPages)
        fatal("KvPool::audit: page lists hold %llu pages but "
              "usedPages says %u",
              static_cast<unsigned long long>(held),
              stats_.usedPages);
    if (stats_.usedPages + freeList_.size() != stats_.totalPages)
        fatal("KvPool::audit: conservation broken (%u used + %zu "
              "free != %u total)",
              stats_.usedPages, freeList_.size(), stats_.totalPages);
    // Every page id on exactly one list, exactly once.
    std::vector<bool> seen(stats_.totalPages, false);
    const auto mark = [&](KvPageId id) {
        if (id >= stats_.totalPages)
            fatal("KvPool::audit: page id %u out of range", id);
        if (seen[id])
            fatal("KvPool::audit: page %u double-booked", id);
        seen[id] = true;
    };
    for (KvPageId id : freeList_)
        mark(id);
    for (const auto &[seq, list] : held_) {
        for (KvPageId id : list)
            mark(id);
        // Holder list must cover its live tokens exactly.
        const auto tit = tokens_.find(seq);
        const std::uint64_t toks =
            tit == tokens_.end() ? 0 : tit->second;
        if (pagesFor(toks) > list.size())
            fatal("KvPool::audit: seq %llu holds %zu pages for "
                  "%llu tokens",
                  static_cast<unsigned long long>(seq), list.size(),
                  static_cast<unsigned long long>(toks));
    }
}

} // namespace llm
} // namespace neu10
