/**
 * @file
 * Deterministic paged KV-cache pool (vLLM-style paged attention,
 * applied to the vNPU HBM budget).
 *
 * A serving endpoint carves the vNPU's HBM reservation left over
 * after weights into fixed-size pages of `pageTokens` tokens worth
 * of K+V state. Each live sequence holds an ordered page list that
 * grows as it decodes and is returned wholesale when it completes or
 * is preempted. All accounting is integral (page and token counts),
 * so results are bit-exact by construction; the free list is a LIFO
 * stack and per-sequence state lives in ordered maps, so identical
 * call sequences yield identical pools at any host thread width.
 *
 * The §III-B residency check happens upstream: sizeVnpuForModel
 * reserves HBM for weights + per-sequence state, and
 * llm_serving sizes the pool from that reservation minus weights —
 * KV pages and weights compete for the same Eq. 4 budget.
 */

#ifndef NEU10_LLM_KV_POOL_HH
#define NEU10_LLM_KV_POOL_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace neu10
{
namespace llm
{

/** Identifier of one sequence within an endpoint. */
using SeqId = std::uint64_t;

/** Identifier of one KV page within a pool. */
using KvPageId = std::uint32_t;

/** Cumulative pool accounting (rides into LlmEndpointStats). */
struct KvPoolStats
{
    std::uint32_t totalPages = 0;
    std::uint32_t usedPages = 0;
    std::uint32_t highWaterPages = 0;
    std::uint64_t usedTokens = 0;  ///< live tokens across holders
    std::uint64_t allocOps = 0;    ///< pages handed out, cumulative
    std::uint64_t freeOps = 0;     ///< pages returned, cumulative
    std::uint64_t failedAllocs = 0;///< refused grow requests

    /**
     * Internal fragmentation right now: the fraction of allocated
     * page capacity (usedPages x pageTokens) not holding live
     * tokens. 0 when nothing is allocated.
     */
    double fragmentationFrac(std::uint32_t pageTokens) const;
};

/** Fixed-page KV allocator for one endpoint. */
class KvPool
{
  public:
    /**
     * @param numPages   pool capacity in pages.
     * @param pageTokens tokens of KV state per page (>= 1; enforced
     *                   with fatal()).
     */
    KvPool(std::uint32_t numPages, std::uint32_t pageTokens);

    std::uint32_t pageTokens() const { return pageTokens_; }
    std::uint32_t totalPages() const { return stats_.totalPages; }
    std::uint32_t usedPages() const { return stats_.usedPages; }

    std::uint32_t
    freePages() const
    {
        return stats_.totalPages - stats_.usedPages;
    }

    const KvPoolStats &stats() const { return stats_; }

    /** Pages needed to hold @p tokens (ceiling division). */
    std::uint32_t pagesFor(std::uint64_t tokens) const;

    /**
     * Grow (or create) @p seq's page list so it covers @p tokens
     * live tokens. All-or-nothing: on insufficient free pages
     * nothing changes and failedAllocs increments. Shrinking is not
     * supported — sequences only grow until released.
     * @return pages newly allocated (0 can mean "already covered");
     *         on failure returns 0 and @ref lastGrowFailed is set.
     */
    std::uint32_t ensureTokens(SeqId seq, std::uint64_t tokens);

    /** True iff the previous ensureTokens() call was refused. */
    bool lastGrowFailed() const { return lastGrowFailed_; }

    /** Release every page @p seq holds. @return pages freed. */
    std::uint32_t release(SeqId seq);

    /** Pages currently held by @p seq (0 if unknown). */
    std::uint32_t pagesHeld(SeqId seq) const;

    /** Live tokens recorded for @p seq (0 if unknown). */
    std::uint64_t tokensHeld(SeqId seq) const;

    /** @p seq's page list in allocation order; nullptr if unknown. */
    const std::vector<KvPageId> *pages(SeqId seq) const;

    /** Holders in ascending SeqId order (deterministic iteration). */
    std::vector<SeqId> holders() const;

    /**
     * Checkpoint image: per-sequence live token counts, ascending
     * SeqId. Page *identity* is deliberately not part of the image —
     * a restore lands on a different core whose pool reassigns pages
     * deterministically; only capacity must be conserved.
     */
    struct Snapshot
    {
        std::uint32_t pageTokens = 0;
        std::vector<std::pair<SeqId, std::uint64_t>> seqTokens;
    };

    Snapshot snapshot() const;

    /**
     * Rebuild holders from @p snap into this (empty) pool.
     * @throws FatalError if the pool is not empty, page sizes
     * differ, or capacity cannot cover the image (a restore must
     * never silently leak or oversubscribe).
     */
    void restore(const Snapshot &snap);

    /**
     * Conservation audit: used + free == total, per-holder list
     * sizes match their token counts, and no page is on two lists
     * or both held and free. @throws FatalError on violation.
     */
    void audit() const;

  private:
    std::uint32_t pageTokens_;
    std::vector<KvPageId> freeList_; // LIFO: pop_back to allocate
    // Ordered maps: holder iteration order must not depend on
    // hashing (determinism contract).
    std::map<SeqId, std::vector<KvPageId>> held_;
    std::map<SeqId, std::uint64_t> tokens_;
    KvPoolStats stats_;
    bool lastGrowFailed_ = false;
};

} // namespace llm
} // namespace neu10

#endif // NEU10_LLM_KV_POOL_HH
