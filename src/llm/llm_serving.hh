/**
 * @file
 * Token-level LLM serving with continuous batching over a paged KV
 * pool (the production regime the §V-F closed-loop graph abstracts
 * away).
 *
 * Requests are *sequences*: a prompt of P tokens prefilled in one
 * pass, then one token per decode iteration until the sequence's
 * output length is reached. The endpoint advances in iteration
 * steps: each iteration grows every running sequence's KV page list
 * by one token's worth (llm/kv_pool.hh), prices the step with the
 * analytic roofline (llm/phase_model.hh — decode re-streams all
 * weights plus the live KV every iteration) and advances the whole
 * running batch together.
 *
 * Schedulers (LlmParams::scheduler):
 *
 *  - Continuous: waiting sequences prefill into the running batch
 *    whenever pages are free and a batch slot is open; completed
 *    sequences free pages immediately, so queued sequences join
 *    mid-flight. Page pressure preempts the youngest running
 *    sequence (pages freed, re-queued at the head; its context is
 *    re-prefilled on readmission — recompute, not swap).
 *
 *  - StaticBatch (baseline): a batch is admitted only when the core
 *    is idle, every member reserves worst-case prompt+output pages
 *    up front, and nothing joins until the whole batch drains.
 *
 * Determinism: the loop is analytic and single-threaded per
 * endpoint; sequence lengths come from a seeded Rng drawn in
 * arrival order before simulation starts. Results are bit-identical
 * across SimEngine choices (no event queue is involved) and fleet
 * thread widths (endpoints share nothing; the fleet merges results
 * in core-index order).
 */

#ifndef NEU10_LLM_LLM_SERVING_HH
#define NEU10_LLM_LLM_SERVING_HH

#include <cstdint>

#include "llm/phase_model.hh"
#include "runtime/serving.hh"

namespace neu10
{
namespace llm
{

/**
 * Size a KV pool from a vNPU HBM reservation: everything left after
 * weights and the activation working set, in whole pages.
 * @throws FatalError when the reservation cannot hold even one page
 * (the §III-B residency check should have caught this upstream).
 */
std::uint32_t kvPoolPages(const LlmModelSpec &spec, Bytes hbmBytes,
                          unsigned batch, unsigned pageTokens);

/**
 * Run one LLM serving experiment (all tenants of @p config, each an
 * independent endpoint on a static bandwidth/engine share of the
 * core). Dispatched by runServing for ServingMode::LlmContinuous —
 * call through runServing unless testing this layer directly.
 */
ServingResult runLlmServing(const ServingConfig &config);

} // namespace llm
} // namespace neu10

#endif // NEU10_LLM_LLM_SERVING_HH
