#include "llm/llm_serving.hh"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "llm/kv_pool.hh"
#include "sim/clock.hh"
#include "vnpu/allocator.hh"

namespace neu10
{
namespace llm
{

namespace
{

/** One sequence's lifetime state. */
struct Seq
{
    Cycles stamp = 0.0;       ///< arrival time (original, for SLO)
    std::uint32_t prompt = 0; ///< prompt tokens
    std::uint32_t output = 0; ///< tokens to decode
    std::uint32_t generated = 0;
    bool carried = false;     ///< from TenantSpec::backlog (admitted
                              ///< in an earlier epoch)
    bool sawFirstToken = false;
};

/** Cross-tenant accumulators for the core-level result fields. */
struct CoreAccounting
{
    Cycles makespan = 0.0;
    double meUsefulCycles = 0.0; ///< prefill busy, ME-weighted
    double meHeldCycles = 0.0;   ///< decode busy, ME-weighted
    double veCycles = 0.0;       ///< decode busy, VE-weighted
    double bytesStreamed = 0.0;
};

/** Resolved per-endpoint knobs. */
struct EndpointParams
{
    unsigned maxBatch = 0;
    std::uint32_t promptMin = 0, promptMax = 0;
    std::uint32_t outputMin = 0, outputMax = 0;
    double bwShare = 0.0;
};

EndpointParams
resolveParams(const ServingConfig &config, const TenantSpec &ts,
              unsigned tenant)
{
    const LlmParams &p = config.llm;
    if (p.pageTokens == 0)
        fatal("llm: page-tokens must be >= 1");
    if (p.promptTokens == 0 || p.outputTokens == 0)
        fatal("llm: prompt-tokens and output-tokens must be >= 1");
    if (ts.model != ModelId::Llama)
        fatal("llm: tenant %u runs %s, but LLM serving requires the "
              "LLaMA model (the phase model is LLaMA-shaped)",
              tenant, modelAbbrev(ts.model).c_str());
    if (ts.nMes == 0 || ts.nVes == 0)
        fatal("llm: tenant %u needs at least one ME and one VE",
              tenant);

    EndpointParams ep;
    ep.maxBatch = p.maxBatch != 0 ? p.maxBatch : ts.batch;
    if (ep.maxBatch == 0)
        fatal("llm: tenant %u resolves to a zero max running batch",
              tenant);
    ep.promptMin = p.promptTokens;
    ep.promptMax = std::max(p.promptTokens, p.promptTokensMax);
    ep.outputMin = p.outputTokens;
    ep.outputMax = std::max(p.outputTokens, p.outputTokensMax);
    // Static per-vNPU bandwidth partition: the tenant's paid EU
    // fraction of the physical core.
    ep.bwShare = static_cast<double>(ts.nMes + ts.nVes) /
                 (config.core.numMes + config.core.numVes);
    return ep;
}

/** Run one tenant's endpoint; fills @p tr and the core accounting. */
void
runEndpoint(const ServingConfig &config, unsigned tenant,
            TenantResult &tr, TraceBuffer &trace, CoreAccounting &acc)
{
    const TenantSpec &ts = config.tenants[tenant];
    const LlmModelSpec &spec = llamaSpec();
    const EndpointParams ep = resolveParams(config, ts, tenant);
    const double ti = tenant; // trace arg

    // --- KV pool, carved from the vNPU HBM reservation ------------
    Bytes hbm = ts.hbmBytes;
    if (hbm == 0) {
        hbm = sizeVnpuForModel(ts.model, ts.batch, ts.nMes + ts.nVes,
                               config.core)
                  .config.memSizePerCore;
    }
    const std::uint32_t pages =
        kvPoolPages(spec, hbm, ts.batch, config.llm.pageTokens);
    KvPool pool(pages, config.llm.pageTokens);
    if (pool.pagesFor(static_cast<std::uint64_t>(ep.promptMax) +
                      ep.outputMax) > pages)
        fatal("llm: tenant %u: one sequence can reach %u tokens but "
              "the KV pool holds only %u pages of %u tokens — grow "
              "the vNPU HBM reservation (batch) or shrink "
              "prompt/output lengths",
              tenant, ep.promptMax + ep.outputMax, pages,
              config.llm.pageTokens);

    // --- sequence table: carried backlog first, then arrivals, with
    // --- lengths drawn in that order from the seeded stream --------
    std::vector<Seq> seqs;
    seqs.reserve(ts.backlog.size() + ts.arrivals.size());
    Rng rng(ts.llmSeed);
    const auto draw = [&](std::uint32_t lo, std::uint32_t hi) {
        if (hi <= lo)
            return lo;
        return lo + static_cast<std::uint32_t>(
                        rng.below(hi - lo + 1ull));
    };
    for (Cycles stamp : ts.backlog) {
        Seq s;
        s.stamp = stamp;
        s.prompt = draw(ep.promptMin, ep.promptMax);
        s.output = draw(ep.outputMin, ep.outputMax);
        s.carried = true;
        seqs.push_back(s);
    }
    for (Cycles stamp : ts.arrivals) {
        Seq s;
        s.stamp = stamp;
        s.prompt = draw(ep.promptMin, ep.promptMax);
        s.output = draw(ep.outputMin, ep.outputMax);
        seqs.push_back(s);
    }

    // --- endpoint state --------------------------------------------
    const bool continuous =
        config.llm.scheduler == LlmScheduler::Continuous;
    const Cycles stop =
        std::min(config.stopAtCycles, config.maxCycles);
    const bool boundary = config.stopAtCycles <= config.maxCycles;
    Cycles t = ts.startOffsetCycles;
    std::size_t next = 0;            // next undelivered seq index
    std::deque<std::uint32_t> waiting;
    std::vector<std::uint32_t> running;
    std::vector<std::uint32_t> staticDone; // finished, pages held
    bool stopped = false;
    std::uint64_t spanSeq = 0; // async-span id counter
    const std::uint64_t idBase =
        (static_cast<std::uint64_t>(tenant) + 1) << 40;

    // Occupancy/fragmentation integrals over simulated time.
    double pageCyc = 0.0, tokenCyc = 0.0;
    double prefillBusy = 0.0, decodeBusy = 0.0, bytes = 0.0;

    const auto advance = [&](Cycles to) {
        const double dt = to - t;
        pageCyc += static_cast<double>(pool.usedPages()) * dt;
        tokenCyc +=
            static_cast<double>(pool.stats().usedTokens) * dt;
        t = to;
    };

    const auto deliver = [&]() {
        while (next < seqs.size() && seqs[next].stamp <= t) {
            const auto idx = static_cast<std::uint32_t>(next);
            if (seqs[next].carried) {
                // Admitted in an earlier epoch: bypasses admission,
                // counts toward the depth fresh arrivals see.
                waiting.push_back(idx);
            } else {
                ++tr.submitted;
                if (waiting.size() + running.size() +
                        staticDone.size() <
                    ts.maxQueueDepth) {
                    waiting.push_back(idx);
                    trace.instant(std::max(seqs[next].stamp, t),
                                  "request", "admit", "tenant", ti,
                                  "seq", idx);
                } else {
                    ++tr.rejected;
                    trace.instant(std::max(seqs[next].stamp, t),
                                  "request", "reject", "tenant", ti,
                                  "seq", idx);
                }
            }
            ++next;
        }
    };

    const auto tracePageAlloc = [&](std::uint32_t newPages) {
        if (newPages != 0)
            trace.instant(t, "llm", "page-alloc", "tenant", ti,
                          "pages", newPages, "free",
                          pool.freePages());
    };

    // Prefill one waiting sequence into the running batch. The
    // context (prompt plus any tokens generated before a preemption)
    // is recomputed in one pass. @return false when page-gated or
    // the pass cannot complete before the stop boundary.
    const auto prefillInto = [&](std::uint64_t reserveTokens) {
        const std::uint32_t idx = waiting.front();
        Seq &s = seqs[idx];
        const std::uint64_t ctx =
            static_cast<std::uint64_t>(s.prompt) + s.generated;
        // Stop-gate before touching the pool so a sequence that
        // cannot start never ends up waiting with pages held.
        const Cycles pc = prefillCycles(spec, ctx, config.core,
                                        ts.nMes, ep.bwShare);
        if (t + pc > stop) {
            stopped = true;
            return false;
        }
        tracePageAlloc(
            pool.ensureTokens(idx, std::max(ctx, reserveTokens)));
        if (pool.lastGrowFailed())
            return false;
        waiting.pop_front();
        trace.asyncSpan(idBase + ++spanSeq, t, t + pc, "llm",
                        "prefill", "seq", idx, "tokens",
                        static_cast<double>(ctx));
        advance(t + pc);
        prefillBusy += pc;
        bytes += static_cast<double>(prefillBytes(spec, ctx));
        ++tr.llm.prefills;
        running.push_back(idx);
        deliver(); // arrivals during the pass
        return true;
    };

    const auto admitContinuous = [&]() {
        while (!stopped && running.size() < ep.maxBatch &&
               !waiting.empty()) {
            if (!prefillInto(/*reserveTokens=*/0))
                break; // strict FIFO: no skipping past the head
        }
    };

    const auto admitStatic = [&]() {
        if (!running.empty() || !staticDone.empty())
            return;
        while (!stopped && running.size() < ep.maxBatch &&
               !waiting.empty()) {
            // Naive worst-case reservation: prompt + full output.
            const Seq &s = seqs[waiting.front()];
            if (!prefillInto(static_cast<std::uint64_t>(s.prompt) +
                             s.output))
                break;
        }
    };

    const auto preemptYoungest = [&](std::uint32_t needy) {
        const std::uint32_t victim = running.back();
        running.pop_back();
        const std::uint32_t freed = pool.release(victim);
        ++tr.llm.preemptions;
        trace.instant(t, "llm", "page-evict", "tenant", ti, "seq",
                      victim, "pages", freed);
        // Recompute on readmission: the page list is gone but the
        // generated count survives, so the re-prefill covers
        // prompt + generated and decode resumes where it stopped.
        waiting.push_front(victim);
        return victim == needy;
    };

    // --- main loop: one decode iteration per pass ------------------
    while (true) {
        deliver();
        if (continuous)
            admitContinuous();
        else
            admitStatic();
        if (stopped)
            break;
        if (running.empty()) {
            if (waiting.empty() && next >= seqs.size())
                break; // drained
            if (!waiting.empty()) {
                // Nothing admitted with an empty core: impossible
                // under the single-sequence capacity check above.
                fatal("llm: tenant %u deadlocked with %zu sequences "
                      "waiting and an idle core",
                      tenant, waiting.size());
            }
            const Cycles at = std::max(t, seqs[next].stamp);
            if (at >= stop) {
                stopped = true;
                break;
            }
            advance(at); // idle until the next arrival
            continue;
        }

        // Grow every running sequence's page list by one token,
        // evicting the youngest under page pressure.
        std::size_t k = 0;
        while (k < running.size()) {
            const std::uint32_t idx = running[k];
            const Seq &s = seqs[idx];
            const std::uint64_t need =
                static_cast<std::uint64_t>(s.prompt) + s.generated +
                1;
            bool evictedSelf = false;
            tracePageAlloc(pool.ensureTokens(idx, need));
            while (pool.lastGrowFailed()) {
                if (running.size() == 1)
                    fatal("llm: tenant %u: lone sequence of %llu "
                          "tokens starved for pages",
                          tenant,
                          static_cast<unsigned long long>(need));
                evictedSelf = preemptYoungest(idx);
                if (evictedSelf)
                    break;
                tracePageAlloc(pool.ensureTokens(idx, need));
            }
            if (!evictedSelf)
                ++k;
        }
        if (running.empty())
            continue;

        // Price and run the iteration: every live context is read,
        // all weights re-stream, one token per sequence comes out.
        std::uint64_t ctx = 0;
        for (std::uint32_t idx : running)
            ctx += static_cast<std::uint64_t>(seqs[idx].prompt) +
                   seqs[idx].generated;
        const Cycles cost =
            decodeStepCycles(spec, running.size(), ctx, config.core,
                             ts.nMes, ep.bwShare);
        if (t + cost > stop) {
            stopped = true;
            break;
        }
        const Cycles begin = t;
        advance(t + cost);
        decodeBusy += cost;
        bytes += static_cast<double>(decodeStepBytes(spec, ctx));
        ++tr.llm.decodeIterations;
        trace.asyncSpan(idBase + ++spanSeq, begin, t, "llm",
                        "decode", "batch",
                        static_cast<double>(running.size()), "ctx",
                        static_cast<double>(ctx));

        // Advance the whole batch one token; retire completions.
        std::vector<std::uint32_t> still;
        still.reserve(running.size());
        for (std::uint32_t idx : running) {
            Seq &s = seqs[idx];
            ++s.generated;
            ++tr.llm.tokensGenerated;
            if (!s.sawFirstToken) {
                s.sawFirstToken = true;
                tr.llm.ttftCycles.add(t - s.stamp);
            }
            if (s.generated >= s.output) {
                const Cycles latency = t - s.stamp;
                ++tr.completed;
                tr.latencyCycles.add(latency);
                if (latency <= ts.sloCycles)
                    ++tr.sloMet;
                trace.instant(t, "request", "complete", "tenant", ti,
                              "latency", latency);
                if (continuous) {
                    pool.release(idx); // pages free immediately
                } else {
                    staticDone.push_back(idx); // held to batch end
                }
            } else {
                still.push_back(idx);
            }
        }
        running.swap(still);
        if (!continuous && running.empty()) {
            // The naive baseline returns its worst-case reservation
            // only once the whole batch has drained.
            for (std::uint32_t idx : staticDone)
                pool.release(idx);
            staticDone.clear();
        }
    }

    // --- teardown: conservation, backlog, stats --------------------
    pool.audit();
    tr.backlog.reserve(waiting.size() + running.size() +
                       staticDone.size());
    for (std::uint32_t idx : waiting)
        tr.backlog.push_back(seqs[idx].stamp);
    for (std::uint32_t idx : running)
        tr.backlog.push_back(seqs[idx].stamp);
    // Release every page holder (running sequences, and in static
    // mode the finished-but-held batch members): the audited
    // invariant is an empty pool, with no holder class overlooked.
    for (SeqId holder : pool.holders())
        pool.release(holder);
    std::sort(tr.backlog.begin(), tr.backlog.end());
    if (stopped && !boundary) {
        // Time-cap semantics (ServingConfig::maxCycles): arrivals
        // the cap cut off were offered but never served.
        tr.submitted += seqs.size() - next;
        tr.rejected += seqs.size() - next;
    }
    pool.audit();

    const Cycles endT = stopped ? stop : t;
    acc.makespan = std::max(acc.makespan, endT);
    const double window = std::max(1.0, endT);
    acc.meUsefulCycles +=
        prefillBusy * ts.nMes / config.core.numMes;
    acc.meHeldCycles += decodeBusy * ts.nMes / config.core.numMes;
    acc.veCycles += decodeBusy * ts.nVes / config.core.numVes;
    acc.bytesStreamed += bytes;

    LlmEndpointStats &ls = tr.llm;
    const KvPoolStats &ps = pool.stats();
    ls.kvPages = ps.totalPages;
    ls.kvPageHighWater = ps.highWaterPages;
    ls.kvAllocOps = ps.allocOps;
    ls.kvFreeOps = ps.freeOps;
    ls.kvFailedAllocs = ps.failedAllocs;
    ls.kvOccupancyMean =
        pageCyc / (static_cast<double>(ps.totalPages) * window);
    ls.kvFragMean =
        pageCyc > 0.0
            ? 1.0 - tokenCyc / (pageCyc * pool.pageTokens())
            : 0.0;
    const Clock clock(config.core.freqHz);
    ls.tokensPerSecond =
        static_cast<double>(ls.tokensGenerated) /
        clock.toSeconds(window);
}

} // anonymous namespace

std::uint32_t
kvPoolPages(const LlmModelSpec &spec, Bytes hbmBytes, unsigned batch,
            unsigned pageTokens)
{
    if (pageTokens == 0)
        fatal("llm: page-tokens must be >= 1");
    const Bytes reserve =
        spec.weightBytes +
        static_cast<Bytes>(batch) * spec.actPerSample;
    const Bytes pageBytes =
        static_cast<Bytes>(pageTokens) * spec.kvBytesPerToken();
    if (hbmBytes < reserve + pageBytes)
        fatal("llm: a %llu-byte vNPU HBM reservation leaves no room "
              "for KV pages after %llu bytes of weights and "
              "activations (§III-B residency)",
              static_cast<unsigned long long>(hbmBytes),
              static_cast<unsigned long long>(reserve));
    return static_cast<std::uint32_t>((hbmBytes - reserve) /
                                      pageBytes);
}

ServingResult
runLlmServing(const ServingConfig &config)
{
    NEU10_ASSERT(!config.tenants.empty(), "experiment needs tenants");
    NEU10_ASSERT(config.mode == ServingMode::LlmContinuous,
                 "runLlmServing serves ServingMode::LlmContinuous");

    ServingResult result;
    if (config.trace.enabled)
        result.trace.enable(true);
    result.policy = policyName(config.policy);
    result.tenants.resize(config.tenants.size());

    CoreAccounting acc;
    for (unsigned i = 0; i < config.tenants.size(); ++i) {
        TenantResult &tr = result.tenants[i];
        tr.model = modelAbbrev(config.tenants[i].model);
        runEndpoint(config, i, tr, result.trace, acc);
    }

    // The measurement window spans every endpoint (they share the
    // core's wall clock even though their iterations interleave
    // analytically).
    result.makespan = acc.makespan;
    const double window = std::max(1.0, acc.makespan);
    const Clock clock(config.core.freqHz);
    result.meUsefulUtil = acc.meUsefulCycles / window;
    result.meHeldUtil = acc.meHeldCycles / window;
    result.veUtil = acc.veCycles / window;
    result.avgHbmBytesPerCycle = acc.bytesStreamed / window;
    for (TenantResult &tr : result.tenants) {
        tr.throughput = tr.completed / clock.toSeconds(window);
        tr.goodput = tr.sloMet / clock.toSeconds(window);
    }
    return result;
}

} // namespace llm
} // namespace neu10
