#include "llm/phase_model.hh"

#include <algorithm>
#include <string>

#include "common/strings.hh"

namespace neu10
{
namespace llm
{

namespace
{

/** Peak MACs per cycle of one 128x128 weight-stationary ME. */
constexpr double kMeMacsPerCycle = 128.0 * 128.0;

/** Fixed per-phase launch/sync cost (host dispatch, uTask setup). */
constexpr double kPhaseOverheadCycles = 4096.0;

} // anonymous namespace

const LlmModelSpec &
llamaSpec()
{
    static const LlmModelSpec spec; // defaults are LLaMA2-13B
    return spec;
}

void
emitPrefillOps(GraphBuilder &g, const LlmModelSpec &spec, double b)
{
    const double h = spec.hidden, s = spec.promptTokens;
    const double layer_params = spec.layerParams();

    // 512 tokens in parallel, per layer-chunk.
    g.embedding("embed", b * s, h, 2.0, {});
    for (unsigned c = 0; c < spec.prefillChunks; ++c) {
        const std::string p = csprintf("prefill%u.", c);
        const double lp =
            spec.layers / spec.prefillChunks; // layers in this chunk
        g.matmul(p + "proj", b * s, h, lp * layer_params / h,
                 /*wf=*/1.0, /*spill=*/0.1);
        g.matmul(p + "attn", b * s, s, lp * h, /*wf=*/0.1);
        g.vector(p + "softmax_norm", b * lp * spec.layers * s * s,
                 2.0);
    }
}

void
emitDecodeOps(GraphBuilder &g, const LlmModelSpec &spec, double b)
{
    const double h = spec.hidden, s = spec.promptTokens;

    // dec_steps tokens, each re-streaming all weights and the KV
    // cache. Two weight-halves per step keep op granularity
    // reasonable; M = batch gives ~6% systolic fill.
    const double half_params = spec.layers * spec.layerParams() / 2.0;
    for (unsigned t = 0; t < spec.decodeSteps; ++t) {
        const std::string p = csprintf("dec%u.", t);
        g.matmul(p + "gemv_a", b, h, half_params / h,
                 /*wf=*/1.0, /*spill=*/0.0);
        g.matmul(p + "gemv_b", b, h, half_params / h,
                 /*wf=*/1.0, /*spill=*/0.0);
        // Attention against the KV cache: VE work plus the cache read.
        g.vector(p + "kv_attn", b * spec.layers * (s + t) * 128, 2.0,
                 static_cast<Bytes>(b) * spec.kvPerSample);
        g.vector(p + "norm_sample", b * h * spec.layers, 4.0);
    }
}

Bytes
prefillBytes(const LlmModelSpec &spec, std::uint64_t promptTokens)
{
    return spec.weightBytes + promptTokens * spec.kvBytesPerToken();
}

Bytes
decodeStepBytes(const LlmModelSpec &spec, std::uint64_t contextTokens)
{
    return spec.weightBytes + contextTokens * spec.kvBytesPerToken();
}

Cycles
prefillCycles(const LlmModelSpec &spec, std::uint64_t promptTokens,
              const NpuCoreConfig &core, unsigned nMes,
              double bwShare)
{
    // Projection/FFN MACs (one per parameter per token) plus the
    // quadratic attention term; large M fills the array (eff = 1).
    const double tokens = static_cast<double>(promptTokens);
    const double macs =
        tokens * spec.layers * spec.layerParams() +
        tokens * tokens * spec.hidden * spec.layers;
    const double compute =
        macs / (static_cast<double>(nMes) * kMeMacsPerCycle);
    const double stream =
        static_cast<double>(prefillBytes(spec, promptTokens)) /
        (core.hbmBytesPerCycle() * bwShare);
    return std::max(compute, stream) + kPhaseOverheadCycles;
}

Cycles
decodeStepCycles(const LlmModelSpec &spec, std::uint64_t runningSeqs,
                 std::uint64_t contextTokens,
                 const NpuCoreConfig &core, unsigned nMes,
                 double bwShare)
{
    const double stream =
        static_cast<double>(decodeStepBytes(spec, contextTokens)) /
        (core.hbmBytesPerCycle() * bwShare);
    // GEMV occupancy: M = batch fills batch/128 of the array.
    const double fill =
        std::min(1.0, static_cast<double>(runningSeqs) / 128.0);
    const double macs = static_cast<double>(runningSeqs) *
                        spec.layers * spec.layerParams();
    const double compute =
        macs /
        (static_cast<double>(nMes) * kMeMacsPerCycle * fill);
    return std::max(stream, compute) + kPhaseOverheadCycles;
}

} // namespace llm
} // namespace neu10
