/**
 * @file
 * The LLM phase model: one source of truth for the LLaMA2-13B shape
 * (§V-F) and the prefill/decode cost structure derived from it.
 *
 * Two consumers share it:
 *
 *  - The model zoo: models/llm.cc builds the closed-loop §V-F graph
 *    (`bench_fig27_llm`) by emitting the prefill and decode operator
 *    streams through emitPrefillOps()/emitDecodeOps(). The emission
 *    reproduces the original hand-rolled generation digit-for-digit
 *    (pinned by tests/test_llm.cpp parity cases).
 *
 *  - Token-level serving (llm/llm_serving.hh): continuous batching
 *    advances whole decode batches one token at a time, far past the
 *    operator granularity the core simulator is built for, so the
 *    serving loop prices phases analytically with the roofline
 *    functions below instead of replaying graphs. Both views use the
 *    same constants, so the closed-loop graph and the token-level
 *    costs cannot drift apart.
 *
 * Cost structure (matches the graph's character): prefill processes
 * the whole prompt in parallel — large, array-filling matmuls, so it
 * is compute-bound on the matrix engines with a weight-stream floor.
 * Decode emits one token per sequence per iteration — every
 * iteration re-streams all weights plus the live KV cache through
 * HBM while the M = batch GEMVs fill only batch/128 of the systolic
 * array, so it is bandwidth-bound with a low-occupancy compute floor
 * (the §V-F harvesting opportunity).
 */

#ifndef NEU10_LLM_PHASE_MODEL_HH
#define NEU10_LLM_PHASE_MODEL_HH

#include <cstdint>

#include "common/types.hh"
#include "models/builder.hh"
#include "npu/config.hh"

namespace neu10
{
namespace llm
{

/** The transformer shape and memory constants of one LLM. */
struct LlmModelSpec
{
    double hidden = 5120.0;     ///< model dimension
    double ffn = 13824.0;       ///< feed-forward inner dimension
    unsigned layers = 40;

    /** Reference prompt length of the closed-loop §V-F graph; also
     * the sequence length kvPerSample is quoted at. */
    unsigned promptTokens = 512;

    /** Layers folded per prefill operator in the closed-loop graph. */
    unsigned prefillChunks = 8;

    /** Decode steps in the closed-loop graph. */
    unsigned decodeSteps = 48;

    Bytes weightBytes = 26624_MiB; ///< 13B params, fp16
    Bytes kvPerSample = 420_MiB;   ///< K+V for one promptTokens seq
    Bytes actPerSample = 8_MiB;    ///< activation working set

    /** Parameters (= MACs per token) in one layer: QKVO + FFN. */
    double
    layerParams() const
    {
        return 4.0 * hidden * hidden + 3.0 * hidden * ffn;
    }

    /** KV bytes one token appends (exact: kvPerSample is a multiple
     * of promptTokens by construction). */
    Bytes
    kvBytesPerToken() const
    {
        return kvPerSample / promptTokens;
    }

    /** HBM footprint of weights + per-sequence state at @p batch —
     * the quantity sizeVnpuForModel's §III-B residency check sees. */
    Bytes
    footprint(unsigned batch) const
    {
        return weightBytes +
               static_cast<Bytes>(batch) * kvPerSample +
               static_cast<Bytes>(batch) * actPerSample;
    }
};

/** The canonical LLaMA2-13B spec (§V-F, Table I). */
const LlmModelSpec &llamaSpec();

/**
 * Emit the closed-loop prefill operator stream (embedding + chunked
 * projection/attention/softmax ops) into @p g at batch @p b.
 * Chains from the builder's current last op.
 */
void emitPrefillOps(GraphBuilder &g, const LlmModelSpec &spec,
                    double b);

/**
 * Emit the closed-loop decode operator stream (per-step GEMV halves,
 * KV attention and norm/sample ops) into @p g at batch @p b.
 */
void emitDecodeOps(GraphBuilder &g, const LlmModelSpec &spec,
                   double b);

/**
 * Analytic prefill cost: one sequence of @p promptTokens processed
 * in parallel on @p nMes matrix engines with a @p bwShare fraction
 * of the core's HBM bandwidth (static per-vNPU partition).
 * max(compute at full array fill, weight stream + KV write).
 */
Cycles prefillCycles(const LlmModelSpec &spec,
                     std::uint64_t promptTokens,
                     const NpuCoreConfig &core, unsigned nMes,
                     double bwShare);

/**
 * Analytic cost of one decode iteration advancing @p runningSeqs
 * sequences whose live contexts total @p contextTokens:
 * max(weights + KV stream, GEMV compute at batch/128 array fill).
 */
Cycles decodeStepCycles(const LlmModelSpec &spec,
                        std::uint64_t runningSeqs,
                        std::uint64_t contextTokens,
                        const NpuCoreConfig &core, unsigned nMes,
                        double bwShare);

/** HBM bytes one decode iteration streams (weights + live KV). */
Bytes decodeStepBytes(const LlmModelSpec &spec,
                      std::uint64_t contextTokens);

/** HBM bytes one prefill streams (weights + KV written). */
Bytes prefillBytes(const LlmModelSpec &spec,
                   std::uint64_t promptTokens);

} // namespace llm
} // namespace neu10

#endif // NEU10_LLM_PHASE_MODEL_HH
