/**
 * @file
 * LLM-serving knobs and per-tenant statistics.
 *
 * This header is the thin interface between the generic serving layer
 * (runtime/serving.hh embeds LlmParams in ServingConfig and
 * LlmEndpointStats in TenantResult) and the LLM subsystem proper
 * (llm/llm_serving.hh). It deliberately pulls in nothing beyond the
 * stats layer so runtime/serving.hh stays free of llm/ internals.
 */

#ifndef NEU10_LLM_LLM_PARAMS_HH
#define NEU10_LLM_LLM_PARAMS_HH

#include <cstdint>

#include "stats/distribution.hh"

namespace neu10
{

/** How sequences are grouped into decode batches. */
enum class LlmScheduler
{
    /** Continuous batching: new sequences prefill into the running
     * decode batch as soon as KV pages are free; completed sequences
     * free their pages immediately so queued ones join mid-flight. */
    Continuous = 0,

    /** Naive static batching (the baseline): admit a batch, prefill
     * it, decode until *every* member finishes; finished slots idle
     * and their worst-case KV reservation is held until the batch
     * drains. No admission mid-batch. */
    StaticBatch,
};

/** [llm] section knobs (scenario layer) / ServingConfig::llm. */
struct LlmParams
{
    LlmScheduler scheduler = LlmScheduler::Continuous;

    /** KV-cache page granularity in tokens (fixed page size). */
    unsigned pageTokens = 16;

    /** Max sequences decoding concurrently; 0 = the tenant's batch. */
    unsigned maxBatch = 0;

    /** Prompt length in tokens: fixed at promptTokens, or drawn
     * uniformly from [promptTokens, promptTokensMax] per sequence
     * when promptTokensMax > promptTokens (seeded, deterministic). */
    unsigned promptTokens = 512;
    unsigned promptTokensMax = 0;

    /** Output (decoded) length in tokens, same fixed-or-uniform rule. */
    unsigned outputTokens = 48;
    unsigned outputTokensMax = 0;
};

/** Per-tenant LLM serving outcome (rides in TenantResult::llm). */
struct LlmEndpointStats
{
    std::uint64_t tokensGenerated = 0;

    /** Prefill passes, including recomputation after preemption. */
    std::uint64_t prefills = 0;

    /** Decode iterations this endpoint ran (whole-batch steps). */
    std::uint64_t decodeIterations = 0;

    /** Sequences evicted by page pressure (pages freed, re-queued). */
    std::uint64_t preemptions = 0;

    // --- KV pool accounting (llm/kv_pool.hh) -----------------------
    std::uint32_t kvPages = 0;          ///< pool capacity in pages
    std::uint32_t kvPageHighWater = 0;  ///< peak pages in use
    std::uint64_t kvAllocOps = 0;       ///< pages allocated over the run
    std::uint64_t kvFreeOps = 0;        ///< pages freed over the run
    std::uint64_t kvFailedAllocs = 0;   ///< refused page-list grows

    /** Time-weighted mean of usedPages / totalPages over the run. */
    double kvOccupancyMean = 0.0;

    /** Time-weighted mean internal fragmentation: the fraction of
     * allocated page capacity not holding live tokens. */
    double kvFragMean = 0.0;

    /** Time to first token, arrival -> end of the decode iteration
     * that produced the sequence's first token (cycles). */
    Distribution ttftCycles;

    /** Generated tokens per second of simulated time. */
    double tokensPerSecond = 0.0;
};

} // namespace neu10

#endif // NEU10_LLM_LLM_PARAMS_HH
