#include "vnpu/allocator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "compiler/lower.hh"

namespace neu10
{

namespace
{

/** Clamp profiled ratios into the model's domain. */
void
sanitize(double &m, double &v)
{
    m = std::clamp(m, 0.0, 1.0);
    v = std::clamp(v, 0.0, 1.0);
    // §III-B assumes at least one engine type is active at any time
    // (m + v >= 1). Bandwidth-bound workloads can profile below that;
    // scale the concurrent-overlap term to zero in that case.
    if (m + v < 1.0) {
        const double scale = 1.0 / std::max(1e-9, m + v);
        m *= scale;
        v *= scale;
    }
}

/** SRAM share for an nm-ME vNPU on @p core: proportional to the ME
 * share (§III-B), rounded up to isolation segments. */
Bytes
sramForMes(unsigned nm, const NpuCoreConfig &core)
{
    const double me_share = static_cast<double>(nm) / core.numMes;
    const Bytes sram_want = static_cast<Bytes>(
        std::min(1.0, me_share) * static_cast<double>(core.sramBytes));
    const Bytes sram_segs =
        std::max<Bytes>(1, (sram_want + core.sramSegment - 1) /
                               core.sramSegment);
    return std::min<Bytes>(sram_segs * core.sramSegment,
                           core.sramBytes);
}

} // anonymous namespace

double
allocNormalizedTime(double m, double v, unsigned nm, unsigned nv)
{
    NEU10_ASSERT(nm > 0 && nv > 0, "need at least one engine each");
    sanitize(m, v);
    return (1.0 - v) / nm + (1.0 - m) / nv +
           (m + v - 1.0) / std::min(nm, nv);
}

double
allocUtilization(double m, double v, unsigned nm, unsigned nv)
{
    sanitize(m, v);
    const double th = (m + v) / (nm + nv);
    const double t = allocNormalizedTime(m, v, nm, nv);
    return t > 0.0 ? th / t : 0.0;
}

double
allocOptimalRatio(double m, double v)
{
    sanitize(m, v);
    if (m >= 0.5 && v >= 0.5)
        return 1.0;
    if (m < 0.5)
        return std::sqrt(m / (1.0 - m));
    // v < 0.5: ME-heavy side.
    return std::sqrt((1.0 - v) / v);
}

std::pair<unsigned, unsigned>
allocSplitEus(double m, double v, unsigned total_eus)
{
    NEU10_ASSERT(total_eus >= 2, "need at least one ME and one VE");
    const double k = allocOptimalRatio(m, v);

    // nm = k * nv and nm + nv = total -> nv = total / (k + 1).
    const double nv_exact = total_eus / (k + 1.0);
    double best_u = -1.0;
    std::pair<unsigned, unsigned> best{1, 1};
    for (int delta = -1; delta <= 1; ++delta) {
        const long nv_try =
            std::lround(std::floor(nv_exact)) + delta;
        if (nv_try < 1 || nv_try >= static_cast<long>(total_eus))
            continue;
        const auto nv = static_cast<unsigned>(nv_try);
        const unsigned nm = total_eus - nv;
        const double u = allocUtilization(m, v, nm, nv);
        if (u > best_u) {
            best_u = u;
            best = {nm, nv};
        }
    }
    return best;
}

std::vector<AllocPoint>
allocSweep(double m, double v, unsigned max_eus)
{
    std::vector<AllocPoint> points;
    const double t11 = allocNormalizedTime(m, v, 1, 1);
    for (unsigned total = 2; total <= max_eus; ++total) {
        const auto pick = allocSplitEus(m, v, total);
        for (unsigned nm = 1; nm < total; ++nm) {
            const unsigned nv = total - nm;
            AllocPoint p;
            p.nm = nm;
            p.nv = nv;
            p.utilization = allocUtilization(m, v, nm, nv);
            p.speedup = t11 / allocNormalizedTime(m, v, nm, nv);
            p.selected = (nm == pick.first && nv == pick.second);
            points.push_back(p);
        }
    }
    return points;
}

VnpuConfig
allocateVnpu(const WorkloadProfile &prof, unsigned total_eus,
             Bytes footprint, const NpuCoreConfig &core)
{
    const auto [nm, nv] = allocSplitEus(prof.m, prof.v, total_eus);

    VnpuConfig cfg;
    cfg.numChips = 1;
    cfg.numCoresPerChip = 1;
    cfg.numMesPerCore = nm;
    cfg.numVesPerCore = nv;

    // HBM: compiler footprint rounded up to isolation segments.
    const Bytes seg = core.hbmSegment;
    const Bytes segs = (footprint + seg - 1) / seg;
    cfg.memSizePerCore = std::min<Bytes>(segs * seg, core.hbmBytes);

    // SRAM proportional to the ME share (§III-B), segment-rounded.
    cfg.sramSizePerCore = sramForMes(nm, core);

    cfg.validate();
    return cfg;
}

Cycles
VnpuSizing::serviceEstimate() const
{
    const Cycles engine_time =
        profile.referenceTime *
        allocNormalizedTime(profile.m, profile.v,
                            config.numMesPerCore,
                            config.numVesPerCore);
    const Cycles dma_time =
        hbmBytesPerCycle > 0.0
            ? static_cast<double>(profile.bytes) / hbmBytesPerCycle
            : 0.0;
    return std::max(engine_time, dma_time);
}

VnpuSizing
sizeVnpuForModel(ModelId model, unsigned batch, unsigned total_eus,
                 const NpuCoreConfig &core)
{
    const DnnGraph graph = buildModel(model, batch);
    VnpuSizing sizing;
    sizing.hbmBytesPerCycle = core.hbmBytesPerCycle();
    sizing.profile = profileWorkload(graph, core.numMes, core.numVes,
                                     sizing.hbmBytesPerCycle,
                                     core.machine());
    sizing.footprint = lowerToNeuIsa(graph, core.numMes, core.numVes,
                                     core.machine())
                           .hbmFootprint;
    sizing.config = allocateVnpu(sizing.profile, total_eus,
                                 sizing.footprint, core);

    // Clamp the split to the core shape (see header): only when the
    // budget fits the core at all; an over-core budget stays as-is
    // for the placer to reject.
    unsigned &nm = sizing.config.numMesPerCore;
    unsigned &nv = sizing.config.numVesPerCore;
    if (total_eus <= core.numMes + core.numVes) {
        if (nm > core.numMes) {
            nv = std::min(nv + (nm - core.numMes), core.numVes);
            nm = core.numMes;
        } else if (nv > core.numVes) {
            nm = std::min(nm + (nv - core.numVes), core.numMes);
            nv = core.numVes;
        }
    }
    return sizing;
}

bool
resplitForResidency(VnpuSizing &sizing, unsigned total_eus,
                    unsigned free_mes, unsigned free_ves,
                    const NpuCoreConfig &core)
{
    const unsigned total = total_eus;
    if (total < 2 || free_mes < 1 || free_ves < 1 ||
        free_mes + free_ves < total)
        return false;

    auto [nm, nv] =
        allocSplitEus(sizing.profile.m, sizing.profile.v, total);
    // Clamp to the destination's residency, shifting the excess to
    // the other engine type so the EU budget is preserved. The sum
    // check above guarantees the shifted side fits.
    if (nm > free_mes) {
        nv = total - free_mes;
        nm = free_mes;
    } else if (nv > free_ves) {
        nm = total - free_ves;
        nv = free_ves;
    }
    sizing.config.numMesPerCore = nm;
    sizing.config.numVesPerCore = nv;
    sizing.config.sramSizePerCore = sramForMes(nm, core);
    return true;
}

} // namespace neu10
