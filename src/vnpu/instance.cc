#include "vnpu/instance.hh"

namespace neu10
{

std::string
toString(VnpuState state)
{
    switch (state) {
      case VnpuState::Created: return "created";
      case VnpuState::Mapped: return "mapped";
      case VnpuState::Active: return "active";
      case VnpuState::Destroyed: return "destroyed";
    }
    return "bad-state";
}

} // namespace neu10
