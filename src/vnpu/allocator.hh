/**
 * @file
 * The vNPU allocator (§III-B): choosing the ME/VE split for a workload.
 *
 * Users specify a total number of execution units (EUs, the billing
 * unit); the allocator picks the ME:VE ratio that maximizes EU
 * utilization for the workload's profiled active ratios m and v:
 *
 *   T(nm, nv) = (1-v)/nm + (1-m)/nv + (m+v-1)/min(nm, nv)     (Eq. 1)
 *   U = Th / T,  Th = (m+v)/(nm+nv)                           (Eq. 2)
 *   k* = nm/nv = sqrt(m/(1-m))        if m < 0.5
 *              = sqrt((1-v)/v)        if v < 0.5              (Eq. 4)
 *              = 1                    if m >= 0.5 and v >= 0.5
 *
 * Memory: HBM capacity comes from the compiler's footprint estimate
 * (rounded up to isolation segments); SRAM is proportional to the ME
 * share (more MEs imply larger tiles).
 */

#ifndef NEU10_VNPU_ALLOCATOR_HH
#define NEU10_VNPU_ALLOCATOR_HH

#include <vector>

#include "compiler/profile.hh"
#include "models/zoo.hh"
#include "npu/config.hh"
#include "vnpu/config.hh"

namespace neu10
{

/** Normalized execution time on (nm, nv) engines — Eq. (1). */
double allocNormalizedTime(double m, double v, unsigned nm, unsigned nv);

/** EU utilization of a configuration — Eq. (2). */
double allocUtilization(double m, double v, unsigned nm, unsigned nv);

/** Optimal ME:VE ratio k* — Eq. (4). */
double allocOptimalRatio(double m, double v);

/**
 * Split @p total_eus into (nm, nv) following k*, each side >= 1.
 * Among the two integer roundings the one with the better modeled
 * utilization wins.
 */
std::pair<unsigned, unsigned> allocSplitEus(double m, double v,
                                            unsigned total_eus);

/** One evaluated configuration in an EU sweep (Fig. 12 data point). */
struct AllocPoint
{
    unsigned nm = 0;
    unsigned nv = 0;
    double utilization = 0.0;   ///< Eq. (2)
    double speedup = 0.0;       ///< 1 / T, normalized to (1,1)
    bool selected = false;      ///< the allocator's pick at this EU count
};

/**
 * Sweep every (nm, nv) with nm + nv == total for total in
 * [2, max_eus], marking the allocator's selection per EU count —
 * reproduces Fig. 12's scatter.
 */
std::vector<AllocPoint> allocSweep(double m, double v, unsigned max_eus);

/**
 * Full allocation for a profiled workload: engine split for the EU
 * budget plus segment-rounded memory sizing (§III-B).
 *
 * @param prof       compile-time profile (m, v, footprint inputs).
 * @param total_eus  EU budget the user pays for.
 * @param footprint  HBM bytes the compiler estimated for the model.
 * @param core       physical core (segment sizes, SRAM capacity).
 */
VnpuConfig allocateVnpu(const WorkloadProfile &prof, unsigned total_eus,
                        Bytes footprint,
                        const NpuCoreConfig &core = {});

/** A workload-sized vNPU plus the estimates that sized it. */
struct VnpuSizing
{
    VnpuConfig config;       ///< allocator's pick (engines + memory)
    WorkloadProfile profile; ///< m, v and busy-cycle estimates
    Bytes footprint = 0;     ///< compiler HBM footprint estimate
    double hbmBytesPerCycle = 0.0; ///< core bandwidth used to profile

    /**
     * Estimated solo service time (cycles per request) at the chosen
     * engine allocation: the 1-ME/1-VE reference runtime scaled by
     * Eq. (1)'s normalized time (T(1,1) = 1 by construction), floored
     * by the HBM transfer time so bandwidth-bound workloads (DLRM)
     * are not under-estimated.
     */
    Cycles serviceEstimate() const;
};

/**
 * One-stop sizing for the fleet placer and provider tooling: profile
 * the model at @p batch on @p core, estimate its HBM footprint via the
 * NeuISA lowering, and run the §III-B allocation for @p total_eus.
 *
 * Unlike raw allocateVnpu(), the engine split is clamped to the
 * physical core shape: when k* wants more of one engine type than the
 * core has, the excess shifts to the other type so the tenant still
 * gets the EUs it pays for (a 5:1 pick on a 4ME/4VE core becomes
 * 4:2). A budget exceeding the whole core is left unclamped — no
 * core can host it and the placer must reject it.
 */
VnpuSizing sizeVnpuForModel(ModelId model, unsigned batch,
                            unsigned total_eus,
                            const NpuCoreConfig &core = {});

/**
 * Re-run the §III-B engine split of an already-sized vNPU against the
 * residency of a migration destination: Eq. (4) picks the ideal ME:VE
 * ratio for @p total_eus (the paid budget, or a larger transient
 * grant into the destination's idle EUs), then the split is clamped
 * to the destination core's (@p free_mes, @p free_ves) with the
 * excess shifted to the other engine type, so the full EU count is
 * preserved. SRAM is re-sized to the new ME share. Updates
 * @p sizing.config in place.
 *
 * @return false — leaving @p sizing untouched — when @p total_eus
 *         cannot fit the free capacity at all (fewer free EUs than
 *         the budget, or either engine type fully taken).
 */
bool resplitForResidency(VnpuSizing &sizing, unsigned total_eus,
                         unsigned free_mes, unsigned free_ves,
                         const NpuCoreConfig &core = {});

} // namespace neu10

#endif // NEU10_VNPU_ALLOCATOR_HH
