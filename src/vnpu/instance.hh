/**
 * @file
 * vNPU instance lifecycle (§III-A).
 *
 * A Vnpu is the manager-side record of one virtual NPU: its requested
 * configuration, lifecycle state, the tenant that owns it, and — once
 * mapped — the physical placement (core + slot) and memory segments.
 * Creation and destruction flow through hypercalls (src/virt); this
 * type is the bookkeeping they manipulate.
 */

#ifndef NEU10_VNPU_INSTANCE_HH
#define NEU10_VNPU_INSTANCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "vnpu/config.hh"

namespace neu10
{

/** Lifecycle states of a vNPU instance. */
enum class VnpuState : std::uint8_t
{
    Created = 0,   ///< config accepted, no resources yet
    Mapped,        ///< bound to a physical core (context installed)
    Active,        ///< guest driver attached, commands flowing
    Destroyed,     ///< torn down; id never reused
};

/** Human-readable state name. */
std::string toString(VnpuState state);

/** Mapping discipline for a vNPU (§III-C). */
enum class IsolationMode : std::uint8_t
{
    Hardware = 0,  ///< spatial: dedicated engines, no sharing
    Software,      ///< temporal: engines may be oversubscribed
};

/** One vNPU instance record. */
struct Vnpu
{
    VnpuId id = kInvalidVnpu;
    TenantId tenant = 0;
    VnpuConfig config;
    IsolationMode isolation = IsolationMode::Hardware;
    VnpuState state = VnpuState::Created;

    // Placement, valid once state >= Mapped.
    CoreId core = kInvalidCore;
    std::uint32_t slot = 0;           ///< slot index on the core
    std::vector<unsigned> sramSegments;
    std::vector<unsigned> hbmSegments;

    bool
    isMapped() const
    {
        return state == VnpuState::Mapped || state == VnpuState::Active;
    }
};

} // namespace neu10

#endif // NEU10_VNPU_INSTANCE_HH
