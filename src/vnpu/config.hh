/**
 * @file
 * The vNPU abstraction (§III-A, Fig. 10).
 *
 * A vNPU instance mirrors the hierarchy of a physical NPU board — the
 * guest driver can query chips, cores per chip, engines per core, and
 * memory sizes — while the quantities are chosen per tenant on demand
 * (pay-as-you-go). Cloud providers can also offer preset sizes
 * (small/medium/large, §III-A "vNPU lifecycle").
 */

#ifndef NEU10_VNPU_CONFIG_HH
#define NEU10_VNPU_CONFIG_HH

#include <string>

#include "common/types.hh"

namespace neu10
{

/** Fig. 10's vNPU_Config, verbatim fields. */
struct VnpuConfig
{
    unsigned numChips = 1;
    unsigned numCoresPerChip = 1;
    unsigned numMesPerCore = 1;
    unsigned numVesPerCore = 1;
    Bytes sramSizePerCore = 0;
    Bytes memSizePerCore = 0;   ///< HBM capacity per core

    /** Execution units per core (the pay-as-you-go cost driver). */
    unsigned
    eusPerCore() const
    {
        return numMesPerCore + numVesPerCore;
    }

    /** Total cores of the instance. */
    unsigned
    totalCores() const
    {
        return numChips * numCoresPerChip;
    }

    /** Validation: at least one ME and one VE per core (§III-B). */
    void validate() const;

    std::string toString() const;

    bool operator==(const VnpuConfig &) const = default;
};

/** Provider preset sizes (§III-A: "e.g. 1/4/8 MEs/VEs"). */
enum class VnpuPreset { Small, Medium, Large };

/** Build a preset configuration on the Table II core. */
VnpuConfig presetConfig(VnpuPreset preset);

} // namespace neu10

#endif // NEU10_VNPU_CONFIG_HH
