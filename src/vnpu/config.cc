#include "vnpu/config.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

void
VnpuConfig::validate() const
{
    if (numChips == 0 || numCoresPerChip == 0)
        fatal("vNPU must have at least one core");
    if (numMesPerCore == 0 || numVesPerCore == 0)
        fatal("every vNPU core needs at least one ME and one VE");
}

std::string
VnpuConfig::toString() const
{
    return csprintf("vNPU{%ux%u cores, %uME+%uVE/core, sram=%s, "
                    "hbm=%s}",
                    numChips, numCoresPerChip, numMesPerCore,
                    numVesPerCore,
                    formatBytes(sramSizePerCore).c_str(),
                    formatBytes(memSizePerCore).c_str());
}

VnpuConfig
presetConfig(VnpuPreset preset)
{
    VnpuConfig cfg;
    switch (preset) {
      case VnpuPreset::Small:
        cfg.numMesPerCore = 1;
        cfg.numVesPerCore = 1;
        cfg.sramSizePerCore = 32_MiB;
        cfg.memSizePerCore = 16_GiB;
        break;
      case VnpuPreset::Medium:
        cfg.numMesPerCore = 2;
        cfg.numVesPerCore = 2;
        cfg.sramSizePerCore = 64_MiB;
        cfg.memSizePerCore = 32_GiB;
        break;
      case VnpuPreset::Large:
        cfg.numMesPerCore = 4;
        cfg.numVesPerCore = 4;
        cfg.sramSizePerCore = 128_MiB;
        cfg.memSizePerCore = 64_GiB;
        break;
    }
    return cfg;
}

} // namespace neu10
