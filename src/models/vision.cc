/**
 * @file
 * Image-classification model builders: MNIST, ResNet-50, ResNet-RS and
 * EfficientNet.
 *
 * ResNet family: convolution-dominated (ME-intensive), with per-block
 * fused BN/ReLU vector work. EfficientNet's depthwise convolutions and
 * SE blocks run on the vector engines, balancing ME and VE demand
 * (Fig. 12c selects near-diagonal vNPU configs). MNIST is tiny; its
 * fully-connected GEMV at small batch triggers reduction partitioning,
 * giving it the largest NeuISA overhead in Fig. 16.
 */

#include "models/builders_internal.hh"

#include "common/strings.hh"
#include "models/builder.hh"

namespace neu10
{
namespace models
{

namespace
{

constexpr Bytes kMnistBase = 10295000;    // Table I: 10.59MB @ batch 8
constexpr Bytes kMnistActPerSample = 36_KiB;
constexpr Bytes kResNetBase = 174100000;  // Table I: 216.02MB @ batch 8
constexpr Bytes kResNetActPerSample = 5_MiB;
constexpr Bytes kRnrsBase = 391100000;    // Table I: 458.17MB @ batch 8
constexpr Bytes kRnrsActPerSample = 8_MiB;
constexpr Bytes kEnetBase = 65500000;     // Table I: 99.06MB @ batch 8
constexpr Bytes kEnetActPerSample = 4_MiB;

/** Emit one ResNet stage as per-block merged bottleneck convolutions. */
void
resnetStage(GraphBuilder &g, const std::string &stage, unsigned batch,
            unsigned blocks, double pixels_per_sample, double channels,
            double macs_per_block, double eff, double scale)
{
    const double out_pixels = batch * pixels_per_sample;
    for (unsigned i = 0; i < blocks; ++i) {
        const std::string p = csprintf("%s.b%u.", stage.c_str(), i);
        // Merge the bottleneck's three convs: pick cin_kk so the MAC
        // count lands on the published per-sample-per-block figure.
        const double cin_kk =
            macs_per_block * scale / (pixels_per_sample * channels);
        g.conv(p + "convs", out_pixels, channels, cin_kk);
        g.setEfficiency(eff);
        g.fused(p + "bn_relu", out_pixels * channels, 4.0);
        g.fused(p + "skip_add", out_pixels * channels, 1.0);
    }
}

DnnGraph
buildResNetFamily(const std::string &name, unsigned batch, double scale,
                  double eff_bonus, Bytes base, Bytes act)
{
    const double b = batch;
    GraphBuilder g(name, batch);

    g.vector("preprocess", b * 224 * 224 * 3, 4.0, 0, {});
    g.conv("stem", b * 112 * 112, 64, 147);
    g.setEfficiency(std::min(1.0, 0.35 + eff_bonus));
    g.fused("stem_bn_relu", b * 112 * 112 * 64, 4.0);
    g.vector("maxpool", b * 56 * 56 * 64, 5.0);

    resnetStage(g, "s1", batch, 3, 56 * 56, 256, 73e6,
                std::min(1.0, 0.45 + eff_bonus), scale);
    resnetStage(g, "s2", batch, 4, 28 * 28, 512, 103e6,
                std::min(1.0, 0.55 + eff_bonus), scale);
    resnetStage(g, "s3", batch, 6, 14 * 14, 1024, 96e6,
                std::min(1.0, 0.65 + eff_bonus), scale);
    resnetStage(g, "s4", batch, 3, 7 * 7, 2048, 118e6,
                std::min(1.0, 0.60 + eff_bonus), scale);

    g.vector("avgpool", b * 7 * 7 * 2048, 2.0);
    g.matmul("fc", b, 1000, 2048);
    g.vector("softmax", b * 1000, 5.0);

    return g.take(base + batch * act);
}

} // anonymous namespace

DnnGraph
buildMnist(unsigned batch)
{
    const double b = batch;
    GraphBuilder g("MNIST", batch);

    g.vector("normalize", b * 784, 4.0, 0, {});
    g.conv("conv1", b * 784, 32, 25, 1.0, 0.25);
    g.fused("relu1", b * 784 * 32, 1.0);
    g.vector("pool1", b * 196 * 32, 5.0);
    g.conv("conv2", b * 196, 64, 800, 1.0, 0.25);
    g.fused("relu2", b * 196 * 64, 1.0);
    g.vector("pool2", b * 49 * 64, 5.0);
    g.matmul("fc1", b, 128, 3136);
    g.fused("relu3", b * 128, 1.0);
    g.matmul("fc2", b, 10, 128);
    g.vector("softmax", b * 10, 5.0);

    return g.take(kMnistBase + batch * kMnistActPerSample);
}

DnnGraph
buildResNet(unsigned batch)
{
    return buildResNetFamily("ResNet", batch, 1.0, 0.0, kResNetBase,
                             kResNetActPerSample);
}

DnnGraph
buildResNetRs(unsigned batch)
{
    return buildResNetFamily("ResNet-RS", batch, 2.6, 0.05, kRnrsBase,
                             kRnrsActPerSample);
}

DnnGraph
buildEfficientNet(unsigned batch)
{
    const double b = batch;
    GraphBuilder g("EfficientNet", batch);

    g.vector("preprocess", b * 380 * 380 * 3, 4.0, 0, {});

    // Seven stages: pointwise/regular convs on the ME; depthwise convs,
    // squeeze-excite and swish on the VE.
    struct Stage
    {
        double pixels;     // output pixels per sample
        double channels;
        double pw_macs;    // pointwise/regular conv MACs per sample
        double dw_elems;   // depthwise VE element-ops per sample
        double eff;
    };
    const Stage stages[] = {
        {190.0 * 190, 24, 90e6, 12e6, 0.30},
        {95.0 * 95, 32, 180e6, 14e6, 0.32},
        {48.0 * 48, 56, 260e6, 16e6, 0.35},
        {24.0 * 24, 112, 360e6, 20e6, 0.40},
        {24.0 * 24, 160, 380e6, 22e6, 0.40},
        {12.0 * 12, 272, 420e6, 24e6, 0.42},
        {12.0 * 12, 448, 210e6, 12e6, 0.42},
    };

    unsigned idx = 0;
    for (const Stage &s : stages) {
        const std::string p = csprintf("st%u.", idx++);
        g.conv(p + "pw", b * s.pixels, s.channels,
               s.pw_macs / (s.pixels * s.channels));
        g.setEfficiency(s.eff);
        g.fused(p + "bn", b * s.pixels * s.channels, 2.0);
        g.vector(p + "dw", b * s.dw_elems, 2.0);
        g.vector(p + "se", b * s.channels * 64, 6.0);
        g.vector(p + "swish", b * s.pixels * s.channels, 4.0);
    }

    g.vector("avgpool", b * 12 * 12 * 448, 2.0);
    g.matmul("fc", b, 1000, 1792);
    g.vector("softmax", b * 1000, 5.0);

    return g.take(kEnetBase + batch * kEnetActPerSample);
}

} // namespace models
} // namespace neu10
