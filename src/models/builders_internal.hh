/**
 * @file
 * Internal declarations of the per-family model builders. Exposed only
 * to the zoo dispatcher and the model unit tests.
 */

#ifndef NEU10_MODELS_BUILDERS_INTERNAL_HH
#define NEU10_MODELS_BUILDERS_INTERNAL_HH

#include "compiler/graph.hh"

namespace neu10
{
namespace models
{

DnnGraph buildBert(unsigned batch);
DnnGraph buildTransformer(unsigned batch);
DnnGraph buildDlrm(unsigned batch);
DnnGraph buildNcf(unsigned batch);
DnnGraph buildMaskRcnn(unsigned batch);
DnnGraph buildRetinaNet(unsigned batch);
DnnGraph buildShapeMask(unsigned batch);
DnnGraph buildMnist(unsigned batch);
DnnGraph buildResNet(unsigned batch);
DnnGraph buildResNetRs(unsigned batch);
DnnGraph buildEfficientNet(unsigned batch);
DnnGraph buildLlama(unsigned batch);

} // namespace models
} // namespace neu10

#endif // NEU10_MODELS_BUILDERS_INTERNAL_HH
