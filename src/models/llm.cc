/**
 * @file
 * LLaMA2-13B inference (§V-F): batch 8, input sequence 512, 16 decoded
 * tokens.
 *
 * Prefill processes the whole prompt in parallel (large, ME-friendly
 * matmuls); decode is one token at a time — every step streams the full
 * 26GB of weights plus the KV cache through HBM while the GEMVs (M =
 * batch) fill only a sliver of the systolic array. The model is
 * therefore memory-bandwidth-bound: it occupies matrix engines without
 * using them, exactly the harvesting opportunity Fig. 27 exploits.
 */

#include "models/builders_internal.hh"

#include "common/strings.hh"
#include "models/builder.hh"

namespace neu10
{
namespace models
{

namespace
{

constexpr Bytes kLlamaWeights = 26624_MiB;   // 13B params, fp16
constexpr Bytes kKvPerSample = 420_MiB;      // 40 layers x 512 x 5120, K+V

} // anonymous namespace

DnnGraph
buildLlama(unsigned batch)
{
    const double b = batch;
    const double h = 5120, ff = 13824, s = 512;
    const unsigned layers = 40;
    const unsigned chunks = 8;           // layers folded per prefill op
    const unsigned dec_steps = 48;
    const double layer_params = 4 * h * h + 3 * h * ff; // QKVO + FFN

    GraphBuilder g("LLaMA", batch);

    // ---- Prefill: 512 tokens in parallel, per layer-chunk.
    g.embedding("embed", b * s, h, 2.0, {});
    for (unsigned c = 0; c < chunks; ++c) {
        const std::string p = csprintf("prefill%u.", c);
        const double lp = layers / chunks; // layers in this chunk
        g.matmul(p + "proj", b * s, h, lp * layer_params / h,
                 /*wf=*/1.0, /*spill=*/0.1);
        g.matmul(p + "attn", b * s, s, lp * h, /*wf=*/0.1);
        g.vector(p + "softmax_norm", b * lp * 40 * s * s, 2.0);
    }

    // ---- Decode: dec_steps tokens, each re-streaming all weights and
    // the KV cache. Two weight-halves per step keep op granularity
    // reasonable; M = batch gives ~6% systolic fill.
    const double half_params = layers * layer_params / 2.0;
    for (unsigned t = 0; t < dec_steps; ++t) {
        const std::string p = csprintf("dec%u.", t);
        g.matmul(p + "gemv_a", b, h, half_params / h,
                 /*wf=*/1.0, /*spill=*/0.0);
        g.matmul(p + "gemv_b", b, h, half_params / h,
                 /*wf=*/1.0, /*spill=*/0.0);
        // Attention against the KV cache: VE work plus the cache read.
        g.vector(p + "kv_attn", b * layers * (s + t) * 128, 2.0,
                 static_cast<Bytes>(b) * kKvPerSample);
        g.vector(p + "norm_sample", b * h * layers, 4.0);
    }

    const Bytes footprint =
        kLlamaWeights + static_cast<Bytes>(batch) * kKvPerSample +
        static_cast<Bytes>(batch) * 8_MiB;
    return g.take(footprint);
}

} // namespace models
} // namespace neu10
