/**
 * @file
 * LLaMA2-13B inference (§V-F): batch 8, input sequence 512, 16 decoded
 * tokens.
 *
 * Prefill processes the whole prompt in parallel (large, ME-friendly
 * matmuls); decode is one token at a time — every step streams the full
 * 26GB of weights plus the KV cache through HBM while the GEMVs (M =
 * batch) fill only a sliver of the systolic array. The model is
 * therefore memory-bandwidth-bound: it occupies matrix engines without
 * using them, exactly the harvesting opportunity Fig. 27 exploits.
 *
 * The op emission itself lives in llm/phase_model.cc so the zoo model
 * and the token-level serving loop (llm/llm_serving.cc) share one
 * arithmetic source of truth; a parity test pins the emitted graph
 * digit-for-digit against the pre-refactor values.
 */

#include "models/builders_internal.hh"

#include "llm/phase_model.hh"
#include "models/builder.hh"

namespace neu10
{
namespace models
{

DnnGraph
buildLlama(unsigned batch)
{
    const llm::LlmModelSpec &spec = llm::llamaSpec();
    GraphBuilder g("LLaMA", batch);
    llm::emitPrefillOps(g, spec, batch);
    llm::emitDecodeOps(g, spec, batch);
    return g.take(spec.footprint(batch));
}

} // namespace models
} // namespace neu10
