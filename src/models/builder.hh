/**
 * @file
 * GraphBuilder: the model zoo's construction helper.
 *
 * Converts layer dimensions into TensorOp work quantities using the
 * conventions documented in DESIGN.md:
 *
 *  - MACs come straight from layer shapes (M x N x K, conv output
 *    pixels x Cout x Cin*k*k).
 *  - Systolic efficiency is derived from array fill: the 128x128
 *    weight-stationary tile is underfilled when K or N are not
 *    multiples of 128, and short M (small batch / GEMV) cannot hide
 *    the pipeline, which is what makes LLM decode and small-batch
 *    MLPs memory/occupancy-bound rather than compute-bound.
 *  - HBM traffic = streamed weights (with a tiling re-read factor)
 *    plus a fraction of activations assumed to spill past SRAM.
 *
 * Ops chain to the previous op by default, matching the serialized
 * operator streams the paper replays from TPU traces.
 */

#ifndef NEU10_MODELS_BUILDER_HH
#define NEU10_MODELS_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "compiler/graph.hh"

namespace neu10
{

/** Incremental DnnGraph construction with cost derivation. */
class GraphBuilder
{
  public:
    GraphBuilder(std::string model, unsigned batch);

    /** Sentinel: chain to the previous op (the default dependency). */
    static constexpr std::uint32_t kPrev = 0xffffffffu;

    /**
     * Dense matmul C[M,N] = A[M,K] x B[K,N].
     * @param weight_factor  tiling re-read multiplier on weight bytes.
     * @param act_spill      fraction of activation bytes hitting HBM.
     * @return op index.
     */
    std::uint32_t matmul(const std::string &name, double m, double n,
                         double k, double weight_factor = 1.0,
                         double act_spill = 0.5,
                         std::vector<std::uint32_t> deps = {kPrev});

    /**
     * Convolution lowered to matmul: M = output pixels (incl. batch),
     * N = Cout, K = Cin * kernel area.
     */
    std::uint32_t conv(const std::string &name, double out_pixels,
                       double cout, double cin_kk,
                       double weight_factor = 1.0,
                       double act_spill = 0.25,
                       std::vector<std::uint32_t> deps = {kPrev});

    /** Generic vector-engine op: elems x ops_per_elem lane operations. */
    std::uint32_t vector(const std::string &name, double elems,
                         double ops_per_elem, Bytes bytes = 0,
                         std::vector<std::uint32_t> deps = {kPrev});

    /** Elementwise op fused into its producer (the previous op). */
    std::uint32_t fused(const std::string &name, double elems,
                        double ops_per_elem);

    /** Embedding gather: HBM traffic plus VE pooling work, no ME. */
    std::uint32_t embedding(const std::string &name, double lookups,
                            double dim, double ops_per_elem = 2.0,
                            std::vector<std::uint32_t> deps = {kPrev});

    /** Override the parallel-tile count of the last op (reduction-
     * partition cases: skinny matmuls that cannot fill the core). */
    void setParallelTiles(unsigned tiles);

    /** Override the ME efficiency of the last op. */
    void setEfficiency(double eff);

    /** Index of the most recently added op. */
    std::uint32_t last() const;

    unsigned batch() const { return batch_; }

    /** Finalize: set the footprint, validate, and return the graph. */
    DnnGraph take(Bytes footprint);

    /**
     * Systolic fill efficiency for an (M, N, K) matmul shape: padding
     * waste on K and N (the stationary tile) times the M-side pipeline
     * occupancy min(1, M/128).
     */
    static double fillEfficiency(double m, double n, double k);

  private:
    std::uint32_t push(TensorOp op, std::vector<std::uint32_t> deps);

    DnnGraph graph_;
    unsigned batch_;
};

} // namespace neu10

#endif // NEU10_MODELS_BUILDER_HH
