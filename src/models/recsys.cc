/**
 * @file
 * Recommendation model builders: DLRM and NCF.
 *
 * DLRM: 26 multi-hot embedding tables (pooling factor 800) dominate
 * both HBM traffic and VE time; the bottom/top MLPs are skinny GEMVs
 * (M = batch) that occupy the ME briefly at low array fill. Matches
 * the paper's characterization: VE- and bandwidth-heavy with short ME
 * bursts (Figs. 2, 4, 5, 7).
 *
 * NCF: GMF-style scoring of a large candidate set per user — embedding
 * gathers plus elementwise fusion and reductions on the VE, almost no
 * ME work (lowest intensity ratio in Fig. 4).
 */

#include "models/builders_internal.hh"

#include "models/builder.hh"

namespace neu10
{
namespace models
{

namespace
{

constexpr Bytes kDlrmBase = 22371000000;  // Table I: 22.38GB @ batch 8
constexpr Bytes kDlrmActPerSample = 1_MiB;
constexpr Bytes kNcfBase = 11091000000;   // Table I: 11.10GB @ batch 8
constexpr Bytes kNcfActPerSample = 1_MiB;

} // anonymous namespace

DnnGraph
buildDlrm(unsigned batch)
{
    const double b = batch;
    const double tables = 26, pooling = 500, dim = 128;

    GraphBuilder g("DLRM", batch);

    // Bottom MLP on 13 dense features: 13 -> 512 -> 256 -> 128.
    g.matmul("bot_mlp0", b, 512, 13, 1.0, 0.5, {});
    g.fused("bot_relu0", b * 512, 1.0);
    g.matmul("bot_mlp1", b, 256, 512);
    g.fused("bot_relu1", b * 256, 1.0);
    g.matmul("bot_mlp2", b, 128, 256);

    // Sparse features: gather + pool 26 multi-hot bags.
    g.embedding("emb_gather", b * tables * pooling, dim, 4.0, {});

    // Pairwise feature interactions (27 vectors -> 351 dots).
    const auto interact =
        g.vector("interact", b * 351 * dim, 3.0, 0,
                 {4, 5}); // depends on bottom MLP and embeddings

    // Top MLP: 479 -> 1024 -> 1024 -> 512 -> 256 -> 1.
    g.matmul("top_mlp0", b, 1024, 479, 1.0, 0.5, {interact});
    g.fused("top_relu0", b * 1024, 1.0);
    g.matmul("top_mlp1", b, 1024, 1024);
    g.fused("top_relu1", b * 1024, 1.0);
    g.matmul("top_mlp2", b, 512, 1024);
    g.fused("top_relu2", b * 512, 1.0);
    g.matmul("top_mlp3", b, 256, 512);
    g.matmul("top_mlp4", b, 1, 256);
    g.vector("sigmoid", b, 5.0);

    return g.take(kDlrmBase + batch * kDlrmActPerSample);
}

DnnGraph
buildNcf(unsigned batch)
{
    const double b = batch;
    const double candidates = 32768, dim = 64;

    GraphBuilder g("NCF", batch);
    g.embedding("emb_user", b, dim, 2.0, {});
    g.embedding("emb_items", b * candidates, dim, 2.0, {});

    // GMF: elementwise product + per-candidate reduction.
    g.vector("gmf_mul", b * candidates * dim, 3.0);
    g.vector("gmf_reduce", b * candidates * dim, 2.0);

    // Tiny prediction head over pooled features.
    g.matmul("predict", b, 64, dim, 1.0, 0.5);
    g.vector("topk", b * candidates, 3.0, 0, {3});

    return g.take(kNcfBase + batch * kNcfActPerSample);
}

} // namespace models
} // namespace neu10
