/**
 * @file
 * The DNN model zoo (Table I of the paper plus LLaMA2-13B from §V-F).
 *
 * Builders synthesize per-operator traces — MACs, VE element work, HBM
 * traffic — from public layer dimensions, substituting for the paper's
 * proprietary TPU-captured traces (see DESIGN.md substitution table).
 * Each builder is parameterized by batch size; footprints at batch 8
 * match Table I.
 */

#ifndef NEU10_MODELS_ZOO_HH
#define NEU10_MODELS_ZOO_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "compiler/graph.hh"

namespace neu10
{

/** Models evaluated in the paper. */
enum class ModelId
{
    Bert = 0,     ///< BERT-Large, NLP
    Transformer,  ///< Transformer (translation), NLP
    Dlrm,         ///< DLRM recommendation
    Ncf,          ///< Neural collaborative filtering
    MaskRcnn,     ///< Mask-RCNN detection + segmentation
    RetinaNet,    ///< RetinaNet detection
    ShapeMask,    ///< ShapeMask segmentation
    Mnist,        ///< MNIST convnet
    ResNet,       ///< ResNet-50 classification
    ResNetRs,     ///< ResNet-RS classification
    EfficientNet, ///< EfficientNet classification
    Llama,        ///< LLaMA2-13B decode-heavy LLM inference (§V-F)
};

/** All Table I models (excludes LLaMA). */
const std::vector<ModelId> &tableOneModels();

/** Every model including LLaMA. */
const std::vector<ModelId> &allModels();

/** Full display name, e.g. "Mask-RCNN". */
std::string modelName(ModelId id);

/** Table I abbreviation, e.g. "MRCNN". */
std::string modelAbbrev(ModelId id);

/** Largest batch size the model supports within Table II HBM. */
unsigned maxBatch(ModelId id);

/**
 * Build the operator graph for @p id at @p batch.
 * @throws FatalError if batch exceeds maxBatch(id).
 */
DnnGraph buildModel(ModelId id, unsigned batch);

/** Parse an abbreviation back to a ModelId (case-insensitive). */
ModelId modelFromAbbrev(const std::string &abbrev);

} // namespace neu10

#endif // NEU10_MODELS_ZOO_HH
