/**
 * @file
 * NLP model builders: BERT-Large and the translation Transformer.
 *
 * BERT-Large: L=24, H=1024, FF=4096, 16 heads, sequence 384 (MLPerf).
 * Encoder-only, large dense matmuls: ME-intensive, efficiency grows
 * with batch.
 *
 * Transformer: 6 encoder layers (S=128) plus an autoregressive decoder
 * folded into per-step chunks. Decode GEMVs (M = batch) underfill the
 * systolic array and the per-step vocabulary projection re-reads
 * weights, making the model more bandwidth- and VE-involved than BERT,
 * with reduction-partitioned attention ops at small batch (the NeuISA
 * overhead case of Fig. 16).
 */

#include "models/builders_internal.hh"

#include "common/strings.hh"
#include "models/builder.hh"

namespace neu10
{
namespace models
{

namespace
{

constexpr Bytes kBertBase = 1228000000;     // Table I: 1.27GB @ batch 8
constexpr Bytes kBertActPerSample = 5_MiB;
constexpr Bytes kTfmrBase = 1498000000;     // Table I: 1.54GB @ batch 8
constexpr Bytes kTfmrActPerSample = 5_MiB;

} // anonymous namespace

DnnGraph
buildBert(unsigned batch)
{
    const double b = batch;
    const double s = 384, h = 1024, ff = 4096, heads = 16;
    const unsigned layers = 24;

    GraphBuilder g("BERT", batch);
    g.embedding("embed", b * s, h, 2.0, {});

    for (unsigned l = 0; l < layers; ++l) {
        const std::string p = csprintf("l%u.", l);
        g.matmul(p + "qkv", b * s, 3 * h, h, /*wf=*/2.0);
        g.fused(p + "bias_qkv", b * s * 3 * h, 1.0);
        g.matmul(p + "scores", b * s, s, h, /*wf=*/0.2);
        g.vector(p + "softmax", b * heads * s * s, 5.0);
        g.matmul(p + "attnv", b * s, h, s, /*wf=*/0.2);
        g.matmul(p + "proj", b * s, h, h, /*wf=*/2.0);
        g.fused(p + "bias_proj", b * s * h, 1.0);
        g.vector(p + "ln1", b * s * h, 8.0);
        g.matmul(p + "ffn1", b * s, ff, h, /*wf=*/2.0);
        g.fused(p + "gelu", b * s * ff, 6.0);
        g.matmul(p + "ffn2", b * s, h, ff, /*wf=*/2.0);
        g.fused(p + "bias_ffn2", b * s * h, 1.0);
        g.vector(p + "ln2", b * s * h, 8.0);
    }
    g.matmul("pooler", b, h, h);
    g.matmul("classifier", b, 2, h);
    g.vector("out_softmax", b * 2, 5.0);

    return g.take(kBertBase + batch * kBertActPerSample);
}

DnnGraph
buildTransformer(unsigned batch)
{
    const double b = batch;
    const double s = 128, h = 1024, ff = 4096, heads = 16;
    const double vocab = 33000;
    const unsigned enc_layers = 6;
    // Decode folded: 16 autoregressive steps, 6 layers collapsed into
    // per-step self-attention + FFN + vocabulary projection chunks.
    const unsigned dec_steps = 16;
    const double avg_past = 64; // mean decoded prefix length

    GraphBuilder g("Transformer", batch);
    g.embedding("embed", b * s, h, 2.0, {});

    for (unsigned l = 0; l < enc_layers; ++l) {
        const std::string p = csprintf("enc%u.", l);
        g.matmul(p + "qkv", b * s, 3 * h, h, /*wf=*/2.0);
        g.matmul(p + "scores", b * s, s, h, /*wf=*/0.2);
        g.vector(p + "softmax", b * heads * s * s, 5.0);
        g.matmul(p + "attnv", b * s, h, s, /*wf=*/0.2);
        g.matmul(p + "ffn1", b * s, ff, h, /*wf=*/2.0);
        g.fused(p + "relu", b * s * ff, 2.0);
        g.matmul(p + "ffn2", b * s, h, ff, /*wf=*/2.0);
        g.vector(p + "ln", b * s * h, 8.0);
    }

    for (unsigned t = 0; t < dec_steps; ++t) {
        const std::string p = csprintf("dec%u.", t);
        // Six decoder layers' QKVO + FFN for one step, M = batch.
        g.matmul(p + "gemv", b, h, 6 * (4 * h + 3 * ff), /*wf=*/1.0);
        // Per-head attention against past keys: skinny output (64-wide
        // heads) cannot fill the core without reduction partitioning.
        g.matmul(p + "attn", b * heads, 64, avg_past * 6, /*wf=*/0.2);
        g.setParallelTiles(2);
        g.vector(p + "softmax", b * heads * avg_past * 6, 5.0);
        g.matmul(p + "logits", b, vocab, h, /*wf=*/1.0);
        g.vector(p + "vocab_softmax", b * vocab, 5.0);
        g.vector(p + "beam", b * vocab, 2.0);
    }

    return g.take(kTfmrBase + batch * kTfmrActPerSample);
}

} // namespace models
} // namespace neu10
