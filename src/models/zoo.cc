#include "models/zoo.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "models/builders_internal.hh"

namespace neu10
{

namespace
{

struct ModelInfo
{
    ModelId id;
    const char *name;
    const char *abbrev;
    unsigned maxBatch;
    DnnGraph (*build)(unsigned);
};

const ModelInfo kModels[] = {
    {ModelId::Bert, "BERT", "BERT", 1024, models::buildBert},
    {ModelId::Transformer, "Transformer", "TFMR", 1024,
     models::buildTransformer},
    {ModelId::Dlrm, "DLRM", "DLRM", 512, models::buildDlrm},
    {ModelId::Ncf, "NCF", "NCF", 1024, models::buildNcf},
    {ModelId::MaskRcnn, "Mask-RCNN", "MRCNN", 64, models::buildMaskRcnn},
    {ModelId::RetinaNet, "RetinaNet", "RtNt", 256,
     models::buildRetinaNet},
    {ModelId::ShapeMask, "ShapeMask", "SMask", 64, models::buildShapeMask},
    {ModelId::Mnist, "MNIST", "MNIST", 1024, models::buildMnist},
    {ModelId::ResNet, "ResNet", "RsNt", 1024, models::buildResNet},
    {ModelId::ResNetRs, "ResNet-RS", "RNRS", 512, models::buildResNetRs},
    {ModelId::EfficientNet, "EfficientNet", "ENet", 1024,
     models::buildEfficientNet},
    {ModelId::Llama, "LLaMA", "LLaMA", 64, models::buildLlama},
};

const ModelInfo &
info(ModelId id)
{
    for (const auto &m : kModels)
        if (m.id == id)
            return m;
    panic("unknown ModelId %d", static_cast<int>(id));
}

} // anonymous namespace

const std::vector<ModelId> &
tableOneModels()
{
    static const std::vector<ModelId> models = {
        ModelId::Bert, ModelId::Transformer, ModelId::Dlrm, ModelId::Ncf,
        ModelId::MaskRcnn, ModelId::RetinaNet, ModelId::ShapeMask,
        ModelId::Mnist, ModelId::ResNet, ModelId::ResNetRs,
        ModelId::EfficientNet,
    };
    return models;
}

const std::vector<ModelId> &
allModels()
{
    static const std::vector<ModelId> models = [] {
        std::vector<ModelId> all = tableOneModels();
        all.push_back(ModelId::Llama);
        return all;
    }();
    return models;
}

std::string
modelName(ModelId id)
{
    return info(id).name;
}

std::string
modelAbbrev(ModelId id)
{
    return info(id).abbrev;
}

unsigned
maxBatch(ModelId id)
{
    return info(id).maxBatch;
}

DnnGraph
buildModel(ModelId id, unsigned batch)
{
    const ModelInfo &m = info(id);
    if (batch == 0)
        fatal("batch size must be positive");
    if (batch > m.maxBatch)
        fatal("%s does not fit in HBM at batch %u (max %u)", m.name,
              batch, m.maxBatch);
    return m.build(batch);
}

ModelId
modelFromAbbrev(const std::string &abbrev)
{
    auto lower = [](std::string s) {
        std::transform(s.begin(), s.end(), s.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        return s;
    };
    const std::string want = lower(abbrev);
    for (const auto &m : kModels)
        if (lower(m.abbrev) == want || lower(m.name) == want)
            return m.id;
    fatal("unknown model abbreviation '%s'", abbrev.c_str());
}

} // namespace neu10
