/**
 * @file
 * Detection / segmentation model builders: Mask-RCNN, RetinaNet and
 * ShapeMask — ResNet-FPN backbones at 800x1344 inputs plus detection
 * heads.
 *
 * All three are ME-leaning overall, but Mask-RCNN carries substantial
 * vector work (RoIAlign, NMS, full-resolution mask pasting), placing
 * it mid-pack in Fig. 4 while RetinaNet stays strongly ME-intensive.
 */

#include "models/builders_internal.hh"

#include "common/strings.hh"
#include "models/builder.hh"

namespace neu10
{
namespace models
{

namespace
{

constexpr Bytes kMrcnnBase = 2958000000;  // Table I: 3.21GB @ batch 8
constexpr Bytes kMrcnnActPerSample = 30_MiB;
constexpr Bytes kRtntBase = 650800000;    // Table I: 860.51MB @ batch 8
constexpr Bytes kRtntActPerSample = 25_MiB;
constexpr Bytes kSmaskBase = 5788000000;  // Table I: 6.04GB @ batch 8
constexpr Bytes kSmaskActPerSample = 30_MiB;

/** 800x1344 ResNet-FPN backbone emitted as coarse per-stage convs. */
void
backbone(GraphBuilder &g, unsigned batch, double scale)
{
    const double b = batch;
    struct Stage
    {
        const char *name;
        double pixels;  // per sample
        double channels;
        double macs;    // per sample
        double eff;
    };
    const Stage stages[] = {
        {"stem", 400.0 * 672, 64, 1.26e9 * 1.0, 0.40},
        {"c2", 200.0 * 336, 256, 4.7e9, 0.50},
        {"c3", 100.0 * 168, 512, 8.8e9, 0.58},
        {"c4", 50.0 * 84, 1024, 12.4e9, 0.65},
        {"c5", 25.0 * 42, 2048, 7.6e9, 0.60},
    };
    g.vector("resize_norm", b * 800 * 1344 * 3, 6.0, 0, {});
    for (const Stage &s : stages) {
        g.conv(s.name, b * s.pixels, s.channels,
               s.macs * scale / (s.pixels * s.channels));
        g.setEfficiency(s.eff);
        g.fused(csprintf("%s.bn_relu", s.name),
                b * s.pixels * s.channels, 4.0);
    }
    // FPN lateral + output convs and upsampling.
    g.conv("fpn", b * 266.0 * 448, 256, 3.0e9 * scale /
                                            (266.0 * 448 * 256));
    g.setEfficiency(0.55);
    g.vector("fpn_upsample", b * 266 * 448 * 256, 2.0);
}

} // anonymous namespace

DnnGraph
buildMaskRcnn(unsigned batch)
{
    const double b = batch;
    GraphBuilder g("Mask-RCNN", batch);
    backbone(g, batch, 1.0);

    // Region proposal network + proposal selection.
    g.conv("rpn", b * 266.0 * 448, 256, 5.0e9 / (266.0 * 448 * 256));
    g.setEfficiency(0.55);
    g.vector("rpn_nms", b * 267000, 60.0);

    // Per-RoI heads: 1000 proposals through the box head, 100
    // detections through the mask head.
    g.vector("roi_align", b * 1000 * 49 * 256, 10.0);
    g.matmul("box_head_fc1", b * 1000, 1024, 12544, /*wf=*/1.0);
    g.matmul("box_head_fc2", b * 1000, 1024, 1024);
    g.vector("box_decode_nms", b * 1000 * 200, 4.0);
    g.conv("mask_head", b * 100 * 196, 256, 2304 * 2);
    g.setEfficiency(0.55);
    g.vector("mask_paste", b * 1.5e9, 1.0);

    return g.take(kMrcnnBase + batch * kMrcnnActPerSample);
}

DnnGraph
buildRetinaNet(unsigned batch)
{
    const double b = batch;
    GraphBuilder g("RetinaNet", batch);
    backbone(g, batch, 1.0);

    // Class + box towers over five pyramid levels (~22k locations).
    const double locations = 22176;
    g.conv("cls_tower", b * locations, 256, 4 * 2304);
    g.setEfficiency(0.60);
    g.conv("box_tower", b * locations, 256, 4 * 2304);
    g.setEfficiency(0.60);
    g.conv("cls_head", b * locations, 720, 2304);
    g.setEfficiency(0.60);
    g.conv("box_head", b * locations, 36, 2304);
    g.setEfficiency(0.55);
    g.vector("focal_sigmoid", b * locations * 720, 2.0);
    g.vector("decode_topk", b * locations * 9, 30.0);
    g.vector("nms", b * 80e6, 1.0);

    return g.take(kRtntBase + batch * kRtntActPerSample);
}

DnnGraph
buildShapeMask(unsigned batch)
{
    const double b = batch;
    GraphBuilder g("ShapeMask", batch);
    backbone(g, batch, 1.3);

    g.conv("cls_tower", b * 22176, 256, 4 * 2304);
    g.setEfficiency(0.60);
    g.conv("box_tower", b * 22176, 256, 4 * 2304);
    g.setEfficiency(0.60);
    // Shape prior estimation + coarse/fine mask refinement.
    g.conv("shape_prior", b * 100 * 1024, 256, 2304);
    g.setEfficiency(0.55);
    g.conv("fine_mask", b * 100 * 3136, 128, 1152);
    g.setEfficiency(0.55);
    g.vector("prior_fit", b * 100 * 32 * 32, 40.0);
    g.vector("mask_refine", b * 500e6, 1.0);

    return g.take(kSmaskBase + batch * kSmaskActPerSample);
}

} // namespace models
} // namespace neu10
