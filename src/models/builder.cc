#include "models/builder.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace neu10
{

namespace
{

/** Fraction of a 128-padded dimension actually used. */
double
padFill(double x)
{
    if (x <= 0.0)
        return 1.0;
    const double padded = std::ceil(x / 128.0) * 128.0;
    return x / padded;
}

/** Independent 128x128 output tiles of an (M, N) output. */
unsigned
outputTiles(double m, double n)
{
    const double tiles = std::ceil(std::max(1.0, m) / 128.0) *
                         std::ceil(std::max(1.0, n) / 128.0);
    return static_cast<unsigned>(std::min(tiles, 4096.0));
}

} // anonymous namespace

GraphBuilder::GraphBuilder(std::string model, unsigned batch)
    : batch_(batch)
{
    NEU10_ASSERT(batch > 0, "batch size must be positive");
    graph_.model = std::move(model);
    graph_.batch = batch;
}

double
GraphBuilder::fillEfficiency(double m, double n, double k)
{
    const double m_fill = std::min(1.0, m / 128.0);
    const double eff = padFill(k) * padFill(n) * m_fill;
    return std::clamp(eff, 0.01, 1.0);
}

std::uint32_t
GraphBuilder::push(TensorOp op, std::vector<std::uint32_t> deps)
{
    for (auto d : deps) {
        if (d == kPrev) {
            if (!graph_.ops.empty())
                op.deps.push_back(
                    static_cast<std::uint32_t>(graph_.ops.size() - 1));
        } else {
            op.deps.push_back(d);
        }
    }
    graph_.ops.push_back(std::move(op));
    return static_cast<std::uint32_t>(graph_.ops.size() - 1);
}

std::uint32_t
GraphBuilder::matmul(const std::string &name, double m, double n,
                     double k, double weight_factor, double act_spill,
                     std::vector<std::uint32_t> deps)
{
    NEU10_ASSERT(m > 0 && n > 0 && k > 0, "matmul dims must be positive");
    TensorOp op;
    op.name = name;
    op.kind = m < 32.0 ? OpKind::Gemv : OpKind::MatMul;
    op.macs = m * n * k;
    op.veElems = 0.0;
    op.meEfficiency = fillEfficiency(m, n, k);
    op.parallelTiles = outputTiles(m, n);
    const double weights = n * k * 2.0 * weight_factor;
    const double acts = (m * k + m * n) * 2.0 * act_spill;
    op.bytes = static_cast<Bytes>(weights + acts);
    return push(std::move(op), std::move(deps));
}

std::uint32_t
GraphBuilder::conv(const std::string &name, double out_pixels,
                   double cout, double cin_kk, double weight_factor,
                   double act_spill, std::vector<std::uint32_t> deps)
{
    NEU10_ASSERT(out_pixels > 0 && cout > 0 && cin_kk > 0,
                 "conv dims must be positive");
    TensorOp op;
    op.name = name;
    op.kind = OpKind::Conv;
    op.macs = out_pixels * cout * cin_kk;
    op.meEfficiency = fillEfficiency(out_pixels, cout, cin_kk);
    op.parallelTiles = outputTiles(out_pixels, cout);
    const double weights = cin_kk * cout * 2.0 * weight_factor;
    const double acts = out_pixels * cout * 2.0 * act_spill;
    op.bytes = static_cast<Bytes>(weights + acts);
    return push(std::move(op), std::move(deps));
}

std::uint32_t
GraphBuilder::vector(const std::string &name, double elems,
                     double ops_per_elem, Bytes bytes,
                     std::vector<std::uint32_t> deps)
{
    NEU10_ASSERT(elems >= 0 && ops_per_elem >= 0,
                 "vector work must be non-negative");
    TensorOp op;
    op.name = name;
    op.kind = OpKind::Vector;
    op.veElems = elems * ops_per_elem;
    op.bytes = bytes;
    op.parallelTiles = 1;
    return push(std::move(op), std::move(deps));
}

std::uint32_t
GraphBuilder::fused(const std::string &name, double elems,
                    double ops_per_elem)
{
    NEU10_ASSERT(!graph_.ops.empty(), "fused op needs a producer");
    TensorOp op;
    op.name = name;
    op.kind = OpKind::Vector;
    op.veElems = elems * ops_per_elem;
    op.fuseWithPrev = true;
    return push(std::move(op), {kPrev});
}

std::uint32_t
GraphBuilder::embedding(const std::string &name, double lookups,
                        double dim, double ops_per_elem,
                        std::vector<std::uint32_t> deps)
{
    NEU10_ASSERT(lookups > 0 && dim > 0, "embedding dims positive");
    TensorOp op;
    op.name = name;
    op.kind = OpKind::Embedding;
    op.veElems = lookups * dim * ops_per_elem;
    op.bytes = static_cast<Bytes>(lookups * dim * 4.0);
    op.parallelTiles = 1;
    return push(std::move(op), std::move(deps));
}

void
GraphBuilder::setParallelTiles(unsigned tiles)
{
    NEU10_ASSERT(!graph_.ops.empty() && tiles > 0,
                 "no op to override / zero tiles");
    graph_.ops.back().parallelTiles = tiles;
}

void
GraphBuilder::setEfficiency(double eff)
{
    NEU10_ASSERT(!graph_.ops.empty() && eff > 0.0 && eff <= 1.0,
                 "no op to override / efficiency out of range");
    graph_.ops.back().meEfficiency = eff;
}

std::uint32_t
GraphBuilder::last() const
{
    NEU10_ASSERT(!graph_.ops.empty(), "empty graph");
    return static_cast<std::uint32_t>(graph_.ops.size() - 1);
}

DnnGraph
GraphBuilder::take(Bytes footprint)
{
    graph_.hbmFootprint = footprint;
    graph_.validate();
    return std::move(graph_);
}

} // namespace neu10
