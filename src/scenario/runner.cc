#include "scenario/runner.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "vnpu/allocator.hh"

namespace neu10
{

namespace
{

/** Expansion order: global tenant index per (group, instance). The
 * default round-robin interleave reproduces the benches' `i % 4`
 * pattern; grouped emits each group's block contiguously. */
std::vector<unsigned>
expansionOrder(const Scenario &s)
{
    std::vector<unsigned> order;
    order.reserve(s.totalTenants());
    if (s.roundRobin) {
        std::vector<unsigned> remaining;
        remaining.reserve(s.groups.size());
        for (const ScenarioTenantGroup &g : s.groups)
            remaining.push_back(g.count);
        bool emitted = true;
        while (emitted) {
            emitted = false;
            for (unsigned k = 0; k < s.groups.size(); ++k) {
                if (remaining[k] == 0)
                    continue;
                --remaining[k];
                order.push_back(k);
                emitted = true;
            }
        }
    } else {
        for (unsigned k = 0; k < s.groups.size(); ++k)
            for (unsigned c = 0; c < s.groups[k].count; ++c)
                order.push_back(k);
    }
    return order;
}

} // namespace

FleetConfig
toFleetConfig(const Scenario &s)
{
    NEU10_ASSERT(s.mode == ScenarioMode::OpenLoop,
                 "toFleetConfig needs an open-loop scenario, got %s",
                 scenarioModeName(s.mode).c_str());

    FleetConfig cfg;
    cfg.numBoards = s.boards;
    cfg.board = s.board;
    cfg.corePolicy = s.corePolicy;
    cfg.placement = s.placement;
    cfg.engine = s.engine;
    cfg.threads = s.threads;
    cfg.horizon = s.effectiveHorizon();
    cfg.maxCycles = s.maxCycles > 0.0
                        ? s.maxCycles
                        : s.maxCyclesFactor * cfg.horizon;
    cfg.elastic = s.elastic;
    if (s.hasLlm) {
        cfg.servingMode = ServingMode::LlmContinuous;
        cfg.llm = s.llm;
    }
    cfg.resilience.failover = s.failover;
    cfg.resilience.recoveryStallCycles = s.recoveryStallCycles;
    cfg.trace = s.trace;

    for (const ScenarioFault &sf : s.faults) {
        FaultEvent f;
        f.kind = sf.kind;
        f.core = sf.core;
        f.board = sf.board;
        f.at = sf.at >= 0.0 ? sf.at : sf.atFrac * cfg.horizon;
        f.durationCycles = sf.durationCycles;
        cfg.resilience.faults.push_back(f);
    }

    // Size each group's vNPU once (the benches' `service[k]` idiom);
    // rates and SLOs derive from the same estimate with the same
    // expressions, so parity with the hand-wired configs is exact.
    std::vector<Cycles> service(s.groups.size(), 0.0);
    for (unsigned k = 0; k < s.groups.size(); ++k) {
        const ScenarioTenantGroup &g = s.groups[k];
        service[k] = sizeVnpuForModel(g.model, g.batch, g.eus,
                                      cfg.board.core)
                         .serviceEstimate();
    }

    const std::vector<unsigned> order = expansionOrder(s);
    for (unsigned i = 0; i < order.size(); ++i) {
        const unsigned k = order[i];
        const ScenarioTenantGroup &g = s.groups[k];
        ClusterTenantSpec t;
        t.model = g.model;
        t.batch = g.batch;
        t.eus = g.eus;
        t.traffic = g.traffic;
        t.traffic.ratePerSec =
            g.rho > 0.0 ? g.rho * cfg.board.core.freqHz / service[k]
                        : g.ratePerSec;
        t.traffic.seed = (g.hasSeed ? g.seed : s.seed) + i;
        t.sloCycles = g.sloFactor > 0.0 ? g.sloFactor * service[k]
                                        : g.sloCycles;
        t.maxQueueDepth = g.maxQueueDepth;
        t.priority = g.priority;
        cfg.tenants.push_back(t);
    }
    return cfg;
}

ServingConfig
toServingConfig(const Scenario &s)
{
    NEU10_ASSERT(s.mode == ScenarioMode::ClosedLoop,
                 "toServingConfig needs a closed-loop scenario, got "
                 "%s", scenarioModeName(s.mode).c_str());

    ServingConfig cfg;
    cfg.core = s.board.core;
    cfg.policy = s.corePolicy;
    cfg.mode = ServingMode::ClosedLoop;
    cfg.engine = s.engine;
    cfg.minRequests = s.effectiveMinRequests();
    if (s.maxCycles > 0.0)
        cfg.maxCycles = s.maxCycles;
    cfg.trace = s.trace;

    const std::vector<unsigned> order = expansionOrder(s);
    for (const unsigned k : order) {
        const ScenarioTenantGroup &g = s.groups[k];
        cfg.tenants.push_back(TenantSpec{g.model, g.batch, g.nMes,
                                         g.nVes, g.priority,
                                         g.outstanding});
    }
    return cfg;
}

ScenarioOutcome
runScenario(const Scenario &s)
{
    ScenarioOutcome out;
    out.mode = s.mode;
    out.tenants = s.totalTenants();
    if (s.mode == ScenarioMode::OpenLoop) {
        const FleetConfig cfg = toFleetConfig(s);
        out.horizon = cfg.horizon;
        out.fleet = runFleet(cfg);
    } else {
        out.serving = runServing(toServingConfig(s));
    }
    return out;
}

namespace
{

/** Shortest round-trip decimal for a double — identical bytes on
 * every host, unlike printf's locale- and precision-bound %g. */
std::string
jsonNumber(double v)
{
    // Goldens must never contain non-JSON tokens; the engines only
    // report finite statistics, so an inf/nan here is a Neu10 bug.
    NEU10_ASSERT(std::isfinite(v),
                 "non-finite value in scenario JSON");
    char buf[32];
    const std::to_chars_result r =
        std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, r.ptr);
}

std::string
jsonNumber(std::uint64_t v)
{
    char buf[24];
    const std::to_chars_result r =
        std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, r.ptr);
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** Minimal ordered JSON writer: keys appear exactly as emitted. */
class Json
{
  public:
    void
    open(const char *key = nullptr)
    {
        pad(key);
        out_ += "{\n";
        ++depth_;
        first_ = true;
    }

    void
    close()
    {
        --depth_;
        out_ += '\n';
        indent();
        out_ += '}';
        first_ = false;
    }

    void
    openList(const char *key)
    {
        pad(key);
        out_ += "[\n";
        ++depth_;
        first_ = true;
    }

    void
    closeList()
    {
        --depth_;
        out_ += '\n';
        indent();
        out_ += ']';
        first_ = false;
    }

    void
    field(const char *key, const std::string &rendered)
    {
        pad(key);
        out_ += rendered;
        first_ = false;
    }

    void str(const char *key, const std::string &v)
    { field(key, jsonString(v)); }

    void num(const char *key, double v)
    { field(key, jsonNumber(v)); }

    void num(const char *key, std::uint64_t v)
    { field(key, jsonNumber(v)); }

    void num(const char *key, unsigned v)
    { field(key, jsonNumber(static_cast<std::uint64_t>(v))); }

    void boolean(const char *key, bool v)
    { field(key, v ? "true" : "false"); }

    std::string
    take()
    {
        out_ += '\n';
        return std::move(out_);
    }

  private:
    void
    pad(const char *key)
    {
        if (!first_)
            out_ += ",\n";
        indent();
        if (key != nullptr) {
            out_ += jsonString(key);
            out_ += ": ";
        }
        first_ = false;
    }

    void
    indent()
    {
        out_.append(static_cast<size_t>(depth_) * 2, ' ');
    }

    std::string out_;
    int depth_ = 0;
    bool first_ = true;
};

void
emitTenant(Json &j, const TenantResult &t, ScenarioMode mode,
           bool llm = false)
{
    j.open();
    j.str("model", t.model);
    j.num("completed", t.completed);
    if (mode == ScenarioMode::OpenLoop) {
        j.num("submitted", t.submitted);
        j.num("rejected", t.rejected);
        j.num("slo_met", t.sloMet);
        j.num("goodput", t.goodput);
        j.num("lost", t.lostRequests);
        j.num("recovered", t.recoveredRequests);
    }
    j.num("p50_cycles", t.p50());
    j.num("p95_cycles", t.p95());
    j.num("p99_cycles", t.p99());
    j.num("throughput", t.throughput);
    if (mode == ScenarioMode::ClosedLoop) {
        j.num("blocked_frac", t.blockedFrac);
        j.num("reclaims", t.reclaims);
    }
    if (llm) {
        const LlmEndpointStats &l = t.llm;
        j.open("llm");
        j.num("tokens", l.tokensGenerated);
        j.num("tokens_per_sec", l.tokensPerSecond);
        j.num("prefills", l.prefills);
        j.num("decode_iterations", l.decodeIterations);
        j.num("preemptions", l.preemptions);
        j.num("ttft_p50_cycles", l.ttftCycles.percentile(0.50));
        j.num("ttft_p99_cycles", l.ttftCycles.percentile(0.99));
        j.num("kv_pages", l.kvPages);
        j.num("kv_page_high_water", l.kvPageHighWater);
        j.num("kv_alloc_ops", l.kvAllocOps);
        j.num("kv_free_ops", l.kvFreeOps);
        j.num("kv_failed_allocs", l.kvFailedAllocs);
        j.num("kv_occupancy_mean", l.kvOccupancyMean);
        j.num("kv_frag_mean", l.kvFragMean);
        j.close();
    }
    j.close();
}

void
emitFleet(Json &j, const Scenario &s, const ScenarioOutcome &o)
{
    const FleetResult &r = o.fleet;
    j.open("fleet");
    j.str("policy", r.policy);
    j.str("placement", r.placement);
    j.num("boards", s.boards);
    j.num("cores", s.totalCores());
    j.num("horizon_cycles", o.horizon);
    j.num("makespan_cycles", r.makespan);
    j.num("submitted", r.submitted);
    j.num("completed", r.completed);
    j.num("rejected", r.rejected);
    j.num("slo_met", r.sloMet);
    j.num("unplaced_tenants", r.unplacedTenants);
    j.num("goodput", r.goodput);
    j.num("rejection_rate", r.rejectionRate());
    j.num("p50_cycles", r.p50());
    j.num("p95_cycles", r.p95());
    j.num("p99_cycles", r.p99());
    j.num("core_eu_util_mean", r.coreEuUtil.mean());
    j.num("core_eu_util_stddev", r.coreEuUtil.stddev());
    j.num("core_me_util_mean", r.coreMeUtil.mean());
    j.num("migrations", r.migrations);

    if (s.hasLlm) {
        // Fleet-level LLM aggregate: counters sum, TTFT merges, the
        // pool means weight by each endpoint's pool size.
        std::uint64_t tokens = 0, prefills = 0, decode = 0;
        std::uint64_t preempt = 0, pages = 0, high_water = 0;
        std::uint64_t failed = 0;
        double occ = 0.0, frag = 0.0;
        Distribution ttft;
        for (const TenantResult &t : r.tenants) {
            tokens += t.llm.tokensGenerated;
            prefills += t.llm.prefills;
            decode += t.llm.decodeIterations;
            preempt += t.llm.preemptions;
            pages += t.llm.kvPages;
            high_water += t.llm.kvPageHighWater;
            failed += t.llm.kvFailedAllocs;
            occ += t.llm.kvOccupancyMean * t.llm.kvPages;
            frag += t.llm.kvFragMean * t.llm.kvPages;
            ttft.merge(t.llm.ttftCycles);
        }
        const double secs = std::max(1.0, r.makespan) /
                            s.board.core.freqHz;
        j.open("llm");
        j.str("scheduler",
              s.llm.scheduler == LlmScheduler::Continuous
                  ? "continuous"
                  : "static-batch");
        j.num("page_tokens", s.llm.pageTokens);
        j.num("tokens", tokens);
        j.num("tokens_per_sec", static_cast<double>(tokens) / secs);
        j.num("prefills", prefills);
        j.num("decode_iterations", decode);
        j.num("preemptions", preempt);
        j.num("ttft_p50_cycles", ttft.percentile(0.50));
        j.num("ttft_p99_cycles", ttft.percentile(0.99));
        j.num("kv_pages", pages);
        j.num("kv_page_high_water", high_water);
        j.num("kv_failed_allocs", failed);
        j.num("kv_occupancy_mean",
              pages > 0 ? occ / static_cast<double>(pages) : 0.0);
        j.num("kv_frag_mean",
              pages > 0 ? frag / static_cast<double>(pages) : 0.0);
        j.close();
    }

    j.open("faults");
    j.num("injected", r.faultsInjected);
    j.num("transients", r.transientFaults);
    j.num("core_failures", r.coreFailures);
    j.num("failovers", r.failovers);
    j.num("lost_requests", r.lostRequests);
    j.num("recovered_requests", r.recoveredRequests);
    j.num("downtime_cycles", r.downtimeCycles);
    j.num("availability", r.availability);
    j.num("mttr_cycles", r.mttrCycles);
    j.close();

    j.openList("per_tenant");
    for (const TenantResult &t : r.tenants)
        emitTenant(j, t, ScenarioMode::OpenLoop, s.hasLlm);
    j.closeList();

    j.openList("per_core");
    for (const FleetCoreReport &c : r.cores) {
        j.open();
        j.num("core", c.core);
        j.num("board", c.board);
        j.num("tenants", c.tenants);
        j.num("completed", c.completed);
        j.num("me_useful_util", c.meUsefulUtil);
        j.num("ve_util", c.veUtil);
        j.num("eu_util", c.euUtil);
        j.num("makespan_cycles", c.makespan);
        j.num("down_cycles", c.downCycles);
        j.close();
    }
    j.closeList();

    j.openList("epochs");
    for (const FleetEpochReport &e : r.epochReports) {
        j.open();
        j.num("epoch", e.epoch);
        j.num("completed", e.completed);
        j.num("backlog", e.backlog);
        j.num("migrations", e.migrations);
        j.num("pressure_stddev", e.pressureStddev);
        j.num("failures", e.failures);
        j.num("restores", e.restores);
        j.close();
    }
    j.closeList();
    j.close();
}

void
emitServing(Json &j, const ScenarioOutcome &o)
{
    const ServingResult &r = o.serving;
    j.open("serving");
    j.str("policy", r.policy);
    j.num("makespan_cycles", r.makespan);
    j.num("me_useful_util", r.meUsefulUtil);
    j.num("me_held_util", r.meHeldUtil);
    j.num("ve_util", r.veUtil);
    j.num("avg_hbm_bytes_per_cycle", r.avgHbmBytesPerCycle);
    j.num("total_throughput", r.totalThroughput());
    j.openList("per_tenant");
    for (const TenantResult &t : r.tenants)
        emitTenant(j, t, ScenarioMode::ClosedLoop);
    j.closeList();
    j.close();
}

} // namespace

std::string
outcomeJson(const Scenario &s, const ScenarioOutcome &o)
{
    Json j;
    j.open();
    j.str("schema", "neu10-scenario-result-v1");
    j.str("scenario", s.name);
    j.str("mode", scenarioModeName(s.mode));
    j.str("engine", engineName(s.engine));
    j.num("seed", s.seed);
    j.boolean("smoke", s.smoke);
    j.num("tenants", o.tenants);
    if (s.mode == ScenarioMode::OpenLoop)
        emitFleet(j, s, o);
    else
        emitServing(j, o);
    j.close();
    return j.take();
}

void
writeOutcomeJson(const std::string &path, const Scenario &s,
                 const ScenarioOutcome &o)
{
    const std::string body = outcomeJson(s, o);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write scenario result '%s'", path.c_str());
    const size_t n = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size() && std::fclose(f) == 0;
    if (!ok)
        fatal("error writing scenario result '%s'", path.c_str());
}

} // namespace neu10
