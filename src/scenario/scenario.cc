#include "scenario/scenario.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

std::string
scenarioModeName(ScenarioMode mode)
{
    switch (mode) {
      case ScenarioMode::OpenLoop: return "open-loop";
      case ScenarioMode::ClosedLoop: return "closed-loop";
    }
    panic("unknown scenario mode %d", static_cast<int>(mode));
}

unsigned
Scenario::totalTenants() const
{
    unsigned n = 0;
    for (const ScenarioTenantGroup &g : groups)
        n += g.count;
    return n;
}

namespace
{

/** One `key = value` line, with its source line for diagnostics. */
struct Entry
{
    std::string key;
    std::string value;
    unsigned line = 0;
};

/** One `[name]` block in file order. */
struct Section
{
    std::string name;
    unsigned line = 0;
    std::vector<Entry> entries;
};

[[noreturn]] void
failAt(const std::string &file, unsigned line, const std::string &msg)
{
    fatal("%s:%u: %s", file.c_str(), line, msg.c_str());
}

/** Run a vocabulary parser (policyFromName, ...) and re-raise its
 * diagnostic with the file:line prefix every scenario error carries. */
template <typename Fn>
auto
withContext(const std::string &file, unsigned line, Fn &&fn)
    -> decltype(fn())
{
    try {
        return fn();
    } catch (const FatalError &e) {
        failAt(file, line, e.what());
    }
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Strict finite-double parse (rejects junk, signs by caller range
 * checks, inf/nan). The env.cc uint64 parser's hardening, for reals. */
double
parseDouble(const std::string &text, const std::string &what)
{
    if (text.empty())
        fatal("%s is empty; want a number", what.c_str());
    const unsigned char first = static_cast<unsigned char>(text[0]);
    if (std::isspace(first) || text[0] == '+')
        fatal("%s='%s' must be a bare number; no sign prefix or "
              "whitespace", what.c_str(), text.c_str());
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("%s='%s' is not a number", what.c_str(), text.c_str());
    if (!std::isfinite(parsed))
        fatal("%s='%s' must be a finite number", what.c_str(),
              text.c_str());
    return parsed;
}

/** Lex the file into sections; all purely syntactic errors (missing
 * '=', keys outside a section, duplicate sections/keys) fire here. */
std::vector<Section>
lexScenario(const std::string &text, const std::string &file)
{
    std::vector<Section> sections;
    std::set<std::string> seen_sections;
    std::set<std::string> seen_keys; // "section\nkey"

    std::istringstream in(text);
    std::string raw;
    unsigned line = 0;
    while (std::getline(in, raw)) {
        ++line;
        const size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        const std::string stripped = trim(raw);
        if (stripped.empty())
            continue;

        if (stripped.front() == '[') {
            if (stripped.back() != ']')
                failAt(file, line,
                       csprintf("malformed section header '%s'; want "
                                "'[name]'", stripped.c_str()));
            const std::string name =
                trim(stripped.substr(1, stripped.size() - 2));
            if (name.empty())
                failAt(file, line, "empty section name '[]'");
            if (!seen_sections.insert(name).second)
                failAt(file, line,
                       csprintf("duplicate section [%s]",
                                name.c_str()));
            sections.push_back(Section{name, line, {}});
            continue;
        }

        const size_t eq = stripped.find('=');
        if (eq == std::string::npos)
            failAt(file, line,
                   csprintf("expected 'key = value' or '[section]', "
                            "got '%s'", stripped.c_str()));
        const std::string key = trim(stripped.substr(0, eq));
        const std::string value = trim(stripped.substr(eq + 1));
        if (key.empty())
            failAt(file, line, "missing key before '='");
        if (value.empty())
            failAt(file, line,
                   csprintf("key '%s' has an empty value",
                            key.c_str()));
        if (sections.empty())
            failAt(file, line,
                   csprintf("key '%s' appears before any [section] "
                            "header", key.c_str()));
        // `fault` lines are the one repeatable key: a fault trace is
        // a list. Everything else set twice is a silent-override bug.
        if (key != "fault") {
            const std::string id = sections.back().name + '\n' + key;
            if (!seen_keys.insert(id).second)
                failAt(file, line,
                       csprintf("duplicate key '%s' in section [%s]",
                                key.c_str(),
                                sections.back().name.c_str()));
        }
        sections.back().entries.push_back(Entry{key, value, line});
    }
    return sections;
}

/** Shared per-scenario interpretation state: the file name every
 * diagnostic carries plus typed value-parsing helpers. */
class Interp
{
  public:
    explicit Interp(std::string file) : file_(std::move(file)) {}

    const std::string &file() const { return file_; }

    [[noreturn]] void
    fail(unsigned line, const std::string &msg) const
    {
        failAt(file_, line, msg);
    }

    std::uint64_t
    u64(const Entry &e) const
    {
        return withContext(file_, e.line, [&] {
            return parseUint64(e.value, e.key.c_str());
        });
    }

    unsigned
    u32(const Entry &e) const
    {
        const std::uint64_t v = u64(e);
        if (v > std::numeric_limits<std::uint32_t>::max())
            fail(e.line, csprintf("%s=%s overflows a 32-bit count",
                                  e.key.c_str(), e.value.c_str()));
        return static_cast<unsigned>(v);
    }

    unsigned
    positive(const Entry &e) const
    {
        const unsigned v = u32(e);
        if (v == 0)
            fail(e.line, csprintf("%s must be >= 1", e.key.c_str()));
        return v;
    }

    bool
    flag(const Entry &e) const
    {
        return withContext(file_, e.line, [&] {
            return parseFlag(e.value, e.key.c_str());
        });
    }

    double
    real(const Entry &e) const
    {
        return withContext(file_, e.line, [&] {
            return parseDouble(e.value, e.key);
        });
    }

    double
    positiveReal(const Entry &e) const
    {
        const double v = real(e);
        if (v <= 0.0)
            fail(e.line, csprintf("%s=%s must be > 0", e.key.c_str(),
                                  e.value.c_str()));
        return v;
    }

    /** Non-negative cycle count; "inf" = kCyclesInf. */
    Cycles
    cycles(const Entry &e) const
    {
        if (toLower(e.value) == "inf")
            return kCyclesInf;
        const double v = real(e);
        if (v < 0.0)
            fail(e.line, csprintf("%s=%s must be >= 0 cycles (or "
                                  "'inf')", e.key.c_str(),
                                  e.value.c_str()));
        return v;
    }

    [[noreturn]] void
    unknownKey(const Entry &e, const std::string &section,
               const char *vocabulary) const
    {
        fail(e.line, csprintf("unknown key '%s' in section [%s]; "
                              "valid keys: %s", e.key.c_str(),
                              section.c_str(), vocabulary));
    }

  private:
    std::string file_;
};

void
interpScenarioSection(const Interp &in, const Section &sec,
                      Scenario &out)
{
    for (const Entry &e : sec.entries) {
        if (e.key == "name")
            out.name = e.value;
        else if (e.key == "description")
            out.description = e.value;
        else
            in.unknownKey(e, sec.name, "name, description");
    }
}

const char *const kFleetVocabulary =
    "mode, boards, chips-per-board, cores-per-chip, mes, ves, "
    "freq-hz, sram-bytes, hbm-bytes, hbm-bytes-per-sec, placement, "
    "core-policy, engine, threads, horizon, smoke-horizon, "
    "max-cycles, max-cycles-factor, seed, tenant-order, "
    "min-requests, smoke-min-requests";

void
interpFleetSection(const Interp &in, const Section &sec, Scenario &out)
{
    for (const Entry &e : sec.entries) {
        if (e.key == "mode") {
            const std::string low = toLower(e.value);
            if (low == "open-loop")
                out.mode = ScenarioMode::OpenLoop;
            else if (low == "closed-loop")
                out.mode = ScenarioMode::ClosedLoop;
            else
                in.fail(e.line,
                        csprintf("unknown mode '%s'; valid modes are "
                                 "'open-loop' and 'closed-loop'",
                                 e.value.c_str()));
        } else if (e.key == "boards") {
            out.boards = in.positive(e);
        } else if (e.key == "chips-per-board") {
            out.board.numChips = in.positive(e);
        } else if (e.key == "cores-per-chip") {
            out.board.coresPerChip = in.positive(e);
        } else if (e.key == "mes") {
            out.board.core.numMes = in.positive(e);
        } else if (e.key == "ves") {
            out.board.core.numVes = in.positive(e);
        } else if (e.key == "freq-hz") {
            out.board.core.freqHz = in.positiveReal(e);
        } else if (e.key == "sram-bytes") {
            out.board.core.sramBytes = in.u64(e);
        } else if (e.key == "hbm-bytes") {
            out.board.core.hbmBytes = in.u64(e);
        } else if (e.key == "hbm-bytes-per-sec") {
            out.board.core.hbmBytesPerSec = in.positiveReal(e);
        } else if (e.key == "placement") {
            out.placement = withContext(in.file(), e.line, [&] {
                return placementFromName(e.value);
            });
        } else if (e.key == "core-policy") {
            out.corePolicy = withContext(in.file(), e.line, [&] {
                return policyFromName(e.value);
            });
        } else if (e.key == "engine") {
            out.engine = withContext(in.file(), e.line, [&] {
                return engineFromName(e.value);
            });
        } else if (e.key == "threads") {
            out.threads = in.u32(e);
        } else if (e.key == "horizon") {
            out.horizon = in.cycles(e);
        } else if (e.key == "smoke-horizon") {
            out.smokeHorizon = in.cycles(e);
        } else if (e.key == "max-cycles") {
            out.maxCycles = in.cycles(e);
        } else if (e.key == "max-cycles-factor") {
            out.maxCyclesFactor = in.positiveReal(e);
        } else if (e.key == "seed") {
            out.seed = in.u64(e);
        } else if (e.key == "tenant-order") {
            const std::string low = toLower(e.value);
            if (low == "round-robin")
                out.roundRobin = true;
            else if (low == "grouped")
                out.roundRobin = false;
            else
                in.fail(e.line,
                        csprintf("unknown tenant-order '%s'; valid "
                                 "orders are 'round-robin' and "
                                 "'grouped'", e.value.c_str()));
        } else if (e.key == "min-requests") {
            out.minRequests = in.positive(e);
        } else if (e.key == "smoke-min-requests") {
            out.smokeMinRequests = in.positive(e);
        } else {
            in.unknownKey(e, sec.name, kFleetVocabulary);
        }
    }
    if (out.horizon != 0.0 && std::isinf(out.horizon))
        in.fail(sec.line, "horizon must be finite");
    if (std::isinf(out.smokeHorizon))
        in.fail(sec.line, "smoke-horizon must be finite");
}

void
interpElasticSection(const Interp &in, const Section &sec,
                     Scenario &out)
{
    for (const Entry &e : sec.entries) {
        if (e.key == "epochs") {
            out.elastic.epochs = in.positive(e);
        } else if (e.key == "imbalance-threshold") {
            const double v = in.real(e);
            if (v < 0.0)
                in.fail(e.line, "imbalance-threshold must be >= 0");
            out.elastic.imbalanceThreshold = v;
        } else if (e.key == "max-migrations-per-epoch") {
            out.elastic.maxMigrationsPerEpoch = in.u32(e);
        } else if (e.key == "migration-cost") {
            out.elastic.migrationCostCycles = in.cycles(e);
        } else if (e.key == "resize-on-migrate") {
            out.elastic.resizeOnMigrate = in.flag(e);
        } else if (e.key == "grow-factor") {
            const double v = in.real(e);
            if (v < 1.0)
                in.fail(e.line, csprintf("grow-factor=%s must be >= "
                                         "1.0 (1.0 = never grow)",
                                         e.value.c_str()));
            out.elastic.growFactor = v;
        } else {
            in.unknownKey(e, sec.name,
                          "epochs, imbalance-threshold, "
                          "max-migrations-per-epoch, migration-cost, "
                          "resize-on-migrate, grow-factor");
        }
    }
}

void
interpResilienceSection(const Interp &in, const Section &sec,
                        Scenario &out)
{
    for (const Entry &e : sec.entries) {
        if (e.key == "failover")
            out.failover = in.flag(e);
        else if (e.key == "recovery-stall")
            out.recoveryStallCycles = in.cycles(e);
        else
            in.unknownKey(e, sec.name, "failover, recovery-stall");
    }
}

/** `fault = <kind> at=<cycles>|at-frac=<0..1> [board=N] [core=N]
 *  [duration=<cycles>|inf]` */
ScenarioFault
parseFaultLine(const Interp &in, const Entry &e)
{
    std::istringstream toks(e.value);
    std::string kind_name;
    toks >> kind_name;
    ScenarioFault f;
    f.line = e.line;
    f.kind = withContext(in.file(), e.line, [&] {
        return faultKindFromName(kind_name);
    });

    bool has_at = false;
    bool has_at_frac = false;
    bool has_core = false;
    bool has_duration = false;
    std::string tok;
    while (toks >> tok) {
        const size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= tok.size())
            in.fail(e.line,
                    csprintf("malformed fault attribute '%s'; want "
                             "'at=', 'at-frac=', 'board=', 'core=' "
                             "or 'duration='", tok.c_str()));
        const std::string key = tok.substr(0, eq);
        const std::string value = tok.substr(eq + 1);
        const Entry attr{ "fault " + key, value, e.line };
        if (key == "at") {
            f.at = in.cycles(attr);
            has_at = true;
        } else if (key == "at-frac") {
            f.atFrac = in.real(attr);
            if (f.atFrac < 0.0 || f.atFrac > 1.0)
                in.fail(e.line,
                        csprintf("fault at-frac=%s must be within "
                                 "[0, 1] of the horizon",
                                 value.c_str()));
            has_at_frac = true;
        } else if (key == "board") {
            f.board = in.u32(attr);
            f.hasBoard = true;
        } else if (key == "core") {
            f.core = in.u32(attr);
            has_core = true;
        } else if (key == "duration") {
            f.durationCycles = in.cycles(attr);
            has_duration = true;
        } else {
            in.fail(e.line,
                    csprintf("unknown fault attribute '%s='; valid "
                             "attributes: at, at-frac, board, core, "
                             "duration", key.c_str()));
        }
    }

    if (has_at == has_at_frac)
        in.fail(e.line, "fault needs exactly one of 'at=<cycles>' "
                        "and 'at-frac=<0..1>'");
    const bool board_scoped = f.kind == FaultKind::BoardLoss ||
                              f.kind == FaultKind::Repair;
    if (board_scoped) {
        if (!f.hasBoard || has_core)
            in.fail(e.line,
                    csprintf("%s faults are board-scoped; give "
                             "'board=' and no 'core='",
                             faultKindName(f.kind).c_str()));
    } else {
        if (!has_core || f.hasBoard)
            in.fail(e.line,
                    csprintf("%s faults are core-scoped; give "
                             "'core=' and no 'board='",
                             faultKindName(f.kind).c_str()));
    }
    if (f.kind == FaultKind::Repair && has_duration)
        in.fail(e.line, "repair faults take no 'duration='");
    return f;
}

void
interpFaultsSection(const Interp &in, const Section &sec,
                    Scenario &out)
{
    for (const Entry &e : sec.entries) {
        if (e.key != "fault")
            in.unknownKey(e, sec.name, "fault (repeatable)");
        out.faults.push_back(parseFaultLine(in, e));
    }
}

void
interpTraceSection(const Interp &in, const Section &sec, Scenario &out)
{
    for (const Entry &e : sec.entries) {
        if (e.key == "enabled")
            out.trace.enabled = in.flag(e);
        else if (e.key == "engine-events")
            out.trace.engineEvents = in.flag(e);
        else if (e.key == "metrics")
            out.trace.metrics = in.flag(e);
        else if (e.key == "out")
            out.traceOut = e.value;
        else
            in.unknownKey(e, sec.name,
                          "enabled, engine-events, metrics, out");
    }
}

const char *const kLlmVocabulary =
    "scheduler, page-tokens, max-batch, prompt-tokens, "
    "prompt-tokens-max, output-tokens, output-tokens-max";

void
interpLlmSection(const Interp &in, const Section &sec, Scenario &out)
{
    out.hasLlm = true;
    out.llmLine = sec.line;
    for (const Entry &e : sec.entries) {
        if (e.key == "scheduler") {
            const std::string low = toLower(e.value);
            if (low == "continuous")
                out.llm.scheduler = LlmScheduler::Continuous;
            else if (low == "static-batch")
                out.llm.scheduler = LlmScheduler::StaticBatch;
            else
                in.fail(e.line,
                        csprintf("unknown scheduler '%s'; valid "
                                 "schedulers are 'continuous' and "
                                 "'static-batch'", e.value.c_str()));
        } else if (e.key == "page-tokens") {
            out.llm.pageTokens = in.positive(e);
        } else if (e.key == "max-batch") {
            out.llm.maxBatch = in.positive(e);
        } else if (e.key == "prompt-tokens") {
            out.llm.promptTokens = in.positive(e);
        } else if (e.key == "prompt-tokens-max") {
            out.llm.promptTokensMax = in.positive(e);
        } else if (e.key == "output-tokens") {
            out.llm.outputTokens = in.positive(e);
        } else if (e.key == "output-tokens-max") {
            out.llm.outputTokensMax = in.positive(e);
        } else {
            in.unknownKey(e, sec.name, kLlmVocabulary);
        }
    }
    if (out.llm.promptTokensMax != 0 &&
        out.llm.promptTokensMax < out.llm.promptTokens)
        in.fail(sec.line,
                csprintf("prompt-tokens-max=%u is below "
                         "prompt-tokens=%u", out.llm.promptTokensMax,
                         out.llm.promptTokens));
    if (out.llm.outputTokensMax != 0 &&
        out.llm.outputTokensMax < out.llm.outputTokens)
        in.fail(sec.line,
                csprintf("output-tokens-max=%u is below "
                         "output-tokens=%u", out.llm.outputTokensMax,
                         out.llm.outputTokens));
}

const char *const kTenantVocabulary =
    "model, batch, count, eus, mes, ves, outstanding, rho, "
    "rate-per-sec, shape, burst-multiplier, burst-fraction, "
    "burst-dwell-sec, diurnal-depth, diurnal-period-sec, "
    "diurnal-phase, slo-factor, slo-cycles, max-queue-depth, "
    "priority, seed";

ScenarioTenantGroup
interpTenantSection(const Interp &in, const Section &sec)
{
    ScenarioTenantGroup g;
    g.name = sec.name.substr(std::string("tenant.").size());
    g.line = sec.line;
    if (g.name.empty())
        in.fail(sec.line, "empty tenant name; want [tenant.<name>]");

    bool has_model = false;
    for (const Entry &e : sec.entries) {
        if (e.key == "model") {
            g.model = withContext(in.file(), e.line, [&] {
                return modelFromAbbrev(e.value);
            });
            has_model = true;
        } else if (e.key == "batch") {
            g.batch = in.positive(e);
        } else if (e.key == "count") {
            g.count = in.positive(e);
        } else if (e.key == "eus") {
            g.eus = in.positive(e);
        } else if (e.key == "mes") {
            g.nMes = in.positive(e);
        } else if (e.key == "ves") {
            g.nVes = in.positive(e);
        } else if (e.key == "outstanding") {
            g.outstanding = in.positive(e);
        } else if (e.key == "rho") {
            g.rho = in.positiveReal(e);
        } else if (e.key == "rate-per-sec") {
            g.ratePerSec = in.positiveReal(e);
        } else if (e.key == "shape") {
            g.traffic.shape = withContext(in.file(), e.line, [&] {
                return trafficShapeFromName(e.value);
            });
            if (g.traffic.shape == TrafficShape::Trace)
                in.fail(e.line,
                        "shape=trace needs an explicit arrival "
                        "vector, which a scenario file cannot carry; "
                        "use poisson, bursty or diurnal");
        } else if (e.key == "burst-multiplier") {
            const double v = in.real(e);
            if (v <= 1.0)
                in.fail(e.line, "burst-multiplier must be > 1");
            g.traffic.burstMultiplier = v;
        } else if (e.key == "burst-fraction") {
            const double v = in.real(e);
            if (v <= 0.0 || v >= 1.0)
                in.fail(e.line,
                        csprintf("burst-fraction=%s must be within "
                                 "(0, 1)", e.value.c_str()));
            g.traffic.burstFraction = v;
        } else if (e.key == "burst-dwell-sec") {
            g.traffic.burstDwellSec = in.positiveReal(e);
        } else if (e.key == "diurnal-depth") {
            const double v = in.real(e);
            if (v < 0.0 || v > 1.0)
                in.fail(e.line,
                        csprintf("diurnal-depth=%s must be within "
                                 "[0, 1]", e.value.c_str()));
            g.traffic.diurnalDepth = v;
        } else if (e.key == "diurnal-period-sec") {
            g.traffic.diurnalPeriodSec = in.positiveReal(e);
        } else if (e.key == "diurnal-phase") {
            const double v = in.real(e);
            if (v < 0.0 || v >= 1.0)
                in.fail(e.line,
                        csprintf("diurnal-phase=%s must be within "
                                 "[0, 1)", e.value.c_str()));
            g.traffic.diurnalPhase = v;
        } else if (e.key == "slo-factor") {
            g.sloFactor = in.positiveReal(e);
        } else if (e.key == "slo-cycles") {
            const Cycles v = in.cycles(e);
            if (v <= 0.0)
                in.fail(e.line, "slo-cycles must be > 0 (or 'inf')");
            g.sloCycles = v;
            g.hasSloCycles = true;
        } else if (e.key == "max-queue-depth") {
            g.maxQueueDepth = in.positive(e);
        } else if (e.key == "priority") {
            g.priority = in.positiveReal(e);
        } else if (e.key == "seed") {
            g.seed = in.u64(e);
            g.hasSeed = true;
        } else {
            in.unknownKey(e, sec.name, kTenantVocabulary);
        }
    }

    if (!has_model)
        in.fail(sec.line,
                csprintf("[%s] is missing the required 'model' key",
                         sec.name.c_str()));
    if (g.batch > maxBatch(g.model))
        in.fail(sec.line,
                csprintf("[%s]: batch %u exceeds %s's maximum "
                         "supported batch %u", sec.name.c_str(),
                         g.batch, modelName(g.model).c_str(),
                         maxBatch(g.model)));
    if (g.sloFactor > 0.0 && g.hasSloCycles)
        in.fail(sec.line,
                csprintf("[%s] sets both slo-factor and slo-cycles; "
                         "give at most one", sec.name.c_str()));
    if (g.rho > 0.0 && g.ratePerSec > 0.0)
        in.fail(sec.line,
                csprintf("[%s] sets both rho and rate-per-sec; give "
                         "exactly one", sec.name.c_str()));
    return g;
}

/** True when the group uses any open-loop-only key. Reported key
 * name for the closed-loop rejection diagnostic, or nullptr. */
const char *
openLoopOnlyKey(const Section &sec)
{
    static const std::set<std::string> open_only = {
        "eus", "rho", "rate-per-sec", "shape", "burst-multiplier",
        "burst-fraction", "burst-dwell-sec", "diurnal-depth",
        "diurnal-period-sec", "diurnal-phase", "slo-factor",
        "slo-cycles", "max-queue-depth", "seed",
    };
    for (const Entry &e : sec.entries)
        if (open_only.count(e.key) > 0)
            return e.key.c_str();
    return nullptr;
}

void
validateOpenLoop(const Interp &in, const Scenario &s,
                 const std::vector<const Section *> &tenant_sections)
{
    if (s.horizon <= 0.0)
        in.fail(1, "open-loop scenarios require a positive [fleet] "
                   "horizon");
    for (size_t i = 0; i < s.groups.size(); ++i) {
        const ScenarioTenantGroup &g = s.groups[i];
        const Section &sec = *tenant_sections[i];
        if (g.eus == 0)
            in.fail(sec.line,
                    csprintf("[%s] is missing the required 'eus' key "
                             "(open-loop tenants buy an EU budget)",
                             sec.name.c_str()));
        if (g.rho <= 0.0 && g.ratePerSec <= 0.0)
            in.fail(sec.line,
                    csprintf("[%s] needs exactly one of 'rho' and "
                             "'rate-per-sec'", sec.name.c_str()));
        for (const Entry &e : sec.entries)
            if (e.key == "mes" || e.key == "ves" ||
                e.key == "outstanding")
                in.fail(e.line,
                        csprintf("key '%s' is closed-loop only; "
                                 "open-loop tenants size their vNPU "
                                 "from 'eus'", e.key.c_str()));
    }

    const unsigned total_cores = s.totalCores();
    for (const ScenarioFault &f : s.faults) {
        const bool board_scoped = f.kind == FaultKind::BoardLoss ||
                                  f.kind == FaultKind::Repair;
        if (board_scoped && f.board >= s.boards)
            in.fail(f.line,
                    csprintf("fault board %u is out of range; the "
                             "fleet has boards 0..%u", f.board,
                             s.boards - 1));
        if (!board_scoped && f.core >= total_cores)
            in.fail(f.line,
                    csprintf("fault core %u is out of range; the "
                             "fleet has cores 0..%u", f.core,
                             total_cores - 1));
        if (f.at >= 0.0 && s.horizon > 0.0 && f.at >= s.horizon &&
            !std::isinf(f.at))
            in.fail(f.line,
                    csprintf("fault onset at=%g is past the horizon "
                             "%g", f.at, s.horizon));
    }
}

void
validateClosedLoop(const Interp &in, const Scenario &s,
                   const std::vector<const Section *> &tenant_sections,
                   const std::vector<Section> &sections)
{
    // Closed loop is the paper's single-core §V-A methodology: no
    // fleet placement, no epochs, no faults, no open-loop traffic.
    for (const Section &sec : sections) {
        if (sec.name == "elastic" || sec.name == "resilience" ||
            sec.name == "faults")
            in.fail(sec.line,
                    csprintf("section [%s] is open-loop only; "
                             "closed-loop scenarios drive one core "
                             "with no epochs or faults",
                             sec.name.c_str()));
        if (sec.name == "fleet") {
            for (const Entry &e : sec.entries)
                if (e.key == "boards" || e.key == "placement" ||
                    e.key == "horizon" || e.key == "smoke-horizon")
                    in.fail(e.line,
                            csprintf("key '%s' is open-loop only; "
                                     "closed-loop runs stop at "
                                     "min-requests, not a horizon",
                                     e.key.c_str()));
        }
    }
    for (size_t i = 0; i < s.groups.size(); ++i) {
        const ScenarioTenantGroup &g = s.groups[i];
        const Section &sec = *tenant_sections[i];
        if (const char *key = openLoopOnlyKey(sec))
            in.fail(sec.line,
                    csprintf("[%s]: key '%s' is open-loop only",
                             sec.name.c_str(), key));
        if (g.nMes == 0 || g.nVes == 0)
            in.fail(sec.line,
                    csprintf("[%s] needs explicit 'mes' and 'ves' "
                             "(closed-loop tenants pin their engine "
                             "split)", sec.name.c_str()));
    }
}

} // namespace

Scenario
parseScenario(const std::string &text, const std::string &filename)
{
    const Interp in(filename);
    const std::vector<Section> sections = lexScenario(text, filename);

    Scenario out;
    out.file = filename;

    std::vector<const Section *> tenant_sections;
    bool saw_scenario = false;
    for (const Section &sec : sections) {
        if (sec.name == "scenario") {
            interpScenarioSection(in, sec, out);
            saw_scenario = true;
        } else if (sec.name == "fleet") {
            interpFleetSection(in, sec, out);
        } else if (sec.name == "elastic") {
            interpElasticSection(in, sec, out);
        } else if (sec.name == "resilience") {
            interpResilienceSection(in, sec, out);
        } else if (sec.name == "faults") {
            interpFaultsSection(in, sec, out);
        } else if (sec.name == "llm") {
            interpLlmSection(in, sec, out);
        } else if (sec.name == "trace") {
            interpTraceSection(in, sec, out);
        } else if (sec.name.rfind("tenant.", 0) == 0) {
            out.groups.push_back(interpTenantSection(in, sec));
            tenant_sections.push_back(&sec);
        } else {
            in.fail(sec.line,
                    csprintf("unknown section [%s]; valid sections: "
                             "[scenario], [fleet], [elastic], "
                             "[resilience], [faults], [llm], [trace], "
                             "[tenant.<name>]", sec.name.c_str()));
        }
    }

    if (!saw_scenario || out.name.empty())
        in.fail(1, "missing [scenario] section with a 'name' key");
    if (out.groups.empty())
        in.fail(1, "scenario declares no [tenant.<name>] sections");

    if (out.mode == ScenarioMode::OpenLoop)
        validateOpenLoop(in, out, tenant_sections);
    else
        validateClosedLoop(in, out, tenant_sections, sections);

    if (out.hasLlm) {
        // Token-level LLM serving rides the fleet engine and the
        // LLaMA phase model; anything else has no token semantics.
        if (out.mode != ScenarioMode::OpenLoop)
            in.fail(out.llmLine,
                    "[llm] is open-loop only; token-level serving "
                    "runs on the fleet engine");
        if (out.elastic.epochs != 1)
            in.fail(out.llmLine,
                    csprintf("[llm] requires [elastic] epochs = 1 "
                             "(got %u): half-decoded sequences cannot "
                             "carry across epoch boundaries",
                             out.elastic.epochs));
        for (size_t i = 0; i < out.groups.size(); ++i) {
            if (out.groups[i].model != ModelId::Llama)
                in.fail(tenant_sections[i]->line,
                        csprintf("[%s]: LLM serving requires model = "
                                 "LLaMA (got %s)",
                                 tenant_sections[i]->name.c_str(),
                                 modelAbbrev(out.groups[i].model)
                                     .c_str()));
        }
    }
    return out;
}

Scenario
loadScenarioFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open scenario file '%s'", path.c_str());
    std::ostringstream text;
    text << file.rdbuf();
    if (!file.good() && !file.eof())
        fatal("error reading scenario file '%s'", path.c_str());
    return parseScenario(text.str(), path);
}

void
applyEnvOverrides(Scenario &scenario)
{
    scenario.seed = envUint64("NEU10_SEED", scenario.seed);
    scenario.smoke = envFlag("NEU10_SMOKE", scenario.smoke);
    if (envFlag("NEU10_TRACE", false) &&
        scenario.mode == ScenarioMode::OpenLoop) {
        scenario.trace.enabled = true;
        scenario.trace.metrics = true;
    }
    scenario.traceOut = envString("NEU10_TRACE_OUT",
                                  scenario.traceOut);
}

} // namespace neu10
