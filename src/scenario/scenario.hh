/**
 * @file
 * Declarative scenario files: one plain-text file describes a whole
 * fleet experiment.
 *
 * Every workload the repo studies used to be a hand-wired C++ bench
 * binary; that made each new scenario a compile-edit-link loop and
 * was the scaling bottleneck for scenario diversity (SLA mixes x
 * hardware mixes x traffic mixes x faults). A scenario file captures
 * everything a `FleetConfig` / `ServingConfig` needs — fleet shape,
 * traffic, placement, scheduling, elasticity epochs, fault traces,
 * SLOs, engine knobs and tracing — in an INI-style text format
 * (sections + `key = value` lines), so adding a workload is a file
 * drop, not a binary. The committed library lives under `scenarios/`
 * and `tools/neu10_run` executes any of them; the converted benches
 * (bench_cluster_serving, bench_resilience) are thin wrappers over
 * the same loader, with differential parity tests pinning the files
 * to the original hand-wired configs field-by-field.
 *
 * Parsing follows the hardened common/env contract: anything but a
 * clean parse fails loudly with a diagnostic naming the file, the
 * line, the offending text and the accepted vocabulary — a silently
 * defaulted knob records an irreproducible experiment. All
 * diagnostics throw FatalError (user-level problem).
 *
 * Format reference, key vocabulary and examples: docs/SCENARIOS.md.
 */

#ifndef NEU10_SCENARIO_SCENARIO_HH
#define NEU10_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/fleet.hh"
#include "cluster/placement.hh"
#include "cluster/traffic.hh"
#include "models/zoo.hh"
#include "npu/config.hh"
#include "obs/trace.hh"
#include "resilience/faults.hh"
#include "sched/policy.hh"
#include "sim/engine.hh"

namespace neu10
{

/** How the scenario's requests are generated. OpenLoop drives the
 * multi-board fleet engine (runFleet); ClosedLoop drives the paper's
 * §V-A single-core methodology (runServing). */
enum class ScenarioMode
{
    OpenLoop = 0,
    ClosedLoop,
};

/** Human-readable mode name ("open-loop" / "closed-loop"). */
std::string scenarioModeName(ScenarioMode mode);

/** One `fault = ...` line of a `[faults]` section, before resolution
 * against the fleet topology and horizon. */
struct ScenarioFault
{
    FaultKind kind = FaultKind::TransientMmio;

    /** Board for board-scoped kinds (BoardLoss / Repair). */
    unsigned board = 0;
    bool hasBoard = false;

    /** Fleet-wide core for core-scoped kinds. */
    CoreId core = kInvalidCore;

    /** Onset: absolute cycles (`at=`) or a fraction of the horizon
     * (`at-frac=`); exactly one must be given. Negative = unset. */
    Cycles at = -1.0;
    double atFrac = -1.0;

    /** Outage length in cycles; `duration=inf` = until an explicit
     * repair (or forever). */
    Cycles durationCycles = 0.0;

    /** Scenario-file line of this fault (diagnostics). */
    unsigned line = 0;
};

/** One `[tenant.<name>]` section: a group of `count` identical
 * tenants. Groups expand into the config's tenant list in the order
 * controlled by `tenant-order` (see Scenario::roundRobin). */
struct ScenarioTenantGroup
{
    std::string name;    ///< the `<name>` suffix of the section
    unsigned line = 0;   ///< section-header line (diagnostics)

    ModelId model = ModelId::Mnist;
    unsigned batch = 32;
    unsigned count = 1;

    /** Open loop: EU budget handed to the §III-B allocator. */
    unsigned eus = 0;

    /** Closed loop: explicit engine split (the §V-A benches pin
     * these rather than letting the allocator choose). */
    unsigned nMes = 0;
    unsigned nVes = 0;
    unsigned outstanding = 1;

    /** Open-loop offered load: either `rho` (target utilization of
     * the tenant's own allocator-sized vNPU; the rate becomes
     * rho x freq / serviceEstimate) or an absolute `rate-per-sec`.
     * Exactly one must be set. Negative = unset. */
    double rho = -1.0;
    double ratePerSec = -1.0;

    /** Arrival-shape knobs (shape, burst-*, diurnal-*); the rate and
     * seed fields are filled at expansion time. */
    TrafficSpec traffic;

    /** SLO: `slo-factor` (x the allocator's service estimate) or an
     * absolute `slo-cycles`; at most one (default: no SLO). */
    double sloFactor = -1.0;
    Cycles sloCycles = kCyclesInf;
    bool hasSloCycles = false;

    unsigned maxQueueDepth = 64;
    double priority = 1.0;

    /** Explicit stream-seed base for this group; when absent the
     * fleet seed is used. Either way each expanded tenant adds its
     * global index, matching the `seed + i` bench idiom. */
    std::uint64_t seed = 0;
    bool hasSeed = false;
};

/** A parsed scenario file (see docs/SCENARIOS.md for the format). */
struct Scenario
{
    std::string file;        ///< path it was parsed from (diagnostics)
    std::string name;        ///< [scenario] name
    std::string description; ///< [scenario] description

    ScenarioMode mode = ScenarioMode::OpenLoop;

    // --- [fleet] ---------------------------------------------------
    unsigned boards = 4;
    NpuBoardConfig board;    ///< chips x cores x core shape
    PlacementPolicy placement = PlacementPolicy::FirstFit;
    PolicyKind corePolicy = PolicyKind::Neu10;
    SimEngine engine = SimEngine::EventDriven;

    /** Host threads for per-core simulations (0 = host width). */
    unsigned threads = 1;

    /** Traffic window in cycles (required in open loop) and its
     * smoke-mode replacement (0 = no shrink). */
    Cycles horizon = 0.0;
    Cycles smokeHorizon = 0.0;

    /** Drain cap: absolute `max-cycles` wins when > 0, otherwise
     * `max-cycles-factor` x the effective horizon (open loop). */
    Cycles maxCycles = 0.0;
    double maxCyclesFactor = 50.0;

    /** Base stream seed; tenant i's stream gets seed + i. */
    std::uint64_t seed = 1;

    /** Tenant expansion order: round-robin across groups (the bench
     * `i % 4` idiom, default) or group-by-group. */
    bool roundRobin = true;

    /** Closed loop: stop once the slowest tenant served this many
     * requests, and the smoke-mode replacement (0 = no shrink). */
    unsigned minRequests = 20;
    unsigned smokeMinRequests = 0;

    // --- [elastic] / [resilience] / [faults] -----------------------
    ElasticConfig elastic;
    bool failover = true;
    Cycles recoveryStallCycles = 5e5;
    std::vector<ScenarioFault> faults;

    // --- [llm] -----------------------------------------------------
    /** Present iff the file has an [llm] section: the fleet serves
     * token-level LLM sequences (ServingMode::LlmContinuous) instead
     * of open-loop requests. Open-loop mode only; every tenant must
     * run the LLaMA model and [elastic] epochs must stay 1. */
    bool hasLlm = false;
    unsigned llmLine = 0;    ///< [llm] header line (diagnostics)
    LlmParams llm;

    // --- [trace] ---------------------------------------------------
    TraceConfig trace;
    std::string traceOut;    ///< Chrome-JSON path ("" = derived)

    std::vector<ScenarioTenantGroup> groups;

    /** Smoke mode (NEU10_SMOKE / --smoke): swaps in smokeHorizon /
     * smokeMinRequests when they are set. Never set by the file
     * itself — a scenario describes the full experiment and the
     * harness shrinks it. */
    bool smoke = false;

    /** Horizon after the smoke swap. */
    Cycles
    effectiveHorizon() const
    {
        return smoke && smokeHorizon > 0.0 ? smokeHorizon : horizon;
    }

    /** minRequests after the smoke swap. */
    unsigned
    effectiveMinRequests() const
    {
        return smoke && smokeMinRequests > 0 ? smokeMinRequests
                                             : minRequests;
    }

    /** Fleet-wide core count. */
    unsigned
    totalCores() const
    {
        return boards * board.totalCores();
    }

    /** Expanded tenant count (sum of group counts). */
    unsigned totalTenants() const;
};

/**
 * Parse scenario @p text. @p filename is used verbatim in
 * diagnostics ("file:line: ..."); it does not need to exist.
 * @throws FatalError naming file, line and offending text on any
 *         syntax, vocabulary, range or reference error.
 */
Scenario parseScenario(const std::string &text,
                       const std::string &filename);

/** Read and parse a scenario file.
 * @throws FatalError when unreadable or malformed. */
Scenario loadScenarioFile(const std::string &path);

/**
 * Apply the harness environment knobs to a loaded scenario — the one
 * place the NEU10_* plumbing lives for every scenario consumer
 * (tools/neu10_run and the converted benches):
 *
 *  - NEU10_SEED   overrides Scenario::seed (beats the file value);
 *  - NEU10_SMOKE  sets Scenario::smoke (swaps in the smoke knobs);
 *  - NEU10_TRACE  enables tracing + metrics (open loop only);
 *  - NEU10_TRACE_OUT overrides Scenario::traceOut.
 *
 * Environment values win over scenario-file values by construction:
 * they are applied after the parse. Parsing follows the hardened
 * common/env grammar. @throws FatalError on malformed values.
 */
void applyEnvOverrides(Scenario &scenario);

} // namespace neu10

#endif // NEU10_SCENARIO_SCENARIO_HH
