/**
 * @file
 * Scenario execution: expand a parsed Scenario into the engine
 * configs (cluster/fleet, runtime/serving), run it, and render the
 * outcome as machine-readable JSON.
 *
 * Expansion is the exact idiom the hand-wired benches use, expression
 * for expression: per-group vNPU sizing via the §III-B allocator,
 * `rho x freq / serviceEstimate` offered rates, `sloFactor x
 * serviceEstimate` SLOs, `seed + globalIndex` stream seeding, and
 * round-robin group interleave (the benches' `i % 4` pattern). The
 * differential parity suite (tests/test_scenario_parity.cpp) pins a
 * committed scenario file to its bench's config path field-by-field
 * with exact equality, so the scenario library and the benches can
 * never drift apart silently.
 *
 * The JSON record follows the determinism contract: stable key
 * order, no wall-clock or host-dependent fields, and doubles printed
 * as shortest round-trip decimals (std::to_chars) — two identical
 * configs yield byte-identical files, which is what lets CI diff
 * runner output against checked-in goldens (scenarios/goldens/).
 */

#ifndef NEU10_SCENARIO_RUNNER_HH
#define NEU10_SCENARIO_RUNNER_HH

#include <string>

#include "cluster/fleet.hh"
#include "runtime/serving.hh"
#include "scenario/scenario.hh"

namespace neu10
{

/**
 * Expand an open-loop scenario into a FleetConfig. Smoke mode and
 * env overrides must already be applied (applyEnvOverrides).
 * @throws PanicError when called on a closed-loop scenario.
 */
FleetConfig toFleetConfig(const Scenario &scenario);

/**
 * Expand a closed-loop scenario into a ServingConfig.
 * @throws PanicError when called on an open-loop scenario.
 */
ServingConfig toServingConfig(const Scenario &scenario);

/** One executed scenario: exactly one of fleet / serving is live,
 * selected by @ref mode. */
struct ScenarioOutcome
{
    ScenarioMode mode = ScenarioMode::OpenLoop;
    FleetResult fleet;      ///< mode == OpenLoop
    ServingResult serving;  ///< mode == ClosedLoop

    /** Effective horizon the run used (0 in closed loop). */
    Cycles horizon = 0.0;

    /** Expanded tenant count. */
    unsigned tenants = 0;
};

/** Expand and execute @p scenario. Deterministic: identical
 * scenarios yield identical outcomes. */
ScenarioOutcome runScenario(const Scenario &scenario);

/**
 * Render @p outcome as the neu10-scenario-result-v1 JSON record (see
 * file doc and docs/SCENARIOS.md). Deterministic bytes; no paths,
 * hosts or wall-clock values.
 */
std::string outcomeJson(const Scenario &scenario,
                        const ScenarioOutcome &outcome);

/** outcomeJson() to a file. @throws FatalError when unwritable. */
void writeOutcomeJson(const std::string &path,
                      const Scenario &scenario,
                      const ScenarioOutcome &outcome);

} // namespace neu10

#endif // NEU10_SCENARIO_RUNNER_HH
