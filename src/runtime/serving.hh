/**
 * @file
 * Multi-tenant serving experiments (§V-A methodology).
 *
 * Two measurement loops share one core simulator:
 *
 *  - Closed loop (the paper's §V-A setup): collocated tenants each run
 *    inference requests continuously on one physical core under a
 *    chosen design (PMT / V10 / Neu10-NH / Neu10); the run ends once
 *    every tenant has completed a minimum number of requests (or a
 *    simulated-time cap triggers).
 *
 *  - Open loop (datacenter-style, used by src/cluster): each tenant
 *    brings a precomputed arrival-time stream; requests are admitted
 *    while the tenant's backlog is below its admission depth and
 *    rejected otherwise, and completions are checked against a
 *    per-tenant latency SLO. The run drains every admitted request.
 *
 * Outputs per-tenant latency distributions (p50/p95/p99), throughput,
 * goodput and rejection counts (open loop), harvest-blocked time
 * (Table III), core utilizations (Fig. 22), optional per-operator
 * timings (Fig. 23) and engine-assignment traces (Fig. 24).
 */

#ifndef NEU10_RUNTIME_SERVING_HH
#define NEU10_RUNTIME_SERVING_HH

#include <string>
#include <vector>

#include "compiler/lower.hh"
#include "llm/llm_params.hh"
#include "models/zoo.hh"
#include "npu/config.hh"
#include "npu/core_sim.hh"
#include "obs/trace.hh"
#include "sched/policy.hh"
#include "sim/engine.hh"
#include "stats/distribution.hh"

namespace neu10
{

/** One collocated tenant in a serving experiment. */
struct TenantSpec
{
    TenantSpec() = default;

    /** Closed-loop shorthand used throughout the benches. */
    TenantSpec(ModelId model_, unsigned batch_, unsigned n_mes,
               unsigned n_ves, double priority_ = 1.0,
               unsigned outstanding_ = 1)
        : model(model_), batch(batch_), nMes(n_mes), nVes(n_ves),
          priority(priority_), outstanding(outstanding_)
    {}

    ModelId model = ModelId::Bert;
    unsigned batch = 32;
    unsigned nMes = 2;        ///< vNPU engine allocation on the core
    unsigned nVes = 2;
    double priority = 1.0;
    unsigned outstanding = 1; ///< closed-loop requests in flight

    // --- open-loop fields (ServingMode::OpenLoop only) -------------
    /** Request arrival times in cycles (simulated core-clock cycles,
     * like every time quantity here), non-decreasing, relative to
     * this run's t = 0. Negative stamps are allowed: they model
     * requests that arrived while the tenant's vNPU was down (an
     * outage in an earlier epoch) and are delivered — through normal
     * admission control — at t = 0, keeping the original stamp so
     * the outage wait counts against latency and the SLO. */
    std::vector<Cycles> arrivals;

    /**
     * Admission depth: an arrival is rejected while this tenant
     * already has this many requests admitted but not completed
     * (queued *or* executing, including carried @ref backlog).
     */
    unsigned maxQueueDepth = 64;

    /** Latency SLO in cycles; completions within it count as goodput.
     * Latency is measured from the request's original arrival stamp,
     * so time spent held before @ref startOffsetCycles or carried
     * across an epoch boundary counts against the SLO. */
    Cycles sloCycles = kCyclesInf;

    /**
     * Arrival stamps (cycles, <= 0 relative to this run's t = 0) of
     * requests admitted in an earlier epoch and still unserved: the
     * fleet's elastic engine carries them across epoch boundaries.
     * They re-enter the host-side queue immediately and in order,
     * bypass admission (they were admitted once already) but count
     * toward the admission depth seen by fresh arrivals, and keep
     * their original stamps for latency/SLO accounting.
     */
    std::vector<Cycles> backlog;

    /**
     * Earliest core-submission time in cycles for this tenant (the
     * fleet charges vNPU migration cost through this). Work arriving
     * or carried in earlier waits in the host-side queue — admission
     * still happens at arrival time — and the wait counts toward its
     * latency. May exceed an epoch's window: everything still queued
     * at the boundary is simply carried again.
     */
    Cycles startOffsetCycles = 0.0;

    /**
     * Optional precompiled binary for this tenant — must match
     * (model, batch) and the run's policy and core shape. Non-owning
     * and read-only: epoch-based callers compile once and share it
     * across runs and host threads. When null, runServing compiles
     * via compileFor().
     */
    const CompiledModel *program = nullptr;

    // --- LLM fields (ServingMode::LlmContinuous only) --------------
    /** Seed of the per-sequence prompt/output length stream
     * (llm/llm_serving.hh); the fleet forwards the tenant's traffic
     * seed so lengths are stable per tenant. */
    std::uint64_t llmSeed = 0;

    /** vNPU HBM reservation the KV pool is carved from (weights are
     * subtracted inside llm_serving). 0 = size it on the fly via
     * sizeVnpuForModel, as the fleet placer would. */
    Bytes hbmBytes = 0;
};

/** How requests are generated (see file doc). */
enum class ServingMode
{
    ClosedLoop = 0, ///< resubmit-on-completion, §V-A methodology
    OpenLoop,       ///< arrival-driven with admission control

    /** Token-level LLM serving: arrivals are *sequences* (prompt +
     * per-token decode) batched continuously against a paged KV
     * pool (llm/llm_serving.hh). Uses the open-loop arrival,
     * admission and SLO machinery of TenantSpec. */
    LlmContinuous,
};

/** Experiment configuration. */
struct ServingConfig
{
    NpuCoreConfig core;
    PolicyKind policy = PolicyKind::Neu10;
    ServingMode mode = ServingMode::ClosedLoop;
    std::vector<TenantSpec> tenants;

    /** Execution engine (sim/engine.hh): the fast-forward default or
     * the per-cycle reference. Bit-identical results either way; the
     * reference exists to be measured against (bench_perf_engine)
     * and to anchor the invariance suite. */
    SimEngine engine = SimEngine::EventDriven;

    /** Closed loop: stop once the slowest tenant completes this many
     * requests. Ignored in open loop (the arrival streams bound the
     * experiment). */
    unsigned minRequests = 20;

    /**
     * Hard cap on simulated cycles (guards tiny/huge model mixes).
     * The cap is an exclusive boundary, with the same semantics as
     * @ref stopAtCycles: no event at or after it runs, so an arrival
     * landing exactly at the cap is outside this run's window. A
     * capped open-loop run stays conserved — admitted-but-unserved
     * work is reported as TenantResult::backlog and arrivals whose
     * delivery the cap cut off are counted as submitted *and*
     * rejected (the stream was offered; the server ran out of time).
     */
    Cycles maxCycles = 4e9;

    /**
     * Open loop only: stop simulating at the first event at or after
     * this time (an epoch boundary in the elastic fleet). Requests
     * admitted but unserved at the stop are reported in
     * TenantResult::backlog instead of being drained; utilization is
     * then measured over this window. kCyclesInf (default) drains
     * every admitted request as before.
     *
     * The boundary is exclusive: an arrival stamped exactly at it
     * belongs to the *next* epoch and must not be in this run's
     * TenantSpec::arrivals — runFleet slices its streams with the
     * same strict comparison, so nothing is admitted twice or
     * dropped at a boundary.
     */
    Cycles stopAtCycles = kCyclesInf;

    /**
     * Open loop only: per-tenant core-side submission window. An
     * admitted request enters the core simulator only while fewer
     * than this many of its tenant's requests are in there (the rest
     * of the admitted backlog waits in a host-side FIFO, as a real
     * serving stack would double-buffer an accelerator queue). Keeps
     * a tenant's requests executing mostly one-after-another — and
     * bounds the work an epoch-boundary stop can lose to re-execution
     * to this many partially-run requests per tenant.
     */
    unsigned corePipelineDepth = 2;

    /** LLM serving knobs (ServingMode::LlmContinuous only). */
    LlmParams llm;

    bool captureOpTimings = false;
    bool captureAssignment = false;

    /**
     * Sim-time tracing (obs/trace.hh). Off by default; when enabled,
     * the run records request-lifecycle events (admit / queue /
     * execute / complete / reject) — and, with
     * TraceConfig::engineEvents, every engine fast-forward jump —
     * into ServingResult::trace. Event times are cycles relative to
     * this run's t = 0 (carried work keeps negative stamps); the
     * fleet re-anchors them when merging epochs.
     */
    TraceConfig trace;
};

/** Per-tenant outcome. */
struct TenantResult
{
    std::string model;
    std::uint64_t completed = 0;
    Distribution latencyCycles;
    double throughput = 0.0;      ///< requests / second
    double blockedFrac = 0.0;     ///< Table III: blocked-by-harvest
    unsigned reclaims = 0;

    // --- open-loop accounting (zero in closed loop) ----------------
    std::uint64_t submitted = 0;  ///< arrivals seen
    std::uint64_t rejected = 0;   ///< admission-control drops
    std::uint64_t sloMet = 0;     ///< completions within sloCycles
    double goodput = 0.0;         ///< SLO-met requests / second

    /** Arrival stamps (cycles, relative to this run's t = 0, possibly
     * negative for carried work) of admitted requests still unserved
     * when the run stopped at ServingConfig::stopAtCycles; sorted
     * non-decreasing. Empty when the run drained. */
    std::vector<Cycles> backlog;

    // --- resilience accounting (filled by the fleet's failover
    // --- controller; zero in a plain serving run) ------------------
    /** Requests permanently dropped by a hardware failure: admitted
     * work whose vNPU died unrestorably, plus arrivals while dead.
     * Also counted in @ref rejected so request conservation
     * (completed + rejected == submitted) holds. */
    std::uint64_t lostRequests = 0;

    /** Requests given a (late) chance at service by a failover
     * restore: the checkpointed admitted backlog plus arrivals held
     * through the outage, re-entering on the new core with original
     * stamps. Held arrivals still pass admission on re-delivery, so
     * a burst exceeding maxQueueDepth is partly shed — those drops
     * count as @ref rejected, not as @ref lostRequests. Counted per
     * restore event: a request still unserved when its *new* core
     * also fails is carried (and counted) again. */
    std::uint64_t recoveredRequests = 0;

    /** Completed failovers (vNPU restored onto a surviving core). */
    unsigned failovers = 0;

    /** Cycles this tenant had no usable vNPU: fault onset until the
     * restored instance may submit again (restore boundary plus the
     * recovery stall), or until the horizon when never restored. */
    Cycles downtimeCycles = 0.0;

    /** LLM serving outcome (ServingMode::LlmContinuous only):
     * token/prefill/preemption counters, KV-pool accounting and the
     * time-to-first-token distribution. */
    LlmEndpointStats llm;

    /** Per-request operator timings (captureOpTimings). */
    std::vector<std::vector<OpTiming>> opTimings;

    /** Engine-assignment traces (captureAssignment). */
    TimeSeries assignedMes;
    TimeSeries assignedVes;

    /** Median latency in cycles. */
    double
    p50() const
    {
        return latencyCycles.percentile(0.50);
    }

    /** p95 latency in cycles (Fig. 19's metric). */
    double
    p95() const
    {
        return latencyCycles.percentile(0.95);
    }

    /** p99 tail latency in cycles (datacenter SLO metric). */
    double
    p99() const
    {
        return latencyCycles.percentile(0.99);
    }
};

/** Whole-experiment outcome. */
struct ServingResult
{
    std::string policy;
    std::vector<TenantResult> tenants;
    Cycles makespan = 0.0;        ///< simulated cycles measured over
    double meUsefulUtil = 0.0;    ///< Fig. 22a
    double meHeldUtil = 0.0;
    double veUtil = 0.0;          ///< Fig. 22b
    double avgHbmBytesPerCycle = 0.0;

    /** Sim-time events recorded when ServingConfig::trace.enabled;
     * empty otherwise. Times are run-relative cycles. */
    TraceBuffer trace;

    /** Aggregate throughput over tenants (requests / second). */
    double totalThroughput() const;
};

/**
 * Run one serving experiment. Deterministic: identical configs yield
 * identical results.
 */
ServingResult runServing(const ServingConfig &config);

/** Compile @p spec's model for @p policy on @p core (cached upstream
 * by the benches; this is a pure function). */
CompiledModel compileFor(const TenantSpec &spec, PolicyKind policy,
                         const NpuCoreConfig &core);

/** The nine workload pairs of §V-A, in paper order. */
struct WorkloadPair
{
    const char *label;
    ModelId w1;
    ModelId w2;
    unsigned batch1;
    unsigned batch2;
    const char *contention; ///< "low" / "medium" / "high"
};

/** Fig. 19-23 pair list (batch 32; 8 for MRCNN and SMask). */
const std::vector<WorkloadPair> &evaluationPairs();

} // namespace neu10

#endif // NEU10_RUNTIME_SERVING_HH
