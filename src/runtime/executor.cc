#include "runtime/executor.hh"

#include "common/logging.hh"

namespace neu10
{

SimCommandExecutor::SimCommandExecutor(EventQueue &queue,
                                       NpuCoreSim &core, double pcie_bps)
    : queue_(queue), core_(core),
      pcieBytesPerCycle_(pcie_bps / core.config().freqHz)
{
    NEU10_ASSERT(pcie_bps > 0.0, "PCIe bandwidth must be positive");
}

void
SimCommandExecutor::bindSlot(VnpuId vnpu, std::uint32_t slot)
{
    slots_[vnpu] = slot;
}

void
SimCommandExecutor::execute(VnpuId vnpu, const Command &cmd,
                            Completion done)
{
    auto it = slots_.find(vnpu);
    if (it == slots_.end())
        fatal("vNPU %u is not bound to a core slot", vnpu);
    const std::uint32_t slot = it->second;

    switch (cmd.kind) {
      case CommandKind::MemcpyHostToDevice:
      case CommandKind::MemcpyDeviceToHost: {
        const Cycles dur =
            static_cast<double>(cmd.size) / pcieBytesPerCycle_;
        const std::uint64_t cid = cmd.id;
        queue_.schedule(queue_.now() + dur,
                        [done, cid](Cycles) { done(cid); },
                        EventPriority::Completion);
        break;
      }
      case CommandKind::Launch: {
        const std::uint64_t cid = cmd.id;
        core_.submit(slot, cmd.program,
                     [done, cid](const RequestResult &) { done(cid); });
        break;
      }
      case CommandKind::Fence: {
        const std::uint64_t cid = cmd.id;
        queue_.schedule(queue_.now(),
                        [done, cid](Cycles) { done(cid); },
                        EventPriority::Completion);
        break;
      }
    }
}

} // namespace neu10
