#include "runtime/parallel.hh"

#include "common/logging.hh"
#include "models/zoo.hh"

namespace neu10
{

DataParallelRunner::DataParallelRunner(std::vector<Shard> shards)
    : shards_(std::move(shards))
{
    NEU10_ASSERT(!shards_.empty(), "need at least one shard");
    for (const auto &s : shards_) {
        NEU10_ASSERT(s.core != nullptr && s.program != nullptr,
                     "shard needs a core and a program");
    }
}

void
DataParallelRunner::submit(Callback cb)
{
    auto pending = std::make_shared<Pending>();
    pending->remaining = shards_.size();
    pending->cb = std::move(cb);
    inflight_.push_back(pending);

    for (const auto &shard : shards_) {
        shard.core->submit(
            shard.slot, shard.program,
            [pending](const RequestResult &r) {
                pending->lastFinish =
                    std::max(pending->lastFinish, r.finishTime);
                if (--pending->remaining == 0 && pending->cb)
                    pending->cb(pending->lastFinish);
            });
    }
}

std::vector<DnnGraph>
splitBatch(ModelId id, unsigned batch, unsigned shards)
{
    NEU10_ASSERT(shards > 0, "need at least one shard");
    NEU10_ASSERT(batch >= shards,
                 "cannot split batch %u across %u shards", batch,
                 shards);
    std::vector<DnnGraph> out;
    unsigned left = batch;
    for (unsigned s = 0; s < shards; ++s) {
        const unsigned share =
            (left + (shards - s) - 1) / (shards - s);
        out.push_back(buildModel(id, share));
        left -= share;
    }
    return out;
}

} // namespace neu10
