/**
 * @file
 * Multi-chip / multi-core data-parallel inference (§III-A, §IV).
 *
 * The guest ML framework's frontend splits a batch across the cores of
 * a multi-core vNPU exactly as it does on physical NPUs ("TensorFlow
 * already handles data parallelism across physical NPUs. It can work
 * in the same way with vNPUs"). DataParallelRunner models that: one
 * request fans out as per-core sub-batches and completes when the
 * slowest shard does.
 */

#ifndef NEU10_RUNTIME_PARALLEL_HH
#define NEU10_RUNTIME_PARALLEL_HH

#include <functional>
#include <memory>
#include <vector>

#include "compiler/lower.hh"
#include "models/zoo.hh"
#include "npu/core_sim.hh"

namespace neu10
{

/** Fans one logical request out across several core simulators. */
class DataParallelRunner
{
  public:
    /**
     * @param cores  one entry per vNPU core: the core simulator and
     *               the slot this tenant occupies on it.
     */
    struct Shard
    {
        NpuCoreSim *core;
        std::uint32_t slot;
        const CompiledModel *program; ///< this shard's sub-batch
    };

    explicit DataParallelRunner(std::vector<Shard> shards);

    using Callback = std::function<void(Cycles finish_time)>;

    /**
     * Submit one data-parallel request: every shard gets its
     * sub-batch; @p cb fires when the slowest shard finishes.
     */
    void submit(Callback cb);

    size_t shardCount() const { return shards_.size(); }

  private:
    struct Pending
    {
        size_t remaining;
        Cycles lastFinish = 0.0;
        Callback cb;
    };

    std::vector<Shard> shards_;
    std::vector<std::shared_ptr<Pending>> inflight_;
};

/**
 * Split a model into @p shards per-core sub-batch graphs (batch is
 * divided as evenly as possible; every shard gets at least 1).
 */
std::vector<DnnGraph> splitBatch(ModelId id, unsigned batch,
                                 unsigned shards);

} // namespace neu10

#endif // NEU10_RUNTIME_PARALLEL_HH
