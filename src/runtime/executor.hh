/**
 * @file
 * Device-side command execution backed by the core simulator.
 *
 * Bridges the virt layer's command path (driver -> command buffer ->
 * device) to NpuCoreSim: Launch commands become request submissions on
 * the vNPU's slot; memcpy commands occupy the host link for
 * size/bandwidth cycles. This is the component that makes the Fig. 11
 * end-to-end flow runnable in the examples and integration tests.
 */

#ifndef NEU10_RUNTIME_EXECUTOR_HH
#define NEU10_RUNTIME_EXECUTOR_HH

#include <unordered_map>

#include "npu/core_sim.hh"
#include "virt/driver.hh"

namespace neu10
{

/** Executes guest commands on a simulated core. */
class SimCommandExecutor : public CommandExecutor
{
  public:
    /**
     * @param queue         shared event queue.
     * @param core          the simulated physical core.
     * @param pcie_bps      host-link bandwidth for memcpy commands.
     */
    SimCommandExecutor(EventQueue &queue, NpuCoreSim &core,
                       double pcie_bps = 64e9);

    /** Bind a vNPU id to its slot index on the core. */
    void bindSlot(VnpuId vnpu, std::uint32_t slot);

    void execute(VnpuId vnpu, const Command &cmd,
                 Completion done) override;

  private:
    EventQueue &queue_;
    NpuCoreSim &core_;
    double pcieBytesPerCycle_;
    std::unordered_map<VnpuId, std::uint32_t> slots_;
};

} // namespace neu10

#endif // NEU10_RUNTIME_EXECUTOR_HH
