#include "runtime/serving.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/logging.hh"
#include "llm/llm_serving.hh"
#include "sim/clock.hh"

namespace neu10
{

double
ServingResult::totalThroughput() const
{
    double total = 0.0;
    for (const auto &t : tenants)
        total += t.throughput;
    return total;
}

CompiledModel
compileFor(const TenantSpec &spec, PolicyKind policy,
           const NpuCoreConfig &core)
{
    const DnnGraph graph = buildModel(spec.model, spec.batch);
    if (policyUsesNeuIsa(policy)) {
        // NeuISA binaries are compiled against the physical core shape
        // so any engine allocation can execute them (§III-D).
        return lowerToNeuIsa(graph, core.numMes, core.numVes,
                             core.machine());
    }
    return lowerToVliw(graph, core.numMes, core.numVes, core.machine());
}

namespace
{

/** Closed loop (§V-A): resubmit on completion until every tenant
 * reaches minRequests. @return the measurement stop time. */
Cycles
driveClosedLoop(const ServingConfig &config,
                const std::vector<const CompiledModel *> &programs,
                EventQueue &queue, NpuCoreSim &core,
                ServingResult &result)
{
    bool stopped = false;
    Cycles stop_time = 0.0;
    TraceBuffer &trace = result.trace;

    auto slowest_done = [&] {
        std::uint64_t least = ~0ull;
        for (const auto &t : result.tenants)
            least = std::min(least, t.completed);
        return least;
    };

    // Closed-loop pumps: resubmit on completion until stopped.
    std::function<void(std::uint32_t)> pump = [&](std::uint32_t slot) {
        core.submit(
            static_cast<std::uint32_t>(slot), programs[slot],
            [&, slot](const RequestResult &r) {
                TenantResult &tr = result.tenants[slot];
                if (!stopped) {
                    ++tr.completed;
                    tr.latencyCycles.add(r.latency());
                    trace.instant(r.finishTime, "request", "complete",
                                  "tenant", slot, "latency",
                                  r.latency());
                    if (config.captureOpTimings)
                        tr.opTimings.push_back(r.opTimings);
                }
                if (!stopped &&
                    slowest_done() >= config.minRequests) {
                    stopped = true;
                    stop_time = queue.now();
                    return;
                }
                if (!stopped)
                    pump(slot);
            });
    };

    for (std::uint32_t i = 0; i < config.tenants.size(); ++i)
        for (unsigned k = 0; k < config.tenants[i].outstanding; ++k)
            pump(i);

    // Drive the simulation until the stop condition or the time cap.
    // The cap is exclusive: an event at or after it never runs (the
    // former now()-based check let one event overshoot arbitrarily
    // far past the cap, inflating the measurement window).
    while (!stopped && !queue.empty() &&
           queue.nextEventTime() < config.maxCycles) {
        queue.step();
    }
    if (!stopped) {
        // Capped run: the partial result is still well-formed — every
        // tenant's Distribution holds exactly its completions so far
        // (possibly none; percentile() is defined on empty), and the
        // window is the last event processed inside the cap.
        stop_time = queue.now();
        logContextCycle(queue.now());
        warn("serving run hit the %.0f-cycle cap before every tenant "
             "completed %u requests (slowest tenant finished %llu)",
             config.maxCycles, config.minRequests,
             static_cast<unsigned long long>(slowest_done()));
    }
    return stop_time;
}

/** Open loop: precomputed arrival streams drive submissions through
 * per-tenant admission control (backlog capped at maxQueueDepth);
 * the run drains every admitted request, stops at stopAtCycles (an
 * epoch boundary — unserved admitted work is reported as backlog),
 * or hits the cycle cap. @return the measurement window. */
Cycles
driveOpenLoop(const ServingConfig &config,
              const std::vector<const CompiledModel *> &programs,
              EventQueue &queue, NpuCoreSim &core,
              ServingResult &result)
{
    const size_t n = config.tenants.size();
    const unsigned depth = std::max(1u, config.corePipelineDepth);
    TraceBuffer &trace = result.trace;

    // Async-span ids for overlapping request lifecycles: a request's
    // queue/execute spans can interleave with its neighbours' on the
    // same track, so they are recorded as Chrome async events keyed by
    // ((tenant + 1) << 40) + per-tenant sequence number. Ids stay
    // below 2^56; the fleet salts the top byte per epoch when merging.
    auto span_id = [](std::uint32_t i, std::uint64_t rid) {
        return ((static_cast<std::uint64_t>(i) + 1) << 40) + rid;
    };
    // Admitted requests live in two stages: a host-side FIFO of
    // arrival stamps (`waiting`) and the core simulator itself
    // (`in_core`, at most corePipelineDepth per tenant). `inflight`
    // counts both — that is what admission control sees.
    std::vector<std::uint64_t> inflight(n, 0);
    std::vector<std::deque<Cycles>> waiting(n);
    std::vector<unsigned> in_core(n, 0);
    // Original arrival stamp of every core-resident request, keyed by
    // a per-tenant sequence number: completions erase their entry,
    // and whatever remains at an epoch-boundary stop joins the
    // waiting FIFO as the carried backlog.
    std::vector<std::unordered_map<std::uint64_t, Cycles>> open(n);
    std::vector<std::uint64_t> seq(n, 0);

    // Earliest core-submission time per tenant (migration stalls).
    // Work arriving earlier waits in the host FIFO — never in
    // beyond-the-boundary events, so an epoch stop always sees it.
    std::vector<Cycles> start_at(n, 0.0);

    // Arrivals actually delivered so far, per tenant. When the cycle
    // cap cuts the run short, the tail of each stream never fires as
    // an event — those requests are counted below so request
    // conservation (submitted == completed + rejected + backlog)
    // survives a capped run.
    std::vector<size_t> delivered(n, 0);

    // Forward-declared so the completion callback can refill the
    // core-side window.
    std::function<void(std::uint32_t)> pump;

    auto submit_one = [&](std::uint32_t i, Cycles stamp) {
        const std::uint64_t rid = seq[i]++;
        open[i].emplace(rid, stamp);
        ++in_core[i];
        core.submit(i, programs[i],
                    [&, i, rid](const RequestResult &r) {
                        TenantResult &tr = result.tenants[i];
                        --inflight[i];
                        --in_core[i];
                        // Latency from the original arrival stamp, so
                        // host-side queueing and pre-submission holds
                        // (start offsets, carried epochs) count
                        // toward the tail and the SLO.
                        const Cycles lat =
                            r.finishTime - open[i].at(rid);
                        // Lifecycle spans are recorded at completion,
                        // when the whole arc is known: host-side wait
                        // (original stamp to core submission), then
                        // execution. Carried stamps can be negative —
                        // the fleet re-anchors, the export clamps.
                        trace.asyncSpan(span_id(i, rid), open[i].at(rid),
                                        r.submitTime, "request", "queue",
                                        "tenant", i);
                        trace.asyncSpan(span_id(i, rid), r.submitTime,
                                        r.finishTime, "request",
                                        "execute", "tenant", i);
                        trace.instant(r.finishTime, "request",
                                      "complete", "tenant", i,
                                      "latency", lat);
                        open[i].erase(rid);
                        ++tr.completed;
                        tr.latencyCycles.add(lat);
                        if (lat <= config.tenants[i].sloCycles)
                            ++tr.sloMet;
                        if (config.captureOpTimings)
                            tr.opTimings.push_back(r.opTimings);
                        pump(i);
                    });
    };

    pump = [&](std::uint32_t i) {
        if (queue.now() < start_at[i])
            return; // still stalled (migration cost); wake below
        while (in_core[i] < depth && !waiting[i].empty()) {
            const Cycles stamp = waiting[i].front();
            waiting[i].pop_front();
            submit_one(i, stamp);
        }
    };

    auto on_arrival = [&](std::uint32_t i, Cycles stamp) {
        TenantResult &tr = result.tenants[i];
        ++delivered[i];
        ++tr.submitted;
        if (inflight[i] >= config.tenants[i].maxQueueDepth) {
            ++tr.rejected;
            trace.instant(queue.now(), "request", "reject", "tenant",
                          i, "depth", inflight[i]);
            return;
        }
        ++inflight[i];
        trace.instant(queue.now(), "request", "admit", "tenant", i,
                      "depth", inflight[i]);
        waiting[i].push_back(stamp);
        pump(i);
    };

    for (std::uint32_t i = 0; i < n; ++i) {
        const TenantSpec &ts = config.tenants[i];
        start_at[i] = ts.startOffsetCycles;
        // Carried backlog was admitted in an earlier epoch: re-enter
        // it into the host FIFO right away, bypassing admission but
        // counting toward the depth fresh arrivals see. The pump
        // won't touch it before the start offset.
        for (Cycles stamp : ts.backlog) {
            ++inflight[i];
            queue.schedule(0.0,
                           [&, i, stamp](Cycles) {
                               waiting[i].push_back(stamp);
                               pump(i);
                           },
                           EventPriority::Arrival);
        }
        // Negative stamps (arrivals held through an outage) are
        // delivered at t = 0 in stream order; the original stamp
        // still prices their latency and SLO.
        for (Cycles when : ts.arrivals)
            queue.schedule(std::max(0.0, when),
                           [&, i, when](Cycles) {
                               on_arrival(i, when);
                           },
                           EventPriority::Arrival);
        if (start_at[i] > 0.0)
            queue.schedule(start_at[i],
                           [&, i](Cycles) { pump(i); },
                           EventPriority::Arrival);
    }

    // Both stops are exclusive boundaries: no event at or after
    // stopAtCycles (epoch boundary) or maxCycles (runaway cap) runs,
    // so an arrival stamped exactly on either line is outside this
    // run's window — the same strict comparison runFleet uses when
    // it slices arrival streams into epochs.
    const Cycles stop_before =
        std::min(config.stopAtCycles, config.maxCycles);
    while (!queue.empty() && queue.nextEventTime() < stop_before)
        queue.step();

    // A boundary hand-off only exists while the boundary itself is
    // inside the cap; with maxCycles < stopAtCycles the cap is the
    // terminal stop and the shed accounting below must run (and the
    // window must not report the unreached boundary).
    const bool at_boundary =
        !queue.empty() && config.stopAtCycles <= config.maxCycles &&
        queue.nextEventTime() >= config.stopAtCycles;
    if (!queue.empty() && !at_boundary) {
        logContextCycle(queue.now());
        warn("open-loop run hit the %.0f-cycle cap with %zu events "
             "pending", config.maxCycles, queue.pending());
        // The cap truncated the run mid-stream: arrivals whose
        // delivery events never fired were still offered by the
        // traffic source, so count them submitted-and-rejected
        // rather than letting them vanish (a capped core in a fleet
        // epoch must not leak requests from the conservation books).
        for (std::uint32_t i = 0; i < n; ++i) {
            TenantResult &tr = result.tenants[i];
            const size_t total = config.tenants[i].arrivals.size();
            NEU10_ASSERT(delivered[i] <= total,
                         "delivered more arrivals than the stream "
                         "holds");
            tr.submitted += total - delivered[i];
            tr.rejected += total - delivered[i];
        }
    }

    // Report whatever is still admitted-but-unserved — host-queued or
    // core-resident — so an epoch-based caller can carry it over
    // (sorted for determinism).
    for (std::uint32_t i = 0; i < n; ++i) {
        TenantResult &tr = result.tenants[i];
        tr.backlog.reserve(open[i].size() + waiting[i].size());
        // neu10-lint: allow(unordered-iter): hash-order here is
        // harmless — the merged backlog is sorted just below before
        // anything reads it.
        for (const auto &[rid, stamp] : open[i])
            tr.backlog.push_back(stamp);
        tr.backlog.insert(tr.backlog.end(), waiting[i].begin(),
                          waiting[i].end());
        std::sort(tr.backlog.begin(), tr.backlog.end());
    }
    // An epoch-bounded run is measured over the whole epoch window,
    // not just until its last processed event.
    return at_boundary ? config.stopAtCycles : queue.now();
}

} // anonymous namespace

ServingResult
runServing(const ServingConfig &config)
{
    NEU10_ASSERT(!config.tenants.empty(), "experiment needs tenants");

    // Token-level LLM serving bypasses the op-graph path entirely:
    // the analytic iteration loop in src/llm/ prices prefill/decode
    // phases directly (no event queue, no compiled program).
    if (config.mode == ServingMode::LlmContinuous)
        return llm::runLlmServing(config);

    // Compile every tenant's model once — or take the caller's
    // precompiled, shared binary (TenantSpec::program).
    std::vector<CompiledModel> compiled;
    compiled.reserve(config.tenants.size());
    std::vector<const CompiledModel *> programs;
    programs.reserve(config.tenants.size());
    for (const auto &spec : config.tenants) {
        if (spec.program != nullptr) {
            programs.push_back(spec.program);
        } else {
            compiled.push_back(
                compileFor(spec, config.policy, config.core));
            programs.push_back(&compiled.back());
        }
    }

    // Engine slots per tenant.
    std::vector<VnpuSlot> slots;
    slots.reserve(config.tenants.size());
    for (const auto &spec : config.tenants) {
        VnpuSlot s;
        s.nMes = spec.nMes;
        s.nVes = spec.nVes;
        s.priority = spec.priority;
        slots.push_back(s);
    }

    EventQueue queue;
    NpuCoreSim core(queue, config.core, makePolicy(config.policy),
                    std::move(slots));
    core.setEngine(config.engine);
    core.setCaptureOpTimings(config.captureOpTimings);
    core.setCaptureAssignment(config.captureAssignment);

    ServingResult result;
    if (config.trace.enabled) {
        result.trace.enable(true);
        core.setTrace(&result.trace, config.trace.engineEvents);
    }
    result.policy = policyName(config.policy);
    result.tenants.resize(config.tenants.size());
    for (size_t i = 0; i < config.tenants.size(); ++i)
        result.tenants[i].model = modelAbbrev(config.tenants[i].model);

    const Cycles stop_time =
        config.mode == ServingMode::OpenLoop
            ? driveOpenLoop(config, programs, queue, core, result)
            : driveClosedLoop(config, programs, queue, core, result);

    const Cycles window = std::max(1.0, stop_time);
    const Clock clock(config.core.freqHz);
    result.makespan = stop_time;
    result.meUsefulUtil = core.meUseful().utilization(0.0, window);
    result.meHeldUtil = core.meHeld().utilization(0.0, window);
    result.veUtil = core.veBusy().utilization(0.0, window);
    result.avgHbmBytesPerCycle = core.hbmBytesTransferred() / window;

    for (size_t i = 0; i < result.tenants.size(); ++i) {
        TenantResult &tr = result.tenants[i];
        const VnpuSlot &slot = core.slots()[i];
        tr.throughput = tr.completed / clock.toSeconds(window);
        tr.goodput = tr.sloMet / clock.toSeconds(window);
        tr.blockedFrac = slot.blockedByHarvest / window;
        tr.reclaims = slot.reclaimPreemptions;
        if (config.captureAssignment) {
            tr.assignedMes = slot.assignedMes;
            tr.assignedVes = slot.assignedVes;
        }
    }
    return result;
}

const std::vector<WorkloadPair> &
evaluationPairs()
{
    static const std::vector<WorkloadPair> pairs = {
        {"DLRM+SMask", ModelId::Dlrm, ModelId::ShapeMask, 32, 8, "low"},
        {"DLRM+RtNt", ModelId::Dlrm, ModelId::RetinaNet, 32, 32, "low"},
        {"NCF+RsNt", ModelId::Ncf, ModelId::ResNet, 32, 32, "low"},
        {"ENet+SMask", ModelId::EfficientNet, ModelId::ShapeMask, 32, 8,
         "medium"},
        {"BERT+ENet", ModelId::Bert, ModelId::EfficientNet, 32, 32,
         "medium"},
        {"ENet+MRCN", ModelId::EfficientNet, ModelId::MaskRcnn, 32, 8,
         "medium"},
        {"ENet+TFMR", ModelId::EfficientNet, ModelId::Transformer, 32,
         32, "high"},
        {"MNIST+RtNt", ModelId::Mnist, ModelId::RetinaNet, 32, 32,
         "high"},
        {"RNRS+RtNt", ModelId::ResNetRs, ModelId::RetinaNet, 32, 32,
         "high"},
    };
    return pairs;
}

} // namespace neu10
