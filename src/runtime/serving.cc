#include "runtime/serving.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/clock.hh"

namespace neu10
{

double
ServingResult::totalThroughput() const
{
    double total = 0.0;
    for (const auto &t : tenants)
        total += t.throughput;
    return total;
}

CompiledModel
compileFor(const TenantSpec &spec, PolicyKind policy,
           const NpuCoreConfig &core)
{
    const DnnGraph graph = buildModel(spec.model, spec.batch);
    if (policyUsesNeuIsa(policy)) {
        // NeuISA binaries are compiled against the physical core shape
        // so any engine allocation can execute them (§III-D).
        return lowerToNeuIsa(graph, core.numMes, core.numVes,
                             core.machine());
    }
    return lowerToVliw(graph, core.numMes, core.numVes, core.machine());
}

namespace
{

/** Closed loop (§V-A): resubmit on completion until every tenant
 * reaches minRequests. @return the measurement stop time. */
Cycles
driveClosedLoop(const ServingConfig &config,
                const std::vector<CompiledModel> &programs,
                EventQueue &queue, NpuCoreSim &core,
                ServingResult &result)
{
    bool stopped = false;
    Cycles stop_time = 0.0;

    auto slowest_done = [&] {
        std::uint64_t least = ~0ull;
        for (const auto &t : result.tenants)
            least = std::min(least, t.completed);
        return least;
    };

    // Closed-loop pumps: resubmit on completion until stopped.
    std::function<void(std::uint32_t)> pump = [&](std::uint32_t slot) {
        core.submit(
            static_cast<std::uint32_t>(slot), &programs[slot],
            [&, slot](const RequestResult &r) {
                TenantResult &tr = result.tenants[slot];
                if (!stopped) {
                    ++tr.completed;
                    tr.latencyCycles.add(r.latency());
                    if (config.captureOpTimings)
                        tr.opTimings.push_back(r.opTimings);
                }
                if (!stopped &&
                    slowest_done() >= config.minRequests) {
                    stopped = true;
                    stop_time = queue.now();
                    return;
                }
                if (!stopped)
                    pump(slot);
            });
    };

    for (std::uint32_t i = 0; i < config.tenants.size(); ++i)
        for (unsigned k = 0; k < config.tenants[i].outstanding; ++k)
            pump(i);

    // Drive the simulation until the stop condition or the time cap.
    while (!stopped && !queue.empty() &&
           queue.now() < config.maxCycles) {
        queue.step();
    }
    if (!stopped) {
        stop_time = queue.now();
        warn("serving run hit the %g-cycle cap before %u requests",
             config.maxCycles, config.minRequests);
    }
    return stop_time;
}

/** Open loop: precomputed arrival streams drive submissions through
 * per-tenant admission control (backlog capped at maxQueueDepth);
 * the run drains every admitted request or hits the cycle cap.
 * @return the drain time. */
Cycles
driveOpenLoop(const ServingConfig &config,
              const std::vector<CompiledModel> &programs,
              EventQueue &queue, NpuCoreSim &core,
              ServingResult &result)
{
    std::vector<std::uint64_t> inflight(config.tenants.size(), 0);

    auto on_complete = [&](std::uint32_t i, const RequestResult &r) {
        TenantResult &tr = result.tenants[i];
        --inflight[i];
        ++tr.completed;
        tr.latencyCycles.add(r.latency());
        if (r.latency() <= config.tenants[i].sloCycles)
            ++tr.sloMet;
        if (config.captureOpTimings)
            tr.opTimings.push_back(r.opTimings);
    };

    auto on_arrival = [&](std::uint32_t i) {
        TenantResult &tr = result.tenants[i];
        ++tr.submitted;
        if (inflight[i] >= config.tenants[i].maxQueueDepth) {
            ++tr.rejected;
            return;
        }
        ++inflight[i];
        core.submit(i, &programs[i],
                    [&, i](const RequestResult &r) {
                        on_complete(i, r);
                    });
    };

    for (std::uint32_t i = 0; i < config.tenants.size(); ++i)
        for (Cycles when : config.tenants[i].arrivals)
            queue.schedule(when, [&, i](Cycles) { on_arrival(i); },
                           EventPriority::Arrival);

    while (!queue.empty() && queue.now() < config.maxCycles)
        queue.step();
    if (!queue.empty())
        warn("open-loop run hit the %g-cycle cap with %zu events "
             "pending", config.maxCycles, queue.pending());
    return queue.now();
}

} // anonymous namespace

ServingResult
runServing(const ServingConfig &config)
{
    NEU10_ASSERT(!config.tenants.empty(), "experiment needs tenants");

    // Compile every tenant's model once.
    std::vector<CompiledModel> programs;
    programs.reserve(config.tenants.size());
    for (const auto &spec : config.tenants)
        programs.push_back(compileFor(spec, config.policy, config.core));

    // Engine slots per tenant.
    std::vector<VnpuSlot> slots;
    for (const auto &spec : config.tenants) {
        VnpuSlot s;
        s.nMes = spec.nMes;
        s.nVes = spec.nVes;
        s.priority = spec.priority;
        slots.push_back(s);
    }

    EventQueue queue;
    NpuCoreSim core(queue, config.core, makePolicy(config.policy),
                    std::move(slots));
    core.setCaptureOpTimings(config.captureOpTimings);
    core.setCaptureAssignment(config.captureAssignment);

    ServingResult result;
    result.policy = policyName(config.policy);
    result.tenants.resize(config.tenants.size());
    for (size_t i = 0; i < config.tenants.size(); ++i)
        result.tenants[i].model = modelAbbrev(config.tenants[i].model);

    const Cycles stop_time =
        config.mode == ServingMode::OpenLoop
            ? driveOpenLoop(config, programs, queue, core, result)
            : driveClosedLoop(config, programs, queue, core, result);

    const Cycles window = std::max(1.0, stop_time);
    const Clock clock(config.core.freqHz);
    result.makespan = stop_time;
    result.meUsefulUtil = core.meUseful().utilization(0.0, window);
    result.meHeldUtil = core.meHeld().utilization(0.0, window);
    result.veUtil = core.veBusy().utilization(0.0, window);
    result.avgHbmBytesPerCycle = core.hbmBytesTransferred() / window;

    for (size_t i = 0; i < result.tenants.size(); ++i) {
        TenantResult &tr = result.tenants[i];
        const VnpuSlot &slot = core.slots()[i];
        tr.throughput = tr.completed / clock.toSeconds(window);
        tr.goodput = tr.sloMet / clock.toSeconds(window);
        tr.blockedFrac = slot.blockedByHarvest / window;
        tr.reclaims = slot.reclaimPreemptions;
        if (config.captureAssignment) {
            tr.assignedMes = slot.assignedMes;
            tr.assignedVes = slot.assignedVes;
        }
    }
    return result;
}

const std::vector<WorkloadPair> &
evaluationPairs()
{
    static const std::vector<WorkloadPair> pairs = {
        {"DLRM+SMask", ModelId::Dlrm, ModelId::ShapeMask, 32, 8, "low"},
        {"DLRM+RtNt", ModelId::Dlrm, ModelId::RetinaNet, 32, 32, "low"},
        {"NCF+RsNt", ModelId::Ncf, ModelId::ResNet, 32, 32, "low"},
        {"ENet+SMask", ModelId::EfficientNet, ModelId::ShapeMask, 32, 8,
         "medium"},
        {"BERT+ENet", ModelId::Bert, ModelId::EfficientNet, 32, 32,
         "medium"},
        {"ENet+MRCN", ModelId::EfficientNet, ModelId::MaskRcnn, 32, 8,
         "medium"},
        {"ENet+TFMR", ModelId::EfficientNet, ModelId::Transformer, 32,
         32, "high"},
        {"MNIST+RtNt", ModelId::Mnist, ModelId::RetinaNet, 32, 32,
         "high"},
        {"RNRS+RtNt", ModelId::ResNetRs, ModelId::RetinaNet, 32, 32,
         "high"},
    };
    return pairs;
}

} // namespace neu10
