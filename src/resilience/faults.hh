/**
 * @file
 * Seeded fault injection for fleet-scale resilience experiments.
 *
 * TPU-scale deployments treat chip and board loss as routine (Jouppi
 * et al., ISCA'17): a serving fleet that reports SLO numbers over a
 * failure-free horizon overstates every one of them. This module
 * synthesizes deterministic *failure traces* against a fleet topology
 * so the cluster engine (cluster/fleet) can rehearse hardware faults
 * the way cluster/traffic rehearses request streams:
 *
 *  - TransientMmio / TransientDma: a control-register access or DMA
 *    transfer fails once and is retried; the affected core stalls for
 *    the event's (short) duration but no state is lost. Models ECC
 *    hiccups, link CRC retries, dropped doorbells.
 *  - CoreStall: one physical core wedges (clock-gated, firmware hang)
 *    and is out for the event's duration, then returns healed. Every
 *    vNPU resident there loses its device-side context.
 *  - BoardLoss: a whole board drops off the fabric (power trip, PCIe
 *    surprise-removal) taking all of its cores down; a later Repair
 *    event — or the event's duration elapsing — brings it back.
 *  - Repair: explicit end of an earlier BoardLoss on the same board
 *    (hand-written traces; generated traces encode repair through
 *    durations instead).
 *
 * Generation is seeded exactly like cluster/traffic: every stochastic
 * stream draws from a neu10::Rng sub-seeded per (kind, core-or-board),
 * so equal (spec, topology, horizon) triples yield bit-identical
 * traces and adding a board never reshuffles the faults of another.
 *
 * FaultTimeline folds a trace into queryable per-core state — down
 * intervals, earliest fatal fault in a window, summed transient
 * stalls — which is what the epoch-boundary failover controller
 * actually consumes.
 */

#ifndef NEU10_RESILIENCE_FAULTS_HH
#define NEU10_RESILIENCE_FAULTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/trace.hh"

namespace neu10
{

/** Fault families (see file doc). */
enum class FaultKind
{
    TransientMmio = 0, ///< retried MMIO access, short stall
    TransientDma,      ///< retried DMA transfer, short stall
    CoreStall,         ///< one core out for durationCycles
    BoardLoss,         ///< every core of one board out
    Repair,            ///< explicit end of a BoardLoss
};

/** Human-readable kind name ("transient-mmio", ...). */
std::string faultKindName(FaultKind kind);

/** Parse a kind name (case-insensitive). @throws FatalError. */
FaultKind faultKindFromName(const std::string &name);

/** True for faults that kill device-side vNPU state (core/board). */
bool faultIsFatal(FaultKind kind);

/** One injected fault. Core-scoped kinds address a fleet-wide core
 * index; board-scoped kinds (BoardLoss / Repair) address a board. */
struct FaultEvent
{
    Cycles at = 0.0;        ///< injection time, cycles
    FaultKind kind = FaultKind::TransientMmio;

    /** Fleet-wide core for TransientMmio/TransientDma/CoreStall;
     * kInvalidCore for board-scoped events. */
    CoreId core = kInvalidCore;

    /** Board for BoardLoss/Repair; unused for core-scoped events. */
    unsigned board = 0;

    /** Outage length: stall time for transients and CoreStall, time
     * to repair for BoardLoss (kCyclesInf = until an explicit Repair
     * event, or forever). Ignored by Repair. */
    Cycles durationCycles = 0.0;
};

/** The board/core shape of the fleet the faults are injected into. */
struct FleetTopology
{
    unsigned numBoards = 1;
    unsigned coresPerBoard = 4;

    unsigned
    totalCores() const
    {
        return numBoards * coresPerBoard;
    }

    unsigned
    boardOf(CoreId core) const
    {
        return core / coresPerBoard;
    }
};

/** Stochastic fault-trace description. Rates are mean times between
 * failures in *simulated seconds* per core (or per board); 0 disables
 * that family. Durations are seconds; generateFaultTrace() converts
 * to cycles with the clock it is given. */
struct FaultSpec
{
    std::uint64_t seed = 1;

    /** Per-core MTBF of transient MMIO / DMA errors, seconds. */
    double transientMmioMtbfSec = 0.0;
    double transientDmaMtbfSec = 0.0;

    /** Stall cost of one transient error, seconds (retry latency);
     * <= 0 means the retry is free (zero stall). */
    double transientCostSec = 1e-5;

    /** Per-core MTBF of a core stall, seconds. */
    double coreStallMtbfSec = 0.0;

    /** Mean core-stall outage, seconds (exponential). */
    double coreStallMeanSec = 1e-3;

    /** Per-board MTBF of whole-board loss, seconds. */
    double boardLossMtbfSec = 0.0;

    /** Mean board repair time, seconds (exponential); <= 0 means the
     * board never comes back within the run. */
    double boardRepairMeanSec = 0.0;
};

/**
 * Generate the fault trace described by @p spec against @p topo over
 * [0, @p horizon) cycles on a @p freq_hz clock. Deterministic in
 * (spec, topo, horizon, freq): each (kind, core-or-board) pair draws
 * from its own sub-seeded Rng. Events are sorted by (time, core,
 * kind) so downstream iteration is reproducible.
 */
std::vector<FaultEvent> generateFaultTrace(const FaultSpec &spec,
                                           const FleetTopology &topo,
                                           Cycles horizon,
                                           double freq_hz);

/**
 * A fault trace folded into queryable per-core state. Built once per
 * fleet run; all queries are const and scan the core's merged down
 * intervals or transient events (fault traces are epoch-scale — a
 * handful of events per core — so linear scans beat index upkeep).
 *
 * Down intervals merge CoreStall outages with the loss intervals of
 * the core's board (a BoardLoss ends at the earliest of its duration
 * elapsing or an explicit Repair of that board). Transient events on
 * a core that is down at that instant are discarded — the core is
 * not executing anything to stall.
 */
class FaultTimeline
{
  public:
    /** Fold @p trace (any order) against @p topo. Events addressing
     * cores/boards outside the topology throw FatalError. */
    FaultTimeline(std::vector<FaultEvent> trace,
                  const FleetTopology &topo);

    /** Earliest fatal fault taking @p core down within [from, to),
     * or kCyclesInf. Only *onsets* count: a core already down at
     * @p from reports kCyclesInf (it cannot fail twice). */
    Cycles fatalOnset(CoreId core, Cycles from, Cycles to) const;

    /** True when @p core is down (stalled or board-lost) at @p t. */
    bool downAt(CoreId core, Cycles t) const;

    /** First instant >= @p t at which @p core is healthy again
     * (@p t itself when already healthy; kCyclesInf = never). */
    Cycles upAgainAt(CoreId core, Cycles t) const;

    /** Cycles of [from, to) during which @p core is down. */
    Cycles downCycles(CoreId core, Cycles from, Cycles to) const;

    /** Summed stall cost of transient faults hitting @p core within
     * [from, to) while it is up. */
    Cycles transientStall(CoreId core, Cycles from, Cycles to) const;

    /** Number of such transient faults. */
    unsigned transientCount(CoreId core, Cycles from,
                            Cycles to) const;

    /** The normalized trace (sorted by time, core, kind). */
    const std::vector<FaultEvent> &events() const { return trace_; }

    /**
     * Record every event with onset before @p horizon as instants on
     * the affected cores' tracks of @p trace: "fault-onset" (fatal
     * kinds), "fault-repair", "fault-transient" — board-scoped events
     * expand to one instant per core of the board, so a track tells
     * the core's whole hardware story by itself. The walk follows
     * the normalized (time, core, kind) order: deterministic bytes.
     */
    void emitTrace(Trace &trace, Cycles horizon) const;

    const FleetTopology &topology() const { return topo_; }

  private:
    struct Interval
    {
        Cycles from = 0.0;
        Cycles to = kCyclesInf;
    };

    const std::vector<Interval> &intervalsOf(CoreId core) const;

    FleetTopology topo_;
    std::vector<FaultEvent> trace_;
    /** Per-core merged down intervals, sorted, non-overlapping. */
    std::vector<std::vector<Interval>> down_;
    /** Per-core transient events (time, stall), sorted by time. */
    std::vector<std::vector<std::pair<Cycles, Cycles>>> transients_;
};

} // namespace neu10

#endif // NEU10_RESILIENCE_FAULTS_HH
