#include "resilience/checkpoint.hh"

#include <algorithm>

#include "common/logging.hh"

namespace neu10
{

VnpuCheckpoint
captureCheckpoint(size_t tenant, TenantId owner, CoreId failed_core,
                  Cycles fault_at, unsigned paid_eus,
                  const VnpuSizing &sizing, const CompiledModel *program,
                  double load, const std::vector<Cycles> &backlog_rel,
                  Cycles epoch_start)
{
    VnpuCheckpoint ckpt;
    ckpt.tenant = tenant;
    ckpt.owner = owner;
    ckpt.failedCore = failed_core;
    ckpt.faultAt = fault_at;
    ckpt.paidEus = paid_eus;
    ckpt.sizing = sizing;
    ckpt.program = program;
    ckpt.load = load;
    ckpt.backlog.reserve(backlog_rel.size());
    for (Cycles stamp : backlog_rel)
        ckpt.backlog.push_back(stamp + epoch_start);
    std::sort(ckpt.backlog.begin(), ckpt.backlog.end());
    return ckpt;
}

RestoreOutcome
restoreCheckpoint(VnpuCheckpoint &ckpt, FleetPlacer &placer,
                  Hypervisor &hv, PlacementPolicy policy,
                  const NpuCoreConfig &core_cfg)
{
    RestoreOutcome out;

    PlacementRequest req;
    req.nMes = ckpt.sizing.config.numMesPerCore;
    req.nVes = ckpt.sizing.config.numVesPerCore;
    req.hbmBytes = ckpt.sizing.config.memSizePerCore;
    req.sramBytes = ckpt.sizing.config.sramSizePerCore;
    req.load = ckpt.load;

    // Try to resize the split for core @p c's residency at the paid
    // budget and commit it there; falls through to false when the
    // re-split does not fit the core.
    auto commit_resplit = [&](CoreId c) {
        const CoreCapacity &cap = placer.cores()[c];
        VnpuSizing updated = ckpt.sizing;
        if (!resplitForResidency(updated, ckpt.paidEus, cap.freeMes,
                                 cap.freeVes, core_cfg))
            return false;
        PlacementRequest resized = req;
        resized.nMes = updated.config.numMesPerCore;
        resized.nVes = updated.config.numVesPerCore;
        resized.sramBytes = updated.config.sramSizePerCore;
        if (!placer.commit(c, resized))
            return false;
        ckpt.sizing = updated;
        req = resized;
        return true;
    };

    CoreId dst = placer.place(req, policy);
    if (dst != kInvalidCore) {
        // The policy found room for the checkpointed split. Re-run
        // the §III-B split against the destination's residency at
        // the paid budget, exactly like an elastic migration:
        // release the just-committed split so the free engines are
        // visible, try the re-split, and fall back to the
        // checkpointed split (which place() already proved feasible)
        // when it does not fit.
        placer.release(dst, req);
        if (!commit_resplit(dst)) {
            const bool ok = placer.commit(dst, req);
            NEU10_ASSERT(ok, "restore destination lost capacity");
        }
    } else {
        // No core hosts the checkpointed split as-is (the failed
        // core's residency shaped it; survivors may have only the
        // complementary engines free). Scan survivors in index order
        // and re-split against each residency — restore is allowed
        // to reshape the vNPU, exactly like a migration.
        for (CoreId c = 0;
             c < placer.cores().size() && dst == kInvalidCore; ++c)
            if (!placer.cores()[c].quarantined && commit_resplit(c))
                dst = c;
        if (dst == kInvalidCore)
            return out;
    }

    out.core = dst;
    out.nMes = req.nMes;
    out.nVes = req.nVes;
    out.vnpu = hv.hcCreateVnpu(ckpt.owner, ckpt.sizing.config,
                               IsolationMode::Hardware, dst);
    return out;
}

} // namespace neu10
