#include "resilience/faults.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strings.hh"

namespace neu10
{

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TransientMmio: return "transient-mmio";
      case FaultKind::TransientDma: return "transient-dma";
      case FaultKind::CoreStall: return "core-stall";
      case FaultKind::BoardLoss: return "board-loss";
      case FaultKind::Repair: return "repair";
    }
    panic("unknown fault kind %d", static_cast<int>(kind));
}

FaultKind
faultKindFromName(const std::string &name)
{
    const std::string low = toLower(name);
    if (low == "transient-mmio")
        return FaultKind::TransientMmio;
    if (low == "transient-dma")
        return FaultKind::TransientDma;
    if (low == "core-stall")
        return FaultKind::CoreStall;
    if (low == "board-loss")
        return FaultKind::BoardLoss;
    if (low == "repair")
        return FaultKind::Repair;
    // Never fall back silently: a scenario-file typo must fail loudly
    // with the full accepted vocabulary, not inject a default fault.
    fatal("unknown fault kind '%s'; valid names are 'transient-mmio', "
          "'transient-dma', 'core-stall', 'board-loss' and 'repair' "
          "(case-insensitive)", name.c_str());
}

bool
faultIsFatal(FaultKind kind)
{
    return kind == FaultKind::CoreStall || kind == FaultKind::BoardLoss;
}

namespace
{

/** Stable sub-seed per (trace seed, kind, unit index): kind and unit
 * are mixed through distinct odd multipliers (no linear combination,
 * so (kind, unit) pairs can never collide) and SplitMix64-finalized,
 * giving every stream an uncorrelated generator. */
std::uint64_t
subSeed(std::uint64_t seed, FaultKind kind, unsigned unit)
{
    std::uint64_t z = seed;
    z ^= (static_cast<std::uint64_t>(kind) + 1u) *
         0x9e3779b97f4a7c15ull;
    z ^= (static_cast<std::uint64_t>(unit) + 1u) *
         0xc2b2ae3d27d4eb4full;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Append a Poisson stream of @p kind events for one unit. */
void
appendStream(std::vector<FaultEvent> &out, FaultKind kind,
             unsigned unit, double mtbf_sec, double duration_mean_sec,
             bool exponential_duration, std::uint64_t seed,
             Cycles horizon, double freq_hz)
{
    if (mtbf_sec <= 0.0)
        return;
    Rng rng(subSeed(seed, kind, unit));
    const bool core_scoped = kind != FaultKind::BoardLoss;
    Cycles t = rng.exponential(mtbf_sec) * freq_hz;
    while (t < horizon) {
        FaultEvent ev;
        ev.at = t;
        ev.kind = kind;
        if (core_scoped)
            ev.core = unit;
        else
            ev.board = unit;
        if (duration_mean_sec > 0.0) {
            const double d = exponential_duration
                                 ? rng.exponential(duration_mean_sec)
                                 : duration_mean_sec;
            ev.durationCycles = d * freq_hz;
        } else {
            // A non-positive duration means "until repaired" — i.e.
            // forever within the run — for the fatal kinds, but a
            // *free* retry for transients: an infinite retry stall
            // would silently halt the tenant, which no one asking
            // for zero-cost transients means.
            ev.durationCycles =
                faultIsFatal(kind) ? kCyclesInf : 0.0;
        }
        out.push_back(ev);
        t += rng.exponential(mtbf_sec) * freq_hz;
    }
}

void
sortTrace(std::vector<FaultEvent> &trace)
{
    std::sort(trace.begin(), trace.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  // Board-scoped events order by board after every
                  // core-scoped event at the same instant.
                  const CoreId ca = a.core, cb = b.core;
                  if (ca != cb)
                      return ca < cb;
                  if (a.board != b.board)
                      return a.board < b.board;
                  return static_cast<int>(a.kind) <
                         static_cast<int>(b.kind);
              });
}

} // anonymous namespace

std::vector<FaultEvent>
generateFaultTrace(const FaultSpec &spec, const FleetTopology &topo,
                   Cycles horizon, double freq_hz)
{
    NEU10_ASSERT(topo.totalCores() > 0, "fault topology has no cores");
    NEU10_ASSERT(freq_hz > 0.0, "fault trace needs a clock");

    std::vector<FaultEvent> trace;
    for (CoreId c = 0; c < topo.totalCores(); ++c) {
        appendStream(trace, FaultKind::TransientMmio, c,
                     spec.transientMmioMtbfSec, spec.transientCostSec,
                     /*exponential_duration=*/false, spec.seed, horizon,
                     freq_hz);
        appendStream(trace, FaultKind::TransientDma, c,
                     spec.transientDmaMtbfSec, spec.transientCostSec,
                     /*exponential_duration=*/false, spec.seed, horizon,
                     freq_hz);
        appendStream(trace, FaultKind::CoreStall, c,
                     spec.coreStallMtbfSec, spec.coreStallMeanSec,
                     /*exponential_duration=*/true, spec.seed, horizon,
                     freq_hz);
    }
    for (unsigned b = 0; b < topo.numBoards; ++b)
        appendStream(trace, FaultKind::BoardLoss, b,
                     spec.boardLossMtbfSec, spec.boardRepairMeanSec,
                     /*exponential_duration=*/true, spec.seed, horizon,
                     freq_hz);
    sortTrace(trace);
    return trace;
}

FaultTimeline::FaultTimeline(std::vector<FaultEvent> trace,
                             const FleetTopology &topo)
    : topo_(topo), trace_(std::move(trace))
{
    NEU10_ASSERT(topo_.totalCores() > 0,
                 "fault timeline needs a topology");
    sortTrace(trace_);
    down_.resize(topo_.totalCores());
    transients_.resize(topo_.totalCores());

    // Board loss intervals: close each at the earliest of its duration
    // elapsing or an explicit Repair of that board.
    std::vector<std::vector<Interval>> board_down(topo_.numBoards);
    for (size_t i = 0; i < trace_.size(); ++i) {
        const FaultEvent &ev = trace_[i];
        switch (ev.kind) {
          case FaultKind::BoardLoss: {
            if (ev.board >= topo_.numBoards)
                fatal("fault event addresses board %u of a %u-board "
                      "fleet", ev.board, topo_.numBoards);
            Cycles end = ev.at + ev.durationCycles;
            for (size_t j = i + 1; j < trace_.size(); ++j) {
                if (trace_[j].kind == FaultKind::Repair &&
                    trace_[j].board == ev.board) {
                    end = std::min(end, trace_[j].at);
                    break;
                }
            }
            board_down[ev.board].push_back(Interval{ev.at, end});
            break;
          }
          case FaultKind::Repair:
            if (ev.board >= topo_.numBoards)
                fatal("repair event addresses board %u of a %u-board "
                      "fleet", ev.board, topo_.numBoards);
            break;
          case FaultKind::CoreStall:
          case FaultKind::TransientMmio:
          case FaultKind::TransientDma:
            if (ev.core >= topo_.totalCores())
                fatal("fault event addresses core %u of a %u-core "
                      "fleet", ev.core, topo_.totalCores());
            break;
        }
    }

    // Merge per-core stalls with the owning board's loss intervals.
    for (CoreId c = 0; c < topo_.totalCores(); ++c) {
        std::vector<Interval> raw = board_down[topo_.boardOf(c)];
        for (const FaultEvent &ev : trace_)
            if (ev.kind == FaultKind::CoreStall && ev.core == c)
                raw.push_back(
                    Interval{ev.at, ev.at + ev.durationCycles});
        std::sort(raw.begin(), raw.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.from < b.from ||
                             (a.from == b.from && a.to < b.to);
                  });
        std::vector<Interval> &merged = down_[c];
        for (const Interval &iv : raw) {
            if (iv.to <= iv.from)
                continue;
            if (!merged.empty() && iv.from <= merged.back().to)
                merged.back().to = std::max(merged.back().to, iv.to);
            else
                merged.push_back(iv);
        }
    }

    // Transient events, dropped while the core is down.
    for (const FaultEvent &ev : trace_) {
        if (ev.kind != FaultKind::TransientMmio &&
            ev.kind != FaultKind::TransientDma)
            continue;
        if (downAt(ev.core, ev.at))
            continue;
        transients_[ev.core].emplace_back(ev.at, ev.durationCycles);
    }
}

const std::vector<FaultTimeline::Interval> &
FaultTimeline::intervalsOf(CoreId core) const
{
    NEU10_ASSERT(core < down_.size(), "bad core id %u", core);
    return down_[core];
}

Cycles
FaultTimeline::fatalOnset(CoreId core, Cycles from, Cycles to) const
{
    for (const Interval &iv : intervalsOf(core))
        if (iv.from >= from && iv.from < to)
            return iv.from;
    return kCyclesInf;
}

bool
FaultTimeline::downAt(CoreId core, Cycles t) const
{
    for (const Interval &iv : intervalsOf(core)) {
        if (iv.from > t)
            break;
        if (t < iv.to)
            return true;
    }
    return false;
}

Cycles
FaultTimeline::upAgainAt(CoreId core, Cycles t) const
{
    Cycles up = t;
    for (const Interval &iv : intervalsOf(core)) {
        if (iv.from > up)
            break;
        if (up < iv.to)
            up = iv.to;
    }
    return up;
}

Cycles
FaultTimeline::downCycles(CoreId core, Cycles from, Cycles to) const
{
    Cycles total = 0.0;
    for (const Interval &iv : intervalsOf(core)) {
        const Cycles lo = std::max(from, iv.from);
        const Cycles hi = std::min(to, iv.to);
        if (hi > lo)
            total += hi - lo;
    }
    return total;
}

Cycles
FaultTimeline::transientStall(CoreId core, Cycles from, Cycles to) const
{
    NEU10_ASSERT(core < transients_.size(), "bad core id %u", core);
    Cycles total = 0.0;
    for (const auto &[at, stall] : transients_[core])
        if (at >= from && at < to)
            total += stall;
    return total;
}

unsigned
FaultTimeline::transientCount(CoreId core, Cycles from, Cycles to) const
{
    NEU10_ASSERT(core < transients_.size(), "bad core id %u", core);
    unsigned n = 0;
    for (const auto &[at, stall] : transients_[core])
        if (at >= from && at < to)
            ++n;
    return n;
}

void
FaultTimeline::emitTrace(Trace &trace, Cycles horizon) const
{
    for (const FaultEvent &ev : trace_) {
        if (ev.at >= horizon)
            continue;
        TraceEvent te;
        te.at = ev.at;
        te.phase = 'i';
        te.cat = "fault";
        switch (ev.kind) {
          case FaultKind::TransientMmio:
          case FaultKind::TransientDma:
            te.name = "fault-transient";
            break;
          case FaultKind::CoreStall:
          case FaultKind::BoardLoss:
            te.name = "fault-onset";
            break;
          case FaultKind::Repair:
            te.name = "fault-repair";
            break;
        }
        if (ev.kind != FaultKind::Repair) {
            te.nargs = 1;
            te.args[0] = {"duration", ev.durationCycles};
        }
        if (ev.core != kInvalidCore) {
            trace.add(static_cast<int>(ev.core), te);
        } else {
            // Board-scoped: one instant per core of the board.
            const CoreId base = ev.board * topo_.coresPerBoard;
            for (unsigned k = 0; k < topo_.coresPerBoard; ++k)
                trace.add(static_cast<int>(base + k), te);
        }
    }
}

} // namespace neu10
