/**
 * @file
 * vNPU checkpoint/restore for failover (companion of resilience/faults).
 *
 * When a fatal fault kills a core, the device-side state of every
 * resident vNPU is gone — but the *serving* state that matters for
 * SLO accounting survives on the host: the admitted-but-unserved
 * backlog with its original arrival stamps (runtime/serving reports
 * it at any stop boundary), the shared precompiled program, and the
 * §III-B sizing that says what the tenant paid for. A checkpoint is
 * exactly that host-side bundle; "taking" one costs nothing extra
 * because the open-loop engine already externalizes it at every epoch
 * boundary — the failover controller just stops the faulted core's
 * epoch at the fault onset instead of the boundary.
 *
 * Restore re-enters the normal provisioning path on a surviving
 * core: the placement policy picks a destination with capacity, the
 * engine split is re-run against that core's free engines
 * (resplitForResidency, falling back to the checkpointed split), the
 * capacity is committed on the placer, and the vNPU is re-created
 * through the hypervisor's pinned-create hypercall — the same
 * destroy + pinned-create route elastic migration uses, so MMIO
 * windows and IOMMU attachments recycle identically. The carried
 * backlog then resumes with original arrival stamps: time spent dead
 * counts against latency and the SLO.
 */

#ifndef NEU10_RESILIENCE_CHECKPOINT_HH
#define NEU10_RESILIENCE_CHECKPOINT_HH

#include <vector>

#include "cluster/placement.hh"
#include "compiler/lower.hh"
#include "virt/hypervisor.hh"
#include "vnpu/allocator.hh"

namespace neu10
{

/** Host-side snapshot of one vNPU's admitted-but-unserved work. */
struct VnpuCheckpoint
{
    /** Caller's tenant index (position in FleetConfig::tenants). */
    size_t tenant = 0;

    /** Hypervisor-facing owner of the re-created vNPU. */
    TenantId owner = 0;

    CoreId failedCore = kInvalidCore;

    /** Absolute fault-onset time (cycles); downtime and MTTR are
     * measured from here. */
    Cycles faultAt = 0.0;

    /** EU budget the tenant pays for — the restore re-split's input,
     * like any migration re-derives the split from the paid budget. */
    unsigned paidEus = 0;

    /** Sizing at capture time (split, memory, profile). Restore may
     * update the split for the destination's residency. */
    VnpuSizing sizing;

    /** Arrival stamps (absolute cycles, sorted non-decreasing) of
     * requests admitted before the fault and not yet served. */
    std::vector<Cycles> backlog;

    /** Shared precompiled binary (non-owning; NeuISA programs are
     * compiled against the physical core shape, so the restored
     * engine grant executes the same code, §III-D). */
    const CompiledModel *program = nullptr;

    /** Offered-load estimate carried to the destination's books. */
    double load = 0.0;
};

/**
 * Capture a checkpoint from a fault-stopped epoch run.
 *
 * @param backlog_rel  TenantResult::backlog of the stopped run:
 *                     stamps relative to the epoch start (possibly
 *                     negative for work carried from earlier epochs).
 * @param epoch_start  absolute start of that epoch, added to every
 *                     stamp so the checkpoint is epoch-independent.
 * Other parameters initialize the corresponding fields verbatim.
 */
VnpuCheckpoint captureCheckpoint(size_t tenant, TenantId owner,
                                 CoreId failed_core, Cycles fault_at,
                                 unsigned paid_eus,
                                 const VnpuSizing &sizing,
                                 const CompiledModel *program,
                                 double load,
                                 const std::vector<Cycles> &backlog_rel,
                                 Cycles epoch_start);

/** Where (and as what) a checkpoint was restored. */
struct RestoreOutcome
{
    CoreId core = kInvalidCore; ///< destination, kInvalidCore = failed
    unsigned nMes = 0;          ///< committed engine split
    unsigned nVes = 0;
    VnpuId vnpu = kInvalidVnpu; ///< re-created instance

    bool
    restored() const
    {
        return core != kInvalidCore;
    }
};

/**
 * Restore @p ckpt on a surviving core.
 *
 * The destination is chosen by @p policy among the placer's
 * non-quarantined cores with capacity for the checkpointed split;
 * the split is then re-run against the destination's free engines at
 * the paid budget (resplitForResidency), falling back to the
 * checkpointed split when the re-split does not fit. On success the
 * capacity is committed, the vNPU is re-created via the pinned-create
 * hypercall, and @p ckpt.sizing reflects the committed split.
 *
 * @return the destination and committed split, or a default-
 *         constructed outcome (core == kInvalidCore) when no core
 *         can host the vNPU — the placer is left unchanged and the
 *         caller retries at a later epoch boundary.
 */
RestoreOutcome restoreCheckpoint(VnpuCheckpoint &ckpt,
                                 FleetPlacer &placer, Hypervisor &hv,
                                 PlacementPolicy policy,
                                 const NpuCoreConfig &core_cfg);

} // namespace neu10

#endif // NEU10_RESILIENCE_CHECKPOINT_HH
