/**
 * @file
 * Clang thread-safety annotations and a capability-annotated mutex.
 *
 * The fleet engine's determinism promise (bit-identical results at
 * any thread width) rests on a small set of locking invariants:
 * ThreadPool's job state is only touched under its mutex, per-core
 * results are collected under the fleet aggregator's mutex, and
 * everything else is shared-nothing. Clang's -Wthread-safety
 * analysis machine-checks those invariants at compile time — but
 * only if the code states them. This header supplies the vocabulary:
 *
 *  - NEU10_GUARDED_BY(m)   field is only read/written with m held
 *  - NEU10_REQUIRES(m)     function must be entered with m held
 *  - NEU10_ACQUIRE(m) / NEU10_RELEASE(m)
 *                          function takes/drops m (lock wrappers)
 *  - NEU10_EXCLUDES(m)     function must NOT be entered with m held
 *
 * plus `Mutex` / `MutexLock` / `CondVar`: a std::mutex wrapper that
 * carries the capability annotation (std::mutex itself is not
 * annotated, so lock/unlock through it is invisible to the
 * analysis), a scoped lock the analysis understands — including
 * manual unlock()/lock() windows, which ThreadPool uses around user
 * callbacks — and a condition variable that waits on the annotated
 * lock.
 *
 * Under GCC (or any compiler without the attributes) every macro
 * expands to nothing and the wrappers are zero-cost shims; the CI
 * clang cells build with -Wthread-safety -Werror so violations
 * cannot land.
 */

#ifndef NEU10_COMMON_ANNOTATIONS_HH
#define NEU10_COMMON_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NEU10_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NEU10_THREAD_ANNOTATION
#define NEU10_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define NEU10_CAPABILITY(x) NEU10_THREAD_ANNOTATION(capability(x))
#define NEU10_SCOPED_CAPABILITY NEU10_THREAD_ANNOTATION(scoped_lockable)
#define NEU10_GUARDED_BY(x) NEU10_THREAD_ANNOTATION(guarded_by(x))
#define NEU10_PT_GUARDED_BY(x) NEU10_THREAD_ANNOTATION(pt_guarded_by(x))
#define NEU10_REQUIRES(...) \
    NEU10_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NEU10_ACQUIRE(...) \
    NEU10_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NEU10_RELEASE(...) \
    NEU10_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NEU10_TRY_ACQUIRE(...) \
    NEU10_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define NEU10_EXCLUDES(...) \
    NEU10_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define NEU10_RETURN_CAPABILITY(x) \
    NEU10_THREAD_ANNOTATION(lock_returned(x))
#define NEU10_NO_THREAD_SAFETY_ANALYSIS \
    NEU10_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace neu10
{

/**
 * std::mutex carrying the clang capability annotation, so
 * NEU10_GUARDED_BY(mutex_) members are actually checked against it.
 */
class NEU10_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() NEU10_ACQUIRE() { m_.lock(); }
    void unlock() NEU10_RELEASE() { m_.unlock(); }

  private:
    std::mutex m_;
};

/**
 * Scoped lock over Mutex that the analysis tracks, including manual
 * unlock()/lock() windows (the ThreadPool worker drops the lock
 * around user callbacks). Must be unlocked or destroyed on the same
 * thread that constructed it.
 */
class NEU10_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) NEU10_ACQUIRE(m) : mutex_(m), held_(true)
    {
        mutex_.lock();
    }

    ~MutexLock() NEU10_RELEASE()
    {
        if (held_)
            mutex_.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Drop the lock mid-scope (reacquire with lock()). */
    void unlock() NEU10_RELEASE()
    {
        mutex_.unlock();
        held_ = false;
    }

    /** Reacquire after unlock(). */
    void lock() NEU10_ACQUIRE()
    {
        mutex_.lock();
        held_ = true;
    }

  private:
    friend class CondVar;

    Mutex &mutex_;
    bool held_;
};

/**
 * Condition variable waiting on MutexLock. wait() atomically drops
 * and retakes the lock, so from the analysis's point of view the
 * capability is held across the call — which is exactly the caller's
 * contract.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** @pre @p lock is held; it is held again on return. */
    void wait(MutexLock &lock) { cv_.wait(lock.mutex_); }

    template <typename Pred>
    void wait(MutexLock &lock, Pred pred)
    {
        cv_.wait(lock.mutex_, pred);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    // condition_variable_any accepts any BasicLockable — here the
    // annotated Mutex, keeping every lock transition visible to the
    // thread-safety analysis at the call sites that matter.
    std::condition_variable_any cv_;
};

} // namespace neu10

#endif // NEU10_COMMON_ANNOTATIONS_HH
