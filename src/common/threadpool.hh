/**
 * @file
 * A small fixed-size thread pool for embarrassingly parallel host
 * work.
 *
 * The simulator itself is single-threaded and deterministic (one
 * EventQueue per core simulation); what *is* parallel is the fleet:
 * cores share nothing but the traffic clock, so their open-loop
 * simulations can run concurrently on host threads. This pool powers
 * that (cluster/fleet) and any future index-parallel sweep.
 *
 * Determinism contract: parallelFor(n, fn) calls fn(i) exactly once
 * for every i in [0, n) and returns after all calls finish. Each
 * worker only writes state owned by its index, so results are
 * bit-identical for any thread count — including 1, where the loop
 * runs inline on the caller with no pool machinery at all.
 */

#ifndef NEU10_COMMON_THREADPOOL_HH
#define NEU10_COMMON_THREADPOOL_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.hh"

namespace neu10
{

/** Fixed-size pool of host worker threads (see file doc). */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 picks defaultThreads() and 1
     *                creates no workers (all work runs inline).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending parallelFor calls have returned. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Parallelism width (>= 1), including the inline-only case. */
    unsigned size() const { return threads_; }

    /**
     * Run @p fn(i) for every i in [0, n), distributing indices over
     * the workers, and block until all calls return. The first
     * exception thrown by any fn(i) is rethrown on the caller after
     * the remaining indices are drained (never lost, never
     * std::terminate). Not reentrant: do not call parallelFor from
     * inside fn.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** Host hardware concurrency, floored at 1. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    unsigned threads_ = 1;
    std::vector<std::thread> workers_;

    // One parallelFor job at a time (non-reentrant, asserted): the
    // caller publishes fn/n under the mutex, workers and caller claim
    // indices until the dispenser runs dry, and the caller waits for
    // the last index to retire before clearing the job. Every field
    // below is machine-checked (clang -Wthread-safety) to only be
    // touched with mutex_ held.
    Mutex mutex_;
    CondVar wake_;                   ///< workers wait here for a job
    CondVar done_;                   ///< caller waits here for finish
    /** Current job's body; null when the pool is idle. */
    const std::function<void(std::size_t)> *jobFn_
        NEU10_GUARDED_BY(mutex_) = nullptr;
    std::size_t jobN_ NEU10_GUARDED_BY(mutex_) = 0;
    /** Next unclaimed index in [0, jobN_). */
    std::size_t next_ NEU10_GUARDED_BY(mutex_) = 0;
    /** Threads currently inside fn (caller included). */
    std::size_t active_ NEU10_GUARDED_BY(mutex_) = 0;
    /** First failure, rethrown by the caller. */
    std::exception_ptr error_ NEU10_GUARDED_BY(mutex_);
    bool stop_ NEU10_GUARDED_BY(mutex_) = false;
};

} // namespace neu10

#endif // NEU10_COMMON_THREADPOOL_HH
