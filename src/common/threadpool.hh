/**
 * @file
 * A small fixed-size thread pool for embarrassingly parallel host
 * work.
 *
 * The simulator itself is single-threaded and deterministic (one
 * EventQueue per core simulation); what *is* parallel is the fleet:
 * cores share nothing but the traffic clock, so their open-loop
 * simulations can run concurrently on host threads. This pool powers
 * that (cluster/fleet) and any future index-parallel sweep.
 *
 * Determinism contract: parallelFor(n, fn) calls fn(i) exactly once
 * for every i in [0, n) and returns after all calls finish. Each
 * worker only writes state owned by its index, so results are
 * bit-identical for any thread count — including 1, where the loop
 * runs inline on the caller with no pool machinery at all.
 */

#ifndef NEU10_COMMON_THREADPOOL_HH
#define NEU10_COMMON_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace neu10
{

/** Fixed-size pool of host worker threads (see file doc). */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 picks defaultThreads() and 1
     *                creates no workers (all work runs inline).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending parallelFor calls have returned. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Parallelism width (>= 1), including the inline-only case. */
    unsigned size() const { return threads_; }

    /**
     * Run @p fn(i) for every i in [0, n), distributing indices over
     * the workers, and block until all calls return. The first
     * exception thrown by any fn(i) is rethrown on the caller after
     * the remaining indices are drained (never lost, never
     * std::terminate). Not reentrant: do not call parallelFor from
     * inside fn.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** Host hardware concurrency, floored at 1. */
    static unsigned defaultThreads();

  private:
    struct Job;

    void workerLoop();

    unsigned threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;   ///< workers wait here for a job
    std::condition_variable done_;   ///< caller waits here for finish
    Job *job_ = nullptr;             ///< current job, null when idle
    bool stop_ = false;
};

} // namespace neu10

#endif // NEU10_COMMON_THREADPOOL_HH
