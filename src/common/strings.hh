/**
 * @file
 * Small string-formatting helpers used by reports and benches.
 *
 * GCC 12 lacks std::format, so a printf-backed csprintf() (gem5 naming)
 * plus a handful of human-readable unit formatters are provided here.
 */

#ifndef NEU10_COMMON_STRINGS_HH
#define NEU10_COMMON_STRINGS_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace neu10
{

/** printf into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** "10.59MB" / "1.27GB" style byte formatting (decimal units). */
std::string formatBytes(Bytes bytes);

/** "347.59 GB/s" style bandwidth formatting from bytes per second. */
std::string formatBandwidth(double bytes_per_sec);

/** "1.23ms" / "456.7us" style duration formatting from seconds. */
std::string formatSeconds(double seconds);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** ASCII lowercase copy (name parsers: policies, traffic shapes). */
std::string toLower(const std::string &s);

} // namespace neu10

#endif // NEU10_COMMON_STRINGS_HH
