/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the framework (request inter-arrival jitter,
 * workload perturbation in property tests) draws from an explicitly seeded
 * Rng so that experiments and tests are bit-reproducible across runs and
 * platforms. The generator is xoshiro256** seeded through SplitMix64,
 * which is small, fast, and has no global state.
 */

#ifndef NEU10_COMMON_RANDOM_HH
#define NEU10_COMMON_RANDOM_HH

#include <cstdint>

namespace neu10
{

/** Deterministic, explicitly seeded PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct with a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n), n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (no cached spare; stateless). */
    double gaussian(double mean = 0.0, double stddev = 1.0);

  private:
    std::uint64_t s_[4];
};

} // namespace neu10

#endif // NEU10_COMMON_RANDOM_HH
