#include "common/logging.hh"

#include <atomic>
#include <cstdio>

namespace neu10
{

namespace
{

// Read on every message — including from fleet worker threads, which
// warn() about capped runs — while tests and tools may set the level
// concurrently. Relaxed atomics make that torn-free and TSan-clean; a
// message racing a level change may use either level, which is the
// only sane semantic for a verbosity knob.
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Per-thread simulation context for message attribution. Thread-local
// (no synchronization needed): each fleet worker drives exactly one
// core simulation at a time and scopes it with ScopedLogContext.
struct LogContext
{
    bool active = false;
    unsigned board = 0;
    unsigned core = 0;
    double cycle = 0.0;
    bool hasCycle = false;
};

thread_local LogContext t_ctx;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

/**
 * Emit one complete message line with a single fwrite. stderr is
 * unbuffered and stdout line-buffered, so building the whole line
 * (context prefix, severity tag, message, newline) first keeps
 * concurrent epoch workers from interleaving half-lines — stdio
 * locks the stream for the duration of one fwrite call.
 */
void
emitLine(std::FILE *stream, const char *tag, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 32);
    if (t_ctx.active) {
        line += csprintf("[%u.%u", t_ctx.board, t_ctx.core);
        if (t_ctx.hasCycle)
            line += csprintf(" @%.0f", t_ctx.cycle);
        line += "] ";
    }
    line += tag;
    line += ": ";
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stream);
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

ScopedLogContext::ScopedLogContext(unsigned board, unsigned core)
{
    t_ctx.active = true;
    t_ctx.board = board;
    t_ctx.core = core;
    t_ctx.cycle = 0.0;
    t_ctx.hasCycle = false;
}

ScopedLogContext::~ScopedLogContext()
{
    t_ctx = LogContext{};
}

void
logContextCycle(double cycle)
{
    if (!t_ctx.active)
        return;
    t_ctx.cycle = cycle;
    t_ctx.hasCycle = true;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (g_level.load(std::memory_order_relaxed) >= LogLevel::Warn)
        emitLine(stderr, "panic", msg);
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (g_level.load(std::memory_order_relaxed) >= LogLevel::Warn)
        emitLine(stderr, "fatal", msg);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stderr, "warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stdout, "info", msg);
}

} // namespace neu10
