#include "common/logging.hh"

#include <atomic>
#include <cstdio>

namespace neu10
{

namespace
{

// Read on every message — including from fleet worker threads, which
// warn() about capped runs — while tests and tools may set the level
// concurrently. Relaxed atomics make that torn-free and TSan-clean; a
// message racing a level change may use either level, which is the
// only sane semantic for a verbosity knob.
std::atomic<LogLevel> g_level{LogLevel::Warn};

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (g_level.load(std::memory_order_relaxed) >= LogLevel::Warn)
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    if (g_level.load(std::memory_order_relaxed) >= LogLevel::Warn)
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace neu10
