#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

std::uint64_t
parseUint64(const std::string &text, const char *what)
{
    if (text.empty())
        fatal("%s is empty; want a non-negative integer (base 10 or "
              "0x... hex)", what);
    // strtoull happily accepts leading whitespace and a sign (a
    // negative wraps to a huge positive) — both are almost certainly
    // typos when seeding an experiment, so reject them up front.
    const unsigned char first = static_cast<unsigned char>(text[0]);
    if (std::isspace(first) || text[0] == '-' || text[0] == '+')
        fatal("%s='%s' must be a bare non-negative integer (base 10 "
              "or 0x... hex); no sign or whitespace", what,
              text.c_str());
    // Base 0 would also accept leading-zero octal ("010" -> 8),
    // which is never what a seed-writing operator means: parse hex
    // only behind an explicit 0x prefix, decimal otherwise.
    const bool hex = text.size() > 1 && text[0] == '0' &&
                     (text[1] == 'x' || text[1] == 'X');
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(text.c_str(), &end, hex ? 16 : 10);
    if (end == text.c_str() || *end != '\0')
        fatal("%s='%s' is not a number; want a non-negative integer "
              "(base 10 or 0x... hex)", what, text.c_str());
    if (errno == ERANGE)
        fatal("%s='%s' overflows a 64-bit unsigned integer", what,
              text.c_str());
    return parsed;
}

bool
parseFlag(const std::string &text, const char *what)
{
    const std::string low = toLower(text);
    if (low == "0" || low == "false" || low == "off" || low == "no")
        return false;
    if (low == "1" || low == "true" || low == "on" || low == "yes")
        return true;
    fatal("%s='%s' is not a boolean; want 0/false/off/no or "
          "1/true/on/yes (case-insensitive)", what, text.c_str());
}

// getenv() is only unsafe against a concurrent setenv(); the sim
// reads knobs during single-threaded setup (before any pool spins
// up), and nothing in src/ ever calls setenv.
std::uint64_t
envUint64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr || v[0] == '\0')
        return fallback;
    return parseUint64(v, name);
}

bool
envFlag(const char *name, bool fallback)
{
    const char *v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr || v[0] == '\0')
        return fallback;
    return parseFlag(v, name);
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr || v[0] == '\0')
        return fallback;
    return v;
}

} // namespace neu10
