/**
 * @file
 * Fundamental scalar types shared across the Neu10 libraries.
 *
 * Simulated time is measured in *cycles* of the NPU core clock and is kept
 * as a double: the fluid execution model (see src/npu/core_sim.hh)
 * computes fractional completion times analytically between scheduling
 * events, so integral ticks would force quantization error into every
 * rate intersection. All engine counts and byte quantities are integral.
 */

#ifndef NEU10_COMMON_TYPES_HH
#define NEU10_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace neu10
{

/** Simulated time in NPU core clock cycles (fractional, see file doc). */
using Cycles = double;

/** A quantity of bytes (capacities, footprints, DMA sizes). */
using Bytes = std::uint64_t;

/** Identifier of a vNPU instance; dense, assigned by the VnpuManager. */
using VnpuId = std::uint32_t;

/** Identifier of a physical NPU core within a board. */
using CoreId = std::uint32_t;

/** Identifier of a tenant (VM / ML service instance). */
using TenantId = std::uint32_t;

/** Sentinel for "no vNPU". */
inline constexpr VnpuId kInvalidVnpu =
    std::numeric_limits<VnpuId>::max();

/** Sentinel for an unbound / invalid core. */
inline constexpr CoreId kInvalidCore =
    std::numeric_limits<CoreId>::max();

/** "Never" in simulated time. */
inline constexpr Cycles kCyclesInf =
    std::numeric_limits<Cycles>::infinity();

/** Convenience byte-unit multipliers. */
inline constexpr Bytes operator""_KiB(unsigned long long v)
{ return v << 10; }
inline constexpr Bytes operator""_MiB(unsigned long long v)
{ return v << 20; }
inline constexpr Bytes operator""_GiB(unsigned long long v)
{ return v << 30; }

} // namespace neu10

#endif // NEU10_COMMON_TYPES_HH
