/**
 * @file
 * Status-message and error-reporting facilities in the gem5 idiom.
 *
 * Two error levels are provided, mirroring gem5's base/logging.hh:
 *
 *  - panic():  something happened that should never happen regardless of
 *              what the user does, i.e. an internal simulator bug.
 *  - fatal():  the simulation cannot continue due to a user-level problem
 *              (bad configuration, invalid arguments).
 *
 * Unlike gem5, both raise C++ exceptions (PanicError / FatalError) rather
 * than calling abort()/exit(); a library embedded in tests and services
 * must not tear down the host process. Callers that want gem5's behaviour
 * can catch at top level and abort.
 *
 * warn()/inform() emit status messages; they never stop the simulation.
 */

#ifndef NEU10_COMMON_LOGGING_HH
#define NEU10_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

#include "common/strings.hh"

namespace neu10
{

/** Raised by panic(): an internal invariant was violated (a Neu10 bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Raised by fatal(): the user asked for something impossible. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity; messages above the level are suppressed. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal error and throw PanicError.
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user error and throw FatalError.
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Alert the user that something might be subtly wrong. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Provide a normal operating status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * RAII scope marking the calling thread as simulating one fleet core:
 * while active, every warn()/inform() from this thread carries a
 * "[board.core @cycle]" prefix so concurrent epoch workers' messages
 * stay attributable. The whole line (prefix included) is emitted
 * through a single buffered fwrite, so half-lines from different
 * workers can no longer interleave on stderr.
 *
 * The context is thread-local: nesting is not supported (the fleet
 * runs one core simulation per worker at a time), and the destructor
 * clears it.
 */
class ScopedLogContext
{
  public:
    ScopedLogContext(unsigned board, unsigned core);
    ~ScopedLogContext();

    ScopedLogContext(const ScopedLogContext &) = delete;
    ScopedLogContext &operator=(const ScopedLogContext &) = delete;
};

/**
 * Update the simulated-time component of the calling thread's log
 * context (cycles; fractional values are floored for display). A
 * no-op outside a ScopedLogContext scope. Instrumented loops call
 * this right before a warn() so the prefix pins the message to a
 * simulated instant, not just a core.
 */
void logContextCycle(double cycle);

/**
 * Panic if @p cond is false. Used for internal invariants; cheap enough
 * to keep enabled in release builds.
 */
#define NEU10_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ::neu10::panic("assertion '%s' failed: %s", #cond,              \
                           ::neu10::csprintf(__VA_ARGS__).c_str());         \
    } while (0)

} // namespace neu10

#endif // NEU10_COMMON_LOGGING_HH
