#include "common/threadpool.hh"

#include <exception>

#include "common/logging.hh"

namespace neu10
{

/** One parallelFor invocation: an atomic index dispenser plus
 * completion bookkeeping under the pool mutex. */
struct ThreadPool::Job
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::size_t next = 0;       ///< next unclaimed index (mutex-held)
    std::size_t active = 0;     ///< workers currently inside fn
    std::exception_ptr error;   ///< first failure, rethrown by caller
};

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? defaultThreads() : threads)
{
    // One thread means inline execution; no workers to spawn.
    for (unsigned i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this] {
            return stop_ || (job_ != nullptr && job_->next < job_->n);
        });
        if (stop_)
            return;
        Job *job = job_;
        while (job->next < job->n) {
            const std::size_t i = job->next++;
            ++job->active;
            lock.unlock();
            try {
                (*job->fn)(i);
            } catch (...) {
                lock.lock();
                if (!job->error)
                    job->error = std::current_exception();
                --job->active;
                continue;
            }
            lock.lock();
            --job->active;
        }
        if (job->active == 0)
            done_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_ <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Job job;
    job.n = n;
    job.fn = &fn;

    std::unique_lock<std::mutex> lock(mutex_);
    NEU10_ASSERT(job_ == nullptr,
                 "ThreadPool::parallelFor is not reentrant");
    job_ = &job;
    wake_.notify_all();

    // The caller is a worker too: it claims indices alongside the
    // pool threads instead of idling.
    while (job.next < job.n) {
        const std::size_t i = job.next++;
        ++job.active;
        lock.unlock();
        try {
            fn(i);
        } catch (...) {
            lock.lock();
            if (!job.error)
                job.error = std::current_exception();
            --job.active;
            continue;
        }
        lock.lock();
        --job.active;
    }
    done_.wait(lock, [&job] { return job.active == 0; });
    job_ = nullptr;
    if (job.error)
        std::rethrow_exception(job.error);
}

} // namespace neu10
