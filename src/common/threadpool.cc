#include "common/threadpool.hh"

#include "common/logging.hh"

namespace neu10
{

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? defaultThreads() : threads)
{
    // One thread means inline execution; no workers to spawn.
    for (unsigned i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    wake_.notifyAll();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    MutexLock lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this]() NEU10_REQUIRES(mutex_) {
            return stop_ || (jobFn_ != nullptr && next_ < jobN_);
        });
        if (stop_)
            return;
        while (next_ < jobN_) {
            const std::size_t i = next_++;
            const std::function<void(std::size_t)> *fn = jobFn_;
            ++active_;
            lock.unlock();
            try {
                (*fn)(i);
            } catch (...) {
                lock.lock();
                if (!error_)
                    error_ = std::current_exception();
                --active_;
                continue;
            }
            lock.lock();
            --active_;
        }
        if (active_ == 0)
            done_.notifyAll();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_ <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    MutexLock lock(mutex_);
    NEU10_ASSERT(jobFn_ == nullptr,
                 "ThreadPool::parallelFor is not reentrant");
    jobFn_ = &fn;
    jobN_ = n;
    next_ = 0;
    active_ = 0;
    error_ = nullptr;
    wake_.notifyAll();

    // The caller is a worker too: it claims indices alongside the
    // pool threads instead of idling.
    while (next_ < jobN_) {
        const std::size_t i = next_++;
        ++active_;
        lock.unlock();
        try {
            fn(i);
        } catch (...) {
            lock.lock();
            if (!error_)
                error_ = std::current_exception();
            --active_;
            continue;
        }
        lock.lock();
        --active_;
    }
    done_.wait(lock, [this]() NEU10_REQUIRES(mutex_) {
        return active_ == 0;
    });
    jobFn_ = nullptr;
    jobN_ = 0;
    const std::exception_ptr error = error_;
    error_ = nullptr;
    if (error)
        std::rethrow_exception(error);
}

} // namespace neu10
