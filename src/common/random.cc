#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace neu10
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    NEU10_ASSERT(n > 0, "below() needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % n);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::exponential(double mean)
{
    NEU10_ASSERT(mean > 0.0, "exponential() needs a positive mean");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::gaussian(double mean, double stddev)
{
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

} // namespace neu10
