#include "common/strings.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace neu10
{

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string
formatBytes(Bytes bytes)
{
    const double b = static_cast<double>(bytes);
    if (b >= 1e9)
        return csprintf("%.2fGB", b / 1e9);
    if (b >= 1e6)
        return csprintf("%.2fMB", b / 1e6);
    if (b >= 1e3)
        return csprintf("%.2fKB", b / 1e3);
    return csprintf("%lluB", static_cast<unsigned long long>(bytes));
}

std::string
formatBandwidth(double bytes_per_sec)
{
    if (bytes_per_sec >= 1e12)
        return csprintf("%.2f TB/s", bytes_per_sec / 1e12);
    if (bytes_per_sec >= 1e9)
        return csprintf("%.2f GB/s", bytes_per_sec / 1e9);
    return csprintf("%.2f MB/s", bytes_per_sec / 1e6);
}

std::string
formatSeconds(double seconds)
{
    if (seconds >= 1.0)
        return csprintf("%.3fs", seconds);
    if (seconds >= 1e-3)
        return csprintf("%.3fms", seconds * 1e3);
    if (seconds >= 1e-6)
        return csprintf("%.1fus", seconds * 1e6);
    return csprintf("%.0fns", seconds * 1e9);
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toLower(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out += static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    return out;
}

} // namespace neu10
