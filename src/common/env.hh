/**
 * @file
 * Hardened environment-variable parsing for the bench/test harness.
 *
 * Every knob the harness reads from the environment (NEU10_SEED,
 * NEU10_SMOKE, ...) goes through these helpers so a typo fails loudly
 * with the offending text and the accepted grammar instead of
 * silently falling back to a default — a silently mis-seeded bench
 * records an irreproducible number, which is worse than no number.
 *
 * The parsers throw FatalError (a user-level problem, common/logging);
 * the env* wrappers read getenv() and treat unset / empty as "use the
 * fallback", which is the only silent path.
 */

#ifndef NEU10_COMMON_ENV_HH
#define NEU10_COMMON_ENV_HH

#include <cstdint>
#include <string>

namespace neu10
{

/**
 * Parse @p text as a non-negative 64-bit integer (base 10, or 0x...
 * hex). Leading/trailing whitespace, signs, trailing junk, and values
 * overflowing std::uint64_t are all rejected.
 * @param what  name used in the error message (e.g. "NEU10_SEED").
 * @throws FatalError on anything but a clean parse.
 */
std::uint64_t parseUint64(const std::string &text, const char *what);

/**
 * Parse @p text as a boolean flag: "0" / "false" / "off" / "no" are
 * false, "1" / "true" / "on" / "yes" are true (case-insensitive).
 * @param what  name used in the error message (e.g. "NEU10_SMOKE").
 * @throws FatalError on anything else.
 */
bool parseFlag(const std::string &text, const char *what);

/** Read env var @p name via parseUint64; unset/empty = @p fallback.
 * @throws FatalError when set to something unparsable. */
std::uint64_t envUint64(const char *name, std::uint64_t fallback);

/** Read env var @p name via parseFlag; unset/empty = @p fallback.
 * @throws FatalError when set to something unparsable. */
bool envFlag(const char *name, bool fallback);

/** Read env var @p name as a string; unset/empty = @p fallback.
 * Strings have no grammar to harden, but routing them through here
 * keeps every harness knob on one getenv() path (and one NOLINT). */
std::string envString(const char *name, const std::string &fallback);

} // namespace neu10

#endif // NEU10_COMMON_ENV_HH
