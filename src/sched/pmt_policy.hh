/**
 * @file
 * The PMT baseline scheduler (§V-A, after PREMA, HPCA'20).
 *
 * PMT time-shares the *entire* NPU core: exactly one vNPU occupies all
 * MEs and VEs at a time, scheduled preemptively by least attained
 * service (token-style fairness). Every switch checkpoints the full
 * core state, which is what gives PREMA-style schemes their high
 * context-switch overhead; the core is unavailable for the switch
 * penalty. No overlap between tenants ever occurs — the utilization
 * cost the paper's Fig. 21/22 quantify.
 */

#ifndef NEU10_SCHED_PMT_POLICY_HH
#define NEU10_SCHED_PMT_POLICY_HH

#include <vector>

#include "sched/policy.hh"

namespace neu10
{

/** Whole-core preemptive temporal sharing. */
class PmtPolicy : public SchedulerPolicy
{
  public:
    /**
     * @param quantum_cycles  scheduling quantum.
     * @param switch_cycles   full-core checkpoint/restore penalty.
     */
    explicit PmtPolicy(Cycles quantum_cycles = 65536.0,
                       Cycles switch_cycles = 4096.0);

    std::string name() const override { return "PMT"; }
    void scheduleMes(NpuCoreSim &core, Cycles now) override;
    void scheduleVes(NpuCoreSim &core, Cycles now) override;
    Cycles nextWakeup(const NpuCoreSim &core, Cycles now) override;

  private:
    bool slotHasWork(const NpuCoreSim &core, std::uint32_t s) const;
    std::uint32_t leastAttained(const NpuCoreSim &core) const;
    void beginSwitch(NpuCoreSim &core, std::uint32_t target, Cycles now);

    Cycles quantum_;
    Cycles switchCost_;

    std::uint32_t active_ = kNoSlot;
    Cycles switchReadyAt_ = 0.0;  ///< core unavailable until then
    Cycles quantumEnd_ = 0.0;
    Cycles lastNow_ = 0.0;
    std::vector<double> attained_;
};

} // namespace neu10

#endif // NEU10_SCHED_PMT_POLICY_HH
