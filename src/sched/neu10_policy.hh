/**
 * @file
 * The Neu10 uTOp + operation scheduler (§III-E).
 *
 * Spatial-isolated mode: every vNPU owns its allocated MEs/VEs. Each
 * scheduling round:
 *
 *  1. fill — ready ME uTOps bind to their own vNPU's free engine
 *     budget (FIFO);
 *  2. reclaim — a vNPU with backlog whose budget is held by other
 *     vNPUs' harvesters preempts them (256-cycle context switch
 *     charged to the incoming uTOp, §III-G);
 *  3. harvest — remaining backlog binds to other vNPUs' idle budget.
 *
 * The operation scheduler assigns VE shares per vNPU budget with
 * ME-uTOp demand prioritized (so occupied MEs free up soonest), then
 * redistributes surplus VE capacity across vNPUs (Fig. 18b). With
 * harvesting disabled this is exactly the Neu10-NH (MIG-like static
 * partitioning) baseline.
 *
 * Temporal mode (software-isolated oversubscription, §III-C): engine
 * budgets are recomputed every round from priority-weighted attained
 * service, so oversubscribed vNPUs time-share fairly.
 */

#ifndef NEU10_SCHED_NEU10_POLICY_HH
#define NEU10_SCHED_NEU10_POLICY_HH

#include <vector>

#include "sched/policy.hh"

namespace neu10
{

/** Neu10 / Neu10-NH scheduler. */
class Neu10Policy : public SchedulerPolicy
{
  public:
    /**
     * @param harvest   enable ME/VE harvesting (false = Neu10-NH).
     * @param temporal  software-isolated oversubscription mode.
     */
    explicit Neu10Policy(bool harvest, bool temporal = false);

    /** Ablation toggles: disable one harvesting direction (the
     * ablation bench separates ME-harvest from VE-harvest benefit). */
    void setHarvestMes(bool on) { harvestMes_ = on; }
    void setHarvestVes(bool on) { harvestVes_ = on; }

    std::string name() const override;
    void scheduleMes(NpuCoreSim &core, Cycles now) override;
    void scheduleVes(NpuCoreSim &core, Cycles now) override;
    Cycles nextWakeup(const NpuCoreSim &core, Cycles now) override;

  private:
    /** Effective per-slot ME budgets for this round. */
    std::vector<unsigned> budgets(const NpuCoreSim &core) const;

    bool harvest_;
    bool temporal_;
    bool harvestMes_ = true;
    bool harvestVes_ = true;
    mutable std::vector<double> deficit_; // temporal-mode bookkeeping
    Cycles lastNow_ = 0.0;
};

} // namespace neu10

#endif // NEU10_SCHED_NEU10_POLICY_HH
