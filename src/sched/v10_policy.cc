#include "sched/v10_policy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "npu/bandwidth.hh"

namespace neu10
{

namespace
{

/**
 * Maximum time (cycles) a tenant's ready ME operator may wait behind
 * the running operator before V10 preempts it — the PREMA-style token
 * threshold. V10 is utilization-first: operators normally run to
 * completion and the service deficit only picks who goes next at
 * operator boundaries. The coarse wait bound is what produces V10's
 * operator-interference tail latency (§V-B): a short request can sit
 * for half a millisecond behind a collocated tenant's long or
 * bandwidth-stalled operator that holds every ME.
 */
constexpr Cycles kMaxWaitCycles = 32.0 * 1024;

/** Slack absorbing fp dust in wait-time comparisons. */
constexpr double kFairnessEps = 1e-3;

double
attained(const VnpuSlot &s)
{
    // V10 balances measured execution time. Performance counters see
    // a blend of engine occupancy and useful busy cycles: a
    // bandwidth-stalled operator occupies engines while accruing
    // little useful service, so the stalling tenant is considered
    // under-served and receives extra wall time to compensate — the
    // §V-F effect that squeezes a compute partner collocated with an
    // LLM.
    const double service =
        0.5 * s.meUsefulCycles + 0.5 * s.meServiceCycles;
    return service / std::max(1e-9, s.priority);
}

} // anonymous namespace

std::uint32_t
V10Policy::pickNext(const NpuCoreSim &core) const
{
    const auto &slots = core.slots();

    // A tenant past its token threshold outranks everything (this is
    // what makes the wait bound a bound, not a suggestion).
    std::uint32_t starved = kNoSlot;
    double worst_over = -kFairnessEps;
    const Cycles now = core.queue().now();
    for (std::uint32_t s = 0; s < slots.size(); ++s) {
        if (slots[s].readyMe.empty())
            continue;
        const double bound =
            kMaxWaitCycles / std::max(1e-9, slots[s].priority);
        const double over =
            (now - slots[s].readyMe.front()->readyAt) - bound;
        if (over >= -kFairnessEps && over > worst_over) {
            starved = s;
            worst_over = over;
        }
    }
    if (starved != kNoSlot)
        return starved;

    std::uint32_t best = kNoSlot;
    for (std::uint32_t s = 0; s < slots.size(); ++s) {
        if (slots[s].readyMe.empty())
            continue;
        if (best == kNoSlot || attained(slots[s]) < attained(slots[best]))
            best = s;
    }
    return best;
}

void
V10Policy::scheduleMes(NpuCoreSim &core, Cycles now)
{
    (void)now;
    auto &slots = core.slots();

    // Find the running gang operator, if any.
    UnitRun *runner = nullptr;
    for (UnitRun *u : core.running())
        if (u->kind == UTopKind::Me)
            runner = u;

    // Preemptive fairness: a waiter whose oldest ready ME operator has
    // exceeded the token threshold preempts the running operator
    // (V10's fine-grained operator-level preemption).
    if (runner) {
        for (std::uint32_t s = 0; s < slots.size(); ++s) {
            if (s == runner->slot || slots[s].readyMe.empty())
                continue;
            const Cycles waited =
                now - slots[s].readyMe.front()->readyAt;
            const double bound =
                kMaxWaitCycles / std::max(1e-9, slots[s].priority);
            if (waited >= bound - kFairnessEps) {
                core.preemptMe(runner);
                runner = nullptr;
                break;
            }
        }
    }

    if (!runner) {
        const std::uint32_t s = pickNext(core);
        if (s != kNoSlot) {
            UnitRun *u = slots[s].readyMe.front();
            // A preempted operator reloads its ME state on resume.
            const bool penalty = u->preemptions > 0 && u->x > 0.0;
            core.bindMe(u, s, penalty);
        }
    }
}

void
V10Policy::scheduleVes(NpuCoreSim &core, Cycles now)
{
    (void)now;
    auto &slots = core.slots();
    const unsigned ve_queues = core.config().numVes;

    // VE-only operators from any vNPU may run alongside the ME
    // operator.
    bool started = true;
    while (core.runningVeUnits() < ve_queues && started) {
        started = false;
        for (auto &slot : slots) {
            if (slot.readyVe.empty())
                continue;
            if (core.runningVeUnits() >= ve_queues)
                break;
            core.startVe(slot.readyVe.front());
            started = true;
        }
    }

    // The running ME operator's VLIW VE slots are served first (the
    // operator cannot progress otherwise); VE-only operators share the
    // remainder max-min weighted by tenant priority.
    double left = core.config().numVes;
    std::vector<UnitRun *> ve_units;
    std::vector<double> demands, weights;
    for (UnitRun *u : core.running()) {
        if (u->veTime <= 0.0) {
            u->veShare = 0.0;
            continue;
        }
        if (u->kind == UTopKind::Me) {
            u->veShare = std::min(u->veDemandRate(), left);
            left = std::max(0.0, left - u->veShare);
        } else {
            ve_units.push_back(u);
            demands.push_back(core.config().numVes);
            weights.push_back(slots[u->slot].priority);
        }
    }
    const auto grants = maxMinAllocate(demands, left, weights);
    for (size_t i = 0; i < ve_units.size(); ++i)
        ve_units[i]->veShare = grants[i];
}

Cycles
V10Policy::nextWakeup(const NpuCoreSim &core, Cycles now)
{
    // Wake when some waiter's oldest ready ME operator crosses the
    // token threshold.
    const UnitRun *runner = nullptr;
    for (const UnitRun *u : core.running())
        if (u->kind == UTopKind::Me)
            runner = u;
    if (!runner)
        return kCyclesInf;

    const auto &slots = core.slots();
    Cycles next = kCyclesInf;
    for (std::uint32_t s = 0; s < slots.size(); ++s) {
        if (s == runner->slot || slots[s].readyMe.empty())
            continue;
        const double bound =
            kMaxWaitCycles / std::max(1e-9, slots[s].priority);
        const Cycles deadline =
            slots[s].readyMe.front()->readyAt + bound;
        next = std::min(next, std::max(deadline, now + 1.0));
    }
    return next;
}

} // namespace neu10
