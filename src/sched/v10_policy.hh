/**
 * @file
 * The V10 baseline scheduler (§V-A, after Xue et al., ISCA'23).
 *
 * V10 time-shares all MEs and VEs at *operator* granularity with a
 * priority-based preemptive fair policy. Because the workloads are
 * compiled with the classic VLIW ISA, an ME operator couples the
 * control flow of every ME: it occupies the whole ME pool for its
 * duration even when it cannot fill it (false contention, Fig. 9).
 * Only VE-only operators from collocated vNPUs may overlap with it.
 * Operator-level preemption is supported (V10's fine-grained
 * preemption) at the usual ME context-switch cost.
 */

#ifndef NEU10_SCHED_V10_POLICY_HH
#define NEU10_SCHED_V10_POLICY_HH

#include "sched/policy.hh"

namespace neu10
{

/** Operator-granularity temporal sharing over a VLIW program. */
class V10Policy : public SchedulerPolicy
{
  public:
    V10Policy() = default;

    std::string name() const override { return "V10"; }
    void scheduleMes(NpuCoreSim &core, Cycles now) override;
    void scheduleVes(NpuCoreSim &core, Cycles now) override;
    Cycles nextWakeup(const NpuCoreSim &core, Cycles now) override;

  private:
    /** Slot whose turn it is: least attained ME service / priority. */
    std::uint32_t pickNext(const NpuCoreSim &core) const;
};

} // namespace neu10

#endif // NEU10_SCHED_V10_POLICY_HH
