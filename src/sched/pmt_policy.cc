#include "sched/pmt_policy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "npu/bandwidth.hh"

namespace neu10
{

PmtPolicy::PmtPolicy(Cycles quantum_cycles, Cycles switch_cycles)
    : quantum_(quantum_cycles), switchCost_(switch_cycles)
{
    NEU10_ASSERT(quantum_cycles > 0.0, "quantum must be positive");
}

bool
PmtPolicy::slotHasWork(const NpuCoreSim &core, std::uint32_t s) const
{
    const VnpuSlot &slot = core.slots()[s];
    if (!slot.readyMe.empty() || !slot.readyVe.empty())
        return true;
    for (const UnitRun *u : core.running())
        if (u->slot == s)
            return true;
    return false;
}

std::uint32_t
PmtPolicy::leastAttained(const NpuCoreSim &core) const
{
    std::uint32_t best = kNoSlot;
    double best_val = 0.0;
    for (std::uint32_t s = 0; s < core.slots().size(); ++s) {
        if (!slotHasWork(core, s))
            continue;
        const double val =
            attained_[s] / std::max(1e-9, core.slots()[s].priority);
        if (best == kNoSlot || val < best_val) {
            best = s;
            best_val = val;
        }
    }
    return best;
}

void
PmtPolicy::beginSwitch(NpuCoreSim &core, std::uint32_t target,
                       Cycles now)
{
    // Checkpoint everything the departing tenant had in flight.
    std::vector<UnitRun *> evict;
    evict.reserve(core.running().size());
    for (UnitRun *u : core.running())
        evict.push_back(u);
    for (UnitRun *u : evict) {
        if (u->kind == UTopKind::Me)
            core.preemptMe(u);
        else
            core.preemptVe(u);
    }
    active_ = target;
    switchReadyAt_ = now + switchCost_;
    quantumEnd_ = switchReadyAt_ + quantum_;
}

void
PmtPolicy::scheduleMes(NpuCoreSim &core, Cycles now)
{
    if (attained_.size() != core.slots().size())
        attained_.assign(core.slots().size(), 0.0);

    // Integrate attained core occupancy for the active tenant
    // (checkpoint gaps do not count: the core serves nobody then).
    if (active_ != kNoSlot && now > lastNow_)
        attained_[active_] +=
            std::max(0.0, now - std::max(lastNow_, switchReadyAt_));
    lastNow_ = now;

    if (now < switchReadyAt_)
        return; // mid-checkpoint: the core is unavailable

    // Pick / keep the tenant.
    if (active_ == kNoSlot || !slotHasWork(core, active_)) {
        const std::uint32_t next = leastAttained(core);
        if (next == kNoSlot)
            return;
        if (active_ == kNoSlot) {
            active_ = next;
            quantumEnd_ = now + quantum_;
        } else if (next != active_) {
            beginSwitch(core, next, now);
            return;
        }
    } else if (now >= quantumEnd_) {
        const std::uint32_t next = leastAttained(core);
        if (next != kNoSlot && next != active_) {
            beginSwitch(core, next, now);
            return;
        }
        quantumEnd_ = now + quantum_;
    }

    // Serve the active tenant exclusively: one gang operator at a
    // time, same as running solo.
    VnpuSlot &slot = core.slots()[active_];
    bool me_running = false;
    for (UnitRun *u : core.running())
        if (u->kind == UTopKind::Me)
            me_running = true;
    if (!me_running && !slot.readyMe.empty()) {
        UnitRun *u = slot.readyMe.front();
        const bool penalty = u->preemptions > 0 && u->x > 0.0;
        core.bindMe(u, active_, penalty);
    }
}

void
PmtPolicy::scheduleVes(NpuCoreSim &core, Cycles now)
{
    (void)now;
    if (active_ == kNoSlot || now < switchReadyAt_) {
        for (UnitRun *u : core.running())
            u->veShare = 0.0;
        return;
    }

    VnpuSlot &slot = core.slots()[active_];
    const unsigned ve_queues = core.config().numVes;
    while (core.runningVeUnits() < ve_queues && !slot.readyVe.empty())
        core.startVe(slot.readyVe.front());

    // Exclusive VE pool: ME-operator demand first, then VE operators.
    double left = core.config().numVes;
    std::vector<UnitRun *> ve_units;
    std::vector<double> demands;
    for (UnitRun *u : core.running()) {
        if (u->veTime <= 0.0) {
            u->veShare = 0.0;
            continue;
        }
        if (u->kind == UTopKind::Me) {
            u->veShare = std::min(u->veDemandRate(), left);
            left = std::max(0.0, left - u->veShare);
        } else {
            ve_units.push_back(u);
            demands.push_back(core.config().numVes);
        }
    }
    const auto grants = maxMinAllocate(demands, left);
    for (size_t i = 0; i < ve_units.size(); ++i)
        ve_units[i]->veShare = grants[i];
}

Cycles
PmtPolicy::nextWakeup(const NpuCoreSim &core, Cycles now)
{
    if (now < switchReadyAt_)
        return switchReadyAt_;
    if (active_ == kNoSlot)
        return kCyclesInf;
    // Preemption check at quantum end while somebody else waits.
    for (std::uint32_t s = 0; s < core.slots().size(); ++s) {
        if (s != active_ && slotHasWork(core, s))
            return std::max(quantumEnd_, now + 1.0);
    }
    return kCyclesInf;
}

} // namespace neu10
