#include "sched/neu10_policy.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "npu/bandwidth.hh"

namespace neu10
{

namespace
{

/** Temporal-sharing re-evaluation quantum (cycles). */
constexpr Cycles kTemporalQuantum = 8192.0;

/** Re-binding a previously preempted uTOp restores its ME state. */
bool
needsRestorePenalty(const UnitRun *u)
{
    return u->preemptions > 0 && u->x > 0.0;
}

} // anonymous namespace

Neu10Policy::Neu10Policy(bool harvest, bool temporal)
    : harvest_(harvest), temporal_(temporal)
{
}

std::string
Neu10Policy::name() const
{
    if (temporal_)
        return "Neu10-T";
    return harvest_ ? "Neu10" : "Neu10-NH";
}

std::vector<unsigned>
Neu10Policy::budgets(const NpuCoreSim &core) const
{
    const auto &slots = core.slots();
    std::vector<unsigned> b(slots.size(), 0);

    unsigned total_alloc = 0;
    for (const auto &s : slots)
        total_alloc += s.nMes;

    if (!temporal_ || total_alloc <= core.config().numMes) {
        for (size_t i = 0; i < slots.size(); ++i)
            b[i] = slots[i].nMes;
        return b;
    }

    // Oversubscribed: split the physical MEs by priority-weighted
    // deficit (least attained service first), capped by allocation.
    const unsigned phys = core.config().numMes;
    std::vector<size_t> order(slots.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t c) {
                         const double da =
                             slots[a].meServiceCycles /
                             std::max(1e-9, slots[a].priority);
                         const double dc =
                             slots[c].meServiceCycles /
                             std::max(1e-9, slots[c].priority);
                         return da < dc;
                     });
    unsigned left = phys;
    for (size_t i : order) {
        // Only grant budget a slot can actually use.
        const auto backlog = static_cast<unsigned>(
            slots[i].readyMe.size() + core.budgetUsed(
                static_cast<std::uint32_t>(i)));
        const unsigned want = std::min(slots[i].nMes, backlog);
        b[i] = std::min(want, left);
        left -= b[i];
    }
    // Hand leftovers to anyone with remaining allocation.
    for (size_t i : order) {
        if (left == 0)
            break;
        const unsigned extra = std::min(left, slots[i].nMes - b[i]);
        b[i] += extra;
        left -= extra;
    }
    return b;
}

void
Neu10Policy::scheduleMes(NpuCoreSim &core, Cycles now)
{
    lastNow_ = now;
    auto &slots = core.slots();
    const std::vector<unsigned> budget = budgets(core);

    // Phase 1 — fill own budget FIFO.
    for (std::uint32_t s = 0; s < slots.size(); ++s) {
        while (!slots[s].readyMe.empty() &&
               core.budgetUsed(s) < budget[s]) {
            UnitRun *u = slots[s].readyMe.front();
            core.bindMe(u, s, needsRestorePenalty(u));
        }
    }

    if (!harvest_ || !harvestMes_)
        return;

    // Phase 2 — reclaim: backlogged owners preempt harvesters on
    // their budget; the incoming uTOp pays the context switch, which
    // is exactly the "blocked because my engines were harvested" time
    // Table III reports.
    for (std::uint32_t s = 0; s < slots.size(); ++s) {
        while (!slots[s].readyMe.empty() &&
               core.budgetUsed(s) >= budget[s]) {
            auto harvesters = core.harvestersOn(s);
            if (harvesters.empty())
                break;
            // Evict the most recently admitted harvester: it has the
            // least sunk progress on average.
            UnitRun *victim = harvesters.back();
            ++slots[s].reclaimPreemptions;
            slots[s].blockedByHarvest += core.config().mePreemptCycles;
            core.preemptMe(victim);
            UnitRun *u = slots[s].readyMe.front();
            core.bindMe(u, s, /*with_penalty=*/true);
        }
    }

    // Phase 3 — harvest idle budget of collocated vNPUs, round-robin
    // over backlogged slots so no tenant monopolizes the spare MEs.
    bool bound = true;
    while (bound) {
        bound = false;
        for (std::uint32_t q = 0; q < slots.size(); ++q) {
            if (slots[q].readyMe.empty())
                continue;
            for (std::uint32_t p = 0; p < slots.size(); ++p) {
                if (p == q || core.budgetUsed(p) >= budget[p])
                    continue;
                if (!slots[p].readyMe.empty())
                    continue; // owner will want it this round
                UnitRun *u = slots[q].readyMe.front();
                core.bindMe(u, p, needsRestorePenalty(u));
                bound = true;
                break;
            }
        }
    }
}

void
Neu10Policy::scheduleVes(NpuCoreSim &core, Cycles now)
{
    (void)now;
    auto &slots = core.slots();
    const unsigned ve_queues = core.config().numVes;

    // Start ready VE uTOps round-robin while instruction queues last
    // ("a ready VE uTOp is always executed").
    bool started = true;
    while (core.runningVeUnits() < ve_queues && started) {
        started = false;
        for (auto &slot : slots) {
            if (slot.readyVe.empty())
                continue;
            if (core.runningVeUnits() >= ve_queues)
                break;
            core.startVe(slot.readyVe.front());
            started = true;
        }
    }

    // Per-slot VE share assignment: ME-uTOp demand first (frees the
    // occupied MEs soonest), then VE uTOps; surplus harvested.
    std::vector<UnitRun *> me_units, ve_units;
    for (UnitRun *u : core.running()) {
        if (u->veTime <= 0.0) {
            u->veShare = 0.0;
            continue;
        }
        (u->kind == UTopKind::Me ? me_units : ve_units).push_back(u);
    }

    std::vector<double> slot_left(slots.size());
    for (size_t s = 0; s < slots.size(); ++s)
        slot_left[s] = slots[s].nVes;

    auto allocate_within = [&](std::vector<UnitRun *> &units) {
        for (std::uint32_t s = 0; s < slots.size(); ++s) {
            std::vector<UnitRun *> mine;
            std::vector<double> demands;
            for (UnitRun *u : units) {
                if (u->slot != s)
                    continue;
                mine.push_back(u);
                demands.push_back(std::min<double>(
                    u->veDemandRate(), core.config().numVes));
            }
            const auto grants = maxMinAllocate(demands, slot_left[s]);
            for (size_t i = 0; i < mine.size(); ++i) {
                mine[i]->veShare = grants[i];
                slot_left[s] =
                    std::max(0.0, slot_left[s] - grants[i]);
            }
        }
    };
    allocate_within(me_units);
    allocate_within(ve_units);

    if (!harvest_ || !harvestVes_)
        return;

    // Harvest surplus VE capacity: unmet ME-uTOp demand first, then
    // VE uTOps (the Fig. 18b order).
    double surplus = 0.0;
    for (double v : slot_left)
        surplus += v;
    if (surplus <= 1e-12)
        return;

    auto top_up = [&](std::vector<UnitRun *> &units) {
        if (surplus <= 1e-12)
            return;
        std::vector<double> unmet;
        unmet.reserve(units.size());
        for (UnitRun *u : units) {
            const double want = std::min<double>(
                u->veDemandRate(), core.config().numVes);
            unmet.push_back(std::max(0.0, want - u->veShare));
        }
        const auto extra = maxMinAllocate(unmet, surplus);
        for (size_t i = 0; i < units.size(); ++i) {
            units[i]->veShare += extra[i];
            surplus -= extra[i];
        }
    };
    top_up(me_units);
    top_up(ve_units);
}

Cycles
Neu10Policy::nextWakeup(const NpuCoreSim &core, Cycles now)
{
    if (!temporal_)
        return kCyclesInf;
    // Re-evaluate deficit budgets periodically while oversubscribed
    // slots are contending.
    unsigned total_alloc = 0;
    for (const auto &s : core.slots())
        total_alloc += s.nMes;
    if (total_alloc <= core.config().numMes)
        return kCyclesInf;
    bool backlog = false;
    for (const auto &s : core.slots())
        if (!s.readyMe.empty())
            backlog = true;
    return backlog ? now + kTemporalQuantum : kCyclesInf;
}

} // namespace neu10
