#include "sched/policy.hh"

#include "common/logging.hh"
#include "common/strings.hh"
#include "sched/neu10_policy.hh"
#include "sched/pmt_policy.hh"
#include "sched/v10_policy.hh"

namespace neu10
{

std::string
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Neu10: return "Neu10";
      case PolicyKind::Neu10NH: return "Neu10-NH";
      case PolicyKind::V10: return "V10";
      case PolicyKind::Pmt: return "PMT";
    }
    panic("unknown policy kind %d", static_cast<int>(kind));
}

PolicyKind
policyFromName(const std::string &name)
{
    const std::string low = toLower(name);
    if (low == "neu10")
        return PolicyKind::Neu10;
    if (low == "neu10-nh" || low == "neu10nh" || low == "nh")
        return PolicyKind::Neu10NH;
    if (low == "v10")
        return PolicyKind::V10;
    if (low == "pmt")
        return PolicyKind::Pmt;
    // Never fall back silently: a bench CLI typo must fail loudly
    // with the full accepted vocabulary, not run the default design.
    fatal("unknown scheduling policy '%s'; valid names are 'neu10', "
          "'neu10-nh' (aliases 'neu10nh', 'nh'), 'v10' and 'pmt' "
          "(case-insensitive)", name.c_str());
}

std::unique_ptr<SchedulerPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Neu10:
        return std::make_unique<Neu10Policy>(/*harvest=*/true);
      case PolicyKind::Neu10NH:
        return std::make_unique<Neu10Policy>(/*harvest=*/false);
      case PolicyKind::V10:
        return std::make_unique<V10Policy>();
      case PolicyKind::Pmt:
        return std::make_unique<PmtPolicy>();
    }
    panic("unknown policy kind %d", static_cast<int>(kind));
}

bool
policyUsesNeuIsa(PolicyKind kind)
{
    return kind == PolicyKind::Neu10 || kind == PolicyKind::Neu10NH;
}

} // namespace neu10
