/**
 * @file
 * Scheduling policy interface for the NPU core simulator.
 *
 * A policy is invoked at every scheduling event and makes three
 * decisions, mirroring the paper's split between the uTOp scheduler and
 * the operation scheduler (§III-E):
 *
 *  1. scheduleMes(): bind ready ME units to engines — including
 *     harvesting idle engines of collocated vNPUs and preempting
 *     harvesters to reclaim them (Neu10), whole-gang serialization
 *     (V10), or exclusive core occupancy (PMT).
 *  2. scheduleVes(): start ready VE units (bounded by the ny VE
 *     instruction queues) and assign per-unit VE shares.
 *  3. nextWakeup(): optional time-based reschedule (quanta, fairness).
 *
 * Policies are stateless with respect to unit progress — all execution
 * state lives in the simulator — but may keep fairness bookkeeping.
 */

#ifndef NEU10_SCHED_POLICY_HH
#define NEU10_SCHED_POLICY_HH

#include <memory>
#include <string>

#include "common/types.hh"
#include "npu/core_sim.hh"

namespace neu10
{

/** Abstract scheduling policy (uTOp + operation scheduler). */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    /** Policy name for reports ("Neu10", "Neu10-NH", "V10", "PMT"). */
    virtual std::string name() const = 0;

    /** Bind/preempt ME units. Called after completions are drained. */
    virtual void scheduleMes(NpuCoreSim &core, Cycles now) = 0;

    /** Start VE units and assign veShare to every running unit. */
    virtual void scheduleVes(NpuCoreSim &core, Cycles now) = 0;

    /** Next time-based reschedule, or kCyclesInf for none. */
    virtual Cycles nextWakeup(const NpuCoreSim &core, Cycles now)
    {
        (void)core;
        (void)now;
        return kCyclesInf;
    }
};

/** The four evaluated designs (§V-A). */
enum class PolicyKind
{
    Neu10 = 0,   ///< spatial-isolated + dynamic harvesting (NeuISA)
    Neu10NH,     ///< spatial-isolated, no harvesting (MIG-like)
    V10,         ///< operator-level temporal sharing (VLIW)
    Pmt,         ///< whole-core preemptive temporal sharing (VLIW)
};

/** Human-readable policy name. */
std::string policyName(PolicyKind kind);

/**
 * Parse a policy name back to its kind (case-insensitive, accepts
 * "neu10-nh" / "neu10nh" / "nh" for Neu10NH). Used by bench CLIs.
 * @throws FatalError on an unknown name.
 */
PolicyKind policyFromName(const std::string &name);

/** Instantiate a policy. */
std::unique_ptr<SchedulerPolicy> makePolicy(PolicyKind kind);

/** Which compiler backend a policy executes. */
bool policyUsesNeuIsa(PolicyKind kind);

} // namespace neu10

#endif // NEU10_SCHED_POLICY_HH
