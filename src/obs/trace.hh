/**
 * @file
 * Sim-time event tracing with Chrome trace-event export.
 *
 * The fleet's determinism contract (bit-identical results at any
 * FleetConfig::threads width and across engines) extends to traces:
 * every event carries *simulated* time, recording happens in the
 * deterministic event order of the owning per-core simulation, and
 * per-core buffers merge at epoch boundaries keyed by core index —
 * the same scheme EpochRunCollector uses for results. Two identical
 * configs therefore yield byte-identical trace files regardless of
 * host threading (enforced by tests/test_obs.cpp).
 *
 * Recording is lock-free in the hot path by construction, not by
 * atomics: a TraceBuffer has exactly one writer (the thread driving
 * its core's simulation), and ownership is handed to the aggregation
 * thread with the ServingResult it rides in. Disabled tracing costs
 * one branch on a cached pointer/flag at every instrumentation site —
 * bench_perf_engine's traced-off A/B against BENCH_PERF.json holds
 * the overhead under 2% (tools/bench_compare.py gates it).
 *
 * Export is the Chrome trace-event JSON array format understood by
 * chrome://tracing and https://ui.perfetto.dev: one process per
 * board (pid = board index), one thread per core (tid = fleet-wide
 * core index), plus a synthetic "controller" process for fleet-level
 * events (epochs, placement, rebalance, failover). Request lifecycle
 * spans use async nestable 'b'/'e' pairs — a core serves overlapping
 * requests, which duration ('X') events cannot represent — while
 * engine fast-forward jumps and epoch windows, which never overlap
 * on their track, are plain 'X' spans. tools/check_trace.py
 * validates schema, per-track monotonicity and span nesting.
 *
 * Event taxonomy and schema details: docs/OBSERVABILITY.md.
 */

#ifndef NEU10_OBS_TRACE_HH
#define NEU10_OBS_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace neu10
{

/** Tracing knobs, threaded through ServingConfig / FleetConfig. */
struct TraceConfig
{
    /** Master switch. Off (the default) must cost nothing beyond a
     * predictable branch at each instrumentation site. */
    bool enabled = false;

    /** Also record one span per engine fast-forward jump
     * (NpuCoreSim::advanceTo). High volume — one event per
     * scheduling event — so benches keep it off unless asked;
     * the invariance tests turn it on to pin down engine parity. */
    bool engineEvents = false;

    /** Sample fleet metrics (obs/metrics.hh) at epoch boundaries
     * into FleetResult::metrics. */
    bool metrics = false;
};

/** One typed event argument (numeric: counts, ids, cycles). */
struct TraceArg
{
    const char *key = "";
    double value = 0.0;
};

/** Maximum args per event (fixed so recording never allocates). */
inline constexpr int kTraceMaxArgs = 3;

/**
 * One recorded event. `name`/`cat` must be string literals (the
 * taxonomy in docs/OBSERVABILITY.md): events store the pointers and
 * outlive every recording scope.
 */
struct TraceEvent
{
    Cycles at = 0.0;        ///< start, cycles (buffer-relative)
    Cycles dur = 0.0;       ///< span length; 0 for instants
    std::uint64_t id = 0;   ///< async-span id ('b' phase only)
    char phase = 'i';       ///< 'X' span, 'i' instant, 'b' async span
    const char *name = "";
    const char *cat = "";
    int nargs = 0;
    TraceArg args[kTraceMaxArgs] = {};
};

/**
 * Per-core event recorder: single writer, no locks, append-only.
 * A disabled buffer drops everything; callers on hot paths should
 * still branch on enabled() (or a cached pointer) themselves so the
 * argument evaluation is skipped too.
 */
class TraceBuffer
{
  public:
    TraceBuffer() = default;
    explicit TraceBuffer(bool enabled) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }
    void enable(bool on) { enabled_ = on; }

    /** Point event at @p at. */
    void instant(Cycles at, const char *cat, const char *name);
    void instant(Cycles at, const char *cat, const char *name,
                 const char *k0, double v0);
    void instant(Cycles at, const char *cat, const char *name,
                 const char *k0, double v0, const char *k1, double v1);
    void instant(Cycles at, const char *cat, const char *name,
                 const char *k0, double v0, const char *k1, double v1,
                 const char *k2, double v2);

    /** Duration ('X') span [from, to). Spans of one (cat, name) on a
     * track must not partially overlap (Chrome requires nesting). */
    void span(Cycles from, Cycles to, const char *cat,
              const char *name);
    void span(Cycles from, Cycles to, const char *cat,
              const char *name, const char *k0, double v0);
    void span(Cycles from, Cycles to, const char *cat,
              const char *name, const char *k0, double v0,
              const char *k1, double v1);

    /** Async nestable span [from, to) under @p id — the request-
     * lifecycle shape: spans of distinct ids may overlap freely. */
    void asyncSpan(std::uint64_t id, Cycles from, Cycles to,
                   const char *cat, const char *name);
    void asyncSpan(std::uint64_t id, Cycles from, Cycles to,
                   const char *cat, const char *name, const char *k0,
                   double v0);
    void asyncSpan(std::uint64_t id, Cycles from, Cycles to,
                   const char *cat, const char *name, const char *k0,
                   double v0, const char *k1, double v1);

    const std::vector<TraceEvent> &events() const { return events_; }
    size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    void clear() { events_.clear(); }

  private:
    TraceEvent *start(Cycles at, Cycles dur, char phase,
                      const char *cat, const char *name);

    bool enabled_ = false;
    std::vector<TraceEvent> events_;
};

/**
 * A merged fleet trace: per-track (core) event lists assembled in
 * deterministic order by the aggregation thread. Track index is the
 * fleet-wide core index; kControllerTrack holds fleet-level events.
 */
class Trace
{
  public:
    /** Synthetic track for fleet-controller events (epoch windows,
     * placement, rebalance, failover bookkeeping). */
    static constexpr int kControllerTrack = -1;

    /** Board/core shape for pid/tid assignment in the export:
     * pid = track / cores_per_board, tid = track. The controller
     * track exports as its own pseudo-process (pid = num_boards). */
    void setTopology(unsigned coresPerBoard, unsigned numBoards);

    /** Core clock for the cycles -> microseconds conversion. */
    void setFreqHz(double freqHz) { freqHz_ = freqHz; }

    /** Append one event directly (controller-side serial use). */
    void add(int track, const TraceEvent &ev);

    /**
     * Merge a per-core buffer: every event time is shifted by
     * @p offset (the epoch's absolute start) and every nonzero async
     * id by @p idSalt (disambiguates per-epoch id spaces; pass
     * (epoch + 1) << 56). Call in core-index order on the
     * aggregation thread — the append order is the tie-break for
     * same-timestamp events in the export.
     */
    void append(int track, const TraceBuffer &buf, Cycles offset,
                std::uint64_t idSalt);

    bool empty() const { return tracks_.empty(); }
    std::uint64_t totalEvents() const;

    /** Tracks in ascending order (controller first). */
    const std::map<int, std::vector<TraceEvent>> &tracks() const
    {
        return tracks_;
    }

    /**
     * Render the whole trace as Chrome trace-event JSON. The output
     * is a pure function of the recorded events — the byte stream
     * the determinism tests compare.
     */
    std::string chromeJson() const;

    /** Write chromeJson() to @p f. */
    void writeChromeJson(std::FILE *f) const;

    /** Write chromeJson() to @p path. @return false on I/O error. */
    bool writeChromeJson(const std::string &path) const;

  private:
    // Ordered map: export order (and thus the byte stream) must not
    // depend on insertion order or hashing.
    std::map<int, std::vector<TraceEvent>> tracks_;
    unsigned coresPerBoard_ = 0;
    unsigned numBoards_ = 0;
    double freqHz_ = 1e9;
};

} // namespace neu10

#endif // NEU10_OBS_TRACE_HH
