#include "obs/metrics.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

MetricId
MetricsRegistry::registerMetric(const std::string &name,
                                MetricKind kind)
{
    for (MetricId i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i].name == name) {
            NEU10_ASSERT(metrics_[i].kind == kind,
                         "metric '%s' re-registered with a different "
                         "kind", name.c_str());
            return i;
        }
    }
    Metric m;
    m.name = name;
    m.kind = kind;
    metrics_.push_back(std::move(m));
    return static_cast<MetricId>(metrics_.size() - 1);
}

MetricId
MetricsRegistry::counter(const std::string &name)
{
    return registerMetric(name, MetricKind::Counter);
}

MetricId
MetricsRegistry::gauge(const std::string &name)
{
    return registerMetric(name, MetricKind::Gauge);
}

MetricId
MetricsRegistry::histogram(const std::string &name)
{
    return registerMetric(name, MetricKind::Histogram);
}

void
MetricsRegistry::add(MetricId id, double delta)
{
    if (!enabled_)
        return;
    metrics_[id].value += delta;
}

void
MetricsRegistry::set(MetricId id, double value)
{
    if (!enabled_)
        return;
    metrics_[id].value = value;
}

void
MetricsRegistry::observe(MetricId id, double value)
{
    if (!enabled_)
        return;
    metrics_[id].dist.add(value);
}

void
MetricsRegistry::sample(Cycles now)
{
    if (!enabled_)
        return;
    for (Metric &m : metrics_) {
        const double v = m.kind == MetricKind::Histogram
                             ? static_cast<double>(m.dist.count())
                             : m.value;
        m.series.record(now, v);
    }
}

double
MetricsRegistry::value(MetricId id) const
{
    const Metric &m = metrics_[id];
    return m.kind == MetricKind::Histogram
               ? static_cast<double>(m.dist.count())
               : m.value;
}

const Metric *
MetricsRegistry::find(const std::string &name) const
{
    for (const Metric &m : metrics_)
        if (m.name == name)
            return &m;
    return nullptr;
}

namespace
{

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "unknown";
}

} // anonymous namespace

std::string
MetricsRegistry::json(double freqHz) const
{
    std::string out;
    out += "{\n";
    out += "\"schema\": \"neu10-metrics-v1\",\n";
    out += csprintf("\"freq_hz\": %.0f,\n", freqHz);
    out += "\"metrics\": [\n";
    // Registration order: deterministic (registration happens on the
    // serial fleet path) and meaningful to a reader, unlike any
    // hash order.
    for (size_t i = 0; i < metrics_.size(); ++i) {
        const Metric &m = metrics_[i];
        out += csprintf("{\"name\":\"%s\",\"kind\":\"%s\"",
                        m.name.c_str(), kindName(m.kind));
        if (m.kind == MetricKind::Histogram) {
            out += csprintf(
                ",\"count\":%zu,\"mean\":%.9g,\"p50\":%.9g,"
                "\"p95\":%.9g,\"p99\":%.9g",
                m.dist.count(), m.dist.mean(),
                m.dist.percentile(0.50), m.dist.percentile(0.95),
                m.dist.percentile(0.99));
        }
        out += ",\"points\":[";
        const std::vector<TimePoint> &pts = m.series.points();
        for (size_t p = 0; p < pts.size(); ++p) {
            if (p > 0)
                out += ",";
            out += csprintf("[%.9g,%.9g]", pts[p].time,
                            pts[p].value);
        }
        out += "]}";
        out += i + 1 < metrics_.size() ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
}

bool
MetricsRegistry::writeJson(const std::string &path,
                           double freqHz) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write metrics to %s", path.c_str());
        return false;
    }
    const std::string body = json(freqHz);
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
}

} // namespace neu10
