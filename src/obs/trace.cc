#include "obs/trace.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

// ------------------------------------------------------ TraceBuffer

TraceEvent *
TraceBuffer::start(Cycles at, Cycles dur, char phase, const char *cat,
                   const char *name)
{
    events_.emplace_back();
    TraceEvent &ev = events_.back();
    ev.at = at;
    ev.dur = dur;
    ev.phase = phase;
    ev.cat = cat;
    ev.name = name;
    return &ev;
}

void
TraceBuffer::instant(Cycles at, const char *cat, const char *name)
{
    if (!enabled_)
        return;
    start(at, 0.0, 'i', cat, name);
}

void
TraceBuffer::instant(Cycles at, const char *cat, const char *name,
                     const char *k0, double v0)
{
    if (!enabled_)
        return;
    TraceEvent *ev = start(at, 0.0, 'i', cat, name);
    ev->nargs = 1;
    ev->args[0] = {k0, v0};
}

void
TraceBuffer::instant(Cycles at, const char *cat, const char *name,
                     const char *k0, double v0, const char *k1,
                     double v1)
{
    if (!enabled_)
        return;
    TraceEvent *ev = start(at, 0.0, 'i', cat, name);
    ev->nargs = 2;
    ev->args[0] = {k0, v0};
    ev->args[1] = {k1, v1};
}

void
TraceBuffer::instant(Cycles at, const char *cat, const char *name,
                     const char *k0, double v0, const char *k1,
                     double v1, const char *k2, double v2)
{
    if (!enabled_)
        return;
    TraceEvent *ev = start(at, 0.0, 'i', cat, name);
    ev->nargs = 3;
    ev->args[0] = {k0, v0};
    ev->args[1] = {k1, v1};
    ev->args[2] = {k2, v2};
}

void
TraceBuffer::span(Cycles from, Cycles to, const char *cat,
                  const char *name)
{
    if (!enabled_)
        return;
    start(from, to - from, 'X', cat, name);
}

void
TraceBuffer::span(Cycles from, Cycles to, const char *cat,
                  const char *name, const char *k0, double v0)
{
    if (!enabled_)
        return;
    TraceEvent *ev = start(from, to - from, 'X', cat, name);
    ev->nargs = 1;
    ev->args[0] = {k0, v0};
}

void
TraceBuffer::span(Cycles from, Cycles to, const char *cat,
                  const char *name, const char *k0, double v0,
                  const char *k1, double v1)
{
    if (!enabled_)
        return;
    TraceEvent *ev = start(from, to - from, 'X', cat, name);
    ev->nargs = 2;
    ev->args[0] = {k0, v0};
    ev->args[1] = {k1, v1};
}

void
TraceBuffer::asyncSpan(std::uint64_t id, Cycles from, Cycles to,
                       const char *cat, const char *name)
{
    if (!enabled_)
        return;
    TraceEvent *ev = start(from, to - from, 'b', cat, name);
    ev->id = id;
}

void
TraceBuffer::asyncSpan(std::uint64_t id, Cycles from, Cycles to,
                       const char *cat, const char *name,
                       const char *k0, double v0)
{
    if (!enabled_)
        return;
    TraceEvent *ev = start(from, to - from, 'b', cat, name);
    ev->id = id;
    ev->nargs = 1;
    ev->args[0] = {k0, v0};
}

void
TraceBuffer::asyncSpan(std::uint64_t id, Cycles from, Cycles to,
                       const char *cat, const char *name,
                       const char *k0, double v0, const char *k1,
                       double v1)
{
    if (!enabled_)
        return;
    TraceEvent *ev = start(from, to - from, 'b', cat, name);
    ev->id = id;
    ev->nargs = 2;
    ev->args[0] = {k0, v0};
    ev->args[1] = {k1, v1};
}

// ------------------------------------------------------------ Trace

void
Trace::setTopology(unsigned coresPerBoard, unsigned numBoards)
{
    coresPerBoard_ = coresPerBoard;
    numBoards_ = numBoards;
}

void
Trace::add(int track, const TraceEvent &ev)
{
    tracks_[track].push_back(ev);
}

void
Trace::append(int track, const TraceBuffer &buf, Cycles offset,
              std::uint64_t idSalt)
{
    if (buf.empty())
        return;
    std::vector<TraceEvent> &dst = tracks_[track];
    dst.reserve(dst.size() + buf.size());
    for (TraceEvent ev : buf.events()) {
        ev.at += offset;
        if (ev.id != 0)
            ev.id += idSalt;
        dst.push_back(ev);
    }
}

std::uint64_t
Trace::totalEvents() const
{
    std::uint64_t n = 0;
    for (const auto &[track, evs] : tracks_)
        n += evs.size();
    return n;
}

namespace
{

/** One export-ready entry: sort key (simulated start time) plus the
 * rendered JSON object. 'b' records expand into a begin and an end
 * entry; stable sort keeps the recording order as the tie-break. */
struct Emitted
{
    Cycles ts = 0.0;
    std::string line;
};

std::string
argsJson(const TraceEvent &ev)
{
    if (ev.nargs == 0)
        return "";
    std::string s = ",\"args\":{";
    for (int i = 0; i < ev.nargs; ++i) {
        if (i > 0)
            s += ",";
        // JSON has no infinity/NaN literal; kCyclesInf sentinels
        // (e.g. a board lost for good) export as -1.
        const double v = std::isfinite(ev.args[i].value)
                             ? ev.args[i].value
                             : -1.0;
        s += csprintf("\"%s\":%.9g", ev.args[i].key, v);
    }
    s += "}";
    return s;
}

} // anonymous namespace

std::string
Trace::chromeJson() const
{
    // Cycles -> microseconds (the trace-event time unit), clamped at
    // zero: a standalone serving trace can hold carried-backlog
    // stamps from before its own t = 0 (fleet merges re-anchor them
    // to absolute time before export).
    const auto us = [&](Cycles at) {
        const double v = at / freqHz_ * 1e6;
        return v < 0.0 ? 0.0 : v;
    };
    const auto pid_of = [&](int track) -> unsigned {
        if (track < 0)
            return numBoards_;
        return coresPerBoard_ > 0
                   ? static_cast<unsigned>(track) / coresPerBoard_
                   : 0u;
    };
    const auto tid_of = [&](int track) -> unsigned {
        return track < 0 ? 0u : static_cast<unsigned>(track);
    };

    std::string out;
    out += "{\n";
    out += "\"displayTimeUnit\": \"ms\",\n";
    out += csprintf("\"otherData\": {\"clock_hz\": %.0f},\n", freqHz_);
    out += "\"traceEvents\": [\n";

    bool first = true;
    const auto emit = [&](const std::string &line) {
        if (!first)
            out += ",\n";
        out += line;
        first = false;
    };

    // Metadata: name every process (board) once and every thread
    // (core). Map order makes this deterministic.
    std::vector<unsigned> named_pids;
    for (const auto &[track, evs] : tracks_) {
        (void)evs;
        const unsigned pid = pid_of(track);
        const unsigned tid = tid_of(track);
        if (std::find(named_pids.begin(), named_pids.end(), pid) ==
            named_pids.end()) {
            named_pids.push_back(pid);
            const std::string pname =
                track < 0 ? std::string("controller")
                          : csprintf("board %u", pid);
            emit(csprintf("{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                          "\"name\":\"process_name\",\"args\":"
                          "{\"name\":\"%s\"}}",
                          pid, tid, pname.c_str()));
        }
        const std::string tname =
            track < 0 ? std::string("fleet")
                      : csprintf("core %u", tid);
        emit(csprintf("{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                      "\"name\":\"thread_name\",\"args\":"
                      "{\"name\":\"%s\"}}",
                      pid, tid, tname.c_str()));
    }

    for (const auto &[track, evs] : tracks_) {
        const unsigned pid = pid_of(track);
        const unsigned tid = tid_of(track);
        std::vector<Emitted> rows;
        rows.reserve(evs.size() * 2);
        for (const TraceEvent &ev : evs) {
            const std::string args = argsJson(ev);
            switch (ev.phase) {
              case 'X':
                rows.push_back(
                    {ev.at,
                     csprintf("{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
                              "\"ts\":%.6f,\"dur\":%.6f,"
                              "\"cat\":\"%s\",\"name\":\"%s\"%s}",
                              pid, tid, us(ev.at),
                              us(ev.at + ev.dur) - us(ev.at),
                              ev.cat, ev.name, args.c_str())});
                break;
              case 'b':
                rows.push_back(
                    {ev.at,
                     csprintf("{\"ph\":\"b\",\"pid\":%u,\"tid\":%u,"
                              "\"ts\":%.6f,\"cat\":\"%s\","
                              "\"name\":\"%s\",\"id\":\"0x%llx\"%s}",
                              pid, tid, us(ev.at), ev.cat, ev.name,
                              static_cast<unsigned long long>(ev.id),
                              args.c_str())});
                rows.push_back(
                    {ev.at + ev.dur,
                     csprintf("{\"ph\":\"e\",\"pid\":%u,\"tid\":%u,"
                              "\"ts\":%.6f,\"cat\":\"%s\","
                              "\"name\":\"%s\",\"id\":\"0x%llx\"}",
                              pid, tid, us(ev.at + ev.dur), ev.cat,
                              ev.name,
                              static_cast<unsigned long long>(
                                  ev.id))});
                break;
              default:
                rows.push_back(
                    {ev.at,
                     csprintf("{\"ph\":\"i\",\"pid\":%u,\"tid\":%u,"
                              "\"ts\":%.6f,\"s\":\"t\","
                              "\"cat\":\"%s\",\"name\":\"%s\"%s}",
                              pid, tid, us(ev.at), ev.cat, ev.name,
                              args.c_str())});
                break;
            }
        }
        // Per-track monotonic timestamps; stable so same-time events
        // keep their deterministic recording order.
        std::stable_sort(rows.begin(), rows.end(),
                         [](const Emitted &a, const Emitted &b) {
                             return a.ts < b.ts;
                         });
        for (const Emitted &row : rows)
            emit(row.line);
    }

    out += "\n]}\n";
    return out;
}

void
Trace::writeChromeJson(std::FILE *f) const
{
    const std::string json = chromeJson();
    std::fwrite(json.data(), 1, json.size(), f);
}

bool
Trace::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot write trace to %s", path.c_str());
        return false;
    }
    writeChromeJson(f);
    std::fclose(f);
    return true;
}

} // namespace neu10
