/**
 * @file
 * Metrics registry: counters, gauges and histograms sampled at epoch
 * boundaries into time-series (stats/timeseries), exported as
 * machine-readable JSON next to the trace (and in the same spirit as
 * BENCH_PERF.json: a schema-versioned record tools can diff).
 *
 * The registry follows the trace subsystem's determinism and
 * zero-overhead-off rules (obs/trace.hh): a disabled registry's
 * mutators cost one branch on a cached flag; recording and sampling
 * happen on the fleet's serial aggregation thread in deterministic
 * order; and the export walks metrics in registration order — never
 * a hash order — so identical runs produce byte-identical files.
 *
 * Schema: docs/OBSERVABILITY.md ("neu10-metrics-v1").
 */

#ifndef NEU10_OBS_METRICS_HH
#define NEU10_OBS_METRICS_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/distribution.hh"
#include "stats/timeseries.hh"

namespace neu10
{

/** Metric families (see file doc). */
enum class MetricKind
{
    Counter = 0, ///< monotone accumulator (completions, failures)
    Gauge,       ///< last-write-wins level (backlog, imbalance)
    Histogram,   ///< sample distribution + per-sample count series
};

/** Stable handle returned by registration; cheap to copy. */
using MetricId = std::uint32_t;

/** One registered metric and its sampled history. */
struct Metric
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    double value = 0.0;     ///< current counter/gauge level
    Distribution dist;      ///< histogram samples
    TimeSeries series;      ///< value (or sample count) per sample()
};

/**
 * Registry of named metrics. Register once up front, mutate through
 * the ids, call sample() at each epoch boundary, export at the end.
 * Single-writer like TraceBuffer: the fleet mutates it only from the
 * serial aggregation path.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    explicit MetricsRegistry(bool enabled) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }
    void enable(bool on) { enabled_ = on; }

    /** Register (or look up, by exact name) a metric. Disabled
     * registries still register — ids must be valid either way so
     * call sites stay branch-free at registration time. */
    MetricId counter(const std::string &name);
    MetricId gauge(const std::string &name);
    MetricId histogram(const std::string &name);

    /** Counter increment (no-op when disabled). */
    void add(MetricId id, double delta);

    /** Gauge level set (no-op when disabled). */
    void set(MetricId id, double value);

    /** Histogram observation (no-op when disabled). */
    void observe(MetricId id, double value);

    /** Snapshot every metric's current value (histograms: their
     * sample count) into its time-series at @p now. */
    void sample(Cycles now);

    /** Current counter/gauge level (histograms: sample count). */
    double value(MetricId id) const;

    const std::vector<Metric> &metrics() const { return metrics_; }

    /** Find by name; nullptr when absent (tests, tooling). */
    const Metric *find(const std::string &name) const;

    bool empty() const { return metrics_.empty(); }

    /** Render as "neu10-metrics-v1" JSON (deterministic bytes). */
    std::string json(double freqHz) const;

    /** Write json() to @p path. @return false on I/O error. */
    bool writeJson(const std::string &path, double freqHz) const;

  private:
    MetricId registerMetric(const std::string &name, MetricKind kind);

    bool enabled_ = false;
    std::vector<Metric> metrics_;
};

} // namespace neu10

#endif // NEU10_OBS_METRICS_HH
