#include "isa/builders.hh"

#include "common/logging.hh"

namespace neu10
{

namespace
{

VliwInstruction
bundle(unsigned num_mes, unsigned num_ves)
{
    VliwInstruction inst;
    inst.me.resize(num_mes);
    inst.ve.resize(num_ves);
    return inst;
}

} // anonymous namespace

VliwProgram
makeVliwMatmulRelu(unsigned num_mes, unsigned num_ves, unsigned pops)
{
    NEU10_ASSERT(num_mes > 0 && num_ves > 0 && pops > 0,
                 "matmul+relu needs engines and work");
    VliwProgram prog;
    prog.numMeSlots = num_mes;
    prog.numVeSlots = num_ves;

    // Push phase: feed the systolic arrays.
    VliwInstruction push = bundle(num_mes, num_ves);
    for (unsigned m = 0; m < num_mes; ++m)
        push.me[m] = {MeOpcode::Push, static_cast<std::uint8_t>(m)};
    prog.code.push_back(push);

    // Pop + ReLU phase (Fig. 6): instruction i pops every ME into
    // registers, instruction i+1 applies ReLU on the VEs while the next
    // pop occupies the MEs again. The VLIW lockstep forces the VEs to
    // wait out the 8-cycle pops — the VE idleness the paper measures.
    for (unsigned p = 0; p < pops; ++p) {
        VliwInstruction pop = bundle(num_mes, num_ves);
        for (unsigned m = 0; m < num_mes; ++m)
            pop.me[m] = {MeOpcode::Pop,
                         static_cast<std::uint8_t>(m % 256)};
        prog.code.push_back(pop);

        VliwInstruction relu = bundle(num_mes, num_ves);
        for (unsigned v = 0; v < num_ves && v < num_mes; ++v) {
            relu.ve[v] = {VeOpcode::Relu,
                          static_cast<std::uint8_t>(v),
                          static_cast<std::uint8_t>(v), 0};
        }
        prog.code.push_back(relu);
    }
    prog.validate();
    return prog;
}

NeuIsaProgram
makeNeuIsaMatmulRelu(unsigned tiles, unsigned num_ves, unsigned pops)
{
    NEU10_ASSERT(tiles > 0 && num_ves > 0 && pops > 0,
                 "matmul+relu needs tiles and work");
    NeuIsaProgram prog;
    prog.maxMeUTopsPerGroup = tiles;
    prog.numVeSlots = num_ves;

    // All tiles share one snippet (NeuISA's code-inflation mitigation):
    // the snippet drives exactly one ME and post-processes on the VEs.
    UTop me_utop;
    me_utop.kind = UTopKind::Me;
    for (unsigned p = 0; p < pops; ++p) {
        VliwInstruction pop = bundle(1, num_ves);
        pop.me[0] = {MeOpcode::Pop, static_cast<std::uint8_t>(p % 256)};
        pop.ve[0] = {VeOpcode::Relu, 0, 0, 0};
        me_utop.code.push_back(pop);
    }
    VliwInstruction fin = bundle(1, num_ves);
    fin.misc.op = MiscOpcode::UTopFinish;
    me_utop.code.push_back(fin);
    me_utop.cost.meCycles = pops * kMePopCycles;
    me_utop.cost.veCycles = pops * kVeOpCycles;

    prog.snippets.push_back(me_utop);
    UTopGroup grp;
    for (unsigned t = 0; t < tiles; ++t)
        grp.meUTops.push_back(0); // shared snippet index
    prog.table.push_back(grp);
    prog.validate();
    return prog;
}

NeuIsaProgram
makeNeuIsaLoop(unsigned iterations, unsigned num_ves, unsigned counter)
{
    NEU10_ASSERT(iterations >= 1, "loop needs at least one iteration");
    NEU10_ASSERT(num_ves > 0, "need at least one VE slot");
    NeuIsaProgram prog;
    prog.maxMeUTopsPerGroup = 1;
    prog.numVeSlots = num_ves;

    auto make_body = [&](Cycles me_cycles) {
        UTop u;
        u.kind = UTopKind::Me;
        VliwInstruction work = bundle(1, num_ves);
        work.me[0] = {MeOpcode::Pop, 0};
        u.code.push_back(work);
        VliwInstruction fin = bundle(1, num_ves);
        fin.misc.op = MiscOpcode::UTopFinish;
        u.code.push_back(fin);
        u.cost.meCycles = me_cycles;
        return u;
    };

    // Groups 0 and 1: plain body uTOps.
    prog.snippets.push_back(make_body(kMePopCycles));
    prog.snippets.push_back(make_body(kMePopCycles));

    // Group 2: increments scratch[counter]; loops back to group 0 while
    // count < iterations (the Fig. 15 structure).
    UTop tail;
    tail.kind = UTopKind::Ve;

    auto misc_inst = [&](MiscSlot m) {
        VliwInstruction i = bundle(0, num_ves);
        i.misc = m;
        return i;
    };

    const auto ctr = static_cast<std::int64_t>(counter);
    // 0: r1 = scratch[counter]
    tail.code.push_back(misc_inst({MiscOpcode::SLoad, 1, 0, 0, ctr}));
    // 1: r1 = r1 + 1
    tail.code.push_back(misc_inst({MiscOpcode::SAddImm, 1, 1, 0, 1}));
    // 2: scratch[counter] = r1
    tail.code.push_back(misc_inst({MiscOpcode::SStore, 0, 1, 0, ctr}));
    // 3: r2 = iterations
    tail.code.push_back(misc_inst(
        {MiscOpcode::SLoadImm, 2, 0, 0,
         static_cast<std::int64_t>(iterations)}));
    // 4: if r1 >= r2 goto 6 (exit: fall through to finish)
    tail.code.push_back(misc_inst({MiscOpcode::BranchGe, 0, 1, 2, 6}));
    // 5: uTop.nextGroup %r0  (i.e. group 0; %r0 is always zero)
    tail.code.push_back(misc_inst({MiscOpcode::UTopNextGroup, 0, 0, 0, 0}));
    // 6: uTop.finish
    tail.code.push_back(misc_inst({MiscOpcode::UTopFinish, 0, 0, 0, 0}));
    prog.snippets.push_back(tail);

    UTopGroup g0, g1, g2;
    g0.meUTops.push_back(0);
    g1.meUTops.push_back(1);
    g2.veUTop = 2;
    prog.table = {g0, g1, g2};
    prog.validate();
    return prog;
}

} // namespace neu10
