#include "isa/encoding.hh"

#include <cstring>

#include "common/logging.hh"

namespace neu10
{

namespace
{

/** Little-endian byte writer. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked little-endian byte reader. */
class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &buf) : buf_(buf) {}

    std::uint8_t
    u8()
    {
        need(1);
        return buf_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool exhausted() const { return pos_ == buf_.size(); }

  private:
    void
    need(size_t n)
    {
        if (pos_ + n > buf_.size())
            fatal("truncated NeuISA image (need %zu bytes at offset %zu, "
                  "have %zu)", n, pos_, buf_.size());
    }

    const std::vector<std::uint8_t> &buf_;
    size_t pos_ = 0;
};

void
encodeInst(Writer &w, const VliwInstruction &inst)
{
    w.u32(static_cast<std::uint32_t>(inst.me.size()));
    for (const auto &s : inst.me) {
        w.u8(static_cast<std::uint8_t>(s.op));
        w.u8(s.reg);
    }
    w.u32(static_cast<std::uint32_t>(inst.ve.size()));
    for (const auto &s : inst.ve) {
        w.u8(static_cast<std::uint8_t>(s.op));
        w.u8(s.dst);
        w.u8(s.src0);
        w.u8(s.src1);
    }
    for (const LsSlot *ls : {&inst.ls0, &inst.ls1}) {
        w.u8(static_cast<std::uint8_t>(ls->op));
        w.u8(ls->reg);
        w.u32(ls->addr);
    }
    w.u8(static_cast<std::uint8_t>(inst.misc.op));
    w.u8(inst.misc.dst);
    w.u8(inst.misc.src0);
    w.u8(inst.misc.src1);
    w.u64(static_cast<std::uint64_t>(inst.misc.imm));
}

VliwInstruction
decodeInst(Reader &r)
{
    VliwInstruction inst;
    const std::uint32_t nme = r.u32();
    if (nme > 1024)
        fatal("implausible ME slot count %u in image", nme);
    inst.me.resize(nme);
    for (auto &s : inst.me) {
        s.op = static_cast<MeOpcode>(r.u8());
        s.reg = r.u8();
    }
    const std::uint32_t nve = r.u32();
    if (nve > 1024)
        fatal("implausible VE slot count %u in image", nve);
    inst.ve.resize(nve);
    for (auto &s : inst.ve) {
        s.op = static_cast<VeOpcode>(r.u8());
        s.dst = r.u8();
        s.src0 = r.u8();
        s.src1 = r.u8();
    }
    for (LsSlot *ls : {&inst.ls0, &inst.ls1}) {
        ls->op = static_cast<LsOpcode>(r.u8());
        ls->reg = r.u8();
        ls->addr = r.u32();
    }
    inst.misc.op = static_cast<MiscOpcode>(r.u8());
    inst.misc.dst = r.u8();
    inst.misc.src0 = r.u8();
    inst.misc.src1 = r.u8();
    inst.misc.imm = static_cast<std::int64_t>(r.u64());
    return inst;
}

} // anonymous namespace

std::vector<std::uint8_t>
encode(const NeuIsaProgram &prog)
{
    prog.validate();
    Writer w;
    w.u32(kNeuIsaMagic);
    w.u32(kNeuIsaVersion);
    w.u32(prog.maxMeUTopsPerGroup);
    w.u32(prog.numVeSlots);

    w.u32(static_cast<std::uint32_t>(prog.snippets.size()));
    for (const auto &u : prog.snippets) {
        w.u8(static_cast<std::uint8_t>(u.kind));
        w.f64(u.cost.meCycles);
        w.f64(u.cost.veCycles);
        w.u64(u.cost.hbmBytes);
        w.u32(static_cast<std::uint32_t>(u.code.size()));
        for (const auto &inst : u.code)
            encodeInst(w, inst);
    }

    w.u32(static_cast<std::uint32_t>(prog.table.size()));
    for (const auto &grp : prog.table) {
        w.u32(static_cast<std::uint32_t>(grp.meUTops.size()));
        for (auto idx : grp.meUTops)
            w.u32(idx);
        // Null entry encoding mirrors the paper's exec table (Fig. 15).
        w.u32(grp.veUTop ? *grp.veUTop : 0xffffffffu);
    }
    return w.take();
}

NeuIsaProgram
decode(const std::vector<std::uint8_t> &image)
{
    Reader r(image);
    if (r.u32() != kNeuIsaMagic)
        fatal("bad NeuISA image magic");
    const std::uint32_t version = r.u32();
    if (version != kNeuIsaVersion)
        fatal("unsupported NeuISA image version %u", version);

    NeuIsaProgram prog;
    prog.maxMeUTopsPerGroup = r.u32();
    prog.numVeSlots = r.u32();

    const std::uint32_t nsnip = r.u32();
    if (nsnip > (1u << 24))
        fatal("implausible snippet count %u", nsnip);
    prog.snippets.resize(nsnip);
    for (auto &u : prog.snippets) {
        u.kind = static_cast<UTopKind>(r.u8());
        u.cost.meCycles = r.f64();
        u.cost.veCycles = r.f64();
        u.cost.hbmBytes = r.u64();
        const std::uint32_t ninst = r.u32();
        if (ninst > (1u << 24))
            fatal("implausible instruction count %u", ninst);
        u.code.resize(ninst);
        for (auto &inst : u.code)
            inst = decodeInst(r);
    }

    const std::uint32_t ngroups = r.u32();
    if (ngroups > (1u << 24))
        fatal("implausible group count %u", ngroups);
    prog.table.resize(ngroups);
    for (auto &grp : prog.table) {
        const std::uint32_t nme = r.u32();
        if (nme > (1u << 16))
            fatal("implausible group width %u", nme);
        grp.meUTops.resize(nme);
        for (auto &idx : grp.meUTops)
            idx = r.u32();
        const std::uint32_t ve = r.u32();
        if (ve != 0xffffffffu)
            grp.veUTop = ve;
    }

    if (!r.exhausted())
        fatal("trailing bytes after NeuISA image");
    prog.validate();
    return prog;
}

} // namespace neu10
