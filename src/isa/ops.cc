#include "isa/ops.hh"

#include "common/logging.hh"

namespace neu10
{

Cycles
meOpCycles(MeOpcode op)
{
    switch (op) {
      case MeOpcode::Nop:
        return 0.0;
      case MeOpcode::Push:
        return kMePushCycles;
      case MeOpcode::Pop:
        return kMePopCycles;
    }
    panic("unknown ME opcode %d", static_cast<int>(op));
}

Cycles
veOpCycles(VeOpcode op)
{
    return op == VeOpcode::Nop ? 0.0 : kVeOpCycles;
}

std::string
toString(MeOpcode op)
{
    switch (op) {
      case MeOpcode::Nop: return "nop";
      case MeOpcode::Push: return "push";
      case MeOpcode::Pop: return "pop";
    }
    return "me.bad";
}

std::string
toString(VeOpcode op)
{
    switch (op) {
      case VeOpcode::Nop: return "nop";
      case VeOpcode::Add: return "vadd";
      case VeOpcode::Mul: return "vmul";
      case VeOpcode::Max: return "vmax";
      case VeOpcode::Relu: return "relu";
      case VeOpcode::Sigmoid: return "sigmoid";
      case VeOpcode::Tanh: return "tanh";
      case VeOpcode::Exp: return "vexp";
      case VeOpcode::Reciprocal: return "vrcp";
      case VeOpcode::Reduce: return "vred";
      case VeOpcode::Copy: return "vcpy";
    }
    return "ve.bad";
}

std::string
toString(LsOpcode op)
{
    switch (op) {
      case LsOpcode::Nop: return "nop";
      case LsOpcode::Load: return "load";
      case LsOpcode::Store: return "store";
    }
    return "ls.bad";
}

std::string
toString(MiscOpcode op)
{
    switch (op) {
      case MiscOpcode::Nop: return "nop";
      case MiscOpcode::DmaIn: return "dma.in";
      case MiscOpcode::DmaOut: return "dma.out";
      case MiscOpcode::Sync: return "sync";
      case MiscOpcode::SLoadImm: return "s.li";
      case MiscOpcode::SAdd: return "s.add";
      case MiscOpcode::SAddImm: return "s.addi";
      case MiscOpcode::SLoad: return "s.ld";
      case MiscOpcode::SStore: return "s.st";
      case MiscOpcode::BranchLt: return "b.lt";
      case MiscOpcode::BranchGe: return "b.ge";
      case MiscOpcode::UTopFinish: return "uTop.finish";
      case MiscOpcode::UTopNextGroup: return "uTop.nextGroup";
      case MiscOpcode::UTopGroup: return "uTop.group";
      case MiscOpcode::UTopIndex: return "uTop.index";
    }
    return "misc.bad";
}

} // namespace neu10
