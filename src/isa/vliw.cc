#include "isa/vliw.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

Cycles
VliwInstruction::latency() const
{
    Cycles lat = 1.0; // issue cycle
    for (const auto &s : me)
        lat = std::max(lat, meOpCycles(s.op));
    for (const auto &s : ve)
        lat = std::max(lat, veOpCycles(s.op));
    return lat;
}

Cycles
VliwInstruction::meBusyCycles() const
{
    Cycles busy = 0.0;
    for (const auto &s : me)
        busy += meOpCycles(s.op);
    return busy;
}

Cycles
VliwInstruction::veBusyCycles() const
{
    Cycles busy = 0.0;
    for (const auto &s : ve)
        busy += veOpCycles(s.op);
    return busy;
}

std::string
VliwInstruction::toString() const
{
    std::vector<std::string> parts;
    parts.reserve(me.size() + ve.size() + 1);
    for (size_t i = 0; i < me.size(); ++i)
        parts.push_back(csprintf("%s ME%zu->R%u",
                                 neu10::toString(me[i].op).c_str(), i,
                                 me[i].reg));
    for (const auto &s : ve)
        parts.push_back(csprintf("%s R%u,R%u->R%u",
                                 neu10::toString(s.op).c_str(), s.src0,
                                 s.src1, s.dst));
    parts.push_back(neu10::toString(misc.op));
    return join(parts, " | ");
}

namespace
{

bool
isControlOp(MiscOpcode op)
{
    switch (op) {
      case MiscOpcode::UTopFinish:
      case MiscOpcode::UTopNextGroup:
      case MiscOpcode::UTopGroup:
      case MiscOpcode::UTopIndex:
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

void
VliwProgram::validate() const
{
    if (numMeSlots == 0 && numVeSlots == 0)
        fatal("VLIW program declares no execution slots");
    for (size_t pc = 0; pc < code.size(); ++pc) {
        const auto &inst = code[pc];
        if (inst.me.size() != numMeSlots)
            fatal("instruction %zu has %zu ME slots, program declares %u",
                  pc, inst.me.size(), numMeSlots);
        if (inst.ve.size() != numVeSlots)
            fatal("instruction %zu has %zu VE slots, program declares %u",
                  pc, inst.ve.size(), numVeSlots);
        if (isControlOp(inst.misc.op))
            fatal("instruction %zu uses NeuISA control op '%s' in a "
                  "classic VLIW program", pc,
                  neu10::toString(inst.misc.op).c_str());
    }
}

Cycles
VliwProgram::totalMeBusy() const
{
    Cycles busy = 0.0;
    for (const auto &inst : code)
        busy += inst.meBusyCycles();
    return busy;
}

Cycles
VliwProgram::totalVeBusy() const
{
    Cycles busy = 0.0;
    for (const auto &inst : code)
        busy += inst.veBusyCycles();
    return busy;
}

Cycles
VliwProgram::totalLatency() const
{
    Cycles lat = 0.0;
    for (const auto &inst : code)
        lat += inst.latency();
    return lat;
}

} // namespace neu10
