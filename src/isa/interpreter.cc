#include "isa/interpreter.hh"

#include <array>

#include "common/logging.hh"

namespace neu10
{

Interpreter::Interpreter(size_t scratch_words)
    : scratch_(scratch_words, 0)
{
}

std::int64_t
Interpreter::scratch(size_t idx) const
{
    NEU10_ASSERT(idx < scratch_.size(), "scratch index %zu out of range",
                 idx);
    return scratch_[idx];
}

void
Interpreter::setScratch(size_t idx, std::int64_t value)
{
    NEU10_ASSERT(idx < scratch_.size(), "scratch index %zu out of range",
                 idx);
    scratch_[idx] = value;
}

UTopRunResult
Interpreter::runUTop(const UTop &u, std::uint32_t group_index,
                     std::uint32_t utop_index)
{
    UTopRunResult res;
    if (u.code.empty()) {
        // Trace-mode uTOp: no listing; behaves as straight-line code
        // that finishes immediately with its aggregate cost.
        res.finished = true;
        return res;
    }

    std::array<std::int64_t, kNumScalarRegs> regs{};
    size_t pc = 0;
    while (pc < u.code.size()) {
        if (res.instsExecuted >= instLimit_)
            panic("uTOp exceeded instruction limit %llu (runaway loop?)",
                  static_cast<unsigned long long>(instLimit_));
        const VliwInstruction &inst = u.code[pc];
        ++res.instsExecuted;
        res.issueCycles += inst.latency();

        const MiscSlot &m = inst.misc;
        bool branched = false;
        auto wreg = [&](std::uint8_t r, std::int64_t v) {
            NEU10_ASSERT(r < kNumScalarRegs, "bad scalar reg %u", r);
            if (r != 0) // %r0 is hardwired to zero
                regs[r] = v;
        };
        auto rreg = [&](std::uint8_t r) -> std::int64_t {
            NEU10_ASSERT(r < kNumScalarRegs, "bad scalar reg %u", r);
            return r == 0 ? 0 : regs[r];
        };

        switch (m.op) {
          case MiscOpcode::Nop:
          case MiscOpcode::DmaIn:
          case MiscOpcode::DmaOut:
          case MiscOpcode::Sync:
            break;
          case MiscOpcode::SLoadImm:
            wreg(m.dst, m.imm);
            break;
          case MiscOpcode::SAdd:
            wreg(m.dst, rreg(m.src0) + rreg(m.src1));
            break;
          case MiscOpcode::SAddImm:
            wreg(m.dst, rreg(m.src0) + m.imm);
            break;
          case MiscOpcode::SLoad:
            NEU10_ASSERT(m.imm >= 0 &&
                         static_cast<size_t>(m.imm) < scratch_.size(),
                         "scratch load out of range");
            wreg(m.dst, scratch_[static_cast<size_t>(m.imm)]);
            break;
          case MiscOpcode::SStore:
            NEU10_ASSERT(m.imm >= 0 &&
                         static_cast<size_t>(m.imm) < scratch_.size(),
                         "scratch store out of range");
            scratch_[static_cast<size_t>(m.imm)] = rreg(m.src0);
            break;
          case MiscOpcode::BranchLt:
            if (rreg(m.src0) < rreg(m.src1)) {
                NEU10_ASSERT(m.imm >= 0 &&
                             static_cast<size_t>(m.imm) < u.code.size(),
                             "branch target %lld out of range",
                             static_cast<long long>(m.imm));
                pc = static_cast<size_t>(m.imm);
                branched = true;
            }
            break;
          case MiscOpcode::BranchGe:
            if (rreg(m.src0) >= rreg(m.src1)) {
                NEU10_ASSERT(m.imm >= 0 &&
                             static_cast<size_t>(m.imm) < u.code.size(),
                             "branch target %lld out of range",
                             static_cast<long long>(m.imm));
                pc = static_cast<size_t>(m.imm);
                branched = true;
            }
            break;
          case MiscOpcode::UTopGroup:
            wreg(m.dst, group_index);
            break;
          case MiscOpcode::UTopIndex:
            wreg(m.dst, utop_index);
            break;
          case MiscOpcode::UTopNextGroup:
            res.requestedNextGroup = true;
            res.nextGroup = rreg(m.src0);
            break;
          case MiscOpcode::UTopFinish:
            res.finished = true;
            return res;
        }
        if (!branched)
            ++pc;
    }
    panic("uTOp fell off the end of its snippet without uTop.finish");
}

ProgramRunResult
Interpreter::runProgram(const NeuIsaProgram &prog)
{
    prog.validate();
    ProgramRunResult res;
    std::int64_t group = 0;
    const std::int64_t num_groups =
        static_cast<std::int64_t>(prog.table.size());

    while (group >= 0 && group < num_groups) {
        const UTopGroup &grp = prog.table[static_cast<size_t>(group)];
        res.groupTrace.push_back(static_cast<std::uint32_t>(group));
        ++res.groupsExecuted;

        bool have_next = false;
        std::int64_t next = group + 1;

        auto run_one = [&](std::uint32_t snip, std::uint32_t idx) {
            const UTopRunResult r = runUTop(
                prog.snippets[snip],
                static_cast<std::uint32_t>(group), idx);
            ++res.uTopsExecuted;
            res.instsExecuted += r.instsExecuted;
            res.issueCycles += r.issueCycles;
            if (r.requestedNextGroup) {
                // §III-D: divergent targets raise an exception.
                if (have_next && next != r.nextGroup)
                    fatal("uTOp group %lld: divergent uTop.nextGroup "
                          "targets %lld vs %lld",
                          static_cast<long long>(group),
                          static_cast<long long>(next),
                          static_cast<long long>(r.nextGroup));
                have_next = true;
                next = r.nextGroup;
            }
        };

        std::uint32_t idx = 0;
        for (auto snip : grp.meUTops)
            run_one(snip, idx++);
        if (grp.veUTop)
            run_one(*grp.veUTop, idx++);

        if (have_next && (next < 0 || next >= num_groups))
            fatal("uTop.nextGroup target %lld out of range [0, %lld)",
                  static_cast<long long>(next),
                  static_cast<long long>(num_groups));
        group = next;
    }
    return res;
}

} // namespace neu10
