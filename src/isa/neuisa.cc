#include "isa/neuisa.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace neu10
{

void
NeuIsaProgram::validate() const
{
    if (maxMeUTopsPerGroup == 0)
        fatal("NeuISA program declares nx == 0");
    if (numVeSlots == 0)
        fatal("NeuISA program declares ny == 0");

    for (size_t i = 0; i < snippets.size(); ++i) {
        const UTop &u = snippets[i];
        const unsigned want_me = u.kind == UTopKind::Me ? 1 : 0;
        for (size_t pc = 0; pc < u.code.size(); ++pc) {
            const auto &inst = u.code[pc];
            if (inst.me.size() != want_me)
                fatal("snippet %zu inst %zu: %zu ME slots, %s uTOp "
                      "requires %u", i, pc, inst.me.size(),
                      u.kind == UTopKind::Me ? "ME" : "VE", want_me);
            if (inst.ve.size() != numVeSlots)
                fatal("snippet %zu inst %zu: %zu VE slots, program "
                      "declares ny=%u", i, pc, inst.ve.size(), numVeSlots);
        }
        if (!u.code.empty() &&
            u.code.back().misc.op != MiscOpcode::UTopFinish) {
            fatal("snippet %zu does not end in uTop.finish", i);
        }
        if (u.cost.meCycles < 0 || u.cost.veCycles < 0)
            fatal("snippet %zu has negative cost", i);
        if (u.kind == UTopKind::Ve && u.cost.meCycles > 0)
            fatal("snippet %zu is a VE uTOp but carries ME cycles", i);
    }

    for (size_t g = 0; g < table.size(); ++g) {
        const UTopGroup &grp = table[g];
        if (grp.meUTops.size() > maxMeUTopsPerGroup)
            fatal("group %zu has %zu ME uTOps, max is nx=%u", g,
                  grp.meUTops.size(), maxMeUTopsPerGroup);
        if (grp.size() == 0)
            fatal("group %zu is empty", g);
        for (auto idx : grp.meUTops) {
            if (idx >= snippets.size())
                fatal("group %zu references snippet %u out of range",
                      g, idx);
            if (snippets[idx].kind != UTopKind::Me)
                fatal("group %zu lists VE snippet %u as an ME uTOp",
                      g, idx);
        }
        if (grp.veUTop) {
            if (*grp.veUTop >= snippets.size())
                fatal("group %zu references snippet %u out of range",
                      g, *grp.veUTop);
            if (snippets[*grp.veUTop].kind != UTopKind::Ve)
                fatal("group %zu lists ME snippet %u as its VE uTOp",
                      g, *grp.veUTop);
        }
    }
}

UTopCost
NeuIsaProgram::staticCost() const
{
    UTopCost total;
    for (const auto &grp : table) {
        for (auto idx : grp.meUTops) {
            total.meCycles += snippets[idx].cost.meCycles;
            total.veCycles += snippets[idx].cost.veCycles;
            total.hbmBytes += snippets[idx].cost.hbmBytes;
        }
        if (grp.veUTop) {
            total.veCycles += snippets[*grp.veUTop].cost.veCycles;
            total.hbmBytes += snippets[*grp.veUTop].cost.hbmBytes;
        }
    }
    return total;
}

std::string
NeuIsaProgram::toString() const
{
    std::string out = csprintf("NeuISA program: nx=%u ny=%u, %zu "
                               "snippets, %zu groups\n",
                               maxMeUTopsPerGroup, numVeSlots,
                               snippets.size(), table.size());
    for (size_t g = 0; g < table.size(); ++g) {
        out += csprintf("group %zu:", g);
        for (auto idx : table[g].meUTops)
            out += csprintf(" ME[%u]", idx);
        if (table[g].veUTop)
            out += csprintf(" VE[%u]", *table[g].veUTop);
        out += "\n";
    }
    for (size_t i = 0; i < snippets.size(); ++i) {
        const UTop &u = snippets[i];
        out += csprintf("snippet %zu (%s): me=%.0fcy ve=%.0fcy hbm=%s, "
                        "%zu insts\n", i,
                        u.kind == UTopKind::Me ? "ME" : "VE",
                        u.cost.meCycles, u.cost.veCycles,
                        formatBytes(u.cost.hbmBytes).c_str(),
                        u.code.size());
        for (const auto &inst : u.code)
            out += "    " + inst.toString() + "\n";
    }
    return out;
}

} // namespace neu10
