/**
 * @file
 * Convenience builders for small, fully-listed programs.
 *
 * These construct instruction-accurate miniature programs used by unit
 * tests, the Fig. 6 microbenchmark, and the isa_inspector example:
 * the paper's running example — a tiled matrix multiplication fused with
 * ReLU — in both its classic VLIW form (Fig. 6) and its NeuISA form
 * (Figs. 8 and 13), plus the Fig. 15 loop structure.
 */

#ifndef NEU10_ISA_BUILDERS_HH
#define NEU10_ISA_BUILDERS_HH

#include "isa/neuisa.hh"
#include "isa/vliw.hh"

namespace neu10
{

/**
 * Classic VLIW fused MatMul+ReLU (Fig. 6): each instruction pops one
 * output vector from every ME and applies ReLU on the VEs.
 *
 * @param num_mes  MEs the program is compiled for (control coupled).
 * @param num_ves  VE slot width.
 * @param pops     output vectors per ME.
 */
VliwProgram makeVliwMatmulRelu(unsigned num_mes, unsigned num_ves,
                               unsigned pops);

/**
 * NeuISA fused MatMul+ReLU (Figs. 8/13): one ME uTOp per tile, each
 * carrying its own pop/ReLU stream, all in a single uTOp group.
 *
 * @param tiles    number of ME uTOps (one per tile).
 * @param num_ves  ny, the VE slot width.
 * @param pops     output vectors per tile.
 */
NeuIsaProgram makeNeuIsaMatmulRelu(unsigned tiles, unsigned num_ves,
                                   unsigned pops);

/**
 * The Fig. 15 loop: groups 0..2 form a loop body executed @p iterations
 * times; group 2's uTOp increments a counter in scratch SRAM and jumps
 * back to group 0 via uTop.nextGroup until the trip count is reached.
 *
 * @param iterations  loop trip count (>= 1).
 * @param num_ves     ny, the VE slot width.
 * @param counter     scratch word used for the loop counter.
 */
NeuIsaProgram makeNeuIsaLoop(unsigned iterations, unsigned num_ves,
                             unsigned counter = 0);

} // namespace neu10

#endif // NEU10_ISA_BUILDERS_HH
