/**
 * @file
 * NeuISA: the paper's VLIW extension for virtualized NPUs (§III-D).
 *
 * NeuISA decouples the control flow of individual matrix engines by
 * re-packaging a tensor operator into micro-tensor operators (uTOps):
 *
 *  - an *ME uTOp* contains instructions with exactly one ME slot and ny
 *    VE slots — it drives one matrix engine plus the vector work fused
 *    with that engine's output stream;
 *  - a *VE uTOp* contains instructions with no ME slot and ny VE slots.
 *
 * uTOps are organized into *uTOp groups* (up to nx ME uTOps plus up to
 * one VE uTOp per group). uTOps within a group may run concurrently on
 * however many engines the scheduler grants; groups execute in sequence
 * unless a uTop.nextGroup control instruction redirects (Figs. 13-15).
 *
 * A NeuIsaProgram also carries per-uTOp aggregate costs (ME cycles, VE
 * cycles, HBM bytes). The event-driven simulator executes at uTOp
 * granularity from these aggregates — the same trace-replay strategy the
 * paper's production simulator uses (§III-G) — while the instruction
 * listings remain available for the interpreter, disassembler and tests.
 */

#ifndef NEU10_ISA_NEUISA_HH
#define NEU10_ISA_NEUISA_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/vliw.hh"

namespace neu10
{

/** The two uTOp types of §III-D. */
enum class UTopKind : std::uint8_t { Me = 0, Ve = 1 };

/** Aggregate execution cost of one uTOp, replayed by the simulator. */
struct UTopCost
{
    Cycles meCycles = 0.0;   ///< busy cycles on the single ME (ME uTOps)
    Cycles veCycles = 0.0;   ///< total VE work carried by this uTOp
    Bytes hbmBytes = 0;      ///< DMA traffic attributable to this uTOp

    bool operator==(const UTopCost &) const = default;
};

/**
 * One micro-tensor operator: a code snippet (VLIW bundles with the
 * NeuISA slot shape) plus its aggregate cost. Snippets may be shared by
 * several exec-table entries to limit code inflation (§III-D overhead
 * discussion); sharing is by snippet index.
 */
struct UTop
{
    UTopKind kind = UTopKind::Me;
    UTopCost cost;
    std::vector<VliwInstruction> code; ///< may be empty in trace mode

    bool operator==(const UTop &) const = default;
};

/**
 * A row of the uTOp execution table (Fig. 15): up to nx ME uTOp entries
 * and one optional VE uTOp entry, each naming a snippet index.
 */
struct UTopGroup
{
    std::vector<std::uint32_t> meUTops;       ///< snippet indices
    std::optional<std::uint32_t> veUTop;      ///< snippet index

    bool operator==(const UTopGroup &) const = default;

    size_t
    size() const
    {
        return meUTops.size() + (veUTop ? 1 : 0);
    }
};

/** A NeuISA binary: snippets + uTOp execution table + metadata. */
struct NeuIsaProgram
{
    /** Physical-core shape the binary was verified against. The program
     * can *run* on any engine allocation at runtime (that is NeuISA's
     * point); nx/ny only bound the group width and VE slot count. */
    unsigned maxMeUTopsPerGroup = 0;   ///< nx
    unsigned numVeSlots = 0;           ///< ny

    std::vector<UTop> snippets;
    std::vector<UTopGroup> table;

    /**
     * Structural verification per §III-D:
     *  - every group has <= nx ME uTOps and <= 1 VE uTOp;
     *  - entries reference existing snippets of the right kind;
     *  - ME uTOp snippets carry exactly 1 ME slot; VE uTOp snippets 0;
     *  - every snippet carries ny VE slots;
     *  - a snippet with code ends in uTop.finish.
     * @throws FatalError describing the first violation.
     */
    void validate() const;

    /** Total aggregate cost over the static table (each entry counted
     * once per appearance, since shared snippets re-execute). */
    UTopCost staticCost() const;

    /** Number of groups. */
    size_t numGroups() const { return table.size(); }

    /** Disassembly of the execution table and snippets. */
    std::string toString() const;
};

} // namespace neu10

#endif // NEU10_ISA_NEUISA_HH
