/**
 * @file
 * Functional interpreter for NeuISA control flow.
 *
 * The hardware uTOp scheduler follows the uTOp execution table: group
 * i+1 runs after group i unless some uTOp executed uTop.nextGroup; if
 * two uTOps of one group name *different* targets the core raises an
 * exception (§III-D). This interpreter implements exactly those
 * semantics — scalar registers, scratch-SRAM counters, intra-uTOp
 * branches, and cross-group control — so loop structures like Fig. 15
 * can be executed and verified functionally, independent of timing.
 */

#ifndef NEU10_ISA_INTERPRETER_HH
#define NEU10_ISA_INTERPRETER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/neuisa.hh"

namespace neu10
{

/** Outcome of functionally executing one uTOp. */
struct UTopRunResult
{
    bool finished = false;              ///< saw uTop.finish
    bool requestedNextGroup = false;
    std::int64_t nextGroup = 0;         ///< valid if requestedNextGroup
    std::uint64_t instsExecuted = 0;
    Cycles issueCycles = 0.0;           ///< sum of bundle latencies
};

/** Outcome of walking a whole program through the execution table. */
struct ProgramRunResult
{
    std::uint64_t groupsExecuted = 0;
    std::uint64_t uTopsExecuted = 0;
    std::uint64_t instsExecuted = 0;
    Cycles issueCycles = 0.0;
    std::vector<std::uint32_t> groupTrace; ///< group indices in order
};

/**
 * Functional NeuISA interpreter. Each uTOp gets a fresh scalar register
 * file (as hardware would on dispatch); the scratch memory — modelling
 * counters kept in SRAM, e.g. Fig. 15's `Count` — persists across uTOps
 * and groups for one program run.
 */
class Interpreter
{
  public:
    /** @param scratch_words size of the persistent scratch memory. */
    explicit Interpreter(size_t scratch_words = 64);

    /**
     * Execute one uTOp functionally.
     *
     * @param u            the uTOp to run.
     * @param group_index  value returned by uTop.group.
     * @param utop_index   value returned by uTop.index.
     * @throws PanicError on malformed code (missing uTop.finish, branch
     *         out of range, runaway loop).
     */
    UTopRunResult runUTop(const UTop &u, std::uint32_t group_index,
                          std::uint32_t utop_index);

    /**
     * Walk an entire program through its uTOp execution table, running
     * every uTOp of each group, applying the cross-group control rules.
     *
     * @throws FatalError if uTOps of one group request different
     *         next-group targets (the architectural exception of
     *         §III-D) or a target is out of range.
     */
    ProgramRunResult runProgram(const NeuIsaProgram &prog);

    /** Read a scratch word (test inspection). */
    std::int64_t scratch(size_t idx) const;

    /** Write a scratch word (test setup). */
    void setScratch(size_t idx, std::int64_t value);

    /** Cap on executed instructions per uTOp (runaway-loop guard). */
    void setInstLimit(std::uint64_t limit) { instLimit_ = limit; }

  private:
    std::vector<std::int64_t> scratch_;
    std::uint64_t instLimit_ = 1u << 20;
};

} // namespace neu10

#endif // NEU10_ISA_INTERPRETER_HH
