/**
 * @file
 * Binary encoding of NeuISA programs.
 *
 * The guest ML framework hands the NPU a binary image: program metadata,
 * the uTOp execution table, then the uTOp code snippets (Fig. 15's
 * "program layout in memory"). This codec serializes NeuIsaProgram to a
 * portable little-endian byte image and back, validating on decode, so
 * the driver/virt layer can treat programs as opaque payloads.
 */

#ifndef NEU10_ISA_ENCODING_HH
#define NEU10_ISA_ENCODING_HH

#include <cstdint>
#include <vector>

#include "isa/neuisa.hh"

namespace neu10
{

/** Magic number leading every NeuISA image ("NISA"). */
inline constexpr std::uint32_t kNeuIsaMagic = 0x4153494eu;

/** Image format version understood by this library. */
inline constexpr std::uint32_t kNeuIsaVersion = 1;

/**
 * Serialize a validated program to a binary image.
 * @throws FatalError if the program fails validation.
 */
std::vector<std::uint8_t> encode(const NeuIsaProgram &prog);

/**
 * Reconstruct a program from a binary image.
 * @throws FatalError on bad magic, truncation, or validation failure.
 */
NeuIsaProgram decode(const std::vector<std::uint8_t> &image);

} // namespace neu10

#endif // NEU10_ISA_ENCODING_HH
