/**
 * @file
 * Classic VLIW-style NPU ISA (§II-A).
 *
 * Each instruction bundles nm ME slots, nv VE slots, two load/store slots
 * and one misc slot; the ML compiler statically schedules operations into
 * slots knowing the engine counts, which is exactly the coupling NeuISA
 * later removes (§II-C, Fig. 9). A VliwProgram is what the baselines
 * (PMT, V10) execute.
 */

#ifndef NEU10_ISA_VLIW_HH
#define NEU10_ISA_VLIW_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/ops.hh"

namespace neu10
{

/** A matrix-engine slot: operation plus target register. */
struct MeSlot
{
    MeOpcode op = MeOpcode::Nop;
    std::uint8_t reg = 0;   ///< destination (pop) / source (push) vreg

    bool operator==(const MeSlot &) const = default;
};

/** A vector-engine slot: op, destination and sources. */
struct VeSlot
{
    VeOpcode op = VeOpcode::Nop;
    std::uint8_t dst = 0;
    std::uint8_t src0 = 0;
    std::uint8_t src1 = 0;

    bool operator==(const VeSlot &) const = default;
};

/** A load/store slot: SRAM address is a vreg-sized offset. */
struct LsSlot
{
    LsOpcode op = LsOpcode::Nop;
    std::uint8_t reg = 0;
    std::uint32_t addr = 0;

    bool operator==(const LsSlot &) const = default;
};

/** The misc slot: DMA / sync / scalar / uTOp control. */
struct MiscSlot
{
    MiscOpcode op = MiscOpcode::Nop;
    std::uint8_t dst = 0;       ///< scalar destination register
    std::uint8_t src0 = 0;      ///< scalar source register
    std::uint8_t src1 = 0;      ///< scalar source register
    std::int64_t imm = 0;       ///< immediate / scratch address / pc

    bool operator==(const MiscSlot &) const = default;
};

/**
 * One VLIW bundle. The number of ME/VE slots is fixed per program (for
 * the classic ISA) or per uTOp kind (for NeuISA, §III-D).
 */
struct VliwInstruction
{
    std::vector<MeSlot> me;
    std::vector<VeSlot> ve;
    LsSlot ls0, ls1;
    MiscSlot misc;

    bool operator==(const VliwInstruction &) const = default;

    /**
     * Issue-to-retire latency of the bundle: slots execute in lockstep,
     * so the bundle retires when its slowest slot does (Fig. 6 shows the
     * resulting VE idling during 8-cycle ME pops).
     */
    Cycles latency() const;

    /** Total busy cycles the bundle imposes on any ME / on any VE. */
    Cycles meBusyCycles() const;
    Cycles veBusyCycles() const;

    /** Disassembly, e.g. "pop ME0->R0 | relu R0->R0 | ..." */
    std::string toString() const;
};

/**
 * A compiled classic-VLIW program. The ME width is baked in at compile
 * time: running on fewer MEs is impossible without recompilation and
 * extra MEs cannot be used (Fig. 9) — the property the evaluation's V10
 * baseline inherits.
 */
struct VliwProgram
{
    unsigned numMeSlots = 0;    ///< MEs the compiler scheduled for
    unsigned numVeSlots = 0;    ///< VEs the compiler scheduled for
    std::vector<VliwInstruction> code;

    /**
     * Structural validation: every instruction carries exactly the
     * declared slot widths and no NeuISA control ops appear.
     * @throws FatalError on violation.
     */
    void validate() const;

    /** Aggregate ME/VE busy cycles over the whole program. */
    Cycles totalMeBusy() const;
    Cycles totalVeBusy() const;

    /** Sequential execution time (sum of bundle latencies). */
    Cycles totalLatency() const;
};

} // namespace neu10

#endif // NEU10_ISA_VLIW_HH
