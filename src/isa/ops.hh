/**
 * @file
 * Slot-level operation definitions shared by the classic VLIW ISA and
 * NeuISA (§II-A, §III-D of the paper).
 *
 * An NPU core instruction is a bundle of slots: matrix-engine (ME) slots
 * carrying systolic-array push/pop operations, vector-engine (VE) slots
 * carrying ALU operations, load/store slots for the on-chip SRAM, and a
 * misc slot for DMA and — in NeuISA — the uTOp control instructions of
 * Fig. 14 plus the minimal scalar operations needed to express loop
 * counters kept in SRAM (Fig. 15).
 */

#ifndef NEU10_ISA_OPS_HH
#define NEU10_ISA_OPS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace neu10
{

/** Matrix-engine slot operations. */
enum class MeOpcode : std::uint8_t
{
    Nop = 0,
    Push,       ///< push an input tile column into the systolic array
    Pop,        ///< pop an 8x128 output vector (8 cycles, §II-B Fig. 6)
};

/** Vector-engine slot operations (single-cycle 128x8 ALU ops). */
enum class VeOpcode : std::uint8_t
{
    Nop = 0,
    Add,
    Mul,
    Max,
    Relu,
    Sigmoid,
    Tanh,
    Exp,
    Reciprocal,
    Reduce,     ///< horizontal reduction step
    Copy,
};

/** SRAM load/store slot operations. */
enum class LsOpcode : std::uint8_t
{
    Nop = 0,
    Load,
    Store,
};

/** Misc-slot operations: DMA, sync, scalar, and uTOp control (Fig. 14). */
enum class MiscOpcode : std::uint8_t
{
    Nop = 0,
    DmaIn,          ///< HBM -> SRAM transfer
    DmaOut,         ///< SRAM -> HBM transfer
    Sync,           ///< wait for outstanding DMA

    // Minimal scalar support for loop counters (values live in scratch
    // SRAM words; registers are the 8-entry scalar file, %r0 == 0).
    SLoadImm,       ///< reg[dst] = imm
    SAdd,           ///< reg[dst] = reg[src0] + reg[src1]
    SAddImm,        ///< reg[dst] = reg[src0] + imm
    SLoad,          ///< reg[dst] = scratch[imm]
    SStore,         ///< scratch[imm] = reg[src0]
    BranchLt,       ///< if reg[src0] < reg[src1]: pc = imm (intra-uTOp)
    BranchGe,       ///< if reg[src0] >= reg[src1]: pc = imm

    // NeuISA uTOp control instructions (Fig. 14).
    UTopFinish,     ///< stop this uTOp; scheduler dispatches the next
    UTopNextGroup,  ///< next group index := reg[src0]
    UTopGroup,      ///< reg[dst] := current group index
    UTopIndex,      ///< reg[dst] := this uTOp's index within its group
};

/** Number of scalar registers (%r0..%r7); %r0 is hardwired to zero. */
inline constexpr unsigned kNumScalarRegs = 8;

/** Cycles an ME pop occupies the matrix engine (8x128 output, Fig. 6). */
inline constexpr Cycles kMePopCycles = 8.0;

/** Cycles an ME push occupies the matrix engine. */
inline constexpr Cycles kMePushCycles = 1.0;

/** Cycles per VE ALU operation. */
inline constexpr Cycles kVeOpCycles = 1.0;

/** Latency of one slot operation when it occupies its engine. */
Cycles meOpCycles(MeOpcode op);
Cycles veOpCycles(VeOpcode op);

/** Human-readable mnemonics (for the disassembler / isa_inspector). */
std::string toString(MeOpcode op);
std::string toString(VeOpcode op);
std::string toString(LsOpcode op);
std::string toString(MiscOpcode op);

} // namespace neu10

#endif // NEU10_ISA_OPS_HH
