/**
 * @file
 * Cluster-scale open-loop serving: a multi-board NPU fleet under
 * trace-driven traffic with placement and SLO accounting.
 *
 * This is the layer the paper stops short of (§V evaluates collocated
 * tenants on one physical core): N boards x M cores serve per-tenant
 * open-loop arrival streams (cluster/traffic). Each tenant rents a
 * vNPU sized by the §III-B allocator from its EU budget; a placement
 * policy (cluster/placement) bin-packs the vNPUs onto cores; every
 * core then runs the event-driven serving simulation in open-loop
 * mode (runtime/serving) with per-tenant admission control. Results
 * aggregate fleet-wide: p50/p95/p99 latency, goodput (requests
 * meeting their SLO per second), rejection rate, and per-core
 * utilization — the metrics a capacity-planning study sweeps over
 * traffic shape x fleet size x placement policy x scheduler design.
 *
 * Cores are independent (no cross-core interference is modeled;
 * tenants here are single-core vNPUs), so the fleet decomposes into
 * per-core simulations that share nothing but the traffic clock.
 */

#ifndef NEU10_CLUSTER_FLEET_HH
#define NEU10_CLUSTER_FLEET_HH

#include <string>
#include <vector>

#include "cluster/placement.hh"
#include "cluster/traffic.hh"
#include "npu/config.hh"
#include "runtime/serving.hh"
#include "stats/distribution.hh"

namespace neu10
{

/** One tenant of the fleet: a model, an EU budget, and a stream. */
struct ClusterTenantSpec
{
    ModelId model = ModelId::Dlrm;
    unsigned batch = 32;

    /** EU budget; the §III-B allocator picks the ME:VE split. */
    unsigned eus = 4;

    /** Request stream description (shape, rate, seed). */
    TrafficSpec traffic;

    /** Per-request latency SLO in cycles (goodput numerator). */
    Cycles sloCycles = kCyclesInf;

    /** Admission depth: arrivals beyond this backlog are rejected. */
    unsigned maxQueueDepth = 64;

    double priority = 1.0;
};

/** Fleet experiment configuration. */
struct FleetConfig
{
    unsigned numBoards = 4;
    NpuBoardConfig board;     ///< per-board shape (chips x cores)

    /** On-core scheduling design (PMT / V10 / Neu10-NH / Neu10). */
    PolicyKind corePolicy = PolicyKind::Neu10;

    PlacementPolicy placement = PlacementPolicy::FirstFit;

    std::vector<ClusterTenantSpec> tenants;

    /** Traffic-generation window in cycles. */
    Cycles horizon = 5e7;

    /** Per-core drain cap in cycles (guards saturated cores). */
    Cycles maxCycles = 2e9;

    /** Fleet-wide core count. */
    unsigned
    totalCores() const
    {
        return numBoards * board.totalCores();
    }
};

/** Where one tenant's vNPU landed (parallel to config.tenants). */
struct TenantPlacement
{
    CoreId core = kInvalidCore; ///< fleet-wide core index
    unsigned nMes = 0;          ///< allocator's engine split
    unsigned nVes = 0;
    Bytes hbmBytes = 0;         ///< segment-rounded HBM reservation
    double load = 0.0;          ///< offered EU-cycles/cycle estimate

    bool
    placed() const
    {
        return core != kInvalidCore;
    }
};

/** Post-run per-core report. */
struct FleetCoreReport
{
    CoreId core = 0;
    unsigned board = 0;         ///< board the core belongs to
    unsigned tenants = 0;       ///< resident vNPUs
    std::uint64_t completed = 0;

    /** Useful-ME / VE utilization over the *fleet* makespan, so
     * cores that drained early compare fairly. */
    double meUsefulUtil = 0.0;
    double veUtil = 0.0;

    /** Engine-count-weighted EU utilization (the billing unit). */
    double euUtil = 0.0;

    Cycles makespan = 0.0;      ///< this core's drain time
};

/** Whole-fleet outcome. */
struct FleetResult
{
    std::string policy;         ///< core scheduling design
    std::string placement;      ///< placement policy name

    std::vector<TenantPlacement> placements;
    std::vector<TenantResult> tenants; ///< open-loop per-tenant stats
    std::vector<FleetCoreReport> cores;

    /** Fleet-wide latency distribution (all completed requests). */
    Distribution latencyCycles;

    /** Per-core useful-ME utilizations (mean/stddev = balance). */
    Distribution coreMeUtil;

    /** Per-core EU utilizations (cross-core stddev = imbalance). */
    Distribution coreEuUtil;

    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0; ///< admission drops + unplaced-tenant
                                ///< arrivals
    std::uint64_t sloMet = 0;
    unsigned unplacedTenants = 0;

    Cycles makespan = 0.0;      ///< slowest core's drain time
    double goodput = 0.0;       ///< SLO-met requests / second

    /** Rejected fraction of all submitted requests. */
    double
    rejectionRate() const
    {
        return submitted > 0
                   ? static_cast<double>(rejected) /
                         static_cast<double>(submitted)
                   : 0.0;
    }

    /** Fleet p50/p95/p99 in cycles. */
    double p50() const { return latencyCycles.percentile(0.50); }
    double p95() const { return latencyCycles.percentile(0.95); }
    double p99() const { return latencyCycles.percentile(0.99); }
};

/**
 * Run one fleet experiment. Deterministic: identical configs yield
 * identical results (traffic is seeded, cores simulate in index
 * order).
 */
FleetResult runFleet(const FleetConfig &config);

} // namespace neu10

#endif // NEU10_CLUSTER_FLEET_HH
