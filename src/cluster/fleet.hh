/**
 * @file
 * Cluster-scale open-loop serving: a multi-board NPU fleet under
 * trace-driven traffic with placement and SLO accounting.
 *
 * This is the layer the paper stops short of (§V evaluates collocated
 * tenants on one physical core): N boards x M cores serve per-tenant
 * open-loop arrival streams (cluster/traffic). Each tenant rents a
 * vNPU sized by the §III-B allocator from its EU budget; a placement
 * policy (cluster/placement) bin-packs the vNPUs onto cores; every
 * core then runs the event-driven serving simulation in open-loop
 * mode (runtime/serving) with per-tenant admission control. Results
 * aggregate fleet-wide: p50/p95/p99 latency, goodput (requests
 * meeting their SLO per second), rejection rate, and per-core
 * utilization — the metrics a capacity-planning study sweeps over
 * traffic shape x fleet size x placement policy x scheduler design.
 *
 * Cores are independent (no cross-core interference is modeled;
 * tenants here are single-core vNPUs), so the fleet decomposes into
 * per-core simulations that share nothing but the traffic clock —
 * and the engine exploits that on the host: per-core simulations run
 * concurrently on a common/threadpool worker pool (FleetConfig::
 * threads), with bit-identical results for any thread count.
 *
 * On top of the static capacity-planning mode, the engine is
 * *elastic* (ElasticConfig): the run splits into epochs; at every
 * epoch boundary a rebalancer inspects the utilization and queue
 * backlog each core actually exhibited, migrates vNPUs from the
 * hottest cores to the coldest (re-running the §III-B split against
 * the destination's residency), charges each move a configurable
 * migration cost through the hypervisor's destroy/create hypercalls
 * (exercising MMIO-window recycling), and the open-loop serving
 * resumes with carried-over backlogs.
 */

#ifndef NEU10_CLUSTER_FLEET_HH
#define NEU10_CLUSTER_FLEET_HH

#include <string>
#include <vector>

#include "cluster/placement.hh"
#include "cluster/traffic.hh"
#include "npu/config.hh"
#include "runtime/serving.hh"
#include "stats/distribution.hh"

namespace neu10
{

/** One tenant of the fleet: a model, an EU budget, and a stream. */
struct ClusterTenantSpec
{
    ModelId model = ModelId::Dlrm;
    unsigned batch = 32;

    /** EU budget; the §III-B allocator picks the ME:VE split. */
    unsigned eus = 4;

    /** Request stream description (shape, rate, seed). */
    TrafficSpec traffic;

    /** Per-request latency SLO in cycles (goodput numerator). */
    Cycles sloCycles = kCyclesInf;

    /** Admission depth: arrivals beyond this backlog are rejected. */
    unsigned maxQueueDepth = 64;

    double priority = 1.0;
};

/** Epoch-based elastic-rebalancing knobs. */
struct ElasticConfig
{
    /** Serving epochs the horizon splits into; 1 = static fleet
     * (placement decided once, never revisited). */
    unsigned epochs = 1;

    /** Rebalance at an epoch boundary only while the hottest-to-
     * coldest observed per-core pressure gap (EU-cycles/cycle)
     * exceeds this. */
    double imbalanceThreshold = 0.1;

    /** Migration budget per epoch boundary. */
    unsigned maxMigrationsPerEpoch = 4;

    /** Cycles a migrated tenant stalls at the next epoch's start
     * (context save, MMIO re-map, IOMMU re-attach): its carried
     * backlog and early arrivals wait this long before submission,
     * and the wait counts against its latency SLO. */
    Cycles migrationCostCycles = 2e5;

    /** Re-run the §III-B engine split against the destination core's
     * free engines on every migration (resplitForResidency). */
    bool resizeOnMigrate = true;

    /** When resizing, let the migrated vNPU grow into the
     * destination's idle EUs — which would otherwise be wasted — up
     * to this factor times its paid budget (1.0 = never grow). The
     * grant is transient: the next migration re-derives the split
     * from the paid budget again. */
    double growFactor = 2.0;
};

/** Fleet experiment configuration. */
struct FleetConfig
{
    unsigned numBoards = 4;
    NpuBoardConfig board;     ///< per-board shape (chips x cores)

    /** On-core scheduling design (PMT / V10 / Neu10-NH / Neu10). */
    PolicyKind corePolicy = PolicyKind::Neu10;

    PlacementPolicy placement = PlacementPolicy::FirstFit;

    std::vector<ClusterTenantSpec> tenants;

    /** Traffic-generation window in cycles. */
    Cycles horizon = 5e7;

    /** Per-core drain cap in cycles (guards saturated cores); applies
     * to the final (draining) epoch's event loop. */
    Cycles maxCycles = 2e9;

    /** Host threads running per-core simulations concurrently:
     * 1 = serial (no pool), 0 = one per hardware thread. Results are
     * bit-identical for every value. */
    unsigned threads = 1;

    ElasticConfig elastic;

    /** Fleet-wide core count. */
    unsigned
    totalCores() const
    {
        return numBoards * board.totalCores();
    }
};

/** Where one tenant's vNPU landed (parallel to config.tenants).
 * Under elastic rebalancing this is the *final* placement; the
 * migration count records how often it moved. */
struct TenantPlacement
{
    CoreId core = kInvalidCore; ///< fleet-wide core index
    unsigned nMes = 0;          ///< allocator's engine split
    unsigned nVes = 0;
    Bytes hbmBytes = 0;         ///< segment-rounded HBM reservation
    double load = 0.0;          ///< offered EU-cycles/cycle estimate
    unsigned migrations = 0;    ///< elastic moves this vNPU made

    bool
    placed() const
    {
        return core != kInvalidCore;
    }
};

/** One epoch of an elastic run (a single row when static). */
struct FleetEpochReport
{
    unsigned epoch = 0;
    std::uint64_t completed = 0;  ///< completions within the epoch
    std::uint64_t backlog = 0;    ///< admitted-but-unserved, carried
    unsigned migrations = 0;      ///< applied at this epoch's end
    double pressureStddev = 0.0;  ///< cross-core observed imbalance
};

/** Post-run per-core report. */
struct FleetCoreReport
{
    CoreId core = 0;
    unsigned board = 0;         ///< board the core belongs to
    unsigned tenants = 0;       ///< resident vNPUs
    std::uint64_t completed = 0;

    /** Useful-ME / VE utilization over the *fleet* makespan, so
     * cores that drained early compare fairly. */
    double meUsefulUtil = 0.0;
    double veUtil = 0.0;

    /** Engine-count-weighted EU utilization (the billing unit). */
    double euUtil = 0.0;

    Cycles makespan = 0.0;      ///< this core's drain time
};

/** Whole-fleet outcome. */
struct FleetResult
{
    std::string policy;         ///< core scheduling design
    std::string placement;      ///< placement policy name

    std::vector<TenantPlacement> placements;
    std::vector<TenantResult> tenants; ///< open-loop per-tenant stats
    std::vector<FleetCoreReport> cores;

    /** Fleet-wide latency distribution (all completed requests). */
    Distribution latencyCycles;

    /** Per-core useful-ME utilizations (mean/stddev = balance). */
    Distribution coreMeUtil;

    /** Per-core EU utilizations (cross-core stddev = imbalance). */
    Distribution coreEuUtil;

    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0; ///< admission drops + unplaced-tenant
                                ///< arrivals
    std::uint64_t sloMet = 0;
    unsigned unplacedTenants = 0;

    /** Elastic accounting: total vNPU migrations applied and one
     * report per epoch (a single entry when elastic.epochs == 1). */
    unsigned migrations = 0;
    std::vector<FleetEpochReport> epochReports;

    Cycles makespan = 0.0;      ///< slowest core's drain time
    double goodput = 0.0;       ///< SLO-met requests / second

    /** Rejected fraction of all submitted requests. */
    double
    rejectionRate() const
    {
        return submitted > 0
                   ? static_cast<double>(rejected) /
                         static_cast<double>(submitted)
                   : 0.0;
    }

    /** Fleet p50/p95/p99 in cycles. */
    double p50() const { return latencyCycles.percentile(0.50); }
    double p95() const { return latencyCycles.percentile(0.95); }
    double p99() const { return latencyCycles.percentile(0.99); }
};

/**
 * Run one fleet experiment. Deterministic: identical configs yield
 * identical results — traffic is seeded, per-core simulations are
 * independent, and aggregation happens in core-index order, so the
 * outcome is bit-identical for every FleetConfig::threads value.
 */
FleetResult runFleet(const FleetConfig &config);

} // namespace neu10

#endif // NEU10_CLUSTER_FLEET_HH
